// Package mimicnet's root benchmark suite regenerates every table and
// figure of the paper's evaluation (one Benchmark per table/figure; see
// DESIGN.md's per-experiment index). Each benchmark prints the
// corresponding table to stdout, so
//
//	go test -bench=. -benchmem | tee bench_output.txt
//
// captures the full reproduction. The workload is scaled down relative to
// the paper (see EXPERIMENTS.md); pass -tags or edit benchOptions to run
// closer to the paper's regime. cmd/sweep runs the same experiments with
// configurable scale.
package mimicnet

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"mimicnet/internal/cluster"
	"mimicnet/internal/core"
	"mimicnet/internal/experiments"
	"mimicnet/internal/ml"
	"mimicnet/internal/sim"
	"mimicnet/internal/stats"
	"mimicnet/internal/workload"
)

// benchOptions returns the shared scaled-down configuration.
func benchOptions() experiments.Options {
	return experiments.Default()
}

var (
	sharedOnce   sync.Once
	sharedRunner *experiments.Runner
)

// runner returns a shared Runner so the fixed training cost is paid once
// across the whole benchmark suite (as in the paper's methodology).
func runner() *experiments.Runner {
	sharedOnce.Do(func() {
		sharedRunner = experiments.NewRunner(benchOptions())
	})
	return sharedRunner
}

// emit runs one experiment per benchmark iteration and prints its table.
func emit(b *testing.B, f func() (*experiments.Table, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		t, err := f()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			t.Fprint(os.Stdout)
		}
	}
}

func BenchmarkFig1_FCTAccuracyVsSize(b *testing.B) {
	r := runner()
	emit(b, func() (*experiments.Table, error) {
		return r.Fig1([]int{4, 8, 16, 32})
	})
}

func BenchmarkFig2_SimulatorScalability(b *testing.B) {
	r := runner()
	emit(b, func() (*experiments.Table, error) {
		return r.Fig2([]int{4, 8, 16, 32})
	})
}

func BenchmarkTable1_FeatureExtraction(b *testing.B) {
	r := runner()
	emit(b, r.Table1)
}

func BenchmarkFig5_DropLossFunctions(b *testing.B) {
	r := runner()
	emit(b, r.Fig5)
}

func BenchmarkFig6_LatencyLossFunctions(b *testing.B) {
	r := runner()
	emit(b, r.Fig6)
}

func BenchmarkFig7_BaselineAccuracy(b *testing.B) {
	r := runner()
	emit(b, func() (*experiments.Table, error) {
		return r.Fig7(2, 16)
	})
}

func BenchmarkFig8_ThroughputScalability(b *testing.B) {
	r := runner()
	emit(b, func() (*experiments.Table, error) {
		return r.Fig8([]int{4, 8, 16})
	})
}

func BenchmarkFig9_RTTScalability(b *testing.B) {
	r := runner()
	emit(b, func() (*experiments.Table, error) {
		return r.Fig9([]int{4, 8, 16})
	})
}

func BenchmarkFig10_Speedup(b *testing.B) {
	r := runner()
	emit(b, func() (*experiments.Table, error) {
		return r.Fig10([]int{8, 16, 32}, []int{2, 4})
	})
}

func BenchmarkFig11_SimulationLatency(b *testing.B) {
	r := runner()
	emit(b, func() (*experiments.Table, error) {
		return r.Fig11([]int{8, 16, 32})
	})
}

func BenchmarkFig12_SimulationThroughput(b *testing.B) {
	r := runner()
	emit(b, func() (*experiments.Table, error) {
		return r.Fig12([]int{8, 16, 32})
	})
}

func BenchmarkTable2_TimeBreakdown(b *testing.B) {
	r := runner()
	emit(b, func() (*experiments.Table, error) {
		return r.Table2(32)
	})
}

func BenchmarkFig13_DCTCPTuning(b *testing.B) {
	r := runner()
	emit(b, func() (*experiments.Table, error) {
		return r.Fig13(8, []int{5, 10, 20, 40, 60})
	})
}

func BenchmarkFig14_ProtocolComparison(b *testing.B) {
	r := runner()
	emit(b, func() (*experiments.Table, error) {
		return r.Fig14(8)
	})
}

func BenchmarkFig16_WindowSizeTraining(b *testing.B) {
	r := runner()
	emit(b, func() (*experiments.Table, error) {
		return r.Fig16([]int{1, 2, 5, 12})
	})
}

func BenchmarkFig17_WindowSizeInference(b *testing.B) {
	r := runner()
	emit(b, func() (*experiments.Table, error) {
		return r.Fig17([]int{1, 2, 5, 12})
	})
}

func BenchmarkFig18_ProtocolThroughput(b *testing.B) {
	r := runner()
	emit(b, func() (*experiments.Table, error) {
		return r.Fig18(8)
	})
}

func BenchmarkFig19_ProtocolRTT(b *testing.B) {
	r := runner()
	emit(b, func() (*experiments.Table, error) {
		return r.Fig19(8)
	})
}

func BenchmarkFig20_HeavyLoad(b *testing.B) {
	r := runner()
	emit(b, func() (*experiments.Table, error) {
		return r.Fig20(8)
	})
}

func BenchmarkFig21_LatencyVsLength(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		lat, _, err := r.Fig21And22(16, []sim.Time{
			150 * sim.Millisecond, 300 * sim.Millisecond, 600 * sim.Millisecond,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			lat.Fprint(os.Stdout)
		}
	}
}

func BenchmarkFig22_ThroughputVsLength(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		_, tput, err := r.Fig21And22(16, []sim.Time{
			150 * sim.Millisecond, 300 * sim.Millisecond, 600 * sim.Millisecond,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			tput.Fprint(os.Stdout)
		}
	}
}

func BenchmarkFig23_ComputeConsumption(b *testing.B) {
	r := runner()
	emit(b, func() (*experiments.Table, error) {
		return r.Fig23([]int{4, 8, 16})
	})
}

// BenchmarkMimicInference measures the batched Mimic inference engine
// against the per-packet path at several batch widths B (one lane per
// Mimic×direction stream, as in a composition of B+1 clusters). The
// reported ns/step metric is the per-model-step cost; the batched engine
// should be at least 2x cheaper per step for B >= 16.
func BenchmarkMimicInference(b *testing.B) {
	cfg := ml.DefaultModelConfig(23, 8) // feature width of the default topology
	model, err := ml.NewModel(cfg)
	if err != nil {
		b.Fatal(err)
	}
	rng := stats.NewStream(1)
	// Inputs shaped like real extracted features: one-hot blocks for
	// rack(2)/server(4)/agg(2)/core(4), 7 scalars, one-hot congestion(4).
	featureVec := func() []float64 {
		row := make([]float64, 0, cfg.Features)
		for _, block := range []int{2, 4, 2, 4} {
			hot := rng.Intn(block)
			for j := 0; j < block; j++ {
				if j == hot {
					row = append(row, 1)
				} else {
					row = append(row, 0)
				}
			}
		}
		for j := 0; j < 7; j++ {
			row = append(row, rng.Float64())
		}
		hot := rng.Intn(4)
		for j := 0; j < 4; j++ {
			if j == hot {
				row = append(row, 1)
			} else {
				row = append(row, 0)
			}
		}
		return row
	}
	for _, B := range []int{1, 8, 16, 64} {
		xs := make([][]float64, B)
		for i := range xs {
			xs[i] = featureVec()
		}

		// FLOP accounting: FLOPsPerStep multiply-adds per lane-step, and
		// the weight bytes each step streams (8 bytes per multiply-add
		// pair), so -bench output carries GFLOP/s and MB/s per mode and
		// per GEMM kernel family (MIMICNET_GEMM selects the kernel).
		flopStep := model.FLOPsPerStep()

		b.Run(fmt.Sprintf("per-packet/B=%d", B), func(b *testing.B) {
			sms := make([]*ml.StatefulModel, B)
			for i := range sms {
				sms[i] = ml.NewStatefulModel(model)
			}
			b.SetBytes(int64(8 * flopStep / 2 * float64(B)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for lane := 0; lane < B; lane++ {
					_ = sms[lane].Predict(xs[lane])
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*B), "ns/step")
			b.ReportMetric(flopStep*float64(b.N*B)/b.Elapsed().Seconds()/1e9, "GFLOP/s")
		})

		b.Run(fmt.Sprintf("batched/B=%d", B), func(b *testing.B) {
			bat := ml.NewBatchedStatefulModel(model, B, nil)
			lanes := make([]int, B)
			for i := range lanes {
				lanes[i] = i
			}
			preds := make([]ml.Prediction, B)
			b.SetBytes(int64(8 * flopStep / 2 * float64(B)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bat.StepLanes(lanes, xs, nil, preds)
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*B), "ns/step")
			b.ReportMetric(flopStep*float64(b.N*B)/b.Elapsed().Seconds()/1e9, "GFLOP/s")
		})
	}
}

// trainModeStats is one row of BENCH_train.json.
type trainModeStats struct {
	Mode          string  `json:"mode"`
	GemmKernel    string  `json:"gemm_kernel"`
	BatchSize     int     `json:"batch_size"`
	Runs          int     `json:"runs"`
	Samples       int     `json:"samples"`
	SamplesPerSec float64 `json:"samples_per_second"`
	NsPerSample   float64 `json:"ns_per_sample"`
	AllocsPerSamp float64 `json:"allocs_per_sample"`
}

// BenchmarkTrain measures the minibatch trainer (the training-side mirror
// of BenchmarkMimicInference) against the retained sequential reference
// on one identical synthetic dataset shaped like real extracted features.
// One iteration = one full training epoch over the dataset. The batched
// trainer at B=16 should be at least 2x the sequential samples/sec even
// on one core: each optimizer step amortizes the clip+Adam full-parameter
// sweep over B samples, and the GEMM formulation removes the per-step
// slice allocations of the scalar path.
//
// When $BENCH_TRAIN_JSON names a file (see `make bench-train`), the same
// numbers are written there as JSON for machine comparison.
func BenchmarkTrain(b *testing.B) {
	const (
		features = 23 // feature width of the default topology
		window   = 8
		nSamples = 512
	)
	rng := stats.NewStream(1)
	samples := make([]ml.Sample, nSamples)
	for i := range samples {
		w := make([][]float64, window)
		for t := range w {
			row := make([]float64, features)
			for j := range row {
				row[j] = rng.Float64()
			}
			w[t] = row
		}
		samples[i] = ml.Sample{
			Window:  w,
			Latency: rng.Float64(),
			Dropped: rng.Float64() < 0.1,
			ECN:     rng.Float64() < 0.2,
		}
	}

	var order []string
	report := map[string]trainModeStats{}
	for _, m := range []struct {
		name  string
		batch int
	}{
		{"sequential", 1},
		{"batched/B=8", 8},
		{"batched/B=16", 16},
	} {
		m := m
		b.Run(m.name, func(b *testing.B) {
			cfg := ml.DefaultModelConfig(features, window)
			cfg.Epochs = 1
			cfg.BatchSize = m.batch
			model, err := ml.NewModel(cfg)
			if err != nil {
				b.Fatal(err)
			}
			// ~forward + 2x backward over the window per sample; one
			// iteration is a full epoch over the dataset.
			flopSample := 3 * model.FLOPsPerStep() * float64(window)
			b.SetBytes(int64(8 * flopSample / 2 * float64(nSamples)))
			var ms0, ms1 runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&ms0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				model.Train(samples)
			}
			b.StopTimer()
			runtime.ReadMemStats(&ms1)
			total := nSamples * b.N
			st := trainModeStats{
				Mode:          m.name,
				GemmKernel:    ml.GemmKernelName(),
				BatchSize:     m.batch,
				Runs:          b.N,
				Samples:       nSamples,
				SamplesPerSec: float64(total) / b.Elapsed().Seconds(),
				NsPerSample:   float64(b.Elapsed().Nanoseconds()) / float64(total),
				AllocsPerSamp: float64(ms1.Mallocs-ms0.Mallocs) / float64(total),
			}
			b.ReportMetric(st.SamplesPerSec, "samples/sec")
			b.ReportMetric(st.NsPerSample, "ns/sample")
			b.ReportMetric(st.AllocsPerSamp, "allocs/sample")
			b.ReportMetric(flopSample*float64(total)/b.Elapsed().Seconds()/1e9, "GFLOP/s")
			if _, seen := report[m.name]; !seen {
				order = append(order, m.name)
			}
			report[m.name] = st
		})
	}

	if path := os.Getenv("BENCH_TRAIN_JSON"); path != "" && len(report) > 0 {
		rows := make([]trainModeStats, 0, len(order))
		for _, name := range order {
			rows = append(rows, report[name])
		}
		data, err := json.MarshalIndent(rows, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			b.Fatal(err)
		}
		b.Logf("wrote %s", path)
	}
}

var (
	composeBenchOnce sync.Once
	composeBenchArt  *core.Artifacts
	composeBenchErr  error
)

// composeBenchBase mirrors the fast 2-cluster config the core tests
// train on: small enough that the fixed training cost stays in seconds.
func composeBenchBase() cluster.Config {
	cfg := cluster.DefaultConfig(2)
	cfg.Workload = workload.DefaultConfig(20_000)
	cfg.Workload.Duration = 150 * sim.Millisecond
	cfg.Workload.Load = 0.7
	return cfg
}

// composeBenchArtifacts trains one small artifact set shared across all
// iterations of BenchmarkComposedRun.
func composeBenchArtifacts(b *testing.B) *core.Artifacts {
	b.Helper()
	composeBenchOnce.Do(func() {
		pcfg := core.DefaultPipelineConfig(composeBenchBase())
		pcfg.SmallScaleDuration = 200 * sim.Millisecond
		tc := core.DefaultTrainConfig()
		tc.Dataset.Window = 6
		tc.Model = ml.DefaultModelConfig(0, 6)
		tc.Model.Hidden = 12
		tc.Model.Epochs = 2
		pcfg.Train = tc
		composeBenchArt, composeBenchErr = core.RunPipeline(pcfg)
	})
	if composeBenchErr != nil {
		b.Fatal(composeBenchErr)
	}
	return composeBenchArt
}

// composeModeStats is one row of BENCH_compose.json.
type composeModeStats struct {
	Mode           string  `json:"mode"`
	Workers        int     `json:"workers"`
	Runs           int     `json:"runs"`
	EventsPerRun   uint64  `json:"events_per_run"`
	NsPerSimSecond float64 `json:"ns_per_simulated_second"`
	EventsPerSec   float64 `json:"events_per_second"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
}

// composeBaselinePreRefactor is this benchmark's output measured at the
// last commit where Composed was its own runtime, immediately before the
// role-based engine replaced it (same machine, same config). It is
// embedded in BENCH_compose.json next to the fresh rows so the
// refactor's zero-regression claim stays checkable from the artifact
// alone.
var composeBaselinePreRefactor = []composeModeStats{
	{Mode: "sequential", Workers: 0, Runs: 3, EventsPerRun: 115081,
		NsPerSimSecond: 779284904.4, EventsPerSec: 984500.9, AllocsPerEvent: 2.2203},
	{Mode: "sharded/w=8", Workers: 8, Runs: 3, EventsPerRun: 115925,
		NsPerSimSecond: 1098063120, EventsPerSec: 703815.0, AllocsPerEvent: 2.8386},
}

// BenchmarkComposedRun measures the production composed estimate at N=8
// clusters: the sequential event loop versus the sharded
// one-LP-per-cluster run (the tentpole of the sharding PR). Each
// iteration composes and runs a fresh simulation, as a real estimate
// would. Reported metrics: ns of wall-clock per simulated second,
// processed events per wall-clock second, and heap allocations per
// event (composition included — it is part of every estimate).
//
// When $BENCH_COMPOSE_JSON names a file (see `make bench-json`), the
// same numbers are written there as JSON for machine comparison. The
// speedup of sharded over sequential only materializes with
// GOMAXPROCS > 1; on a single core the sharded run degrades to the
// windowed serial schedule and should roughly tie.
func BenchmarkComposedRun(b *testing.B) {
	art := composeBenchArtifacts(b)
	const clusters = 8
	const horizon = 150 * sim.Millisecond

	// The runner invokes each sub-benchmark more than once (a probe run,
	// then the measured one); keep only the last stats per mode.
	var order []string
	report := map[string]composeModeStats{}
	for _, m := range []struct {
		name       string
		shardedRun int
		workers    int
		roleVector bool // construct via NewEngine+ComposedRoles instead of Compose
	}{
		{"sequential", -1, 0, false},
		{"sharded/w=8", 1, 8, false},
		// The same composition through the explicit role-vector API —
		// Compose is a thin wrapper over it, so this row pins the direct
		// engine path's cost at the wrapper's level.
		{"engine-roles/w=8", 1, 8, true},
	} {
		m := m
		b.Run(m.name, func(b *testing.B) {
			var events uint64
			var ms0, ms1 runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&ms0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cfg := composeBenchBase()
				cfg.Topo = cfg.Topo.WithClusters(clusters)
				cfg.ShardedRun = m.shardedRun
				cfg.NumWorkers = m.workers
				var comp *core.Engine
				var err error
				if m.roleVector {
					comp, err = core.NewEngine(cfg, core.ComposedRoles(clusters), art.Models)
				} else {
					comp, err = core.Compose(cfg, art.Models)
				}
				if err != nil {
					b.Fatal(err)
				}
				comp.Run(horizon)
				res := comp.Results()
				if len(res.FCTByID) == 0 {
					b.Fatal("benchmark run completed no flows")
				}
				events = res.Events
			}
			b.StopTimer()
			runtime.ReadMemStats(&ms1)
			totalEvents := events * uint64(b.N)
			simSeconds := horizon.Seconds()
			st := composeModeStats{
				Mode:           m.name,
				Workers:        m.workers,
				Runs:           b.N,
				EventsPerRun:   events,
				NsPerSimSecond: float64(b.Elapsed().Nanoseconds()) / float64(b.N) / simSeconds,
				EventsPerSec:   float64(totalEvents) / b.Elapsed().Seconds(),
				AllocsPerEvent: float64(ms1.Mallocs-ms0.Mallocs) / float64(totalEvents),
			}
			b.ReportMetric(st.NsPerSimSecond, "ns/simsec")
			b.ReportMetric(st.EventsPerSec, "events/sec")
			b.ReportMetric(st.AllocsPerEvent, "allocs/event")
			if _, seen := report[m.name]; !seen {
				order = append(order, m.name)
			}
			report[m.name] = st
		})
	}

	if path := os.Getenv("BENCH_COMPOSE_JSON"); path != "" && len(report) > 0 {
		rows := make([]composeModeStats, 0, len(order))
		for _, name := range order {
			rows = append(rows, report[name])
		}
		out := struct {
			PreRefactor []composeModeStats `json:"pre_refactor_baseline"`
			Modes       []composeModeStats `json:"modes"`
		}{composeBaselinePreRefactor, rows}
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			b.Fatal(err)
		}
		b.Logf("wrote %s", path)
	}
}

// datasetBuildStats is one row of BENCH_dataset.json.
type datasetBuildStats struct {
	Layout string `json:"layout"`
	Runs   int    `json:"runs"`
	// Records/Samples per build, and the per-sample irreducible payload:
	// one feature row (8*width) + latency (8) + two flags (2).
	Samples          int     `json:"samples"`
	PayloadPerSample float64 `json:"payload_bytes_per_sample"`

	NsPerSample        float64 `json:"ns_per_sample"`
	AllocsPerSample    float64 `json:"allocs_per_sample"`
	BytesPerSample     float64 `json:"alloc_bytes_per_sample"`
	OverheadPerSample  float64 `json:"overhead_bytes_per_sample"`
	TrainSamplesPerSec float64 `json:"train_samples_per_second"`
}

// synthBoundaryTrace fabricates a boundary trace shaped like the real
// tracer's output: monotone entries, plausible latencies, a few drops
// and CE marks.
func synthBoundaryTrace(n int, spec core.FeatureSpec) []*core.TraceRecord {
	rng := stats.NewStream(17)
	records := make([]*core.TraceRecord, n)
	entry := sim.Time(0)
	for i := range records {
		entry += sim.Time(1000 + rng.Intn(20_000)) // 1–21 us gaps
		r := &core.TraceRecord{
			PktID: uint64(i), Dir: core.Ingress, Matched: true,
			Entry: entry,
			Info: core.PacketInfo{
				LocalRack:   rng.Intn(spec.Racks),
				LocalServer: rng.Intn(spec.Servers),
				LocalAgg:    rng.Intn(spec.Aggs),
				Core:        rng.Intn(spec.Cores),
				SizeBytes:   64 + rng.Intn(1436),
				IsAck:       rng.Float64() < 0.4,
				ECT:         true,
				Priority:    rng.Intn(8),
				ArrivalTime: entry,
			},
		}
		if rng.Float64() < 0.01 {
			r.Dropped = true
		} else {
			r.Exit = entry + sim.Time(5_000+rng.Intn(400_000))
			r.CEOut = rng.Float64() < 0.05
		}
		records[i] = r
	}
	return records
}

// legacyBuildDataset replicates the seed's window-of-slices dataset
// builder: per-sample materialized padded windows and grow-by-append
// banks. It is the baseline the columnar core.BuildDataset is measured
// against (the builders produce bit-identical features and targets; see
// core's TestBuildDatasetMatchesLegacyLayout).
func legacyBuildDataset(records []*core.TraceRecord, spec core.FeatureSpec, cfg core.DatasetConfig) []ml.Sample {
	lo, hi := 1e300, -1e300
	for _, r := range records {
		if r.Dropped {
			continue
		}
		if l := r.Latency(); l < lo {
			lo = l
		}
		if l := r.Latency(); l > hi {
			hi = l
		}
	}
	disc := ml.Discretizer{Lo: lo, Hi: hi, D: cfg.LatencyBins}
	ex := core.NewExtractor(spec, lo, hi)
	width := spec.Width()
	window := make([][]float64, 0, cfg.Window)
	var samples []ml.Sample
	var infoBank []core.PacketInfo
	var interarrivals []float64
	lastEntry := -1.0
	for _, r := range records {
		feat := ex.Features(r.Info)
		infoBank = append(infoBank, r.Info)
		if lastEntry >= 0 {
			interarrivals = append(interarrivals, r.Entry.Seconds()-lastEntry)
		}
		lastEntry = r.Entry.Seconds()
		window = append(window, feat)
		if len(window) > cfg.Window {
			window = window[1:]
		}
		sample := ml.Sample{Dropped: r.Dropped, ECN: r.CEOut && !r.Info.CEIn}
		if r.Dropped {
			sample.Latency = 1.0
		} else {
			sample.Latency = disc.Normalize(r.Latency())
		}
		win := make([][]float64, cfg.Window)
		pad := cfg.Window - len(window)
		for i := 0; i < pad; i++ {
			win[i] = make([]float64, width)
		}
		copy(win[pad:], window)
		sample.Window = win
		samples = append(samples, sample)
		if r.Dropped {
			ex.ObserveOutcome(hi, true)
		} else {
			ex.ObserveOutcome(r.Latency(), false)
		}
	}
	_ = infoBank
	_ = interarrivals
	return samples
}

// BenchmarkDatasetBuild measures dataset construction in the seed's
// window-of-slices layout against the columnar flat-matrix layout, on
// an identical synthetic boundary trace. Reported per sample: build
// time, heap allocations, total allocated bytes, and overhead bytes —
// allocated bytes beyond the irreducible payload (the feature row and
// targets themselves, which any layout must store). The seed layout
// already aliased window rows rather than copying them, so total bytes
// shrink ~3x; the structural overhead (per-sample window arrays,
// padding rows, growth reallocation) is what the columnar layout
// eliminates, and allocs/sample drops to ~0. A training throughput
// probe over each layout's output guards against the flat matrix
// regressing the trainers.
//
// When $BENCH_DATASET_JSON names a file (see `make bench-dataset`), the
// same numbers are written there as JSON for machine comparison.
func BenchmarkDatasetBuild(b *testing.B) {
	const nRecords = 4096
	const trainProbe = 512
	spec := core.NewFeatureSpec(cluster.DefaultConfig(2).Topo)
	dcfg := core.DefaultDatasetConfig()
	records := synthBoundaryTrace(nRecords, spec)
	width := spec.Width()
	payload := float64(8*width + 8 + 2)

	trainCfg := ml.DefaultModelConfig(width, dcfg.Window)
	trainCfg.Epochs = 1

	var order []string
	report := map[string]datasetBuildStats{}
	record := func(b *testing.B, layout string, ms0, ms1 *runtime.MemStats, trainSec float64) {
		total := nRecords * b.N
		st := datasetBuildStats{
			Layout: layout, Runs: b.N, Samples: nRecords,
			PayloadPerSample: payload,
			NsPerSample:      float64(b.Elapsed().Nanoseconds()) / float64(total),
			AllocsPerSample:  float64(ms1.Mallocs-ms0.Mallocs) / float64(total),
			BytesPerSample:   float64(ms1.TotalAlloc-ms0.TotalAlloc) / float64(total),
		}
		st.OverheadPerSample = st.BytesPerSample - payload
		if trainSec > 0 {
			st.TrainSamplesPerSec = float64(trainProbe) / trainSec
		}
		b.ReportMetric(st.AllocsPerSample, "allocs/sample")
		b.ReportMetric(st.BytesPerSample, "bytes/sample")
		b.ReportMetric(st.OverheadPerSample, "overhead-bytes/sample")
		if _, seen := report[layout]; !seen {
			order = append(order, layout)
		}
		report[layout] = st
	}

	b.Run("legacy", func(b *testing.B) {
		var samples []ml.Sample
		var ms0, ms1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&ms0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			samples = legacyBuildDataset(records, spec, dcfg)
		}
		b.StopTimer()
		runtime.ReadMemStats(&ms1)
		model, err := ml.NewModel(trainCfg)
		if err != nil {
			b.Fatal(err)
		}
		t0 := time.Now()
		model.Train(samples[:trainProbe])
		record(b, "legacy", &ms0, &ms1, time.Since(t0).Seconds())
	})

	b.Run("columnar", func(b *testing.B) {
		var ds *core.Dataset
		var err error
		var ms0, ms1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&ms0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ds, err = core.BuildDataset(core.Ingress, records, spec, dcfg)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		runtime.ReadMemStats(&ms1)
		model, err := ml.NewModel(trainCfg)
		if err != nil {
			b.Fatal(err)
		}
		t0 := time.Now()
		model.TrainSource(ds.Samples.Slice(0, trainProbe))
		record(b, "columnar", &ms0, &ms1, time.Since(t0).Seconds())
	})

	if path := os.Getenv("BENCH_DATASET_JSON"); path != "" && len(report) > 0 {
		rows := make([]datasetBuildStats, 0, len(order))
		for _, name := range order {
			rows = append(rows, report[name])
		}
		out := struct {
			Modes []datasetBuildStats `json:"modes"`
			// Headline ratios: legacy / columnar.
			AllocRatio    float64 `json:"allocs_per_sample_ratio"`
			BytesRatio    float64 `json:"alloc_bytes_per_sample_ratio"`
			OverheadRatio float64 `json:"overhead_bytes_per_sample_ratio"`
		}{Modes: rows}
		if l, c := report["legacy"], report["columnar"]; c.AllocsPerSample > 0 {
			out.AllocRatio = l.AllocsPerSample / c.AllocsPerSample
			out.BytesRatio = l.BytesPerSample / c.BytesPerSample
			if c.OverheadPerSample > 0 {
				out.OverheadRatio = l.OverheadPerSample / c.OverheadPerSample
			}
		}
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			b.Fatal(err)
		}
		b.Logf("wrote %s", path)
	}
}

// Ablations beyond the paper (see DESIGN.md "Key design decisions").

func BenchmarkAblationA_CongestionState(b *testing.B) {
	r := runner()
	emit(b, func() (*experiments.Table, error) {
		return r.AblationCongestionState(8)
	})
}

func BenchmarkAblationB_Feeders(b *testing.B) {
	r := runner()
	emit(b, func() (*experiments.Table, error) {
		return r.AblationFeeders(8)
	})
}

func BenchmarkAblationC_Discretization(b *testing.B) {
	r := runner()
	emit(b, func() (*experiments.Table, error) {
		return r.AblationDiscretization([]int{1, 10, 100, 1000})
	})
}

func BenchmarkAblationD_QueueDisciplines(b *testing.B) {
	r := runner()
	emit(b, func() (*experiments.Table, error) {
		return r.AblationQueues(4)
	})
}

func BenchmarkAblationE_FeederDistribution(b *testing.B) {
	r := runner()
	emit(b, func() (*experiments.Table, error) {
		return r.AblationFeederDistribution(8)
	})
}

func BenchmarkAblationF_ModelClass(b *testing.B) {
	r := runner()
	emit(b, func() (*experiments.Table, error) {
		return r.AblationModelClass(8)
	})
}
