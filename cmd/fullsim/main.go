// Command fullsim runs a full-fidelity packet-level simulation of a
// FatTree data center and reports the end-to-end metrics MimicNet
// estimates: FCT, per-server throughput, and RTT distributions.
//
// Example:
//
//	fullsim -clusters 8 -protocol dctcp -run 500ms -load 0.7
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mimicnet/internal/cluster"
	"mimicnet/internal/sim"
	"mimicnet/internal/stats"
	"mimicnet/internal/transport"
	"mimicnet/internal/workload"
)

func main() {
	var (
		clusters   = flag.Int("clusters", 2, "number of clusters")
		racks      = flag.Int("racks", 2, "racks per cluster")
		hosts      = flag.Int("hosts", 4, "hosts per rack")
		aggs       = flag.Int("aggs", 2, "aggregation switches per cluster")
		cores      = flag.Int("cores-per-agg", 2, "core switches per agg index")
		protocol   = flag.String("protocol", "newreno", "transport: newreno|dctcp|vegas|westwood|homa")
		load       = flag.Float64("load", 0.7, "offered load as a fraction of bisection bandwidth")
		meanFlow   = flag.Float64("mean-flow", 150_000, "mean flow size in bytes")
		duration   = flag.Duration("duration", 150*time.Millisecond, "workload generation horizon (simulated)")
		run        = flag.Duration("run", 300*time.Millisecond, "simulated time to run")
		seed       = flag.Int64("seed", 1, "workload seed")
		ecnK       = flag.Int("ecn-k", 20, "ECN marking threshold (DCTCP)")
		queueCap   = flag.Int("queue", 100, "switch queue capacity in packets")
		observable = flag.Int("observable", 0, "cluster to instrument")
	)
	flag.Parse()

	p, err := transport.ByName(*protocol)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	cfg := cluster.DefaultConfig(*clusters)
	cfg.Topo.RacksPerCluster = *racks
	cfg.Topo.HostsPerRack = *hosts
	cfg.Topo.AggPerCluster = *aggs
	cfg.Topo.CoresPerAgg = *cores
	cfg.Protocol = p
	cfg.Workload = workload.DefaultConfig(*meanFlow)
	cfg.Workload.Load = *load
	cfg.Workload.Duration = sim.Time(*duration)
	cfg.Workload.Seed = *seed
	cfg.ECNThresholdK = *ecnK
	cfg.QueueCapacity = *queueCap
	cfg.Observable = *observable

	inst, err := cluster.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("fullsim: %d clusters, %d hosts, %d flows scheduled, protocol %s\n",
		*clusters, inst.Topo.Hosts(), len(inst.Flows()), p.Name())
	t0 := time.Now()
	inst.Run(sim.Time(*run))
	wall := time.Since(t0)
	res := inst.Results()

	fmt.Printf("wall clock          %v (%.2f sim-sec/sec)\n", wall.Round(time.Millisecond),
		sim.Time(*run).Seconds()/wall.Seconds())
	fmt.Printf("events processed    %d\n", res.Events)
	fmt.Printf("packets injected    %d (%d dropped)\n", res.Packets, res.Drops)
	fmt.Printf("observable flows    %d started, %d completed\n", inst.FlowsStarted, inst.FlowsCompleted)
	printDist("fct_seconds", res.FCTs)
	printDist("throughput_Bps", res.Throughputs)
	printDist("rtt_seconds", res.RTTs)
}

func printDist(name string, d []float64) {
	if len(d) == 0 {
		fmt.Printf("%-18s (no samples)\n", name)
		return
	}
	fmt.Printf("%-18s n=%d p50=%.4g p90=%.4g p99=%.4g mean=%.4g\n",
		name, len(d),
		stats.Quantile(d, 0.5), stats.Quantile(d, 0.9),
		stats.Quantile(d, 0.99), stats.Mean(d))
}
