package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"mimicnet/internal/serve"
)

// smokeSpec is the smallest job that exercises the real pipeline:
// 2-cluster estimate, 1-rack clusters, thumbnail model. Trains in well
// under a second.
func smokeSpec() serve.JobSpec {
	return serve.JobSpec{
		Clusters: 2, Racks: 1, Hosts: 2, Aggs: 1, CoresPerAgg: 1,
		WorkloadMs: 40, RunMs: 60, SmallRunMs: 50,
		Window: 4, Hidden: 6, Epochs: 1,
	}
}

// smokeBench is the BENCH_serve.json payload: the amortization numbers
// the service exists to deliver.
type smokeBench struct {
	ColdMs         float64 `json:"cold_job_ms"` // submit→done, training included
	WarmMs         float64 `json:"warm_job_ms"` // submit→done, registry hit
	WarmSpeedup    float64 `json:"warm_speedup"`
	WarmJobsPerSec float64 `json:"warm_jobs_per_sec"`
	WarmBatch      int     `json:"warm_batch_jobs"`
	RegistryHits   uint64  `json:"registry_hits"`
	RegistryMisses uint64  `json:"registry_misses"`
}

// smokeRecovery is smoke phase 4: the kill-and-resume drill against the
// durable daemon stack. A -data-dir daemon is killed mid-train (after at
// least one epoch-boundary checkpoint has landed on disk), then a
// successor daemon over the same directories must recover the job from
// the journal, resume its training from the checkpoint, and store the
// finished artifact.
func smokeRecovery(ctx context.Context, queueDepth, workers int, drainTimeout time.Duration) error {
	dataDir, err := os.MkdirTemp("", "mimicnet-smoke-durable-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dataDir)

	// Enough epochs that the kill lands mid-train; the thumbnail model
	// checkpoints at every epoch boundary (the cost throttle always
	// persists the first cut).
	spec := smokeSpec()
	spec.Epochs = 40

	d1, err := newDaemon("127.0.0.1:0", "", dataDir, 8, queueDepth, workers, 0, drainTimeout)
	if err != nil {
		return err
	}
	defer d1.ln.Close()
	j1, err := d1.sched.Submit(spec)
	if err != nil {
		return err
	}
	for {
		if tp := j1.Status().Progress.Train; tp != nil && tp.Epoch >= 2 {
			break
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("job %s never reported training progress", j1.ID())
		case <-time.After(2 * time.Millisecond):
		}
	}
	d1.sched.Kill()
	select {
	case <-j1.Done():
	case <-ctx.Done():
		return fmt.Errorf("killed job never wound down")
	}
	ckpts, _ := filepath.Glob(filepath.Join(dataDir, "ckpt", "*.ckpt"))
	if len(ckpts) == 0 {
		return fmt.Errorf("kill left no training checkpoints under %s", dataDir)
	}
	key := j1.Status().ModelKey
	if d1.reg.Contains(key) {
		return fmt.Errorf("killed job cached a finished artifact")
	}

	// Successor over the same directories: newDaemon's recovery pass
	// re-enqueues the journaled job under its original ID.
	d2, err := newDaemon("127.0.0.1:0", "", dataDir, 8, queueDepth, workers, 0, drainTimeout)
	if err != nil {
		return err
	}
	defer d2.ln.Close()
	j2, err := d2.sched.Job(j1.ID())
	if err != nil {
		return fmt.Errorf("journaled job lost in recovery: %w", err)
	}
	select {
	case <-j2.Done():
	case <-ctx.Done():
		return fmt.Errorf("recovered job never finished")
	}
	if st := j2.Status(); st.State != serve.StateDone || st.Result == nil || st.Result.Cancelled {
		return fmt.Errorf("recovered job ended state=%s result=%+v", st.State, st.Result)
	}
	if !d2.reg.Contains(key) {
		return fmt.Errorf("recovered job's artifact missing from the registry")
	}
	if err := d2.sched.Close(); err != nil {
		return err
	}
	log.Printf("smoke: crash recovery ok — job %s killed mid-train (%d checkpoint files on disk), resumed and finished by the rebuilt daemon",
		j1.ID(), len(ckpts))
	return nil
}

// runSmoke is the serve-smoke acceptance test, against the real daemon
// stack (real listener, real signal handling):
//
//  1. cold job over HTTP completes and is not a cache hit;
//  2. the identical job resubmitted is a registry hit visible in /stats,
//     with a bitwise-identical estimate;
//  3. a batch of warm jobs measures steady-state throughput;
//  4. a durable daemon (-data-dir wiring) is killed mid-train after at
//     least one checkpoint write; a daemon rebuilt on the same
//     directories re-enqueues the job from the journal, resumes it from
//     the checkpoint, and lands the artifact in the registry;
//  5. SIGTERM mid-job drains: the in-flight job finishes (not
//     cancelled), new submissions are rejected, the process-level serve
//     loop returns. (Last: it signals the whole process.)
func runSmoke(queueDepth, workers int, drainTimeout time.Duration, benchPath string) error {
	store, err := os.MkdirTemp("", "mimicnet-smoke-registry-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(store)

	d, err := newDaemon("127.0.0.1:0", store, "", 8, queueDepth, workers, 0, drainTimeout)
	if err != nil {
		return err
	}
	go d.Serve()
	c := serve.NewClient(d.URL())
	for i := 0; !c.Healthy(); i++ {
		if i > 100 {
			return fmt.Errorf("daemon at %s never became healthy", d.URL())
		}
		time.Sleep(10 * time.Millisecond)
	}
	log.Printf("smoke: daemon up at %s", d.URL())

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	runJob := func(spec serve.JobSpec) (serve.JobStatus, time.Duration, error) {
		t0 := time.Now()
		st, err := c.Submit(spec)
		if err != nil {
			return st, 0, err
		}
		st, err = c.Wait(ctx, st.ID, 10*time.Millisecond, nil)
		if err == nil && st.State != serve.StateDone {
			err = fmt.Errorf("job %s: state=%s err=%q", st.ID, st.State, st.Error)
		}
		return st, time.Since(t0), err
	}

	// 1. Cold job: trains, composes, delivers an estimate.
	cold, coldDur, err := runJob(smokeSpec())
	if err != nil {
		return fmt.Errorf("cold job: %w", err)
	}
	if cold.Result.CacheHit {
		return fmt.Errorf("cold job reported a cache hit on an empty registry")
	}
	if cold.Result.FCTSeconds.N == 0 {
		return fmt.Errorf("cold job produced no FCT samples")
	}
	// The train phase must report real progress (it was a silent gap
	// before the minibatch trainer); the final-epoch report survives the
	// phase change, so the terminal status is safe to assert on even
	// though the job trains in milliseconds.
	tp := cold.Progress.Train
	if tp == nil {
		return fmt.Errorf("cold job reported no training progress")
	}
	if tp.Epoch != tp.Epochs || tp.Epochs == 0 || tp.SamplesPerSec <= 0 || tp.BatchSize < 1 ||
		(tp.Direction != "ingress" && tp.Direction != "egress") {
		return fmt.Errorf("cold job training progress is malformed: %+v", *tp)
	}
	log.Printf("smoke: cold job %s done in %v (train %.0fms, compose %.0fms, %d FCT samples, "+
		"last train report %s epoch %d/%d @ %.0f samples/sec)",
		cold.ID, coldDur.Round(time.Millisecond), cold.Result.TrainMs, cold.Result.ComposeMs,
		cold.Result.FCTSeconds.N, tp.Direction, tp.Epoch, tp.Epochs, tp.SamplesPerSec)

	// 2. Warm job: identical spec must skip training via the registry.
	warm, warmDur, err := runJob(smokeSpec())
	if err != nil {
		return fmt.Errorf("warm job: %w", err)
	}
	if !warm.Result.CacheHit {
		return fmt.Errorf("identical resubmission did not hit the model registry")
	}
	if warm.ModelKey != cold.ModelKey {
		return fmt.Errorf("identical specs keyed differently: %s vs %s", warm.ModelKey, cold.ModelKey)
	}
	if warm.Result.FCTSeconds != cold.Result.FCTSeconds {
		return fmt.Errorf("warm estimate diverged from cold: %+v vs %+v",
			warm.Result.FCTSeconds, cold.Result.FCTSeconds)
	}
	if warm.Progress.Train != nil {
		return fmt.Errorf("warm job reported training progress despite the registry hit")
	}
	stats, err := c.Stats()
	if err != nil {
		return err
	}
	if stats.Registry.Hits() == 0 {
		return fmt.Errorf("/stats shows no registry hits after resubmission: %+v", stats.Registry)
	}
	log.Printf("smoke: warm job %s done in %v — cache hit confirmed in /stats (hits=%d)",
		warm.ID, warmDur.Round(time.Millisecond), stats.Registry.Hits())

	// 3. Steady-state throughput: a small batch of warm jobs.
	const batch = 6
	t0 := time.Now()
	ids := make([]string, 0, batch)
	for i := 0; i < batch; i++ {
		st, err := c.Submit(smokeSpec())
		if err != nil {
			return fmt.Errorf("warm batch submit %d: %w", i, err)
		}
		ids = append(ids, st.ID)
	}
	for _, id := range ids {
		st, err := c.Wait(ctx, id, 10*time.Millisecond, nil)
		if err != nil {
			return fmt.Errorf("warm batch wait %s: %w", id, err)
		}
		if st.State != serve.StateDone || !st.Result.CacheHit {
			return fmt.Errorf("warm batch job %s: state=%s cacheHit=%v", id, st.State, st.Result != nil && st.Result.CacheHit)
		}
	}
	batchDur := time.Since(t0)
	jobsPerSec := float64(batch) / batchDur.Seconds()
	log.Printf("smoke: %d warm jobs in %v (%.1f jobs/sec)", batch, batchDur.Round(time.Millisecond), jobsPerSec)

	// 4. Crash recovery: a durable daemon killed mid-train must leave a
	// journal entry and a training checkpoint behind, and a successor on
	// the same -data-dir must finish the job. Runs against an isolated
	// daemon (no Serve loop — the SIGTERM below must only hit the main
	// one) with direct scheduler handles, the same wiring newDaemon gives
	// the production path.
	if err := smokeRecovery(ctx, queueDepth, workers, drainTimeout); err != nil {
		return fmt.Errorf("crash recovery: %w", err)
	}

	// 5. Drain: SIGTERM ourselves mid-job through the real signal path.
	// A long-horizon job: flows keep arriving for the whole run so the
	// compose phase holds real wall-clock time for the signal to land in.
	long := smokeSpec()
	long.Clusters = 4
	long.WorkloadMs = 8000
	long.RunMs = 8000
	inflight, err := c.Submit(long)
	if err != nil {
		return fmt.Errorf("drain-test submit: %w", err)
	}
	for {
		st, err := c.Job(inflight.ID)
		if err != nil {
			return err
		}
		if st.State == serve.StateRunning && st.Progress.Phase == "compose" && st.Progress.Events > 0 {
			break
		}
		if st.State != serve.StateQueued && st.State != serve.StateRunning {
			return fmt.Errorf("drain-test job finished before SIGTERM could land (state %s); raise run_ms", st.State)
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("timed out waiting for drain-test job to start composing")
		case <-time.After(5 * time.Millisecond):
		}
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		return err
	}
	// Signal delivery is asynchronous; poll until admission closes.
	rejected := false
	for i := 0; i < 1000 && !rejected; i++ {
		_, err := c.Submit(smokeSpec())
		switch {
		case err == nil:
			time.Sleep(5 * time.Millisecond) // raced ahead of the signal; try again
		case strings.Contains(err.Error(), "draining"):
			rejected = true
		default:
			return fmt.Errorf("submit during drain failed unexpectedly: %w", err)
		}
	}
	if !rejected {
		return fmt.Errorf("submissions were never rejected after SIGTERM")
	}
	// The in-flight job must finish normally, not be cancelled by the
	// drain. The listener closes once the drain completes, so the final
	// check goes through the in-process job handle rather than HTTP.
	handle, err := d.sched.Job(inflight.ID)
	if err != nil {
		return fmt.Errorf("drain-test job lookup: %w", err)
	}
	select {
	case <-handle.Done():
	case <-ctx.Done():
		return fmt.Errorf("drain-test job never finished")
	}
	final := handle.Status()
	if final.State != serve.StateDone {
		return fmt.Errorf("in-flight job did not survive the drain: state=%s err=%q", final.State, final.Error)
	}
	if final.Result.Cancelled {
		return fmt.Errorf("in-flight job reported partial results after drain")
	}
	select {
	case <-d.done:
	case <-ctx.Done():
		return fmt.Errorf("daemon serve loop never returned after drain")
	}
	log.Printf("smoke: SIGTERM drain ok — in-flight job %s finished, new submissions rejected", inflight.ID)

	if benchPath != "" {
		bench := smokeBench{
			ColdMs:         float64(coldDur) / float64(time.Millisecond),
			WarmMs:         float64(warmDur) / float64(time.Millisecond),
			WarmJobsPerSec: jobsPerSec,
			WarmBatch:      batch,
			RegistryHits:   stats.Registry.Hits(),
			RegistryMisses: stats.Registry.Misses,
		}
		if warmDur > 0 {
			bench.WarmSpeedup = coldDur.Seconds() / warmDur.Seconds()
		}
		blob, err := json.MarshalIndent(bench, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(benchPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		log.Printf("smoke: wrote %s (cold %.0fms, warm %.0fms, %.1fx, %.1f jobs/sec)",
			benchPath, bench.ColdMs, bench.WarmMs, bench.WarmSpeedup, bench.WarmJobsPerSec)
	}
	return nil
}
