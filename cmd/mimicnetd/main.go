// Command mimicnetd is the MimicNet estimation daemon: a long-running
// simulation-as-a-service process around internal/serve. It queues
// estimation jobs (train → tune → compose), caches trained Mimic models
// in a content-addressed registry so identical configurations train at
// most once, and exposes a small JSON API:
//
//	POST   /v1/jobs      submit a job        (429 + Retry-After when full)
//	GET    /v1/jobs/{id} poll status/progress/result
//	DELETE /v1/jobs/{id} cancel
//	GET    /healthz      liveness (503 while draining)
//	GET    /stats        scheduler + registry counters
//	GET    /metrics      Prometheus text exposition (internal/obs)
//	GET    /debug/pprof/ Go runtime profiling
//
// SIGTERM/SIGINT drain gracefully: new submissions are rejected, queued
// and running jobs finish, then the process exits.
//
// With -data-dir the daemon is durable: accepted jobs are written to an
// append-only journal, training progress is checkpointed at epoch
// boundaries, and the model registry shares the same root. After a
// crash or kill -9, the next boot replays the journal, re-enqueues
// unfinished jobs under their original IDs, and resumes their training
// from the last checkpoint — producing artifacts bitwise identical to
// an uninterrupted run.
//
// Example:
//
//	mimicnetd -addr 127.0.0.1:9090 -data-dir /var/lib/mimicnet
//	curl -s -X POST localhost:9090/v1/jobs -d '{"clusters": 32}'
//	mimicnet -server http://127.0.0.1:9090 -clusters 32
//
// The -smoke flag runs the self-test used by `make serve-smoke`: boot on
// a random port, run a cold job, prove the identical warm job skips
// training via the registry, measure cold/warm latency and warm
// throughput (written to -bench-json), kill a durable daemon mid-train
// and prove the rebuilt daemon resumes the job from its checkpoint, then
// SIGTERM itself mid-job to verify the drain contract.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"mimicnet/internal/serve"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:9090", "listen address")
		store        = flag.String("store", defaultStore(), "on-disk model registry directory (ignored when -data-dir is set)")
		dataDir      = flag.String("data-dir", "", "durable state root: job journal, training checkpoints, and model registry live under it; jobs survive restarts (empty = in-memory jobs)")
		memCache     = flag.Int("mem-cache", 8, "decoded models held in the in-memory LRU")
		ckptEvery    = flag.Int("ckpt-every", 0, "epochs between training checkpoints under -data-dir (<=0 = every epoch, cost-throttled)")
		queueDepth   = flag.Int("queue", 64, "job queue capacity (admission control bound)")
		workers      = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Minute, "max wait for in-flight jobs on shutdown")
		smoke        = flag.Bool("smoke", false, "run the serve-smoke self-test and exit")
		benchJSON    = flag.String("bench-json", "", "write smoke latency/throughput measurements to this file")
	)
	flag.Parse()

	if *smoke {
		if err := runSmoke(*queueDepth, *workers, *drainTimeout, *benchJSON); err != nil {
			log.Fatalf("smoke: FAIL: %v", err)
		}
		fmt.Println("smoke: PASS")
		return
	}

	d, err := newDaemon(*addr, *store, *dataDir, *memCache, *queueDepth, *workers, *ckptEvery, *drainTimeout)
	if err != nil {
		log.Fatal(err)
	}
	durability := "in-memory jobs"
	if *dataDir != "" {
		durability = "data-dir " + *dataDir
	}
	log.Printf("mimicnetd listening on %s (%s, queue %d, workers %d)",
		d.URL(), durability, *queueDepth, d.sched.Workers())
	d.Serve()
	log.Printf("mimicnetd drained, exiting")
}

func defaultStore() string {
	if dir, err := os.UserCacheDir(); err == nil {
		return filepath.Join(dir, "mimicnet", "models")
	}
	return filepath.Join(os.TempDir(), "mimicnet-models")
}

// daemon bundles the serve stack with its listener and shutdown path so
// the smoke self-test exercises the exact production signal handling.
type daemon struct {
	reg          *serve.Registry
	sched        *serve.Scheduler
	httpSrv      *http.Server
	ln           net.Listener
	drainTimeout time.Duration
	done         chan struct{} // closed once Serve has fully drained
}

// newDaemon assembles the serve stack. A non-empty dataDir makes the
// daemon durable: the model registry moves to <dataDir>/registry, job
// state is journaled under <dataDir>/journal, and training cursors land
// in <dataDir>/ckpt — on boot, journaled unfinished jobs are re-enqueued
// and resume from their checkpoints.
func newDaemon(addr, store, dataDir string, memCache, queueDepth, workers, ckptEvery int, drainTimeout time.Duration) (*daemon, error) {
	if dataDir != "" {
		store = filepath.Join(dataDir, "registry")
	}
	reg, err := serve.NewRegistry(store, memCache)
	if err != nil {
		return nil, err
	}
	var sched *serve.Scheduler
	if dataDir != "" {
		var rep *serve.RecoveryReport
		sched, rep, err = serve.NewSchedulerWithOptions(reg, serve.SchedulerOptions{
			QueueDepth:      queueDepth,
			Workers:         workers,
			JournalDir:      filepath.Join(dataDir, "journal"),
			CheckpointDir:   filepath.Join(dataDir, "ckpt"),
			CheckpointEvery: ckptEvery,
			DatasetDir:      filepath.Join(dataDir, "datasets"),
		})
		if err != nil {
			return nil, fmt.Errorf("mimicnetd: journal recovery: %w", err)
		}
		log.Printf("mimicnetd: recovery: %s", rep)
	} else {
		sched = serve.NewScheduler(reg, queueDepth, workers)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		sched.Kill()
		return nil, err
	}
	return &daemon{
		reg:          reg,
		sched:        sched,
		httpSrv:      &http.Server{Handler: serve.NewServer(sched, reg).Handler()},
		ln:           ln,
		drainTimeout: drainTimeout,
		done:         make(chan struct{}),
	}, nil
}

// URL returns the daemon's base URL (useful with ":0" listen addresses).
func (d *daemon) URL() string { return "http://" + d.ln.Addr().String() }

// Serve blocks until SIGTERM/SIGINT, then drains: admission closes
// first, in-flight and queued jobs run to completion (bounded by
// -drain-timeout), and only then does the HTTP listener shut down — so
// clients can keep polling their jobs to the end.
func (d *daemon) Serve() {
	defer close(d.done)
	go func() {
		if err := d.httpSrv.Serve(d.ln); err != nil && err != http.ErrServerClosed {
			log.Printf("mimicnetd: http: %v", err)
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
	s := <-sig
	signal.Stop(sig)
	log.Printf("mimicnetd: %v: draining (running jobs finish, new submissions rejected)", s)

	drainCtx, cancel := context.WithTimeout(context.Background(), d.drainTimeout)
	defer cancel()
	if err := d.sched.Drain(drainCtx); err != nil {
		log.Printf("mimicnetd: drain incomplete: %v", err)
	}
	// Compact and release the journal: the next boot replays a snapshot
	// of terminal states instead of the full record history.
	if err := d.sched.Close(); err != nil {
		log.Printf("mimicnetd: journal close: %v", err)
	}
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	_ = d.httpSrv.Shutdown(shutCtx)
}
