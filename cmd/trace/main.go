// Command trace runs the small-scale 2-cluster full-fidelity simulation
// with MimicNet's boundary taps and dumps the matched packet trace as
// JSON Lines — the data-generation step of the workflow (paper §5.1) as
// a standalone tool. Feed the output to `mimicnet -trace` to train from
// a saved trace instead of re-simulating.
//
// Example:
//
//	trace -protocol dctcp -run 2s > dctcp.trace
//	mimicnet -trace dctcp.trace -clusters 64
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mimicnet/internal/cluster"
	"mimicnet/internal/core"
	"mimicnet/internal/sim"
	"mimicnet/internal/transport"
	"mimicnet/internal/workload"
)

func main() {
	var (
		racks    = flag.Int("racks", 2, "racks per cluster")
		hosts    = flag.Int("hosts", 4, "hosts per rack")
		aggs     = flag.Int("aggs", 2, "aggregation switches per cluster")
		cores    = flag.Int("cores-per-agg", 2, "core switches per agg index")
		protocol = flag.String("protocol", "newreno", "transport protocol")
		load     = flag.Float64("load", 0.7, "offered load")
		meanFlow = flag.Float64("mean-flow", 150_000, "mean flow size in bytes")
		run      = flag.Duration("run", 250*time.Millisecond, "simulated time")
		seed     = flag.Int64("seed", 1, "workload seed")
		ecnK     = flag.Int("ecn-k", 20, "ECN marking threshold (DCTCP)")
		out      = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	p, err := transport.ByName(*protocol)
	fatal(err)
	cfg := cluster.DefaultConfig(2)
	cfg.Topo.RacksPerCluster = *racks
	cfg.Topo.HostsPerRack = *hosts
	cfg.Topo.AggPerCluster = *aggs
	cfg.Topo.CoresPerAgg = *cores
	cfg.Protocol = p
	cfg.Workload = workload.DefaultConfig(*meanFlow)
	cfg.Workload.Load = *load
	cfg.Workload.Duration = sim.Time(*run)
	cfg.Workload.Seed = *seed
	cfg.ECNThresholdK = *ecnK

	inst, err := cluster.New(cfg)
	fatal(err)
	tracer := core.NewTracer(inst.Topo, 1)
	tracer.Attach(inst)
	inst.Run(sim.Time(*run))

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		fatal(err)
		defer f.Close()
		w = f
	}
	records := tracer.Records()
	fatal(core.WriteTrace(w, records))
	ing, eg := tracer.ByDirection()
	fmt.Fprintf(os.Stderr, "trace: %d records (%d ingress, %d egress), %d still in flight\n",
		len(records), len(ing), len(eg), tracer.PendingCount())
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "trace:", err)
		os.Exit(1)
	}
}
