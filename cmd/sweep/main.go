// Command sweep regenerates the paper's tables and figures (see
// DESIGN.md's per-experiment index and EXPERIMENTS.md for results).
//
// Examples:
//
//	sweep -experiment fig1 -sizes 4,8,16,32
//	sweep -experiment all -scale medium
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"mimicnet/internal/experiments"
	"mimicnet/internal/sim"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "fig1|fig2|table1|fig5|fig6|fig7|fig8|fig9|fig10|fig11|fig12|table2|fig13|fig14|fig16|fig17|fig18|fig19|fig20|fig21|fig22|fig23|ablation-congestion|ablation-feeders|ablation-discretization|ablation-queues|ablation-feeder-dist|ablation-model-class|all")
		sizesFlag  = flag.String("sizes", "4,8,16,32", "comma-separated cluster counts")
		largeFlag  = flag.Int("large", 16, "cluster count for the 'large' use-case experiments")
		scale      = flag.String("scale", "small", "small|medium|paper experiment scale")
		verbose    = flag.Bool("v", false, "progress logging to stderr")
	)
	flag.Parse()

	opts := experiments.Default()
	switch *scale {
	case "small":
		// defaults
	case "medium":
		opts.MeanFlowBytes = 50_000
		opts.Duration = 300 * sim.Millisecond
		opts.RunUntil = 600 * sim.Millisecond
		opts.SmallScale = 500 * sim.Millisecond
		opts.Window = 12
		opts.Hidden = 24
		opts.Epochs = 4
	case "paper":
		opts.MeanFlowBytes = 1.6e6
		opts.Duration = 2 * sim.Second
		opts.RunUntil = 4 * sim.Second
		opts.SmallScale = 2 * sim.Second
		opts.Window = 12
		opts.Hidden = 32
		opts.Epochs = 6
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(1)
	}
	if *verbose {
		opts.Log = os.Stderr
	}
	sizes := parseSizes(*sizesFlag)
	r := experiments.NewRunner(opts)

	type job struct {
		name string
		run  func() ([]*experiments.Table, error)
	}
	one := func(f func() (*experiments.Table, error)) func() ([]*experiments.Table, error) {
		return func() ([]*experiments.Table, error) {
			t, err := f()
			if err != nil {
				return nil, err
			}
			return []*experiments.Table{t}, nil
		}
	}
	jobs := []job{
		{"fig1", one(func() (*experiments.Table, error) { return r.Fig1(sizes) })},
		{"fig2", one(func() (*experiments.Table, error) { return r.Fig2([]int{4, 8, 16, 32}) })},
		{"table1", one(r.Table1)},
		{"fig5", one(r.Fig5)},
		{"fig6", one(r.Fig6)},
		{"fig7", one(func() (*experiments.Table, error) { return r.Fig7(2, *largeFlag) })},
		{"fig8", one(func() (*experiments.Table, error) { return r.Fig8(sizes) })},
		{"fig9", one(func() (*experiments.Table, error) { return r.Fig9(sizes) })},
		{"fig10", one(func() (*experiments.Table, error) { return r.Fig10(sizes, []int{2, 4}) })},
		{"fig11", one(func() (*experiments.Table, error) { return r.Fig11(sizes) })},
		{"fig12", one(func() (*experiments.Table, error) { return r.Fig12(sizes) })},
		{"table2", one(func() (*experiments.Table, error) { return r.Table2(maxOf(sizes)) })},
		{"fig13", one(func() (*experiments.Table, error) {
			return r.Fig13(*largeFlag, []int{5, 10, 20, 40, 60, 80})
		})},
		{"fig14", one(func() (*experiments.Table, error) { return r.Fig14(*largeFlag) })},
		{"fig16", one(func() (*experiments.Table, error) { return r.Fig16([]int{1, 2, 5, 10, 12, 20}) })},
		{"fig17", one(func() (*experiments.Table, error) { return r.Fig17([]int{1, 2, 5, 10, 12, 20}) })},
		{"fig18", one(func() (*experiments.Table, error) { return r.Fig18(*largeFlag) })},
		{"fig19", one(func() (*experiments.Table, error) { return r.Fig19(*largeFlag) })},
		{"fig20", one(func() (*experiments.Table, error) { return r.Fig20(*largeFlag) })},
		{"fig21", nil}, // handled jointly below
		{"fig22", nil},
		{"fig23", one(func() (*experiments.Table, error) { return r.Fig23(sizes) })},
		{"ablation-congestion", one(func() (*experiments.Table, error) { return r.AblationCongestionState(*largeFlag) })},
		{"ablation-feeders", one(func() (*experiments.Table, error) { return r.AblationFeeders(*largeFlag) })},
		{"ablation-discretization", one(func() (*experiments.Table, error) {
			return r.AblationDiscretization([]int{1, 10, 100, 1000})
		})},
		{"ablation-queues", one(func() (*experiments.Table, error) { return r.AblationQueues(4) })},
		{"ablation-feeder-dist", one(func() (*experiments.Table, error) { return r.AblationFeederDistribution(*largeFlag) })},
		{"ablation-model-class", one(func() (*experiments.Table, error) { return r.AblationModelClass(*largeFlag) })},
	}
	fig2122 := func() ([]*experiments.Table, error) {
		lat, tput, err := r.Fig21And22(maxOf(sizes), []sim.Time{
			opts.RunUntil, 2 * opts.RunUntil, 4 * opts.RunUntil,
		})
		if err != nil {
			return nil, err
		}
		return []*experiments.Table{lat, tput}, nil
	}
	for i := range jobs {
		if jobs[i].name == "fig21" || jobs[i].name == "fig22" {
			jobs[i].run = fig2122
		}
	}

	ran := false
	seen2122 := false
	start := time.Now()
	for _, j := range jobs {
		if *experiment != "all" && *experiment != j.name {
			continue
		}
		if j.name == "fig21" || j.name == "fig22" {
			if seen2122 && *experiment == "all" {
				continue
			}
			seen2122 = true
		}
		tables, err := j.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", j.name, err)
			os.Exit(1)
		}
		for _, t := range tables {
			t.Fprint(os.Stdout)
		}
		ran = true
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *experiment)
		os.Exit(1)
	}
	fmt.Printf("total sweep time: %v\n", time.Since(start).Round(time.Second))
}

func parseSizes(s string) []int {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 2 {
			fmt.Fprintf(os.Stderr, "bad size %q\n", part)
			os.Exit(1)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		out = []int{4, 8}
	}
	return out
}

func maxOf(xs []int) int {
	m := xs[0]
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
