// Command flowsim runs the flow-level (max-min fair fluid) baseline
// simulator over the same topology and workload as fullsim. It is fast
// but blind to packet effects; compare its distributions against fullsim
// to see the accuracy gap MimicNet closes (paper Figures 1 and 7).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mimicnet/internal/flowsim"
	"mimicnet/internal/sim"
	"mimicnet/internal/stats"
	"mimicnet/internal/topo"
	"mimicnet/internal/workload"
)

func main() {
	var (
		clusters = flag.Int("clusters", 2, "number of clusters")
		racks    = flag.Int("racks", 2, "racks per cluster")
		hosts    = flag.Int("hosts", 4, "hosts per rack")
		aggs     = flag.Int("aggs", 2, "aggregation switches per cluster")
		cores    = flag.Int("cores-per-agg", 2, "core switches per agg index")
		load     = flag.Float64("load", 0.7, "offered load")
		meanFlow = flag.Float64("mean-flow", 150_000, "mean flow size in bytes")
		duration = flag.Duration("duration", 150*time.Millisecond, "workload horizon (simulated)")
		run      = flag.Duration("run", 300*time.Millisecond, "simulated time to run")
		seed     = flag.Int64("seed", 1, "workload seed")
	)
	flag.Parse()

	cfg := flowsim.Config{
		Topo: topo.Config{
			Clusters:        *clusters,
			RacksPerCluster: *racks,
			HostsPerRack:    *hosts,
			AggPerCluster:   *aggs,
			CoresPerAgg:     *cores,
		},
		Workload: workload.DefaultConfig(*meanFlow),
		LinkBps:  100e6,
	}
	cfg.Workload.Load = *load
	cfg.Workload.Duration = sim.Time(*duration)
	cfg.Workload.Seed = *seed

	t0 := time.Now()
	res, err := flowsim.Run(cfg, sim.Time(*run))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	wall := time.Since(t0)
	fmt.Printf("flowsim: %d clusters, %d flows completed, %d rate recomputations\n",
		*clusters, res.Completed, res.Events)
	fmt.Printf("wall clock          %v (%.2f sim-sec/sec)\n",
		wall.Round(time.Millisecond), sim.Time(*run).Seconds()/wall.Seconds())
	printDist("fct_seconds", res.FCTs)
	printDist("throughput_Bps", res.Throughputs)
	fmt.Println("rtt_seconds         (not available at flow granularity)")
}

func printDist(name string, d []float64) {
	if len(d) == 0 {
		fmt.Printf("%-18s (no samples)\n", name)
		return
	}
	fmt.Printf("%-18s n=%d p50=%.4g p90=%.4g p99=%.4g mean=%.4g\n",
		name, len(d),
		stats.Quantile(d, 0.5), stats.Quantile(d, 0.9),
		stats.Quantile(d, 0.99), stats.Mean(d))
}
