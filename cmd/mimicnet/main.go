// Command mimicnet runs the end-to-end MimicNet workflow (paper Fig. 3):
//
//  1. full-fidelity 2-cluster simulation to generate training data,
//  2. internal-model training (+ feeder fitting),
//  3. optional hyper-parameter tuning against held-out validation runs,
//  4. composition of 1 real + N−1 Mimic clusters,
//  5. the large-scale approximate simulation.
//
// Trained models can be saved and reused across invocations (-save /
// -models), mirroring the paper's "single MimicNet" vs "with training"
// distinction.
//
// Example:
//
//	mimicnet -clusters 32 -protocol dctcp -run 300ms -save models.json
//	mimicnet -clusters 128 -models models.json
//
// With -server, the whole pipeline instead runs on a mimicnetd daemon
// (see cmd/mimicnetd), whose content-addressed registry amortizes
// training across invocations and users:
//
//	mimicnet -server http://127.0.0.1:9090 -clusters 128 -protocol dctcp
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"mimicnet/internal/cluster"
	"mimicnet/internal/core"
	"mimicnet/internal/ml"
	"mimicnet/internal/serve"
	"mimicnet/internal/sim"
	"mimicnet/internal/stats"
	"mimicnet/internal/transport"
	"mimicnet/internal/tuning"
	"mimicnet/internal/workload"
)

func main() {
	var (
		clusters  = flag.Int("clusters", 8, "target composition size (N)")
		racks     = flag.Int("racks", 2, "racks per cluster")
		hosts     = flag.Int("hosts", 4, "hosts per rack")
		aggs      = flag.Int("aggs", 2, "aggregation switches per cluster")
		cores     = flag.Int("cores-per-agg", 2, "core switches per agg index")
		protocol  = flag.String("protocol", "newreno", "transport: newreno|dctcp|vegas|westwood|homa")
		load      = flag.Float64("load", 0.7, "offered load")
		meanFlow  = flag.Float64("mean-flow", 150_000, "mean flow size in bytes")
		duration  = flag.Duration("duration", 150*time.Millisecond, "workload horizon (simulated)")
		run       = flag.Duration("run", 300*time.Millisecond, "simulated time for the final simulation")
		smallRun  = flag.Duration("small-run", 250*time.Millisecond, "simulated time for data generation")
		seed      = flag.Int64("seed", 1, "workload seed")
		ecnK      = flag.Int("ecn-k", 20, "ECN marking threshold (DCTCP)")
		window    = flag.Int("window", 12, "training window in packets (~BDP)")
		hidden    = flag.Int("hidden", 24, "LSTM hidden size")
		layers    = flag.Int("layers", 1, "stacked LSTM layers")
		epochs    = flag.Int("epochs", 4, "training epochs")
		batch     = flag.Int("batch", 0, "training minibatch size (0 = engine default, 1 = sequential)")
		cellType  = flag.String("cell", "lstm", "trunk model class: lstm|gru|mlp")
		tune      = flag.Int("tune", 0, "hyper-parameter tuning budget (0 = off)")
		tuneSizes = flag.String("tune-metric", "fct", "tuning metric: fct|throughput|rtt")
		savePath  = flag.String("save", "", "write trained models to this JSON file")
		loadPath  = flag.String("models", "", "reuse trained models from this JSON file")
		tracePath = flag.String("trace", "", "train from a saved boundary trace (see cmd/trace)")
		validate  = flag.Bool("validate-directions", false, "run the Appendix-B hybrid per-direction validation before composing")
		server    = flag.String("server", "", "delegate to a mimicnetd daemon at this base URL instead of running locally")
		deadline  = flag.Duration("deadline", 0, "with -server: wall-clock bound on the remote job (0 = none)")
	)
	flag.Parse()

	if *server != "" {
		if *loadPath != "" || *savePath != "" || *tracePath != "" || *validate {
			fatal(fmt.Errorf("-server cannot be combined with -models/-save/-trace/-validate-directions; the daemon manages artifacts via its registry"))
		}
		runRemote(*server, serve.JobSpec{
			Clusters:      *clusters,
			Racks:         *racks,
			Hosts:         *hosts,
			Aggs:          *aggs,
			CoresPerAgg:   *cores,
			Protocol:      *protocol,
			Load:          *load,
			MeanFlowBytes: *meanFlow,
			ECNK:          *ecnK,
			Seed:          *seed,
			WorkloadMs:    float64(*duration) / float64(time.Millisecond),
			RunMs:         float64(*run) / float64(time.Millisecond),
			SmallRunMs:    float64(*smallRun) / float64(time.Millisecond),
			Window:        *window,
			Hidden:        *hidden,
			Layers:        *layers,
			Epochs:        *epochs,
			BatchSize:     *batch,
			Cell:          *cellType,
			Tune:          *tune,
			TuneMetric:    *tuneSizes,
			DeadlineMs:    float64(*deadline) / float64(time.Millisecond),
		})
		return
	}

	p, err := transport.ByName(*protocol)
	fatal(err)

	base := cluster.DefaultConfig(2)
	base.Topo.RacksPerCluster = *racks
	base.Topo.HostsPerRack = *hosts
	base.Topo.AggPerCluster = *aggs
	base.Topo.CoresPerAgg = *cores
	base.Protocol = p
	base.Workload = workload.DefaultConfig(*meanFlow)
	base.Workload.Load = *load
	base.Workload.Duration = sim.Time(*duration)
	base.Workload.Seed = *seed
	base.ECNThresholdK = *ecnK

	tcfg := core.DefaultTrainConfig()
	tcfg.Dataset.Window = *window
	tcfg.Model = ml.DefaultModelConfig(0, *window)
	tcfg.Model.Hidden = *hidden
	tcfg.Model.Layers = *layers
	tcfg.Model.Epochs = *epochs
	tcfg.Model.CellType = *cellType
	if *batch != 0 {
		tcfg.Model.BatchSize = *batch
	}
	if *cellType == "mlp" {
		tcfg.Model.Layers = 1
	}

	// Live per-epoch reports; the two directions train concurrently, so
	// lines interleave tagged by direction.
	trainProgress := func(dir core.Direction, p ml.TrainProgress) {
		fmt.Printf("  train[%-7s] epoch %d/%d loss=%.4f (%.0f samples/sec, batch %d)\n",
			dir, p.Epoch, p.Epochs, p.Loss, p.SamplesPerSec, p.BatchSize)
	}

	var models *core.MimicModels
	var fixedCost time.Duration
	switch {
	case *loadPath != "":
		blob, err := os.ReadFile(*loadPath)
		fatal(err)
		models, err = core.LoadModels(blob)
		fatal(err)
		fmt.Printf("loaded trained models from %s\n", *loadPath)
	case *tracePath != "":
		fmt.Printf("training from saved trace %s ...\n", *tracePath)
		f, err := os.Open(*tracePath)
		fatal(err)
		records, err := core.ReadTrace(f)
		f.Close()
		fatal(err)
		ingRecs, egRecs := core.SplitTrace(records)
		spec := core.NewFeatureSpec(base.Topo)
		ingDS, err := core.BuildDataset(core.Ingress, ingRecs, spec, tcfg.Dataset)
		fatal(err)
		egDS, err := core.BuildDataset(core.Egress, egRecs, spec, tcfg.Dataset)
		fatal(err)
		t0 := time.Now()
		var ingEval, egEval ml.EvalResult
		models, ingEval, egEval, err = core.TrainModelsContext(context.Background(), ingDS, egDS, tcfg, trainProgress)
		fatal(err)
		fixedCost = time.Since(t0)
		fmt.Printf("  model training          %v (%d+%d samples; ingress MAE %.4f, egress MAE %.4f)\n",
			fixedCost.Round(time.Millisecond), ingDS.Len(), egDS.Len(),
			ingEval.LatencyMAE, egEval.LatencyMAE)
		if *savePath != "" {
			blob, err := models.Save()
			fatal(err)
			fatal(os.WriteFile(*savePath, blob, 0o644))
			fmt.Printf("saved trained models to %s\n", *savePath)
		}
	default:
		fmt.Println("phase 1-2: small-scale simulation + training ...")
		art, err := core.RunPipeline(core.PipelineConfig{
			Base:               base,
			SmallScaleDuration: sim.Time(*smallRun),
			Train:              tcfg,
			TrainProgress:      trainProgress,
		})
		fatal(err)
		models = art.Models
		fixedCost = art.SmallScaleTime + art.TrainTime
		fmt.Printf("  small-scale simulation  %v (%d+%d samples)\n",
			art.SmallScaleTime.Round(time.Millisecond), art.IngressSamples, art.EgressSamples)
		fmt.Printf("  model training          %v (ingress MAE %.4f, egress MAE %.4f)\n",
			art.TrainTime.Round(time.Millisecond),
			art.IngressEval.LatencyMAE, art.EgressEval.LatencyMAE)

		if *tune > 0 {
			fmt.Printf("phase 3: hyper-parameter tuning (budget %d) ...\n", *tune)
			t0 := time.Now()
			valBase := base
			valBase.Workload.Seed = *seed + 1000 // held-out validation workload
			validator, err := tuning.NewValidator(valBase, []int{2, 4}, sim.Time(*smallRun), *tuneSizes)
			fatal(err)
			ing, eg, _, err := core.GenerateTrainingData(base, sim.Time(*smallRun), tcfg)
			fatal(err)
			boCfg := tuning.DefaultBayesOptConfig()
			boCfg.InitPoints = min(4, *tune)
			boCfg.Iterations = *tune - boCfg.InitPoints
			res, err := tuning.BayesOpt(tuning.MimicSpace(),
				tuning.MimicObjective(ing, eg, tcfg, validator), boCfg)
			fatal(err)
			fmt.Printf("  best score (mean W1 %s) %.4g with %v\n", *tuneSizes, res.Best.Score, res.Best.Params)
			best := tuning.ApplyParams(tcfg, res.Best.Params)
			models, _, _, err = core.TrainModelsContext(context.Background(), ing, eg, best, trainProgress)
			fatal(err)
			fixedCost += time.Since(t0)
			fmt.Printf("  tuning                  %v\n", time.Since(t0).Round(time.Millisecond))
		}
		if *savePath != "" {
			blob, err := models.Save()
			fatal(err)
			fatal(os.WriteFile(*savePath, blob, 0o644))
			fmt.Printf("saved trained models to %s\n", *savePath)
		}
	}

	if *validate {
		fmt.Println("phase 4: hybrid per-direction validation (Appendix B) ...")
		ingW1, egW1, err := core.DirectionError(base, models, sim.Time(*smallRun))
		fatal(err)
		fmt.Printf("  W1(FCT) vs all-real 2-cluster reference: ingress=%.4g egress=%.4g\n", ingW1, egW1)
	}

	fmt.Printf("phase 5: composing %d clusters (1 real + %d mimics) ...\n", *clusters, *clusters-1)
	cfg := base
	cfg.Topo = base.Topo.WithClusters(*clusters)
	t0 := time.Now()
	comp, err := core.Compose(cfg, models)
	fatal(err)
	comp.Run(sim.Time(*run))
	wall := time.Since(t0)
	res := comp.Results()

	fmt.Printf("large-scale simulation  %v (%.2f sim-sec/sec)\n",
		wall.Round(time.Millisecond), sim.Time(*run).Seconds()/wall.Seconds())
	if fixedCost > 0 {
		fmt.Printf("total incl. training    %v\n", (wall + fixedCost).Round(time.Millisecond))
	}
	fmt.Printf("events processed        %d (%d LSTM steps, %d feeder events)\n",
		res.Events, comp.InferenceSteps(), comp.FeederEvents())
	fmt.Printf("flows                   %d started, %d completed\n", comp.FlowsStarted(), comp.FlowsCompleted())
	fmt.Printf("mimic drops             %d ingress, %d egress\n", comp.MimicDropsIngress(), comp.MimicDropsEgress())
	printDist("fct_seconds", res.FCTs)
	printDist("throughput_Bps", res.Throughputs)
	printDist("rtt_seconds", res.RTTs)
}

// runRemote submits the spec to a mimicnetd daemon, streams progress
// while polling, and prints the same summary shape as a local run.
func runRemote(base string, spec serve.JobSpec) {
	c := serve.NewClient(base)
	st, err := c.Submit(spec)
	if busy, ok := err.(*serve.BusyError); ok {
		fatal(fmt.Errorf("daemon is at capacity; retry in %v", busy.RetryAfter))
	}
	fatal(err)
	fmt.Printf("submitted job %s to %s (model key %.12s…)\n", st.ID, base, st.ModelKey)

	lastPhase := ""
	lastTrain := ""
	final, err := c.Wait(context.Background(), st.ID, 250*time.Millisecond, func(cur serve.JobStatus) {
		if cur.Progress.Phase != "" && cur.Progress.Phase != lastPhase {
			lastPhase = cur.Progress.Phase
			fmt.Printf("phase: %s\n", lastPhase)
		}
		if tp := cur.Progress.Train; tp != nil && cur.Progress.Phase == "train" {
			// Polling undersamples the epoch stream; print each new report.
			key := fmt.Sprintf("%s/%d", tp.Direction, tp.Epoch)
			if key != lastTrain {
				lastTrain = key
				fmt.Printf("  train[%-7s] epoch %d/%d loss=%.4f (%.0f samples/sec, batch %d)\n",
					tp.Direction, tp.Epoch, tp.Epochs, tp.Loss, tp.SamplesPerSec, tp.BatchSize)
			}
		}
		if cur.Progress.Phase == "compose" && cur.Progress.Events > 0 {
			fmt.Printf("  t=%.3fs events=%d (%.3g events/sec)\r",
				cur.Progress.SimTimeS, cur.Progress.Events, cur.Progress.EventsPerSec)
		}
	})
	fatal(err)
	fmt.Println()
	switch final.State {
	case serve.StateDone:
	case serve.StateCancelled:
		fmt.Printf("job cancelled: %s\n", final.Error)
	default:
		fatal(fmt.Errorf("job %s %s: %s", final.ID, final.State, final.Error))
	}
	r := final.Result
	if r == nil {
		fatal(fmt.Errorf("job %s finished without results", final.ID))
	}
	if r.CacheHit {
		fmt.Printf("trained models reused from the daemon registry (train phase %v)\n",
			time.Duration(r.TrainMs*float64(time.Millisecond)).Round(time.Millisecond))
	} else {
		fmt.Printf("trained on the daemon          %v\n",
			time.Duration(r.TrainMs*float64(time.Millisecond)).Round(time.Millisecond))
	}
	fmt.Printf("large-scale simulation  %v (%.2f sim-sec/sec)\n",
		time.Duration(r.ComposeMs*float64(time.Millisecond)).Round(time.Millisecond), r.SimSecPerSec)
	fmt.Printf("events processed        %d\n", r.Events)
	fmt.Printf("flows                   %d started, %d completed\n", r.FlowsStarted, r.FlowsCompleted)
	printRemoteDist("fct_seconds", r.FCTSeconds)
	printRemoteDist("throughput_Bps", r.ThroughputBps)
	printRemoteDist("rtt_seconds", r.RTTSeconds)
}

func printRemoteDist(name string, d serve.Dist) {
	if d.N == 0 {
		fmt.Printf("%-22s (no samples)\n", name)
		return
	}
	fmt.Printf("%-22s n=%d p50=%.4g p90=%.4g p99=%.4g mean=%.4g\n",
		name, d.N, d.P50, d.P90, d.P99, d.Mean)
}

func printDist(name string, d []float64) {
	if len(d) == 0 {
		fmt.Printf("%-22s (no samples)\n", name)
		return
	}
	fmt.Printf("%-22s n=%d p50=%.4g p90=%.4g p99=%.4g mean=%.4g\n",
		name, len(d),
		stats.Quantile(d, 0.5), stats.Quantile(d, 0.9),
		stats.Quantile(d, 0.99), stats.Mean(d))
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "mimicnet:", err)
		os.Exit(1)
	}
}
