module mimicnet

go 1.22
