// Quickstart: the minimal MimicNet workflow.
//
// It (1) runs a full-fidelity 2-cluster simulation to generate training
// data, (2) trains the Mimic internal models, (3) composes an 8-cluster
// data center from 1 real cluster + 7 Mimics, and (4) compares the
// estimated FCT distribution against a full-fidelity 8-cluster ground
// truth using the Wasserstein-1 metric.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"mimicnet/internal/cluster"
	"mimicnet/internal/core"
	"mimicnet/internal/metrics"
	"mimicnet/internal/sim"
	"mimicnet/internal/stats"
	"mimicnet/internal/workload"
)

func main() {
	// A scaled-down base configuration: TCP New Reno, DropTail, ECMP,
	// 100 Mbps / 500 µs links, 70% load, heavy-tailed 20 KB-mean flows.
	base := cluster.DefaultConfig(2)
	base.Workload = workload.DefaultConfig(20_000)
	base.Workload.Duration = 150 * sim.Millisecond

	// Phase 1-2: small-scale data generation + training.
	fmt.Println("training mimic models from a 2-cluster simulation ...")
	art, err := core.RunPipeline(core.PipelineConfig{
		Base:               base,
		SmallScaleDuration: 250 * sim.Millisecond,
		Train:              core.DefaultTrainConfig(),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  data generation %v, training %v (%d+%d samples)\n",
		art.SmallScaleTime.Round(time.Millisecond),
		art.TrainTime.Round(time.Millisecond),
		art.IngressSamples, art.EgressSamples)

	// Phase 5: estimate an 8-cluster data center.
	const n = 8
	horizon := 300 * sim.Millisecond
	estimate, wall, err := art.Estimate(base, n, horizon)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mimicnet estimate at %d clusters took %v\n", n, wall.Round(time.Millisecond))

	// Ground truth for comparison (normally you would skip this — it is
	// the expensive thing MimicNet replaces).
	cfg := base
	cfg.Topo = base.Topo.WithClusters(n)
	truth, err := cluster.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	t0 := time.Now()
	truth.Run(horizon)
	fmt.Printf("full-fidelity ground truth took %v\n", time.Since(t0).Round(time.Millisecond))

	tres := truth.Results()
	fmt.Printf("\n%-12s %-10s %-10s %-10s\n", "metric", "w1", "mimic_p99", "truth_p99")
	for _, row := range []struct {
		name         string
		mimic, truth []float64
	}{
		{"fct", estimate.FCTs, tres.FCTs},
		{"throughput", estimate.Throughputs, tres.Throughputs},
		{"rtt", estimate.RTTs, tres.RTTs},
	} {
		fmt.Printf("%-12s %-10.4g %-10.4g %-10.4g\n", row.name,
			metrics.W1(row.mimic, row.truth),
			stats.Quantile(row.mimic, 0.99),
			stats.Quantile(row.truth, 0.99))
	}
}
