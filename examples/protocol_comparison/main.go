// Protocol comparison (paper §9.4.2, Figure 14).
//
// MimicNet is accurate enough to rank transport protocols at scale: the
// paper compares Homa, DCTCP, TCP Vegas, and TCP Westwood FCTs in a
// 32-cluster data center and shows MimicNet predicting the correct order
// with tails within ~5%. This example runs the same comparison (at a
// reduced size) — a separate Mimic model is trained per protocol, since
// each stresses the cluster differently (priorities, ECN, delay
// sensitivity, bandwidth probing).
//
//	go run ./examples/protocol_comparison
package main

import (
	"fmt"
	"log"
	"sort"

	"mimicnet/internal/cluster"
	"mimicnet/internal/core"
	"mimicnet/internal/metrics"
	"mimicnet/internal/sim"
	"mimicnet/internal/stats"
	"mimicnet/internal/transport"
	"mimicnet/internal/workload"
)

const (
	largeN  = 12
	horizon = 300 * sim.Millisecond
)

type result struct {
	proto            string
	truth90, mimic90 float64
	truth99, mimic99 float64
	w1               float64
}

func main() {
	protocols := []string{"homa", "dctcp", "vegas", "westwood"}
	var results []result
	for _, name := range protocols {
		p, err := transport.ByName(name)
		if err != nil {
			log.Fatal(err)
		}
		base := cluster.DefaultConfig(2)
		base.Protocol = p
		base.Workload = workload.DefaultConfig(20_000)
		base.Workload.Duration = 150 * sim.Millisecond

		// Ground truth at scale.
		largeCfg := base
		largeCfg.Topo = base.Topo.WithClusters(largeN)
		truthInst, err := cluster.New(largeCfg)
		if err != nil {
			log.Fatal(err)
		}
		truthInst.Run(horizon)
		truth := truthInst.Results()

		// Full MimicNet pipeline for this protocol.
		tc := core.DefaultTrainConfig()
		tc.Dataset.Window = 6
		tc.Model.Window = 6
		tc.Model.Hidden = 16
		tc.Model.Epochs = 2
		art, err := core.RunPipeline(core.PipelineConfig{
			Base:               base,
			SmallScaleDuration: 200 * sim.Millisecond,
			Train:              tc,
		})
		if err != nil {
			log.Fatal(err)
		}
		mimic, _, err := art.Estimate(base, largeN, horizon)
		if err != nil {
			log.Fatal(err)
		}
		results = append(results, result{
			proto:   name,
			truth90: stats.Quantile(truth.FCTs, 0.9),
			mimic90: stats.Quantile(mimic.FCTs, 0.9),
			truth99: stats.Quantile(truth.FCTs, 0.99),
			mimic99: stats.Quantile(mimic.FCTs, 0.99),
			w1:      metrics.W1(mimic.FCTs, truth.FCTs),
		})
		fmt.Printf("%s done\n", name)
	}

	fmt.Printf("\n%-10s %-12s %-12s %-12s %-12s %-10s\n",
		"protocol", "truth_p90", "mimic_p90", "truth_p99", "mimic_p99", "w1_fct")
	for _, r := range results {
		fmt.Printf("%-10s %-12.4g %-12.4g %-12.4g %-12.4g %-10.4g\n",
			r.proto, r.truth90, r.mimic90, r.truth99, r.mimic99, r.w1)
	}

	// Does MimicNet rank the protocols like the ground truth does?
	fmt.Printf("\np90 ranking (best to worst): truth: %v | mimicnet: %v\n",
		ranking(results, func(r result) float64 { return r.truth90 }),
		ranking(results, func(r result) float64 { return r.mimic90 }))
}

func ranking(rs []result, key func(result) float64) []string {
	sorted := append([]result(nil), rs...)
	sort.Slice(sorted, func(i, j int) bool { return key(sorted[i]) < key(sorted[j]) })
	names := make([]string, len(sorted))
	for i, r := range sorted {
		names[i] = r.proto
	}
	return names
}
