// Accuracy scaling (paper Figure 1).
//
// The headline MimicNet result: as the data center grows, the accuracy
// of a MimicNet estimate stays roughly flat while (a) assuming small
// 2-cluster results are representative and (b) flow-level simulation both
// degrade. This example drives the same experiment harness used by the
// benchmark suite and prints the Figure-1 series.
//
//	go run ./examples/scaling
package main

import (
	"log"
	"os"

	"mimicnet/internal/experiments"
)

func main() {
	opts := experiments.Default()
	opts.Log = os.Stderr
	r := experiments.NewRunner(opts)

	fig1, err := r.Fig1([]int{4, 8, 16})
	if err != nil {
		log.Fatal(err)
	}
	fig1.Fprint(os.Stdout)

	fig9, err := r.Fig9([]int{4, 8, 16})
	if err != nil {
		log.Fatal(err)
	}
	fig9.Fprint(os.Stdout)
}
