// DCTCP configuration tuning (paper §9.4.1, Figure 13).
//
// DCTCP's ECN marking threshold K trades latency against throughput, and
// the best setting depends on scale: the paper shows a 2-cluster
// simulation prescribing K=60 while the 32-cluster truth (and MimicNet)
// prescribe K=20. This example sweeps K at small scale and at a larger
// composition, and reports which K each method prescribes for the 90-pct
// FCT.
//
//	go run ./examples/dctcp_tuning
package main

import (
	"fmt"
	"log"
	"time"

	"mimicnet/internal/cluster"
	"mimicnet/internal/core"
	"mimicnet/internal/sim"
	"mimicnet/internal/stats"
	"mimicnet/internal/transport"
	"mimicnet/internal/workload"
)

const (
	largeN  = 12
	horizon = 300 * sim.Millisecond
)

func main() {
	ks := []int{5, 10, 20, 40, 60}
	fmt.Printf("%-4s %-14s %-14s %-14s\n", "K", "small_2c_p90", "truth_p90", "mimicnet_p90")

	bestSmall, bestTruth, bestMimic := "", "", ""
	minSmall, minTruth, minMimic := 1e18, 1e18, 1e18
	var fullWall, mimicWall time.Duration

	for _, k := range ks {
		base := baseConfig(k)

		// Small-scale prescription.
		small := mustRun(base)

		// Large-scale ground truth (the expensive path).
		largeCfg := base
		largeCfg.Topo = base.Topo.WithClusters(largeN)
		t0 := time.Now()
		truth := mustRun(largeCfg)
		fullWall += time.Since(t0)

		// MimicNet prescription: per-K training + composition.
		t0 = time.Now()
		art, err := core.RunPipeline(core.PipelineConfig{
			Base:               base,
			SmallScaleDuration: 200 * sim.Millisecond,
			Train:              trainConfig(),
		})
		if err != nil {
			log.Fatal(err)
		}
		mimic, _, err := art.Estimate(base, largeN, horizon)
		if err != nil {
			log.Fatal(err)
		}
		mimicWall += time.Since(t0)

		s90 := stats.Quantile(small.FCTs, 0.9)
		t90 := stats.Quantile(truth.FCTs, 0.9)
		m90 := stats.Quantile(mimic.FCTs, 0.9)
		fmt.Printf("%-4d %-14.4g %-14.4g %-14.4g\n", k, s90, t90, m90)
		if s90 < minSmall {
			minSmall, bestSmall = s90, fmt.Sprint(k)
		}
		if t90 < minTruth {
			minTruth, bestTruth = t90, fmt.Sprint(k)
		}
		if m90 < minMimic {
			minMimic, bestMimic = m90, fmt.Sprint(k)
		}
	}
	fmt.Printf("\nprescribed K: small-scale=%s, %d-cluster truth=%s, mimicnet=%s\n",
		bestSmall, largeN, bestTruth, bestMimic)
	fmt.Printf("wall clock for the large sweep: full %v vs mimicnet %v (incl. per-K training)\n",
		fullWall.Round(time.Millisecond), mimicWall.Round(time.Millisecond))
	fmt.Printf("(paper, at 32 clusters: small scale prescribes K=60, truth and MimicNet K=20,\n" +
		" with MimicNet 12x faster; raise largeN here and the same gap opens as the\n" +
		" fixed training cost amortizes against the growing full-simulation cost)\n")
}

func baseConfig(k int) cluster.Config {
	base := cluster.DefaultConfig(2)
	base.Protocol = transport.NewDCTCPProtocol()
	base.ECNThresholdK = k
	base.Workload = workload.DefaultConfig(20_000)
	base.Workload.Duration = 150 * sim.Millisecond
	return base
}

func trainConfig() core.TrainConfig {
	tc := core.DefaultTrainConfig()
	tc.Dataset.Window = 6
	tc.Model.Window = 6
	tc.Model.Hidden = 16
	tc.Model.Epochs = 2
	return tc
}

func mustRun(cfg cluster.Config) cluster.Results {
	inst, err := cluster.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	inst.Run(horizon)
	return inst.Results()
}
