// Co-flow (MapReduce shuffle) workload with instrumentation.
//
// The paper's Appendix H names co-flow support — ordering and
// dependencies between flows, as in MapReduce/BSP systems — as the
// workload structure MimicNet should eventually model. This example runs
// staged shuffle jobs *in full fidelity* over background traffic: each
// stage's flows start only when the previous stage completes, and the
// observable cluster is instrumented with the queue-depth sampler the
// paper's "arbitrary instrumentation" promise refers to.
//
//	go run ./examples/coflow_shuffle
package main

import (
	"fmt"
	"log"
	"sort"

	"mimicnet/internal/cluster"
	"mimicnet/internal/sim"
	"mimicnet/internal/workload"
)

func main() {
	cfg := cluster.DefaultConfig(2)
	cfg.Workload = workload.DefaultConfig(20_000)
	cfg.Workload.Duration = 200 * sim.Millisecond
	cfg.Workload.Load = 0.4 // background load under the shuffle jobs

	inst, err := cluster.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	jobs := workload.CoflowConfig{
		Seed: 11, Jobs: 4, Stages: 3, Width: 4,
		FlowBytes:  60_000,
		ArrivalGap: 20 * sim.Millisecond,
		StageDelay: 2 * sim.Millisecond,
	}
	coflows, err := workload.GenerateCoflows(inst.Topo, jobs)
	if err != nil {
		log.Fatal(err)
	}
	if err := inst.AddFlows(coflows); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("running %d background flows + %d shuffle jobs (%d coflow flows, critical path %d stages)\n",
		len(inst.Flows()), jobs.Jobs, len(coflows), workload.CriticalPathStages(coflows))

	sampler := inst.SampleQueues(5 * sim.Millisecond)
	inst.Run(2 * sim.Second)

	// Per-job makespan: from submission to the last completed flow of the
	// job's final stage (using the collector's flow records).
	recs := make(map[string]sim.Time)
	for _, r := range inst.Collector.Flows() {
		if r.Complete {
			recs[r.ID] = r.End
		}
	}
	type jobSpan struct {
		submit, finish sim.Time
		done, total    int
	}
	spans := make([]jobSpan, jobs.Jobs)
	perJob := jobs.Stages * jobs.Width
	for i, f := range coflows {
		j := i / perJob
		if f.After == 0 && (spans[j].submit == 0 || f.Start < spans[j].submit) {
			spans[j].submit = f.Start
		}
		spans[j].total++
		if end, ok := recs[fmt.Sprint(f.ID)]; ok {
			spans[j].done++
			if end > spans[j].finish {
				spans[j].finish = end
			}
		}
	}
	fmt.Printf("\n%-5s %-10s %-10s %-12s %s\n", "job", "submit_s", "finish_s", "makespan_s", "flows_observed")
	for j, s := range spans {
		fmt.Printf("%-5d %-10.4f %-10.4f %-12.4f %d/%d\n",
			j, s.submit.Seconds(), s.finish.Seconds(),
			(s.finish - s.submit).Seconds(), s.done, s.total)
	}

	// Queue instrumentation summary: the deepest observable-cluster queue
	// and the share of samples above half of it.
	maxDepth := sampler.MaxDepth()
	hot := 0
	for _, smp := range sampler.Samples {
		if smp.Packets > maxDepth/2 {
			hot++
		}
	}
	fmt.Printf("\nqueue depth: %d samples, max %d pkts, %.1f%% of samples above half-max\n",
		len(sampler.Samples), maxDepth, 100*float64(hot)/float64(len(sampler.Samples)))

	fcts := inst.Results().FCTs
	sort.Float64s(fcts)
	if len(fcts) > 0 {
		fmt.Printf("background+shuffle FCT p50/p99: %.4f / %.4f s (%d flows)\n",
			fcts[len(fcts)/2], fcts[int(float64(len(fcts))*0.99)], len(fcts))
	}
}
