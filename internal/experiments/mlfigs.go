package experiments

import (
	"fmt"
	"time"

	"mimicnet/internal/core"
	"mimicnet/internal/ml"
	"mimicnet/internal/stats"
)

// dropTrace generates a training trace with a meaningful drop rate by
// squeezing queues, mirroring the loaded 2-cluster trace of Figure 5.
func (r *Runner) dropTrace(window int) (*core.Dataset, *core.Dataset, error) {
	base, err := r.Opts.BaseConfig("newreno")
	if err != nil {
		return nil, nil, err
	}
	base.QueueCapacity = 16
	tcfg := r.Opts.TrainConfig()
	tcfg.Dataset.Window = window
	ing, eg, _, err := core.GenerateTrainingData(base, r.Opts.SmallScale, tcfg)
	if err != nil {
		return nil, nil, err
	}
	return ing, eg, nil
}

// Fig5 reproduces Figure 5: drop prediction with BCE vs weighted BCE.
// Plain BCE on heavily imbalanced drop labels underpredicts the drop rate
// by roughly an order of magnitude; WBCE recovers realistic rates that
// grow with the weight.
func (r *Runner) Fig5() (*Table, error) {
	ing, _, err := r.dropTrace(r.Opts.Window)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "Figure 5",
		Title:  "drop prediction vs loss function (2-cluster trace)",
		Header: []string{"loss", "true_drop_rate", "predicted_drop_rate"},
	}
	for _, cfg := range []struct {
		name string
		w    float64
	}{
		{"bce", 0},
		{"wbce_0.6", 0.6},
		{"wbce_0.9", 0.9},
	} {
		tcfg := r.Opts.TrainConfig()
		tcfg.Model.DropWeight = cfg.w
		tcfg.Model.DropLossW = 2.0
		_, eval, err := core.TrainDirection(ing, tcfg)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			cfg.name, f3(eval.DropRateTrue), f3(eval.DropRatePred),
		})
		r.Opts.logf("Figure 5 %s done", cfg.name)
	}
	t.Notes = append(t.Notes,
		"paper: ground truth 0.3%; BCE predicts 0.01% (27x low), WBCE 0.6 -> 0.14%, WBCE 0.9 -> 0.49%")
	return t, nil
}

// Fig6 reproduces Figure 6: latency prediction with MAE vs MSE vs Huber
// loss, scored by test-set MAE (the paper's reported number). Huber
// should score best.
func (r *Runner) Fig6() (*Table, error) {
	ing, _, err := r.dropTrace(r.Opts.Window)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "Figure 6",
		Title:  "latency prediction vs regression loss (2-cluster trace)",
		Header: []string{"loss", "test_mae", "p99_latency_rel_err"},
	}
	for _, loss := range []ml.RegressionLoss{ml.LossMAE, ml.LossMSE, ml.LossHuber} {
		tcfg := r.Opts.TrainConfig()
		tcfg.Model.LatLoss = loss
		dm, eval, err := core.TrainDirection(ing, tcfg)
		if err != nil {
			return nil, err
		}
		p99err := tailError(dm, ing, 0.99)
		t.Rows = append(t.Rows, []string{
			loss.String(), f3(eval.LatencyMAE), f3(p99err),
		})
		r.Opts.logf("Figure 6 %s done", loss)
	}
	t.Notes = append(t.Notes,
		"paper: MAE loss misses tail latencies, MSE overvalues outliers; Huber wins with 2.6% 99-pct error and the best MAE")
	return t, nil
}

// tailError compares the model's predicted latency quantile against the
// ground-truth quantile over the dataset's held-out tail.
func tailError(dm *core.DirectionModel, ds *core.Dataset, q float64) float64 {
	_, test := ds.Split(0.8)
	if test.Len() == 0 {
		return 0
	}
	var truth, pred []float64
	var win [][]float64
	for i := 0; i < test.Len(); i++ {
		lat, dropped, _ := test.Target(i)
		if dropped {
			continue
		}
		win = test.WindowAppend(win[:0], i)
		truth = append(truth, lat)
		pred = append(pred, dm.Model.Forward(win).Latency)
	}
	if len(truth) == 0 {
		return 0
	}
	qt := stats.Quantile(truth, q)
	qp := stats.Quantile(pred, q)
	if qt == 0 {
		return 0
	}
	err := (qp - qt) / qt
	if err < 0 {
		err = -err
	}
	return err
}

// Fig16 reproduces Appendix C Figure 16: the impact of window size on
// training-loss descent and per-sample training latency.
func (r *Runner) Fig16(windows []int) (*Table, error) {
	t := &Table{
		ID:     "Figure 16",
		Title:  "window size vs training loss and per-sample training latency",
		Header: []string{"window_pkts", "final_train_loss", "train_us_per_sample"},
	}
	for _, w := range windows {
		ing, _, err := r.dropTrace(w)
		if err != nil {
			return nil, err
		}
		tcfg := r.Opts.TrainConfig()
		tcfg.Dataset.Window = w
		tcfg.Model.Window = w
		tcfg.Model.Features = ing.Spec.Width()
		model, err := ml.NewModel(tcfg.Model)
		if err != nil {
			return nil, err
		}
		train, _ := ing.Split(0.8)
		t0 := time.Now()
		res := model.TrainSource(train)
		perSample := time.Since(t0).Seconds() / float64(train.Len()*tcfg.Model.Epochs) * 1e6
		final := 0.0
		if len(res.EpochLoss) > 0 {
			final = res.EpochLoss[len(res.EpochLoss)-1]
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(w), f3(final), f3(perSample),
		})
		r.Opts.logf("Figure 16 window=%d done", w)
	}
	t.Notes = append(t.Notes,
		"paper: loss improves up to ~BDP (12 pkts) with diminishing returns; training latency grows with window size")
	return t, nil
}

// Fig17 reproduces Appendix C Figure 17: window size vs validation loss
// and per-packet inference latency.
func (r *Runner) Fig17(windows []int) (*Table, error) {
	t := &Table{
		ID:     "Figure 17",
		Title:  "window size vs validation loss and inference latency",
		Header: []string{"window_pkts", "validation_loss", "inference_us_per_packet"},
	}
	for _, w := range windows {
		ing, _, err := r.dropTrace(w)
		if err != nil {
			return nil, err
		}
		tcfg := r.Opts.TrainConfig()
		tcfg.Dataset.Window = w
		dm, eval, err := core.TrainDirection(ing, tcfg)
		if err != nil {
			return nil, err
		}
		// Windowed inference latency per packet (the paper's embedded
		// engine recomputes the window for each arriving packet).
		_, test := ing.Split(0.8)
		if test.Len() == 0 {
			continue
		}
		n := 0
		var win [][]float64
		t0 := time.Now()
		for i := 0; i < test.Len(); i++ {
			win = test.WindowAppend(win[:0], i)
			dm.Model.Forward(win)
			n++
		}
		perPkt := time.Since(t0).Seconds() / float64(n) * 1e6
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(w), f3(eval.Loss), f3(perPkt),
		})
		r.Opts.logf("Figure 17 window=%d done", w)
	}
	t.Notes = append(t.Notes,
		"paper: validation loss tracks training loss; inference latency rises from ~70us to ~150us as the window grows")
	return t, nil
}
