package experiments

import (
	"fmt"
	"mimicnet/internal/cluster"
	"mimicnet/internal/core"
	"mimicnet/internal/metrics"
	"mimicnet/internal/netsim"
	"mimicnet/internal/stats"
)

// This file contains ablations beyond the paper's figures, probing the
// design choices DESIGN.md calls out: the congestion-state feature
// (§5.5), the feeder models (§6), latency-target discretization (§5.2),
// and the switch queue discipline of the substrate.

// AblationCongestionState compares compositions whose models were trained
// with and without the 4-state congestion feature.
func (r *Runner) AblationCongestionState(n int) (*Table, error) {
	truth, _, err := r.runFull("newreno", n)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "Ablation A",
		Title:  fmt.Sprintf("congestion-state feature on/off (W1 to truth, %d clusters)", n),
		Header: []string{"variant", "w1_fct", "w1_rtt"},
	}
	for _, skip := range []bool{false, true} {
		base, err := r.Opts.BaseConfig("newreno")
		if err != nil {
			return nil, err
		}
		tcfg := r.Opts.TrainConfig()
		tcfg.SkipCongestionFeature = skip
		art, err := core.RunPipeline(core.PipelineConfig{
			Base: base, SmallScaleDuration: r.Opts.SmallScale, Train: tcfg,
		})
		if err != nil {
			return nil, err
		}
		res, _, err := art.Estimate(base, n, r.Opts.RunUntil)
		if err != nil {
			return nil, err
		}
		name := "with_congestion_state"
		if skip {
			name = "without"
		}
		t.Rows = append(t.Rows, []string{
			name,
			f3(metrics.W1(res.FCTs, truth.FCTs)),
			f3(metrics.W1(res.RTTs, truth.RTTs)),
		})
		r.Opts.logf("Ablation A %s done", name)
	}
	t.Notes = append(t.Notes,
		"the paper adds the 4-regime state so the LSTM can track multiscale congestion patterns (§5.5)")
	return t, nil
}

// AblationFeeders compares compositions with feeders enabled vs disabled
// (non-observable cross-traffic simply absent from the models' state).
func (r *Runner) AblationFeeders(n int) (*Table, error) {
	if n <= 2 {
		return nil, fmt.Errorf("experiments: feeder ablation needs n > 2")
	}
	truth, _, err := r.runFull("newreno", n)
	if err != nil {
		return nil, err
	}
	art, err := r.Artifacts("newreno")
	if err != nil {
		return nil, err
	}
	base, err := r.Opts.BaseConfig("newreno")
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "Ablation B",
		Title:  fmt.Sprintf("feeder models on/off (W1 to truth, %d clusters)", n),
		Header: []string{"variant", "w1_fct", "feeder_events"},
	}
	run := func(name string, models *core.MimicModels) error {
		cfg := base
		cfg.Topo = base.Topo.WithClusters(n)
		comp, err := core.Compose(cfg, models)
		if err != nil {
			return err
		}
		comp.Run(r.Opts.RunUntil)
		res := comp.Results()
		t.Rows = append(t.Rows, []string{
			name,
			f3(metrics.W1(res.FCTs, truth.FCTs)),
			fmt.Sprint(comp.FeederEvents()),
		})
		return nil
	}
	if err := run("with_feeders", art.Models); err != nil {
		return nil, err
	}
	// Disable feeders by zeroing the measured external rates.
	blob, err := art.Models.Save()
	if err != nil {
		return nil, err
	}
	noFeed, err := core.LoadModels(blob)
	if err != nil {
		return nil, err
	}
	noFeed.Ingress.RatePktsPerSec = 0
	noFeed.Egress.RatePktsPerSec = 0
	if err := run("without_feeders", noFeed); err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		"feeders keep Mimic hidden state consistent with the invisible Mimic-Mimic traffic (§6)")
	return t, nil
}

// AblationDiscretization sweeps the latency-target discretization D — the
// ML optimization the paper credits for improved latency modeling (§5.2).
func (r *Runner) AblationDiscretization(bins []int) (*Table, error) {
	t := &Table{
		ID:     "Ablation C",
		Title:  "latency discretization D vs test MAE",
		Header: []string{"D", "test_mae", "p99_latency_rel_err"},
	}
	base, err := r.Opts.BaseConfig("newreno")
	if err != nil {
		return nil, err
	}
	base.QueueCapacity = 16
	for _, d := range bins {
		tcfg := r.Opts.TrainConfig()
		tcfg.Dataset.LatencyBins = d
		ingD, _, _, err := core.GenerateTrainingData(base, r.Opts.SmallScale, tcfg)
		if err != nil {
			return nil, err
		}
		dm, eval, err := core.TrainDirection(ingD, tcfg)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(d), f3(eval.LatencyMAE), f3(tailError(dm, ingD, 0.99)),
		})
		r.Opts.logf("Ablation C D=%d done", d)
	}
	t.Notes = append(t.Notes,
		"D trades ease of modeling against recovery precision (§5.2); D<=1 disables quantization")
	return t, nil
}

// AblationQueues compares the substrate's queue disciplines under the
// same Reno workload: DropTail, ECN threshold, RED drop, RED mark.
func (r *Runner) AblationQueues(n int) (*Table, error) {
	t := &Table{
		ID:     "Ablation D",
		Title:  fmt.Sprintf("switch queue disciplines under TCP New Reno (%d clusters)", n),
		Header: []string{"queue", "p50_fct", "p99_fct", "drops"},
	}
	for _, q := range []struct {
		name    string
		factory netsim.QueueFactory
	}{
		{"droptail", netsim.DropTailFactory(100)},
		{"ecn_k20", netsim.ECNFactory(100, 20)},
		{"red_drop", netsim.REDFactory(100, 20, 60, 0.1, false, 1)},
		{"red_mark", netsim.REDFactory(100, 20, 60, 0.1, true, 1)},
	} {
		base, err := r.Opts.BaseConfig("newreno")
		if err != nil {
			return nil, err
		}
		base.Topo = base.Topo.WithClusters(n)
		base.CustomQueue = q.factory
		inst, err := cluster.New(base)
		if err != nil {
			return nil, err
		}
		inst.Run(r.Opts.RunUntil)
		res := inst.Results()
		t.Rows = append(t.Rows, []string{
			q.name,
			f3(stats.Quantile(res.FCTs, 0.5)),
			f3(stats.Quantile(res.FCTs, 0.99)),
			fmt.Sprint(res.Drops),
		})
		r.Opts.logf("Ablation D %s done", q.name)
	}
	t.Notes = append(t.Notes,
		"substrate showcase: the Mimic pipeline is queue-discipline agnostic — it learns whatever the user's switches do")
	return t, nil
}

// AblationFeederDistribution compares the paper's default log-normal
// feeder interarrival fit against empirical replay of observed gaps
// ("more sophisticated feeders can be trained and parameterized", §6).
func (r *Runner) AblationFeederDistribution(n int) (*Table, error) {
	if n <= 2 {
		return nil, fmt.Errorf("experiments: feeder ablation needs n > 2")
	}
	truth, _, err := r.runFull("newreno", n)
	if err != nil {
		return nil, err
	}
	art, err := r.Artifacts("newreno")
	if err != nil {
		return nil, err
	}
	base, err := r.Opts.BaseConfig("newreno")
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "Ablation E",
		Title:  fmt.Sprintf("feeder interarrival model (W1 to truth, %d clusters)", n),
		Header: []string{"feeder_dist", "w1_fct", "w1_rtt"},
	}
	for _, empirical := range []bool{false, true} {
		blob, err := art.Models.Save()
		if err != nil {
			return nil, err
		}
		models, err := core.LoadModels(blob)
		if err != nil {
			return nil, err
		}
		models.Ingress.UseEmpiricalGaps = empirical
		models.Egress.UseEmpiricalGaps = empirical
		cfg := base
		cfg.Topo = base.Topo.WithClusters(n)
		comp, err := core.Compose(cfg, models)
		if err != nil {
			return nil, err
		}
		comp.Run(r.Opts.RunUntil)
		res := comp.Results()
		name := "lognormal"
		if empirical {
			name = "empirical"
		}
		t.Rows = append(t.Rows, []string{
			name,
			f3(metrics.W1(res.FCTs, truth.FCTs)),
			f3(metrics.W1(res.RTTs, truth.RTTs)),
		})
		r.Opts.logf("Ablation E %s done", name)
	}
	t.Notes = append(t.Notes,
		"paper: simple log-normal/Pareto fits produced reasonable interarrival approximations (§6)")
	return t, nil
}

// AblationModelClass compares trunk model classes end-to-end: the paper's
// default LSTM vs a GRU vs a non-recurrent windowed MLP baseline ("in
// principle MimicNet can support any ML model", §5.5).
func (r *Runner) AblationModelClass(n int) (*Table, error) {
	truth, _, err := r.runFull("newreno", n)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "Ablation F",
		Title:  fmt.Sprintf("trunk model class (W1 to truth, %d clusters)", n),
		Header: []string{"cell", "w1_fct", "w1_rtt", "ingress_test_mae"},
	}
	base, err := r.Opts.BaseConfig("newreno")
	if err != nil {
		return nil, err
	}
	for _, cellType := range []string{"lstm", "gru", "mlp"} {
		tcfg := r.Opts.TrainConfig()
		tcfg.Model.CellType = cellType
		if cellType == "mlp" {
			tcfg.Model.Layers = 1
		}
		art, err := core.RunPipeline(core.PipelineConfig{
			Base: base, SmallScaleDuration: r.Opts.SmallScale, Train: tcfg,
		})
		if err != nil {
			return nil, err
		}
		res, _, err := art.Estimate(base, n, r.Opts.RunUntil)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			cellType,
			f3(metrics.W1(res.FCTs, truth.FCTs)),
			f3(metrics.W1(res.RTTs, truth.RTTs)),
			f3(art.IngressEval.LatencyMAE),
		})
		r.Opts.logf("Ablation F %s done", cellType)
	}
	t.Notes = append(t.Notes,
		"paper default is the LSTM; the MLP baseline quantifies what recurrence buys on long-range congestion patterns")
	return t, nil
}
