// Package experiments regenerates every table and figure of the paper's
// evaluation (§9 and appendices) on a scaled-down but structurally
// faithful setup: the same FatTree shape, 100 Mbps / 500 µs links, and
// the same estimator line-up (MimicNet vs full-fidelity vs flow-level vs
// small-scale extrapolation). Absolute numbers differ from the paper —
// the substrate here is a Go simulator, not an OMNeT++/CloudLab testbed —
// but each experiment preserves the comparison's shape: who wins, by
// roughly what factor, and where crossovers fall.
//
// Both cmd/sweep and the repository-root benchmarks drive this package.
package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"

	"mimicnet/internal/cluster"
	"mimicnet/internal/core"
	"mimicnet/internal/flowsim"
	"mimicnet/internal/ml"
	"mimicnet/internal/sim"
	"mimicnet/internal/transport"
	"mimicnet/internal/workload"
)

// Options scale the experiments. The defaults complete each figure in
// seconds to minutes; raising Duration/MeanFlowBytes approaches the
// paper's exact regime at proportionally higher wall-clock cost.
type Options struct {
	MeanFlowBytes float64  // mean flow size (paper: 1.6 MB)
	Load          float64  // fraction of bisection bandwidth (paper: 0.7)
	Duration      sim.Time // workload generation horizon
	RunUntil      sim.Time // simulated time to run each simulation
	Seed          int64

	Racks, HostsPerRack, Aggs, CoresPerAgg int

	// Model/training scale.
	Window     int
	Hidden     int
	Epochs     int
	SmallScale sim.Time // small-scale data-generation duration

	// Log, when non-nil, receives progress lines.
	Log io.Writer
}

// Default returns the scaled-down defaults used across the suite.
func Default() Options {
	return Options{
		MeanFlowBytes: 20_000,
		Load:          0.70,
		Duration:      150 * sim.Millisecond,
		RunUntil:      300 * sim.Millisecond,
		Seed:          1,
		Racks:         2, HostsPerRack: 4, Aggs: 2, CoresPerAgg: 2,
		Window: 6, Hidden: 16, Epochs: 3,
		SmallScale: 250 * sim.Millisecond,
	}
}

func (o Options) logf(format string, args ...any) {
	if o.Log != nil {
		fmt.Fprintf(o.Log, format+"\n", args...)
	}
}

// BaseConfig builds the cluster configuration for a protocol at 2
// clusters (callers scale it with WithClusters).
func (o Options) BaseConfig(protocol string) (cluster.Config, error) {
	p, err := transport.ByName(protocol)
	if err != nil {
		return cluster.Config{}, err
	}
	cfg := cluster.DefaultConfig(2)
	cfg.Topo.RacksPerCluster = o.Racks
	cfg.Topo.HostsPerRack = o.HostsPerRack
	cfg.Topo.AggPerCluster = o.Aggs
	cfg.Topo.CoresPerAgg = o.CoresPerAgg
	cfg.Protocol = p
	cfg.Workload = workload.DefaultConfig(o.MeanFlowBytes)
	cfg.Workload.Duration = o.Duration
	cfg.Workload.Load = o.Load
	cfg.Workload.Seed = o.Seed
	return cfg, nil
}

// TrainConfig builds the training configuration matching the options.
func (o Options) TrainConfig() core.TrainConfig {
	tc := core.DefaultTrainConfig()
	tc.Dataset.Window = o.Window
	tc.Model = ml.DefaultModelConfig(0, o.Window)
	tc.Model.Hidden = o.Hidden
	tc.Model.Epochs = o.Epochs
	return tc
}

// Runner caches trained artifacts per protocol so a batch of figures
// reuses one pipeline run (the paper's fixed cost).
type Runner struct {
	Opts Options
	arts map[string]*core.Artifacts
}

// NewRunner creates a Runner.
func NewRunner(opts Options) *Runner {
	return &Runner{Opts: opts, arts: make(map[string]*core.Artifacts)}
}

// Artifacts returns (training if needed) the Mimic models for a protocol.
func (r *Runner) Artifacts(protocol string) (*core.Artifacts, error) {
	if a, ok := r.arts[protocol]; ok {
		return a, nil
	}
	base, err := r.Opts.BaseConfig(protocol)
	if err != nil {
		return nil, err
	}
	r.Opts.logf("training mimic models for %s ...", protocol)
	pcfg := core.PipelineConfig{
		Base:               base,
		SmallScaleDuration: r.Opts.SmallScale,
		Train:              r.Opts.TrainConfig(),
	}
	art, err := core.RunPipeline(pcfg)
	if err != nil {
		return nil, err
	}
	r.arts[protocol] = art
	return art, nil
}

// pipelineFor trains mimic models for an explicit base configuration
// (used when a knob like DCTCP's K changes per evaluation point).
func (r *Runner) pipelineFor(base cluster.Config) (*core.Artifacts, error) {
	pcfg := core.PipelineConfig{
		Base:               base,
		SmallScaleDuration: r.Opts.SmallScale,
		Train:              r.Opts.TrainConfig(),
	}
	return core.RunPipeline(pcfg)
}

// runConfigured runs an explicit full-fidelity configuration.
func runConfigured(cfg cluster.Config, until sim.Time) (cluster.Results, error) {
	inst, err := cluster.New(cfg)
	if err != nil {
		return cluster.Results{}, err
	}
	inst.Run(until)
	return inst.Results(), nil
}

// Table is a printable experiment result.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.Join(parts, "  "))
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// runFull executes a full-fidelity simulation at n clusters.
func (r *Runner) runFull(protocol string, n int) (cluster.Results, time.Duration, error) {
	base, err := r.Opts.BaseConfig(protocol)
	if err != nil {
		return cluster.Results{}, 0, err
	}
	base.Topo = base.Topo.WithClusters(n)
	inst, err := cluster.New(base)
	if err != nil {
		return cluster.Results{}, 0, err
	}
	t0 := time.Now()
	inst.Run(r.Opts.RunUntil)
	return inst.Results(), time.Since(t0), nil
}

// runMimic executes a MimicNet composition at n clusters.
func (r *Runner) runMimic(protocol string, n int) (cluster.Results, time.Duration, *core.Engine, error) {
	art, err := r.Artifacts(protocol)
	if err != nil {
		return cluster.Results{}, 0, nil, err
	}
	base, err := r.Opts.BaseConfig(protocol)
	if err != nil {
		return cluster.Results{}, 0, nil, err
	}
	cfg := base
	cfg.Topo = base.Topo.WithClusters(n)
	t0 := time.Now()
	comp, err := core.Compose(cfg, art.Models)
	if err != nil {
		return cluster.Results{}, 0, nil, err
	}
	comp.Run(r.Opts.RunUntil)
	return comp.Results(), time.Since(t0), comp, nil
}

// runFlow executes the flow-level baseline at n clusters.
func (r *Runner) runFlow(protocol string, n int) (flowsim.Results, time.Duration, error) {
	base, err := r.Opts.BaseConfig(protocol)
	if err != nil {
		return flowsim.Results{}, 0, err
	}
	cfg := flowsim.Config{
		Topo:     base.Topo.WithClusters(n),
		Workload: base.Workload,
		LinkBps:  base.Link.RateBps,
	}
	t0 := time.Now()
	res, err := flowsim.Run(cfg, r.Opts.RunUntil)
	return res, time.Since(t0), err
}

func f3(v float64) string { return fmt.Sprintf("%.3g", v) }

func durStr(d time.Duration) string { return d.Round(time.Millisecond).String() }

func nowNanos() int64 { return time.Now().UnixNano() }
