package experiments

import (
	"fmt"

	"mimicnet/internal/metrics"
	"mimicnet/internal/stats"
)

// Fig1 reproduces Figure 1: W1 distance to ground truth of the FCT
// distribution across network sizes, for MimicNet, flow-level simulation,
// and the small-scale (2-cluster) extrapolation.
func (r *Runner) Fig1(sizes []int) (*Table, error) {
	return r.accuracyScaling("Figure 1", "W1(FCT) to ground truth vs network size", sizes, "fct")
}

// Fig8 reproduces Figure 8: throughput W1 scalability.
func (r *Runner) Fig8(sizes []int) (*Table, error) {
	return r.accuracyScaling("Figure 8", "W1(throughput) to ground truth vs network size", sizes, "throughput")
}

// Fig9 reproduces Figure 9: RTT W1 scalability (flow-level simulation is
// too coarse-grained to provide RTT).
func (r *Runner) Fig9(sizes []int) (*Table, error) {
	return r.accuracyScaling("Figure 9", "W1(RTT) to ground truth vs network size", sizes, "rtt")
}

func pickDist(kind string, fcts, tputs, rtts []float64) []float64 {
	switch kind {
	case "fct":
		return fcts
	case "throughput":
		return tputs
	default:
		return rtts
	}
}

func (r *Runner) accuracyScaling(id, title string, sizes []int, kind string) (*Table, error) {
	const protocol = "newreno"
	// Small-scale baseline: pretend the 2-cluster results hold at scale.
	smallRes, _, err := r.runFull(protocol, 2)
	if err != nil {
		return nil, err
	}
	small := pickDist(kind, smallRes.FCTs, smallRes.Throughputs, smallRes.RTTs)

	t := &Table{
		ID: id, Title: title,
		Header: []string{"#clusters", "mimicnet_w1", "flowlevel_w1", "smallscale_w1"},
	}
	if kind == "rtt" {
		t.Header = []string{"#clusters", "mimicnet_w1", "smallscale_w1"}
	}
	for _, n := range sizes {
		truthRes, _, err := r.runFull(protocol, n)
		if err != nil {
			return nil, err
		}
		truth := pickDist(kind, truthRes.FCTs, truthRes.Throughputs, truthRes.RTTs)

		mimicRes, _, _, err := r.runMimic(protocol, n)
		if err != nil {
			return nil, err
		}
		mimic := pickDist(kind, mimicRes.FCTs, mimicRes.Throughputs, mimicRes.RTTs)

		row := []string{
			fmt.Sprint(n),
			f3(metrics.W1(mimic, truth)),
		}
		if kind != "rtt" {
			flowRes, _, err := r.runFlow(protocol, n)
			if err != nil {
				return nil, err
			}
			flow := pickDist(kind, flowRes.FCTs, flowRes.Throughputs, nil)
			row = append(row, f3(metrics.W1(flow, truth)))
		}
		row = append(row, f3(metrics.W1(small, truth)))
		t.Rows = append(t.Rows, row)
		r.Opts.logf("%s n=%d done", id, n)
	}
	t.Notes = append(t.Notes,
		"lower is better; paper Fig 1/8/9 show MimicNet flat & lowest while small-scale error grows with size")
	return t, nil
}

// Fig7 reproduces Figure 7: CDF summary of FCT/throughput/RTT for a small
// and a large composition: W1 against ground truth plus p99 relative
// error per metric and estimator.
func (r *Runner) Fig7(small, large int) (*Table, error) {
	const protocol = "newreno"
	t := &Table{
		ID:     "Figure 7",
		Title:  fmt.Sprintf("accuracy at %d and %d clusters (W1 and p99 error)", small, large),
		Header: []string{"#clusters", "metric", "estimator", "w1", "p99_rel_err"},
	}
	smallRes, _, err := r.runFull(protocol, 2)
	if err != nil {
		return nil, err
	}
	for _, n := range []int{small, large} {
		truth, _, err := r.runFull(protocol, n)
		if err != nil {
			return nil, err
		}
		mimic, _, _, err := r.runMimic(protocol, n)
		if err != nil {
			return nil, err
		}
		flow, _, err := r.runFlow(protocol, n)
		if err != nil {
			return nil, err
		}
		for _, m := range []struct {
			name          string
			truth, mim    []float64
			flowD, smallD []float64
		}{
			{"fct", truth.FCTs, mimic.FCTs, flow.FCTs, smallRes.FCTs},
			{"throughput", truth.Throughputs, mimic.Throughputs, flow.Throughputs, smallRes.Throughputs},
			{"rtt", truth.RTTs, mimic.RTTs, nil, smallRes.RTTs},
		} {
			p99t := stats.Quantile(m.truth, 0.99)
			add := func(est string, dist []float64) {
				if len(dist) == 0 {
					return
				}
				relErr := 0.0
				if p99t != 0 {
					relErr = (stats.Quantile(dist, 0.99) - p99t) / p99t
					if relErr < 0 {
						relErr = -relErr
					}
				}
				t.Rows = append(t.Rows, []string{
					fmt.Sprint(n), m.name, est,
					f3(metrics.W1(dist, m.truth)), f3(relErr),
				})
			}
			add("mimicnet", m.mim)
			add("flowlevel", m.flowD)
			add("smallscale", m.smallD)
		}
		r.Opts.logf("Figure 7 n=%d done", n)
	}
	t.Notes = append(t.Notes,
		"paper: MimicNet p99s within 1.8%/3.3%/2% of truth at 128 clusters; flow-level and small-scale far worse")
	return t, nil
}

// Fig20 reproduces Figure 20 (Appendix E): FCT accuracy under a heavier
// 90% aggregate load.
func (r *Runner) Fig20(n int) (*Table, error) {
	// A fresh runner so the heavier-load models are trained on
	// heavier-load data.
	opts := r.Opts
	opts.Load = 0.90
	hr := NewRunner(opts)
	truth, _, err := hr.runFull("newreno", n)
	if err != nil {
		return nil, err
	}
	mimic, _, _, err := hr.runMimic("newreno", n)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "Figure 20",
		Title:  fmt.Sprintf("FCT accuracy at 90%% load, %d clusters", n),
		Header: []string{"estimator", "w1_fct", "p50", "p99"},
	}
	add := func(name string, d []float64) {
		t.Rows = append(t.Rows, []string{
			name, f3(metrics.W1(d, truth.FCTs)),
			f3(stats.Quantile(d, 0.5)), f3(stats.Quantile(d, 0.99)),
		})
	}
	add("groundtruth", truth.FCTs)
	add("mimicnet", mimic.FCTs)
	t.Notes = append(t.Notes, "paper: W1 stays low (0.15-scale) and CDF shape is maintained at 90% load")
	return t, nil
}
