package experiments

import (
	"bytes"
	"strings"
	"testing"

	"mimicnet/internal/sim"
)

// tinyOptions shrinks every knob for fast test execution.
func tinyOptions() Options {
	o := Default()
	o.Duration = 80 * sim.Millisecond
	o.RunUntil = 160 * sim.Millisecond
	o.SmallScale = 120 * sim.Millisecond
	o.Window = 4
	o.Hidden = 8
	o.Epochs = 1
	return o
}

func TestTablePrinting(t *testing.T) {
	tb := &Table{
		ID: "X", Title: "demo",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
		Notes:  []string{"hello"},
	}
	var buf bytes.Buffer
	tb.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"== X: demo ==", "a    bb", "333", "note: hello"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestBaseConfigAndTrainConfig(t *testing.T) {
	o := tinyOptions()
	cfg, err := o.BaseConfig("dctcp")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Protocol.Name() != "dctcp" || cfg.Workload.Load != o.Load {
		t.Error("BaseConfig misconfigured")
	}
	if _, err := o.BaseConfig("nope"); err == nil {
		t.Error("unknown protocol accepted")
	}
	tc := o.TrainConfig()
	if tc.Model.Hidden != o.Hidden || tc.Dataset.Window != o.Window {
		t.Error("TrainConfig misconfigured")
	}
}

func TestRunnerCachesArtifacts(t *testing.T) {
	r := NewRunner(tinyOptions())
	a1, err := r.Artifacts("newreno")
	if err != nil {
		t.Fatal(err)
	}
	a2, err := r.Artifacts("newreno")
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Error("artifacts not cached")
	}
}

func TestTable1(t *testing.T) {
	r := NewRunner(tinyOptions())
	tb, err := r.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 12 {
		t.Errorf("Table 1 rows = %d", len(tb.Rows))
	}
}

func TestFig1Small(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep is slow")
	}
	r := NewRunner(tinyOptions())
	tb, err := r.Fig1([]int{4})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 1 || len(tb.Rows[0]) != 4 {
		t.Errorf("Fig1 shape wrong: %+v", tb.Rows)
	}
}

func TestFig2Small(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep is slow")
	}
	r := NewRunner(tinyOptions())
	tb, err := r.Fig2([]int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Errorf("Fig2 rows = %d", len(tb.Rows))
	}
}

func TestFig5And6(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep is slow")
	}
	r := NewRunner(tinyOptions())
	tb5, err := r.Fig5()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb5.Rows) != 3 {
		t.Errorf("Fig5 rows = %d", len(tb5.Rows))
	}
	tb6, err := r.Fig6()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb6.Rows) != 3 {
		t.Errorf("Fig6 rows = %d", len(tb6.Rows))
	}
}

func TestFig10Small(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep is slow")
	}
	r := NewRunner(tinyOptions())
	tb, err := r.Fig10([]int{4}, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 1 {
		t.Errorf("Fig10 rows = %d", len(tb.Rows))
	}
}

func TestFig16And17Small(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep is slow")
	}
	r := NewRunner(tinyOptions())
	tb, err := r.Fig16([]int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Errorf("Fig16 rows = %d", len(tb.Rows))
	}
	tb, err = r.Fig17([]int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Errorf("Fig17 rows = %d", len(tb.Rows))
	}
}

func TestTable2Small(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep is slow")
	}
	r := NewRunner(tinyOptions())
	tb, err := r.Table2(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 5 {
		t.Errorf("Table2 rows = %d", len(tb.Rows))
	}
}

func TestAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep is slow")
	}
	r := NewRunner(tinyOptions())
	tb, err := r.AblationCongestionState(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Errorf("Ablation A rows = %d", len(tb.Rows))
	}
	tb, err = r.AblationFeeders(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Errorf("Ablation B rows = %d", len(tb.Rows))
	}
	// Feeders-on must actually generate feeder events; feeders-off none.
	if tb.Rows[0][2] == "0" {
		t.Error("with_feeders produced no feeder events")
	}
	if tb.Rows[1][2] != "0" {
		t.Error("without_feeders produced feeder events")
	}
	tb, err = r.AblationDiscretization([]int{1, 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Errorf("Ablation C rows = %d", len(tb.Rows))
	}
	tb, err = r.AblationQueues(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Errorf("Ablation D rows = %d", len(tb.Rows))
	}
	if _, err := r.AblationFeeders(2); err == nil {
		t.Error("feeder ablation at n=2 should error")
	}
}

func TestAblationFeederDistribution(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep is slow")
	}
	r := NewRunner(tinyOptions())
	tb, err := r.AblationFeederDistribution(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("Ablation E rows = %d", len(tb.Rows))
	}
	if tb.Rows[0][0] != "lognormal" || tb.Rows[1][0] != "empirical" {
		t.Errorf("unexpected variants: %v", tb.Rows)
	}
}

// TestRemainingFigures exercises every experiment function not covered
// above at the tiniest usable scale, asserting shape only.
func TestRemainingFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep is slow")
	}
	r := NewRunner(tinyOptions())

	tb, err := r.Fig7(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) == 0 {
		t.Error("Fig7 empty")
	}

	for name, f := range map[string]func([]int) (*Table, error){
		"fig8": r.Fig8, "fig9": r.Fig9,
	} {
		tb, err := f([]int{3})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(tb.Rows) != 1 {
			t.Errorf("%s rows = %d", name, len(tb.Rows))
		}
	}

	if tb, err = r.Fig11([]int{3}); err != nil || len(tb.Rows) != 1 {
		t.Fatalf("Fig11: %v rows=%d", err, len(tb.Rows))
	}
	if tb, err = r.Fig12([]int{3}); err != nil || len(tb.Rows) != 1 {
		t.Fatalf("Fig12: %v rows=%d", err, len(tb.Rows))
	}
	if tb, err = r.Fig13(3, []int{10, 40}); err != nil || len(tb.Rows) != 2 {
		t.Fatalf("Fig13: %v", err)
	}
	if tb, err = r.Fig14(3); err != nil || len(tb.Rows) != 4 {
		t.Fatalf("Fig14: %v", err)
	}
	if tb, err = r.Fig18(3); err != nil || len(tb.Rows) != 4 {
		t.Fatalf("Fig18: %v", err)
	}
	if tb, err = r.Fig19(3); err != nil || len(tb.Rows) != 4 {
		t.Fatalf("Fig19: %v", err)
	}
	if tb, err = r.Fig20(3); err != nil || len(tb.Rows) != 2 {
		t.Fatalf("Fig20: %v", err)
	}
	lat, tput, err := r.Fig21And22(3, []sim.Time{100 * sim.Millisecond, 200 * sim.Millisecond})
	if err != nil || len(lat.Rows) != 2 || len(tput.Rows) != 2 {
		t.Fatalf("Fig21/22: %v", err)
	}
	if tb, err = r.Fig23([]int{3}); err != nil || len(tb.Rows) != 1 {
		t.Fatalf("Fig23: %v", err)
	}
}

func TestAblationModelClass(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep is slow")
	}
	r := NewRunner(tinyOptions())
	tb, err := r.AblationModelClass(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("Ablation F rows = %d", len(tb.Rows))
	}
}
