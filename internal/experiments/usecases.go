package experiments

import (
	"fmt"
	"time"

	"mimicnet/internal/metrics"
	"mimicnet/internal/stats"
)

// Fig13 reproduces Figure 13 (§9.4.1): tuning DCTCP's ECN marking
// threshold K. The configuration minimizing 90-pct FCT differs between
// the 2-cluster and the large simulation; MimicNet should agree with the
// large-scale ground truth at a fraction of its cost.
func (r *Runner) Fig13(large int, ks []int) (*Table, error) {
	t := &Table{
		ID:     "Figure 13",
		Title:  fmt.Sprintf("DCTCP ECN threshold sweep: 90-pct FCT at 2 vs %d clusters", large),
		Header: []string{"K", "small_2c", fmt.Sprintf("truth_%dc", large), fmt.Sprintf("mimicnet_%dc", large)},
	}
	var fullWall, mimicWall time.Duration
	for _, k := range ks {
		opts := r.Opts
		rr := NewRunner(opts)
		baseSmall, err := rr.Opts.BaseConfig("dctcp")
		if err != nil {
			return nil, err
		}
		baseSmall.ECNThresholdK = k

		// Small-scale full simulation.
		smallCfg := baseSmall
		small, err := runConfigured(smallCfg, rr.Opts.RunUntil)
		if err != nil {
			return nil, err
		}

		// Large-scale ground truth.
		largeCfg := baseSmall
		largeCfg.Topo = baseSmall.Topo.WithClusters(large)
		t0 := time.Now()
		truth, err := runConfigured(largeCfg, rr.Opts.RunUntil)
		if err != nil {
			return nil, err
		}
		fullWall += time.Since(t0)

		// MimicNet: train on the K-specific small-scale run, compose.
		t0 = time.Now()
		art, err := rr.pipelineFor(baseSmall)
		if err != nil {
			return nil, err
		}
		res, _, err := art.Estimate(baseSmall, large, rr.Opts.RunUntil)
		if err != nil {
			return nil, err
		}
		mimicWall += time.Since(t0)

		t.Rows = append(t.Rows, []string{
			fmt.Sprint(k),
			f3(stats.Quantile(small.FCTs, 0.9)),
			f3(stats.Quantile(truth.FCTs, 0.9)),
			f3(stats.Quantile(res.FCTs, 0.9)),
		})
		r.Opts.logf("Figure 13 K=%d done", k)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("wall clock across the sweep: full %v vs mimicnet %v (incl. per-K training)", durStr(fullWall), durStr(mimicWall)),
		"paper: small scale prescribes K=60 while 32-cluster truth (and MimicNet, 12x faster) prescribe K=20")
	return t, nil
}

// Fig14 reproduces Figure 14 (§9.4.2): comparing Homa, DCTCP, TCP Vegas,
// and TCP Westwood FCTs at scale — ground truth vs MimicNet.
func (r *Runner) Fig14(large int) (*Table, error) {
	return r.protocolComparison("Figure 14", "fct", large)
}

// Fig18 reproduces Appendix D Figure 18: the same comparison on
// throughput.
func (r *Runner) Fig18(large int) (*Table, error) {
	return r.protocolComparison("Figure 18", "throughput", large)
}

// Fig19 reproduces Appendix D Figure 19: the same comparison on RTT.
func (r *Runner) Fig19(large int) (*Table, error) {
	return r.protocolComparison("Figure 19", "rtt", large)
}

func (r *Runner) protocolComparison(id, kind string, large int) (*Table, error) {
	protocols := []string{"homa", "dctcp", "vegas", "westwood"}
	t := &Table{
		ID:     id,
		Title:  fmt.Sprintf("protocol comparison on %s at %d clusters", kind, large),
		Header: []string{"protocol", "truth_p50", "mimic_p50", "truth_p90", "mimic_p90", "truth_p99", "mimic_p99", "w1"},
	}
	for _, proto := range protocols {
		truth, _, err := r.runFull(proto, large)
		if err != nil {
			return nil, err
		}
		mimic, _, _, err := r.runMimic(proto, large)
		if err != nil {
			return nil, err
		}
		td := pickDist(kind, truth.FCTs, truth.Throughputs, truth.RTTs)
		md := pickDist(kind, mimic.FCTs, mimic.Throughputs, mimic.RTTs)
		t.Rows = append(t.Rows, []string{
			proto,
			f3(stats.Quantile(td, 0.5)), f3(stats.Quantile(md, 0.5)),
			f3(stats.Quantile(td, 0.9)), f3(stats.Quantile(md, 0.9)),
			f3(stats.Quantile(td, 0.99)), f3(stats.Quantile(md, 0.99)),
			f3(metrics.W1(md, td)),
		})
		r.Opts.logf("%s %s done", id, proto)
	}
	t.Notes = append(t.Notes,
		"paper: MimicNet's 90/99-pct tails are within ~5% of truth per protocol and preserve the protocols' relative order")
	return t, nil
}
