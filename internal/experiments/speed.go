package experiments

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"mimicnet/internal/cluster"
	"mimicnet/internal/core"
	"mimicnet/internal/sim"
	"mimicnet/internal/topo"
)

// Fig2 reproduces Figure 2: discrete-event simulator throughput
// (simulated seconds per wall second) on leaf-spine topologies of growing
// size, single-threaded and with 2- and 4-way conservative PDES. The
// paper's observation — parallelization does not speed up tightly coupled
// topologies — emerges from the synchronization-barrier overhead.
func (r *Runner) Fig2(sizes []int) (*Table, error) {
	t := &Table{
		ID:     "Figure 2",
		Title:  "simulator throughput on leaf-spine networks (sim-sec/sec)",
		Header: []string{"#tors_aggs", "single", "2_lps", "4_lps"},
	}
	for _, n := range sizes {
		cfg, err := r.Opts.BaseConfig("newreno")
		if err != nil {
			return nil, err
		}
		// A leaf-spine is a single cluster with n ToRs and n spines.
		cfg.Topo = topo.Config{
			Clusters: 1, RacksPerCluster: n, HostsPerRack: 2,
			AggPerCluster: n, CoresPerAgg: 1,
		}
		single, events, wall, err := leafSpineThroughput(cfg, r.Opts.RunUntil)
		if err != nil {
			return nil, err
		}
		lp2 := pdesThroughput(2, events, r.Opts.RunUntil, cfg.Link.Delay, wall)
		lp4 := pdesThroughput(4, events, r.Opts.RunUntil, cfg.Link.Delay, wall)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), f3(single), f3(lp2), f3(lp4),
		})
		r.Opts.logf("Figure 2 n=%d done", n)
	}
	t.Notes = append(t.Notes,
		"PDES rows replay the measured event load split across LPs with calibrated per-event work, a conservative barrier every link latency, and cross-LP messaging for ~90% of events (leaf-spine partitions put every hop on an LP boundary)",
		"paper: 5 min of simulated time can take days even for small leaf-spines; parallel execution is no faster")
	return t, nil
}

func leafSpineThroughput(cfg cluster.Config, until sim.Time) (simSecPerSec float64, events uint64, wall time.Duration, err error) {
	inst, err := cluster.New(cfg)
	if err != nil {
		return 0, 0, 0, err
	}
	t0 := time.Now()
	inst.Run(until)
	wall = time.Since(t0)
	sec := wall.Seconds()
	if sec <= 0 {
		sec = 1e-9
	}
	return until.Seconds() / sec, inst.Sim.Processed(), wall, nil
}

// spin busy-waits for roughly d, standing in for per-event computation.
func spin(d time.Duration) {
	if d <= 0 {
		return
	}
	end := time.Now().Add(d)
	for time.Now().Before(end) {
	}
}

// pdesThroughput replays the measured event load across n logical
// processes with conservative lookahead-window synchronization. Per-event
// work is calibrated from the single-threaded measurement; 90% of events
// additionally exercise a cross-LP message (in a leaf-spine bipartition
// nearly every hop crosses LPs), whose hand-off cost models the
// marshalling overhead of process-based PDES runtimes.
func pdesThroughput(n int, events uint64, until, lookahead sim.Time, singleWall time.Duration) float64 {
	if events == 0 {
		return 0
	}
	perEvent := singleWall / time.Duration(events)
	const crossCost = 1 * time.Microsecond // message marshalling + transport
	p := sim.NewParallel(n, lookahead)
	windows := uint64(until / lookahead)
	if windows == 0 {
		windows = 1
	}
	perLPWindow := events / uint64(n) / windows
	if perLPWindow == 0 {
		perLPWindow = 1
	}
	for li, lp := range p.LPs {
		lp := lp
		next := p.LPs[(li+1)%n]
		var window func()
		count := uint64(0)
		window = func() {
			base := lp.Sim.Now()
			for i := uint64(0); i < perLPWindow; i++ {
				i := i
				lp.Sim.At(base+sim.Time(i), func() {
					spin(perEvent)
					count++
					if count%10 != 0 && n > 1 {
						// Cross-LP hop: pay the messaging cost and hand a
						// real message to the neighbor LP.
						spin(crossCost)
						lp.SendTo(next, lp.Sim.Now()+lookahead, func() {})
					}
				})
			}
			if base+lookahead < until {
				lp.Sim.At(base+lookahead, window)
			}
		}
		lp.Sim.At(0, window)
	}
	t0 := time.Now()
	p.Run(until)
	wall := time.Since(t0).Seconds()
	if wall <= 0 {
		wall = 1e-9
	}
	return until.Seconds() / wall
}

// Fig10 reproduces Figure 10: wall-clock speedup of a trained MimicNet
// estimate over full-fidelity simulation, across network sizes and
// racks-per-cluster.
func (r *Runner) Fig10(sizes, racksPerCluster []int) (*Table, error) {
	t := &Table{
		ID:     "Figure 10",
		Title:  "simulation speedup of MimicNet over full-fidelity",
		Header: []string{"#clusters", "racks/cluster", "full_wall", "mimic_wall", "speedup"},
	}
	for _, racks := range racksPerCluster {
		opts := r.Opts
		opts.Racks = racks
		rr := NewRunner(opts)
		if _, err := rr.Artifacts("newreno"); err != nil {
			return nil, err
		}
		for _, n := range sizes {
			_, fullT, err := rr.runFull("newreno", n)
			if err != nil {
				return nil, err
			}
			_, mimicT, _, err := rr.runMimic("newreno", n)
			if err != nil {
				return nil, err
			}
			speedup := fullT.Seconds() / mimicT.Seconds()
			t.Rows = append(t.Rows, []string{
				fmt.Sprint(n), fmt.Sprint(racks),
				durStr(fullT), durStr(mimicT), f3(speedup),
			})
			r.Opts.logf("Figure 10 racks=%d n=%d speedup=%.1f", racks, n, speedup)
		}
	}
	t.Notes = append(t.Notes,
		"speedup excludes the fixed training cost, as in the paper; paper reaches 675x at 128 clusters (their full sims take days)")
	return t, nil
}

// Fig11 reproduces Figure 11: simulation latency (time to a full result
// set) for single/partitioned full simulation and MimicNet, with and
// without training cost.
func (r *Runner) Fig11(sizes []int) (*Table, error) {
	nPart := runtime.NumCPU()
	if nPart > 8 {
		nPart = 8
	}
	t := &Table{
		ID:    "Figure 11",
		Title: fmt.Sprintf("simulation latency, %d-way partitions (lower is better)", nPart),
		Header: []string{"#clusters", "single_sim", "single_mimic_with_train",
			"single_mimic", "partitioned_sim", "partitioned_mimic"},
	}
	for _, n := range sizes {
		_, fullT, err := r.runFull("newreno", n)
		if err != nil {
			return nil, err
		}
		art, err := r.Artifacts("newreno")
		if err != nil {
			return nil, err
		}
		trainCost := art.SmallScaleTime + art.TrainTime
		_, mimicT, _, err := r.runMimic("newreno", n)
		if err != nil {
			return nil, err
		}
		// Partitioned full simulation: split the simulated horizon into
		// nPart chunks run concurrently (different seeds stand in for
		// different chunks). MimicNet's parallel variant is the real
		// thing: the production composition sharded into one LP per
		// cluster.
		partFull := r.partitioned(n, nPart)
		partMimic, err := r.shardedMimic(n, nPart)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), durStr(fullT), durStr(mimicT + trainCost),
			durStr(mimicT), durStr(partFull), durStr(partMimic),
		})
		r.Opts.logf("Figure 11 n=%d done", n)
	}
	t.Notes = append(t.Notes,
		"partitioned_mimic is the production sharded composition (one LP per cluster), not a seed-split approximation",
		"paper: with training included MimicNet wins beyond 64 clusters; without, it wins everywhere at scale")
	return t, nil
}

// shardedMimic runs the production cluster-sharded composition with
// nWorkers worker goroutines over the full horizon and returns its
// wall-clock time. Results are bitwise-identical to the sequential
// composition; only the wall-clock differs.
func (r *Runner) shardedMimic(n, nWorkers int) (time.Duration, error) {
	art, err := r.Artifacts("newreno")
	if err != nil {
		return 0, err
	}
	cfg, err := r.Opts.BaseConfig("newreno")
	if err != nil {
		return 0, err
	}
	cfg.Topo = cfg.Topo.WithClusters(n)
	cfg.ShardedRun = 1
	cfg.NumWorkers = nWorkers
	t0 := time.Now()
	comp, err := core.Compose(cfg, art.Models)
	if err != nil {
		return 0, err
	}
	comp.Run(r.Opts.RunUntil)
	return time.Since(t0), nil
}

// partitioned runs nPart full-fidelity instances concurrently, each
// simulating 1/nPart of the horizon, and returns the wall-clock to
// finish all.
func (r *Runner) partitioned(n, nPart int) time.Duration {
	horizon := sim.Time(uint64(r.Opts.RunUntil) / uint64(nPart))
	var wg sync.WaitGroup
	t0 := time.Now()
	for i := 0; i < nPart; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			opts := r.Opts
			opts.Seed = seed
			opts.RunUntil = horizon
			if opts.Duration > horizon {
				opts.Duration = horizon
			}
			rr := NewRunner(opts)
			_, _, _ = rr.runFull("newreno", n)
		}(r.Opts.Seed + int64(i) + 1)
	}
	wg.Wait()
	return time.Since(t0)
}

// Fig12 reproduces Figure 12: simulation throughput in simulated seconds
// per wall second, including parallel (nPart concurrent full-horizon)
// variants.
func (r *Runner) Fig12(sizes []int) (*Table, error) {
	nPar := runtime.NumCPU()
	if nPar > 8 {
		nPar = 8
	}
	t := &Table{
		ID:    "Figure 12",
		Title: fmt.Sprintf("simulation throughput (sim-sec/sec), %d-way parallel", nPar),
		Header: []string{"#clusters", "single_sim", "single_mimic_with_train",
			"single_mimic", "parallel_sim", "parallel_mimic"},
	}
	horizon := r.Opts.RunUntil.Seconds()
	for _, n := range sizes {
		_, fullT, err := r.runFull("newreno", n)
		if err != nil {
			return nil, err
		}
		art, err := r.Artifacts("newreno")
		if err != nil {
			return nil, err
		}
		trainCost := art.SmallScaleTime + art.TrainTime
		_, mimicT, _, err := r.runMimic("newreno", n)
		if err != nil {
			return nil, err
		}
		parFull := r.parallelThroughput(n, nPar)
		shardT, err := r.shardedMimic(n, nPar)
		if err != nil {
			return nil, err
		}
		parMimic := horizon / shardT.Seconds()
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n),
			f3(horizon / fullT.Seconds()),
			f3(horizon / (mimicT + trainCost).Seconds()),
			f3(horizon / mimicT.Seconds()),
			f3(parFull), f3(parMimic),
		})
		r.Opts.logf("Figure 12 n=%d done", n)
	}
	t.Notes = append(t.Notes,
		"parallel_mimic is the production sharded composition (one LP per cluster) at full horizon",
		"paper: MimicNet throughput is roughly size-independent; single full simulation degrades ~linearly with size")
	return t, nil
}

// parallelThroughput measures aggregate full-simulation throughput from
// nPar concurrent full-horizon instances (the paper's embarrassingly
// parallel baseline; the sharded composition covers MimicNet's side).
func (r *Runner) parallelThroughput(n, nPar int) float64 {
	var wg sync.WaitGroup
	t0 := time.Now()
	for i := 0; i < nPar; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			opts := r.Opts
			opts.Seed = seed
			rr := NewRunner(opts)
			_, _, _ = rr.runFull("newreno", n)
		}(r.Opts.Seed + int64(i) + 1)
	}
	wg.Wait()
	wall := time.Since(t0).Seconds()
	return float64(nPar) * r.Opts.RunUntil.Seconds() / wall
}

// Table2 reproduces Table 2: the wall-clock breakdown of MimicNet's
// phases versus direct full simulation at a large size.
func (r *Runner) Table2(n int) (*Table, error) {
	art, err := r.Artifacts("newreno")
	if err != nil {
		return nil, err
	}
	_, mimicT, _, err := r.runMimic("newreno", n)
	if err != nil {
		return nil, err
	}
	_, fullT, err := r.runFull("newreno", n)
	if err != nil {
		return nil, err
	}
	hosts := r.Opts.Racks * r.Opts.HostsPerRack * n
	t := &Table{
		ID:     "Table 2",
		Title:  fmt.Sprintf("running time for %v of simulated time, %d clusters / %d hosts", r.Opts.RunUntil, n, hosts),
		Header: []string{"factor", "time"},
		Rows: [][]string{
			{"mimicnet: small-scale simulation", durStr(art.SmallScaleTime)},
			{"mimicnet: training", durStr(art.TrainTime)},
			{"mimicnet: large-scale simulation", durStr(mimicT)},
			{"mimicnet: total", durStr(art.SmallScaleTime + art.TrainTime + mimicT)},
			{"full simulation", durStr(fullT)},
		},
	}
	t.Notes = append(t.Notes,
		"paper (1024 hosts, 20s): 1h3m + 7h10m + 25m vs 1w4d22h for full simulation; first two rows are fixed costs")
	return t, nil
}

// Fig21 and Fig22 reproduce Appendix F: latency and throughput of the
// approaches across different simulated lengths.
func (r *Runner) Fig21And22(n int, lengths []sim.Time) (*Table, *Table, error) {
	lat := &Table{
		ID:     "Figure 21",
		Title:  fmt.Sprintf("simulation latency vs simulated length (%d clusters)", n),
		Header: []string{"sim_length", "single_sim", "single_mimic_with_train", "single_mimic"},
	}
	tput := &Table{
		ID:     "Figure 22",
		Title:  fmt.Sprintf("simulation throughput vs simulated length (%d clusters)", n),
		Header: []string{"sim_length", "single_sim", "single_mimic_with_train", "single_mimic"},
	}
	art, err := r.Artifacts("newreno")
	if err != nil {
		return nil, nil, err
	}
	trainCost := art.SmallScaleTime + art.TrainTime
	for _, L := range lengths {
		opts := r.Opts
		opts.RunUntil = L
		if opts.Duration > L {
			opts.Duration = L
		}
		rr := NewRunner(opts)
		rr.arts["newreno"] = art
		_, fullT, err := rr.runFull("newreno", n)
		if err != nil {
			return nil, nil, err
		}
		_, mimicT, _, err := rr.runMimic("newreno", n)
		if err != nil {
			return nil, nil, err
		}
		lat.Rows = append(lat.Rows, []string{
			L.String(), durStr(fullT), durStr(mimicT + trainCost), durStr(mimicT),
		})
		sec := L.Seconds()
		tput.Rows = append(tput.Rows, []string{
			L.String(), f3(sec / fullT.Seconds()),
			f3(sec / (mimicT + trainCost).Seconds()), f3(sec / mimicT.Seconds()),
		})
		r.Opts.logf("Figure 21/22 length=%v done", L)
	}
	lat.Notes = append(lat.Notes, "paper: relative speeds barely change with length; MimicNet's fixed costs amortize")
	tput.Notes = append(tput.Notes, "paper: throughput is independent of simulated length for all approaches")
	return lat, tput, nil
}

// Fig23 reproduces Appendix G: total compute (FLOPs) consumed by each
// approach. Simulator work is modeled as a fixed cost per event; MimicNet
// adds LSTM training and inference FLOPs.
func (r *Runner) Fig23(sizes []int) (*Table, error) {
	const flopsPerEvent = 500.0 // switch/queue arithmetic per DES event
	t := &Table{
		ID:     "Figure 23",
		Title:  "compute consumption (GFLOPs, lower is better)",
		Header: []string{"#clusters", "single_sim", "mimic_with_train", "mimic"},
	}
	art, err := r.Artifacts("newreno")
	if err != nil {
		return nil, err
	}
	inferFLOPs := art.Models.Ingress.Model.FLOPsPerStep()
	// Training ~ 3x inference per sample per epoch (forward + backward).
	trainFLOPs := 3 * inferFLOPs * float64(r.Opts.Window) *
		float64(art.IngressSamples+art.EgressSamples) * float64(r.Opts.Epochs)
	for _, n := range sizes {
		full, _, err := r.runFull("newreno", n)
		if err != nil {
			return nil, err
		}
		mimicRes, _, comp, err := r.runMimic("newreno", n)
		if err != nil {
			return nil, err
		}
		fullG := float64(full.Events) * flopsPerEvent / 1e9
		mimicG := (float64(mimicRes.Events)*flopsPerEvent +
			float64(comp.InferenceSteps())*inferFLOPs) / 1e9
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), f3(fullG), f3(mimicG + trainFLOPs/1e9), f3(mimicG),
		})
		r.Opts.logf("Figure 23 n=%d done", n)
	}
	t.Notes = append(t.Notes,
		"paper: MimicNet consumes more compute at small scale (GPU training) but less than full simulation at 128 clusters")
	return t, nil
}
