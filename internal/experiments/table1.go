package experiments

import (
	"fmt"

	"mimicnet/internal/core"
	"mimicnet/internal/sim"
)

// Table1 reproduces Table 1: the basic set of scalable features and their
// one-hot/scalar widths for the configured per-cluster structure, and
// validates that the widths are invariant to the cluster count.
func (r *Runner) Table1() (*Table, error) {
	base, err := r.Opts.BaseConfig("newreno")
	if err != nil {
		return nil, err
	}
	spec := core.NewFeatureSpec(base.Topo)
	spec128 := core.NewFeatureSpec(base.Topo.WithClusters(128))
	t := &Table{
		ID:     "Table 1",
		Title:  "scalable feature set and encoded widths",
		Header: []string{"feature", "count", "encoded_width"},
		Rows: [][]string{
			{"local rack", "# racks per cluster", fmt.Sprint(spec.Racks)},
			{"local server", "# servers per rack", fmt.Sprint(spec.Servers)},
			{"local cluster switch", "# cluster switches per cluster", fmt.Sprint(spec.Aggs)},
			{"core switch traversed", "# core switches", fmt.Sprint(spec.Cores)},
			{"packet size", "single value", "1"},
			{"time since last packet", "single value (discretized)", "1"},
			{"ewma of the above", "single value (discretized)", "1"},
			{"packet type (ack)", "single value", "1"},
			{"ecn capable / marked", "two values", "2"},
			{"priority", "single value", "1"},
			{"congestion state", "4 regimes (one-hot)", fmt.Sprint(core.NumCongestionStates)},
			{"total", "", fmt.Sprint(spec.Width())},
		},
	}
	if spec.Width() != spec128.Width() {
		return nil, fmt.Errorf("experiments: feature width changed with cluster count")
	}
	// Time extraction cost per packet, the paper's argument that features
	// "can quickly be determined using only packets' headers".
	ex := core.NewExtractor(spec, 1e-3, 1e-2)
	info := core.PacketInfo{LocalRack: 1, LocalServer: 2, SizeBytes: 1500}
	const iters = 100000
	t0 := nowNanos()
	for i := 0; i < iters; i++ {
		info.ArrivalTime = sim.Time(i) * sim.Microsecond
		ex.Features(info)
	}
	nsPer := float64(nowNanos()-t0) / iters
	t.Notes = append(t.Notes,
		fmt.Sprintf("feature extraction costs %.0f ns/packet; widths verified identical at 2 and 128 clusters", nsPer))
	return t, nil
}
