package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestStreamDeterminism(t *testing.T) {
	a, b := NewStream(7), NewStream(7)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same-seed streams diverged")
		}
	}
}

func TestDeriveIsStableAndIndependent(t *testing.T) {
	a := NewStream(1).Derive("tcp")
	b := NewStream(1).Derive("tcp")
	c := NewStream(1).Derive("workload")
	av, bv, cv := a.Float64(), b.Float64(), c.Float64()
	if av != bv {
		t.Error("same label derivation differs")
	}
	if av == cv {
		t.Error("different labels produced identical streams")
	}
}

func TestExponentialMean(t *testing.T) {
	d := Exponential{MeanVal: 3.5}
	if d.Mean() != 3.5 {
		t.Errorf("Mean() = %v", d.Mean())
	}
	s := NewStream(1)
	var sum Summary
	for i := 0; i < 20000; i++ {
		v := d.Sample(s)
		if v < 0 {
			t.Fatal("negative exponential sample")
		}
		sum.Add(v)
	}
	if math.Abs(sum.Mean()-3.5) > 0.15 {
		t.Errorf("sample mean = %v, want ~3.5", sum.Mean())
	}
}

func TestLogNormalMeanAndFit(t *testing.T) {
	d := LogNormal{Mu: 1.0, Sigma: 0.5}
	want := math.Exp(1.0 + 0.125)
	if math.Abs(d.Mean()-want) > 1e-12 {
		t.Errorf("Mean() = %v, want %v", d.Mean(), want)
	}
	s := NewStream(2)
	samples := make([]float64, 50000)
	for i := range samples {
		samples[i] = d.Sample(s)
	}
	fit := FitLogNormal(samples, 1)
	if math.Abs(fit.Mu-1.0) > 0.02 || math.Abs(fit.Sigma-0.5) > 0.02 {
		t.Errorf("fit = %+v, want mu=1.0 sigma=0.5", fit)
	}
}

func TestFitLogNormalDegenerate(t *testing.T) {
	fit := FitLogNormal(nil, 2.0)
	if math.Abs(fit.Mean()-2.0) > 1e-6 {
		t.Errorf("degenerate fit mean = %v, want 2.0", fit.Mean())
	}
	fit = FitLogNormal([]float64{-1, 0}, 0) // no usable samples, bad fallback
	if fit.Mean() <= 0 {
		t.Errorf("fallback mean should be positive, got %v", fit.Mean())
	}
}

func TestParetoProperties(t *testing.T) {
	d := Pareto{Xm: 2, Alpha: 3}
	if got, want := d.Mean(), 3.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("Mean() = %v, want %v", got, want)
	}
	if !math.IsInf(Pareto{Xm: 1, Alpha: 1}.Mean(), 1) {
		t.Error("alpha<=1 Pareto mean should be +Inf")
	}
	s := NewStream(3)
	for i := 0; i < 10000; i++ {
		if v := d.Sample(s); v < d.Xm {
			t.Fatalf("Pareto sample %v below xm %v", v, d.Xm)
		}
	}
}

func TestEmpiricalAndConstant(t *testing.T) {
	e := Empirical{Values: []float64{1, 2, 3}}
	if e.Mean() != 2 {
		t.Errorf("Empirical mean = %v", e.Mean())
	}
	s := NewStream(4)
	for i := 0; i < 100; i++ {
		v := e.Sample(s)
		if v != 1 && v != 2 && v != 3 {
			t.Fatalf("Empirical sample %v not in value set", v)
		}
	}
	if (Empirical{}).Sample(s) != 0 || (Empirical{}).Mean() != 0 {
		t.Error("empty Empirical should return 0")
	}
	c := Constant{Value: 9}
	if c.Sample(s) != 9 || c.Mean() != 9 {
		t.Error("Constant wrong")
	}
}

func TestEWMA(t *testing.T) {
	e := NewEWMA(0.5)
	if e.Initialized() {
		t.Error("fresh EWMA should be uninitialized")
	}
	e.Update(10)
	if e.Value() != 10 {
		t.Errorf("first update = %v, want 10", e.Value())
	}
	e.Update(20)
	if e.Value() != 15 {
		t.Errorf("second update = %v, want 15", e.Value())
	}
	e.Reset()
	if e.Initialized() || e.Value() != 0 {
		t.Error("Reset did not clear")
	}
}

func TestSummary(t *testing.T) {
	var s Summary
	for _, v := range []float64{1, 2, 3, 4} {
		s.Add(v)
	}
	if s.Mean() != 2.5 {
		t.Errorf("Mean = %v", s.Mean())
	}
	if s.MinV != 1 || s.MaxV != 4 {
		t.Errorf("Min/Max = %v/%v", s.MinV, s.MaxV)
	}
	if math.Abs(s.Variance()-1.25) > 1e-12 {
		t.Errorf("Variance = %v, want 1.25", s.Variance())
	}
	if math.Abs(s.Stddev()-math.Sqrt(1.25)) > 1e-12 {
		t.Errorf("Stddev = %v", s.Stddev())
	}
	var empty Summary
	if empty.Mean() != 0 || empty.Variance() != 0 {
		t.Error("empty summary should be zero")
	}
}

func TestQuantile(t *testing.T) {
	vals := []float64{4, 1, 3, 2}
	if q := Quantile(vals, 0); q != 1 {
		t.Errorf("q0 = %v", q)
	}
	if q := Quantile(vals, 1); q != 4 {
		t.Errorf("q1 = %v", q)
	}
	if q := Quantile(vals, 0.5); q != 2.5 {
		t.Errorf("median = %v, want 2.5", q)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("empty quantile should be NaN")
	}
	// Quantile must not mutate its input.
	if vals[0] != 4 {
		t.Error("Quantile mutated input")
	}
}

func TestMeanHelper(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if Mean([]float64{2, 4}) != 3 {
		t.Error("Mean([2 4]) != 3")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	h.Add(-5) // clamps low
	h.Add(50) // clamps high
	if h.Total() != 12 {
		t.Errorf("Total = %d", h.Total())
	}
	if h.Counts[0] != 2 || h.Counts[9] != 2 {
		t.Errorf("boundary bins = %d, %d; want 2, 2", h.Counts[0], h.Counts[9])
	}
	if f := h.Fraction(0); math.Abs(f-2.0/12) > 1e-12 {
		t.Errorf("Fraction(0) = %v", f)
	}
}

func TestHistogramInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for invalid histogram")
		}
	}()
	NewHistogram(1, 1, 10)
}

// Property: quantile is monotone in q and bounded by min/max.
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, q1, q2 float64) bool {
		vals := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			return true
		}
		q1 = math.Abs(math.Mod(q1, 1))
		q2 = math.Abs(math.Mod(q2, 1))
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		a, b := Quantile(vals, q1), Quantile(vals, q2)
		lo, hi := Quantile(vals, 0), Quantile(vals, 1)
		return a <= b && a >= lo && b <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: EWMA output always lies between min and max of inputs seen.
func TestEWMABoundedProperty(t *testing.T) {
	f := func(vals []float64, alphaRaw uint8) bool {
		alpha := (float64(alphaRaw%100) + 1) / 101
		e := NewEWMA(alpha)
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
			got := e.Update(v)
			if got < lo-1e-9 || got > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// The counting-source wrapper must not perturb the value sequence: a
// stream must draw exactly what rand.New(rand.NewSource(seed)) draws.
func TestStreamMatchesStdlibSequence(t *testing.T) {
	s := NewStream(42)
	ref := rand.New(rand.NewSource(42))
	for i := 0; i < 1000; i++ {
		switch i % 5 {
		case 0:
			if got, want := s.Float64(), ref.Float64(); got != want {
				t.Fatalf("draw %d: Float64 %v != %v", i, got, want)
			}
		case 1:
			if got, want := s.Intn(97), ref.Intn(97); got != want {
				t.Fatalf("draw %d: Intn %v != %v", i, got, want)
			}
		case 2:
			if got, want := s.NormFloat64(), ref.NormFloat64(); got != want {
				t.Fatalf("draw %d: NormFloat64 %v != %v", i, got, want)
			}
		case 3:
			if got, want := s.ExpFloat64(), ref.ExpFloat64(); got != want {
				t.Fatalf("draw %d: ExpFloat64 %v != %v", i, got, want)
			}
		case 4:
			if got, want := s.Int63(), ref.Int63(); got != want {
				t.Fatalf("draw %d: Int63 %v != %v", i, got, want)
			}
		}
	}
}

// State/RestoreStream must continue the original sequence exactly, at
// any interruption point and across every draw kind (each consumes a
// whole number of source values, so source-level fast-forward is exact).
func TestStreamStateRestoreContinuesSequence(t *testing.T) {
	for _, cut := range []int{0, 1, 7, 100, 333} {
		orig := NewStream(7)
		for i := 0; i < cut; i++ {
			switch i % 4 {
			case 0:
				orig.Float64()
			case 1:
				orig.NormFloat64()
			case 2:
				orig.Intn(13)
			case 3:
				orig.Shuffle(9, func(i, j int) {})
			}
		}
		restored := RestoreStream(orig.State())
		if restored.State() != orig.State() {
			t.Fatalf("cut %d: restored state %+v != %+v", cut, restored.State(), orig.State())
		}
		for i := 0; i < 200; i++ {
			if got, want := restored.NormFloat64(), orig.NormFloat64(); got != want {
				t.Fatalf("cut %d, draw %d: %v != %v", cut, i, got, want)
			}
		}
	}
}

// A shuffle replayed from a restored stream must produce the identical
// permutation — the property minibatch training resume depends on.
func TestStreamStateShuffleReplay(t *testing.T) {
	s := NewStream(3)
	s.Shuffle(100, func(i, j int) {}) // advance past one epoch's shuffle
	st := s.State()

	perm1 := make([]int, 50)
	for i := range perm1 {
		perm1[i] = i
	}
	perm2 := append([]int(nil), perm1...)
	s.Shuffle(len(perm1), func(i, j int) { perm1[i], perm1[j] = perm1[j], perm1[i] })
	r := RestoreStream(st)
	r.Shuffle(len(perm2), func(i, j int) { perm2[i], perm2[j] = perm2[j], perm2[i] })
	for i := range perm1 {
		if perm1[i] != perm2[i] {
			t.Fatalf("permutations diverge at %d: %d != %d", i, perm1[i], perm2[i])
		}
	}
}
