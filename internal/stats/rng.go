// Package stats provides seeded random streams, the probability
// distributions used by the workload and feeder models, and small online
// statistics (EWMA, histograms, quantiles) shared across the simulator.
//
// Everything is deterministic under a fixed seed: MimicNet keeps seeds
// consistent between variants and changes them across training, testing,
// and cross-validation (paper §8), and this package is where all of the
// framework's randomness originates.
package stats

import (
	"math"
	"math/rand"
)

// Stream is a seeded source of randomness. Distinct simulation components
// take distinct streams (derived via Derive) so that adding randomness to
// one component does not perturb another.
//
// A Stream's position is checkpointable: every draw, whatever its
// distribution, consumes exactly one value from the underlying source, so
// (seed, draws) pins the stream's state exactly. State and RestoreStream
// are what make killed-and-resumed training runs bitwise identical to
// uninterrupted ones.
type Stream struct {
	rng  *rand.Rand
	src  *countingSource
	seed int64
}

// countingSource wraps the stdlib source, counting source-level draws.
// It forwards Uint64 so rand.Rand takes the exact same code paths (and
// therefore produces the exact same value sequence) as an unwrapped
// rand.NewSource.
type countingSource struct {
	src rand.Source64
	n   uint64
}

func (c *countingSource) Int63() int64 { c.n++; return c.src.Int63() }

func (c *countingSource) Uint64() uint64 { c.n++; return c.src.Uint64() }

func (c *countingSource) Seed(seed int64) { c.src.Seed(seed); c.n = 0 }

// NewStream returns a stream seeded with the given seed.
func NewStream(seed int64) *Stream {
	src := &countingSource{src: rand.NewSource(seed).(rand.Source64)}
	return &Stream{rng: rand.New(src), src: src, seed: seed}
}

// StreamState is a Stream's serializable position: the seed plus the
// number of source-level values consumed so far. RestoreStream rebuilds a
// stream at exactly this position.
type StreamState struct {
	Seed  int64  `json:"seed"`
	Draws uint64 `json:"draws"`
}

// State snapshots the stream's position.
func (s *Stream) State() StreamState {
	return StreamState{Seed: s.seed, Draws: s.src.n}
}

// RestoreStream rebuilds a stream at the given position by fast-forward:
// a fresh source is advanced st.Draws steps. All rand.Rand draw kinds
// (Float64, Intn, NormFloat64, shuffles, ...) consume whole source values,
// so the restored stream continues the original's sequence exactly.
func RestoreStream(st StreamState) *Stream {
	s := NewStream(st.Seed)
	for i := uint64(0); i < st.Draws; i++ {
		s.src.src.Uint64()
	}
	s.src.n = st.Draws
	return s
}

// Derive returns a child stream whose seed combines the parent seed space
// with the given label, so component streams are stable as code evolves.
func (s *Stream) Derive(label string) *Stream {
	h := int64(1469598103934665603) // FNV-1a offset basis
	for i := 0; i < len(label); i++ {
		h ^= int64(label[i])
		h *= 1099511628211
	}
	return NewStream(h ^ s.rng.Int63())
}

// Float64 returns a uniform value in [0, 1).
func (s *Stream) Float64() float64 { return s.rng.Float64() }

// Intn returns a uniform int in [0, n).
func (s *Stream) Intn(n int) int { return s.rng.Intn(n) }

// Int63 returns a non-negative uniform int64.
func (s *Stream) Int63() int64 { return s.rng.Int63() }

// NormFloat64 returns a standard normal variate.
func (s *Stream) NormFloat64() float64 { return s.rng.NormFloat64() }

// ExpFloat64 returns an exponential variate with mean 1.
func (s *Stream) ExpFloat64() float64 { return s.rng.ExpFloat64() }

// Perm returns a random permutation of [0, n).
func (s *Stream) Perm(n int) []int { return s.rng.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements using swap.
func (s *Stream) Shuffle(n int, swap func(i, j int)) { s.rng.Shuffle(n, swap) }

// Distribution is a samplable one-dimensional distribution.
type Distribution interface {
	// Sample draws one value using the supplied stream.
	Sample(s *Stream) float64
	// Mean returns the distribution's analytic (or empirical) mean.
	Mean() float64
}

// Exponential is an exponential distribution with the given mean.
type Exponential struct{ MeanVal float64 }

// Sample draws an exponential variate.
func (d Exponential) Sample(s *Stream) float64 { return s.ExpFloat64() * d.MeanVal }

// Mean returns the configured mean.
func (d Exponential) Mean() float64 { return d.MeanVal }

// LogNormal is a log-normal distribution parameterized by the mu/sigma of
// the underlying normal. The paper observed that simple log-normal
// distributions produced reasonable approximations of packet interarrival
// times (§6).
type LogNormal struct{ Mu, Sigma float64 }

// Sample draws a log-normal variate.
func (d LogNormal) Sample(s *Stream) float64 {
	return math.Exp(d.Mu + d.Sigma*s.NormFloat64())
}

// Mean returns exp(mu + sigma^2/2).
func (d LogNormal) Mean() float64 { return math.Exp(d.Mu + d.Sigma*d.Sigma/2) }

// FitLogNormal estimates a LogNormal from positive samples via the method
// of moments on log-values. Non-positive samples are ignored; if fewer
// than two usable samples exist, a degenerate near-constant distribution
// around the sample mean (or fallback) is returned.
func FitLogNormal(samples []float64, fallbackMean float64) LogNormal {
	var n int
	var sum, sumsq float64
	for _, v := range samples {
		if v <= 0 {
			continue
		}
		lv := math.Log(v)
		sum += lv
		sumsq += lv * lv
		n++
	}
	if n < 2 {
		m := fallbackMean
		if m <= 0 {
			m = 1
		}
		return LogNormal{Mu: math.Log(m), Sigma: 1e-9}
	}
	mu := sum / float64(n)
	variance := sumsq/float64(n) - mu*mu
	if variance < 0 {
		variance = 0
	}
	return LogNormal{Mu: mu, Sigma: math.Sqrt(variance)}
}

// Pareto is a bounded-at-minimum Pareto distribution: the classic
// heavy-tailed model for flow sizes and self-similar traffic.
type Pareto struct {
	Xm    float64 // scale (minimum value), > 0
	Alpha float64 // shape, > 0
}

// Sample draws a Pareto variate via inverse transform.
func (d Pareto) Sample(s *Stream) float64 {
	u := s.Float64()
	for u == 0 {
		u = s.Float64()
	}
	return d.Xm / math.Pow(u, 1/d.Alpha)
}

// Mean returns alpha*xm/(alpha-1) for alpha > 1, +Inf otherwise.
func (d Pareto) Mean() float64 {
	if d.Alpha <= 1 {
		return math.Inf(1)
	}
	return d.Alpha * d.Xm / (d.Alpha - 1)
}

// Empirical samples uniformly from observed values; used to replay fitted
// characteristic distributions when a parametric fit is not wanted.
type Empirical struct{ Values []float64 }

// Sample draws one of the stored values uniformly at random.
func (d Empirical) Sample(s *Stream) float64 {
	if len(d.Values) == 0 {
		return 0
	}
	return d.Values[s.Intn(len(d.Values))]
}

// Mean returns the average of the stored values.
func (d Empirical) Mean() float64 {
	if len(d.Values) == 0 {
		return 0
	}
	var sum float64
	for _, v := range d.Values {
		sum += v
	}
	return sum / float64(len(d.Values))
}

// Constant always returns the same value (useful for tests and for
// degenerate feeder configurations).
type Constant struct{ Value float64 }

// Sample returns the constant.
func (d Constant) Sample(*Stream) float64 { return d.Value }

// Mean returns the constant.
func (d Constant) Mean() float64 { return d.Value }
