package stats

import (
	"math"
	"sort"
)

// EWMA is an exponentially weighted moving average, the smoothing primitive
// behind the "EWMA of time since last packet" feature (paper Table 1) and
// the congestion-state estimator.
type EWMA struct {
	Alpha float64 // weight of the new sample, in (0, 1]
	value float64
	init  bool
}

// NewEWMA returns an EWMA with the given new-sample weight.
func NewEWMA(alpha float64) *EWMA { return &EWMA{Alpha: alpha} }

// Update folds a sample into the average and returns the new value.
func (e *EWMA) Update(v float64) float64 {
	if !e.init {
		e.value = v
		e.init = true
		return v
	}
	e.value = e.Alpha*v + (1-e.Alpha)*e.value
	return e.value
}

// Value returns the current average (zero before any update).
func (e *EWMA) Value() float64 { return e.value }

// Initialized reports whether at least one sample was folded in.
func (e *EWMA) Initialized() bool { return e.init }

// Reset clears the average.
func (e *EWMA) Reset() { e.value, e.init = 0, false }

// Summary accumulates simple moments plus min/max for a series.
type Summary struct {
	N          int
	Sum, SumSq float64
	MinV, MaxV float64
}

// Add folds in a sample.
func (s *Summary) Add(v float64) {
	if s.N == 0 || v < s.MinV {
		s.MinV = v
	}
	if s.N == 0 || v > s.MaxV {
		s.MaxV = v
	}
	s.N++
	s.Sum += v
	s.SumSq += v * v
}

// Mean returns the sample mean (zero if empty).
func (s *Summary) Mean() float64 {
	if s.N == 0 {
		return 0
	}
	return s.Sum / float64(s.N)
}

// Variance returns the population variance (zero if empty).
func (s *Summary) Variance() float64 {
	if s.N == 0 {
		return 0
	}
	m := s.Mean()
	v := s.SumSq/float64(s.N) - m*m
	if v < 0 {
		v = 0
	}
	return v
}

// Stddev returns the population standard deviation.
func (s *Summary) Stddev() float64 { return math.Sqrt(s.Variance()) }

// Quantile returns the q-quantile (0 <= q <= 1) of values using linear
// interpolation between order statistics. It sorts a copy; callers on hot
// paths should sort once and use QuantileSorted.
func Quantile(values []float64, q float64) float64 {
	if len(values) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	return QuantileSorted(sorted, q)
}

// QuantileSorted is Quantile for an already ascending-sorted slice.
func QuantileSorted(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean of values (zero if empty).
func Mean(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	var sum float64
	for _, v := range values {
		sum += v
	}
	return sum / float64(len(values))
}

// Histogram counts values into fixed-width bins over [Lo, Hi); values
// outside the range are clamped into the boundary bins.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	total  int
}

// NewHistogram creates a histogram with the given bounds and bin count.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 || hi <= lo {
		panic("stats: invalid histogram parameters")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add counts one sample.
func (h *Histogram) Add(v float64) {
	idx := int((v - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.Counts) {
		idx = len(h.Counts) - 1
	}
	h.Counts[idx]++
	h.total++
}

// Total returns the number of samples added.
func (h *Histogram) Total() int { return h.total }

// Fraction returns the share of samples in bin i.
func (h *Histogram) Fraction(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.total)
}
