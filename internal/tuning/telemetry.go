package tuning

import "mimicnet/internal/obs"

// obsPhaseValidate shares the mimicnet_core_phase_seconds family with
// the core package's datagen/train/compose spans: the default registry
// merges series by name, so /metrics shows one histogram family with a
// phase label covering the whole pipeline.
var obsPhaseValidate = obs.Default().Histogram(
	`mimicnet_core_phase_seconds{phase="validate"}`,
	"Wall time of pipeline phases.", obs.TimeBuckets())
