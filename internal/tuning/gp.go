// Package tuning implements MimicNet's hyper-parameter tuning phase
// (paper §7.2): a search space over model hyper-parameters, random search
// as a baseline, and Bayesian optimization with a Gaussian-process
// surrogate and expected-improvement acquisition ("BO quickly converges
// on the optimal configuration"). Objectives are user-defined end-to-end
// metrics such as the Wasserstein distance of FCT distributions evaluated
// at multiple composition sizes.
package tuning

import (
	"fmt"
	"math"
)

// gp is a Gaussian process regressor with an RBF kernel over the unit
// hypercube, used as the surrogate model for Bayesian optimization.
type gp struct {
	x     [][]float64
	y     []float64
	ls    float64 // kernel length scale
	noise float64
	l     [][]float64 // Cholesky factor of K + noise*I
	alpha []float64   // K^-1 y
	meanY float64
}

func rbf(a, b []float64, ls float64) float64 {
	var d2 float64
	for i := range a {
		d := a[i] - b[i]
		d2 += d * d
	}
	return math.Exp(-d2 / (2 * ls * ls))
}

// newGP fits the surrogate to observations (inputs scaled to [0,1]^d).
func newGP(x [][]float64, y []float64, ls, noise float64) (*gp, error) {
	n := len(x)
	if n == 0 || len(y) != n {
		return nil, fmt.Errorf("tuning: bad GP data: %d x, %d y", len(x), len(y))
	}
	g := &gp{x: x, ls: ls, noise: noise}
	// Center y for numerical sanity.
	for _, v := range y {
		g.meanY += v
	}
	g.meanY /= float64(n)
	g.y = make([]float64, n)
	for i, v := range y {
		g.y[i] = v - g.meanY
	}
	k := make([][]float64, n)
	for i := range k {
		k[i] = make([]float64, n)
		for j := range k[i] {
			k[i][j] = rbf(x[i], x[j], ls)
		}
		k[i][i] += noise
	}
	l, err := cholesky(k)
	if err != nil {
		return nil, err
	}
	g.l = l
	g.alpha = choleskySolve(l, g.y)
	return g, nil
}

// predict returns the posterior mean and variance at point p.
func (g *gp) predict(p []float64) (mean, variance float64) {
	n := len(g.x)
	kstar := make([]float64, n)
	for i := range g.x {
		kstar[i] = rbf(p, g.x[i], g.ls)
	}
	for i := range kstar {
		mean += kstar[i] * g.alpha[i]
	}
	mean += g.meanY
	// v = L^-1 k*; var = k(p,p) - v'v
	v := forwardSolve(g.l, kstar)
	var vv float64
	for _, x := range v {
		vv += x * x
	}
	variance = 1 + g.noise - vv
	if variance < 1e-12 {
		variance = 1e-12
	}
	return mean, variance
}

// expectedImprovement computes EI for minimization given the best
// observed value.
func (g *gp) expectedImprovement(p []float64, best float64) float64 {
	mean, variance := g.predict(p)
	sd := math.Sqrt(variance)
	if sd < 1e-12 {
		return 0
	}
	z := (best - mean) / sd
	return (best-mean)*normCDF(z) + sd*normPDF(z)
}

func normPDF(z float64) float64 { return math.Exp(-z*z/2) / math.Sqrt(2*math.Pi) }
func normCDF(z float64) float64 { return 0.5 * math.Erfc(-z/math.Sqrt2) }

// cholesky returns the lower-triangular factor of a symmetric
// positive-definite matrix.
func cholesky(a [][]float64) ([][]float64, error) {
	n := len(a)
	l := make([][]float64, n)
	for i := range l {
		l[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a[i][j]
			for k := 0; k < j; k++ {
				sum -= l[i][k] * l[j][k]
			}
			if i == j {
				if sum <= 0 {
					return nil, fmt.Errorf("tuning: matrix not positive definite at %d (%v)", i, sum)
				}
				l[i][i] = math.Sqrt(sum)
			} else {
				l[i][j] = sum / l[j][j]
			}
		}
	}
	return l, nil
}

// forwardSolve solves L v = b for lower-triangular L.
func forwardSolve(l [][]float64, b []float64) []float64 {
	n := len(b)
	v := make([]float64, n)
	for i := 0; i < n; i++ {
		sum := b[i]
		for k := 0; k < i; k++ {
			sum -= l[i][k] * v[k]
		}
		v[i] = sum / l[i][i]
	}
	return v
}

// backSolve solves L' x = v for lower-triangular L.
func backSolve(l [][]float64, v []float64) []float64 {
	n := len(v)
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := v[i]
		for k := i + 1; k < n; k++ {
			sum -= l[k][i] * x[k]
		}
		x[i] = sum / l[i][i]
	}
	return x
}

// choleskySolve solves (L L') x = b.
func choleskySolve(l [][]float64, b []float64) []float64 {
	return backSolve(l, forwardSolve(l, b))
}
