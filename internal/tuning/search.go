package tuning

import (
	"fmt"
	"math"
	"sync"

	"mimicnet/internal/stats"
)

// Param is one tunable dimension.
type Param struct {
	Name    string
	Lo, Hi  float64
	Integer bool // round to integers
	Log     bool // sample on a log scale
}

// Space is the search space.
type Space []Param

// Validate reports structural errors.
func (s Space) Validate() error {
	if len(s) == 0 {
		return fmt.Errorf("tuning: empty search space")
	}
	for _, p := range s {
		if p.Hi <= p.Lo {
			return fmt.Errorf("tuning: param %q has empty range", p.Name)
		}
		if p.Log && p.Lo <= 0 {
			return fmt.Errorf("tuning: log param %q needs positive bounds", p.Name)
		}
	}
	return nil
}

// toUnit maps a concrete value into [0,1] (GP coordinates).
func (p Param) toUnit(v float64) float64 {
	if p.Log {
		return (math.Log(v) - math.Log(p.Lo)) / (math.Log(p.Hi) - math.Log(p.Lo))
	}
	return (v - p.Lo) / (p.Hi - p.Lo)
}

// fromUnit maps a [0,1] coordinate back to a concrete value.
func (p Param) fromUnit(u float64) float64 {
	if u < 0 {
		u = 0
	}
	if u > 1 {
		u = 1
	}
	var v float64
	if p.Log {
		v = math.Exp(math.Log(p.Lo) + u*(math.Log(p.Hi)-math.Log(p.Lo)))
	} else {
		v = p.Lo + u*(p.Hi-p.Lo)
	}
	if p.Integer {
		v = math.Round(v)
	}
	return v
}

// Point is one evaluated configuration.
type Point struct {
	Params map[string]float64
	Score  float64 // lower is better
	Err    error
}

// Objective evaluates a configuration and returns its score (lower is
// better) — e.g. the mean W1(FCT) across validation sizes.
type Objective func(params map[string]float64) (float64, error)

func (s Space) concretize(unit []float64) map[string]float64 {
	out := make(map[string]float64, len(s))
	for i, p := range s {
		out[p.Name] = p.fromUnit(unit[i])
	}
	return out
}

func (s Space) sampleUnit(rng *stats.Stream) []float64 {
	u := make([]float64, len(s))
	for i := range u {
		u[i] = rng.Float64()
	}
	return u
}

// Result is a completed search.
type Result struct {
	Best    Point
	History []Point
}

// RandomSearch evaluates n uniform samples serially.
func RandomSearch(space Space, obj Objective, n int, seed int64) (Result, error) {
	return RandomSearchParallel(space, obj, n, seed, 1)
}

// RandomSearchParallel evaluates the same n candidates as RandomSearch on
// up to workers concurrent goroutines. Random-search trials are
// independent, so all candidate parameters are drawn from the seeded
// stream up front (the draws never depend on scores) and evaluated in
// parallel; History keeps draw order and Best is chosen by a strict-<
// scan over that order. For a deterministic objective the Result is
// therefore identical to the serial search, only faster.
func RandomSearchParallel(space Space, obj Objective, n int, seed int64, workers int) (Result, error) {
	if err := space.Validate(); err != nil {
		return Result{}, err
	}
	rng := stats.NewStream(seed)
	candidates := make([]map[string]float64, n)
	for i := range candidates {
		candidates[i] = space.concretize(space.sampleUnit(rng))
	}
	history := evalParallel(candidates, obj, workers)
	res := Result{Best: Point{Score: math.Inf(1)}, History: history}
	for _, pt := range history {
		if pt.Err == nil && pt.Score < res.Best.Score {
			res.Best = pt
		}
	}
	if math.IsInf(res.Best.Score, 1) {
		return res, fmt.Errorf("tuning: every evaluation failed")
	}
	return res, nil
}

// evalParallel scores every candidate on a bounded worker pool and
// returns the points in candidate order. workers < 2 runs inline.
func evalParallel(candidates []map[string]float64, obj Objective, workers int) []Point {
	out := make([]Point, len(candidates))
	if workers > len(candidates) {
		workers = len(candidates)
	}
	if workers < 2 {
		for i, params := range candidates {
			score, err := obj(params)
			out[i] = Point{Params: params, Score: score, Err: err}
		}
		return out
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				score, err := obj(candidates[i])
				out[i] = Point{Params: candidates[i], Score: score, Err: err}
			}
		}()
	}
	for i := range candidates {
		next <- i
	}
	close(next)
	wg.Wait()
	return out
}

// BayesOptConfig controls the GP-EI loop.
type BayesOptConfig struct {
	InitPoints  int     // random warm-up evaluations
	Iterations  int     // BO evaluations after warm-up
	Candidates  int     // EI candidates sampled per iteration
	LengthScale float64 // RBF length scale in unit space
	Noise       float64 // observation noise
	Seed        int64
	// Workers bounds concurrent objective evaluations during the random
	// warm-up (the iterations themselves are inherently sequential: each
	// acquisition conditions on every earlier score). <=1 runs serially;
	// results are identical either way for a deterministic objective
	// because warm-up candidates are drawn before any evaluation and
	// recorded in draw order.
	Workers int
}

// DefaultBayesOptConfig returns sensible defaults for small budgets.
func DefaultBayesOptConfig() BayesOptConfig {
	return BayesOptConfig{
		InitPoints: 4, Iterations: 12, Candidates: 256,
		LengthScale: 0.3, Noise: 1e-4, Seed: 1,
	}
}

// BayesOpt minimizes the objective with a GP surrogate and EI
// acquisition, picking at each step the candidate with the highest
// expected improvement (paper §7.2).
func BayesOpt(space Space, obj Objective, cfg BayesOptConfig) (Result, error) {
	if err := space.Validate(); err != nil {
		return Result{}, err
	}
	if cfg.InitPoints < 2 {
		cfg.InitPoints = 2
	}
	if cfg.Candidates < 8 {
		cfg.Candidates = 8
	}
	if cfg.LengthScale <= 0 {
		cfg.LengthScale = 0.3
	}
	if cfg.Noise <= 0 {
		cfg.Noise = 1e-4
	}
	rng := stats.NewStream(cfg.Seed)
	res := Result{Best: Point{Score: math.Inf(1)}}
	var xs [][]float64
	var ys []float64

	record := func(unit []float64, pt Point) {
		res.History = append(res.History, pt)
		if pt.Err != nil {
			return
		}
		xs = append(xs, unit)
		ys = append(ys, pt.Score)
		if pt.Score < res.Best.Score {
			res.Best = pt
		}
	}
	eval := func(unit []float64) {
		params := space.concretize(unit)
		score, err := obj(params)
		record(unit, Point{Params: params, Score: score, Err: err})
	}

	// Warm-up: the candidates are independent, so draw them all first and
	// score on the bounded pool; record() keeps draw order so the GP sees
	// the exact same history a serial warm-up would produce.
	warm := make([]map[string]float64, cfg.InitPoints)
	units := make([][]float64, cfg.InitPoints)
	for i := range warm {
		units[i] = space.sampleUnit(rng)
		warm[i] = space.concretize(units[i])
	}
	for i, pt := range evalParallel(warm, obj, cfg.Workers) {
		record(units[i], pt)
	}
	for i := 0; i < cfg.Iterations; i++ {
		if len(xs) < 2 {
			eval(space.sampleUnit(rng))
			continue
		}
		g, err := newGP(xs, ys, cfg.LengthScale, cfg.Noise)
		if err != nil {
			// Degenerate surrogate (duplicate points): fall back to random.
			eval(space.sampleUnit(rng))
			continue
		}
		bestEI := math.Inf(-1)
		var bestCand []float64
		for c := 0; c < cfg.Candidates; c++ {
			cand := space.sampleUnit(rng)
			if ei := g.expectedImprovement(cand, res.Best.Score); ei > bestEI {
				bestEI = ei
				bestCand = cand
			}
		}
		eval(bestCand)
	}
	if math.IsInf(res.Best.Score, 1) {
		return res, fmt.Errorf("tuning: every evaluation failed")
	}
	return res, nil
}
