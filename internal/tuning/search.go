package tuning

import (
	"fmt"
	"math"

	"mimicnet/internal/stats"
)

// Param is one tunable dimension.
type Param struct {
	Name    string
	Lo, Hi  float64
	Integer bool // round to integers
	Log     bool // sample on a log scale
}

// Space is the search space.
type Space []Param

// Validate reports structural errors.
func (s Space) Validate() error {
	if len(s) == 0 {
		return fmt.Errorf("tuning: empty search space")
	}
	for _, p := range s {
		if p.Hi <= p.Lo {
			return fmt.Errorf("tuning: param %q has empty range", p.Name)
		}
		if p.Log && p.Lo <= 0 {
			return fmt.Errorf("tuning: log param %q needs positive bounds", p.Name)
		}
	}
	return nil
}

// toUnit maps a concrete value into [0,1] (GP coordinates).
func (p Param) toUnit(v float64) float64 {
	if p.Log {
		return (math.Log(v) - math.Log(p.Lo)) / (math.Log(p.Hi) - math.Log(p.Lo))
	}
	return (v - p.Lo) / (p.Hi - p.Lo)
}

// fromUnit maps a [0,1] coordinate back to a concrete value.
func (p Param) fromUnit(u float64) float64 {
	if u < 0 {
		u = 0
	}
	if u > 1 {
		u = 1
	}
	var v float64
	if p.Log {
		v = math.Exp(math.Log(p.Lo) + u*(math.Log(p.Hi)-math.Log(p.Lo)))
	} else {
		v = p.Lo + u*(p.Hi-p.Lo)
	}
	if p.Integer {
		v = math.Round(v)
	}
	return v
}

// Point is one evaluated configuration.
type Point struct {
	Params map[string]float64
	Score  float64 // lower is better
	Err    error
}

// Objective evaluates a configuration and returns its score (lower is
// better) — e.g. the mean W1(FCT) across validation sizes.
type Objective func(params map[string]float64) (float64, error)

func (s Space) concretize(unit []float64) map[string]float64 {
	out := make(map[string]float64, len(s))
	for i, p := range s {
		out[p.Name] = p.fromUnit(unit[i])
	}
	return out
}

func (s Space) sampleUnit(rng *stats.Stream) []float64 {
	u := make([]float64, len(s))
	for i := range u {
		u[i] = rng.Float64()
	}
	return u
}

// Result is a completed search.
type Result struct {
	Best    Point
	History []Point
}

// RandomSearch evaluates n uniform samples.
func RandomSearch(space Space, obj Objective, n int, seed int64) (Result, error) {
	if err := space.Validate(); err != nil {
		return Result{}, err
	}
	rng := stats.NewStream(seed)
	res := Result{Best: Point{Score: math.Inf(1)}}
	for i := 0; i < n; i++ {
		params := space.concretize(space.sampleUnit(rng))
		score, err := obj(params)
		pt := Point{Params: params, Score: score, Err: err}
		res.History = append(res.History, pt)
		if err == nil && score < res.Best.Score {
			res.Best = pt
		}
	}
	if math.IsInf(res.Best.Score, 1) {
		return res, fmt.Errorf("tuning: every evaluation failed")
	}
	return res, nil
}

// BayesOptConfig controls the GP-EI loop.
type BayesOptConfig struct {
	InitPoints  int     // random warm-up evaluations
	Iterations  int     // BO evaluations after warm-up
	Candidates  int     // EI candidates sampled per iteration
	LengthScale float64 // RBF length scale in unit space
	Noise       float64 // observation noise
	Seed        int64
}

// DefaultBayesOptConfig returns sensible defaults for small budgets.
func DefaultBayesOptConfig() BayesOptConfig {
	return BayesOptConfig{
		InitPoints: 4, Iterations: 12, Candidates: 256,
		LengthScale: 0.3, Noise: 1e-4, Seed: 1,
	}
}

// BayesOpt minimizes the objective with a GP surrogate and EI
// acquisition, picking at each step the candidate with the highest
// expected improvement (paper §7.2).
func BayesOpt(space Space, obj Objective, cfg BayesOptConfig) (Result, error) {
	if err := space.Validate(); err != nil {
		return Result{}, err
	}
	if cfg.InitPoints < 2 {
		cfg.InitPoints = 2
	}
	if cfg.Candidates < 8 {
		cfg.Candidates = 8
	}
	if cfg.LengthScale <= 0 {
		cfg.LengthScale = 0.3
	}
	if cfg.Noise <= 0 {
		cfg.Noise = 1e-4
	}
	rng := stats.NewStream(cfg.Seed)
	res := Result{Best: Point{Score: math.Inf(1)}}
	var xs [][]float64
	var ys []float64

	eval := func(unit []float64) {
		params := space.concretize(unit)
		score, err := obj(params)
		pt := Point{Params: params, Score: score, Err: err}
		res.History = append(res.History, pt)
		if err != nil {
			return
		}
		xs = append(xs, unit)
		ys = append(ys, score)
		if score < res.Best.Score {
			res.Best = pt
		}
	}

	for i := 0; i < cfg.InitPoints; i++ {
		eval(space.sampleUnit(rng))
	}
	for i := 0; i < cfg.Iterations; i++ {
		if len(xs) < 2 {
			eval(space.sampleUnit(rng))
			continue
		}
		g, err := newGP(xs, ys, cfg.LengthScale, cfg.Noise)
		if err != nil {
			// Degenerate surrogate (duplicate points): fall back to random.
			eval(space.sampleUnit(rng))
			continue
		}
		bestEI := math.Inf(-1)
		var bestCand []float64
		for c := 0; c < cfg.Candidates; c++ {
			cand := space.sampleUnit(rng)
			if ei := g.expectedImprovement(cand, res.Best.Score); ei > bestEI {
				bestEI = ei
				bestCand = cand
			}
		}
		eval(bestCand)
	}
	if math.IsInf(res.Best.Score, 1) {
		return res, fmt.Errorf("tuning: every evaluation failed")
	}
	return res, nil
}
