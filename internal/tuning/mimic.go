package tuning

import (
	"fmt"
	"math"
	"strings"

	"mimicnet/internal/cluster"
	"mimicnet/internal/core"
	"mimicnet/internal/metrics"
	"mimicnet/internal/obs"
	"mimicnet/internal/sim"
)

// Validator implements the paper's validation protocol: run full-fidelity
// and approximated simulations on a held-out workload at 2, 4, and 8
// clusters and compare the user's target metric. The full-fidelity
// results are gathered once; each candidate model is then scored against
// them cheaply (paper §7.2).
type Validator struct {
	Base     cluster.Config
	Sizes    []int
	Duration sim.Time

	// Metric selects the comparison: "fct", "throughput", or "rtt"
	// compare distributions with W1; a "-ks" suffix (e.g. "fct-ks")
	// switches to the Kolmogorov–Smirnov statistic; "fct-mse" uses the
	// paper's MSE-over-intersection 1-to-1 flow metric (with the 80%
	// overlap requirement, §7.2). Users can define their own metrics by
	// wrapping Score.
	Metric string

	truth map[int]cluster.Results
}

// NewValidator runs the one-time full-fidelity reference simulations on
// a held-out workload seed.
func NewValidator(base cluster.Config, sizes []int, duration sim.Time, metric string) (*Validator, error) {
	if len(sizes) == 0 {
		sizes = []int{2, 4, 8}
	}
	if metric == "" {
		metric = "fct"
	}
	v := &Validator{Base: base, Sizes: sizes, Duration: duration, Metric: metric,
		truth: make(map[int]cluster.Results)}
	for _, n := range sizes {
		cfg := base
		cfg.Topo = base.Topo.WithClusters(n)
		inst, err := cluster.New(cfg)
		if err != nil {
			return nil, err
		}
		inst.Run(duration)
		res := inst.Results()
		if v.Metric != "fct-mse" {
			dist, err := v.pick(res)
			if err != nil {
				return nil, err
			}
			if len(dist) == 0 {
				return nil, fmt.Errorf("tuning: no %s samples in %d-cluster reference", metric, n)
			}
		} else if len(res.FCTByID) == 0 {
			return nil, fmt.Errorf("tuning: no completed flows in %d-cluster reference", n)
		}
		v.truth[n] = res
	}
	return v, nil
}

func (v *Validator) pick(r cluster.Results) ([]float64, error) {
	switch strings.TrimSuffix(v.Metric, "-ks") {
	case "fct":
		return r.FCTs, nil
	case "throughput":
		return r.Throughputs, nil
	case "rtt":
		return r.RTTs, nil
	}
	return nil, fmt.Errorf("tuning: unknown metric %q", v.Metric)
}

// statistic returns the distribution-distance function the metric names.
func (v *Validator) statistic() func(a, b []float64) float64 {
	if strings.HasSuffix(v.Metric, "-ks") {
		return metrics.KS
	}
	return metrics.W1
}

// scoreOne compares one composition's results against the reference.
func (v *Validator) scoreOne(mimic, truth cluster.Results) (float64, error) {
	if v.Metric == "fct-mse" {
		mse, overlap := metrics.FlowMSE(truth.FCTByID, mimic.FCTByID)
		if overlap < metrics.MinOverlap {
			// The paper ignores models whose flow sets diverge too far —
			// treat as a (finite but) terrible score so BO steers away.
			return math.Inf(1), nil
		}
		return mse, nil
	}
	md, err := v.pick(mimic)
	if err != nil {
		return math.Inf(1), err
	}
	td, _ := v.pick(truth)
	w := v.statistic()(md, td)
	if math.IsNaN(w) {
		return math.Inf(1), nil
	}
	return w, nil
}

// Score composes the candidate models at every validation size and
// returns the mean W1 against the ground-truth distributions (lower is
// better). Scoring across sizes is what selects for scale-generalizable
// models rather than merely well-fitted ones.
func (v *Validator) Score(models *core.MimicModels) (float64, error) {
	defer obs.StartSpan(obsPhaseValidate).End()
	var total float64
	for _, n := range v.Sizes {
		cfg := v.Base
		cfg.Topo = v.Base.Topo.WithClusters(n)
		comp, err := core.Compose(cfg, models)
		if err != nil {
			return math.Inf(1), err
		}
		comp.Run(v.Duration)
		score, err := v.scoreOne(comp.Results(), v.truth[n])
		if err != nil {
			return math.Inf(1), err
		}
		if math.IsInf(score, 1) {
			// A catastrophic candidate, not an error.
			return score, nil
		}
		total += score
	}
	return total / float64(len(v.Sizes)), nil
}

// MimicSpace is the default hyper-parameter space the paper lists in
// §7.2: WBCE weight, Huber delta, LSTM layers, hidden size, epochs, and
// learning rate.
func MimicSpace() Space {
	return Space{
		{Name: "drop_weight", Lo: 0.5, Hi: 0.95},
		{Name: "huber_delta", Lo: 0.1, Hi: 10, Log: true},
		{Name: "layers", Lo: 1, Hi: 2, Integer: true},
		{Name: "hidden", Lo: 8, Hi: 48, Integer: true},
		{Name: "epochs", Lo: 2, Hi: 8, Integer: true},
		{Name: "lr", Lo: 3e-4, Hi: 1e-2, Log: true},
	}
}

// ApplyParams overlays a parameter assignment onto a training config.
func ApplyParams(cfg core.TrainConfig, params map[string]float64) core.TrainConfig {
	if v, ok := params["drop_weight"]; ok {
		cfg.Model.DropWeight = v
	}
	if v, ok := params["huber_delta"]; ok {
		cfg.Model.HuberDelta = v
	}
	if v, ok := params["layers"]; ok {
		cfg.Model.Layers = int(v)
	}
	if v, ok := params["hidden"]; ok {
		cfg.Model.Hidden = int(v)
	}
	if v, ok := params["epochs"]; ok {
		cfg.Model.Epochs = int(v)
	}
	if v, ok := params["lr"]; ok {
		cfg.Model.LR = v
	}
	return cfg
}

// MimicObjective builds an Objective that retrains models on the given
// datasets with candidate hyper-parameters and scores them end-to-end
// with the validator. The datasets and validator reference runs are built
// once and shared by every trial; trials only read them (training copies
// whatever it keeps, see bankSubsample), so the returned Objective is
// safe for the concurrent evaluation RandomSearchParallel and the
// BayesOpt warm-up perform.
func MimicObjective(ing, eg *core.Dataset, base core.TrainConfig, v *Validator) Objective {
	return func(params map[string]float64) (float64, error) {
		cfg := ApplyParams(base, params)
		models, _, _, err := core.TrainModels(ing, eg, cfg)
		if err != nil {
			return math.Inf(1), err
		}
		return v.Score(models)
	}
}
