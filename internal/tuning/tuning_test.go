package tuning

import (
	"errors"
	"math"
	"testing"

	"mimicnet/internal/cluster"
	"mimicnet/internal/core"
	"mimicnet/internal/ml"
	"mimicnet/internal/sim"
	"mimicnet/internal/workload"
)

func TestCholeskyAndSolve(t *testing.T) {
	// A = [[4,2],[2,3]] => L = [[2,0],[1,sqrt(2)]]
	a := [][]float64{{4, 2}, {2, 3}}
	l, err := cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(l[0][0]-2) > 1e-12 || math.Abs(l[1][0]-1) > 1e-12 ||
		math.Abs(l[1][1]-math.Sqrt(2)) > 1e-12 {
		t.Errorf("L = %v", l)
	}
	// Solve A x = b with b = [8, 7] => x = [1.25, 1.5].
	x := choleskySolve(l, []float64{8, 7})
	if math.Abs(x[0]-1.25) > 1e-9 || math.Abs(x[1]-1.5) > 1e-9 {
		t.Errorf("x = %v", x)
	}
	if _, err := cholesky([][]float64{{-1}}); err == nil {
		t.Error("non-PD matrix accepted")
	}
}

func TestGPInterpolates(t *testing.T) {
	// GP with tiny noise should nearly interpolate its training points.
	x := [][]float64{{0.1}, {0.5}, {0.9}}
	y := []float64{1, 3, 2}
	g, err := newGP(x, y, 0.3, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		m, v := g.predict(x[i])
		if math.Abs(m-y[i]) > 0.05 {
			t.Errorf("mean at train point %d = %v, want %v", i, m, y[i])
		}
		if v > 0.05 {
			t.Errorf("variance at train point %d = %v, want tiny", i, v)
		}
	}
	// Far from data: variance grows.
	_, vFar := g.predict([]float64{3.0})
	if vFar < 0.5 {
		t.Errorf("variance far from data = %v, want large", vFar)
	}
}

func TestExpectedImprovement(t *testing.T) {
	x := [][]float64{{0.0}, {1.0}}
	y := []float64{1, 1}
	g, _ := newGP(x, y, 0.2, 1e-6)
	// EI should be ~0 at known points (no improvement, no uncertainty)
	// and positive between them.
	eiKnown := g.expectedImprovement([]float64{0.0}, 1)
	eiMid := g.expectedImprovement([]float64{0.5}, 1)
	if eiMid <= eiKnown {
		t.Errorf("EI mid %v should exceed EI at known point %v", eiMid, eiKnown)
	}
}

func TestSpaceValidation(t *testing.T) {
	if err := (Space{}).Validate(); err == nil {
		t.Error("empty space accepted")
	}
	if err := (Space{{Name: "a", Lo: 1, Hi: 1}}).Validate(); err == nil {
		t.Error("empty range accepted")
	}
	if err := (Space{{Name: "a", Lo: 0, Hi: 1, Log: true}}).Validate(); err == nil {
		t.Error("log with zero bound accepted")
	}
}

func TestParamMapping(t *testing.T) {
	p := Param{Name: "x", Lo: 10, Hi: 1000, Log: true}
	if v := p.fromUnit(0); math.Abs(v-10) > 1e-9 {
		t.Errorf("fromUnit(0) = %v", v)
	}
	if v := p.fromUnit(1); math.Abs(v-1000) > 1e-9 {
		t.Errorf("fromUnit(1) = %v", v)
	}
	if v := p.fromUnit(0.5); math.Abs(v-100) > 1e-9 {
		t.Errorf("log fromUnit(0.5) = %v, want 100", v)
	}
	if u := p.toUnit(100); math.Abs(u-0.5) > 1e-9 {
		t.Errorf("toUnit(100) = %v", u)
	}
	pi := Param{Name: "n", Lo: 1, Hi: 5, Integer: true}
	if v := pi.fromUnit(0.49); v != math.Round(1+0.49*4) {
		t.Errorf("integer rounding = %v", v)
	}
	if v := pi.fromUnit(-1); v != 1 {
		t.Errorf("clamping low = %v", v)
	}
	if v := pi.fromUnit(2); v != 5 {
		t.Errorf("clamping high = %v", v)
	}
}

// quadratic is a test objective with a known minimum.
func quadratic(opt map[string]float64) (float64, error) {
	x := opt["x"]
	y := opt["y"]
	return (x-0.3)*(x-0.3) + (y-0.7)*(y-0.7), nil
}

func quadSpace() Space {
	return Space{
		{Name: "x", Lo: 0, Hi: 1},
		{Name: "y", Lo: 0, Hi: 1},
	}
}

func TestRandomSearchFindsDecentPoint(t *testing.T) {
	res, err := RandomSearch(quadSpace(), quadratic, 60, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Score > 0.1 {
		t.Errorf("random search best = %v", res.Best.Score)
	}
	if len(res.History) != 60 {
		t.Errorf("history = %d", len(res.History))
	}
}

// pointsEqual compares two search points bitwise.
func pointsEqual(a, b Point) bool {
	if a.Score != b.Score || (a.Err == nil) != (b.Err == nil) || len(a.Params) != len(b.Params) {
		return false
	}
	for k, v := range a.Params {
		if b.Params[k] != v {
			return false
		}
	}
	return true
}

func TestRandomSearchParallelMatchesSerial(t *testing.T) {
	serial, err := RandomSearch(quadSpace(), quadratic, 40, 11)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4, 64} {
		par, err := RandomSearchParallel(quadSpace(), quadratic, 40, 11, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !pointsEqual(par.Best, serial.Best) {
			t.Fatalf("workers=%d best %+v != serial %+v", workers, par.Best, serial.Best)
		}
		if len(par.History) != len(serial.History) {
			t.Fatalf("workers=%d history length %d != %d", workers, len(par.History), len(serial.History))
		}
		for i := range par.History {
			if !pointsEqual(par.History[i], serial.History[i]) {
				t.Fatalf("workers=%d history[%d] diverged", workers, i)
			}
		}
	}
}

func TestBayesOptParallelWarmupMatchesSerial(t *testing.T) {
	cfg := DefaultBayesOptConfig()
	cfg.InitPoints = 8
	cfg.Iterations = 6
	cfg.Seed = 9
	serial, err := BayesOpt(quadSpace(), quadratic, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	par, err := BayesOpt(quadSpace(), quadratic, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !pointsEqual(par.Best, serial.Best) {
		t.Fatalf("parallel warm-up best %+v != serial %+v", par.Best, serial.Best)
	}
	for i := range serial.History {
		if !pointsEqual(par.History[i], serial.History[i]) {
			t.Fatalf("history[%d] diverged with parallel warm-up", i)
		}
	}
}

func TestBayesOptBeatsRandomAtEqualBudget(t *testing.T) {
	budget := 24
	rnd, err := RandomSearch(quadSpace(), quadratic, budget, 7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultBayesOptConfig()
	cfg.InitPoints = 6
	cfg.Iterations = budget - cfg.InitPoints
	cfg.Seed = 7
	bo, err := BayesOpt(quadSpace(), quadratic, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// BO should be at least competitive; allow slack for the toy setup.
	if bo.Best.Score > rnd.Best.Score*2+0.01 {
		t.Errorf("BO best %v much worse than random %v", bo.Best.Score, rnd.Best.Score)
	}
	if len(bo.History) != budget {
		t.Errorf("BO history = %d, want %d", len(bo.History), budget)
	}
}

func TestSearchSurvivesObjectiveErrors(t *testing.T) {
	n := 0
	flaky := func(p map[string]float64) (float64, error) {
		n++
		if n%2 == 0 {
			return 0, errors.New("boom")
		}
		return p["x"], nil
	}
	space := Space{{Name: "x", Lo: 0, Hi: 1}}
	res, err := RandomSearch(space, flaky, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(res.Best.Score, 1) {
		t.Error("no successful evaluation kept")
	}
	bo, err := BayesOpt(space, flaky, BayesOptConfig{InitPoints: 4, Iterations: 6, Candidates: 16, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(bo.Best.Score, 1) {
		t.Error("BO kept no successful evaluation")
	}
}

func TestAllFailingObjective(t *testing.T) {
	bad := func(map[string]float64) (float64, error) { return 0, errors.New("no") }
	space := Space{{Name: "x", Lo: 0, Hi: 1}}
	if _, err := RandomSearch(space, bad, 3, 1); err == nil {
		t.Error("all-failing random search should error")
	}
	if _, err := BayesOpt(space, bad, BayesOptConfig{InitPoints: 2, Iterations: 2, Candidates: 8}); err == nil {
		t.Error("all-failing BO should error")
	}
}

func TestApplyParams(t *testing.T) {
	base := core.DefaultTrainConfig()
	got := ApplyParams(base, map[string]float64{
		"drop_weight": 0.9, "huber_delta": 2.5, "layers": 2,
		"hidden": 32, "epochs": 6, "lr": 0.001,
	})
	if got.Model.DropWeight != 0.9 || got.Model.HuberDelta != 2.5 ||
		got.Model.Layers != 2 || got.Model.Hidden != 32 ||
		got.Model.Epochs != 6 || got.Model.LR != 0.001 {
		t.Errorf("ApplyParams = %+v", got.Model)
	}
	// Untouched params keep base values.
	got2 := ApplyParams(base, nil)
	if got2.Model.Hidden != base.Model.Hidden {
		t.Error("nil params changed config")
	}
}

func TestMimicSpaceValid(t *testing.T) {
	if err := MimicSpace().Validate(); err != nil {
		t.Fatal(err)
	}
}

// End-to-end tuning smoke test with a tiny budget.
func TestValidatorAndObjective(t *testing.T) {
	if testing.Short() {
		t.Skip("tuning end-to-end is slow")
	}
	base := cluster.DefaultConfig(2)
	base.Workload = workload.DefaultConfig(20_000)
	base.Workload.Duration = 100 * sim.Millisecond

	// Held-out validation workload uses a different seed (paper §8).
	valBase := base
	valBase.Workload.Seed = 99
	v, err := NewValidator(valBase, []int{2, 3}, 200*sim.Millisecond, "fct")
	if err != nil {
		t.Fatal(err)
	}

	tcfg := core.DefaultTrainConfig()
	tcfg.Dataset.Window = 4
	tcfg.Model = ml.DefaultModelConfig(0, 4)
	tcfg.Model.Hidden = 8
	tcfg.Model.Epochs = 1
	ing, eg, _, err := core.GenerateTrainingData(base, 150*sim.Millisecond, tcfg)
	if err != nil {
		t.Fatal(err)
	}
	obj := MimicObjective(ing, eg, tcfg, v)
	res, err := RandomSearch(MimicSpace(), func(p map[string]float64) (float64, error) {
		// Pin the expensive dimensions for test speed.
		p["hidden"] = 8
		p["epochs"] = 1
		p["layers"] = 1
		return obj(p)
	}, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(res.Best.Score, 1) || math.IsNaN(res.Best.Score) {
		t.Errorf("tuning score = %v", res.Best.Score)
	}
	t.Logf("best tuning score (mean W1 FCT): %v with %v", res.Best.Score, res.Best.Params)
}

// TestMimicObjectiveParallelTrialsMatchSerial runs the real tuning
// objective (train + compose + validate) through the parallel searcher
// and asserts it selects the exact best params the serial search does —
// trials share the built datasets and validator references, and the whole
// pipeline is deterministic per candidate.
func TestMimicObjectiveParallelTrialsMatchSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("tuning end-to-end is slow")
	}
	base := cluster.DefaultConfig(2)
	base.Workload = workload.DefaultConfig(20_000)
	base.Workload.Duration = 100 * sim.Millisecond

	valBase := base
	valBase.Workload.Seed = 99
	v, err := NewValidator(valBase, []int{2}, 150*sim.Millisecond, "fct")
	if err != nil {
		t.Fatal(err)
	}

	tcfg := core.DefaultTrainConfig()
	tcfg.Dataset.Window = 4
	tcfg.Model = ml.DefaultModelConfig(0, 4)
	tcfg.Model.Hidden = 8
	tcfg.Model.Epochs = 1
	ing, eg, _, err := core.GenerateTrainingData(base, 150*sim.Millisecond, tcfg)
	if err != nil {
		t.Fatal(err)
	}
	obj := MimicObjective(ing, eg, tcfg, v)
	cheap := func(p map[string]float64) (float64, error) {
		// Pin the expensive dimensions for test speed.
		p["hidden"] = 8
		p["epochs"] = 1
		p["layers"] = 1
		return obj(p)
	}
	serial, err := RandomSearch(MimicSpace(), cheap, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RandomSearchParallel(MimicSpace(), cheap, 3, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !pointsEqual(par.Best, serial.Best) {
		t.Fatalf("parallel trials best %+v != serial %+v", par.Best, serial.Best)
	}
}

func TestValidatorRejectsUnknownMetric(t *testing.T) {
	base := cluster.DefaultConfig(2)
	base.Workload = workload.DefaultConfig(20_000)
	base.Workload.Duration = 20 * sim.Millisecond
	if _, err := NewValidator(base, []int{2}, 50*sim.Millisecond, "bogus"); err == nil {
		t.Error("unknown metric accepted")
	}
}

func TestValidatorMSEMetric(t *testing.T) {
	if testing.Short() {
		t.Skip("tuning end-to-end is slow")
	}
	base := cluster.DefaultConfig(2)
	base.Workload = workload.DefaultConfig(20_000)
	base.Workload.Duration = 100 * sim.Millisecond
	v, err := NewValidator(base, []int{2}, 250*sim.Millisecond, "fct-mse")
	if err != nil {
		t.Fatal(err)
	}
	tcfg := core.DefaultTrainConfig()
	tcfg.Dataset.Window = 4
	tcfg.Model = ml.DefaultModelConfig(0, 4)
	tcfg.Model.Hidden = 8
	tcfg.Model.Epochs = 1
	ing, eg, _, err := core.GenerateTrainingData(base, 150*sim.Millisecond, tcfg)
	if err != nil {
		t.Fatal(err)
	}
	models, _, _, err := core.TrainModels(ing, eg, tcfg)
	if err != nil {
		t.Fatal(err)
	}
	score, err := v.Score(models)
	if err != nil {
		t.Fatal(err)
	}
	// A 2-cluster composition shares the workload schedule with the
	// reference, so overlap should clear the 80% bar and yield a finite
	// MSE.
	if math.IsNaN(score) || math.IsInf(score, 1) {
		t.Fatalf("fct-mse score = %v (overlap below threshold?)", score)
	}
	t.Logf("fct-mse validation score: %v", score)
}

func TestValidatorKSMetric(t *testing.T) {
	base := cluster.DefaultConfig(2)
	base.Workload = workload.DefaultConfig(20_000)
	base.Workload.Duration = 60 * sim.Millisecond
	v, err := NewValidator(base, []int{2}, 150*sim.Millisecond, "fct-ks")
	if err != nil {
		t.Fatal(err)
	}
	if v.Metric != "fct-ks" {
		t.Error("metric not stored")
	}
	if _, err := NewValidator(base, []int{2}, 150*sim.Millisecond, "bogus-ks"); err == nil {
		t.Error("bogus -ks metric accepted")
	}
}
