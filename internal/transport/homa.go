package transport

import (
	"mimicnet/internal/netsim"
	"mimicnet/internal/sim"
)

// HomaBands is the number of switch priority bands the Homa-like
// transport uses: band 0 carries grants and the shortest messages, higher
// bands carry progressively longer messages (SRPT approximation).
const HomaBands = 8

// homaRetxTimeout is the progress timeout after which the sender
// retransmits from the acknowledged prefix.
const homaRetxTimeout = 30 * sim.Millisecond

// HomaPriority maps remaining message bytes to a priority band, smaller
// messages first. bdp anchors the scale.
func HomaPriority(remaining int64, bdp int) int {
	if bdp <= 0 {
		bdp = netsim.MSS
	}
	unit := int64(bdp) / 2
	if unit <= 0 {
		unit = 1
	}
	prio := 1
	for size := unit; remaining > size && prio < HomaBands-1; size *= 4 {
		prio++
	}
	return prio
}

// HomaSender is a receiver-driven message sender: it blasts one BDP of
// unscheduled data immediately and sends the rest only as the receiver
// grants it. Data packets carry priorities so switches can run SRPT-like
// scheduling; this deliberately reorders packets across messages, the
// property that stresses MimicNet's models (paper §9.4.2).
type HomaSender struct {
	env  *Env
	flow *Flow

	sent    int64 // bytes transmitted at least once
	acked   int64 // contiguous prefix acknowledged
	granted int64 // limit authorized by the receiver
	prio    int   // current priority for scheduled data

	retxEvent sim.EventRef
	lastAcked int64
	done      bool
}

// NewHomaSender builds a Homa-like sender.
func NewHomaSender(env *Env, flow *Flow) *HomaSender {
	return &HomaSender{env: env, flow: flow}
}

// Start transmits the unscheduled window.
func (h *HomaSender) Start() {
	unsched := int64(h.env.BDPBytes)
	if unsched > h.flow.Bytes {
		unsched = h.flow.Bytes
	}
	h.granted = unsched
	h.prio = HomaPriority(h.flow.Bytes, h.env.BDPBytes)
	h.sendUpTo(h.granted)
	h.armRetx()
}

// Done reports whether the full message was acknowledged.
func (h *HomaSender) Done() bool { return h.done }

func (h *HomaSender) sendUpTo(limit int64) {
	for h.sent < limit {
		payload := h.env.MSS
		if remaining := limit - h.sent; remaining < int64(payload) {
			payload = int(remaining)
		}
		h.sendSegment(h.sent, payload)
		h.sent += int64(payload)
	}
}

func (h *HomaSender) sendSegment(seq int64, payload int) {
	h.env.Inject(&netsim.Packet{
		ID:        h.env.NewPacketID(),
		FlowID:    h.flow.ID,
		Src:       h.flow.Src,
		Dst:       h.flow.Dst,
		Seq:       seq,
		Payload:   payload,
		Size:      payload + netsim.HeaderBytes,
		Priority:  h.prio,
		Hash:      h.flow.Hash,
		SentAt:    h.env.Sim.Now(),
		FlowBytes: h.flow.Bytes,
	})
}

// HandleAck processes acknowledgements and grants from the receiver.
func (h *HomaSender) HandleAck(pkt *netsim.Packet) {
	if h.done {
		return
	}
	if pkt.AckSeq > h.acked {
		h.acked = pkt.AckSeq
		if h.env.OnRTT != nil && pkt.EchoTS > 0 {
			if rtt := h.env.Sim.Now() - pkt.EchoTS; rtt > 0 {
				h.env.OnRTT(h.flow, rtt.Seconds())
			}
		}
	}
	if h.acked >= h.flow.Bytes {
		h.complete()
		return
	}
	if pkt.IsGrant && pkt.GrantseqG > h.granted {
		h.granted = pkt.GrantseqG
		h.prio = pkt.GrantPrio
		if h.prio < 1 {
			h.prio = 1
		}
		h.sendUpTo(h.granted)
	}
	h.armRetx()
}

func (h *HomaSender) armRetx() {
	h.env.Sim.Cancel(h.retxEvent)
	h.retxEvent = sim.EventRef{}
	if h.done {
		return
	}
	h.lastAcked = h.acked
	h.retxEvent = h.env.Sim.After(homaRetxTimeout, h.onRetxTimeout)
}

func (h *HomaSender) onRetxTimeout() {
	h.retxEvent = sim.EventRef{}
	if h.done {
		return
	}
	if h.acked == h.lastAcked {
		// No progress: retransmit the window from the acked prefix.
		h.sent = h.acked
		limit := h.granted
		if max := h.acked + int64(h.env.BDPBytes); limit > max {
			limit = max
		}
		h.sendUpTo(limit)
	}
	h.armRetx()
}

func (h *HomaSender) complete() {
	h.done = true
	h.env.Sim.Cancel(h.retxEvent)
	h.retxEvent = sim.EventRef{}
	if h.env.OnComplete != nil {
		h.env.OnComplete(h.flow)
	}
}
