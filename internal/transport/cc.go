package transport

import (
	"math"

	"mimicnet/internal/sim"
)

// Reno implements TCP New Reno congestion control: slow start,
// additive-increase congestion avoidance, and multiplicative decrease on
// loss. It is the paper's base configuration.
type Reno struct {
	mss      float64
	cwnd     float64
	ssthresh float64
}

// NewReno returns a Reno controller with a window of initWnd segments.
func NewReno(mss, initWnd int) *Reno {
	return &Reno{
		mss:      float64(mss),
		cwnd:     float64(mss * initWnd),
		ssthresh: math.Inf(1),
	}
}

// Window returns the congestion window in bytes.
func (r *Reno) Window() float64 { return r.cwnd }

// OnAck grows the window: exponentially in slow start, ~1 MSS/RTT in
// congestion avoidance.
func (r *Reno) OnAck(acked int64, rtt sim.Time, ecnEcho bool) {
	if r.cwnd < r.ssthresh {
		r.cwnd += float64(acked)
		if r.cwnd > r.ssthresh {
			r.cwnd = r.ssthresh
		}
	} else {
		r.cwnd += r.mss * float64(acked) / r.cwnd
	}
}

// OnDupAckLoss halves the window (fast recovery entry).
func (r *Reno) OnDupAckLoss() {
	r.ssthresh = math.Max(r.cwnd/2, 2*r.mss)
	r.cwnd = r.ssthresh
}

// OnTimeout collapses to one segment.
func (r *Reno) OnTimeout() {
	r.ssthresh = math.Max(r.cwnd/2, 2*r.mss)
	r.cwnd = r.mss
}

// DCTCP implements Data Center TCP (Alizadeh et al., SIGCOMM 2010): the
// receiver echoes ECN marks, and the sender maintains an EWMA estimate α
// of the marked fraction, cutting cwnd by a factor α/2 once per window.
// Loss handling falls back to Reno behavior.
type DCTCP struct {
	Reno
	G     float64 // EWMA gain, paper default 1/16
	alpha float64

	ackedBytes  int64
	markedBytes int64
	windowEnd   int64 // bytes acked when the current observation window closes
	totalAcked  int64
}

// NewDCTCP returns a DCTCP controller.
func NewDCTCP(mss, initWnd int) *DCTCP {
	return &DCTCP{Reno: *NewReno(mss, initWnd), G: 1.0 / 16}
}

// Alpha exposes the current marked-fraction estimate.
func (d *DCTCP) Alpha() float64 { return d.alpha }

// OnAck tracks per-window ECN echo fractions and applies the α-scaled
// reduction at window boundaries, then delegates growth to Reno.
func (d *DCTCP) OnAck(acked int64, rtt sim.Time, ecnEcho bool) {
	d.totalAcked += acked
	d.ackedBytes += acked
	if ecnEcho {
		d.markedBytes += acked
	}
	if d.totalAcked >= d.windowEnd {
		f := 0.0
		if d.ackedBytes > 0 {
			f = float64(d.markedBytes) / float64(d.ackedBytes)
		}
		d.alpha = (1-d.G)*d.alpha + d.G*f
		if d.markedBytes > 0 {
			d.cwnd = math.Max(d.cwnd*(1-d.alpha/2), 2*d.mss)
			d.ssthresh = d.cwnd
		}
		d.ackedBytes, d.markedBytes = 0, 0
		d.windowEnd = d.totalAcked + int64(d.cwnd)
	}
	if !ecnEcho {
		d.Reno.OnAck(acked, rtt, false)
	}
}

// Vegas implements TCP Vegas (Brakmo & Peterson): a delay-based protocol
// that compares actual to expected throughput each RTT and nudges cwnd to
// keep between alpha and beta packets queued in the network. It stands in
// for the recent delay-sensitive protocols (TIMELY, Swift) the paper
// cites (§9.4.2).
type Vegas struct {
	Reno
	AlphaPkts, BetaPkts float64 // queueing targets in packets

	baseRTT   sim.Time
	rttSum    sim.Time
	rttCnt    int64
	ackedInRT int64
	nextAdj   int64 // totalAcked threshold ending the current RTT epoch
	total     int64
}

// NewVegas returns a Vegas controller with the classic alpha=2, beta=4.
func NewVegas(mss, initWnd int) *Vegas {
	return &Vegas{Reno: *NewReno(mss, initWnd), AlphaPkts: 2, BetaPkts: 4}
}

// BaseRTT exposes the minimum observed RTT.
func (v *Vegas) BaseRTT() sim.Time { return v.baseRTT }

// OnAck performs the per-RTT Vegas adjustment.
func (v *Vegas) OnAck(acked int64, rtt sim.Time, ecnEcho bool) {
	v.total += acked
	if rtt > 0 {
		if v.baseRTT == 0 || rtt < v.baseRTT {
			v.baseRTT = rtt
		}
		v.rttSum += rtt
		v.rttCnt++
	}
	if v.total < v.nextAdj {
		// Mid-epoch: grow like slow start if below ssthresh.
		if v.cwnd < v.ssthresh {
			v.cwnd += float64(acked)
		}
		return
	}
	// Epoch boundary: apply the Vegas rule.
	if v.rttCnt > 0 && v.baseRTT > 0 {
		avgRTT := v.rttSum / sim.Time(v.rttCnt)
		expected := v.cwnd / v.baseRTT.Seconds() // bytes/sec
		actual := v.cwnd / avgRTT.Seconds()
		diffPkts := (expected - actual) * v.baseRTT.Seconds() / v.mss
		switch {
		case v.cwnd < v.ssthresh:
			// Vegas slow start: grow every other RTT unless queues build.
			if diffPkts > v.AlphaPkts {
				v.ssthresh = v.cwnd
			} else {
				v.cwnd += float64(acked)
			}
		case diffPkts < v.AlphaPkts:
			v.cwnd += v.mss
		case diffPkts > v.BetaPkts:
			v.cwnd = math.Max(v.cwnd-v.mss, 2*v.mss)
		}
	}
	v.rttSum, v.rttCnt = 0, 0
	v.nextAdj = v.total + int64(v.cwnd)
}

// Westwood implements TCP Westwood(+): it estimates the eligible
// bandwidth from the ACK stream and, on loss, sets ssthresh to the
// estimated bandwidth-delay product instead of blindly halving—a
// sender-side optimization to maximize throughput (paper §9.4.2).
type Westwood struct {
	Reno
	bwe     float64 // bandwidth estimate, bytes/sec
	rttMin  sim.Time
	lastAck sim.Time
	now     func() sim.Time
}

// NewWestwood returns a Westwood controller. now supplies the simulated
// clock for ACK interarrival measurement.
func NewWestwood(mss, initWnd int, now func() sim.Time) *Westwood {
	return &Westwood{Reno: *NewReno(mss, initWnd), now: now}
}

// BWE exposes the current bandwidth estimate in bytes/sec.
func (w *Westwood) BWE() float64 { return w.bwe }

// OnAck updates the bandwidth estimate then grows the window like Reno.
func (w *Westwood) OnAck(acked int64, rtt sim.Time, ecnEcho bool) {
	t := w.now()
	if rtt > 0 && (w.rttMin == 0 || rtt < w.rttMin) {
		w.rttMin = rtt
	}
	if w.lastAck > 0 && t > w.lastAck {
		sample := float64(acked) / (t - w.lastAck).Seconds()
		// Low-pass filter (Westwood+ style EWMA).
		if w.bwe == 0 {
			w.bwe = sample
		} else {
			w.bwe = 0.9*w.bwe + 0.1*sample
		}
	}
	w.lastAck = t
	w.Reno.OnAck(acked, rtt, ecnEcho)
}

func (w *Westwood) bdp() float64 {
	if w.bwe == 0 || w.rttMin == 0 {
		return 0
	}
	return w.bwe * w.rttMin.Seconds()
}

// OnDupAckLoss performs faster recovery: ssthresh = BWE * RTTmin.
func (w *Westwood) OnDupAckLoss() {
	if bdp := w.bdp(); bdp >= 2*w.mss {
		w.ssthresh = bdp
		w.cwnd = w.ssthresh
		return
	}
	w.Reno.OnDupAckLoss()
}

// OnTimeout sets ssthresh from the bandwidth estimate and restarts from
// one segment.
func (w *Westwood) OnTimeout() {
	if bdp := w.bdp(); bdp >= 2*w.mss {
		w.ssthresh = bdp
		w.cwnd = w.mss
		return
	}
	w.Reno.OnTimeout()
}
