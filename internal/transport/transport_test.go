package transport

import (
	"testing"

	"mimicnet/internal/netsim"
	"mimicnet/internal/sim"
	"mimicnet/internal/stats"
)

// loop is a two-endpoint test harness: a sender and a receiver joined by
// a fixed-delay channel with optional per-packet drop and ECN marking.
type loop struct {
	s      *sim.Simulator
	env    *Env
	flow   *Flow
	sender Sender
	recv   *Receiver

	oneWay   sim.Time
	drop     func(pkt *netsim.Packet) bool
	mark     func(pkt *netsim.Packet) bool
	sent     int
	dropped  int
	done     bool
	rttSeen  []float64
	deliverd int64
}

func newLoop(proto Protocol, bytes int64, oneWay sim.Time) *loop {
	l := &loop{s: sim.New(), oneWay: oneWay}
	l.env = &Env{
		Sim:      l.s,
		MSS:      netsim.MSS,
		BDPBytes: 4 * netsim.MSS,
	}
	l.env.OnComplete = func(f *Flow) { l.done = true }
	l.env.OnRTT = func(f *Flow, sec float64) { l.rttSeen = append(l.rttSeen, sec) }
	l.env.Inject = func(pkt *netsim.Packet) {
		l.sent++
		if l.drop != nil && l.drop(pkt) {
			l.dropped++
			return
		}
		if l.mark != nil && pkt.ECT && l.mark(pkt) {
			pkt.CE = true
		}
		l.s.After(l.oneWay, func() {
			if pkt.IsAck {
				l.sender.HandleAck(pkt)
			} else {
				l.recv.HandleData(pkt)
			}
		})
	}
	l.flow = &Flow{ID: 1, Src: 0, Dst: 1, Bytes: bytes, Hash: 42}
	l.recv = NewReceiver(l.env, l.flow)
	l.recv.OnDeliver = func(n int64) { l.deliverd += n }
	if IsHoma(proto) {
		l.recv.EnableGranting(func(remaining int64) int {
			return HomaPriority(remaining, l.env.BDPBytes)
		})
	}
	l.sender = proto.NewSender(l.env, l.flow)
	return l
}

func (l *loop) run(t *testing.T, limit sim.Time) {
	t.Helper()
	l.s.At(0, l.sender.Start)
	l.s.RunUntil(limit)
}

func TestTCPTransfersCleanChannel(t *testing.T) {
	for _, name := range []string{"newreno", "dctcp", "vegas", "westwood"} {
		proto, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		l := newLoop(proto, 100_000, sim.Millisecond)
		l.run(t, 10*sim.Second)
		if !l.done {
			t.Errorf("%s: transfer did not complete", name)
		}
		if !l.sender.Done() {
			t.Errorf("%s: sender.Done() false after completion", name)
		}
		if l.deliverd != 100_000 {
			t.Errorf("%s: delivered %d bytes, want 100000", name, l.deliverd)
		}
		if len(l.rttSeen) == 0 {
			t.Errorf("%s: no RTT samples", name)
		}
		for _, r := range l.rttSeen {
			if r < 0.002-1e-9 {
				t.Errorf("%s: RTT %v below channel RTT", name, r)
			}
		}
	}
}

func TestTCPRecoversFromLoss(t *testing.T) {
	for _, name := range []string{"newreno", "dctcp", "vegas", "westwood"} {
		proto, _ := ByName(name)
		l := newLoop(proto, 200_000, sim.Millisecond)
		rng := stats.NewStream(7)
		l.drop = func(pkt *netsim.Packet) bool {
			return !pkt.IsAck && rng.Float64() < 0.05
		}
		l.run(t, 60*sim.Second)
		if !l.done {
			t.Errorf("%s: transfer did not complete under 5%% loss", name)
		}
		if l.dropped == 0 {
			t.Errorf("%s: test did not exercise loss", name)
		}
	}
}

func TestTCPRecoversFromBurstLoss(t *testing.T) {
	// Drop an entire early window to force an RTO (dup ACKs unavailable).
	proto, _ := ByName("newreno")
	l := newLoop(proto, 50_000, sim.Millisecond)
	n := 0
	l.drop = func(pkt *netsim.Packet) bool {
		if pkt.IsAck {
			return false
		}
		n++
		return n <= 10
	}
	l.run(t, 30*sim.Second)
	if !l.done {
		t.Fatal("transfer did not recover from burst loss")
	}
}

func TestRenoSlowStartAndAIMD(t *testing.T) {
	r := NewReno(1000, 10)
	w0 := r.Window()
	r.OnAck(1000, sim.Millisecond, false)
	if r.Window() != w0+1000 {
		t.Errorf("slow start: %v -> %v, want +1000", w0, r.Window())
	}
	r.OnDupAckLoss()
	wLoss := r.Window()
	if wLoss != (w0+1000)/2 {
		t.Errorf("halving: got %v, want %v", wLoss, (w0+1000)/2)
	}
	// Now in congestion avoidance: growth ~ mss*acked/cwnd.
	r.OnAck(1000, sim.Millisecond, false)
	want := wLoss + 1000*1000/wLoss
	if r.Window() != want {
		t.Errorf("CA growth: got %v, want %v", r.Window(), want)
	}
	r.OnTimeout()
	if r.Window() != 1000 {
		t.Errorf("timeout: window %v, want 1 MSS", r.Window())
	}
}

func TestRenoFloors(t *testing.T) {
	r := NewReno(1000, 1)
	for i := 0; i < 10; i++ {
		r.OnDupAckLoss()
	}
	if r.Window() < 2000 {
		t.Errorf("window %v below 2 MSS floor", r.Window())
	}
}

func TestDCTCPAlphaTracksMarks(t *testing.T) {
	d := NewDCTCP(1000, 10)
	// Fully marked windows should push alpha toward 1 and shrink cwnd.
	for i := 0; i < 200; i++ {
		d.OnAck(10_000, sim.Millisecond, true)
	}
	if d.Alpha() < 0.9 {
		t.Errorf("alpha = %v after persistent marking, want > 0.9", d.Alpha())
	}
	if d.Window() > 5000 {
		t.Errorf("window = %v under persistent marking, want small", d.Window())
	}
	// Mark-free windows decay alpha.
	for i := 0; i < 400; i++ {
		d.OnAck(10_000, sim.Millisecond, false)
	}
	if d.Alpha() > 0.1 {
		t.Errorf("alpha = %v after mark-free period, want < 0.1", d.Alpha())
	}
}

func TestDCTCPMildMarkingGentlerThanReno(t *testing.T) {
	// DCTCP's whole point: a lightly marked window cuts cwnd by α/2, far
	// less than Reno's halving.
	d := NewDCTCP(1000, 100)
	start := d.Window()
	// One window with 10% marks.
	for i := 0; i < 9; i++ {
		d.OnAck(10_000, sim.Millisecond, false)
	}
	d.OnAck(10_000, sim.Millisecond, true)
	for i := 0; i < 10; i++ {
		d.OnAck(10_000, sim.Millisecond, false)
	}
	if d.Window() < start*0.7 {
		t.Errorf("mild marking cut window %v -> %v; too aggressive", start, d.Window())
	}
}

func TestVegasAdjustments(t *testing.T) {
	v := NewVegas(1000, 10)
	v.ssthresh = 0 // force congestion avoidance
	// Feed a full epoch with RTT == baseRTT: diff = 0 < alpha ⇒ +1 MSS.
	base := 10 * sim.Millisecond
	v.OnAck(1000, base, false) // seeds baseRTT, closes first epoch (nextAdj=0)
	w := v.Window()
	total := int64(0)
	for total < int64(v.Window()) {
		v.OnAck(10000, base, false)
		total += 10000
	}
	if v.Window() <= w {
		t.Errorf("no-queueing epoch should grow window: %v -> %v", w, v.Window())
	}
	if v.BaseRTT() != base {
		t.Errorf("baseRTT = %v, want %v", v.BaseRTT(), base)
	}
	// Now feed heavily inflated RTTs: diff large ⇒ shrink.
	w = v.Window()
	for i := 0; i < 100; i++ {
		v.OnAck(int64(v.Window()), 10*base, false)
	}
	if v.Window() >= w {
		t.Errorf("queueing epochs should shrink window: %v -> %v", w, v.Window())
	}
}

func TestWestwoodBandwidthEstimate(t *testing.T) {
	var now sim.Time
	w := NewWestwood(1000, 10, func() sim.Time { return now })
	// 1000 bytes every ms = 1 MB/s.
	for i := 0; i < 100; i++ {
		now += sim.Millisecond
		w.OnAck(1000, 10*sim.Millisecond, false)
	}
	if w.BWE() < 0.5e6 || w.BWE() > 1.5e6 {
		t.Errorf("BWE = %v, want ~1e6 B/s", w.BWE())
	}
	// On loss, ssthresh should be ~BWE*RTTmin = 1e6 * 0.01 = 10000 bytes.
	w.OnDupAckLoss()
	if w.Window() < 5000 || w.Window() > 20000 {
		t.Errorf("post-loss window = %v, want ~10000", w.Window())
	}
	w.OnTimeout()
	if w.Window() != 1000 {
		t.Errorf("post-timeout window = %v, want 1 MSS", w.Window())
	}
}

func TestWestwoodFallsBackWithoutEstimate(t *testing.T) {
	var now sim.Time
	w := NewWestwood(1000, 10, func() sim.Time { return now })
	w.OnDupAckLoss() // no BWE yet: Reno behavior
	if w.Window() != 5000 {
		t.Errorf("fallback halving: %v, want 5000", w.Window())
	}
}

func TestReceiverInOrder(t *testing.T) {
	env := &Env{Sim: sim.New(), MSS: 100, Inject: func(*netsim.Packet) {}}
	flow := &Flow{ID: 1, Src: 0, Dst: 1, Bytes: 300}
	r := NewReceiver(env, flow)
	var delivered int64
	r.OnDeliver = func(n int64) { delivered += n }
	for seq := int64(0); seq < 300; seq += 100 {
		r.HandleData(&netsim.Packet{Seq: seq, Payload: 100, FlowBytes: 300})
	}
	if r.RcvNxt() != 300 || !r.Complete() || delivered != 300 {
		t.Errorf("rcvNxt=%d complete=%v delivered=%d", r.RcvNxt(), r.Complete(), delivered)
	}
}

func TestReceiverOutOfOrderCoalescing(t *testing.T) {
	var acks []int64
	env := &Env{Sim: sim.New(), MSS: 100, Inject: func(p *netsim.Packet) {
		if p.IsAck {
			acks = append(acks, p.AckSeq)
		}
	}}
	flow := &Flow{ID: 1, Bytes: 400}
	r := NewReceiver(env, flow)
	r.HandleData(&netsim.Packet{Seq: 200, Payload: 100, FlowBytes: 400})
	if r.RcvNxt() != 0 {
		t.Errorf("ooo data advanced rcvNxt to %d", r.RcvNxt())
	}
	r.HandleData(&netsim.Packet{Seq: 100, Payload: 100, FlowBytes: 400})
	r.HandleData(&netsim.Packet{Seq: 0, Payload: 100, FlowBytes: 400})
	if r.RcvNxt() != 300 {
		t.Errorf("coalescing failed: rcvNxt=%d, want 300", r.RcvNxt())
	}
	// Duplicate ACK pattern: first two ACKs are 0 (dup), third jumps to 300.
	if len(acks) != 3 || acks[0] != 0 || acks[1] != 0 || acks[2] != 300 {
		t.Errorf("acks = %v, want [0 0 300]", acks)
	}
	r.HandleData(&netsim.Packet{Seq: 300, Payload: 100, FlowBytes: 400})
	if !r.Complete() {
		t.Error("not complete after all segments")
	}
}

func TestReceiverDuplicateDataIgnored(t *testing.T) {
	env := &Env{Sim: sim.New(), MSS: 100, Inject: func(*netsim.Packet) {}}
	r := NewReceiver(env, &Flow{Bytes: 200})
	var delivered int64
	r.OnDeliver = func(n int64) { delivered += n }
	pkt := &netsim.Packet{Seq: 0, Payload: 100, FlowBytes: 200}
	r.HandleData(pkt)
	r.HandleData(pkt) // duplicate
	if delivered != 100 {
		t.Errorf("delivered %d, want 100 (duplicate must not double-count)", delivered)
	}
}

func TestReceiverEchoesECN(t *testing.T) {
	var lastAck *netsim.Packet
	env := &Env{Sim: sim.New(), MSS: 100, Inject: func(p *netsim.Packet) { lastAck = p }}
	r := NewReceiver(env, &Flow{Bytes: 200})
	r.HandleData(&netsim.Packet{Seq: 0, Payload: 100, CE: true, FlowBytes: 200, SentAt: 5})
	if lastAck == nil || !lastAck.ECNEcho {
		t.Error("CE not echoed in ACK")
	}
	if lastAck.EchoTS != 5 {
		t.Errorf("EchoTS = %v, want 5", lastAck.EchoTS)
	}
	r.HandleData(&netsim.Packet{Seq: 100, Payload: 100, CE: false, FlowBytes: 200})
	if lastAck.ECNEcho {
		t.Error("ECN echo set for unmarked packet")
	}
}

func TestHomaTransfers(t *testing.T) {
	proto, _ := ByName("homa")
	l := newLoop(proto, 500_000, sim.Millisecond)
	l.run(t, 30*sim.Second)
	if !l.done || !l.sender.Done() {
		t.Fatal("homa transfer did not complete")
	}
	if l.deliverd != 500_000 {
		t.Errorf("delivered %d", l.deliverd)
	}
}

func TestHomaSmallMessageIsUnscheduled(t *testing.T) {
	proto, _ := ByName("homa")
	l := newLoop(proto, 1000, sim.Millisecond) // < BDP: purely unscheduled
	grants := 0
	origInject := l.env.Inject
	l.env.Inject = func(pkt *netsim.Packet) {
		if pkt.IsGrant {
			grants++
		}
		origInject(pkt)
	}
	l.run(t, sim.Second)
	if !l.done {
		t.Fatal("small homa message incomplete")
	}
	if grants != 0 {
		t.Errorf("small message triggered %d grants, want 0", grants)
	}
}

func TestHomaRecoverFromLoss(t *testing.T) {
	proto, _ := ByName("homa")
	l := newLoop(proto, 300_000, sim.Millisecond)
	rng := stats.NewStream(3)
	l.drop = func(pkt *netsim.Packet) bool {
		return !pkt.IsAck && rng.Float64() < 0.05
	}
	l.run(t, 60*sim.Second)
	if !l.done {
		t.Fatal("homa did not recover from loss")
	}
}

func TestHomaPriorityMonotone(t *testing.T) {
	bdp := 4 * netsim.MSS
	last := 0
	for _, size := range []int64{100, 1000, 10_000, 100_000, 1_000_000, 10_000_000} {
		p := HomaPriority(size, bdp)
		if p < last {
			t.Errorf("priority not monotone: size %d -> %d < %d", size, p, last)
		}
		if p < 1 || p >= HomaBands {
			t.Errorf("priority %d out of range for size %d", p, size)
		}
		last = p
	}
	if HomaPriority(100, 0) < 1 {
		t.Error("zero BDP should not break priority mapping")
	}
}

func TestByNameAndNames(t *testing.T) {
	for _, n := range Names() {
		p, err := ByName(n)
		if err != nil {
			t.Errorf("ByName(%q): %v", n, err)
			continue
		}
		if p.Name() != n {
			t.Errorf("Name() = %q, want %q", p.Name(), n)
		}
		if p.QueueBands() < 1 {
			t.Errorf("%s: bands = %d", n, p.QueueBands())
		}
	}
	if _, err := ByName("bogus"); err == nil {
		t.Error("ByName(bogus) should fail")
	}
	if p, _ := ByName("tcp"); p.Name() != "newreno" {
		t.Error("tcp alias broken")
	}
	dctcp, _ := ByName("dctcp")
	if !dctcp.UsesECN() {
		t.Error("dctcp should use ECN")
	}
	homa, _ := ByName("homa")
	if !IsHoma(homa) || homa.QueueBands() != HomaBands {
		t.Error("homa protocol misconfigured")
	}
}

func TestValidWindow(t *testing.T) {
	if !ValidWindow(1000) || ValidWindow(-1) || ValidWindow(0) {
		t.Error("ValidWindow misbehaves")
	}
}

func TestHostDemux(t *testing.T) {
	env := &Env{Sim: sim.New(), MSS: 100, Inject: func(*netsim.Packet) {}}
	h := NewHost(1, env, func(f *Flow) *Receiver { return NewReceiver(env, f) })
	flow := &Flow{ID: 9, Src: 0, Dst: 1, Bytes: 100}
	sender := NewTCPSender(env, flow, NewReno(100, 10), false)
	h.AddSender(9, sender)

	// Data creates a receiver on demand.
	h.Receive(&netsim.Packet{FlowID: 9, Src: 0, Dst: 1, Seq: 0, Payload: 100, FlowBytes: 100})
	if len(h.Receivers()) != 1 {
		t.Fatalf("receivers = %d", len(h.Receivers()))
	}
	if !h.Receivers()[9].Complete() {
		t.Error("receiver incomplete")
	}
	// ACK routed to sender.
	h.Receive(&netsim.Packet{FlowID: 9, IsAck: true, AckSeq: 100})
	if !sender.Done() {
		t.Error("sender did not see ACK")
	}
	// Unknown-flow ACK ignored.
	h.Receive(&netsim.Packet{FlowID: 777, IsAck: true})
	// Data with nil newRecv ignored.
	h2 := NewHost(2, env, nil)
	h2.Receive(&netsim.Packet{FlowID: 1, Payload: 10})
}

func TestTCPSenderRespectsWindow(t *testing.T) {
	var inflight int
	env := &Env{Sim: sim.New(), MSS: 1000}
	env.Inject = func(pkt *netsim.Packet) { inflight++ }
	flow := &Flow{ID: 1, Bytes: 1_000_000}
	s := NewTCPSender(env, flow, NewReno(1000, 10), false)
	s.Start()
	if inflight != 10 {
		t.Errorf("initial burst = %d segments, want initWnd=10", inflight)
	}
}
