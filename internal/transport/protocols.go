package transport

import (
	"fmt"
	"math"
)

// initWnd is the initial congestion window in segments (RFC 6928).
const initWnd = 10

// protocol is a table-driven Protocol implementation.
type protocol struct {
	name   string
	ecn    bool
	bands  int
	sender func(env *Env, flow *Flow) Sender
}

func (p *protocol) Name() string    { return p.name }
func (p *protocol) UsesECN() bool   { return p.ecn }
func (p *protocol) QueueBands() int { return p.bands }
func (p *protocol) NewSender(env *Env, flow *Flow) Sender {
	return p.sender(env, flow)
}

// NewRenoProtocol returns TCP New Reno, the paper's base configuration.
func NewRenoProtocol() Protocol {
	return &protocol{
		name: "newreno", bands: 1,
		sender: func(env *Env, flow *Flow) Sender {
			return NewTCPSender(env, flow, NewReno(env.MSS, initWnd), false)
		},
	}
}

// NewDCTCPProtocol returns DCTCP. Pair it with ECN-marking switch queues
// (netsim.ECNFactory) whose threshold K is the knob swept in Figure 13.
func NewDCTCPProtocol() Protocol {
	return &protocol{
		name: "dctcp", ecn: true, bands: 1,
		sender: func(env *Env, flow *Flow) Sender {
			return NewTCPSender(env, flow, NewDCTCP(env.MSS, initWnd), true)
		},
	}
}

// NewVegasProtocol returns delay-based TCP Vegas.
func NewVegasProtocol() Protocol {
	return &protocol{
		name: "vegas", bands: 1,
		sender: func(env *Env, flow *Flow) Sender {
			return NewTCPSender(env, flow, NewVegas(env.MSS, initWnd), false)
		},
	}
}

// NewWestwoodProtocol returns TCP Westwood.
func NewWestwoodProtocol() Protocol {
	return &protocol{
		name: "westwood", bands: 1,
		sender: func(env *Env, flow *Flow) Sender {
			return NewTCPSender(env, flow, NewWestwood(env.MSS, initWnd, env.Sim.Now), false)
		},
	}
}

// NewHomaProtocol returns the receiver-driven priority-queue transport.
// Pair it with strict-priority switch queues of HomaBands bands.
func NewHomaProtocol() Protocol {
	return &protocol{
		name: "homa", bands: HomaBands,
		sender: func(env *Env, flow *Flow) Sender {
			return NewHomaSender(env, flow)
		},
	}
}

// ByName resolves a protocol by its configuration name.
func ByName(name string) (Protocol, error) {
	switch name {
	case "newreno", "reno", "tcp":
		return NewRenoProtocol(), nil
	case "dctcp":
		return NewDCTCPProtocol(), nil
	case "vegas":
		return NewVegasProtocol(), nil
	case "westwood":
		return NewWestwoodProtocol(), nil
	case "homa":
		return NewHomaProtocol(), nil
	}
	return nil, fmt.Errorf("transport: unknown protocol %q", name)
}

// Names lists the supported protocol names.
func Names() []string {
	return []string{"newreno", "dctcp", "vegas", "westwood", "homa"}
}

// IsHoma reports whether the protocol uses receiver-driven grants, which
// requires granting-enabled receivers.
func IsHoma(p Protocol) bool { return p.Name() == "homa" }

// ValidWindow sanity-checks a congestion window value (guards against
// NaN/negative escapes from custom CC implementations in tests).
func ValidWindow(w float64) bool {
	return !math.IsNaN(w) && w > 0
}
