package transport

import (
	"mimicnet/internal/netsim"
	"mimicnet/internal/sim"
)

// RTO bounds. Data center simulations conventionally shrink the
// minimum RTO well below the WAN-era 1 s to avoid pathological stalls at
// millisecond-scale RTTs.
const (
	initialRTO = 50 * sim.Millisecond
	minRTO     = 10 * sim.Millisecond
	maxRTO     = 2 * sim.Second
)

// CongestionControl is the pluggable policy inside the generic TCP
// sender. Implementations maintain the congestion window in bytes.
type CongestionControl interface {
	// OnAck is invoked for every ACK advancing snd.una. acked is the
	// newly acknowledged byte count; rtt is the sample for this ACK
	// (zero if invalid per Karn's rule); ecnEcho is the ACK's ECN echo.
	OnAck(acked int64, rtt sim.Time, ecnEcho bool)
	// OnDupAckLoss fires on the third duplicate ACK (fast retransmit).
	OnDupAckLoss()
	// OnTimeout fires on an RTO expiry.
	OnTimeout()
	// Window returns the congestion window in bytes.
	Window() float64
}

// TCPSender implements the protocol-independent parts of a TCP-like
// reliable sender: sequencing, cumulative ACK processing, NewReno fast
// retransmit/recovery, and RTO management. Congestion response is
// delegated to a CongestionControl.
type TCPSender struct {
	env  *Env
	flow *Flow
	cc   CongestionControl
	ecn  bool

	sndUna, sndNxt int64
	dupAcks        int
	inRecovery     bool
	recover        int64

	srtt, rttvar sim.Time
	rto          sim.Time
	rtoEvent     sim.EventRef
	backoff      uint

	done bool
}

// NewTCPSender builds a sender for flow using the given congestion
// control. ecn controls whether data packets are ECN-capable.
func NewTCPSender(env *Env, flow *Flow, cc CongestionControl, ecn bool) *TCPSender {
	return &TCPSender{
		env: env, flow: flow, cc: cc, ecn: ecn,
		rto: initialRTO,
	}
}

// Start begins transmission.
func (t *TCPSender) Start() { t.trySend() }

// Done reports whether every byte has been cumulatively acknowledged.
func (t *TCPSender) Done() bool { return t.done }

// SndUna exposes the lowest unacknowledged sequence (for tests).
func (t *TCPSender) SndUna() int64 { return t.sndUna }

// CC exposes the congestion controller (for tests and instrumentation).
func (t *TCPSender) CC() CongestionControl { return t.cc }

func (t *TCPSender) trySend() {
	if t.done {
		return
	}
	wnd := int64(t.cc.Window())
	if wnd < int64(t.env.MSS) {
		wnd = int64(t.env.MSS)
	}
	for t.sndNxt < t.flow.Bytes && t.sndNxt-t.sndUna+int64(t.env.MSS) <= wnd {
		payload := t.env.MSS
		if remaining := t.flow.Bytes - t.sndNxt; remaining < int64(payload) {
			payload = int(remaining)
		}
		t.sendSegment(t.sndNxt, payload)
		t.sndNxt += int64(payload)
	}
	t.armRTO()
}

func (t *TCPSender) sendSegment(seq int64, payload int) {
	t.env.Inject(&netsim.Packet{
		ID:        t.env.NewPacketID(),
		FlowID:    t.flow.ID,
		Src:       t.flow.Src,
		Dst:       t.flow.Dst,
		Seq:       seq,
		Payload:   payload,
		Size:      payload + netsim.HeaderBytes,
		ECT:       t.ecn,
		Hash:      t.flow.Hash,
		SentAt:    t.env.Sim.Now(),
		FlowBytes: t.flow.Bytes,
	})
}

// HandleAck processes a cumulative ACK.
func (t *TCPSender) HandleAck(pkt *netsim.Packet) {
	if t.done {
		return
	}
	ack := pkt.AckSeq
	switch {
	case ack > t.sndUna:
		acked := ack - t.sndUna
		rtt := t.rttSample(pkt)
		t.sndUna = ack
		t.dupAcks = 0
		t.backoff = 0
		if t.inRecovery {
			if ack >= t.recover {
				t.inRecovery = false
			} else {
				// NewReno partial ACK: retransmit the next hole without
				// leaving recovery.
				t.sendSegment(t.sndUna, t.segLenAt(t.sndUna))
			}
		}
		t.cc.OnAck(acked, rtt, pkt.ECNEcho)
		if rtt > 0 && t.env.OnRTT != nil {
			t.env.OnRTT(t.flow, rtt.Seconds())
		}
		if t.sndUna >= t.flow.Bytes {
			t.complete()
			return
		}
		t.trySend()
	case ack == t.sndUna && t.sndNxt > t.sndUna:
		t.dupAcks++
		if t.dupAcks == 3 && !t.inRecovery {
			t.inRecovery = true
			t.recover = t.sndNxt
			t.cc.OnDupAckLoss()
			t.sendSegment(t.sndUna, t.segLenAt(t.sndUna))
			t.armRTO()
		}
	}
}

func (t *TCPSender) segLenAt(seq int64) int {
	payload := int64(t.env.MSS)
	if remaining := t.flow.Bytes - seq; remaining < payload {
		payload = remaining
	}
	return int(payload)
}

func (t *TCPSender) rttSample(pkt *netsim.Packet) sim.Time {
	if pkt.EchoTS == 0 {
		return 0
	}
	// The receiver echoes the data packet's transmit timestamp (RFC
	// 7323-style), so samples are valid even across retransmissions and
	// Karn's rule is unnecessary.
	rtt := t.env.Sim.Now() - pkt.EchoTS
	if rtt <= 0 {
		return 0
	}
	t.updateRTO(rtt)
	return rtt
}

func (t *TCPSender) updateRTO(rtt sim.Time) {
	if t.srtt == 0 {
		t.srtt = rtt
		t.rttvar = rtt / 2
	} else {
		diff := t.srtt - rtt
		if diff < 0 {
			diff = -diff
		}
		t.rttvar = (3*t.rttvar + diff) / 4
		t.srtt = (7*t.srtt + rtt) / 8
	}
	t.rto = t.srtt + 4*t.rttvar
	if t.rto < minRTO {
		t.rto = minRTO
	}
	if t.rto > maxRTO {
		t.rto = maxRTO
	}
}

func (t *TCPSender) armRTO() {
	t.env.Sim.Cancel(t.rtoEvent)
	t.rtoEvent = sim.EventRef{}
	if t.sndUna >= t.flow.Bytes || t.sndNxt == t.sndUna {
		return
	}
	timeout := t.rto << t.backoff
	if timeout > maxRTO {
		timeout = maxRTO
	}
	t.rtoEvent = t.env.Sim.After(timeout, t.onRTO)
}

func (t *TCPSender) onRTO() {
	t.rtoEvent = sim.EventRef{}
	if t.done || t.sndUna >= t.flow.Bytes {
		return
	}
	t.backoff++
	if t.backoff > 6 {
		t.backoff = 6
	}
	t.inRecovery = false
	t.dupAcks = 0
	t.cc.OnTimeout()
	// Go-back-N from the hole.
	t.sndNxt = t.sndUna
	t.sendSegment(t.sndUna, t.segLenAt(t.sndUna))
	t.sndNxt = t.sndUna + int64(t.segLenAt(t.sndUna))
	t.armRTO()
}

func (t *TCPSender) complete() {
	t.done = true
	t.env.Sim.Cancel(t.rtoEvent)
	t.rtoEvent = sim.EventRef{}
	if t.env.OnComplete != nil {
		t.env.OnComplete(t.flow)
	}
}
