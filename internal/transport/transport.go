// Package transport implements the end-host protocols evaluated by
// MimicNet: TCP New Reno (the base configuration), DCTCP, TCP Vegas, TCP
// Westwood, and a receiver-driven priority-based Homa-like protocol
// (paper §9, §9.4.2). Each protocol stresses the Mimic models
// differently—ECN bits, delay sensitivity, bandwidth estimation, and
// packet reordering via priorities.
//
// A transport moves one flow (a unidirectional byte transfer) between two
// hosts. The hosting environment supplies packet injection and timers; a
// Host demultiplexes arriving packets to per-flow endpoints.
package transport

import (
	"fmt"

	"mimicnet/internal/netsim"
	"mimicnet/internal/sim"
)

// Env is the execution environment handed to transport endpoints by the
// simulation builder.
type Env struct {
	Sim *sim.Simulator
	// Inject fills in routing state and sends the packet into the
	// network (or a Mimic model).
	Inject func(*netsim.Packet)
	// MSS is the maximum payload per packet.
	MSS int
	// BDPBytes is the estimated bandwidth-delay product, used for Homa's
	// unscheduled window and initial TCP ssthresh scaling.
	BDPBytes int

	// OnRTT, if non-nil, receives each valid RTT sample (seconds) taken
	// by a sender. The observable cluster wires this to the metrics
	// collector.
	OnRTT func(flow *Flow, seconds float64)
	// OnComplete, if non-nil, fires once when the sender has confirmed
	// delivery of all flow bytes.
	OnComplete func(flow *Flow)

	nextPktID uint64
}

// NewPacketID returns a unique packet ID within this environment.
func (e *Env) NewPacketID() uint64 {
	e.nextPktID++
	return e.nextPktID
}

// Flow identifies one transfer.
type Flow struct {
	ID    uint64
	Src   int
	Dst   int
	Bytes int64
	Hash  uint64 // ECMP hash shared by all packets of the flow
}

// String renders the flow for debugging.
func (f *Flow) String() string {
	return fmt.Sprintf("flow(%d %d->%d %dB)", f.ID, f.Src, f.Dst, f.Bytes)
}

// Sender drives one flow's send side.
type Sender interface {
	// Start begins transmission.
	Start()
	// HandleAck processes an arriving ACK or grant addressed to the
	// sender.
	HandleAck(pkt *netsim.Packet)
	// Done reports whether all bytes have been acknowledged.
	Done() bool
}

// Protocol constructs senders; the receive side is protocol-independent
// except for ECN echoing and granting, which the Receiver handles based
// on packet contents.
type Protocol interface {
	Name() string
	NewSender(env *Env, flow *Flow) Sender
	// UsesECN reports whether data packets should be ECN-capable.
	UsesECN() bool
	// QueueBands returns the number of switch priority bands the
	// protocol expects (1 for FIFO protocols).
	QueueBands() int
}

// Receiver implements the flow's receive side: cumulative ACKs with
// out-of-order tracking, ECN echoing, and (for Homa) grant generation.
type Receiver struct {
	env  *Env
	flow *Flow

	rcvNxt   int64
	ooo      map[int64]int64 // out-of-order segments: start -> end
	complete bool

	// granting state (Homa)
	granting   bool
	granted    int64
	grantPrios func(remaining int64) int

	// OnDeliver, if non-nil, receives payload byte counts as they arrive
	// in order (for throughput accounting).
	OnDeliver func(bytes int64)
}

// NewReceiver builds a receive endpoint for the flow.
func NewReceiver(env *Env, flow *Flow) *Receiver {
	return &Receiver{env: env, flow: flow, ooo: make(map[int64]int64)}
}

// RcvNxt returns the next expected in-order byte.
func (r *Receiver) RcvNxt() int64 { return r.rcvNxt }

// Complete reports whether all flow bytes arrived.
func (r *Receiver) Complete() bool { return r.complete }

// HandleData processes an arriving data packet and emits an ACK (and
// grants, when granting is enabled).
func (r *Receiver) HandleData(pkt *netsim.Packet) {
	start, end := pkt.Seq, pkt.Seq+int64(pkt.Payload)
	if end > r.rcvNxt {
		if start <= r.rcvNxt {
			r.advance(end)
		} else if cur, ok := r.ooo[start]; !ok || end > cur {
			r.ooo[start] = end
		}
	}
	if r.rcvNxt >= pkt.FlowBytes && pkt.FlowBytes > 0 {
		r.complete = true
	}
	r.sendAck(pkt)
	if r.granting {
		r.maybeGrant(pkt)
	}
}

func (r *Receiver) advance(end int64) {
	prev := r.rcvNxt
	r.rcvNxt = end
	// Coalesce any out-of-order segments now contiguous.
	for {
		merged := false
		for s, e := range r.ooo {
			if s <= r.rcvNxt {
				if e > r.rcvNxt {
					r.rcvNxt = e
				}
				delete(r.ooo, s)
				merged = true
			}
		}
		if !merged {
			break
		}
	}
	if r.OnDeliver != nil && r.rcvNxt > prev {
		r.OnDeliver(r.rcvNxt - prev)
	}
}

func (r *Receiver) sendAck(data *netsim.Packet) {
	var sack int64
	for _, e := range r.ooo {
		if e > sack {
			sack = e
		}
	}
	ack := &netsim.Packet{
		ID:       r.env.NewPacketID(),
		FlowID:   r.flow.ID,
		Src:      r.flow.Dst, // ACKs travel the reverse direction
		Dst:      r.flow.Src,
		IsAck:    true,
		AckSeq:   r.rcvNxt,
		SackHint: sack,
		Payload:  0,
		Size:     netsim.HeaderBytes,
		ECNEcho:  data.CE,
		EchoTS:   data.SentAt,
		Hash:     r.flow.Hash + 1, // reverse path may differ
		SentAt:   r.env.Sim.Now(),
	}
	r.env.Inject(ack)
}

// EnableGranting turns on Homa-style receiver-driven grants. prio maps
// remaining bytes to a priority band for granted data.
func (r *Receiver) EnableGranting(prio func(remaining int64) int) {
	r.granting = true
	r.grantPrios = prio
}

func (r *Receiver) maybeGrant(data *netsim.Packet) {
	total := data.FlowBytes
	if total == 0 {
		return
	}
	if r.granted == 0 {
		// The sender transmits one BDP unscheduled (paper's Homa); only
		// bytes beyond that need grants.
		r.granted = int64(r.env.BDPBytes)
		if r.granted > total {
			r.granted = total
		}
	}
	if r.granted >= total {
		return
	}
	// Keep one BDP of granted-but-unreceived data in flight.
	target := r.rcvNxt + int64(r.env.BDPBytes)
	if target > total {
		target = total
	}
	if target <= r.granted {
		return
	}
	r.granted = target
	prio := 0
	if r.grantPrios != nil {
		prio = r.grantPrios(total - r.rcvNxt)
	}
	r.env.Inject(&netsim.Packet{
		ID:        r.env.NewPacketID(),
		FlowID:    r.flow.ID,
		Src:       r.flow.Dst,
		Dst:       r.flow.Src,
		IsAck:     true,
		IsGrant:   true,
		AckSeq:    r.rcvNxt,
		GrantseqG: target,
		GrantPrio: prio,
		Size:      netsim.HeaderBytes,
		Priority:  0, // grants themselves ride the highest band
		EchoTS:    data.SentAt,
		Hash:      r.flow.Hash + 1,
		SentAt:    r.env.Sim.Now(),
	})
}

// Host demultiplexes packets arriving at one simulated host to its flow
// endpoints.
type Host struct {
	ID        int
	senders   map[uint64]Sender
	receivers map[uint64]*Receiver

	env     *Env
	newRecv func(flow *Flow) *Receiver
}

// NewHost creates a host-side demultiplexer. newRecv builds receive
// endpoints on demand for flows addressed to this host; it may be nil if
// the host only sends.
func NewHost(id int, env *Env, newRecv func(flow *Flow) *Receiver) *Host {
	return &Host{
		ID:        id,
		senders:   make(map[uint64]Sender),
		receivers: make(map[uint64]*Receiver),
		env:       env,
		newRecv:   newRecv,
	}
}

// AddSender registers the send side of a flow originating here.
func (h *Host) AddSender(flowID uint64, s Sender) { h.senders[flowID] = s }

// Receive dispatches an arriving packet.
func (h *Host) Receive(pkt *netsim.Packet) {
	if pkt.IsAck {
		if s, ok := h.senders[pkt.FlowID]; ok {
			s.HandleAck(pkt)
		}
		return
	}
	r, ok := h.receivers[pkt.FlowID]
	if !ok {
		if h.newRecv == nil {
			return
		}
		r = h.newRecv(&Flow{
			ID: pkt.FlowID, Src: pkt.Src, Dst: pkt.Dst,
			Bytes: pkt.FlowBytes, Hash: pkt.Hash,
		})
		h.receivers[pkt.FlowID] = r
	}
	r.HandleData(pkt)
}

// Receivers returns the host's receive endpoints (for inspection).
func (h *Host) Receivers() map[uint64]*Receiver { return h.receivers }
