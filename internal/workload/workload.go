// Package workload generates the synthetic traffic MimicNet requires: a
// per-host model of flow arrival, flow size, and cluster-level locality
// that is independent of the size of the network (paper §4.2). Because
// each host's demand derives from its own seeded stream, growing the
// data center from 2 clusters to N leaves every existing host's offered
// load untouched—the property that lets models trained at small scale
// transfer to large compositions.
package workload

import (
	"fmt"
	"math"
	"sort"

	"mimicnet/internal/sim"
	"mimicnet/internal/stats"
	"mimicnet/internal/topo"
)

// Flow is one generated transfer. When After is non-zero the flow is
// dependent: it starts Start after the flow with ID After completes
// (co-flow support; see coflow.go).
type Flow struct {
	ID    uint64
	Src   int
	Dst   int
	Bytes int64
	Start sim.Time
	After uint64
}

// Config parameterizes generation. The defaults mirror the paper's
// evaluation: 70% of bisection bandwidth, heavy-tailed flow sizes with a
// configurable mean (paper: 1.6 MB), and web-search-style locality.
type Config struct {
	Seed int64

	// Load is the target utilization as a fraction of each host's link
	// bandwidth (FatTrees have full bisection, so per-host load equals
	// bisection load).
	Load float64
	// HostLinkBps is the host link rate used to convert Load into a byte
	// arrival rate.
	HostLinkBps float64

	// MeanFlowBytes is the mean flow size. FlowSizes overrides the
	// default heavy-tailed distribution when non-nil.
	MeanFlowBytes float64
	FlowSizes     stats.Distribution

	// Locality: probability a flow's destination is in the same rack or
	// in the same cluster (different rack). The remainder crosses
	// clusters. Paper §4 assumes workloads may exhibit cluster-level
	// locality; these are the knobs.
	PIntraRack    float64
	PIntraCluster float64

	// Duration is the generation horizon.
	Duration sim.Time

	// MinFlowBytes/MaxFlowBytes clamp sampled sizes (0 = default clamp).
	MinFlowBytes, MaxFlowBytes int64
}

// DefaultConfig returns the paper-flavored configuration scaled by the
// provided mean flow size (pass 0 for the paper's 1.6 MB).
func DefaultConfig(meanFlowBytes float64) Config {
	if meanFlowBytes <= 0 {
		meanFlowBytes = 1.6e6
	}
	return Config{
		Seed:          1,
		Load:          0.70,
		HostLinkBps:   100e6,
		MeanFlowBytes: meanFlowBytes,
		PIntraRack:    0.3,
		PIntraCluster: 0.3,
		Duration:      sim.Second,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Load <= 0 || c.Load > 1.5:
		return fmt.Errorf("workload: load %v out of range", c.Load)
	case c.HostLinkBps <= 0:
		return fmt.Errorf("workload: non-positive link rate")
	case c.MeanFlowBytes <= 0 && c.FlowSizes == nil:
		return fmt.Errorf("workload: need a mean flow size or distribution")
	case c.PIntraRack < 0 || c.PIntraCluster < 0 || c.PIntraRack+c.PIntraCluster > 1:
		return fmt.Errorf("workload: invalid locality split (%v, %v)", c.PIntraRack, c.PIntraCluster)
	case c.Duration <= 0:
		return fmt.Errorf("workload: non-positive duration")
	}
	return nil
}

// sizeDist returns the flow size distribution: a heavy-tailed log-normal
// (sigma 1.8) matching the configured mean, clamped to sane bounds.
func (c Config) sizeDist() stats.Distribution {
	if c.FlowSizes != nil {
		return c.FlowSizes
	}
	const sigma = 1.8
	mu := math.Log(c.MeanFlowBytes) - sigma*sigma/2
	return stats.LogNormal{Mu: mu, Sigma: sigma}
}

func (c Config) clamp(v float64) int64 {
	min, max := c.MinFlowBytes, c.MaxFlowBytes
	if min <= 0 {
		min = 100
	}
	if max <= 0 {
		max = int64(40 * c.MeanFlowBytes)
		if max < min {
			max = min
		}
	}
	b := int64(v)
	if b < min {
		b = min
	}
	if b > max {
		b = max
	}
	return b
}

// Generate produces the full flow schedule for a topology, sorted by
// start time. Flow IDs encode (src host, per-host sequence) so they are
// stable under scaling.
func Generate(t *topo.Topology, cfg Config) ([]Flow, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var flows []Flow
	root := stats.NewStream(cfg.Seed)
	sizes := cfg.sizeDist()
	meanSize := sizes.Mean()
	if math.IsInf(meanSize, 1) || meanSize <= 0 {
		meanSize = cfg.MeanFlowBytes
	}
	// Per-host arrival rate: load * link byte rate / mean flow size.
	bytesPerSec := cfg.Load * cfg.HostLinkBps / 8
	meanInterarrival := meanSize / bytesPerSec // seconds

	for src := 0; src < t.Hosts(); src++ {
		// Each host derives its own stream from (seed, host index) so the
		// schedule of existing hosts is invariant under adding clusters.
		hs := root.Derive(fmt.Sprintf("host-%d", src))
		at := sim.Time(0)
		seq := uint64(0)
		for {
			gap := stats.Exponential{MeanVal: meanInterarrival}.Sample(hs)
			at += sim.FromSeconds(gap)
			if at >= cfg.Duration {
				break
			}
			dst := pickDst(t, src, hs, cfg)
			if dst == src {
				continue
			}
			flows = append(flows, Flow{
				ID:    FlowID(src, seq),
				Src:   src,
				Dst:   dst,
				Bytes: cfg.clamp(sizes.Sample(hs)),
				Start: at,
			})
			seq++
		}
	}
	sort.Slice(flows, func(i, j int) bool {
		if flows[i].Start != flows[j].Start {
			return flows[i].Start < flows[j].Start
		}
		return flows[i].ID < flows[j].ID
	})
	return flows, nil
}

// FlowID packs a stable flow identity from source host and sequence.
func FlowID(src int, seq uint64) uint64 {
	return uint64(src)<<40 | (seq & (1<<40 - 1))
}

// FlowSrc recovers the source host from a FlowID.
func FlowSrc(id uint64) int { return int(id >> 40) }

func pickDst(t *topo.Topology, src int, s *stats.Stream, cfg Config) int {
	c, r := t.ClusterOf(src), t.RackOf(src)
	tc := t.Config()
	roll := s.Float64()
	switch {
	case roll < cfg.PIntraRack && tc.HostsPerRack > 1:
		// Same rack, different host.
		slot := s.Intn(tc.HostsPerRack - 1)
		if slot >= t.SlotOf(src) {
			slot++
		}
		return t.HostID(c, r, slot)
	case roll < cfg.PIntraRack+cfg.PIntraCluster && tc.RacksPerCluster > 1:
		// Same cluster, different rack.
		rack := s.Intn(tc.RacksPerCluster - 1)
		if rack >= r {
			rack++
		}
		return t.HostID(c, rack, s.Intn(tc.HostsPerRack))
	default:
		if tc.Clusters == 1 {
			// No remote clusters: fall back to any other host.
			dst := s.Intn(t.Hosts() - 1)
			if dst >= src {
				dst++
			}
			return dst
		}
		cluster := s.Intn(tc.Clusters - 1)
		if cluster >= c {
			cluster++
		}
		return t.HostID(cluster, s.Intn(tc.RacksPerCluster), s.Intn(tc.HostsPerRack))
	}
}

// Stats summarizes a generated schedule (for tests and reporting).
type Stats struct {
	Flows        int
	TotalBytes   int64
	MeanBytes    float64
	InterCluster int
	IntraCluster int
	IntraRack    int
}

// Summarize computes schedule statistics.
func Summarize(t *topo.Topology, flows []Flow) Stats {
	var st Stats
	st.Flows = len(flows)
	for _, f := range flows {
		st.TotalBytes += f.Bytes
		switch {
		case t.ClusterOf(f.Src) != t.ClusterOf(f.Dst):
			st.InterCluster++
		case t.RackOf(f.Src) != t.RackOf(f.Dst):
			st.IntraCluster++
		default:
			st.IntraRack++
		}
	}
	if st.Flows > 0 {
		st.MeanBytes = float64(st.TotalBytes) / float64(st.Flows)
	}
	return st
}
