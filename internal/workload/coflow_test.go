package workload

import (
	"testing"

	"mimicnet/internal/sim"
)

func coflowConfig() CoflowConfig {
	return CoflowConfig{
		Seed: 3, Jobs: 3, Stages: 4, Width: 2,
		FlowBytes: 10_000, ArrivalGap: 10 * sim.Millisecond,
		StageDelay: sim.Millisecond,
	}
}

func TestGenerateCoflows(t *testing.T) {
	tp := testTopo(2)
	flows, err := GenerateCoflows(tp, coflowConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(flows) != 3*4*2 {
		t.Fatalf("flows = %d, want 24", len(flows))
	}
	byID := make(map[uint64]Flow)
	roots := 0
	for _, f := range flows {
		if f.Src == f.Dst {
			t.Fatal("self flow")
		}
		if f.Bytes != 10_000 {
			t.Fatalf("flow bytes = %d", f.Bytes)
		}
		if _, dup := byID[f.ID]; dup {
			t.Fatalf("duplicate flow ID %d", f.ID)
		}
		byID[f.ID] = f
		if f.After == 0 {
			roots++
		}
	}
	if roots != 3*2 {
		t.Errorf("roots = %d, want 6 (first stage of each job)", roots)
	}
	// Every dependency must reference an existing flow.
	for _, f := range flows {
		if f.After != 0 {
			if _, ok := byID[f.After]; !ok {
				t.Fatalf("flow %d depends on unknown parent %d", f.ID, f.After)
			}
		}
	}
	if got := CriticalPathStages(flows); got != 4 {
		t.Errorf("critical path = %d, want 4 stages", got)
	}
}

func TestCoflowValidation(t *testing.T) {
	bad := []CoflowConfig{
		{},
		{Jobs: 1, Stages: 1, Width: 0, FlowBytes: 1},
		{Jobs: 1, Stages: 1, Width: 1, FlowBytes: 0},
	}
	for i, cfg := range bad {
		if _, err := GenerateCoflows(testTopo(2), cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestCoflowIDsDoNotCollideWithBackground(t *testing.T) {
	tp := testTopo(2)
	bg, err := Generate(tp, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	cf, err := GenerateCoflows(tp, coflowConfig())
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[uint64]bool, len(bg))
	for _, f := range bg {
		seen[f.ID] = true
	}
	for _, f := range cf {
		if seen[f.ID] {
			t.Fatalf("coflow ID %d collides with background", f.ID)
		}
	}
}

func TestMergeSchedulesOrdering(t *testing.T) {
	tp := testTopo(2)
	bg, _ := Generate(tp, testConfig())
	cf, _ := GenerateCoflows(tp, coflowConfig())
	merged := MergeSchedules(bg, cf)
	if len(merged) != len(bg)+len(cf) {
		t.Fatalf("merged = %d", len(merged))
	}
	// Roots come first, sorted by start.
	sawDep := false
	var lastRoot sim.Time
	for _, f := range merged {
		if f.After != 0 {
			sawDep = true
			continue
		}
		if sawDep {
			t.Fatal("root flow after dependent flow")
		}
		if f.Start < lastRoot {
			t.Fatal("roots not sorted by start")
		}
		lastRoot = f.Start
	}
}

func TestCriticalPathNoDeps(t *testing.T) {
	tp := testTopo(2)
	bg, _ := Generate(tp, testConfig())
	if got := CriticalPathStages(bg); got != 1 {
		t.Errorf("dependency-free critical path = %d, want 1", got)
	}
	if CriticalPathStages(nil) != 0 {
		t.Error("empty critical path should be 0")
	}
}
