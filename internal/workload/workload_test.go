package workload

import (
	"math"
	"testing"

	"mimicnet/internal/sim"
	"mimicnet/internal/stats"
	"mimicnet/internal/topo"
)

func testTopo(clusters int) *topo.Topology {
	return topo.New(topo.Config{
		Clusters:        clusters,
		RacksPerCluster: 2,
		HostsPerRack:    4,
		AggPerCluster:   2,
		CoresPerAgg:     2,
	})
}

func testConfig() Config {
	cfg := DefaultConfig(50_000)
	cfg.Duration = 500 * sim.Millisecond
	return cfg
}

func TestGenerateBasics(t *testing.T) {
	tp := testTopo(2)
	flows, err := Generate(tp, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(flows) == 0 {
		t.Fatal("no flows generated")
	}
	for i, f := range flows {
		if f.Src == f.Dst {
			t.Errorf("flow %d is a self-flow", i)
		}
		if f.Src < 0 || f.Src >= tp.Hosts() || f.Dst < 0 || f.Dst >= tp.Hosts() {
			t.Errorf("flow %d has out-of-range endpoints", i)
		}
		if f.Bytes <= 0 {
			t.Errorf("flow %d has %d bytes", i, f.Bytes)
		}
		if f.Start < 0 || f.Start >= testConfig().Duration {
			t.Errorf("flow %d starts at %v", i, f.Start)
		}
		if i > 0 && flows[i].Start < flows[i-1].Start {
			t.Error("flows not sorted by start time")
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	tp := testTopo(2)
	a, _ := Generate(tp, testConfig())
	b, _ := Generate(tp, testConfig())
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("flow %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	cfg := testConfig()
	cfg.Seed = 99
	c, _ := Generate(tp, cfg)
	if len(c) == len(a) {
		same := true
		for i := range c {
			if c[i] != a[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical schedules")
		}
	}
}

// The core scale-independence property (paper §4.2): adding clusters must
// not change existing hosts' flow arrival times or sizes.
func TestScaleIndependence(t *testing.T) {
	small, _ := Generate(testTopo(2), testConfig())
	large, _ := Generate(testTopo(8), testConfig())

	type key struct {
		id    uint64
		start sim.Time
		bytes int64
	}
	smallSet := make(map[key]bool)
	hostsInSmall := testTopo(2).Hosts()
	for _, f := range small {
		smallSet[key{f.ID, f.Start, f.Bytes}] = true
	}
	matched := 0
	for _, f := range large {
		if f.Src < hostsInSmall {
			if smallSet[key{f.ID, f.Start, f.Bytes}] {
				matched++
			}
		}
	}
	// Every small-topology flow should reappear with identical timing and
	// size at large scale (destinations may differ: more choices).
	if matched != len(small) {
		t.Errorf("only %d/%d flows preserved under scaling", matched, len(small))
	}
}

func TestMeanFlowSizeApproximatesTarget(t *testing.T) {
	tp := testTopo(4)
	cfg := testConfig()
	cfg.Duration = 2 * sim.Second
	flows, _ := Generate(tp, cfg)
	st := Summarize(tp, flows)
	if st.Flows < 100 {
		t.Fatalf("too few flows (%d) for a mean check", st.Flows)
	}
	// Heavy-tailed with clamping: allow a wide band.
	if st.MeanBytes < cfg.MeanFlowBytes*0.4 || st.MeanBytes > cfg.MeanFlowBytes*2.5 {
		t.Errorf("mean flow bytes = %v, want within [0.4, 2.5]x of %v", st.MeanBytes, cfg.MeanFlowBytes)
	}
}

func TestOfferedLoadApproximatesTarget(t *testing.T) {
	tp := testTopo(2)
	cfg := testConfig()
	cfg.Duration = 2 * sim.Second
	flows, _ := Generate(tp, cfg)
	st := Summarize(tp, flows)
	perHostBps := float64(st.TotalBytes) * 8 / cfg.Duration.Seconds() / float64(tp.Hosts())
	target := cfg.Load * cfg.HostLinkBps
	if perHostBps < target*0.3 || perHostBps > target*3 {
		t.Errorf("offered per-host load = %.3g bps, want ~%.3g", perHostBps, target)
	}
}

func TestLocalitySplit(t *testing.T) {
	tp := testTopo(4)
	cfg := testConfig()
	cfg.Duration = 2 * sim.Second
	cfg.PIntraRack = 0.5
	cfg.PIntraCluster = 0.3
	flows, _ := Generate(tp, cfg)
	st := Summarize(tp, flows)
	total := float64(st.Flows)
	if got := float64(st.IntraRack) / total; math.Abs(got-0.5) > 0.08 {
		t.Errorf("intra-rack fraction = %v, want ~0.5", got)
	}
	if got := float64(st.IntraCluster) / total; math.Abs(got-0.3) > 0.08 {
		t.Errorf("intra-cluster fraction = %v, want ~0.3", got)
	}
	if got := float64(st.InterCluster) / total; math.Abs(got-0.2) > 0.08 {
		t.Errorf("inter-cluster fraction = %v, want ~0.2", got)
	}
}

func TestSingleClusterFallback(t *testing.T) {
	tp := testTopo(1)
	cfg := testConfig()
	cfg.PIntraRack = 0
	cfg.PIntraCluster = 0 // all flows want inter-cluster, but there is none
	flows, err := Generate(tp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range flows {
		if f.Src == f.Dst {
			t.Fatal("self flow in single-cluster fallback")
		}
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	good := testConfig()
	bad := []func(*Config){
		func(c *Config) { c.Load = 0 },
		func(c *Config) { c.Load = 2 },
		func(c *Config) { c.HostLinkBps = 0 },
		func(c *Config) { c.MeanFlowBytes = 0; c.FlowSizes = nil },
		func(c *Config) { c.PIntraRack = 0.8; c.PIntraCluster = 0.5 },
		func(c *Config) { c.PIntraRack = -0.1 },
		func(c *Config) { c.Duration = 0 },
	}
	for i, mut := range bad {
		cfg := good
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d passed validation", i)
		}
		if _, err := Generate(testTopo(2), cfg); err == nil {
			t.Errorf("Generate accepted bad config %d", i)
		}
	}
}

func TestCustomSizeDistribution(t *testing.T) {
	cfg := testConfig()
	cfg.FlowSizes = stats.Constant{Value: 5000}
	flows, _ := Generate(testTopo(2), cfg)
	for _, f := range flows {
		if f.Bytes != 5000 {
			t.Fatalf("flow bytes = %d, want constant 5000", f.Bytes)
		}
	}
}

func TestClampBounds(t *testing.T) {
	cfg := testConfig()
	cfg.MinFlowBytes = 1000
	cfg.MaxFlowBytes = 2000
	flows, _ := Generate(testTopo(2), cfg)
	for _, f := range flows {
		if f.Bytes < 1000 || f.Bytes > 2000 {
			t.Fatalf("flow bytes %d outside clamp", f.Bytes)
		}
	}
}

func TestFlowIDRoundTrip(t *testing.T) {
	id := FlowID(123, 456)
	if FlowSrc(id) != 123 {
		t.Errorf("FlowSrc = %d", FlowSrc(id))
	}
	if FlowID(1, 1) == FlowID(1, 2) || FlowID(1, 1) == FlowID(2, 1) {
		t.Error("FlowID collisions")
	}
}

func TestSummarizeEmpty(t *testing.T) {
	st := Summarize(testTopo(2), nil)
	if st.Flows != 0 || st.MeanBytes != 0 {
		t.Error("empty summarize should be zero")
	}
}
