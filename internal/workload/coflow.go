package workload

import (
	"fmt"

	"mimicnet/internal/sim"
	"mimicnet/internal/stats"
	"mimicnet/internal/topo"
)

// Co-flows: groups of flows with ordering dependencies, the workload
// structure of MapReduce and BSP-style data processing. The paper lists
// co-flow modeling as future work (Appendix H: "the ordering and
// dependencies between observable flows are still simulated in full
// fidelity") — this file provides exactly that: dependent flows whose
// start is gated on a parent flow's completion in the full-fidelity
// simulation.

// CoflowConfig describes a synthetic shuffle-style co-flow workload:
// Jobs independent jobs, each consisting of Stages sequential stages of
// Width parallel flows. Stage s+1's flows start when all of stage s's
// flows complete (enforced per-predecessor: each flow waits on one
// assigned parent, a common simplification that preserves the critical
// path).
type CoflowConfig struct {
	Seed       int64
	Jobs       int
	Stages     int
	Width      int // parallel flows per stage
	FlowBytes  int64
	ArrivalGap sim.Time // gap between job submissions
	// StageDelay is computation time between a parent finishing and the
	// dependent flow starting.
	StageDelay sim.Time
}

// Validate reports configuration errors.
func (c CoflowConfig) Validate() error {
	switch {
	case c.Jobs < 1 || c.Stages < 1 || c.Width < 1:
		return fmt.Errorf("workload: coflow needs jobs/stages/width >= 1")
	case c.FlowBytes <= 0:
		return fmt.Errorf("workload: coflow needs positive flow bytes")
	}
	return nil
}

// GenerateCoflows builds the dependent flow set. Flows in the first stage
// of each job carry absolute Start times; later stages carry After (the
// parent flow ID) with Start holding the relative delay after the parent
// completes.
func GenerateCoflows(t *topo.Topology, cfg CoflowConfig) ([]Flow, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := stats.NewStream(cfg.Seed).Derive("coflow")
	var flows []Flow
	// Per-host sequence numbers continue above the range the background
	// generator uses so IDs never collide (it numbers from 0 upward).
	const seqBase = 1 << 30
	seq := make(map[int]uint64)
	nextID := func(src int) uint64 {
		id := FlowID(src, seqBase+seq[src])
		seq[src]++
		return id
	}
	for j := 0; j < cfg.Jobs; j++ {
		submit := sim.Time(j) * cfg.ArrivalGap
		var prev []Flow
		for s := 0; s < cfg.Stages; s++ {
			var stage []Flow
			for wIdx := 0; wIdx < cfg.Width; wIdx++ {
				src := rng.Intn(t.Hosts())
				dst := rng.Intn(t.Hosts() - 1)
				if dst >= src {
					dst++
				}
				f := Flow{
					ID:    nextID(src),
					Src:   src,
					Dst:   dst,
					Bytes: cfg.FlowBytes,
				}
				if s == 0 {
					f.Start = submit
				} else {
					f.After = prev[wIdx%len(prev)].ID
					f.Start = cfg.StageDelay // relative to parent completion
				}
				stage = append(stage, f)
			}
			flows = append(flows, stage...)
			prev = stage
		}
	}
	return flows, nil
}

// MergeSchedules combines background traffic with co-flows, keeping
// root-flow time order (dependent flows are scheduled at runtime).
func MergeSchedules(background, coflows []Flow) []Flow {
	out := make([]Flow, 0, len(background)+len(coflows))
	out = append(out, background...)
	out = append(out, coflows...)
	// Stable ordering: roots by start time, dependents after (they are
	// started by the completion hook, not the scheduler, so position only
	// matters for determinism of iteration).
	sortFlows(out)
	return out
}

func sortFlows(flows []Flow) {
	// insertion-free: use sort.Slice equivalent without importing sort in
	// two places — small helper for clarity.
	lessThan := func(a, b Flow) bool {
		aDep, bDep := a.After != 0, b.After != 0
		if aDep != bDep {
			return !aDep // roots first
		}
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		return a.ID < b.ID
	}
	for i := 1; i < len(flows); i++ {
		for j := i; j > 0 && lessThan(flows[j], flows[j-1]); j-- {
			flows[j], flows[j-1] = flows[j-1], flows[j]
		}
	}
}

// CriticalPathStages returns the maximum dependency depth of the flow
// set (1 for a dependency-free schedule), a sanity metric for tests.
func CriticalPathStages(flows []Flow) int {
	depth := make(map[uint64]int, len(flows))
	byID := make(map[uint64]Flow, len(flows))
	for _, f := range flows {
		byID[f.ID] = f
	}
	var depthOf func(id uint64, guard int) int
	depthOf = func(id uint64, guard int) int {
		if guard > len(flows) {
			return guard // cycle guard; malformed input
		}
		if d, ok := depth[id]; ok {
			return d
		}
		f, ok := byID[id]
		if !ok {
			return 0
		}
		d := 1
		if f.After != 0 {
			d = depthOf(f.After, guard+1) + 1
		}
		depth[id] = d
		return d
	}
	max := 0
	for _, f := range flows {
		if d := depthOf(f.ID, 0); d > max {
			max = d
		}
	}
	return max
}
