package sim

import (
	"fmt"
	"testing"
)

// TestRemoteTieOrdering pins the PDES tie-break contract: remote events
// arriving at one LP with the SAME timestamp execute in (time, source
// LP, source sequence) order, regardless of worker count or the
// wall-clock order the sends happened to land in the inbox. This is the
// rule that makes egress-direction engines — where several model-driven
// LPs re-materialize packets at the core LP at identical nanoseconds —
// bitwise worker-invariant, so it is asserted, not just documented.
func TestRemoteTieOrdering(t *testing.T) {
	const (
		lookahead = 10
		senders   = 3
		perSender = 4
		tieA      = Time(100) // every sender hits both tie times
		tieB      = Time(200)
	)
	for _, workers := range []int{1, 2, 4} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			p := NewParallel(senders+1, lookahead)
			p.NumWorkers = workers
			target := p.LPs[0]

			type arrival struct {
				at       Time
				src, seq int
			}
			var got []arrival // appended only by LP 0's execution: no lock needed

			for s := 1; s <= senders; s++ {
				lp := p.LPs[s]
				// Stagger the local send instants (later LPs send earlier)
				// so inbox arrival order correlates with nothing useful;
				// the sequence numbers still count per-LP send order.
				for k := 0; k < perSender; k++ {
					k := k
					src := s
					sendAt := Time(senders - s + 1 + k) // within the first window
					lp.Sim.At(sendAt, func() {
						lp.SendTo(target, tieA, func() {
							got = append(got, arrival{tieA, src, 2 * k})
						})
						lp.SendTo(target, tieB, func() {
							got = append(got, arrival{tieB, src, 2*k + 1})
						})
					})
				}
			}
			p.Run(300)

			want := len(got)
			if want != senders*perSender*2 {
				t.Fatalf("delivered %d remote events, want %d", want, senders*perSender*2)
			}
			for i := 1; i < len(got); i++ {
				a, b := got[i-1], got[i]
				ok := a.at < b.at ||
					(a.at == b.at && a.src < b.src) ||
					(a.at == b.at && a.src == b.src && a.seq < b.seq)
				if !ok {
					t.Fatalf("tie order violated at %d: (%d,%d,%d) before (%d,%d,%d); full order %v",
						i, a.at, a.src, a.seq, b.at, b.src, b.seq, got)
				}
			}
		})
	}
}
