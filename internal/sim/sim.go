// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel plays the role OMNeT++ plays for the original MimicNet: every
// component of the simulated network distills its behavior into events that
// fire at a designated simulated time. Events scheduled for the same time
// fire in scheduling order, which—together with seeded randomness—makes
// whole-simulation runs bit-for-bit reproducible.
//
// The hot path is allocation-free in steady state: Event records come from
// a per-simulator free list and are recycled the moment they fire or are
// canceled, and the pending queue is a 4-ary min-heap of inline
// (time, seq) keys, so ordering decisions never chase the Event pointer
// and no container/heap interface boxing occurs.
package sim

import (
	"fmt"
)

// Time is a simulated timestamp in nanoseconds. It is unrelated to wall
// clock time: a Simulator may process hours of simulated Time in seconds,
// or vice versa.
type Time int64

// Common durations, mirroring time.Duration but as sim.Time.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// FromSeconds converts floating-point seconds to a Time.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

// String formats the time as seconds with nanosecond precision.
func (t Time) String() string { return fmt.Sprintf("%.9fs", t.Seconds()) }

// Event is a pooled callback record. Callers never hold *Event directly;
// At and After return an EventRef handle whose generation counter makes
// Cancel safe even after the record has been recycled and reused.
type Event struct {
	fn   func()
	at   Time
	gen  uint32
	next *Event // free-list link
}

// EventRef is a cancelable handle to a scheduled event. The zero value is
// an inert reference: canceling it is a no-op. A ref left around after its
// event fired (or was canceled) is likewise inert—the generation counter
// no longer matches, so Cancel cannot touch whatever the recycled record
// is now scheduled as.
type EventRef struct {
	e   *Event
	gen uint32
}

// Scheduled reports whether the referenced event is still pending.
func (r EventRef) Scheduled() bool { return r.e != nil && r.e.gen == r.gen }

// At returns the time the referenced event is scheduled to fire, or -1 if
// the event already fired or was canceled.
func (r EventRef) At() Time {
	if !r.Scheduled() {
		return -1
	}
	return r.e.at
}

// heapEntry is one pending-queue slot. The ordering key (at, seq) is
// stored inline so sift operations compare without touching the Event.
// gen snapshots the event's generation at scheduling time; a mismatch at
// pop time means the entry was canceled (and the record possibly reused).
type heapEntry struct {
	at  Time
	seq uint64
	e   *Event
	gen uint32
}

// poolBlock is how many Event records one free-list refill allocates.
const poolBlock = 256

// Simulator owns the event queue and the simulated clock.
// The zero value is not usable; call New.
type Simulator struct {
	now       Time
	heap      []heapEntry
	seq       uint64
	processed uint64
	stopped   bool
	free      *Event // free list of recycled Event records

	tickEvery uint64
	tick      func(now Time, processed uint64) (stop bool)
}

// SetTicker installs a hook called every `every` processed events during
// RunUntil with the current clock and event count. Returning true stops
// the run after the current event, leaving pending events queued — the
// mechanism behind cooperative cancellation (cluster.RunContext) and
// streaming progress. The hook only observes, so installing one never
// changes results; pass a nil fn (or every == 0) to clear it.
func (s *Simulator) SetTicker(every uint64, fn func(now Time, processed uint64) bool) {
	if fn == nil || every == 0 {
		s.tickEvery, s.tick = 0, nil
		return
	}
	s.tickEvery, s.tick = every, fn
}

// New returns an empty simulator at time zero.
func New() *Simulator {
	return &Simulator{}
}

// Now returns the current simulated time.
func (s *Simulator) Now() Time { return s.now }

// Processed returns the number of events executed so far. It is the
// simulator's measure of work done, used by the scalability experiments.
func (s *Simulator) Processed() uint64 { return s.processed }

// Pending returns the number of events still queued (including canceled
// events that have not yet been discarded).
func (s *Simulator) Pending() int { return len(s.heap) }

// alloc takes an Event record from the free list, refilling it with a
// block allocation when empty so steady-state scheduling allocates
// nothing.
func (s *Simulator) alloc() *Event {
	if s.free == nil {
		block := make([]Event, poolBlock)
		for i := range block {
			block[i].next = s.free
			s.free = &block[i]
		}
	}
	e := s.free
	s.free = e.next
	e.next = nil
	return e
}

// recycle invalidates every outstanding EventRef to e and returns the
// record to the free list.
func (s *Simulator) recycle(e *Event) {
	e.gen++
	e.fn = nil
	e.next = s.free
	s.free = e
}

// At schedules fn to run at absolute simulated time t. Scheduling in the
// past panics: it indicates a causality bug in the caller.
func (s *Simulator) At(t Time, fn func()) EventRef {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, s.now))
	}
	e := s.alloc()
	e.at = t
	e.fn = fn
	s.heap = append(s.heap, heapEntry{at: t, seq: s.seq, e: e, gen: e.gen})
	s.seq++
	s.siftUp(len(s.heap) - 1)
	return EventRef{e: e, gen: e.gen}
}

// After schedules fn to run d after the current simulated time.
func (s *Simulator) After(d Time, fn func()) EventRef {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return s.At(s.now+d, fn)
}

// Cancel prevents a pending event from firing. Canceling a zero ref, or a
// ref whose event already fired or was already canceled, is a no-op. The
// record is recycled immediately; its stale heap entry is discarded by
// generation mismatch when it surfaces.
func (s *Simulator) Cancel(r EventRef) {
	if r.e == nil || r.e.gen != r.gen {
		return
	}
	s.recycle(r.e)
}

// Stop makes Run return after the currently executing event completes.
func (s *Simulator) Stop() { s.stopped = true }

// Run executes events until the queue is empty or Stop is called.
func (s *Simulator) Run() {
	s.RunUntil(Time(1<<63 - 1))
}

// RunUntil executes events with timestamps <= limit. The clock is left at
// the last executed event's time (or limit if that is earlier than the next
// pending event, so repeated RunUntil calls advance monotonically).
func (s *Simulator) RunUntil(limit Time) {
	s.stopped = false
	for len(s.heap) > 0 && !s.stopped {
		top := s.heap[0]
		if top.at > limit {
			break
		}
		s.pop()
		if top.e.gen != top.gen {
			continue // canceled; record already recycled
		}
		s.now = top.at
		s.processed++
		fn := top.e.fn
		s.recycle(top.e)
		fn()
		if s.tick != nil && s.processed%s.tickEvery == 0 && s.tick(s.now, s.processed) {
			s.stopped = true
		}
	}
	if !s.stopped && s.now < limit && limit < Time(1<<62) {
		s.now = limit
	}
}

// Step executes exactly one non-canceled event if one is pending and
// reports whether it did.
func (s *Simulator) Step() bool {
	for len(s.heap) > 0 {
		top := s.heap[0]
		s.pop()
		if top.e.gen != top.gen {
			continue
		}
		s.now = top.at
		s.processed++
		fn := top.e.fn
		s.recycle(top.e)
		fn()
		return true
	}
	return false
}

// The pending queue is a 4-ary min-heap ordered by (at, seq). 4-ary wins
// over binary here because sift-down dominates (every pop sifts a leaf
// from the root) and the shallower tree does fewer cache-missing levels;
// the four children share one 32-byte-entry cache span.

func entryLess(a, b *heapEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (s *Simulator) siftUp(i int) {
	h := s.heap
	for i > 0 {
		parent := (i - 1) / 4
		if !entryLess(&h[i], &h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

// pop removes the minimum entry (the caller has already copied h[0]).
func (s *Simulator) pop() {
	h := s.heap
	n := len(h) - 1
	h[0] = h[n]
	h[n] = heapEntry{} // release the Event reference
	s.heap = h[:n]
	if n > 1 {
		s.siftDown(0)
	}
}

func (s *Simulator) siftDown(i int) {
	h := s.heap
	n := len(h)
	for {
		first := 4*i + 1
		if first >= n {
			return
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if entryLess(&h[c], &h[min]) {
				min = c
			}
		}
		if !entryLess(&h[min], &h[i]) {
			return
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
}
