// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel plays the role OMNeT++ plays for the original MimicNet: every
// component of the simulated network distills its behavior into events that
// fire at a designated simulated time. Events scheduled for the same time
// fire in scheduling order, which—together with seeded randomness—makes
// whole-simulation runs bit-for-bit reproducible.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is a simulated timestamp in nanoseconds. It is unrelated to wall
// clock time: a Simulator may process hours of simulated Time in seconds,
// or vice versa.
type Time int64

// Common durations, mirroring time.Duration but as sim.Time.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// FromSeconds converts floating-point seconds to a Time.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

// String formats the time as seconds with nanosecond precision.
func (t Time) String() string { return fmt.Sprintf("%.9fs", t.Seconds()) }

// Event is a scheduled callback. Events are created by Simulator.At and
// Simulator.After and may be canceled before they fire.
type Event struct {
	at       Time
	seq      uint64
	fn       func()
	canceled bool
	index    int // heap index; -1 once popped
}

// At returns the simulated time the event is scheduled to fire.
func (e *Event) At() Time { return e.at }

// Simulator owns the event queue and the simulated clock.
// The zero value is not usable; call New.
type Simulator struct {
	now       Time
	queue     eventQueue
	seq       uint64
	processed uint64
	stopped   bool
}

// New returns an empty simulator at time zero.
func New() *Simulator {
	return &Simulator{}
}

// Now returns the current simulated time.
func (s *Simulator) Now() Time { return s.now }

// Processed returns the number of events executed so far. It is the
// simulator's measure of work done, used by the scalability experiments.
func (s *Simulator) Processed() uint64 { return s.processed }

// Pending returns the number of events still queued (including canceled
// events that have not yet been discarded).
func (s *Simulator) Pending() int { return len(s.queue) }

// At schedules fn to run at absolute simulated time t. Scheduling in the
// past panics: it indicates a causality bug in the caller.
func (s *Simulator) At(t Time, fn func()) *Event {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, s.now))
	}
	e := &Event{at: t, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.queue, e)
	return e
}

// After schedules fn to run d after the current simulated time.
func (s *Simulator) After(d Time, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return s.At(s.now+d, fn)
}

// Cancel prevents a pending event from firing. Canceling an event that
// already fired (or was already canceled) is a no-op.
func (s *Simulator) Cancel(e *Event) {
	if e == nil || e.canceled {
		return
	}
	e.canceled = true
	e.fn = nil // release references early
}

// Stop makes Run return after the currently executing event completes.
func (s *Simulator) Stop() { s.stopped = true }

// Run executes events until the queue is empty or Stop is called.
func (s *Simulator) Run() {
	s.RunUntil(Time(1<<63 - 1))
}

// RunUntil executes events with timestamps <= limit. The clock is left at
// the last executed event's time (or limit if that is earlier than the next
// pending event, so repeated RunUntil calls advance monotonically).
func (s *Simulator) RunUntil(limit Time) {
	s.stopped = false
	for len(s.queue) > 0 && !s.stopped {
		next := s.queue[0]
		if next.at > limit {
			break
		}
		heap.Pop(&s.queue)
		if next.canceled {
			continue
		}
		s.now = next.at
		s.processed++
		next.fn()
	}
	if s.now < limit && limit < Time(1<<62) {
		s.now = limit
	}
}

// Step executes exactly one non-canceled event if one is pending and
// reports whether it did.
func (s *Simulator) Step() bool {
	for len(s.queue) > 0 {
		next := heap.Pop(&s.queue).(*Event)
		if next.canceled {
			continue
		}
		s.now = next.at
		s.processed++
		next.fn()
		return true
	}
	return false
}

// eventQueue is a binary min-heap ordered by (time, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}
