package sim

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestTimeConversions(t *testing.T) {
	if got := (2 * Second).Seconds(); got != 2.0 {
		t.Errorf("Seconds() = %v, want 2.0", got)
	}
	if got := FromSeconds(0.5); got != 500*Millisecond {
		t.Errorf("FromSeconds(0.5) = %v, want 500ms", got)
	}
	if s := (1500 * Millisecond).String(); s != "1.500000000s" {
		t.Errorf("String() = %q", s)
	}
}

func TestRunExecutesInTimeOrder(t *testing.T) {
	s := New()
	var order []int
	s.At(30, func() { order = append(order, 3) })
	s.At(10, func() { order = append(order, 1) })
	s.At(20, func() { order = append(order, 2) })
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v, want [1 2 3]", order)
	}
	if s.Now() != 30 {
		t.Errorf("Now() = %v, want 30", s.Now())
	}
	if s.Processed() != 3 {
		t.Errorf("Processed() = %d, want 3", s.Processed())
	}
}

func TestSameTimeEventsFireInScheduleOrder(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d, want %d (FIFO tie-break)", i, v, i)
		}
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	s := New()
	var fired Time
	s.At(100, func() {
		s.After(50, func() { fired = s.Now() })
	})
	s.Run()
	if fired != 150 {
		t.Errorf("fired at %v, want 150", fired)
	}
}

func TestCancel(t *testing.T) {
	s := New()
	fired := false
	e := s.At(10, func() { fired = true })
	s.Cancel(e)
	s.Cancel(e) // double-cancel is a no-op
	s.Cancel(EventRef{})
	s.Run()
	if fired {
		t.Error("canceled event fired")
	}
	if s.Processed() != 0 {
		t.Errorf("Processed() = %d, want 0", s.Processed())
	}
}

func TestRunUntilStopsAtLimitAndAdvancesClock(t *testing.T) {
	s := New()
	var fired []Time
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		s.At(at, func() { fired = append(fired, at) })
	}
	s.RunUntil(25)
	if len(fired) != 2 {
		t.Fatalf("fired %v, want events at 10 and 20 only", fired)
	}
	if s.Now() != 25 {
		t.Errorf("Now() = %v, want 25 (clock advanced to limit)", s.Now())
	}
	s.RunUntil(100)
	if len(fired) != 4 {
		t.Fatalf("after second RunUntil fired %v, want all 4", fired)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := New()
	s.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic scheduling in the past")
			}
		}()
		s.At(5, func() {})
	})
	s.Run()
}

func TestNegativeAfterPanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Error("expected panic for negative delay")
		}
	}()
	s.After(-1, func() {})
}

func TestStop(t *testing.T) {
	s := New()
	count := 0
	s.At(1, func() { count++; s.Stop() })
	s.At(2, func() { count++ })
	s.Run()
	if count != 1 {
		t.Errorf("count = %d, want 1 (Stop should halt the loop)", count)
	}
	// Run again resumes.
	s.Run()
	if count != 2 {
		t.Errorf("count = %d, want 2 after resuming", count)
	}
}

func TestStep(t *testing.T) {
	s := New()
	count := 0
	s.At(1, func() { count++ })
	s.At(2, func() { count++ })
	if !s.Step() || count != 1 {
		t.Fatalf("first Step: count = %d", count)
	}
	if !s.Step() || count != 2 {
		t.Fatalf("second Step: count = %d", count)
	}
	if s.Step() {
		t.Error("Step on empty queue returned true")
	}
}

func TestPendingCountsQueue(t *testing.T) {
	s := New()
	s.At(1, func() {})
	s.At(2, func() {})
	if s.Pending() != 2 {
		t.Errorf("Pending() = %d, want 2", s.Pending())
	}
}

// Property: events always fire in non-decreasing time order, regardless of
// insertion order.
func TestEventOrderProperty(t *testing.T) {
	f := func(times []uint16) bool {
		s := New()
		var fired []Time
		for _, at := range times {
			at := Time(at)
			s.At(at, func() { fired = append(fired, at) })
		}
		s.Run()
		if len(fired) != len(times) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: interleaving At/Cancel never loses or duplicates events.
func TestCancelProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New()
		fired := 0
		want := 0
		for i := 0; i < int(n); i++ {
			e := s.At(Time(rng.Intn(1000)), func() { fired++ })
			if rng.Intn(2) == 0 {
				s.Cancel(e)
			} else {
				want++
			}
		}
		s.Run()
		return fired == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []Time {
		s := New()
		rng := rand.New(rand.NewSource(42))
		var fired []Time
		var schedule func()
		schedule = func() {
			if s.Now() > 10000 {
				return
			}
			fired = append(fired, s.Now())
			s.After(Time(rng.Intn(100)+1), schedule)
		}
		s.At(0, schedule)
		s.Run()
		return fired
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestParallelDeliversCrossLPMessages(t *testing.T) {
	p := NewParallel(2, 100)
	got := make([]Time, 0)
	// LP0 sends to LP1 every 100 ticks.
	var tick func()
	lp0, lp1 := p.LPs[0], p.LPs[1]
	tick = func() {
		at := lp0.Sim.Now() + 100
		lp0.SendTo(lp1, at, func() { got = append(got, lp1.Sim.Now()) })
		if at < 1000 {
			lp0.Sim.At(at, tick)
		}
	}
	lp0.Sim.At(0, tick)
	p.Run(2000)
	if len(got) == 0 {
		t.Fatal("no cross-LP messages delivered")
	}
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("cross-LP messages out of order: %v", got)
		}
	}
	if p.Barriers == 0 {
		t.Error("expected at least one synchronization barrier")
	}
}

func TestParallelBarrierCountScalesWithLookahead(t *testing.T) {
	fine := NewParallel(2, 10)
	fine.Run(1000)
	coarse := NewParallel(2, 100)
	coarse.Run(1000)
	if fine.Barriers <= coarse.Barriers {
		t.Errorf("fine lookahead barriers %d should exceed coarse %d",
			fine.Barriers, coarse.Barriers)
	}
}

func TestParallelZeroLookaheadPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for zero lookahead")
		}
	}()
	NewParallel(1, 0).Run(10)
}

// A canceled ref must stay inert after its pooled record is reused: the
// generation counter must prevent a stale ref from canceling the record's
// next incarnation.
func TestCancelStaleRefDoesNotTouchReusedEvent(t *testing.T) {
	s := New()
	stale := s.At(10, func() {})
	s.Cancel(stale)
	fired := false
	// The pool hands the recycled record straight back.
	s.At(20, func() { fired = true })
	s.Cancel(stale) // must be a no-op against the new incarnation
	s.Run()
	if !fired {
		t.Error("stale ref canceled a reused event record")
	}
}

func TestEventRefScheduledAndAt(t *testing.T) {
	s := New()
	e := s.At(10, func() {})
	if !e.Scheduled() || e.At() != 10 {
		t.Errorf("pending ref: Scheduled=%v At=%v", e.Scheduled(), e.At())
	}
	s.Run()
	if e.Scheduled() || e.At() != -1 {
		t.Errorf("fired ref: Scheduled=%v At=%v", e.Scheduled(), e.At())
	}
	if (EventRef{}).Scheduled() {
		t.Error("zero ref reports Scheduled")
	}
}

// Scheduling events steadily must not allocate once the pool has warmed
// up: records are recycled as they fire.
func TestEventPoolSteadyStateDoesNotAllocate(t *testing.T) {
	s := New()
	var next func()
	next = func() { s.After(1, next) }
	s.At(0, next)
	for i := 0; i < 2*poolBlock; i++ { // warm the pool
		s.Step()
	}
	allocs := testing.AllocsPerRun(1000, func() { s.Step() })
	if allocs > 0 {
		t.Errorf("steady-state event loop allocates %v/op, want 0", allocs)
	}
}

// A remote event landing exactly on a window boundary is clamped to the
// LP's current time and counted, not silently absorbed.
func TestCausalityClampIsCounted(t *testing.T) {
	p := NewParallel(2, 100)
	lp0, lp1 := p.LPs[0], p.LPs[1]
	var firedAt Time
	// Sent from the middle of window [0,100) for a time in the same
	// window: by the time LP1 drains at the next boundary its clock is
	// already at 100, so the event is one sub-window late.
	lp0.Sim.At(50, func() {
		lp0.SendTo(lp1, 60, func() { firedAt = lp1.Sim.Now() })
	})
	p.Run(300)
	if p.CausalityClamps != 1 {
		t.Errorf("CausalityClamps = %d, want 1", p.CausalityClamps)
	}
	if firedAt != 100 {
		t.Errorf("clamped event fired at %v, want rewritten to window boundary 100", firedAt)
	}
}

// A remote event more than one lookahead window in the past means the
// model's cross-LP latency bound is wrong; that must crash, not clamp.
func TestCausalityViolationBeyondWindowPanics(t *testing.T) {
	p := NewParallel(2, 100)
	lp0, lp1 := p.LPs[0], p.LPs[1]
	lp0.Sim.At(250, func() {
		lp0.SendTo(lp1, 10, func() {}) // 290 behind by drain time
	})
	defer func() {
		if recover() == nil {
			t.Error("expected panic for causality violation beyond one lookahead window")
		}
	}()
	p.Run(1000)
}

// The schedule must not depend on the worker count: 1 worker (sequential
// fallback) and many workers must deliver remote events in the identical
// (time, src LP, per-src seq) order.
func TestParallelWorkerCountInvariance(t *testing.T) {
	run := func(workers int) []int {
		p := NewParallel(4, 50)
		p.NumWorkers = workers
		var mu sync.Mutex
		var order []int
		for i, lp := range p.LPs {
			i, lp := i, lp
			var tick func()
			tick = func() {
				dst := p.LPs[(i+1)%len(p.LPs)]
				tag := i*1000 + int(lp.Sim.Now())
				lp.SendTo(dst, lp.Sim.Now()+50, func() {
					mu.Lock()
					order = append(order, tag)
					mu.Unlock()
				})
				if lp.Sim.Now() < 900 {
					lp.Sim.After(25, tick)
				}
			}
			lp.Sim.At(Time(i), tick)
		}
		p.Run(1000)
		return order
	}
	seq := run(1)
	for _, w := range []int{2, 4, 8} {
		got := run(w)
		if len(got) != len(seq) {
			t.Fatalf("workers=%d delivered %d events, sequential delivered %d", w, len(got), len(seq))
		}
		// Events within one LP's window fire in deterministic order, but
		// the cross-LP global append order can interleave; compare the
		// per-destination subsequences instead.
		perDst := func(order []int) map[int][]int {
			m := map[int][]int{}
			for _, tag := range order {
				m[tag/1000] = append(m[tag/1000], tag)
			}
			return m
		}
		a, b := perDst(seq), perDst(got)
		for k := range a {
			if len(a[k]) != len(b[k]) {
				t.Fatalf("workers=%d: src %d delivered %d events, want %d", w, k, len(b[k]), len(a[k]))
			}
			for i := range a[k] {
				if a[k][i] != b[k][i] {
					t.Fatalf("workers=%d: src %d diverged at %d: %d vs %d", w, k, i, b[k][i], a[k][i])
				}
			}
		}
	}
}

// Run must be resumable: two half-horizon calls land in the same state as
// one full-horizon call.
func TestParallelRunIsResumable(t *testing.T) {
	build := func() (*Parallel, *[]Time) {
		p := NewParallel(2, 100)
		var fired []Time
		lp0, lp1 := p.LPs[0], p.LPs[1]
		var tick func()
		tick = func() {
			lp0.SendTo(lp1, lp0.Sim.Now()+100, func() {
				fired = append(fired, lp1.Sim.Now())
			})
			if lp0.Sim.Now() < 900 {
				lp0.Sim.After(100, tick)
			}
		}
		lp0.Sim.At(0, tick)
		return p, &fired
	}
	pa, fa := build()
	pa.Run(1000)
	pb, fb := build()
	pb.Run(500)
	pb.Run(1000)
	if len(*fa) != len(*fb) {
		t.Fatalf("split run fired %d events, full run %d", len(*fb), len(*fa))
	}
	for i := range *fa {
		if (*fa)[i] != (*fb)[i] {
			t.Fatalf("split run diverged at %d: %v vs %v", i, (*fb)[i], (*fa)[i])
		}
	}
}

func BenchmarkEventLoop(b *testing.B) {
	s := New()
	var next func()
	next = func() { s.After(1, next) }
	s.At(0, next)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}
