package sim

import (
	"sync"
)

// This file implements conservative parallel discrete-event simulation
// (PDES) in the style of Fujimoto's logical processes. The simulated
// network is partitioned into LPs, each with its own event queue executed
// by its own goroutine. Consistency demands that an LP cannot execute
// events at time t until no other LP can still send it events before t, so
// execution proceeds in lock-step windows of length equal to the global
// lookahead (the minimum cross-LP link latency).
//
// MimicNet's Figure 2 observation—that parallelizing a tightly coupled
// data center simulation often makes it *slower*—falls directly out of
// this structure: small lookahead means many barriers, and each barrier
// costs synchronization regardless of how little work a window contains.

// LP is one logical process of a parallel simulation. Its Simulator must
// only be touched by the LP itself once Parallel.Run starts, except via
// Send.
type LP struct {
	ID  int
	Sim *Simulator

	mu    sync.Mutex
	inbox []remoteEvent
}

type remoteEvent struct {
	at Time
	fn func()
}

// Send schedules fn on the destination LP at absolute time at. It is safe
// to call from any LP during Parallel.Run, provided at is at least one
// lookahead window in the future (the caller's link latency guarantees
// this in a correctly partitioned model).
func (lp *LP) Send(at Time, fn func()) {
	lp.mu.Lock()
	lp.inbox = append(lp.inbox, remoteEvent{at, fn})
	lp.mu.Unlock()
}

func (lp *LP) drainInbox() {
	lp.mu.Lock()
	pending := lp.inbox
	lp.inbox = nil
	lp.mu.Unlock()
	for _, re := range pending {
		at := re.at
		if at < lp.Sim.Now() {
			// A message from the previous window landing exactly on the
			// boundary; execute as soon as possible without violating
			// monotonic time.
			at = lp.Sim.Now()
		}
		lp.Sim.At(at, re.fn)
	}
}

// Parallel coordinates a set of LPs with a conservative synchronization
// window. Lookahead must be a positive lower bound on cross-LP latency.
type Parallel struct {
	LPs       []*LP
	Lookahead Time

	// Barriers counts the number of synchronization rounds executed, a
	// proxy for PDES overhead reported by the scalability experiments.
	Barriers uint64
}

// NewParallel creates n LPs with fresh simulators.
func NewParallel(n int, lookahead Time) *Parallel {
	p := &Parallel{Lookahead: lookahead}
	for i := 0; i < n; i++ {
		p.LPs = append(p.LPs, &LP{ID: i, Sim: New()})
	}
	return p
}

// Run advances all LPs to the given simulated time using window-barrier
// synchronization. It returns the total number of events processed across
// all LPs.
func (p *Parallel) Run(until Time) uint64 {
	if p.Lookahead <= 0 {
		panic("sim: PDES lookahead must be positive")
	}
	var wg sync.WaitGroup
	for window := Time(0); window < until; window += p.Lookahead {
		limit := window + p.Lookahead
		if limit > until {
			limit = until
		}
		for _, lp := range p.LPs {
			lp.drainInbox()
		}
		for _, lp := range p.LPs {
			wg.Add(1)
			go func(lp *LP) {
				defer wg.Done()
				lp.Sim.RunUntil(limit)
			}(lp)
		}
		wg.Wait()
		p.Barriers++
	}
	// Final inbox drain so no message is silently lost.
	for _, lp := range p.LPs {
		lp.drainInbox()
		lp.Sim.RunUntil(until)
	}
	var total uint64
	for _, lp := range p.LPs {
		total += lp.Sim.Processed()
	}
	return total
}
