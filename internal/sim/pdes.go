package sim

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"mimicnet/internal/obs"
)

// This file implements conservative parallel discrete-event simulation
// (PDES) in the style of Fujimoto's logical processes. The simulated
// network is partitioned into LPs, each with its own event queue.
// Consistency demands that an LP cannot execute events at time t until no
// other LP can still send it events before t, so execution proceeds in
// lock-step windows of length equal to the global lookahead (the minimum
// cross-LP link latency).
//
// Determinism is part of the contract, not an accident: remote events are
// delivered in (time, source LP, per-source sequence) order at fixed
// window boundaries, so a sharded run schedules exactly the same events
// in exactly the same relative order regardless of how many worker
// threads execute the LPs. This is what lets core.Compose promise
// bitwise-identical results between its sequential and sharded paths.
//
// MimicNet's Figure 2 observation—that parallelizing a tightly coupled
// data center simulation often makes it *slower*—falls directly out of
// this structure: small lookahead means many barriers, and each barrier
// costs synchronization regardless of how little work a window contains.

// LP is one logical process of a parallel simulation. Its Simulator must
// only be touched by the LP itself once Parallel.Run starts, except via
// SendTo.
type LP struct {
	ID  int
	Sim *Simulator

	par *Parallel

	// sendSeq numbers this LP's outgoing remote events. It is only
	// touched by the LP's own execution, so no synchronization is
	// needed; together with the source ID it gives every remote event a
	// deterministic total order independent of worker scheduling.
	sendSeq uint64

	mu      sync.Mutex
	inbox   []remoteEvent
	scratch []remoteEvent // drained double-buffer, reused every window
}

type remoteEvent struct {
	at  Time
	src int32
	seq uint64
	fn  func()
}

// SendTo schedules fn on the destination LP at absolute time at. It is
// safe to call from the sending LP during Parallel.Run, provided at is at
// least one lookahead window in the future (the caller's link latency
// guarantees this in a correctly partitioned model).
func (lp *LP) SendTo(dst *LP, at Time, fn func()) {
	re := remoteEvent{at: at, src: int32(lp.ID), seq: lp.sendSeq, fn: fn}
	lp.sendSeq++
	dst.mu.Lock()
	dst.inbox = append(dst.inbox, re)
	dst.mu.Unlock()
}

// drainInbox moves accumulated remote events into the LP's local queue.
// It is only called between windows (no concurrent SendTo), so the inbox
// snapshot—and therefore the resulting schedule—is deterministic.
//
// A remote event timestamped before the LP's clock is a causality clamp:
// the message arrived on a window boundary and is rewritten to fire
// immediately. Within one lookahead window that is the documented
// conservative-PDES boundary case and is merely counted; beyond one
// window it means the model's partitioning lied about its minimum
// cross-LP latency, which is a bug worth crashing on, not absorbing.
func (lp *LP) drainInbox() {
	lp.mu.Lock()
	pending := lp.inbox
	lp.inbox = lp.scratch[:0]
	lp.scratch = pending
	lp.mu.Unlock()
	if len(pending) == 0 {
		return
	}
	sort.Slice(pending, func(i, j int) bool {
		a, b := &pending[i], &pending[j]
		if a.at != b.at {
			return a.at < b.at
		}
		if a.src != b.src {
			return a.src < b.src
		}
		return a.seq < b.seq
	})
	now := lp.Sim.Now()
	for i := range pending {
		re := &pending[i]
		at := re.at
		if at < now {
			if lag := now - at; lag > lp.par.Lookahead {
				panic(fmt.Sprintf(
					"sim: causality violation on LP %d: remote event at %v is %v behind now %v, more than one lookahead window (%v); the model's cross-LP latency bound is wrong",
					lp.ID, at, lag, now, lp.par.Lookahead))
			}
			lp.par.CausalityClamps++
			at = now
		}
		lp.Sim.At(at, re.fn)
		re.fn = nil // release the closure once scheduled
	}
}

// Parallel coordinates a set of LPs with a conservative synchronization
// window. Lookahead must be a positive lower bound on cross-LP latency.
type Parallel struct {
	LPs       []*LP
	Lookahead Time

	// NumWorkers bounds how many OS-thread-backed goroutines execute LPs
	// concurrently. Zero means GOMAXPROCS. The worker count never
	// affects results, only wall-clock time.
	NumWorkers int

	// Barriers counts the number of synchronization rounds executed, a
	// proxy for PDES overhead reported by the scalability experiments.
	Barriers uint64

	// CausalityClamps counts remote events that landed on a window
	// boundary and were rewritten to "now" (see LP.drainInbox). A
	// handful per run is the expected conservative-PDES edge case; a
	// large count means lookahead is set too close to the true minimum
	// latency. Only mutated between windows, so reads after Run need no
	// synchronization.
	CausalityClamps uint64

	// Ticker, if set, is called on the coordinating goroutine at every
	// window barrier with the window horizon and the total events
	// processed so far. Returning true stops Run at that barrier: LPs
	// keep their pending events and a later Run resumes from the same
	// horizon, so an uncancelled run is bitwise-unaffected by the hook.
	Ticker func(now Time, processed uint64) (stop bool)

	next Time // resume point for successive Run calls
}

// NewParallel creates n LPs with fresh simulators.
func NewParallel(n int, lookahead Time) *Parallel {
	p := &Parallel{Lookahead: lookahead}
	for i := 0; i < n; i++ {
		p.LPs = append(p.LPs, &LP{ID: i, Sim: New(), par: p})
	}
	return p
}

// workers resolves the effective worker count for this host.
func (p *Parallel) workers() int {
	w := p.NumWorkers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > len(p.LPs) {
		w = len(p.LPs)
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Run advances all LPs to the given simulated time using window-barrier
// synchronization, then delivers any boundary messages so nothing is
// silently lost. Run is resumable: successive calls continue from the
// previous horizon. It returns the total number of events processed
// across all LPs.
//
// Worker goroutines are persistent for the duration of the call: each
// window, idle workers claim LPs from a shared cursor and the main
// goroutine performs the (cheap, deterministic) inbox drains between
// windows. This costs two lightweight barrier crossings per window
// instead of len(LPs) goroutine spawns.
func (p *Parallel) Run(until Time) uint64 {
	if p.Lookahead <= 0 {
		panic("sim: PDES lookahead must be positive")
	}
	nw := p.workers()
	// Telemetry baselines: counters are published as deltas when the run
	// returns, keeping the window loop free of atomics.
	var preEvents uint64
	for _, lp := range p.LPs {
		preEvents += lp.Sim.Processed()
	}
	preBarriers, preClamps := p.Barriers, p.CausalityClamps
	var reached Time
	if nw <= 1 {
		reached = p.runSequential(until)
	} else {
		reached = p.runParallel(until, nw)
	}
	// Final inbox drain so no boundary message is silently lost. When the
	// Ticker stopped the run early, drain only to the reached horizon —
	// running to `until` here would silently complete a cancelled run.
	for _, lp := range p.LPs {
		lp.drainInbox()
		lp.Sim.RunUntil(reached)
	}
	p.next = reached
	var total uint64
	for _, lp := range p.LPs {
		total += lp.Sim.Processed()
	}
	obsEvents.Add(total - preEvents)
	obsBarriers.Add(p.Barriers - preBarriers)
	obsClamps.Add(p.CausalityClamps - preClamps)
	return total
}

// tickBarrier runs the Ticker at a window barrier, summing processed
// events across LPs (safe: workers are parked between windows).
func (p *Parallel) tickBarrier(horizon Time) (stop bool) {
	if p.Ticker == nil {
		return false
	}
	var total uint64
	for _, lp := range p.LPs {
		total += lp.Sim.Processed()
	}
	return p.Ticker(horizon, total)
}

// runSequential executes the same window schedule as runParallel on the
// calling goroutine. Because drains happen at identical boundaries and
// remote events are ordered by (time, src, seq) either way, it produces
// bitwise-identical schedules to any worker count.
func (p *Parallel) runSequential(until Time) Time {
	for window := p.next; window < until; window += p.Lookahead {
		limit := window + p.Lookahead
		if limit > until {
			limit = until
		}
		for _, lp := range p.LPs {
			lp.drainInbox()
		}
		for _, lp := range p.LPs {
			lp.Sim.RunUntil(limit)
		}
		p.Barriers++
		if p.tickBarrier(limit) {
			return limit
		}
	}
	return until
}

func (p *Parallel) runParallel(until Time, nw int) Time {
	ws := &workerState{limit: make(chan Time), done: make(chan struct{})}
	for w := 0; w < nw; w++ {
		go ws.work(p.LPs)
	}
	reached := until
	for window := p.next; window < until; window += p.Lookahead {
		limit := window + p.Lookahead
		if limit > until {
			limit = until
		}
		// Drain phase: single goroutine, no SendTo can run concurrently,
		// so inbox snapshots are deterministic.
		for _, lp := range p.LPs {
			lp.drainInbox()
		}
		// Execute phase: workers claim LPs from the cursor.
		ws.cursor.Store(0)
		for w := 0; w < nw; w++ {
			ws.limit <- limit
		}
		var sp obs.Span
		if p.Barriers%barrierWaitSample == 0 {
			sp = obs.StartSpan(obsBarrierWait)
		}
		for w := 0; w < nw; w++ {
			<-ws.done
		}
		sp.End()
		p.Barriers++
		if p.tickBarrier(limit) {
			reached = limit
			break
		}
	}
	close(ws.limit)
	return reached
}

// workerState is the reusable barrier shared by Run's persistent
// workers: a window broadcast (limit), an atomic LP-claim cursor, and a
// completion gather (done).
type workerState struct {
	limit  chan Time
	done   chan struct{}
	cursor atomic.Int64
}

func (ws *workerState) work(lps []*LP) {
	for limit := range ws.limit {
		for {
			i := int(ws.cursor.Add(1) - 1)
			if i >= len(lps) {
				break
			}
			lps[i].Sim.RunUntil(limit)
		}
		ws.done <- struct{}{}
	}
}
