package sim

import (
	"mimicnet/internal/obs"
)

// Runtime telemetry for the PDES coordinator (obs package; DESIGN.md
// decision 10). Counters are bumped with *deltas at window/run
// boundaries*, never per event — the kernel's inner loop stays exactly
// as hot as before — and barrier waits are sampled (one timing in
// barrierWaitSample) so a microsecond-window run doesn't pay two clock
// reads per window. Nothing here feeds back into scheduling, so
// instrumented runs are bitwise identical to uninstrumented ones.
var (
	obsEvents = obs.Default().Counter("mimicnet_sim_events_total",
		"Simulation kernel events executed (all simulators, all LPs).")
	obsBarriers = obs.Default().Counter("mimicnet_sim_barriers_total",
		"PDES window-barrier synchronization rounds executed.")
	obsClamps = obs.Default().Counter("mimicnet_sim_causality_clamps_total",
		"Remote events clamped to 'now' at a window boundary (conservative-PDES edge case).")
	obsBarrierWait = obs.Default().Histogram("mimicnet_sim_barrier_wait_seconds",
		"Coordinator wall time waiting on LP workers at a sampled window barrier.",
		obs.ExpBuckets(1e-7, 4, 12))
)

// barrierWaitSample is the sampling interval for barrier-wait timings:
// every Nth parallel window measures the gather. Power of two so the
// modulo folds to a mask-like test.
const barrierWaitSample = 64

// CountKernelEvents adds a batch of already-executed kernel events to
// the process-wide events counter. Single-simulator run loops
// (cluster.Simulation, sequential compositions) call it once per
// RunUntil with the Processed() delta; Parallel.Run does the same for
// its LPs internally.
func CountKernelEvents(n uint64) { obsEvents.Add(n) }
