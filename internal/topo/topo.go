// Package topo defines the FatTree data center topology MimicNet assumes
// (paper §2, §4.2): clusters of racks, each rack holding hosts under a
// Top-of-Rack (ToR) switch, aggregation ("Cluster") switches above the
// ToRs, and Core switches interconnecting the clusters. Packets follow
// strict up-down routing with ECMP at the fan-out points.
//
// Every node has a dense integer ID so the packet simulator can use flat
// slices. Hosts occupy [0, Hosts()); switches follow.
package topo

import (
	"fmt"
)

// Kind classifies a node.
type Kind uint8

// Node kinds, in ID-range order.
const (
	KindHost Kind = iota
	KindToR
	KindAgg
	KindCore
)

// String returns a short human-readable kind name.
func (k Kind) String() string {
	switch k {
	case KindHost:
		return "host"
	case KindToR:
		return "tor"
	case KindAgg:
		return "agg"
	case KindCore:
		return "core"
	}
	return "unknown"
}

// Config parameterizes a FatTree.
type Config struct {
	Clusters        int // number of clusters (pods)
	RacksPerCluster int // ToR switches per cluster
	HostsPerRack    int // hosts under each ToR
	AggPerCluster   int // aggregation switches per cluster
	CoresPerAgg     int // core switches attached to each agg index
}

// DefaultConfig mirrors the paper's small-scale setup: 2 clusters with a
// modest fan-out, suitable for generating Mimic training data.
func DefaultConfig() Config {
	return Config{
		Clusters:        2,
		RacksPerCluster: 2,
		HostsPerRack:    4,
		AggPerCluster:   2,
		CoresPerAgg:     2,
	}
}

// Validate reports whether the configuration is structurally sound.
func (c Config) Validate() error {
	switch {
	case c.Clusters < 1:
		return fmt.Errorf("topo: need >= 1 cluster, have %d", c.Clusters)
	case c.RacksPerCluster < 1:
		return fmt.Errorf("topo: need >= 1 rack per cluster, have %d", c.RacksPerCluster)
	case c.HostsPerRack < 1:
		return fmt.Errorf("topo: need >= 1 host per rack, have %d", c.HostsPerRack)
	case c.AggPerCluster < 1:
		return fmt.Errorf("topo: need >= 1 agg per cluster, have %d", c.AggPerCluster)
	case c.CoresPerAgg < 1:
		return fmt.Errorf("topo: need >= 1 core per agg, have %d", c.CoresPerAgg)
	}
	return nil
}

// WithClusters returns a copy of the config scaled to n clusters, keeping
// all per-cluster structure identical — the "traffic patterns that scale
// proportionally" restriction (paper §4.2) requires exactly this.
func (c Config) WithClusters(n int) Config {
	c.Clusters = n
	return c
}

// Topology is an immutable FatTree instance with dense node IDs.
type Topology struct {
	cfg Config

	hosts, tors, aggs, cores   int
	torBase, aggBase, coreBase int
}

// New builds a topology, panicking on invalid configuration (construction
// happens at setup time where an error return would only be re-panicked).
func New(cfg Config) *Topology {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	t := &Topology{cfg: cfg}
	t.hosts = cfg.Clusters * cfg.RacksPerCluster * cfg.HostsPerRack
	t.tors = cfg.Clusters * cfg.RacksPerCluster
	t.aggs = cfg.Clusters * cfg.AggPerCluster
	t.cores = cfg.AggPerCluster * cfg.CoresPerAgg
	t.torBase = t.hosts
	t.aggBase = t.torBase + t.tors
	t.coreBase = t.aggBase + t.aggs
	return t
}

// Config returns the topology parameters.
func (t *Topology) Config() Config { return t.cfg }

// Hosts returns the number of hosts.
func (t *Topology) Hosts() int { return t.hosts }

// Nodes returns the total node count (hosts + switches).
func (t *Topology) Nodes() int { return t.coreBase + t.cores }

// Cores returns the number of core switches.
func (t *Topology) Cores() int { return t.cores }

// HostsPerCluster returns hosts in one cluster.
func (t *Topology) HostsPerCluster() int {
	return t.cfg.RacksPerCluster * t.cfg.HostsPerRack
}

// HostID returns the dense ID for a host by (cluster, rack, slot).
func (t *Topology) HostID(cluster, rack, slot int) int {
	return (cluster*t.cfg.RacksPerCluster+rack)*t.cfg.HostsPerRack + slot
}

// ToRID returns the dense ID for a ToR by (cluster, rack).
func (t *Topology) ToRID(cluster, rack int) int {
	return t.torBase + cluster*t.cfg.RacksPerCluster + rack
}

// AggID returns the dense ID for an aggregation switch by (cluster, index).
func (t *Topology) AggID(cluster, idx int) int {
	return t.aggBase + cluster*t.cfg.AggPerCluster + idx
}

// CoreID returns the dense ID for a core switch. Core switches are grouped
// by the aggregation index they serve: core (aggIdx, j) connects to agg
// switch aggIdx of every cluster.
func (t *Topology) CoreID(aggIdx, j int) int {
	return t.coreBase + aggIdx*t.cfg.CoresPerAgg + j
}

// KindOf classifies a node ID.
func (t *Topology) KindOf(id int) Kind {
	switch {
	case id < t.torBase:
		return KindHost
	case id < t.aggBase:
		return KindToR
	case id < t.coreBase:
		return KindAgg
	default:
		return KindCore
	}
}

// ClusterOf returns the cluster a host/ToR/agg belongs to, or -1 for core
// switches (which belong to no cluster).
func (t *Topology) ClusterOf(id int) int {
	switch t.KindOf(id) {
	case KindHost:
		return id / t.HostsPerCluster()
	case KindToR:
		return (id - t.torBase) / t.cfg.RacksPerCluster
	case KindAgg:
		return (id - t.aggBase) / t.cfg.AggPerCluster
	}
	return -1
}

// RackOf returns the rack index (within its cluster) of a host or ToR,
// or -1 otherwise.
func (t *Topology) RackOf(id int) int {
	switch t.KindOf(id) {
	case KindHost:
		return (id % t.HostsPerCluster()) / t.cfg.HostsPerRack
	case KindToR:
		return (id - t.torBase) % t.cfg.RacksPerCluster
	}
	return -1
}

// SlotOf returns a host's index within its rack, or -1 for non-hosts.
func (t *Topology) SlotOf(id int) int {
	if t.KindOf(id) != KindHost {
		return -1
	}
	return id % t.cfg.HostsPerRack
}

// AggIndexOf returns an agg switch's index within its cluster, or the agg
// group a core switch serves; -1 otherwise.
func (t *Topology) AggIndexOf(id int) int {
	switch t.KindOf(id) {
	case KindAgg:
		return (id - t.aggBase) % t.cfg.AggPerCluster
	case KindCore:
		return (id - t.coreBase) / t.cfg.CoresPerAgg
	}
	return -1
}

// CoreSlotOf returns a core switch's index within its agg group, -1
// otherwise.
func (t *Topology) CoreSlotOf(id int) int {
	if t.KindOf(id) != KindCore {
		return -1
	}
	return (id - t.coreBase) % t.cfg.CoresPerAgg
}

// Name returns a debugging label like "host(c0,r1,s2)" or "core(a1,j0)".
func (t *Topology) Name(id int) string {
	switch t.KindOf(id) {
	case KindHost:
		return fmt.Sprintf("host(c%d,r%d,s%d)", t.ClusterOf(id), t.RackOf(id), t.SlotOf(id))
	case KindToR:
		return fmt.Sprintf("tor(c%d,r%d)", t.ClusterOf(id), t.RackOf(id))
	case KindAgg:
		return fmt.Sprintf("agg(c%d,a%d)", t.ClusterOf(id), t.AggIndexOf(id))
	default:
		return fmt.Sprintf("core(a%d,j%d)", t.AggIndexOf(id), t.CoreSlotOf(id))
	}
}

// Link is an undirected physical link between two nodes.
type Link struct{ A, B int }

// Links enumerates every physical link: host–ToR, ToR–agg, agg–core.
func (t *Topology) Links() []Link {
	var links []Link
	for c := 0; c < t.cfg.Clusters; c++ {
		for r := 0; r < t.cfg.RacksPerCluster; r++ {
			tor := t.ToRID(c, r)
			for s := 0; s < t.cfg.HostsPerRack; s++ {
				links = append(links, Link{t.HostID(c, r, s), tor})
			}
			for a := 0; a < t.cfg.AggPerCluster; a++ {
				links = append(links, Link{tor, t.AggID(c, a)})
			}
		}
		for a := 0; a < t.cfg.AggPerCluster; a++ {
			for j := 0; j < t.cfg.CoresPerAgg; j++ {
				links = append(links, Link{t.AggID(c, a), t.CoreID(a, j)})
			}
		}
	}
	return links
}

// FlowHash is a cheap deterministic hash for ECMP path selection, stable
// across runs for a given flow identity.
func FlowHash(src, dst int, flowSeq uint64) uint64 {
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
	}
	mix(uint64(src))
	mix(uint64(dst))
	mix(flowSeq)
	// Final avalanche so low bits are well mixed for modulo use.
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}

// Path returns the strict up-down ECMP route from src host to dst host as
// a node ID sequence, inclusive of both endpoints. The hash picks among
// equal-cost choices: the agg switch on the way up and, for inter-cluster
// traffic, the core switch. The downward path is then fully determined
// (FatTree property), which is what lets MimicNet decompose cluster
// modeling into ingress and egress halves.
func (t *Topology) Path(src, dst int, hash uint64) []int {
	if t.KindOf(src) != KindHost || t.KindOf(dst) != KindHost {
		panic(fmt.Sprintf("topo: Path endpoints must be hosts, got %s -> %s", t.Name(src), t.Name(dst)))
	}
	if src == dst {
		return []int{src}
	}
	sc, sr := t.ClusterOf(src), t.RackOf(src)
	dc, dr := t.ClusterOf(dst), t.RackOf(dst)
	srcToR := t.ToRID(sc, sr)
	dstToR := t.ToRID(dc, dr)
	if srcToR == dstToR {
		return []int{src, srcToR, dst}
	}
	aggIdx := int(hash % uint64(t.cfg.AggPerCluster))
	if sc == dc {
		return []int{src, srcToR, t.AggID(sc, aggIdx), dstToR, dst}
	}
	coreSlot := int((hash / uint64(t.cfg.AggPerCluster)) % uint64(t.cfg.CoresPerAgg))
	return []int{
		src, srcToR,
		t.AggID(sc, aggIdx),
		t.CoreID(aggIdx, coreSlot),
		t.AggID(dc, aggIdx),
		dstToR, dst,
	}
}
