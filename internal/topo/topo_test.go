package topo

import (
	"testing"
	"testing/quick"
)

func testTopo() *Topology {
	return New(Config{
		Clusters:        3,
		RacksPerCluster: 2,
		HostsPerRack:    4,
		AggPerCluster:   2,
		CoresPerAgg:     2,
	})
}

func TestCounts(t *testing.T) {
	tp := testTopo()
	if got, want := tp.Hosts(), 3*2*4; got != want {
		t.Errorf("Hosts = %d, want %d", got, want)
	}
	if got, want := tp.Cores(), 2*2; got != want {
		t.Errorf("Cores = %d, want %d", got, want)
	}
	if got, want := tp.Nodes(), 24+6+6+4; got != want {
		t.Errorf("Nodes = %d, want %d", got, want)
	}
	if got, want := tp.HostsPerCluster(), 8; got != want {
		t.Errorf("HostsPerCluster = %d, want %d", got, want)
	}
}

func TestValidate(t *testing.T) {
	bad := []Config{
		{},
		{Clusters: 1},
		{Clusters: 1, RacksPerCluster: 1},
		{Clusters: 1, RacksPerCluster: 1, HostsPerRack: 1},
		{Clusters: 1, RacksPerCluster: 1, HostsPerRack: 1, AggPerCluster: 1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d should be invalid", i)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestWithClusters(t *testing.T) {
	cfg := DefaultConfig().WithClusters(16)
	if cfg.Clusters != 16 {
		t.Errorf("Clusters = %d", cfg.Clusters)
	}
	if cfg.RacksPerCluster != DefaultConfig().RacksPerCluster {
		t.Error("WithClusters changed per-cluster structure")
	}
}

func TestIDsRoundTrip(t *testing.T) {
	tp := testTopo()
	cfg := tp.Config()
	seen := make(map[int]bool)
	for c := 0; c < cfg.Clusters; c++ {
		for r := 0; r < cfg.RacksPerCluster; r++ {
			for s := 0; s < cfg.HostsPerRack; s++ {
				id := tp.HostID(c, r, s)
				if seen[id] {
					t.Fatalf("duplicate host ID %d", id)
				}
				seen[id] = true
				if tp.KindOf(id) != KindHost {
					t.Errorf("KindOf(%d) = %v, want host", id, tp.KindOf(id))
				}
				if tp.ClusterOf(id) != c || tp.RackOf(id) != r || tp.SlotOf(id) != s {
					t.Errorf("host (%d,%d,%d) round-trip failed: got (%d,%d,%d)",
						c, r, s, tp.ClusterOf(id), tp.RackOf(id), tp.SlotOf(id))
				}
			}
			tor := tp.ToRID(c, r)
			if tp.KindOf(tor) != KindToR || tp.ClusterOf(tor) != c || tp.RackOf(tor) != r {
				t.Errorf("ToR (%d,%d) round-trip failed", c, r)
			}
		}
		for a := 0; a < cfg.AggPerCluster; a++ {
			agg := tp.AggID(c, a)
			if tp.KindOf(agg) != KindAgg || tp.ClusterOf(agg) != c || tp.AggIndexOf(agg) != a {
				t.Errorf("Agg (%d,%d) round-trip failed", c, a)
			}
		}
	}
	for a := 0; a < cfg.AggPerCluster; a++ {
		for j := 0; j < cfg.CoresPerAgg; j++ {
			core := tp.CoreID(a, j)
			if tp.KindOf(core) != KindCore || tp.AggIndexOf(core) != a || tp.CoreSlotOf(core) != j {
				t.Errorf("Core (%d,%d) round-trip failed", a, j)
			}
			if tp.ClusterOf(core) != -1 {
				t.Error("core should have cluster -1")
			}
		}
	}
}

func TestNonHostAccessors(t *testing.T) {
	tp := testTopo()
	tor := tp.ToRID(0, 0)
	if tp.SlotOf(tor) != -1 {
		t.Error("SlotOf(tor) should be -1")
	}
	if tp.AggIndexOf(tor) != -1 {
		t.Error("AggIndexOf(tor) should be -1")
	}
	if tp.CoreSlotOf(tor) != -1 {
		t.Error("CoreSlotOf(tor) should be -1")
	}
	if tp.RackOf(tp.AggID(0, 0)) != -1 {
		t.Error("RackOf(agg) should be -1")
	}
}

func TestNames(t *testing.T) {
	tp := testTopo()
	cases := map[int]string{
		tp.HostID(1, 0, 2): "host(c1,r0,s2)",
		tp.ToRID(2, 1):     "tor(c2,r1)",
		tp.AggID(0, 1):     "agg(c0,a1)",
		tp.CoreID(1, 0):    "core(a1,j0)",
	}
	for id, want := range cases {
		if got := tp.Name(id); got != want {
			t.Errorf("Name(%d) = %q, want %q", id, got, want)
		}
	}
}

func TestKindString(t *testing.T) {
	if KindHost.String() != "host" || KindCore.String() != "core" ||
		KindToR.String() != "tor" || KindAgg.String() != "agg" {
		t.Error("Kind.String wrong")
	}
	if Kind(99).String() != "unknown" {
		t.Error("unknown kind")
	}
}

func TestLinksCount(t *testing.T) {
	tp := testTopo()
	cfg := tp.Config()
	want := tp.Hosts() + // host-ToR
		cfg.Clusters*cfg.RacksPerCluster*cfg.AggPerCluster + // ToR-agg
		cfg.Clusters*cfg.AggPerCluster*cfg.CoresPerAgg // agg-core
	if got := len(tp.Links()); got != want {
		t.Errorf("Links = %d, want %d", got, want)
	}
}

func TestPathSameHost(t *testing.T) {
	tp := testTopo()
	p := tp.Path(3, 3, 0)
	if len(p) != 1 || p[0] != 3 {
		t.Errorf("self path = %v", p)
	}
}

func TestPathSameRack(t *testing.T) {
	tp := testTopo()
	src, dst := tp.HostID(0, 0, 0), tp.HostID(0, 0, 1)
	p := tp.Path(src, dst, 12345)
	want := []int{src, tp.ToRID(0, 0), dst}
	if len(p) != 3 || p[0] != want[0] || p[1] != want[1] || p[2] != want[2] {
		t.Errorf("same-rack path = %v, want %v", p, want)
	}
}

func TestPathIntraCluster(t *testing.T) {
	tp := testTopo()
	src, dst := tp.HostID(0, 0, 0), tp.HostID(0, 1, 0)
	p := tp.Path(src, dst, 7)
	if len(p) != 5 {
		t.Fatalf("intra-cluster path = %v, want 5 hops", p)
	}
	if tp.KindOf(p[2]) != KindAgg || tp.ClusterOf(p[2]) != 0 {
		t.Errorf("middle hop %s should be an agg in cluster 0", tp.Name(p[2]))
	}
}

func TestPathInterCluster(t *testing.T) {
	tp := testTopo()
	src, dst := tp.HostID(0, 0, 0), tp.HostID(2, 1, 3)
	p := tp.Path(src, dst, 99)
	if len(p) != 7 {
		t.Fatalf("inter-cluster path = %v, want 7 hops", p)
	}
	if tp.KindOf(p[3]) != KindCore {
		t.Errorf("hop 3 = %s, want core", tp.Name(p[3]))
	}
	// FatTree invariant: up-agg and down-agg share the same agg index
	// (the core determines the downward path).
	if tp.AggIndexOf(p[2]) != tp.AggIndexOf(p[4]) {
		t.Error("up/down agg index mismatch: core connectivity violated")
	}
	if tp.AggIndexOf(p[3]) != tp.AggIndexOf(p[2]) {
		t.Error("core not in the chosen agg group")
	}
}

func TestPathPanicsOnSwitchEndpoint(t *testing.T) {
	tp := testTopo()
	defer func() {
		if recover() == nil {
			t.Error("expected panic for switch endpoint")
		}
	}()
	tp.Path(tp.ToRID(0, 0), 0, 0)
}

// Property: every path is valid up-down — consecutive hops always share a
// physical link, and path kinds follow host,tor(,agg(,core,agg),tor),host.
func TestPathValidityProperty(t *testing.T) {
	tp := testTopo()
	linkSet := make(map[[2]int]bool)
	for _, l := range tp.Links() {
		linkSet[[2]int{l.A, l.B}] = true
		linkSet[[2]int{l.B, l.A}] = true
	}
	f := func(srcRaw, dstRaw uint16, hash uint64) bool {
		src := int(srcRaw) % tp.Hosts()
		dst := int(dstRaw) % tp.Hosts()
		p := tp.Path(src, dst, hash)
		if src == dst {
			return len(p) == 1
		}
		for i := 1; i < len(p); i++ {
			if !linkSet[[2]int{p[i-1], p[i]}] {
				return false
			}
		}
		return p[0] == src && p[len(p)-1] == dst
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: ECMP spreads inter-cluster flows across all agg and core
// choices.
func TestECMPSpreadsLoad(t *testing.T) {
	tp := testTopo()
	src, dst := tp.HostID(0, 0, 0), tp.HostID(1, 0, 0)
	aggSeen := make(map[int]bool)
	coreSeen := make(map[int]bool)
	for seq := uint64(0); seq < 200; seq++ {
		p := tp.Path(src, dst, FlowHash(src, dst, seq))
		aggSeen[p[2]] = true
		coreSeen[p[3]] = true
	}
	if len(aggSeen) != tp.Config().AggPerCluster {
		t.Errorf("ECMP used %d agg switches, want %d", len(aggSeen), tp.Config().AggPerCluster)
	}
	if len(coreSeen) != tp.Cores() {
		t.Errorf("ECMP used %d cores, want %d", len(coreSeen), tp.Cores())
	}
}

func TestFlowHashDeterministic(t *testing.T) {
	if FlowHash(1, 2, 3) != FlowHash(1, 2, 3) {
		t.Error("FlowHash not deterministic")
	}
	if FlowHash(1, 2, 3) == FlowHash(2, 1, 3) {
		t.Error("FlowHash should be direction-sensitive")
	}
}
