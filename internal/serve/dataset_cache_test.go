package serve

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"mimicnet/internal/core"
)

// TestDatasetCacheReuse drives datasetsForSpec directly: the first call
// must generate and persist the columnar dataset file, the second must
// replay it bit-for-bit, and a corrupted file must be discarded and
// regenerated rather than trusted.
func TestDatasetCacheReuse(t *testing.T) {
	dir := t.TempDir()
	reg, err := NewRegistry("", 4)
	if err != nil {
		t.Fatal(err)
	}
	s := NewScheduler(reg, 1, 1)
	defer s.Close()
	s.dsDir = dir

	spec := tinySpec().Normalized()
	base, tcfg, err := spec.Configs()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	ing1, eg1, err := s.datasetsForSpec(ctx, base, tcfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	if s.cDatasetMisses.Value() != 1 || s.cDatasetHits.Value() != 0 {
		t.Fatalf("first call: misses=%d hits=%d", s.cDatasetMisses.Value(), s.cDatasetHits.Value())
	}
	key, err := spec.DatasetKey()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, key+".dset")
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("dataset file not persisted: %v", err)
	}

	ing2, eg2, err := s.datasetsForSpec(ctx, base, tcfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	if s.cDatasetHits.Value() != 1 {
		t.Fatalf("second call did not hit the cache (hits=%d)", s.cDatasetHits.Value())
	}
	for _, pair := range []struct{ a, b *core.Dataset }{{ing1, ing2}, {eg1, eg2}} {
		if pair.a.Len() != pair.b.Len() {
			t.Fatal("replayed dataset sample count differs")
		}
		for i := range pair.a.Samples.Feats {
			if pair.a.Samples.Feats[i] != pair.b.Samples.Feats[i] {
				t.Fatalf("replayed dataset feature %d differs", i)
			}
		}
	}

	// Corruption: flip a payload byte; the cache must regenerate.
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)-1] ^= 0xff
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	ing3, _, err := s.datasetsForSpec(ctx, base, tcfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	if s.cDatasetCorrupt.Value() != 1 {
		t.Fatalf("corrupt counter = %d, want 1", s.cDatasetCorrupt.Value())
	}
	if ing3.Len() != ing1.Len() {
		t.Fatal("regenerated dataset differs from original")
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("corrupt file not rewritten: %v", err)
	}
	if _, _, err := core.ReadDatasetFile(path); err != nil {
		t.Fatalf("rewritten cache entry unreadable: %v", err)
	}
}

func TestJobSpecDatasetKeyCoarserThanModelKey(t *testing.T) {
	a := tinySpec().Normalized()
	b := a
	b.Hidden *= 2
	b.Cell = "gru"
	ka, err := a.DatasetKey()
	if err != nil {
		t.Fatal(err)
	}
	kb, err := b.DatasetKey()
	if err != nil {
		t.Fatal(err)
	}
	if ka != kb {
		t.Error("model-only spec change altered DatasetKey")
	}
	ma, _ := a.ModelKey()
	mb, _ := b.ModelKey()
	if ma == mb {
		t.Error("model-only spec change did not alter ModelKey")
	}
	c := a
	c.Seed++
	if kc, _ := c.DatasetKey(); kc == ka {
		t.Error("workload seed change did not alter DatasetKey")
	}
}
