package serve

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// parseProm parses Prometheus text exposition (version 0.0.4) into
// sample name → value, validating the structural invariants a scraper
// relies on: every sample line is `name[{labels}] value`, HELP/TYPE
// lines precede their family's samples, families are contiguous, and
// histogram cumulative buckets are monotone with _count == +Inf bucket.
func parseProm(t *testing.T, text string) map[string]float64 {
	t.Helper()
	samples := make(map[string]float64)
	typed := make(map[string]string)
	seenFamily := make(map[string]bool)
	lastFamily := ""
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# ") {
			parts := strings.SplitN(line, " ", 4)
			if len(parts) < 3 || (parts[1] != "HELP" && parts[1] != "TYPE") {
				t.Fatalf("line %d: malformed comment %q", ln+1, line)
			}
			if parts[1] == "TYPE" {
				typed[parts[2]] = parts[3]
			}
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("line %d: no value separator in %q", ln+1, line)
		}
		name, valStr := line[:sp], line[sp+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("line %d: bad value %q: %v", ln+1, valStr, err)
		}
		if _, dup := samples[name]; dup {
			t.Fatalf("line %d: duplicate sample %q", ln+1, name)
		}
		samples[name] = val

		fam := name
		if i := strings.IndexByte(fam, '{'); i >= 0 {
			fam = fam[:i]
		}
		base := fam
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if h := strings.TrimSuffix(fam, suf); h != fam && typed[h] == "histogram" {
				base = h
			}
		}
		if typed[base] == "" {
			t.Fatalf("line %d: sample %q has no TYPE line", ln+1, name)
		}
		if base != lastFamily && seenFamily[base] {
			t.Fatalf("line %d: family %q not contiguous", ln+1, base)
		}
		seenFamily[base] = true
		lastFamily = base
	}
	// Histogram invariants per labeled series.
	for name, typ := range typed {
		if typ != "histogram" {
			continue
		}
		for sample := range samples {
			if !strings.HasPrefix(sample, name+"_count") {
				continue
			}
			labels := strings.TrimPrefix(sample, name+"_count")
			inf := name + `_bucket{`
			if labels != "" {
				inf += strings.Trim(labels, "{}") + ","
			}
			inf += `le="+Inf"}`
			infVal, ok := samples[inf]
			if !ok {
				t.Fatalf("histogram %s%s missing +Inf bucket (want %s)", name, labels, inf)
			}
			if samples[sample] != infVal {
				t.Fatalf("histogram %s%s: _count %v != +Inf bucket %v",
					name, labels, samples[sample], infVal)
			}
		}
	}
	return samples
}

func scrape(t *testing.T, url string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return parseProm(t, string(body))
}

// TestMetricsEndToEnd boots the real daemon stack, runs jobs over HTTP
// while goroutines scrape /metrics concurrently, and asserts that the
// exposition parses, spans all four instrumented layers with at least 20
// series, and that counters only ever move up — under -race this is also
// the data-race check for every hot-path instrumentation site.
func TestMetricsEndToEnd(t *testing.T) {
	ts, _, _ := newTestServer(t, 8, 2)
	c := NewClient(ts.URL)

	// Concurrent scrapers racing the job pipeline, each checking
	// per-scraper counter monotonicity.
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errCh := make(chan error, 4)
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			last := make(map[string]float64)
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(ts.URL + "/metrics")
				if err != nil {
					errCh <- err
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					errCh <- err
					return
				}
				for _, line := range strings.Split(string(body), "\n") {
					if line == "" || strings.HasPrefix(line, "#") {
						continue
					}
					sp := strings.LastIndexByte(line, ' ')
					name := line[:sp]
					if !strings.HasSuffix(name, "_total") && !strings.Contains(name, "_total{") &&
						!strings.Contains(name, "_bucket{") && !strings.Contains(name, "_count") {
						continue // gauges may go down
					}
					v, err := strconv.ParseFloat(line[sp+1:], 64)
					if err != nil {
						errCh <- fmt.Errorf("bad sample %q: %v", line, err)
						return
					}
					if prev, ok := last[name]; ok && v < prev {
						errCh <- fmt.Errorf("counter %s went backwards: %v -> %v", name, prev, v)
						return
					}
					last[name] = v
				}
			}
		}()
	}

	// Two identical jobs end-to-end: a cold train+compose then a warm
	// registry hit, exercising serve, core, ml, and sim counters.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	for i := 0; i < 2; i++ {
		st, err := c.Submit(tinySpec())
		if err != nil {
			t.Fatal(err)
		}
		final, err := c.Wait(ctx, st.ID, 10*time.Millisecond, nil)
		if err != nil {
			t.Fatal(err)
		}
		if final.State != StateDone {
			t.Fatalf("job %d: state=%s err=%q", i, final.State, final.Error)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}

	samples := parseProm(t, mustGet(t, ts.URL+"/metrics"))

	// The acceptance bar: >= 20 named series spanning every layer.
	prefixes := map[string]int{}
	distinct := map[string]bool{}
	for name := range samples {
		base := name
		if i := strings.IndexByte(base, '{'); i >= 0 {
			base = base[:i]
		}
		base = strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(base,
			"_bucket"), "_sum"), "_count")
		distinct[base] = true
		for _, p := range []string{"mimicnet_sim_", "mimicnet_ml_", "mimicnet_core_", "mimicnet_serve_"} {
			if strings.HasPrefix(base, p) {
				prefixes[p]++
			}
		}
	}
	if len(distinct) < 20 {
		t.Fatalf("only %d distinct series families, want >= 20: %v", len(distinct), keys(distinct))
	}
	for _, p := range []string{"mimicnet_sim_", "mimicnet_ml_", "mimicnet_core_", "mimicnet_serve_"} {
		if prefixes[p] == 0 {
			t.Fatalf("no series under %s*", p)
		}
	}

	// The pipeline must have visibly moved the layer counters.
	for _, want := range []string{
		"mimicnet_sim_events_total",
		"mimicnet_ml_train_epochs_total",
		"mimicnet_core_inference_steps_total",
		"mimicnet_serve_jobs_submitted_total",
	} {
		if samples[want] <= 0 {
			t.Fatalf("%s = %v after two jobs, want > 0", want, samples[want])
		}
	}
	if got := samples[`mimicnet_serve_jobs_finished_total{state="done"}`]; got != 2 {
		t.Fatalf("jobs done = %v, want 2", got)
	}
	if got := samples[`mimicnet_serve_registry_lookups_total{result="miss"}`]; got != 1 {
		t.Fatalf("registry misses = %v, want 1 (cold job only)", got)
	}
	if hits := samples[`mimicnet_serve_registry_lookups_total{result="mem_hit"}`]; hits < 1 {
		t.Fatalf("registry mem hits = %v, want >= 1 (warm job)", hits)
	}
	if cnt := samples[`mimicnet_serve_job_phase_seconds_count{phase="compose"}`]; cnt != 2 {
		t.Fatalf("compose phase observations = %v, want 2", cnt)
	}
}

func mustGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestMetricsEndpointShape checks the scrape surface directly: content
// type, pprof reachability, and that /stats and /metrics agree on the
// scheduler counters (one source of truth).
func TestMetricsEndpointShape(t *testing.T) {
	ts, sched, reg := newTestServer(t, 8, 1)
	c := NewClient(ts.URL)

	st, err := c.Submit(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if final, err := c.Wait(ctx, st.ID, 10*time.Millisecond, nil); err != nil || final.State != StateDone {
		t.Fatalf("job: %v / %+v", err, final)
	}

	samples := scrape(t, ts.URL)
	if got := samples[`mimicnet_serve_jobs_finished_total{state="done"}`]; got != float64(sched.Stats().Done) {
		t.Fatalf("/metrics done=%v disagrees with /stats done=%d", got, sched.Stats().Done)
	}
	if got := samples[`mimicnet_serve_registry_lookups_total{result="miss"}`]; got != float64(reg.Stats().Misses) {
		t.Fatalf("/metrics misses=%v disagrees with /stats misses=%d", got, reg.Stats().Misses)
	}
	if got := samples["mimicnet_serve_queue_capacity"]; got != 8 {
		t.Fatalf("queue capacity = %v, want 8", got)
	}
	if up := samples["mimicnet_serve_uptime_seconds"]; up <= 0 {
		t.Fatalf("uptime = %v, want > 0", up)
	}

	// pprof is wired on the same mux.
	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/ status %d", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "goroutine") {
		t.Fatal("/debug/pprof/ index missing profile listing")
	}
}
