package serve

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// tinySpec is the smallest job that exercises the full pipeline: a
// 2-cluster estimate over 1-rack clusters with a thumbnail model.
func tinySpec() JobSpec {
	return JobSpec{
		Clusters: 2, Racks: 1, Hosts: 2, Aggs: 1, CoresPerAgg: 1,
		WorkloadMs: 40, RunMs: 60, SmallRunMs: 50,
		Window: 4, Hidden: 6, Epochs: 1,
	}
}

func newTestServer(t *testing.T, queueDepth, workers int) (*httptest.Server, *Scheduler, *Registry) {
	t.Helper()
	reg, err := NewRegistry(t.TempDir(), 4)
	if err != nil {
		t.Fatal(err)
	}
	sched := NewScheduler(reg, queueDepth, workers)
	ts := httptest.NewServer(NewServer(sched, reg).Handler())
	t.Cleanup(ts.Close)
	return ts, sched, reg
}

// TestServerEndToEnd drives the real pipeline over HTTP: submit, poll to
// completion, resubmit the identical job, and observe the second run
// skipping training via a registry hit — the amortization the subsystem
// exists for.
func TestServerEndToEnd(t *testing.T) {
	ts, _, _ := newTestServer(t, 8, 2)
	c := NewClient(ts.URL)

	if !c.Healthy() {
		t.Fatal("daemon not healthy")
	}

	st, err := c.Submit(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateQueued && st.State != StateRunning {
		t.Fatalf("fresh job state = %s", st.State)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	cold, err := c.Wait(ctx, st.ID, 20*time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cold.State != StateDone {
		t.Fatalf("cold job: state=%s err=%q", cold.State, cold.Error)
	}
	if cold.Result == nil || cold.Result.CacheHit {
		t.Fatalf("cold job result = %+v, want a non-cache-hit result", cold.Result)
	}
	if cold.Result.FCTSeconds.N == 0 {
		t.Fatal("cold job produced no FCT samples")
	}

	st2, err := c.Submit(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	if st2.ModelKey != cold.ModelKey {
		t.Fatalf("identical specs keyed differently: %s vs %s", st2.ModelKey, cold.ModelKey)
	}
	warm, err := c.Wait(ctx, st2.ID, 20*time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	if warm.State != StateDone {
		t.Fatalf("warm job: state=%s err=%q", warm.State, warm.Error)
	}
	if warm.Result == nil || !warm.Result.CacheHit {
		t.Fatal("warm job did not hit the registry")
	}
	// Identical spec ⇒ identical estimate, cold or warm: the cached
	// artifact round-trips bitwise (core round-trip test) and the
	// composition is seeded.
	if warm.Result.FCTSeconds != cold.Result.FCTSeconds {
		t.Fatalf("warm FCT summary %+v != cold %+v", warm.Result.FCTSeconds, cold.Result.FCTSeconds)
	}

	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Registry.Hits() == 0 {
		t.Fatalf("registry stats show no hits after resubmission: %+v", stats.Registry)
	}
	if stats.Scheduler.Done != 2 {
		t.Fatalf("scheduler done = %d, want 2", stats.Scheduler.Done)
	}
}

// TestServerAdmissionAndErrors covers the HTTP error surface with a
// stubbed runner: 429 + Retry-After on overflow, 400 on garbage, 404 on
// unknown IDs, cancellation via DELETE, and 503 health once draining.
func TestServerAdmissionAndErrors(t *testing.T) {
	ts, sched, _ := newTestServer(t, 1, 1)
	release := make(chan struct{})
	sched.runFn = func(ctx context.Context, j *Job) {
		select {
		case <-ctx.Done():
			j.finish(StateCancelled, nil, ctx.Err().Error())
		case <-release:
			j.finish(StateDone, &Summary{}, "")
		}
	}
	c := NewClient(ts.URL)

	// Garbage spec → 400.
	resp, err := c.HTTP.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("garbage spec: HTTP %d, want 400", resp.StatusCode)
	}

	// Unknown job → 404.
	if _, err := c.Job("j424242"); err == nil {
		t.Fatal("unknown job lookup succeeded")
	}

	// Fill worker + queue, then overflow → BusyError with Retry-After.
	first, err := c.Submit(JobSpec{Clusters: 4})
	if err != nil {
		t.Fatal(err)
	}
	waitHTTPState(t, c, first.ID, StateRunning)
	if _, err := c.Submit(JobSpec{Clusters: 4}); err != nil {
		t.Fatal(err)
	}
	_, err = c.Submit(JobSpec{Clusters: 4})
	busy, ok := err.(*BusyError)
	if !ok {
		t.Fatalf("overflow submit: err = %v, want *BusyError", err)
	}
	if busy.RetryAfter < time.Second {
		t.Fatalf("Retry-After %v, want >= 1s", busy.RetryAfter)
	}

	// DELETE cancels the running job; poll shows terminal cancelled.
	if err := c.Cancel(first.ID); err != nil {
		t.Fatal(err)
	}
	waitHTTPState(t, c, first.ID, StateCancelled)

	// Drain: health flips to 503 and submissions are rejected.
	close(release)
	if err := sched.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if c.Healthy() {
		t.Fatal("healthz still 200 while draining")
	}
	if _, err := c.Submit(JobSpec{Clusters: 4}); err == nil {
		t.Fatal("submission accepted while draining")
	}
}

func waitHTTPState(t *testing.T, c *Client, id string, want State) {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for {
		st, err := c.Job(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == want {
			return
		}
		select {
		case <-deadline:
			t.Fatalf("job %s never reached %s (now %s)", id, want, st.State)
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// TestServerJobCancelledMidRun runs a real composition long enough to
// cancel mid-flight and asserts the partial-results contract over HTTP.
func TestServerJobCancelledMidRun(t *testing.T) {
	ts, _, _ := newTestServer(t, 4, 1)
	c := NewClient(ts.URL)

	spec := tinySpec()
	spec.Clusters = 4
	spec.RunMs = 30_000 // far longer than the test will allow
	st, err := c.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the compose phase is reporting progress, then cancel.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	for {
		cur, err := c.Job(st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if cur.Progress.Phase == "compose" && cur.Progress.Events > 0 {
			break
		}
		if cur.State == StateDone || cur.State == StateFailed {
			t.Fatalf("job finished before it could be cancelled: %+v", cur)
		}
		select {
		case <-ctx.Done():
			t.Fatal("timed out waiting for compose progress")
		case <-time.After(10 * time.Millisecond):
		}
	}
	if err := c.Cancel(st.ID); err != nil {
		t.Fatal(err)
	}
	final, err := c.Wait(ctx, st.ID, 20*time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateCancelled {
		t.Fatalf("state = %s, want cancelled", final.State)
	}
	if final.Result == nil || !final.Result.Cancelled {
		t.Fatal("cancelled job did not surface partial results with the Cancelled flag")
	}
	if final.Result.Events == 0 {
		t.Fatal("partial results lost all processed events")
	}
}
