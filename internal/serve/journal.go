package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"time"

	"mimicnet/internal/durable"
	"mimicnet/internal/obs"
)

// The job journal makes the scheduler crash-recoverable: every lifecycle
// transition is appended (fsynced) to a write-ahead journal BEFORE the
// effect is acknowledged, so a daemon killed at any instant can rebuild
// its job table on the next boot. Recovery re-enqueues jobs that never
// reached a terminal state; re-execution is idempotent because the model
// registry content-addresses artifacts (a job whose training finished
// before the crash hits the registry) and the training checkpointer
// resumes interrupted trainings from their last epoch boundary.
//
// Record types, JSON-encoded per journal frame:
//
//	accepted  {id, key, spec}   job admitted (written before the enqueue)
//	started   {id}              a worker began executing
//	phase     {id, phase}       pipeline phase transition (train|compose)
//	done      {id, result}      terminal: success
//	failed    {id, error}       terminal: error
//	cancelled {id, error}       terminal: cancel or deadline
//
// On boot the journal is folded into a snapshot (SnapshotAndCompact), so
// replay cost stays proportional to the live job table, not history.

// SchedulerOptions configures NewSchedulerWithOptions. The zero value
// reproduces NewScheduler's defaults with durability disabled.
type SchedulerOptions struct {
	QueueDepth int // <= 0 selects 64
	Workers    int // <= 0 selects GOMAXPROCS

	// JournalDir, when non-empty, enables the write-ahead job journal:
	// transitions are fsynced there and replayed on construction.
	JournalDir string

	// CheckpointDir, when non-empty, enables durable training
	// checkpoints keyed by each job's model content address, cut every
	// CheckpointEvery epochs (<= 0 selects every epoch).
	CheckpointDir   string
	CheckpointEvery int

	// DatasetDir, when non-empty, enables the columnar dataset cache:
	// small-scale datagen output is persisted there keyed by each job's
	// DatasetKey, and later jobs that share the key (same datagen knobs,
	// any model hyper-parameters) replay the file instead of re-running
	// the small-scale simulation.
	DatasetDir string

	// runFn substitutes the job executor BEFORE recovered jobs are
	// re-enqueued and workers start — the post-construction swap the
	// stub tests use elsewhere would race against requeued work here.
	// Test seam; nil selects the real pipeline.
	runFn func(ctx context.Context, j *Job)
}

// Journal record types.
const (
	recAccepted  = "accepted"
	recStarted   = "started"
	recPhase     = "phase"
	recDone      = "done"
	recFailed    = "failed"
	recCancelled = "cancelled"
)

// jobRecord is one journal frame.
type jobRecord struct {
	Type   string    `json:"type"`
	ID     string    `json:"id"`
	Key    string    `json:"key,omitempty"`
	Spec   *JobSpec  `json:"spec,omitempty"`
	Phase  string    `json:"phase,omitempty"`
	Error  string    `json:"error,omitempty"`
	Result *Summary  `json:"result,omitempty"`
	Time   time.Time `json:"time"`
}

// journalSnapshot is the compacted journal state: the whole job table at
// one sequence point. Records appended later apply on top during replay.
type journalSnapshot struct {
	NextID uint64        `json:"next_id"`
	Jobs   []snapshotJob `json:"jobs"` // submission order
}

type snapshotJob struct {
	ID        string     `json:"id"`
	Key       string     `json:"key"`
	Spec      JobSpec    `json:"spec"`
	State     State      `json:"state"`
	Phase     string     `json:"phase,omitempty"`
	Error     string     `json:"error,omitempty"`
	Result    *Summary   `json:"result,omitempty"`
	Submitted time.Time  `json:"submitted"`
	Started   *time.Time `json:"started,omitempty"`
	Finished  *time.Time `json:"finished,omitempty"`
}

// RecoveryReport summarizes what a journal replay reconstructed; the
// daemon logs it at boot.
type RecoveryReport struct {
	Replayed  int `json:"replayed"`  // journal records applied
	Torn      int `json:"torn"`      // clipped torn tails / seq gaps
	Jobs      int `json:"jobs"`      // jobs known after recovery
	Requeued  int `json:"requeued"`  // unfinished jobs re-enqueued
	Completed int `json:"completed"` // terminal jobs restored for GETs
}

func (r RecoveryReport) String() string {
	return fmt.Sprintf("replayed %d records (%d torn): %d jobs, %d requeued, %d terminal",
		r.Replayed, r.Torn, r.Jobs, r.Requeued, r.Completed)
}

// NewSchedulerWithOptions builds a scheduler, replaying the job journal
// first when opt.JournalDir is set: terminal jobs are restored so GET
// /v1/jobs/{id} survives restarts, and unfinished jobs go back on the
// queue (grown past QueueDepth if the backlog demands it) before any new
// submission is accepted.
func NewSchedulerWithOptions(reg *Registry, opt SchedulerOptions) (*Scheduler, *RecoveryReport, error) {
	queueDepth := opt.QueueDepth
	if queueDepth <= 0 {
		queueDepth = 64
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	s := &Scheduler{
		reg:           reg,
		workers:       workers,
		jobs:          make(map[string]*Job),
		hPhaseTrain:   obs.NewHistogram(obs.TimeBuckets()),
		hPhaseCompose: obs.NewHistogram(obs.TimeBuckets()),
		ckptDir:       opt.CheckpointDir,
		ckptEvery:     opt.CheckpointEvery,
		dsDir:         opt.DatasetDir,
	}
	s.runFn = s.runJob
	if opt.runFn != nil {
		s.runFn = opt.runFn
	}

	rep := &RecoveryReport{}
	var pending []*Job
	if opt.JournalDir != "" {
		jnl, info, err := durable.OpenJournal(opt.JournalDir, durable.JournalOptions{})
		if err != nil {
			return nil, nil, fmt.Errorf("serve: job journal: %w", err)
		}
		s.journal = jnl
		pending = s.replay(info, rep)
		if len(pending) > queueDepth {
			queueDepth = len(pending)
		}
	}
	s.queue = make(chan *Job, queueDepth)
	for _, j := range pending {
		s.queue <- j
		s.cRequeued.Inc()
	}
	if s.journal != nil {
		// Fold history into a snapshot so the next boot replays the job
		// table, not every transition since the beginning of time.
		if err := s.Compact(); err != nil {
			s.cJournalErrs.Inc()
		}
	}

	s.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go s.worker()
	}
	return s, rep, nil
}

// replay folds the snapshot and the surviving records into the job
// table (s.jobs/s.order/s.nextID) and returns the jobs to re-enqueue.
// Runs before any worker starts, so no locking is needed.
func (s *Scheduler) replay(info *durable.RecoveryInfo, rep *RecoveryReport) []*Job {
	states := make(map[string]*snapshotJob)
	var order []string
	if len(info.Snapshot) > 0 {
		var snap journalSnapshot
		if err := json.Unmarshal(info.Snapshot, &snap); err == nil {
			s.nextID = snap.NextID
			for i := range snap.Jobs {
				sj := snap.Jobs[i]
				states[sj.ID] = &sj
				order = append(order, sj.ID)
			}
		}
	}
	rep.Torn = info.Torn
	for _, r := range info.Records {
		var rec jobRecord
		if err := json.Unmarshal(r.Payload, &rec); err != nil {
			continue // foreign or versioned-away record: skip, don't fail
		}
		rep.Replayed++
		sj := states[rec.ID]
		switch rec.Type {
		case recAccepted:
			if sj != nil || rec.Spec == nil {
				continue
			}
			states[rec.ID] = &snapshotJob{
				ID: rec.ID, Key: rec.Key, Spec: *rec.Spec,
				State: StateQueued, Submitted: rec.Time,
			}
			order = append(order, rec.ID)
		case recStarted:
			if sj == nil {
				continue
			}
			sj.State = StateRunning
			t := rec.Time
			sj.Started = &t
		case recPhase:
			if sj == nil {
				continue
			}
			sj.Phase = rec.Phase
		case recDone, recFailed, recCancelled:
			if sj == nil {
				continue
			}
			switch rec.Type {
			case recDone:
				sj.State = StateDone
			case recFailed:
				sj.State = StateFailed
			case recCancelled:
				sj.State = StateCancelled
			}
			sj.Error = rec.Error
			sj.Result = rec.Result
			t := rec.Time
			sj.Finished = &t
		}
	}

	var pending []*Job
	for _, id := range order {
		sj := states[id]
		j := rebuildJob(sj)
		s.jobs[id] = j
		s.order = append(s.order, id)
		if n := idNum(id); n > s.nextID {
			s.nextID = n
		}
		if sj.State == StateDone || sj.State == StateFailed || sj.State == StateCancelled {
			rep.Completed++
		} else {
			pending = append(pending, j)
		}
	}
	rep.Jobs = len(order)
	rep.Requeued = len(pending)
	return pending
}

// rebuildJob reconstructs a Job from its journaled state. Terminal jobs
// come back queryable but inert (done closed, context cancelled);
// unfinished jobs come back ready to execute.
func rebuildJob(sj *snapshotJob) *Job {
	ctx, cancel := context.WithCancel(context.Background())
	j := &Job{
		id: sj.ID, key: sj.Key, spec: sj.Spec,
		ctx: ctx, cancel: cancel, done: make(chan struct{}),
		submitted: sj.Submitted,
	}
	j.progress.Phase = sj.Phase
	switch sj.State {
	case StateDone, StateFailed, StateCancelled:
		j.state = sj.State
		j.result = sj.Result
		j.errMsg = sj.Error
		if sj.Started != nil {
			j.started = *sj.Started
		}
		if sj.Finished != nil {
			j.finished = *sj.Finished
		}
		cancel()
		close(j.done)
	default:
		// Interrupted mid-flight (queued or running at crash time): back
		// to the queue. The registry and the training checkpointer make
		// the re-execution idempotent-or-resumed rather than redone.
		j.state = StateQueued
	}
	return j
}

// idNum extracts the numeric part of a "j%06d" job ID (0 if foreign).
func idNum(id string) uint64 {
	var n uint64
	_, _ = fmt.Sscanf(id, "j%d", &n)
	return n
}

// logRecord appends one fsynced record; silently dropped after Kill or
// Close (the crash being simulated, or shutdown). Append failures are
// counted, not fatal: the daemon keeps serving, recovery just loses the
// affected transition.
func (s *Scheduler) logRecord(rec jobRecord) {
	if s.journal == nil {
		return
	}
	s.jmu.Lock()
	defer s.jmu.Unlock()
	if s.jClosed {
		return
	}
	blob, err := json.Marshal(rec)
	if err == nil {
		_, err = s.journal.AppendSync(blob)
	}
	if err != nil {
		s.cJournalErrs.Inc()
	}
}

// logFinish journals the job's terminal record.
func (s *Scheduler) logFinish(j *Job) {
	st := j.Status()
	rec := jobRecord{ID: st.ID, Error: st.Error, Result: st.Result, Time: time.Now()}
	switch st.State {
	case StateDone:
		rec.Type = recDone
	case StateFailed:
		rec.Type = recFailed
	case StateCancelled:
		rec.Type = recCancelled
	default:
		return
	}
	s.logRecord(rec)
}

// snapshotState projects the whole job table for compaction.
func (s *Scheduler) snapshotState() journalSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := journalSnapshot{NextID: s.nextID}
	for _, id := range s.order {
		st := s.jobs[id].Status()
		snap.Jobs = append(snap.Jobs, snapshotJob{
			ID: st.ID, Key: st.ModelKey, Spec: st.Spec, State: st.State,
			Phase: st.Progress.Phase, Error: st.Error, Result: st.Result,
			Submitted: st.Submitted, Started: st.Started, Finished: st.Finished,
		})
	}
	return snap
}

// Compact folds the job table into a journal snapshot and truncates the
// record segments. Called on boot after recovery; safe any time.
func (s *Scheduler) Compact() error {
	if s.journal == nil {
		return nil
	}
	blob, err := json.Marshal(s.snapshotState())
	if err != nil {
		return err
	}
	s.jmu.Lock()
	defer s.jmu.Unlock()
	if s.jClosed {
		return nil
	}
	return s.journal.SnapshotAndCompact(blob)
}

// Kill simulates a crash for recovery drills (tests and -smoke): all
// further journal writes are suppressed — as if the process died before
// making them — the journal file is released so a successor scheduler
// can open the same directory, and every job context is cancelled so
// workers wind down. The in-memory Scheduler stays queryable but is
// dead for durability purposes; rebuild from the same directories to
// recover.
func (s *Scheduler) Kill() {
	s.jmu.Lock()
	if !s.jClosed {
		s.jClosed = true
		if s.journal != nil {
			_ = s.journal.Close()
		}
	}
	s.jmu.Unlock()

	s.mu.Lock()
	already := s.draining
	s.draining = true
	if !already {
		close(s.queue)
	}
	jobs := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	for _, j := range jobs {
		j.cancel()
	}
}

// Close compacts and releases the journal after an orderly drain. The
// scheduler must not be used for new work afterwards.
func (s *Scheduler) Close() error {
	if s.journal == nil {
		return nil
	}
	_ = s.Compact() // best effort: next boot replays a snapshot, not history
	s.jmu.Lock()
	defer s.jmu.Unlock()
	if s.jClosed {
		return nil
	}
	s.jClosed = true
	return s.journal.Close()
}
