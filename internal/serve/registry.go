package serve

import (
	"container/list"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"mimicnet/internal/core"
	"mimicnet/internal/durable"
	"mimicnet/internal/obs"
)

// Registry is the content-addressed store of trained model artifacts.
// Keys are core.ModelKey digests — a canonical SHA-256 of the training-
// relevant configuration — so identical training work is provably
// identical and is performed at most once:
//
//   - an in-memory LRU holds the hottest decoded *core.MimicModels;
//   - an on-disk store (<dir>/<key>.json, atomic rename) survives
//     restarts and LRU eviction;
//   - singleflight deduplication coalesces concurrent identical requests
//     onto one trainer, with followers blocking until it finishes;
//   - a corrupt disk blob is counted, discarded, and falls back to
//     retraining — cache damage can slow a job down but never fail it.
type Registry struct {
	dir    string // "" = memory-only
	memCap int

	mu       sync.Mutex
	lru      *list.List // of *regEntry, front = most recent
	idx      map[string]*list.Element
	inflight map[string]*flight

	// Telemetry cells: one source of truth for Stats() and, once
	// ExposeTo binds them, GET /metrics.
	cMemHits     obs.Counter
	cDiskHits    obs.Counter
	cMisses      obs.Counter
	cCoalesced   obs.Counter
	cCorrupt     obs.Counter
	cEvictions   obs.Counter
	cStoreErrors obs.Counter
}

type regEntry struct {
	key    string
	models *core.MimicModels
}

// flight is one in-progress materialization; followers wait on done.
type flight struct {
	done   chan struct{}
	models *core.MimicModels
	err    error
}

// RegistryStats are the registry's cache counters. Hits() is the number
// the serve-smoke target asserts grows on resubmission.
type RegistryStats struct {
	MemHits     uint64 `json:"mem_hits"`
	DiskHits    uint64 `json:"disk_hits"`
	Misses      uint64 `json:"misses"` // materializations that had to train
	Coalesced   uint64 `json:"coalesced"`
	Corrupt     uint64 `json:"corrupt"`
	Evictions   uint64 `json:"evictions"`
	StoreErrors uint64 `json:"store_errors"`
	Entries     int    `json:"entries"` // current in-memory population
}

// Hits is the total of cache lookups that skipped training.
func (s RegistryStats) Hits() uint64 { return s.MemHits + s.DiskHits + s.Coalesced }

// NewRegistry creates a registry backed by dir (created if missing; pass
// "" for memory-only) holding at most memCap decoded artifacts in memory
// (<= 0 selects a default of 8).
func NewRegistry(dir string, memCap int) (*Registry, error) {
	if memCap <= 0 {
		memCap = 8
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("serve: registry dir: %w", err)
		}
	}
	return &Registry{
		dir:      dir,
		memCap:   memCap,
		lru:      list.New(),
		idx:      make(map[string]*list.Element),
		inflight: make(map[string]*flight),
	}, nil
}

// Stats snapshots the counters.
func (r *Registry) Stats() RegistryStats {
	s := RegistryStats{
		MemHits:     r.cMemHits.Value(),
		DiskHits:    r.cDiskHits.Value(),
		Misses:      r.cMisses.Value(),
		Coalesced:   r.cCoalesced.Value(),
		Corrupt:     r.cCorrupt.Value(),
		Evictions:   r.cEvictions.Value(),
		StoreErrors: r.cStoreErrors.Value(),
	}
	r.mu.Lock()
	s.Entries = r.lru.Len()
	r.mu.Unlock()
	return s
}

// Get returns the models stored under key, materializing them with train
// exactly once across concurrent callers. hit reports whether training
// was skipped for this caller (memory, disk, or coalescing onto another
// caller's training run). ctx aborts a follower's wait; the leader's
// training itself is bounded by that leader's own ctx inside train.
func (r *Registry) Get(ctx context.Context, key string, train func() (*core.MimicModels, error)) (models *core.MimicModels, hit bool, err error) {
	r.mu.Lock()
	if el, ok := r.idx[key]; ok {
		r.lru.MoveToFront(el)
		r.cMemHits.Inc()
		m := el.Value.(*regEntry).models
		r.mu.Unlock()
		return m, true, nil
	}
	if f, ok := r.inflight[key]; ok {
		r.cCoalesced.Inc()
		r.mu.Unlock()
		select {
		case <-f.done:
			return f.models, true, f.err
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	r.inflight[key] = f
	r.mu.Unlock()

	// Leader path: disk, then training.
	m, fromDisk := r.loadDisk(key)
	if m == nil {
		m, err = train()
		if err == nil {
			r.storeDisk(key, m)
		}
	}

	r.mu.Lock()
	if fromDisk {
		r.cDiskHits.Inc()
	} else if err == nil {
		r.cMisses.Inc()
	}
	if err == nil {
		r.insertLocked(key, m)
	}
	delete(r.inflight, key)
	r.mu.Unlock()

	f.models, f.err = m, err
	close(f.done)
	return m, fromDisk, err
}

// Contains reports whether key is resident in memory or on disk, without
// counting a hit or touching LRU order.
func (r *Registry) Contains(key string) bool {
	r.mu.Lock()
	_, ok := r.idx[key]
	r.mu.Unlock()
	if ok || r.dir == "" {
		return ok
	}
	_, statErr := os.Stat(r.path(key))
	return statErr == nil
}

func (r *Registry) insertLocked(key string, m *core.MimicModels) {
	if el, ok := r.idx[key]; ok {
		r.lru.MoveToFront(el)
		el.Value.(*regEntry).models = m
		return
	}
	r.idx[key] = r.lru.PushFront(&regEntry{key: key, models: m})
	for r.lru.Len() > r.memCap {
		back := r.lru.Back()
		e := back.Value.(*regEntry)
		r.lru.Remove(back)
		delete(r.idx, e.key)
		r.cEvictions.Inc() // the disk copy, if any, remains
	}
}

func (r *Registry) path(key string) string {
	return filepath.Join(r.dir, key+".json")
}

// loadDisk attempts the on-disk copy. A missing file is a plain miss; an
// unreadable or undecodable blob counts as corrupt and falls back to
// retraining.
func (r *Registry) loadDisk(key string) (*core.MimicModels, bool) {
	if r.dir == "" {
		return nil, false
	}
	blob, err := os.ReadFile(r.path(key))
	if err != nil {
		if !os.IsNotExist(err) {
			r.countCorrupt()
		}
		return nil, false
	}
	m, err := core.LoadModels(blob)
	if err != nil {
		r.countCorrupt()
		_ = os.Remove(r.path(key))
		return nil, false
	}
	return m, true
}

func (r *Registry) countCorrupt() { r.cCorrupt.Inc() }

// storeDisk persists through the shared durable helper (temp file +
// fsync + atomic rename + directory fsync), so readers never observe a
// torn write and a stored artifact survives power loss, not just process
// death. Store failures degrade to memory-only caching.
func (r *Registry) storeDisk(key string, m *core.MimicModels) {
	if r.dir == "" {
		return
	}
	blob, err := m.Save()
	if err == nil {
		err = durable.WriteFileAtomic(r.path(key), blob, 0o644)
	}
	if err != nil {
		r.cStoreErrors.Inc()
	}
}
