package serve

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"mimicnet/internal/cluster"
	"mimicnet/internal/core"
	"mimicnet/internal/durable"
	"mimicnet/internal/ml"
	"mimicnet/internal/obs"
	"mimicnet/internal/sim"
	"mimicnet/internal/tuning"
)

// Admission errors. The HTTP layer maps ErrQueueFull to 429 +
// Retry-After and ErrDraining to 503.
var (
	ErrQueueFull = errors.New("serve: job queue is full")
	ErrDraining  = errors.New("serve: daemon is draining, not accepting jobs")
	ErrNotFound  = errors.New("serve: no such job")
)

// State is a job's lifecycle position.
type State string

// Job lifecycle states.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Progress is the streaming view of a running job, updated from the
// simulation run loop and read by polling GETs.
type Progress struct {
	Phase        string  `json:"phase,omitempty"` // train | compose
	SimTimeS     float64 `json:"sim_time_s"`
	Events       uint64  `json:"events"`
	EventsPerSec float64 `json:"events_per_sec"`

	// Train is the most recent per-epoch training report (the two
	// directions train concurrently; whichever reported last wins). It is
	// set during the train phase and retained through compose so clients
	// can still see how training went after the phase moves on. Nil for
	// registry hits — no training happened.
	Train *TrainProgress `json:"train,omitempty"`
}

// TrainProgress mirrors ml.TrainProgress plus the direction tag, in the
// daemon's JSON vocabulary.
type TrainProgress struct {
	Direction     string  `json:"direction"` // ingress | egress
	Epoch         int     `json:"epoch"`
	Epochs        int     `json:"epochs"`
	Loss          float64 `json:"loss"`
	Samples       int     `json:"samples"`
	SamplesPerSec float64 `json:"samples_per_sec"`
	BatchSize     int     `json:"batch_size"`
}

// Job is one scheduled estimation request.
type Job struct {
	id  string
	key string // content address of the trained artifact

	spec   JobSpec
	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}

	mu        sync.Mutex
	state     State
	progress  Progress
	result    *Summary
	errMsg    string
	submitted time.Time
	started   time.Time
	finished  time.Time
}

// JobStatus is the JSON projection of a Job.
type JobStatus struct {
	ID        string     `json:"id"`
	State     State      `json:"state"`
	ModelKey  string     `json:"model_key"`
	Spec      JobSpec    `json:"spec"`
	Progress  Progress   `json:"progress"`
	Result    *Summary   `json:"result,omitempty"`
	Error     string     `json:"error,omitempty"`
	Submitted time.Time  `json:"submitted"`
	Started   *time.Time `json:"started,omitempty"`
	Finished  *time.Time `json:"finished,omitempty"`
}

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }

// Done is closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Cancel requests cooperative cancellation (queued jobs skip execution;
// running jobs stop at the next cancellation check and keep partial
// results).
func (j *Job) Cancel() { j.cancel() }

// Status snapshots the job.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:        j.id,
		State:     j.state,
		ModelKey:  j.key,
		Spec:      j.spec,
		Progress:  j.progress,
		Result:    j.result,
		Error:     j.errMsg,
		Submitted: j.submitted,
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	return st
}

func (j *Job) setPhase(phase string) {
	j.mu.Lock()
	j.progress.Phase = phase
	j.mu.Unlock()
}

func (j *Job) setProgress(p Progress) {
	j.mu.Lock()
	p.Train = j.progress.Train // training reports outlive the train phase
	j.progress = p
	j.mu.Unlock()
}

func (j *Job) setTrainProgress(tp TrainProgress) {
	j.mu.Lock()
	j.progress.Train = &tp
	j.mu.Unlock()
}

func (j *Job) finish(state State, result *Summary, errMsg string) {
	j.mu.Lock()
	j.state = state
	j.result = result
	j.errMsg = errMsg
	j.finished = time.Now()
	j.mu.Unlock()
	close(j.done)
}

// Scheduler is the admission-controlled worker pool that executes jobs:
// a bounded queue (overflow is rejected at submission, never silently
// dropped) feeding GOMAXPROCS-sized workers that run the train→tune→
// compose pipeline with per-job cancellation and deadlines.
type Scheduler struct {
	reg *Registry

	queue   chan *Job
	workers int

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string // submission order, for listing
	draining bool
	nextID   uint64
	avgSec   float64 // EWMA of job wall-clock, for Retry-After estimates

	// Telemetry cells. Per-instance atomics read by both Stats() and —
	// once ExposeTo binds them — the obs registry behind GET /metrics,
	// so the two views can never disagree.
	cSubmitted      obs.Counter
	cRejectFull     obs.Counter
	cRejectDraining obs.Counter
	cDone           obs.Counter
	cFailed         obs.Counter
	cCancelled      obs.Counter
	cRequeued       obs.Counter
	cJournalErrs    obs.Counter
	cDatasetHits    obs.Counter
	cDatasetMisses  obs.Counter
	cDatasetCorrupt obs.Counter
	gRunning        obs.Gauge
	hPhaseTrain     *obs.Histogram
	hPhaseCompose   *obs.Histogram

	// Durability (journal.go). journal is nil when the scheduler runs
	// memory-only; jmu orders appends against Kill/Close; jClosed
	// suppresses writes once the journal is gone. ckptDir/ckptEvery
	// configure per-job training checkpoints.
	journal   *durable.Journal
	jmu       sync.Mutex
	jClosed   bool
	ckptDir   string
	ckptEvery int
	dsDir     string // columnar dataset cache root ("" = disabled)

	wg sync.WaitGroup

	// runFn executes one admitted job and must drive it to a terminal
	// state. Tests substitute a stub; production uses (*Scheduler).runJob.
	runFn func(ctx context.Context, j *Job)
}

// NewScheduler starts a memory-only scheduler over the registry with the
// given queue depth (<= 0 selects 64) and worker count (<= 0 selects
// GOMAXPROCS). For a crash-recoverable scheduler use
// NewSchedulerWithOptions with a JournalDir.
func NewScheduler(reg *Registry, queueDepth, workers int) *Scheduler {
	s, _, _ := NewSchedulerWithOptions(reg, SchedulerOptions{
		QueueDepth: queueDepth, Workers: workers,
	})
	return s
}

// Workers returns the worker-pool size.
func (s *Scheduler) Workers() int { return s.workers }

// QueueDepth returns (queued, capacity).
func (s *Scheduler) QueueDepth() (int, int) { return len(s.queue), cap(s.queue) }

// Submit validates, keys, and enqueues a job. It fails fast with
// ErrQueueFull when the bounded queue is at capacity and ErrDraining
// once a drain has begun.
func (s *Scheduler) Submit(spec JobSpec) (*Job, error) {
	spec = spec.Normalized()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	key, err := spec.ModelKey()
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	j := &Job{
		key:       key,
		spec:      spec,
		ctx:       ctx,
		cancel:    cancel,
		done:      make(chan struct{}),
		state:     StateQueued,
		submitted: time.Now(),
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		cancel()
		s.cRejectDraining.Inc()
		return nil, ErrDraining
	}
	if len(s.queue) == cap(s.queue) {
		s.mu.Unlock()
		cancel()
		s.cRejectFull.Inc()
		return nil, ErrQueueFull
	}
	s.nextID++
	j.id = fmt.Sprintf("j%06d", s.nextID)
	// Write-ahead: the accepted record is fsynced before the job becomes
	// visible to workers, so an admitted job can never be forgotten.
	// Capacity was checked above under s.mu (only Submit adds to the
	// queue), so this send cannot block.
	s.logRecord(jobRecord{Type: recAccepted, ID: j.id, Key: key, Spec: &spec, Time: j.submitted})
	s.queue <- j
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.mu.Unlock()
	s.cSubmitted.Inc()
	return j, nil
}

// Job looks up a job by ID.
func (s *Scheduler) Job(id string) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	return j, nil
}

// Jobs lists all known jobs in submission order.
func (s *Scheduler) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out
}

// Draining reports whether a drain has begun.
func (s *Scheduler) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain stops admission immediately (subsequent Submits fail with
// ErrDraining), lets queued and running jobs finish, and returns when the
// pool is idle or ctx expires (workers keep finishing in the background
// on timeout). Safe to call more than once.
func (s *Scheduler) Drain(ctx context.Context) error {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	if !already {
		close(s.queue)
	}
	s.mu.Unlock()

	idle := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(idle)
	}()
	select {
	case <-idle:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// RetryAfter estimates, in whole seconds, how long a rejected client
// should wait for queue headroom: the observed average job duration
// scaled by queue occupancy per worker. Clamped to [1, 300].
func (s *Scheduler) RetryAfter() int {
	s.mu.Lock()
	avg := s.avgSec
	s.mu.Unlock()
	if avg <= 0 {
		avg = 5 // no history yet; a training run is seconds at minimum
	}
	queued, _ := s.QueueDepth()
	sec := int(avg*float64(queued+1)/float64(s.workers)) + 1
	if sec < 1 {
		sec = 1
	}
	if sec > 300 {
		sec = 300
	}
	return sec
}

// SchedulerStats is the /stats projection of the pool.
type SchedulerStats struct {
	Workers       int    `json:"workers"`
	Queued        int    `json:"queued"`
	QueueCapacity int    `json:"queue_capacity"`
	Running       int    `json:"running"`
	Done          uint64 `json:"done"`
	Failed        uint64 `json:"failed"`
	Cancelled     uint64 `json:"cancelled"`
	Draining      bool   `json:"draining"`
	RetryAfterSec int    `json:"retry_after_sec"`
}

// Stats snapshots the pool counters.
func (s *Scheduler) Stats() SchedulerStats {
	queued, capacity := s.QueueDepth()
	st := SchedulerStats{
		Workers:       s.workers,
		Queued:        queued,
		QueueCapacity: capacity,
		RetryAfterSec: s.RetryAfter(),
	}
	st.Done = s.cDone.Value()
	st.Failed = s.cFailed.Value()
	st.Cancelled = s.cCancelled.Value()
	s.mu.Lock()
	st.Draining = s.draining
	for _, j := range s.jobs {
		j.mu.Lock()
		if j.state == StateRunning {
			st.Running++
		}
		j.mu.Unlock()
	}
	s.mu.Unlock()
	return st
}

func (s *Scheduler) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.execute(j)
	}
}

func (s *Scheduler) execute(j *Job) {
	if j.ctx.Err() != nil {
		j.finish(StateCancelled, nil, "cancelled while queued")
		s.logFinish(j)
		s.account(StateCancelled, 0)
		return
	}
	j.mu.Lock()
	j.state = StateRunning
	j.started = time.Now()
	j.mu.Unlock()
	s.logRecord(jobRecord{Type: recStarted, ID: j.id, Time: time.Now()})
	s.gRunning.Add(1)
	defer s.gRunning.Add(-1)

	ctx := j.ctx
	if j.spec.DeadlineMs > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(j.spec.DeadlineMs*float64(time.Millisecond)))
		defer cancel()
	}
	s.runFn(ctx, j)
	s.logFinish(j)

	st := j.Status()
	var dur time.Duration
	if st.Started != nil && st.Finished != nil {
		dur = st.Finished.Sub(*st.Started)
	}
	s.account(st.State, dur)
}

func (s *Scheduler) account(state State, dur time.Duration) {
	switch state {
	case StateDone:
		s.cDone.Inc()
	case StateFailed:
		s.cFailed.Inc()
	case StateCancelled:
		s.cCancelled.Inc()
	}
	s.mu.Lock()
	if dur > 0 {
		if s.avgSec == 0 {
			s.avgSec = dur.Seconds()
		} else {
			s.avgSec = 0.7*s.avgSec + 0.3*dur.Seconds()
		}
	}
	s.mu.Unlock()
}

// runJob executes the full pipeline for one job: obtain models through
// the registry (training at most once across concurrent identical jobs),
// then compose and run the large-scale estimate with cancellation and
// progress plumbed into the kernel's run loop.
func (s *Scheduler) runJob(ctx context.Context, j *Job) {
	base, tcfg, err := j.spec.Configs()
	if err != nil {
		j.finish(StateFailed, nil, err.Error())
		return
	}

	j.setPhase("train")
	s.logRecord(jobRecord{Type: recPhase, ID: j.id, Phase: "train", Time: time.Now()})
	var ckpt *core.TrainCheckpointer
	if s.ckptDir != "" {
		ckpt = &core.TrainCheckpointer{Dir: s.ckptDir, Key: j.key, Every: s.ckptEvery}
	}
	t0 := time.Now()
	models, hit, err := s.reg.Get(ctx, j.key, func() (*core.MimicModels, error) {
		return s.trainForSpec(ctx, base, tcfg, j.spec, func(dir core.Direction, p ml.TrainProgress) {
			j.setTrainProgress(TrainProgress{
				Direction:     dir.String(),
				Epoch:         p.Epoch,
				Epochs:        p.Epochs,
				Loss:          p.Loss,
				Samples:       p.Samples,
				SamplesPerSec: p.SamplesPerSec,
				BatchSize:     p.BatchSize,
			})
		}, ckpt)
	})
	if err == nil {
		// The artifact is durably in the registry; the training cursors
		// are dead weight now.
		ckpt.Clear()
	}
	trainDur := time.Since(t0)
	s.hPhaseTrain.Observe(trainDur.Seconds())
	if err != nil {
		if ctx.Err() != nil {
			j.finish(StateCancelled, nil, ctx.Err().Error())
		} else {
			j.finish(StateFailed, nil, err.Error())
		}
		return
	}

	j.setPhase("compose")
	s.logRecord(jobRecord{Type: recPhase, ID: j.id, Phase: "compose", Time: time.Now()})
	cfg := base
	cfg.Topo = base.Topo.WithClusters(j.spec.Clusters)
	comp, err := core.Compose(cfg, models)
	if err != nil {
		j.finish(StateFailed, nil, err.Error())
		return
	}
	t1 := time.Now()
	comp.Progress = func(now sim.Time, events uint64) {
		p := Progress{Phase: "compose", SimTimeS: now.Seconds(), Events: events}
		if wall := time.Since(t1).Seconds(); wall > 0 {
			p.EventsPerSec = float64(events) / wall
		}
		j.setProgress(p)
	}
	cancelled := comp.RunContext(ctx, j.spec.runTime())
	composeDur := time.Since(t1)
	s.hPhaseCompose.Observe(composeDur.Seconds())

	sum := summarize(comp.Results(), comp.FlowsStarted(), comp.FlowsCompleted(),
		trainDur, composeDur, j.spec.runTime(), hit)
	if cancelled {
		j.finish(StateCancelled, sum, "cancelled mid-run; results are partial")
		return
	}
	j.finish(StateDone, sum, "")
}

// trainForSpec is the registry's materializer: data generation (or a
// dataset-cache replay), training, and optional hyper-parameter tuning.
// Data generation and the final training honor ctx mid-phase (the
// tuning loop still only checks at phase boundaries), and per-epoch
// progress streams through the callback. A non-nil ckpt makes the final
// training durably resumable (tuning trials are not checkpointed: they
// are many, short, and disposable).
func (s *Scheduler) trainForSpec(ctx context.Context, base cluster.Config, tcfg core.TrainConfig, spec JobSpec, progress core.TrainProgressFunc, ckpt *core.TrainCheckpointer) (*core.MimicModels, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ing, eg, err := s.datasetsForSpec(ctx, base, tcfg, spec)
	if err != nil {
		return nil, err
	}
	if spec.Tune > 0 {
		valBase := base
		valBase.Workload.Seed = spec.Seed + 1000 // held-out validation workload
		validator, err := tuning.NewValidator(valBase, []int{2, 4}, spec.smallRunTime(), spec.TuneMetric)
		if err != nil {
			return nil, err
		}
		boCfg := tuning.DefaultBayesOptConfig()
		boCfg.InitPoints = min(4, spec.Tune)
		boCfg.Iterations = spec.Tune - boCfg.InitPoints
		boCfg.Workers = runtime.GOMAXPROCS(0) // parallel warm-up trials
		res, err := tuning.BayesOpt(tuning.MimicSpace(),
			tuning.MimicObjective(ing, eg, tcfg, validator), boCfg)
		if err != nil {
			return nil, err
		}
		tcfg = tuning.ApplyParams(tcfg, res.Best.Params)
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	models, _, _, err := core.TrainModelsCkpt(ctx, ing, eg, tcfg, progress, ckpt)
	return models, err
}

// datasetsForSpec produces the two per-direction datasets, preferring
// the persisted columnar cache when a dataset directory is configured.
// A corrupt cache entry is removed and regenerated — the file is a pure
// cache, never the source of truth. Cache write failures are likewise
// non-fatal: the freshly generated datasets train this job either way.
func (s *Scheduler) datasetsForSpec(ctx context.Context, base cluster.Config, tcfg core.TrainConfig, spec JobSpec) (ing, eg *core.Dataset, err error) {
	if s.dsDir == "" {
		ing, eg, _, err = core.GenerateTrainingDataContext(ctx, base, spec.smallRunTime(), tcfg)
		return ing, eg, err
	}
	key, err := core.DatasetKey(base, spec.smallRunTime(), tcfg)
	if err != nil {
		return nil, nil, err
	}
	path := filepath.Join(s.dsDir, key+".dset")
	ing, eg, rerr := core.ReadDatasetFile(path)
	if rerr == nil {
		s.cDatasetHits.Inc()
		return ing, eg, nil
	}
	if errors.Is(rerr, durable.ErrCorrupt) {
		s.cDatasetCorrupt.Inc()
		os.Remove(path)
	}
	s.cDatasetMisses.Inc()
	ing, eg, _, err = core.GenerateTrainingDataContext(ctx, base, spec.smallRunTime(), tcfg)
	if err != nil {
		return nil, nil, err
	}
	if err := os.MkdirAll(s.dsDir, 0o755); err == nil {
		core.WriteDatasetFile(path, ing, eg)
	}
	return ing, eg, nil
}
