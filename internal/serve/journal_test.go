package serve

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// durableStub is the journal tests' job executor: blocks until the job's
// context dies (→ cancelled) or a token arrives on release (→ done).
func durableStub(release chan struct{}) func(ctx context.Context, j *Job) {
	return func(ctx context.Context, j *Job) {
		select {
		case <-ctx.Done():
			j.finish(StateCancelled, nil, ctx.Err().Error())
		case <-release:
			j.finish(StateDone, &Summary{FlowsStarted: 7}, "")
		}
	}
}

// TestSchedulerJournalRecovery kills a journaled scheduler with jobs in
// every state and rebuilds from the same directory: terminal jobs stay
// queryable, unfinished jobs are re-enqueued (growing the queue past its
// configured depth), IDs continue from where they left off.
func TestSchedulerJournalRecovery(t *testing.T) {
	dir := t.TempDir()
	reg, err := NewRegistry("", 2)
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	s1, rep, err := NewSchedulerWithOptions(reg, SchedulerOptions{
		QueueDepth: 4, Workers: 1, JournalDir: dir, runFn: durableStub(release),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Jobs != 0 || rep.Requeued != 0 {
		t.Fatalf("fresh journal recovered %+v", rep)
	}

	finished, err := s1.Submit(JobSpec{Clusters: 4})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, finished, StateRunning)
	release <- struct{}{}
	waitState(t, finished, StateDone)

	running, err := s1.Submit(JobSpec{Clusters: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, running, StateRunning)
	queued, err := s1.Submit(JobSpec{Clusters: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}

	// Crash. The in-flight and queued jobs die without terminal records.
	s1.Kill()
	<-running.Done()
	<-queued.Done()

	// Rebirth from the same directory, with a deliberately undersized
	// queue: recovery must grow it to fit the backlog.
	release2 := make(chan struct{}, 2)
	release2 <- struct{}{}
	release2 <- struct{}{}
	s2, rep2, err := NewSchedulerWithOptions(reg, SchedulerOptions{
		QueueDepth: 1, Workers: 1, JournalDir: dir, runFn: durableStub(release2),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Jobs != 3 || rep2.Completed != 1 || rep2.Requeued != 2 {
		t.Fatalf("recovery report = %+v", rep2)
	}

	// The finished job survived with its result intact.
	done2, err := s2.Job(finished.ID())
	if err != nil {
		t.Fatal(err)
	}
	st := done2.Status()
	if st.State != StateDone || st.Result == nil || st.Result.FlowsStarted != 7 {
		t.Fatalf("recovered terminal job = %+v", st)
	}

	// The interrupted jobs re-execute to completion under the same IDs.
	for _, id := range []string{running.ID(), queued.ID()} {
		j, err := s2.Job(id)
		if err != nil {
			t.Fatalf("job %s lost in recovery: %v", id, err)
		}
		waitState(t, j, StateDone)
	}

	// IDs continue past the recovered maximum.
	release2 <- struct{}{}
	fresh, err := s2.Submit(JobSpec{Clusters: 4, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if fresh.ID() != "j000004" {
		t.Fatalf("post-recovery ID = %s, want j000004", fresh.ID())
	}
	waitState(t, fresh, StateDone)

	// Orderly shutdown compacts; a third boot replays only the snapshot.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s2.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3, rep3, err := NewSchedulerWithOptions(reg, SchedulerOptions{
		QueueDepth: 4, Workers: 1, JournalDir: dir, runFn: durableStub(nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep3.Jobs != 4 || rep3.Requeued != 0 || rep3.Completed != 4 || rep3.Replayed != 0 {
		t.Fatalf("post-compaction recovery = %+v", rep3)
	}
	if len(s3.Jobs()) != 4 {
		t.Fatalf("job listing lost entries: %d", len(s3.Jobs()))
	}
	s3.Kill()
}

// TestSchedulerCrashRecoveryE2E is the acceptance drill: a real job is
// killed mid-train, the scheduler is rebuilt from the same data
// directories, the job runs to completion, and the trained artifact is
// byte-identical to one from a never-interrupted daemon.
func TestSchedulerCrashRecoveryE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("trains real models")
	}
	spec := JobSpec{
		Clusters: 2, Racks: 1, Hosts: 2, Aggs: 1, CoresPerAgg: 1,
		WorkloadMs: 40, RunMs: 60, SmallRunMs: 50,
		Window: 4, Hidden: 6, Epochs: 40,
	}

	// Baseline: uninterrupted run in its own data dir.
	baseDir := t.TempDir()
	baseReg, err := NewRegistry(filepath.Join(baseDir, "registry"), 4)
	if err != nil {
		t.Fatal(err)
	}
	baseSched := NewScheduler(baseReg, 4, 1)
	bj, err := baseSched.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, bj, StateDone)
	key := bj.Status().ModelKey
	want, err := os.ReadFile(filepath.Join(baseDir, "registry", key+".json"))
	if err != nil {
		t.Fatal(err)
	}

	// Crash run: same spec in a durable data dir, killed once training
	// has made progress (at least one checkpointable epoch).
	dataDir := t.TempDir()
	reg1, err := NewRegistry(filepath.Join(dataDir, "registry"), 4)
	if err != nil {
		t.Fatal(err)
	}
	opts := SchedulerOptions{
		QueueDepth: 4, Workers: 1,
		JournalDir:    filepath.Join(dataDir, "journal"),
		CheckpointDir: filepath.Join(dataDir, "ckpt"),
	}
	s1, _, err := NewSchedulerWithOptions(reg1, opts)
	if err != nil {
		t.Fatal(err)
	}
	j1, err := s1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.After(2 * time.Minute)
	for {
		if tp := j1.Status().Progress.Train; tp != nil && tp.Epoch >= 2 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("job never reported training progress")
		case <-time.After(2 * time.Millisecond):
		}
	}
	s1.Kill()
	<-j1.Done()
	if reg1.Contains(key) {
		t.Fatal("killed job cached an artifact")
	}

	// Recovery: fresh registry + scheduler over the same directories.
	reg2, err := NewRegistry(filepath.Join(dataDir, "registry"), 4)
	if err != nil {
		t.Fatal(err)
	}
	s2, rep, err := NewSchedulerWithOptions(reg2, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requeued != 1 {
		t.Fatalf("recovery report = %+v, want 1 requeued", rep)
	}
	j2, err := s2.Job(j1.ID())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j2, StateDone)
	if st := j2.Status(); st.Result == nil || st.Result.Cancelled {
		t.Fatalf("recovered job result = %+v", st.Result)
	}

	got, err := os.ReadFile(filepath.Join(dataDir, "registry", key+".json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("artifact after kill-and-resume differs from uninterrupted run")
	}

	// Success cleared the training cursors.
	if files, _ := filepath.Glob(filepath.Join(dataDir, "ckpt", "*.ckpt")); len(files) != 0 {
		t.Fatalf("checkpoints survived success: %v", files)
	}
	s2.Kill()
}
