package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"mimicnet/internal/ml"
	"mimicnet/internal/obs"
)

// Server is the JSON-over-HTTP surface of the estimation service, built
// on the stdlib mux. Endpoints:
//
//	POST   /v1/jobs      submit a JobSpec → 202 JobStatus
//	                     (429 + Retry-After on queue overflow,
//	                      503 while draining)
//	GET    /v1/jobs      list jobs
//	GET    /v1/jobs/{id} poll one job (status, progress, result)
//	DELETE /v1/jobs/{id} cancel (queued or running)
//	GET    /healthz      liveness + drain state
//	GET    /stats        scheduler + registry counters
//	GET    /metrics      Prometheus text exposition of the obs registry
//	GET    /debug/pprof/ runtime profiling (CPU, heap, goroutines, trace)
type Server struct {
	sched *Scheduler
	reg   *Registry
	start time.Time
}

// NewServer wires the scheduler and registry into an HTTP API and binds
// their telemetry cells into the process-global obs registry, so the
// instance behind the HTTP surface is the one /metrics reports on.
func NewServer(sched *Scheduler, reg *Registry) *Server {
	s := &Server{sched: sched, reg: reg, start: time.Now()}
	sched.ExposeTo(obs.Default())
	reg.ExposeTo(obs.Default())
	obs.Default().GaugeFunc("mimicnet_serve_uptime_seconds",
		"Seconds since the server was constructed.",
		func() float64 { return time.Since(s.start).Seconds() })
	return s
}

// Handler returns the route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.Handle("GET /metrics", obs.Default().Handler())
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad job spec: " + err.Error()})
		return
	}
	j, err := s.sched.Submit(spec)
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", strconv.Itoa(s.sched.RetryAfter()))
		writeJSON(w, http.StatusTooManyRequests, errorBody{Error: err.Error()})
		return
	case errors.Is(err, ErrDraining):
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
		return
	case err != nil:
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusAccepted, j.Status())
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	jobs := s.sched.Jobs()
	out := make([]JobStatus, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.Status())
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) jobFromPath(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	j, err := s.sched.Job(r.PathValue("id"))
	if err != nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: err.Error()})
		return nil, false
	}
	return j, true
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.jobFromPath(w, r); ok {
		writeJSON(w, http.StatusOK, j.Status())
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.jobFromPath(w, r); ok {
		j.Cancel()
		writeJSON(w, http.StatusAccepted, j.Status())
	}
}

// HealthBody is the /healthz payload.
type HealthBody struct {
	Status string `json:"status"` // ok | draining
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.sched.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, HealthBody{Status: "draining"})
		return
	}
	writeJSON(w, http.StatusOK, HealthBody{Status: "ok"})
}

// StatsBody is the /stats payload.
type StatsBody struct {
	UptimeSec float64 `json:"uptime_sec"`
	// GemmKernel is the GEMM kernel family selected at process start
	// (CPUID probe or MIMICNET_GEMM); all families are bitwise identical,
	// so this affects throughput only.
	GemmKernel string         `json:"gemm_kernel"`
	Scheduler  SchedulerStats `json:"scheduler"`
	Registry   RegistryStats  `json:"registry"`
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, StatsBody{
		UptimeSec:  time.Since(s.start).Seconds(),
		GemmKernel: ml.GemmKernelName(),
		Scheduler:  s.sched.Stats(),
		Registry:   s.reg.Stats(),
	})
}
