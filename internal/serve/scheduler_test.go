package serve

import (
	"context"
	"errors"
	"testing"
	"time"
)

// stubScheduler returns a scheduler whose runFn blocks until the job's
// context is cancelled or the returned release channel is closed, so
// admission/drain/cancel behavior is testable without training models.
func stubScheduler(t *testing.T, queueDepth, workers int) (*Scheduler, chan struct{}) {
	t.Helper()
	reg, err := NewRegistry("", 2)
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	s := NewScheduler(reg, queueDepth, workers)
	s.runFn = func(ctx context.Context, j *Job) {
		select {
		case <-ctx.Done():
			j.finish(StateCancelled, nil, ctx.Err().Error())
		case <-release:
			j.finish(StateDone, &Summary{}, "")
		}
	}
	return s, release
}

func waitState(t *testing.T, j *Job, want State) {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for {
		if st := j.Status(); st.State == want {
			return
		}
		select {
		case <-deadline:
			t.Fatalf("job %s never reached %s (now %s)", j.ID(), want, j.Status().State)
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// TestSchedulerAdmissionControl: the bounded queue rejects overflow with
// ErrQueueFull instead of blocking or dropping silently.
func TestSchedulerAdmissionControl(t *testing.T) {
	s, release := stubScheduler(t, 1, 1)
	defer close(release)

	running, err := s.Submit(JobSpec{Clusters: 4})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, running, StateRunning) // occupies the only worker

	if _, err := s.Submit(JobSpec{Clusters: 4}); err != nil {
		t.Fatalf("queue-filling submit failed: %v", err)
	}
	if _, err := s.Submit(JobSpec{Clusters: 4}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow submit: err = %v, want ErrQueueFull", err)
	}
	if ra := s.RetryAfter(); ra < 1 {
		t.Fatalf("RetryAfter = %d, want >= 1", ra)
	}
}

// TestSchedulerCancel covers both cancellation paths: a running job stops
// via its context; a queued job never executes.
func TestSchedulerCancel(t *testing.T) {
	s, release := stubScheduler(t, 2, 1)
	defer close(release)

	running, err := s.Submit(JobSpec{Clusters: 4})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, running, StateRunning)
	queued, err := s.Submit(JobSpec{Clusters: 4})
	if err != nil {
		t.Fatal(err)
	}

	queued.Cancel()
	running.Cancel()
	waitState(t, running, StateCancelled)
	waitState(t, queued, StateCancelled)

	st := s.Stats()
	if st.Cancelled != 2 {
		t.Fatalf("cancelled count = %d, want 2", st.Cancelled)
	}
}

// TestSchedulerDeadline: a job deadline cancels the run cooperatively.
func TestSchedulerDeadline(t *testing.T) {
	s, release := stubScheduler(t, 2, 1)
	defer close(release)
	j, err := s.Submit(JobSpec{Clusters: 4, DeadlineMs: 30})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, StateCancelled)
}

// TestSchedulerDrain: draining rejects new submissions while in-flight
// and queued jobs run to completion.
func TestSchedulerDrain(t *testing.T) {
	s, release := stubScheduler(t, 4, 1)

	running, err := s.Submit(JobSpec{Clusters: 4})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, running, StateRunning)
	queued, err := s.Submit(JobSpec{Clusters: 4})
	if err != nil {
		t.Fatal(err)
	}

	drained := make(chan error, 1)
	go func() { drained <- s.Drain(context.Background()) }()

	// Admission must close before the drain completes.
	for !s.Draining() {
		time.Sleep(time.Millisecond)
	}
	if _, err := s.Submit(JobSpec{Clusters: 4}); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit during drain: err = %v, want ErrDraining", err)
	}

	close(release) // let the in-flight and queued jobs finish
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	waitState(t, running, StateDone)
	waitState(t, queued, StateDone)

	// Drain is idempotent.
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("second drain: %v", err)
	}
}

// TestJobReportsTrainProgress runs the real pipeline and checks the
// train phase is no longer a silent gap: the job's Progress carries
// per-epoch training reports, retained after the phase moves on, and a
// registry hit (no training) leaves them empty.
func TestJobReportsTrainProgress(t *testing.T) {
	if testing.Short() {
		t.Skip("trains real models")
	}
	reg, err := NewRegistry(t.TempDir(), 4)
	if err != nil {
		t.Fatal(err)
	}
	s := NewScheduler(reg, 4, 1)
	spec := JobSpec{
		Clusters: 2, Racks: 1, Hosts: 2, Aggs: 1, CoresPerAgg: 1,
		WorkloadMs: 40, RunMs: 60, SmallRunMs: 50,
		Window: 4, Hidden: 6, Epochs: 2,
	}
	cold, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, cold, StateDone)
	tp := cold.Status().Progress.Train
	if tp == nil {
		t.Fatal("cold job finished with no training progress")
	}
	if tp.Epoch != 2 || tp.Epochs != 2 || tp.SamplesPerSec <= 0 || tp.Samples <= 0 {
		t.Fatalf("train progress = %+v", tp)
	}
	if tp.Direction != "ingress" && tp.Direction != "egress" {
		t.Fatalf("train progress direction = %q", tp.Direction)
	}
	if tp.BatchSize < 1 {
		t.Fatalf("train progress batch size = %d", tp.BatchSize)
	}

	warm, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, warm, StateDone)
	if warm.Status().Progress.Train != nil {
		t.Fatal("registry hit reported training progress")
	}
}

// TestJobCancelledMidTrain: cancelling during the train phase stops the
// job promptly with partial training discarded.
func TestJobCancelledMidTrain(t *testing.T) {
	if testing.Short() {
		t.Skip("trains real models")
	}
	reg, err := NewRegistry(t.TempDir(), 4)
	if err != nil {
		t.Fatal(err)
	}
	s := NewScheduler(reg, 4, 1)
	spec := JobSpec{
		Clusters: 2, Racks: 1, Hosts: 2, Aggs: 1, CoresPerAgg: 1,
		WorkloadMs: 60, RunMs: 60, SmallRunMs: 60,
		Window: 4, Hidden: 24, Epochs: 500, // long enough to cancel mid-train
	}
	j, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.After(2 * time.Minute)
	for j.Status().Progress.Train == nil {
		select {
		case <-deadline:
			t.Fatal("job never reported training progress")
		case <-time.After(2 * time.Millisecond):
		}
	}
	j.Cancel()
	waitState(t, j, StateCancelled)
	if reg.Contains(j.key) {
		t.Fatal("partially trained model was cached")
	}
}

// TestSchedulerRejectsInvalidSpec: validation happens at admission so the
// queue never holds an unrunnable job.
func TestSchedulerRejectsInvalidSpec(t *testing.T) {
	s, release := stubScheduler(t, 2, 1)
	defer close(release)
	if _, err := s.Submit(JobSpec{Clusters: 1}); err == nil {
		t.Fatal("1-cluster spec admitted")
	}
	if _, err := s.Submit(JobSpec{Clusters: 4, Protocol: "carrier-pigeon"}); err == nil {
		t.Fatal("unknown protocol admitted")
	}
	if _, err := s.Job("j999999"); !errors.Is(err, ErrNotFound) {
		t.Fatal("lookup of unknown job did not fail")
	}
}
