package serve

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mimicnet/internal/core"
)

// fakeModels builds a minimal-but-valid artifact (LoadModels only
// requires both directions present), cheap enough to stamp per test.
func fakeModels(window int) *core.MimicModels {
	return &core.MimicModels{
		Window:  window,
		Ingress: &core.DirectionModel{},
		Egress:  &core.DirectionModel{},
	}
}

func newTestRegistry(t *testing.T, memCap int) *Registry {
	t.Helper()
	r, err := NewRegistry(t.TempDir(), memCap)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestRegistrySingleflight is the satellite's core claim: N concurrent
// identical submissions train exactly once, and every caller gets the
// same artifact.
func TestRegistrySingleflight(t *testing.T) {
	r := newTestRegistry(t, 4)
	var trainings atomic.Int32
	train := func() (*core.MimicModels, error) {
		trainings.Add(1)
		time.Sleep(50 * time.Millisecond) // hold the flight open
		return fakeModels(7), nil
	}

	const callers = 8
	var wg sync.WaitGroup
	results := make([]*core.MimicModels, callers)
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i], _, errs[i] = r.Get(context.Background(), "key-a", train)
		}()
	}
	wg.Wait()

	if n := trainings.Load(); n != 1 {
		t.Fatalf("%d concurrent identical requests trained %d times, want 1", callers, n)
	}
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if results[i] != results[0] {
			t.Fatalf("caller %d got a different artifact", i)
		}
	}
	st := r.Stats()
	if st.Misses != 1 || st.Coalesced != callers-1 {
		t.Fatalf("stats = %+v, want 1 miss and %d coalesced", st, callers-1)
	}

	// A later request is a pure memory hit.
	if _, hit, err := r.Get(context.Background(), "key-a", train); err != nil || !hit {
		t.Fatalf("resubmission: hit=%v err=%v, want memory hit", hit, err)
	}
	if trainings.Load() != 1 {
		t.Fatal("resubmission retrained")
	}
}

// TestRegistryKeySeedSensitivity: differing seeds must produce different
// content addresses (and everything else equal, the same address).
func TestRegistryKeySeedSensitivity(t *testing.T) {
	spec := JobSpec{Clusters: 8}.Normalized()
	k1, err := spec.ModelKey()
	if err != nil {
		t.Fatal(err)
	}
	same := spec
	same.Clusters = 128 // composition size must not affect the artifact key
	k2, err := same.ModelKey()
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatal("cluster count changed the model key")
	}
	seeded := spec
	seeded.Seed = spec.Seed + 1
	k3, err := seeded.ModelKey()
	if err != nil {
		t.Fatal(err)
	}
	if k3 == k1 {
		t.Fatal("differing seeds produced the same model key")
	}
	tuned := spec
	tuned.Tune = 4
	k4, err := tuned.ModelKey()
	if err != nil {
		t.Fatal(err)
	}
	if k4 == k1 {
		t.Fatal("tuning budget not reflected in the model key")
	}
}

// TestRegistryCorruptBlobFallback: a damaged on-disk blob must fall back
// to retraining (counted as corrupt), not fail the job.
func TestRegistryCorruptBlobFallback(t *testing.T) {
	dir := t.TempDir()
	r, err := NewRegistry(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	const key = "deadbeef"
	if err := os.WriteFile(filepath.Join(dir, key+".json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	var trainings atomic.Int32
	m, hit, err := r.Get(context.Background(), key, func() (*core.MimicModels, error) {
		trainings.Add(1)
		return fakeModels(3), nil
	})
	if err != nil {
		t.Fatalf("corrupt blob failed the request: %v", err)
	}
	if hit {
		t.Fatal("corrupt blob reported as a cache hit")
	}
	if trainings.Load() != 1 {
		t.Fatalf("trainings = %d, want 1 (fallback retrain)", trainings.Load())
	}
	if m == nil || m.Window != 3 {
		t.Fatal("fallback did not return the retrained artifact")
	}
	st := r.Stats()
	if st.Corrupt != 1 {
		t.Fatalf("corrupt counter = %d, want 1", st.Corrupt)
	}
	// The rewritten blob must now round-trip from disk.
	blob, err := os.ReadFile(filepath.Join(dir, key+".json"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.LoadModels(blob); err != nil {
		t.Fatalf("rewritten blob does not decode: %v", err)
	}
}

// TestRegistryEvictionDiskFallback: an artifact evicted from the LRU is
// reloaded from disk, not retrained.
func TestRegistryEvictionDiskFallback(t *testing.T) {
	r := newTestRegistry(t, 1)
	var trainings atomic.Int32
	train := func(w int) func() (*core.MimicModels, error) {
		return func() (*core.MimicModels, error) {
			trainings.Add(1)
			return fakeModels(w), nil
		}
	}
	if _, _, err := r.Get(context.Background(), "k1", train(1)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Get(context.Background(), "k2", train(2)); err != nil {
		t.Fatal(err) // evicts k1 from memory
	}
	if st := r.Stats(); st.Evictions != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 eviction and 1 resident entry", st)
	}
	m, hit, err := r.Get(context.Background(), "k1", train(1))
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("evicted artifact not served from disk")
	}
	if trainings.Load() != 2 {
		t.Fatalf("trainings = %d, want 2 (no retrain after eviction)", trainings.Load())
	}
	if m.Window != 1 {
		t.Fatalf("disk reload returned wrong artifact (window %d)", m.Window)
	}
	if st := r.Stats(); st.DiskHits != 1 {
		t.Fatalf("disk hits = %d, want 1", st.DiskHits)
	}
}

// TestRegistryTrainErrorPropagates: a failed materialization reaches
// every coalesced caller and leaves nothing cached.
func TestRegistryTrainErrorPropagates(t *testing.T) {
	r := newTestRegistry(t, 4)
	boom := fmt.Errorf("no samples")
	if _, _, err := r.Get(context.Background(), "bad", func() (*core.MimicModels, error) {
		return nil, boom
	}); err != boom {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if r.Contains("bad") {
		t.Fatal("failed materialization was cached")
	}
}
