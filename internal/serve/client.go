package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Client is the tiny HTTP client used by `cmd/mimicnet -server` (and the
// smoke harness) to delegate estimates to a running mimicnetd.
type Client struct {
	Base string // e.g. "http://127.0.0.1:9090"
	HTTP *http.Client
}

// NewClient returns a client for the daemon at base.
func NewClient(base string) *Client {
	return &Client{Base: strings.TrimRight(base, "/"), HTTP: &http.Client{Timeout: 30 * time.Second}}
}

// BusyError reports a 429 rejection and how long the daemon suggested
// waiting before retrying.
type BusyError struct {
	RetryAfter time.Duration
}

func (e *BusyError) Error() string {
	return fmt.Sprintf("serve: daemon busy, retry after %v", e.RetryAfter)
}

func decodeError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	var eb errorBody
	if json.Unmarshal(body, &eb) == nil && eb.Error != "" {
		return fmt.Errorf("serve: %s (HTTP %d)", eb.Error, resp.StatusCode)
	}
	return fmt.Errorf("serve: HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
}

func (c *Client) getJSON(path string, out any) error {
	resp, err := c.HTTP.Get(c.Base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("serve: malformed response from %s: %w", path, err)
	}
	return nil
}

// Submit enqueues a job. A full queue surfaces as *BusyError carrying the
// daemon's Retry-After hint.
func (c *Client) Submit(spec JobSpec) (JobStatus, error) {
	blob, err := json.Marshal(spec)
	if err != nil {
		return JobStatus{}, err
	}
	resp, err := c.HTTP.Post(c.Base+"/v1/jobs", "application/json", bytes.NewReader(blob))
	if err != nil {
		return JobStatus{}, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusAccepted:
		var st JobStatus
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			return JobStatus{}, fmt.Errorf("serve: malformed response from /v1/jobs: %w", err)
		}
		return st, nil
	case http.StatusTooManyRequests:
		sec, _ := strconv.Atoi(resp.Header.Get("Retry-After"))
		if sec <= 0 {
			sec = 5
		}
		return JobStatus{}, &BusyError{RetryAfter: time.Duration(sec) * time.Second}
	default:
		return JobStatus{}, decodeError(resp)
	}
}

// Job fetches one job's status.
func (c *Client) Job(id string) (JobStatus, error) {
	var st JobStatus
	err := c.getJSON("/v1/jobs/"+id, &st)
	return st, err
}

// Cancel requests cancellation of a job.
func (c *Client) Cancel(id string) error {
	req, err := http.NewRequest(http.MethodDelete, c.Base+"/v1/jobs/"+id, nil)
	if err != nil {
		return err
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return decodeError(resp)
	}
	return nil
}

// Wait polls the job until it reaches a terminal state, invoking
// onProgress (if non-nil) after each poll.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration, onProgress func(JobStatus)) (JobStatus, error) {
	if poll <= 0 {
		poll = 200 * time.Millisecond
	}
	ticker := time.NewTicker(poll)
	defer ticker.Stop()
	for {
		st, err := c.Job(id)
		if err != nil {
			return st, err
		}
		if onProgress != nil {
			onProgress(st)
		}
		switch st.State {
		case StateDone, StateFailed, StateCancelled:
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-ticker.C:
		}
	}
}

// Stats fetches the daemon's counters.
func (c *Client) Stats() (StatsBody, error) {
	var st StatsBody
	err := c.getJSON("/stats", &st)
	return st, err
}

// Healthy reports whether the daemon answers /healthz with 200.
func (c *Client) Healthy() bool {
	resp, err := c.HTTP.Get(c.Base + "/healthz")
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}
