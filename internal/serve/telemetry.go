package serve

import "mimicnet/internal/obs"

// The serve layer's series are per-instance cells (embedded in Scheduler
// and Registry) rather than package globals: test binaries build many
// schedulers and registries, and each must keep its own counts for
// /stats. ExposeTo binds one live instance's cells into an obs registry
// with replace semantics, so the daemon's /metrics and /stats read the
// same atomics — one source of truth, registered last wins.

// ExposeTo publishes the scheduler's counters, queue gauges, and
// per-phase job latency histograms under the mimicnet_serve_* names.
func (s *Scheduler) ExposeTo(r *obs.Registry) {
	r.RegisterCounter("mimicnet_serve_jobs_submitted_total",
		"Jobs admitted to the queue.", &s.cSubmitted)
	r.RegisterCounter(`mimicnet_serve_jobs_rejected_total{reason="queue_full"}`,
		"Submissions rejected at admission.", &s.cRejectFull)
	r.RegisterCounter(`mimicnet_serve_jobs_rejected_total{reason="draining"}`,
		"Submissions rejected at admission.", &s.cRejectDraining)
	r.RegisterCounter(`mimicnet_serve_jobs_finished_total{state="done"}`,
		"Jobs that reached a terminal state.", &s.cDone)
	r.RegisterCounter(`mimicnet_serve_jobs_finished_total{state="failed"}`,
		"Jobs that reached a terminal state.", &s.cFailed)
	r.RegisterCounter(`mimicnet_serve_jobs_finished_total{state="cancelled"}`,
		"Jobs that reached a terminal state.", &s.cCancelled)
	r.RegisterCounter("mimicnet_serve_jobs_requeued_total",
		"Unfinished journaled jobs re-enqueued by crash recovery.", &s.cRequeued)
	r.RegisterCounter("mimicnet_serve_journal_errors_total",
		"Job-journal append/compact failures (job kept running).", &s.cJournalErrs)
	r.RegisterCounter(`mimicnet_serve_dataset_cache_total{result="hit"}`,
		"Columnar dataset cache lookups by outcome.", &s.cDatasetHits)
	r.RegisterCounter(`mimicnet_serve_dataset_cache_total{result="miss"}`,
		"Columnar dataset cache lookups by outcome.", &s.cDatasetMisses)
	r.RegisterCounter(`mimicnet_serve_dataset_cache_total{result="corrupt"}`,
		"Columnar dataset cache lookups by outcome.", &s.cDatasetCorrupt)
	r.RegisterGauge("mimicnet_serve_jobs_running",
		"Jobs currently executing on the worker pool.", &s.gRunning)
	r.GaugeFunc("mimicnet_serve_queue_depth",
		"Jobs waiting in the admission queue.", func() float64 {
			q, _ := s.QueueDepth()
			return float64(q)
		})
	r.GaugeFunc("mimicnet_serve_queue_capacity",
		"Admission queue bound.", func() float64 {
			_, c := s.QueueDepth()
			return float64(c)
		})
	r.RegisterHistogram(`mimicnet_serve_job_phase_seconds{phase="train"}`,
		"Wall time of job pipeline phases.", s.hPhaseTrain)
	r.RegisterHistogram(`mimicnet_serve_job_phase_seconds{phase="compose"}`,
		"Wall time of job pipeline phases.", s.hPhaseCompose)
}

// ExposeTo publishes the model registry's cache counters.
func (r *Registry) ExposeTo(or *obs.Registry) {
	or.RegisterCounter(`mimicnet_serve_registry_lookups_total{result="mem_hit"}`,
		"Model registry lookups by outcome.", &r.cMemHits)
	or.RegisterCounter(`mimicnet_serve_registry_lookups_total{result="disk_hit"}`,
		"Model registry lookups by outcome.", &r.cDiskHits)
	or.RegisterCounter(`mimicnet_serve_registry_lookups_total{result="miss"}`,
		"Model registry lookups by outcome.", &r.cMisses)
	or.RegisterCounter(`mimicnet_serve_registry_lookups_total{result="coalesced"}`,
		"Model registry lookups by outcome.", &r.cCoalesced)
	or.RegisterCounter("mimicnet_serve_registry_corrupt_total",
		"Corrupt on-disk model blobs discarded.", &r.cCorrupt)
	or.RegisterCounter("mimicnet_serve_registry_evictions_total",
		"In-memory LRU evictions.", &r.cEvictions)
	or.RegisterCounter("mimicnet_serve_registry_store_errors_total",
		"Failed on-disk model writes.", &r.cStoreErrors)
	or.GaugeFunc("mimicnet_serve_registry_entries",
		"Decoded models resident in memory.", func() float64 {
			r.mu.Lock()
			defer r.mu.Unlock()
			return float64(r.lru.Len())
		})
}
