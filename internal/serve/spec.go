// Package serve turns the one-shot MimicNet pipeline into a simulation-
// as-a-service layer: a job scheduler with admission control, a content-
// addressed registry of trained model artifacts, and the HTTP surface
// exposed by cmd/mimicnetd.
//
// The point is amortization (paper §1, Fig. 3): Mimics are trained once
// on a 2-cluster simulation and then answer many large-scale "what-if"
// estimates cheaply. A warm registry turns an N-cluster estimate from
// minutes of training into a compose-only run.
package serve

import (
	"fmt"
	"time"

	"mimicnet/internal/cluster"
	"mimicnet/internal/core"
	"mimicnet/internal/ml"
	"mimicnet/internal/sim"
	"mimicnet/internal/stats"
	"mimicnet/internal/transport"
	"mimicnet/internal/workload"
)

// JobSpec is one estimation request: the same knobs cmd/mimicnet exposes
// as flags, JSON-encoded for the daemon API. Zero values take the CLI's
// defaults (applied by Normalized), so `{"clusters": 32}` is a complete
// request.
type JobSpec struct {
	Clusters int `json:"clusters,omitempty"` // target composition size N

	// Per-cluster topology structure.
	Racks       int `json:"racks,omitempty"`
	Hosts       int `json:"hosts,omitempty"`
	Aggs        int `json:"aggs,omitempty"`
	CoresPerAgg int `json:"cores_per_agg,omitempty"`

	Protocol      string  `json:"protocol,omitempty"` // newreno|dctcp|vegas|westwood|homa
	Load          float64 `json:"load,omitempty"`
	MeanFlowBytes float64 `json:"mean_flow_bytes,omitempty"`
	ECNK          int     `json:"ecn_k,omitempty"`
	Seed          int64   `json:"seed,omitempty"`

	// Simulated-time horizons, milliseconds.
	WorkloadMs float64 `json:"workload_ms,omitempty"` // flow generation horizon
	RunMs      float64 `json:"run_ms,omitempty"`      // final large-scale run
	SmallRunMs float64 `json:"small_run_ms,omitempty"` // data-generation run

	// Training hyper-parameters.
	Window int    `json:"window,omitempty"`
	Hidden int    `json:"hidden,omitempty"`
	Layers int    `json:"layers,omitempty"`
	Epochs int    `json:"epochs,omitempty"`
	Cell   string `json:"cell,omitempty"` // lstm|gru|mlp
	// BatchSize selects the minibatch trainer width (0 = engine default;
	// 1 = the sequential reference path).
	BatchSize int `json:"batch_size,omitempty"`

	// Tune, when positive, runs hyper-parameter tuning with this budget
	// before the final training; the tuned artifact is what gets cached.
	Tune       int    `json:"tune,omitempty"`
	TuneMetric string `json:"tune_metric,omitempty"` // fct|throughput|rtt

	// DeadlineMs bounds the job's wall-clock execution time (0 = none).
	// A job over deadline is cancelled cooperatively and reports partial
	// results, exactly like an explicit DELETE.
	DeadlineMs float64 `json:"deadline_ms,omitempty"`
}

// Normalized fills zero fields with the CLI defaults.
func (s JobSpec) Normalized() JobSpec {
	def := func(v *int, d int) {
		if *v == 0 {
			*v = d
		}
	}
	def(&s.Clusters, 8)
	def(&s.Racks, 2)
	def(&s.Hosts, 4)
	def(&s.Aggs, 2)
	def(&s.CoresPerAgg, 2)
	def(&s.ECNK, 20)
	def(&s.Window, 12)
	def(&s.Hidden, 24)
	def(&s.Layers, 1)
	def(&s.Epochs, 4)
	if s.Protocol == "" {
		s.Protocol = "newreno"
	}
	if s.Cell == "" {
		s.Cell = "lstm"
	}
	if s.Cell == "mlp" {
		s.Layers = 1
	}
	if s.TuneMetric == "" {
		s.TuneMetric = "fct"
	}
	if s.Load == 0 {
		s.Load = 0.7
	}
	if s.MeanFlowBytes == 0 {
		s.MeanFlowBytes = 150_000
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.WorkloadMs == 0 {
		s.WorkloadMs = 150
	}
	if s.RunMs == 0 {
		s.RunMs = 300
	}
	if s.SmallRunMs == 0 {
		s.SmallRunMs = 250
	}
	return s
}

// Validate rejects structurally unusable specs before admission, so the
// queue never holds a job that cannot run.
func (s JobSpec) Validate() error {
	if s.Clusters < 2 {
		return fmt.Errorf("serve: clusters must be >= 2, have %d", s.Clusters)
	}
	if _, err := transport.ByName(s.Protocol); err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	if s.Load <= 0 || s.Load > 1.5 {
		return fmt.Errorf("serve: load %.3g out of range (0, 1.5]", s.Load)
	}
	if s.RunMs <= 0 || s.SmallRunMs <= 0 || s.WorkloadMs <= 0 {
		return fmt.Errorf("serve: horizons must be positive")
	}
	if s.DeadlineMs < 0 {
		return fmt.Errorf("serve: negative deadline")
	}
	base, tcfg, err := s.Configs()
	if err != nil {
		return err
	}
	if err := base.Topo.Validate(); err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	// Features is derived from the dataset at train time; validate the
	// remaining hyper-parameters with a placeholder width.
	mcfg := tcfg.Model
	mcfg.Features = 1
	if err := mcfg.Validate(); err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	return nil
}

// Configs translates the spec into the pipeline's native configuration:
// the 2-cluster training base plus the training config. The caller scales
// base.Topo to s.Clusters for the compose phase.
func (s JobSpec) Configs() (cluster.Config, core.TrainConfig, error) {
	p, err := transport.ByName(s.Protocol)
	if err != nil {
		return cluster.Config{}, core.TrainConfig{}, err
	}
	base := cluster.DefaultConfig(2)
	base.Topo.RacksPerCluster = s.Racks
	base.Topo.HostsPerRack = s.Hosts
	base.Topo.AggPerCluster = s.Aggs
	base.Topo.CoresPerAgg = s.CoresPerAgg
	base.Protocol = p
	base.Workload = workload.DefaultConfig(s.MeanFlowBytes)
	base.Workload.Load = s.Load
	base.Workload.Duration = msToSim(s.WorkloadMs)
	base.Workload.Seed = s.Seed
	base.ECNThresholdK = s.ECNK

	tcfg := core.DefaultTrainConfig()
	tcfg.Dataset.Window = s.Window
	tcfg.Model = ml.DefaultModelConfig(0, s.Window)
	tcfg.Model.Hidden = s.Hidden
	tcfg.Model.Layers = s.Layers
	tcfg.Model.Epochs = s.Epochs
	tcfg.Model.CellType = s.Cell
	if s.BatchSize != 0 {
		// 0 keeps DefaultModelConfig's engine default, so specs that
		// leave BatchSize unset and specs that pin it to the default
		// produce the same ModelKey.
		tcfg.Model.BatchSize = s.BatchSize
	}
	return base, tcfg, nil
}

// ModelKey returns the content address of the trained artifact this spec
// requires (core.ModelKey over the training-relevant subset; the target
// cluster count deliberately does not participate).
func (s JobSpec) ModelKey() (string, error) {
	base, tcfg, err := s.Configs()
	if err != nil {
		return "", err
	}
	extra := ""
	if s.Tune > 0 {
		extra = fmt.Sprintf("tune=%d metric=%s", s.Tune, s.TuneMetric)
	}
	return core.ModelKey(base, msToSim(s.SmallRunMs), tcfg, extra)
}

// DatasetKey returns the content address of the columnar datasets this
// spec's small-scale datagen run would produce (core.DatasetKey over the
// datagen-relevant subset). Deliberately coarser than ModelKey: specs
// that differ only in model hyper-parameters or tuning budget share one
// persisted dataset.
func (s JobSpec) DatasetKey() (string, error) {
	base, tcfg, err := s.Configs()
	if err != nil {
		return "", err
	}
	return core.DatasetKey(base, msToSim(s.SmallRunMs), tcfg)
}

func msToSim(ms float64) sim.Time { return sim.FromSeconds(ms / 1e3) }

func (s JobSpec) runTime() sim.Time      { return msToSim(s.RunMs) }
func (s JobSpec) smallRunTime() sim.Time { return msToSim(s.SmallRunMs) }

// Dist summarizes one metric distribution.
type Dist struct {
	N    int     `json:"n"`
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
	Mean float64 `json:"mean"`
}

func distOf(d []float64) Dist {
	if len(d) == 0 {
		return Dist{}
	}
	return Dist{
		N:    len(d),
		P50:  stats.Quantile(d, 0.5),
		P90:  stats.Quantile(d, 0.9),
		P99:  stats.Quantile(d, 0.99),
		Mean: stats.Mean(d),
	}
}

// Summary is a job's deliverable: the estimate's metric distributions
// plus the cost accounting that makes amortization visible.
type Summary struct {
	FCTSeconds    Dist `json:"fct_seconds"`
	ThroughputBps Dist `json:"throughput_Bps"`
	RTTSeconds    Dist `json:"rtt_seconds"`

	Events         uint64 `json:"events"`
	Packets        uint64 `json:"packets"`
	Drops          uint64 `json:"drops"`
	FlowsStarted   int    `json:"flows_started"`
	FlowsCompleted int    `json:"flows_completed"`

	// Cancelled marks partial results from an interrupted run.
	Cancelled bool `json:"cancelled,omitempty"`
	// CacheHit reports whether training was skipped via the registry.
	CacheHit bool `json:"cache_hit"`

	TrainMs      float64 `json:"train_ms"`   // wall-clock spent obtaining models
	ComposeMs    float64 `json:"compose_ms"` // wall-clock of the large-scale run
	SimSecPerSec float64 `json:"sim_sec_per_sec"`
}

func summarize(res cluster.Results, started, completed int, trainDur, composeDur time.Duration, simulated sim.Time, cacheHit bool) *Summary {
	s := &Summary{
		FCTSeconds:     distOf(res.FCTs),
		ThroughputBps:  distOf(res.Throughputs),
		RTTSeconds:     distOf(res.RTTs),
		Events:         res.Events,
		Packets:        res.Packets,
		Drops:          res.Drops,
		FlowsStarted:   started,
		FlowsCompleted: completed,
		Cancelled:      res.Cancelled,
		CacheHit:       cacheHit,
		TrainMs:        float64(trainDur) / float64(time.Millisecond),
		ComposeMs:      float64(composeDur) / float64(time.Millisecond),
	}
	if composeDur > 0 {
		s.SimSecPerSec = simulated.Seconds() / composeDur.Seconds()
	}
	return s
}
