package serve

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// stubServer returns a client pointed at an arbitrary handler, for
// exercising the client's error paths without a real scheduler.
func stubServer(t *testing.T, h http.HandlerFunc) *Client {
	t.Helper()
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	return NewClient(ts.URL)
}

func TestClientBusyHonorsRetryAfter(t *testing.T) {
	c := stubServer(t, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "17")
		writeJSON(w, http.StatusTooManyRequests, errorBody{Error: ErrQueueFull.Error()})
	})
	_, err := c.Submit(tinySpec())
	var busy *BusyError
	if !errors.As(err, &busy) {
		t.Fatalf("want *BusyError, got %v", err)
	}
	if busy.RetryAfter != 17*time.Second {
		t.Fatalf("RetryAfter = %v, want 17s", busy.RetryAfter)
	}
}

func TestClientBusyMissingRetryAfterDefaults(t *testing.T) {
	c := stubServer(t, func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusTooManyRequests, errorBody{Error: ErrQueueFull.Error()})
	})
	_, err := c.Submit(tinySpec())
	var busy *BusyError
	if !errors.As(err, &busy) {
		t.Fatalf("want *BusyError, got %v", err)
	}
	if busy.RetryAfter != 5*time.Second {
		t.Fatalf("RetryAfter = %v, want default 5s", busy.RetryAfter)
	}
}

// TestClientDrainMidRequest submits against a real server whose scheduler
// drained between the client's connection and the request: admission is
// closed, so the daemon answers 503 and the client surfaces the drain
// reason rather than a bare status code.
func TestClientDrainMidRequest(t *testing.T) {
	ts, sched, _ := newTestServer(t, 4, 1)
	c := NewClient(ts.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := sched.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	_, err := c.Submit(tinySpec())
	if err == nil {
		t.Fatal("submit against a draining daemon must fail")
	}
	if !strings.Contains(err.Error(), "draining") || !strings.Contains(err.Error(), "503") {
		t.Fatalf("drain error not surfaced clearly: %v", err)
	}
}

func TestClientMalformedJSONBody(t *testing.T) {
	c := stubServer(t, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if r.Method == http.MethodPost {
			w.WriteHeader(http.StatusAccepted)
		}
		_, _ = w.Write([]byte(`{"id": "j1", truncated`))
	})
	_, err := c.Submit(tinySpec())
	if err == nil {
		t.Fatal("malformed body must error")
	}
	if !strings.Contains(err.Error(), "malformed response") {
		t.Fatalf("want a clear decode error, got: %v", err)
	}

	_, err = c.Job("j1")
	if err == nil || !strings.Contains(err.Error(), "malformed response") {
		t.Fatalf("getJSON decode error not surfaced: %v", err)
	}
}

func TestClientErrorBodyPlainText(t *testing.T) {
	c := stubServer(t, func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "kaboom", http.StatusInternalServerError)
	})
	_, err := c.Submit(tinySpec())
	if err == nil || !strings.Contains(err.Error(), "kaboom") || !strings.Contains(err.Error(), "500") {
		t.Fatalf("non-JSON error body not surfaced: %v", err)
	}
}
