package flowsim

import (
	"math"
	"testing"

	"mimicnet/internal/sim"
	"mimicnet/internal/stats"
	"mimicnet/internal/workload"
)

func testConfig() Config {
	cfg := DefaultConfig(2)
	cfg.Workload = workload.DefaultConfig(20_000)
	cfg.Workload.Duration = 100 * sim.Millisecond
	return cfg
}

func TestRunCompletesFlows(t *testing.T) {
	res, err := Run(testConfig(), 2*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed == 0 || len(res.FCTs) == 0 {
		t.Fatal("no flows completed")
	}
	if len(res.Throughputs) == 0 {
		t.Fatal("no throughput samples")
	}
	for _, fct := range res.FCTs {
		if fct <= 0 || math.IsNaN(fct) {
			t.Fatalf("bad FCT %v", fct)
		}
	}
	if res.Events == 0 {
		t.Error("no rate recomputations")
	}
}

func TestSingleFlowRateIsLineRate(t *testing.T) {
	// One 125 KB flow on an idle network at 100 Mbps should take ~10 ms
	// (fluid model: no slow start, no packet overhead).
	cfg := testConfig()
	cfg.Workload.FlowSizes = stats.Constant{Value: 125_000}
	cfg.Workload.Load = 0.01 // ~1 flow/sec/host: 10 ms flows rarely overlap
	cfg.Workload.Duration = 5 * sim.Second
	res, err := Run(cfg, 10*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FCTs) == 0 {
		t.Fatal("no flows")
	}
	isolated := 0
	for _, fct := range res.FCTs {
		if math.Abs(fct-0.01) < 1e-6 {
			isolated++
		}
	}
	// The vast majority of flows run in isolation at this load and must
	// finish in exactly bytes/linerate.
	if frac := float64(isolated) / float64(len(res.FCTs)); frac < 0.8 {
		t.Fatalf("only %.0f%% of flows at line rate; fluid model broken", frac*100)
	}
}

func TestFairSharing(t *testing.T) {
	// Two simultaneous equal flows into the same destination host share
	// the bottleneck: each should finish in ~2x the isolated time.
	cfg := testConfig()
	cfg.Workload.FlowSizes = stats.Constant{Value: 125_000}
	cfg.Workload.Load = 0.01
	cfg.Workload.Duration = 5 * sim.Second
	res1, _ := Run(cfg, 10*sim.Second)
	if len(res1.FCTs) == 0 {
		t.Fatal("no isolated flows")
	}
	iso := stats.Quantile(res1.FCTs, 0.5)

	// Synthesize contention by doubling load so flows overlap heavily.
	cfg.Workload.Load = 0.9
	cfg.Workload.Duration = 200 * sim.Millisecond
	res2, _ := Run(cfg, 10*sim.Second)
	if len(res2.FCTs) < 5 {
		t.Skip("not enough overlapping flows")
	}
	mean := stats.Mean(res2.FCTs)
	if mean <= iso {
		t.Errorf("contended mean FCT %v should exceed isolated %v", mean, iso)
	}
}

func TestDeterminism(t *testing.T) {
	a, _ := Run(testConfig(), sim.Second)
	b, _ := Run(testConfig(), sim.Second)
	if a.Completed != b.Completed || len(a.FCTs) != len(b.FCTs) {
		t.Fatal("flowsim runs diverged")
	}
	for i := range a.FCTs {
		if a.FCTs[i] != b.FCTs[i] {
			t.Fatal("FCT mismatch between identical runs")
		}
	}
}

func TestInvalidConfig(t *testing.T) {
	cfg := testConfig()
	cfg.Topo.Clusters = 0
	if _, err := Run(cfg, sim.Second); err == nil {
		t.Error("invalid topo accepted")
	}
	cfg = testConfig()
	cfg.Workload.Load = 0
	if _, err := Run(cfg, sim.Second); err == nil {
		t.Error("invalid workload accepted")
	}
}

func TestHorizonCutsOffFlows(t *testing.T) {
	cfg := testConfig()
	cfg.Workload.FlowSizes = stats.Constant{Value: 100e6} // huge flows
	res, err := Run(cfg, 50*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 0 {
		t.Errorf("%d huge flows completed before horizon", res.Completed)
	}
}

func TestFCTByIDConsistent(t *testing.T) {
	res, _ := Run(testConfig(), 2*sim.Second)
	if len(res.FCTByID) != len(res.FCTs) {
		t.Errorf("FCTByID has %d entries, FCTs %d", len(res.FCTByID), len(res.FCTs))
	}
}
