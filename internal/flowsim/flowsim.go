// Package flowsim is the flow-level (fluid) simulator MimicNet compares
// against (the paper uses SimGrid). Instead of packets, it models each
// flow as a fluid stream and re-solves max-min fair bandwidth shares on
// every flow arrival and departure. It is fast but blind to packet
// effects—drops, queueing delay, RTT—which is exactly the accuracy gap
// Figures 1 and 7 quantify.
package flowsim

import (
	"math"
	"strconv"

	"mimicnet/internal/metrics"
	"mimicnet/internal/sim"
	"mimicnet/internal/topo"
	"mimicnet/internal/workload"
)

// Config describes a flow-level run.
type Config struct {
	Topo       topo.Config
	Workload   workload.Config
	LinkBps    float64 // capacity of every link
	Observable int     // cluster whose flows are measured
}

// DefaultConfig mirrors cluster.DefaultConfig at the flow level.
func DefaultConfig(clusters int) Config {
	return Config{
		Topo:     topo.DefaultConfig().WithClusters(clusters),
		Workload: workload.DefaultConfig(150_000),
		LinkBps:  100e6,
	}
}

// Results are the metrics a flow-level simulation can produce. RTT is
// structurally unavailable (paper §9: "Flow-level simulation is too
// coarse-grained to provide this metric").
type Results struct {
	FCTs        []float64
	Throughputs []float64
	FCTByID     map[string]float64
	Completed   int
	Events      uint64
}

type activeFlow struct {
	id        uint64
	src, dst  int
	remaining float64 // bytes
	rate      float64 // bytes/sec
	links     [][2]int
	observed  bool
	start     sim.Time
}

// Run executes the fluid simulation to the given horizon.
func Run(cfg Config, until sim.Time) (Results, error) {
	if err := cfg.Topo.Validate(); err != nil {
		return Results{}, err
	}
	t := topo.New(cfg.Topo)
	cfg.Workload.HostLinkBps = cfg.LinkBps
	flows, err := workload.Generate(t, cfg.Workload)
	if err != nil {
		return Results{}, err
	}

	capBytes := cfg.LinkBps / 8
	col := metrics.NewCollector()
	var res Results
	res.FCTByID = make(map[string]float64)

	active := make(map[uint64]*activeFlow)
	now := sim.Time(0)
	next := 0 // next arrival index

	recompute := func() {
		maxMin(active, capBytes)
		res.Events++
	}

	// advance moves time forward, draining fluid.
	advance := func(to sim.Time) {
		dt := (to - now).Seconds()
		if dt <= 0 {
			now = to
			return
		}
		for _, f := range active {
			moved := f.rate * dt
			if moved > f.remaining {
				moved = f.remaining
			}
			f.remaining -= moved
			if f.observed && t.ClusterOf(f.dst) == cfg.Observable && moved > 0 {
				col.BytesReceived(f.dst, int64(moved), to)
			}
		}
		now = to
	}

	completionTime := func() sim.Time {
		earliest := sim.Time(math.MaxInt64)
		for _, f := range active {
			if f.rate <= 0 {
				continue
			}
			dt := f.remaining / f.rate
			// Round up one tick: the conversion truncates, and an event
			// scheduled at (or before) "now" would spin the loop without
			// draining any fluid. Overshooting is safe—advance clamps
			// moved fluid to the remaining bytes.
			at := now + sim.FromSeconds(dt) + 1
			if at < earliest {
				earliest = at
			}
		}
		return earliest
	}

	for {
		// Next event: arrival or earliest completion.
		nextEvent := sim.Time(math.MaxInt64)
		if next < len(flows) {
			nextEvent = flows[next].Start
		}
		if ct := completionTime(); ct < nextEvent {
			nextEvent = ct
		}
		if nextEvent > until || nextEvent == sim.Time(math.MaxInt64) {
			advance(until)
			break
		}
		advance(nextEvent)

		// Departures first (remaining drained to ~0).
		changed := false
		for id, f := range active {
			if f.remaining <= 1e-6 {
				delete(active, id)
				changed = true
				if f.observed {
					key := strconv.FormatUint(f.id, 10)
					col.FlowCompleted(key, now)
					res.Completed++
				}
			}
		}
		// Arrivals at this instant.
		for next < len(flows) && flows[next].Start <= now {
			wf := flows[next]
			next++
			path := t.Path(wf.Src, wf.Dst, topo.FlowHash(wf.Src, wf.Dst, wf.ID))
			links := make([][2]int, 0, len(path)-1)
			for i := 1; i < len(path); i++ {
				links = append(links, [2]int{path[i-1], path[i]})
			}
			observed := t.ClusterOf(wf.Src) == cfg.Observable || t.ClusterOf(wf.Dst) == cfg.Observable
			f := &activeFlow{
				id: wf.ID, src: wf.Src, dst: wf.Dst,
				remaining: float64(wf.Bytes), links: links,
				observed: observed, start: wf.Start,
			}
			active[wf.ID] = f
			if observed {
				col.FlowStarted(strconv.FormatUint(wf.ID, 10), wf.Src, wf.Dst, wf.Bytes, now)
			}
			changed = true
		}
		if changed {
			recompute()
		}
	}

	res.FCTs = col.FCTs()
	res.Throughputs = col.Throughputs()
	res.FCTByID = col.FCTByID()
	return res, nil
}

// maxMin solves max-min fair rates by progressive filling: repeatedly
// saturate the most constrained link, freeze its flows, and continue.
// All unfrozen flows share an identical cumulative rate, so rates are
// assigned lazily at freeze time — O(rounds*links + flows*pathlen) per
// call instead of the naive O(rounds*links*flows).
func maxMin(active map[uint64]*activeFlow, capBytes float64) {
	type linkState struct {
		capacity float64
		flows    []*activeFlow
		unfrozen int
	}
	links := make(map[[2]int]*linkState)
	flows := make([]*activeFlow, 0, len(active))
	for _, f := range active {
		f.rate = -1 // sentinel: not yet frozen
		flows = append(flows, f)
		for _, l := range f.links {
			ls, ok := links[l]
			if !ok {
				ls = &linkState{capacity: capBytes}
				links[l] = ls
			}
			ls.flows = append(ls.flows, f)
			ls.unfrozen++
		}
	}
	linkList := make([]*linkState, 0, len(links))
	for _, ls := range links {
		linkList = append(linkList, ls)
	}
	remaining := len(flows)
	cum := 0.0 // cumulative share every still-unfrozen flow has earned
	for remaining > 0 {
		// Bottleneck: the link whose remaining capacity per unfrozen flow
		// is smallest.
		bottleneck := math.Inf(1)
		for _, ls := range linkList {
			if ls.unfrozen == 0 {
				continue
			}
			if share := ls.capacity / float64(ls.unfrozen); share < bottleneck {
				bottleneck = share
			}
		}
		if math.IsInf(bottleneck, 1) {
			break
		}
		cum += bottleneck
		for _, ls := range linkList {
			if ls.unfrozen > 0 {
				ls.capacity -= bottleneck * float64(ls.unfrozen)
			}
		}
		// Freeze flows on saturated links; each flow freezes exactly once
		// and decrements its links' unfrozen counters.
		for _, ls := range linkList {
			if ls.unfrozen == 0 || ls.capacity > 1e-9 {
				continue
			}
			for _, f := range ls.flows {
				if f.rate >= 0 {
					continue
				}
				f.rate = cum
				remaining--
				for _, l := range f.links {
					links[l].unfrozen--
				}
			}
		}
	}
	// Flows never frozen (shouldn't happen on finite capacities) get the
	// accumulated share.
	for _, f := range flows {
		if f.rate < 0 {
			f.rate = cum
		}
	}
}
