package core

import (
	"bytes"
	"strings"
	"testing"

	"mimicnet/internal/sim"
)

func TestTraceRoundTrip(t *testing.T) {
	tr, inst := runTraced(t)
	records := tr.Records()
	if len(records) == 0 {
		t.Fatal("no records")
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, records); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(records) {
		t.Fatalf("round trip lost records: %d -> %d", len(records), len(back))
	}
	for i := range records {
		a, b := records[i], back[i]
		if a.PktID != b.PktID || a.Dir != b.Dir || a.Entry != b.Entry ||
			a.Exit != b.Exit || a.Dropped != b.Dropped || a.CEOut != b.CEOut ||
			a.Info != b.Info {
			t.Fatalf("record %d differs: %+v vs %+v", i, a, b)
		}
		if !b.Matched {
			t.Fatal("restored record not marked matched")
		}
	}

	// Datasets built from the file match datasets built in-memory.
	ingMem, egMem := tr.ByDirection()
	ingFile, egFile := SplitTrace(back)
	if len(ingFile) != len(ingMem) || len(egFile) != len(egMem) {
		t.Fatal("direction split differs after round trip")
	}
	spec := NewFeatureSpec(inst.Cfg.Topo)
	dcfg := DatasetConfig{Window: 4, LatencyBins: 50}
	dsMem, err := BuildDataset(Ingress, ingMem, spec, dcfg)
	if err != nil {
		t.Fatal(err)
	}
	dsFile, err := BuildDataset(Ingress, ingFile, spec, dcfg)
	if err != nil {
		t.Fatal(err)
	}
	if dsMem.Len() != dsFile.Len() {
		t.Fatal("sample counts differ")
	}
	for i := 0; i < dsMem.Len(); i++ {
		aLat, aDrop, _ := dsMem.Samples.Target(i)
		bLat, bDrop, _ := dsFile.Samples.Target(i)
		if aLat != bLat || aDrop != bDrop {
			t.Fatalf("sample %d targets differ", i)
		}
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	if _, err := ReadTrace(strings.NewReader("not json\n")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadTrace(strings.NewReader(`{"dir":"sideways"}` + "\n")); err == nil {
		t.Error("bad direction accepted")
	}
	recs, err := ReadTrace(strings.NewReader(""))
	if err != nil || len(recs) != 0 {
		t.Error("empty trace should parse to zero records")
	}
}

func TestTrainFromFileComposes(t *testing.T) {
	tr, inst := runTraced(t)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr.Records()); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	ing, eg := SplitTrace(back)
	spec := NewFeatureSpec(inst.Cfg.Topo)
	tcfg := fastTrain()
	ingDS, err := BuildDataset(Ingress, ing, spec, tcfg.Dataset)
	if err != nil {
		t.Fatal(err)
	}
	egDS, err := BuildDataset(Egress, eg, spec, tcfg.Dataset)
	if err != nil {
		t.Fatal(err)
	}
	models, _, _, err := TrainModels(ingDS, egDS, tcfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastBase()
	cfg.Topo = cfg.Topo.WithClusters(3)
	comp, err := Compose(cfg, models)
	if err != nil {
		t.Fatal(err)
	}
	comp.Run(150 * sim.Millisecond)
	if comp.FlowsCompleted() == 0 {
		t.Error("file-trained models completed no flows")
	}
}
