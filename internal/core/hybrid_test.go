package core

import (
	"math"
	"testing"

	"mimicnet/internal/sim"
)

func trainedForHybrid(t *testing.T) *Artifacts {
	t.Helper()
	pcfg := DefaultPipelineConfig(fastBase())
	pcfg.SmallScaleDuration = 150 * sim.Millisecond
	pcfg.Train = fastTrain()
	art, err := RunPipeline(pcfg)
	if err != nil {
		t.Fatal(err)
	}
	return art
}

func TestHybridIngressRuns(t *testing.T) {
	art := trainedForHybrid(t)
	h, err := NewHybrid(fastBase(), art.Models, Ingress)
	if err != nil {
		t.Fatal(err)
	}
	h.Run(300 * sim.Millisecond)
	if h.ModelPackets() == 0 {
		t.Fatal("ingress hybrid served no packets through the model")
	}
	res := h.Results()
	if len(res.FCTs) == 0 {
		t.Fatal("no flows completed in ingress hybrid")
	}
	if h.FlowsCompleted() == 0 || h.FlowsCompleted() > h.FlowsStarted() {
		t.Errorf("flow accounting: %d/%d", h.FlowsCompleted(), h.FlowsStarted())
	}
}

func TestHybridEgressRuns(t *testing.T) {
	art := trainedForHybrid(t)
	h, err := NewHybrid(fastBase(), art.Models, Egress)
	if err != nil {
		t.Fatal(err)
	}
	h.Run(300 * sim.Millisecond)
	if h.ModelPackets() == 0 {
		t.Fatal("egress hybrid served no packets through the model")
	}
	if len(h.Results().FCTs) == 0 {
		t.Fatal("no flows completed in egress hybrid")
	}
}

func TestHybridValidation(t *testing.T) {
	art := trainedForHybrid(t)
	cfg := fastBase()
	cfg.Protocol = nil
	if _, err := NewHybrid(cfg, art.Models, Ingress); err == nil {
		t.Error("nil protocol accepted")
	}
	if _, err := NewHybrid(fastBase(), nil, Ingress); err == nil {
		t.Error("nil models accepted")
	}
	if _, err := NewHybrid(fastBase(), &MimicModels{}, Ingress); err == nil {
		t.Error("incomplete models accepted")
	}
}

func TestDirectionError(t *testing.T) {
	art := trainedForHybrid(t)
	ingW1, egW1, err := DirectionError(fastBase(), art.Models, 300*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(ingW1) || math.IsNaN(egW1) {
		t.Fatalf("direction errors not computable: %v / %v", ingW1, egW1)
	}
	if ingW1 < 0 || egW1 < 0 {
		t.Errorf("negative W1: %v / %v", ingW1, egW1)
	}
	t.Logf("per-direction W1(FCT): ingress=%.4g egress=%.4g", ingW1, egW1)
}

func TestUpdateModelsFineTunes(t *testing.T) {
	art := trainedForHybrid(t)

	// Generate fresh data at a different seed (e.g. a workload shift).
	base := fastBase()
	base.Workload.Seed = 77
	tcfg := fastTrain()
	ing, eg, _, err := GenerateTrainingData(base, 150*sim.Millisecond, tcfg)
	if err != nil {
		t.Fatal(err)
	}
	updated, err := UpdateModels(art.Models, ing, eg, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if updated == art.Models {
		t.Error("UpdateModels must not mutate in place")
	}
	// Old models still usable and unchanged in their predictions.
	info := PacketInfo{LocalServer: 1, SizeBytes: 1500, ArrivalTime: sim.Millisecond}
	a := NewMimic(art.Models, 1, 7).ProcessIngress(info)
	b := NewMimic(art.Models, 1, 7).ProcessIngress(info)
	if a != b {
		t.Error("original models changed by update")
	}
	// Updated models compose fine.
	cfg := base
	cfg.Topo = base.Topo.WithClusters(4)
	comp, err := Compose(cfg, updated)
	if err != nil {
		t.Fatal(err)
	}
	comp.Run(150 * sim.Millisecond)
	if comp.FlowsCompleted() == 0 {
		t.Error("updated models completed no flows")
	}
}

func TestUpdateModelsValidation(t *testing.T) {
	if _, err := UpdateModels(nil, nil, nil, 1, 0); err == nil {
		t.Error("nil models accepted")
	}
	art := trainedForHybrid(t)
	empty := &Dataset{Spec: art.Models.Spec}
	if _, err := UpdateModels(art.Models, empty, empty, 1, 0); err == nil {
		t.Error("empty dataset accepted")
	}
	bad := &Dataset{Spec: FeatureSpec{Racks: 99}}
	if _, err := UpdateModels(art.Models, bad, bad, 1, 0); err == nil {
		t.Error("feature width change accepted")
	}
}
