package core

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"mimicnet/internal/durable"
	"mimicnet/internal/ml"
	"mimicnet/internal/obs"
)

// TrainCheckpointer persists per-direction training checkpoints on disk,
// keyed by the job's model content address, so a killed training run can
// resume from its last epoch boundary instead of restarting. One file
// per direction: <Dir>/<Key>.<direction>.ckpt, each a durable checkpoint
// container (magic + CRC) holding the JSON-encoded ml.TrainCheckpoint.
//
// The checkpointer is deliberately forgiving on the read side: a
// missing, torn, or stale (config/sample-count mismatch) checkpoint
// degrades to training from scratch — durability must never make a job
// unrunnable. The write side is strict: a failed save aborts training,
// because a caller that asked for checkpoints is relying on them.
type TrainCheckpointer struct {
	// Dir is the checkpoint directory (created on first save).
	Dir string
	// Key scopes the files, typically TrainSpec's ModelKey hex digest.
	Key string
	// Every is the epoch interval between saves; <=0 means every epoch.
	Every int
}

// DefaultCheckpointEvery is the epoch interval used when Every <= 0.
const DefaultCheckpointEvery = 1

func (c *TrainCheckpointer) every() int {
	if c == nil || c.Every <= 0 {
		return DefaultCheckpointEvery
	}
	return c.Every
}

// Path returns the checkpoint file for one direction.
func (c *TrainCheckpointer) Path(dir Direction) string {
	return filepath.Join(c.Dir, fmt.Sprintf("%s.%v.ckpt", c.Key, dir))
}

// Load reads the direction's checkpoint. Absent or corrupt files return
// (nil, nil): the caller simply trains from scratch.
func (c *TrainCheckpointer) Load(dir Direction) (*ml.TrainCheckpoint, error) {
	if c == nil {
		return nil, nil
	}
	payload, err := durable.ReadCheckpoint(c.Path(dir))
	switch {
	case errors.Is(err, os.ErrNotExist), errors.Is(err, durable.ErrCorrupt):
		return nil, nil
	case err != nil:
		return nil, err
	}
	var ck ml.TrainCheckpoint
	if err := json.Unmarshal(payload, &ck); err != nil {
		// CRC-valid container with undecodable contents: written by an
		// incompatible version. Start over.
		return nil, nil
	}
	return &ck, nil
}

// Save writes one direction's checkpoint durably (atomic rename +
// fsync via the shared durable helper).
func (c *TrainCheckpointer) Save(dir Direction, ck *ml.TrainCheckpoint) error {
	if err := os.MkdirAll(c.Dir, 0o755); err != nil {
		return err
	}
	payload, err := json.Marshal(ck)
	if err != nil {
		return err
	}
	return durable.WriteCheckpoint(c.Path(dir), payload)
}

// Clear removes both directions' checkpoints — called once the finished
// artifact has been durably stored, after which the cursors are dead
// weight. Removal failures are ignored: a leftover checkpoint is only
// ever re-read by an identical job, which will find it Complete and
// restore instantly.
func (c *TrainCheckpointer) Clear() {
	if c == nil {
		return
	}
	for _, d := range []Direction{Ingress, Egress} {
		_ = os.Remove(c.Path(d))
	}
}

// saveOverheadFactor bounds steady-state checkpoint cost: a cursor is
// persisted only once ~saveOverheadFactor× the previous save's wall
// time has elapsed in training compute, capping the amortized overhead
// near 1/saveOverheadFactor = 1% regardless of model size. Big models
// (epoch ≫ save) persist every epoch; thumbnail models self-throttle.
const saveOverheadFactor = 100

// AsyncSaver returns a TrainOpts.SaveCheckpoint callback that persists
// cursors in the background with a single in-flight write, plus a wait
// function that blocks until the last write has landed and surfaces its
// error. Checkpoints are deep copies (ml.captureCheckpoint), so a write
// overlaps the next epoch's compute; on top of that, saves self-throttle
// by measured cost (saveOverheadFactor) so checkpointing never consumes
// more than ~1% of training wall-clock. The final Complete cursor is
// always persisted — a finished direction must restore instantly. A
// crash mid-write is safe: WriteCheckpoint is atomic, so recovery sees
// either the previous cursor or the new one, never a torn mix.
func (c *TrainCheckpointer) AsyncSaver(dir Direction) (save func(*ml.TrainCheckpoint) error, wait func() error) {
	var (
		pending  chan error
		lastDone time.Time     // completion of the newest persisted save
		lastCost time.Duration // its wall-clock cost
	)
	save = func(ck *ml.TrainCheckpoint) error {
		if pending != nil {
			// One write in flight at a time; by the time the next epoch
			// finishes, the previous save has almost always landed. The
			// receive also orders the goroutine's lastDone/lastCost
			// writes before our reads below.
			if err := <-pending; err != nil {
				return err
			}
			pending = nil
		}
		if !ck.Complete() && !lastDone.IsZero() &&
			time.Since(lastDone) < lastCost*saveOverheadFactor {
			return nil // throttled: this epoch boundary goes unpersisted
		}
		pending = make(chan error, 1)
		t0 := time.Now()
		go func() {
			err := c.Save(dir, ck)
			lastCost = time.Since(t0)
			lastDone = time.Now()
			pending <- err
		}()
		return nil
	}
	wait = func() error {
		if pending == nil {
			return nil
		}
		err := <-pending
		pending = nil
		return err
	}
	return save, wait
}

// resumable reports whether ck can seed a resume of a run with the given
// model config over n training samples. Mismatches mean the checkpoint
// belongs to a different dataset or hyper-parameter revision.
func resumable(ck *ml.TrainCheckpoint, cfg ml.ModelConfig, n int) bool {
	return ck != nil && ck.Cfg == cfg && ck.Samples == n
}

// TrainDirectionCkpt is TrainDirectionContext with durable resume: it
// loads the direction's checkpoint (if any and still applicable),
// continues training from it, and cuts a fresh checkpoint every
// ckpt.Every epochs. The produced DirectionModel is bitwise identical to
// one trained without interruption — ml's resume contract plus the
// deterministic dataset pipeline guarantee it. A nil ckpt falls back to
// plain TrainDirectionContext.
func TrainDirectionCkpt(ctx context.Context, ds *Dataset, cfg TrainConfig, progress TrainProgressFunc, ckpt *TrainCheckpointer) (*DirectionModel, ml.EvalResult, error) {
	return trainDirection(ctx, ds, cfg, progress, ckpt)
}

// TrainModelsCkpt is TrainModelsContext with durable per-direction
// resume through ckpt. Both directions still train concurrently; each
// reads and writes its own checkpoint file, so a crash that lands
// between the two directions' saves resumes each from its own newest
// epoch boundary.
func TrainModelsCkpt(ctx context.Context, ing, eg *Dataset, cfg TrainConfig, progress TrainProgressFunc, ckpt *TrainCheckpointer) (*MimicModels, ml.EvalResult, ml.EvalResult, error) {
	defer obs.StartSpan(obsPhaseTrain).End()
	var (
		egModel *DirectionModel
		egEval  ml.EvalResult
		egErr   error
		done    = make(chan struct{})
	)
	go func() {
		defer close(done)
		egModel, egEval, egErr = trainDirection(ctx, eg, cfg, progress, ckpt)
	}()
	ingModel, ingEval, ingErr := trainDirection(ctx, ing, cfg, progress, ckpt)
	<-done
	if ingErr != nil {
		return nil, ml.EvalResult{}, ml.EvalResult{}, ingErr
	}
	if egErr != nil {
		return nil, ml.EvalResult{}, ml.EvalResult{}, egErr
	}
	return &MimicModels{
		Spec:    ing.Spec,
		Window:  cfg.Dataset.Window,
		Ingress: ingModel,
		Egress:  egModel,
	}, ingEval, egEval, nil
}
