package core

import (
	"fmt"
	"testing"

	"mimicnet/internal/cluster"
	"mimicnet/internal/ml"
	"mimicnet/internal/sim"
)

// TestGoldenCombinedPipeline is the whole-stack determinism witness: the
// three performance subsystems this repo has grown — minibatch (B=16)
// BPTT training, per-cluster sharded composition, and batched fused
// inference — composed in one pipeline must be bitwise worker-count
// invariant. Each layer is individually covered elsewhere; this test
// exists because their interleavings (GEMM pool scheduling under shard
// barriers, per-LP inference flush chains, telemetry on every hot path)
// only combine here.
func TestGoldenCombinedPipeline(t *testing.T) {
	art := trainedForScheduler(t)
	if got := art.Models.Ingress.Model.Cfg.BatchSize; got != ml.DefaultBatchSize {
		t.Fatalf("artifact trained with BatchSize=%d, want %d (minibatch path)",
			got, ml.DefaultBatchSize)
	}

	const n, until = 4, 200 * sim.Millisecond
	var golden cluster.Results
	for i, workers := range []int{1, 2, 4} {
		cfg := fastBase()
		cfg.Topo = cfg.Topo.WithClusters(n)
		cfg.ShardedRun = 1 // force sharding even on small hosts
		cfg.NumWorkers = workers
		cfg.SequentialInference = false // batched fused inference
		comp, err := Compose(cfg, art.Models)
		if err != nil {
			t.Fatal(err)
		}
		if !comp.Sharded() {
			t.Fatalf("workers=%d: composition did not shard", workers)
		}
		comp.Run(until)
		res := comp.Results()
		if len(res.FCTByID) == 0 {
			t.Fatalf("workers=%d: no flows completed; test exercises nothing", workers)
		}
		if i == 0 {
			golden = res
			continue
		}
		sameResults(t, fmt.Sprintf("workers=%d vs 1", workers), golden, res)
	}
}
