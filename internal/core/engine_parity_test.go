package core

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"mimicnet/internal/cluster"
	"mimicnet/internal/sim"
)

// This file is the engine-vs-legacy golden parity suite. The fingerprints
// in testdata/engine_parity.json were captured from the pre-refactor
// Composed/Hybrid runtimes (the exact commit that still contained both);
// the role-based Engine that replaced them must reproduce every
// configuration bit-for-bit. The suite reruns under every forced GEMM
// kernel family via `make test-kernels` — the goldens are
// kernel-independent because all families are bitwise identical.

const parityGoldenPath = "testdata/engine_parity.json"

// resultsFingerprint canonicalizes a Results value into a SHA-256 hex
// digest: exact float64 bit patterns, sorted map keys, and the event /
// packet / drop counters. Two runs fingerprint equal iff sameResults
// would pass AND Events match.
func resultsFingerprint(r cluster.Results) string {
	h := sha256.New()
	var buf [8]byte
	wu := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	wf := func(v float64) { wu(math.Float64bits(v)) }
	ws := func(xs []float64) {
		wu(uint64(len(xs)))
		for _, x := range xs {
			wf(x)
		}
	}
	ws(r.FCTs)
	ws(r.Throughputs)
	ws(r.RTTs)
	ids := make([]string, 0, len(r.FCTByID))
	for id := range r.FCTByID {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	wu(uint64(len(ids)))
	for _, id := range ids {
		h.Write([]byte(id))
		wf(r.FCTByID[id])
	}
	wu(r.Events)
	wu(r.Packets)
	wu(r.Drops)
	if r.Cancelled {
		wu(1)
	} else {
		wu(0)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// parityCase is one legacy configuration pinned by the golden file.
type parityCase struct {
	name  string
	kind  string // "composed" | "hybrid"
	n     int    // cluster count (composed)
	dir   Direction
	until sim.Time
}

var parityCases = []parityCase{
	{name: "composed-n2", kind: "composed", n: 2, until: 250 * sim.Millisecond},
	{name: "composed-n4", kind: "composed", n: 4, until: 200 * sim.Millisecond},
	{name: "composed-n8", kind: "composed", n: 8, until: 120 * sim.Millisecond},
	{name: "hybrid-ingress", kind: "hybrid", dir: Ingress, until: 250 * sim.Millisecond},
	{name: "hybrid-egress", kind: "hybrid", dir: Egress, until: 250 * sim.Millisecond},
}

// parityModes are the execution modes each case runs under. Sequential
// and sharded fingerprints are recorded separately (the hybrid-egress
// same-ns tie class makes the two *modes* legitimately differ); all
// sharded worker counts must share one fingerprint.
type parityMode struct {
	name       string
	shardedRun int
	workers    int
}

var parityModes = []parityMode{
	{"seq", -1, 0},
	{"sharded-w1", 1, 1},
	{"sharded-w2", 1, 2},
	{"sharded-w4", 1, 4},
}

func runParityCase(t *testing.T, art *Artifacts, pc parityCase, pm parityMode) cluster.Results {
	t.Helper()
	cfg := fastBase()
	cfg.ShardedRun = pm.shardedRun
	cfg.NumWorkers = pm.workers
	switch pc.kind {
	case "composed":
		cfg.Topo = cfg.Topo.WithClusters(pc.n)
		comp, err := Compose(cfg, art.Models)
		if err != nil {
			t.Fatal(err)
		}
		if pm.shardedRun > 0 && !comp.Sharded() {
			t.Fatalf("%s/%s: forced sharding fell back to sequential", pc.name, pm.name)
		}
		comp.Run(pc.until)
		return comp.Results()
	case "hybrid":
		h, err := NewHybrid(cfg, art.Models, pc.dir)
		if err != nil {
			t.Fatal(err)
		}
		if pm.shardedRun > 0 && !h.Sharded() {
			t.Fatalf("%s/%s: forced sharding fell back to sequential", pc.name, pm.name)
		}
		h.Run(pc.until)
		return h.Results()
	}
	t.Fatalf("unknown parity kind %q", pc.kind)
	return cluster.Results{}
}

// TestEngineGoldenParity proves the role-based engine reproduces the
// legacy Composed and Hybrid runtimes bitwise for every configuration
// the repo ships: composed N∈{2,4,8} and hybrid ingress/egress, each
// sequential and sharded at 1/2/4 workers. Regenerate the golden file
// with MIMICNET_UPDATE_GOLDEN=1 only when a change is *supposed* to
// alter simulation schedules — and say so in the commit.
func TestEngineGoldenParity(t *testing.T) {
	art := trainedForScheduler(t)
	update := os.Getenv("MIMICNET_UPDATE_GOLDEN") != ""

	golden := map[string]string{}
	if !update {
		blob, err := os.ReadFile(parityGoldenPath)
		if err != nil {
			t.Fatalf("missing golden file (run with MIMICNET_UPDATE_GOLDEN=1 to capture): %v", err)
		}
		if err := json.Unmarshal(blob, &golden); err != nil {
			t.Fatal(err)
		}
	}

	got := map[string]string{}
	for _, pc := range parityCases {
		var shardedFP string
		for _, pm := range parityModes {
			key := pc.name + "/" + pm.name
			res := runParityCase(t, art, pc, pm)
			if len(res.FCTByID) == 0 {
				t.Fatalf("%s: no flows completed; case exercises nothing", key)
			}
			fp := resultsFingerprint(res)
			got[key] = fp
			// All sharded worker counts must produce one schedule: the
			// (time, srcLP, srcSeq) remote-event order is worker-invariant.
			if pm.shardedRun > 0 {
				if shardedFP == "" {
					shardedFP = fp
				} else if fp != shardedFP {
					t.Errorf("%s: sharded fingerprint diverged across worker counts", key)
				}
			}
			if !update {
				want, ok := golden[key]
				if !ok {
					t.Errorf("%s: no golden fingerprint recorded", key)
				} else if fp != want {
					t.Errorf("%s: fingerprint %s != legacy golden %s", key, fp[:16], want[:16])
				}
			}
		}
	}

	if update {
		if err := os.MkdirAll(filepath.Dir(parityGoldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		blob, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(parityGoldenPath, append(blob, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d fingerprints)", parityGoldenPath, len(got))
	}
}
