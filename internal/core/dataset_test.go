package core

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"mimicnet/internal/durable"
	"mimicnet/internal/ml"
	"mimicnet/internal/topo"
)

// legacyBuildSamples replicates the seed's window-of-slices dataset
// builder exactly: a ring of materialized padded windows, one Sample
// per record. It is the golden reference the columnar BuildDataset must
// match bit-for-bit.
func legacyBuildSamples(records []*TraceRecord, spec FeatureSpec, cfg DatasetConfig) []ml.Sample {
	bounds := boundsFromRecords(records)
	disc := ml.Discretizer{Lo: bounds.Lo, Hi: bounds.Hi, D: cfg.LatencyBins}
	ex := NewExtractor(spec, bounds.Lo, bounds.Hi)
	width := spec.Width()
	window := make([][]float64, 0, cfg.Window)
	var out []ml.Sample
	for _, r := range records {
		feat := ex.Features(r.Info)
		window = append(window, feat)
		if len(window) > cfg.Window {
			window = window[1:]
		}
		sample := ml.Sample{Dropped: r.Dropped, ECN: r.CEOut && !r.Info.CEIn}
		if r.Dropped {
			sample.Latency = 1.0
		} else {
			sample.Latency = disc.Normalize(r.Latency())
		}
		win := make([][]float64, cfg.Window)
		pad := cfg.Window - len(window)
		for i := 0; i < pad; i++ {
			win[i] = make([]float64, width)
		}
		copy(win[pad:], window)
		sample.Window = win
		out = append(out, sample)
		if r.Dropped {
			ex.ObserveOutcome(bounds.Hi, true)
		} else {
			ex.ObserveOutcome(r.Latency(), false)
		}
	}
	return out
}

// TestBuildDatasetMatchesLegacyLayout is the core-level golden parity
// check: the columnar dataset must hold bit-identical features and
// targets to the seed layout on a real traced run, and training on it
// must produce a byte-identical model artifact and identical held-out
// evaluation.
func TestBuildDatasetMatchesLegacyLayout(t *testing.T) {
	tr, inst := runTraced(t)
	ing, _ := tr.ByDirection()
	spec := NewFeatureSpec(inst.Cfg.Topo)
	dcfg := DatasetConfig{Window: 6, LatencyBins: 50}
	ds, err := BuildDataset(Ingress, ing, spec, dcfg)
	if err != nil {
		t.Fatal(err)
	}
	legacy := legacyBuildSamples(ing, spec, dcfg)
	if ds.Len() != len(legacy) {
		t.Fatalf("sample counts: %d vs %d", ds.Len(), len(legacy))
	}
	var win [][]float64
	for i := range legacy {
		win = ds.Samples.WindowAppend(win[:0], i)
		for st := range win {
			for f := range win[st] {
				if win[st][f] != legacy[i].Window[st][f] {
					t.Fatalf("sample %d step %d feat %d: %v != %v",
						i, st, f, win[st][f], legacy[i].Window[st][f])
				}
			}
		}
		lat, dropped, ecn := ds.Samples.Target(i)
		if lat != legacy[i].Latency || dropped != legacy[i].Dropped || ecn != legacy[i].ECN {
			t.Fatalf("sample %d targets differ", i)
		}
	}

	// Training over the two layouts is byte-identical.
	mcfg := ml.DefaultModelConfig(spec.Width(), dcfg.Window)
	mcfg.Hidden = 10
	mcfg.Epochs = 2
	cut := len(legacy) * 8 / 10
	a, err := ml.NewModel(mcfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ml.NewModel(mcfg)
	if err != nil {
		t.Fatal(err)
	}
	a.Train(legacy[:cut])
	b.TrainSource(ds.Samples.Slice(0, cut))
	ja, _ := a.MarshalJSON()
	jb, _ := b.MarshalJSON()
	if !bytes.Equal(ja, jb) {
		t.Fatal("trained artifacts are not byte-identical across layouts")
	}
	if ea, eb := a.Evaluate(legacy[cut:]), b.EvaluateSource(ds.Samples.Slice(cut, ds.Len())); ea != eb {
		t.Fatalf("evaluations differ: %+v vs %+v", ea, eb)
	}
}

func TestSplitEdgeCases(t *testing.T) {
	spec := NewFeatureSpec(topo.DefaultConfig())

	// Empty dataset: both halves empty, no panic.
	empty, err := BuildDataset(Ingress, nil, spec, DatasetConfig{Window: 3})
	if err != nil {
		t.Fatal(err)
	}
	tr, te := empty.Split(0.8)
	if tr.Len() != 0 || te.Len() != 0 {
		t.Errorf("empty split: %d/%d", tr.Len(), te.Len())
	}

	// One-sample dataset under a real traced run's first record.
	tracer, inst := runTraced(t)
	ing, _ := tracer.ByDirection()
	one, err := BuildDataset(Ingress, ing[:1], NewFeatureSpec(inst.Cfg.Topo), DatasetConfig{Window: 3, LatencyBins: 10})
	if err != nil {
		t.Fatal(err)
	}
	tr, te = one.Split(0.5)
	if tr.Len()+te.Len() != 1 {
		t.Errorf("one-sample split lost samples: %d/%d", tr.Len(), te.Len())
	}

	// trainFrac at or outside (0,1) falls back to the 0.8 default.
	full, err := BuildDataset(Ingress, ing, NewFeatureSpec(inst.Cfg.Topo), DatasetConfig{Window: 3, LatencyBins: 10})
	if err != nil {
		t.Fatal(err)
	}
	wantCut := int(float64(full.Len()) * 0.8)
	for _, frac := range []float64{0, 1, -0.3, 1.7} {
		tr, te := full.Split(frac)
		if tr.Len() != wantCut || te.Len() != full.Len()-wantCut {
			t.Errorf("Split(%v) = %d/%d, want default 0.8 cut %d", frac, tr.Len(), te.Len(), wantCut)
		}
	}

	// The chronological invariant: split views share history, so the
	// test half's first window still sees pre-cut packets.
	trv, tev := full.Split(0.8)
	if trv.Len() > 0 && tev.Len() > 0 {
		var wantWin, gotWin [][]float64
		wantWin = full.Samples.WindowAppend(wantWin, trv.Len())
		gotWin = tev.WindowAppend(gotWin, 0)
		for st := range wantWin {
			for f := range wantWin[st] {
				if wantWin[st][f] != gotWin[st][f] {
					t.Fatal("test split lost pre-cut window history")
				}
			}
		}
	}
}

// TestDatasetFileRoundTrip proves the MNDSET01 container is a faithful
// persistence of the columnar datasets: every float, flag, bank entry,
// and interarrival survives bit-for-bit, so training from a loaded file
// is byte-identical to training from memory.
func TestDatasetFileRoundTrip(t *testing.T) {
	tr, inst := runTraced(t)
	ingRecs, egRecs := tr.ByDirection()
	spec := NewFeatureSpec(inst.Cfg.Topo)
	dcfg := DatasetConfig{Window: 5, LatencyBins: 40}
	ing, err := BuildDataset(Ingress, ingRecs, spec, dcfg)
	if err != nil {
		t.Fatal(err)
	}
	eg, err := BuildDataset(Egress, egRecs, spec, dcfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.dset")
	if err := WriteDatasetFile(path, ing, eg); err != nil {
		t.Fatal(err)
	}
	ing2, eg2, err := ReadDatasetFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range []struct{ a, b *Dataset }{{ing, ing2}, {eg, eg2}} {
		a, b := pair.a, pair.b
		if a.Dir != b.Dir || a.Spec != b.Spec || a.Bounds != b.Bounds || a.Disc != b.Disc ||
			a.DropRate != b.DropRate || a.ECNRate != b.ECNRate {
			t.Fatalf("%v metadata differs", a.Dir)
		}
		va, vb := a.Samples, b.Samples
		if va.Width != vb.Width || va.Window != vb.Window || va.Len() != vb.Len() {
			t.Fatalf("%v view shape differs", a.Dir)
		}
		for i := range va.Feats {
			if va.Feats[i] != vb.Feats[i] {
				t.Fatalf("%v feature %d differs", a.Dir, i)
			}
		}
		for i := 0; i < va.Len(); i++ {
			la, da, ea := va.Target(i)
			lb, db, eb := vb.Target(i)
			if la != lb || da != db || ea != eb {
				t.Fatalf("%v target %d differs", a.Dir, i)
			}
		}
		if len(a.InfoBank) != len(b.InfoBank) {
			t.Fatalf("%v bank size differs", a.Dir)
		}
		for i := range a.InfoBank {
			if a.InfoBank[i] != b.InfoBank[i] {
				t.Fatalf("%v bank entry %d differs", a.Dir, i)
			}
		}
		if len(a.Interarrivals) != len(b.Interarrivals) {
			t.Fatalf("%v interarrival count differs", a.Dir)
		}
		for i := range a.Interarrivals {
			if a.Interarrivals[i] != b.Interarrivals[i] {
				t.Fatalf("%v interarrival %d differs", a.Dir, i)
			}
		}
	}

	// Byte-identical training from the loaded dataset.
	mcfg := ml.DefaultModelConfig(spec.Width(), dcfg.Window)
	mcfg.Hidden = 8
	mcfg.Epochs = 1
	a, _ := ml.NewModel(mcfg)
	b, _ := ml.NewModel(mcfg)
	a.TrainSource(ing.Samples)
	b.TrainSource(ing2.Samples)
	ja, _ := a.MarshalJSON()
	jb, _ := b.MarshalJSON()
	if !bytes.Equal(ja, jb) {
		t.Fatal("training from the loaded dataset diverged from memory")
	}
}

func TestReadDatasetFileRejectsDamage(t *testing.T) {
	dir := t.TempDir()
	if _, _, err := ReadDatasetFile(filepath.Join(dir, "missing.dset")); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("missing file: %v", err)
	}
	path := filepath.Join(dir, "bad.dset")
	if err := os.WriteFile(path, []byte("MNDSET01 definitely not a container"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadDatasetFile(path); !errors.Is(err, durable.ErrCorrupt) {
		t.Errorf("garbage file: %v", err)
	}

	// A valid container whose payload was truncated before framing.
	if err := durable.WriteContainer(path, DatasetFileMagic, []byte{1, 2}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadDatasetFile(path); !errors.Is(err, durable.ErrCorrupt) {
		t.Errorf("short payload: %v", err)
	}
}

func TestDatasetKey(t *testing.T) {
	base := fastBase()
	tcfg := fastTrain()
	k1, err := DatasetKey(base, 1000, tcfg)
	if err != nil {
		t.Fatal(err)
	}

	// Model hyper-parameters and TrainFrac must NOT change the key.
	t2 := tcfg
	t2.Model.Hidden *= 2
	t2.Model.CellType = "gru"
	t2.TrainFrac = 0.6
	k2, err := DatasetKey(base, 1000, t2)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Error("model-only change altered the dataset key")
	}

	// Datagen knobs must change it.
	t3 := tcfg
	t3.Dataset.Window++
	if k3, _ := DatasetKey(base, 1000, t3); k3 == k1 {
		t.Error("window change did not alter the dataset key")
	}
	b2 := base
	b2.Workload.Seed++
	if k4, _ := DatasetKey(b2, 1000, tcfg); k4 == k1 {
		t.Error("seed change did not alter the dataset key")
	}
	if k5, _ := DatasetKey(base, 2000, tcfg); k5 == k1 {
		t.Error("small-run duration change did not alter the dataset key")
	}

	base.Protocol = nil
	if _, err := DatasetKey(base, 1000, tcfg); err == nil {
		t.Error("nil protocol accepted")
	}
}
