package core

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"

	"mimicnet/internal/durable"
	"mimicnet/internal/ml"
	"mimicnet/internal/sim"
)

// Columnar dataset container: both directions' datasets in one
// self-validating file, so a datagen run can be persisted once and
// replayed by later training jobs with the same DatasetKey.
//
// The payload under the durable "MNDSET01" container framing is
//
//	uint32 meta length | meta JSON | binary sections (ingress, egress)
//
// The meta header carries everything JSON represents exactly (specs,
// bounds, discretizers, rates, section lengths); the bulk float and
// bool columns follow as raw little-endian sections so the feature
// matrix and targets round-trip bit-for-bit — training from a loaded
// dataset is byte-identical to training from the in-memory one.

// DatasetFileMagic tags the on-disk columnar dataset container. Bump it
// whenever the payload layout changes: the magic is part of DatasetKey,
// so old cache entries simply miss rather than misparse.
const DatasetFileMagic = "MNDSET01"

type datasetMeta struct {
	Dir           Direction      `json:"dir"`
	Spec          FeatureSpec    `json:"spec"`
	Bounds        LatencyBounds  `json:"bounds"`
	Disc          ml.Discretizer `json:"disc"`
	DropRate      float64        `json:"drop_rate"`
	ECNRate       float64        `json:"ecn_rate"`
	Width         int            `json:"width"`
	Window        int            `json:"window"`
	Samples       int            `json:"samples"`
	Bank          int            `json:"bank"`
	Interarrivals int            `json:"interarrivals"`
}

type datasetFileMeta struct {
	Ingress datasetMeta `json:"ingress"`
	Egress  datasetMeta `json:"egress"`
}

// infoBankStride is the fixed on-disk size of one PacketInfo entry:
// seven int64 fields plus three bool bytes.
const infoBankStride = 7*8 + 3

// WriteDatasetFile atomically persists both directions' datasets.
func WriteDatasetFile(path string, ing, eg *Dataset) error {
	if ing == nil || eg == nil || ing.Samples == nil || eg.Samples == nil {
		return fmt.Errorf("core: nil dataset")
	}
	meta := datasetFileMeta{Ingress: metaOf(ing), Egress: metaOf(eg)}
	mb, err := json.Marshal(meta)
	if err != nil {
		return err
	}
	payload := make([]byte, 0, 4+len(mb)+sectionBytes(ing)+sectionBytes(eg))
	payload = binary.LittleEndian.AppendUint32(payload, uint32(len(mb)))
	payload = append(payload, mb...)
	payload = appendSections(payload, ing)
	payload = appendSections(payload, eg)
	return durable.WriteContainer(path, DatasetFileMagic, payload)
}

// ReadDatasetFile loads both datasets back. A missing file surfaces the
// underlying os.ErrNotExist; framing, CRC, or layout damage returns
// durable.ErrCorrupt so callers can fall back to regenerating.
func ReadDatasetFile(path string) (ing, eg *Dataset, err error) {
	payload, err := durable.ReadContainer(path, DatasetFileMagic)
	if err != nil {
		return nil, nil, err
	}
	if len(payload) < 4 {
		return nil, nil, durable.ErrCorrupt
	}
	mlen := int(binary.LittleEndian.Uint32(payload))
	rest := payload[4:]
	if mlen > len(rest) {
		return nil, nil, durable.ErrCorrupt
	}
	var meta datasetFileMeta
	if err := json.Unmarshal(rest[:mlen], &meta); err != nil {
		return nil, nil, durable.ErrCorrupt
	}
	rest = rest[mlen:]
	if ing, rest, err = readSections(rest, meta.Ingress); err != nil {
		return nil, nil, err
	}
	if eg, rest, err = readSections(rest, meta.Egress); err != nil {
		return nil, nil, err
	}
	if len(rest) != 0 {
		return nil, nil, durable.ErrCorrupt
	}
	return ing, eg, nil
}

func metaOf(ds *Dataset) datasetMeta {
	return datasetMeta{
		Dir: ds.Dir, Spec: ds.Spec, Bounds: ds.Bounds, Disc: ds.Disc,
		DropRate: ds.DropRate, ECNRate: ds.ECNRate,
		Width: ds.Samples.Width, Window: ds.Samples.Window,
		Samples: ds.Len(), Bank: len(ds.InfoBank),
		Interarrivals: len(ds.Interarrivals),
	}
}

func sectionBytes(ds *Dataset) int {
	n := ds.Len()
	return 8*len(ds.Samples.Feats) + 8*n + 2*n +
		infoBankStride*len(ds.InfoBank) + 8*len(ds.Interarrivals)
}

func appendSections(buf []byte, ds *Dataset) []byte {
	v := ds.Samples
	buf = appendF64s(buf, v.Feats)
	buf = appendF64s(buf, v.Latency)
	buf = appendBools(buf, v.Dropped)
	buf = appendBools(buf, v.ECN)
	for _, p := range ds.InfoBank {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(p.LocalRack))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(p.LocalServer))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(p.LocalAgg))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(p.Core))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(p.SizeBytes))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(p.Priority))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(p.ArrivalTime))
		buf = append(buf, b2b(p.IsAck), b2b(p.ECT), b2b(p.CEIn))
	}
	buf = appendF64s(buf, ds.Interarrivals)
	return buf
}

func readSections(buf []byte, m datasetMeta) (*Dataset, []byte, error) {
	if m.Samples < 0 || m.Width < 0 || m.Window < 1 ||
		m.Bank < 0 || m.Interarrivals < 0 {
		return nil, nil, durable.ErrCorrupt
	}
	need := 8*m.Samples*m.Width + 8*m.Samples + 2*m.Samples +
		infoBankStride*m.Bank + 8*m.Interarrivals
	if need < 0 || len(buf) < need {
		return nil, nil, durable.ErrCorrupt
	}
	view := ml.NewSampleBank(m.Width, m.Window, m.Samples)
	view.Feats, buf = readF64s(view.Feats, buf, m.Samples*m.Width)
	view.Latency, buf = readF64s(view.Latency, buf, m.Samples)
	view.Dropped, buf = readBools(view.Dropped, buf, m.Samples)
	view.ECN, buf = readBools(view.ECN, buf, m.Samples)
	ds := &Dataset{
		Dir: m.Dir, Spec: m.Spec, Bounds: m.Bounds, Disc: m.Disc,
		DropRate: m.DropRate, ECNRate: m.ECNRate, Samples: view,
	}
	if m.Bank > 0 {
		ds.InfoBank = make([]PacketInfo, m.Bank)
		for i := range ds.InfoBank {
			p := &ds.InfoBank[i]
			p.LocalRack = int(binary.LittleEndian.Uint64(buf))
			p.LocalServer = int(binary.LittleEndian.Uint64(buf[8:]))
			p.LocalAgg = int(binary.LittleEndian.Uint64(buf[16:]))
			p.Core = int(binary.LittleEndian.Uint64(buf[24:]))
			p.SizeBytes = int(binary.LittleEndian.Uint64(buf[32:]))
			p.Priority = int(binary.LittleEndian.Uint64(buf[40:]))
			p.ArrivalTime = sim.Time(binary.LittleEndian.Uint64(buf[48:]))
			p.IsAck, p.ECT, p.CEIn = buf[56] != 0, buf[57] != 0, buf[58] != 0
			buf = buf[infoBankStride:]
		}
	}
	if m.Interarrivals > 0 {
		ds.Interarrivals, buf = readF64s(
			make([]float64, 0, m.Interarrivals), buf, m.Interarrivals)
	}
	return ds, buf, nil
}

func appendF64s(buf []byte, vals []float64) []byte {
	for _, f := range vals {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(f))
	}
	return buf
}

func readF64s(dst []float64, buf []byte, n int) ([]float64, []byte) {
	for i := 0; i < n; i++ {
		dst = append(dst, math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:])))
	}
	return dst, buf[8*n:]
}

func appendBools(buf []byte, vals []bool) []byte {
	for _, b := range vals {
		buf = append(buf, b2b(b))
	}
	return buf
}

func readBools(dst []bool, buf []byte, n int) ([]bool, []byte) {
	for i := 0; i < n; i++ {
		dst = append(dst, buf[i] != 0)
	}
	return dst, buf[n:]
}

func b2b(b bool) byte {
	if b {
		return 1
	}
	return 0
}
