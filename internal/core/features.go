// Package core implements MimicNet itself: trace capture at cluster
// boundaries, scalable feature extraction, internal (LSTM) model training
// for ingress and egress traffic, flow-level feeder models, Mimic cluster
// shims, and the composition of one observable cluster with N−1 Mimics
// into a full-scale generative simulation (paper §4–§7).
package core

import (
	"math"

	"mimicnet/internal/sim"
	"mimicnet/internal/stats"
	"mimicnet/internal/topo"
)

// Direction distinguishes the two independently trained models
// (paper §5.5: ingress/egress decomposition).
type Direction int

// Traffic directions relative to the modeled cluster.
const (
	Ingress Direction = iota // enters from a Core switch, exits at a host
	Egress                   // enters at a host, exits toward a Core switch
)

// String names the direction.
func (d Direction) String() string {
	if d == Ingress {
		return "ingress"
	}
	return "egress"
}

// CongestionState is the coarse 4-state network regime the paper adds as
// domain knowledge to help the LSTM track multiscale patterns (§5.5).
type CongestionState int

// The four congestion regimes.
const (
	CongNone CongestionState = iota
	CongRising
	CongHigh
	CongFalling
)

// NumCongestionStates is the one-hot width of the congestion feature.
const NumCongestionStates = 4

// CongestionEstimator classifies recent latency/drop history into one of
// four regimes using fast and slow EWMAs: high absolute level ⇒ High,
// rising fast-vs-slow gap ⇒ Rising, falling gap ⇒ Falling, else None.
type CongestionEstimator struct {
	fast, slow *stats.EWMA
	drops      *stats.EWMA
	lo, hi     float64 // latency thresholds (seconds)
}

// NewCongestionEstimator builds an estimator with latency thresholds
// bounding the "uncongested" and "congested" regimes.
func NewCongestionEstimator(lo, hi float64) *CongestionEstimator {
	return &CongestionEstimator{
		fast:  stats.NewEWMA(0.3),
		slow:  stats.NewEWMA(0.05),
		drops: stats.NewEWMA(0.2),
		lo:    lo,
		hi:    hi,
	}
}

// Observe folds in one packet outcome (latency in seconds; dropped flag).
func (c *CongestionEstimator) Observe(latency float64, dropped bool) {
	if dropped {
		c.drops.Update(1)
		// Drops imply the queue was full: treat as max-latency evidence.
		c.fast.Update(c.hi)
		c.slow.Update(c.hi)
		return
	}
	c.drops.Update(0)
	c.fast.Update(latency)
	c.slow.Update(latency)
}

// State returns the current regime.
func (c *CongestionEstimator) State() CongestionState {
	if !c.fast.Initialized() {
		return CongNone
	}
	f, s := c.fast.Value(), c.slow.Value()
	span := c.hi - c.lo
	if span <= 0 {
		span = 1
	}
	trend := (f - s) / span
	switch {
	case f > c.hi*0.75 || c.drops.Value() > 0.05:
		return CongHigh
	case trend > 0.05:
		return CongRising
	case trend < -0.05:
		return CongFalling
	default:
		return CongNone
	}
}

// PacketInfo is the direction-independent description of one external
// packet crossing the modeled cluster's boundary, from which features are
// derived. All fields are "scalable" in the paper's sense (Table 1): their
// value, range, and semantics do not change as clusters are added.
type PacketInfo struct {
	LocalRack   int // destination (ingress) or source (egress) rack index
	LocalServer int // slot within the rack
	LocalAgg    int // aggregation switch index traversed
	Core        int // core switch index traversed (agg-group-relative * slot)
	SizeBytes   int
	IsAck       bool
	ECT         bool
	CEIn        bool // CE already set when entering the cluster
	Priority    int
	ArrivalTime sim.Time
}

// FeatureSpec fixes the one-hot layout for a topology's per-cluster
// structure. The same spec applies at any cluster count — that is the
// point of scalable features.
type FeatureSpec struct {
	Racks       int
	Servers     int // hosts per rack
	Aggs        int
	Cores       int     // total core switches (AggPerCluster * CoresPerAgg)
	TimeScale   float64 // seconds mapped to 1.0 in interarrival features
	Discretizer int     // bins for time features (0 = continuous)

	// SkipCongestion drops the 4-state congestion-regime feature —
	// an ablation of the paper's §5.5 domain-knowledge augmentation.
	SkipCongestion bool
}

// NewFeatureSpec derives the spec from a topology config.
func NewFeatureSpec(tc topo.Config) FeatureSpec {
	return FeatureSpec{
		Racks:       tc.RacksPerCluster,
		Servers:     tc.HostsPerRack,
		Aggs:        tc.AggPerCluster,
		Cores:       tc.AggPerCluster * tc.CoresPerAgg,
		TimeScale:   1e-3, // 1 ms — the natural packet-gap scale here
		Discretizer: 64,
	}
}

// Width returns the feature vector length.
func (s FeatureSpec) Width() int {
	w := s.Racks + s.Servers + s.Aggs + s.Cores + 7
	if !s.SkipCongestion {
		w += NumCongestionStates
	}
	return w
}

// Extractor converts PacketInfo to model feature vectors while tracking
// the stream state (time since last packet, its EWMA, congestion state).
// One Extractor serves one (cluster, direction) packet stream.
type Extractor struct {
	Spec FeatureSpec
	Cong *CongestionEstimator

	last     sim.Time
	haveLast bool
	gapEWMA  *stats.EWMA
}

// NewExtractor builds an extractor. congLo/congHi are the latency bounds
// (seconds) for the congestion estimator.
func NewExtractor(spec FeatureSpec, congLo, congHi float64) *Extractor {
	return &Extractor{
		Spec:    spec,
		Cong:    NewCongestionEstimator(congLo, congHi),
		gapEWMA: stats.NewEWMA(0.2),
	}
}

// timeFeature squashes a gap (seconds) into [0,1] on a log scale and
// optionally snaps it to the spec's discretization grid (paper §5.2:
// discretizing time features trades recovery precision for learnability).
func (e *Extractor) timeFeature(gapSec float64) float64 {
	scaled := math.Log1p(gapSec/e.Spec.TimeScale) / math.Log1p(1000)
	if scaled > 1 {
		scaled = 1
	}
	if e.Spec.Discretizer > 1 {
		d := ml1Discretize(scaled, e.Spec.Discretizer)
		return d
	}
	return scaled
}

func ml1Discretize(v float64, bins int) float64 {
	idx := int(v * float64(bins))
	if idx >= bins {
		idx = bins - 1
	}
	if idx < 0 {
		idx = 0
	}
	return (float64(idx) + 0.5) / float64(bins)
}

// Features builds the feature vector for a packet and advances stream
// state. The caller must feed packets in arrival order.
func (e *Extractor) Features(p PacketInfo) []float64 {
	return e.FeaturesAppend(make([]float64, 0, e.Spec.Width()), p)
}

// FeaturesAppend appends the packet's feature row to dst and returns
// it — the columnar dataset builder writes rows straight into its flat
// matrix, so building a dataset performs no per-packet allocation.
func (e *Extractor) FeaturesAppend(dst []float64, p PacketInfo) []float64 {
	s := e.Spec
	v := dst
	v = appendOneHot(v, p.LocalRack, s.Racks)
	v = appendOneHot(v, p.LocalServer, s.Servers)
	v = appendOneHot(v, p.LocalAgg, s.Aggs)
	v = appendOneHot(v, p.Core, s.Cores)

	v = append(v, float64(p.SizeBytes)/1500.0)

	gap := 0.0
	if e.haveLast {
		gap = (p.ArrivalTime - e.last).Seconds()
		if gap < 0 {
			gap = 0
		}
	}
	e.last = p.ArrivalTime
	e.haveLast = true
	gf := e.timeFeature(gap)
	v = append(v, gf)
	v = append(v, e.gapEWMA.Update(gf))

	v = append(v, b2f(p.IsAck), b2f(p.ECT), b2f(p.CEIn), float64(p.Priority)/8.0)

	if !s.SkipCongestion {
		state := e.Cong.State()
		for i := 0; i < NumCongestionStates; i++ {
			if CongestionState(i) == state {
				v = append(v, 1)
			} else {
				v = append(v, 0)
			}
		}
	}
	return v
}

// ObserveOutcome feeds the packet's eventual fate back into the
// congestion estimator (called when the matched exit/drop is known during
// training, or with the model's own prediction at inference).
func (e *Extractor) ObserveOutcome(latencySec float64, dropped bool) {
	e.Cong.Observe(latencySec, dropped)
}

// Reset clears stream state (new simulation run).
func (e *Extractor) Reset() {
	e.last, e.haveLast = 0, false
	e.gapEWMA.Reset()
	e.Cong = NewCongestionEstimator(e.Cong.lo, e.Cong.hi)
}

func appendOneHot(v []float64, idx, n int) []float64 {
	for i := 0; i < n; i++ {
		if i == idx {
			v = append(v, 1)
		} else {
			v = append(v, 0)
		}
	}
	return v
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
