package core

import (
	"math"
	"testing"

	"mimicnet/internal/cluster"
	"mimicnet/internal/metrics"
	"mimicnet/internal/ml"
	"mimicnet/internal/sim"
	"mimicnet/internal/stats"
	"mimicnet/internal/topo"
	"mimicnet/internal/transport"
	"mimicnet/internal/workload"
)

// fastBase returns a quick 2-cluster base configuration.
func fastBase() cluster.Config {
	cfg := cluster.DefaultConfig(2)
	cfg.Workload = workload.DefaultConfig(20_000)
	cfg.Workload.Duration = 150 * sim.Millisecond
	cfg.Workload.Load = 0.7
	return cfg
}

// fastTrain returns a small, quick training configuration.
func fastTrain() TrainConfig {
	cfg := DefaultTrainConfig()
	cfg.Dataset.Window = 6
	cfg.Model = ml.DefaultModelConfig(0, 6)
	cfg.Model.Hidden = 12
	cfg.Model.Epochs = 2
	return cfg
}

func TestFeatureSpecWidth(t *testing.T) {
	spec := NewFeatureSpec(topo.DefaultConfig())
	// 2 racks + 4 servers + 2 aggs + 4 cores + 7 scalars + 4 congestion.
	want := 2 + 4 + 2 + 4 + 7 + 4
	if spec.Width() != want {
		t.Errorf("Width = %d, want %d", spec.Width(), want)
	}
}

func TestFeatureSpecScaleIndependent(t *testing.T) {
	a := NewFeatureSpec(topo.DefaultConfig().WithClusters(2))
	b := NewFeatureSpec(topo.DefaultConfig().WithClusters(128))
	if a.Width() != b.Width() {
		t.Error("feature width changed with cluster count — not scalable")
	}
}

func TestExtractorFeatures(t *testing.T) {
	spec := NewFeatureSpec(topo.DefaultConfig())
	ex := NewExtractor(spec, 0.001, 0.01)
	info := PacketInfo{
		LocalRack: 1, LocalServer: 2, LocalAgg: 0, Core: 3,
		SizeBytes: 1500, IsAck: false, ECT: true, Priority: 4,
		ArrivalTime: sim.Millisecond,
	}
	v := ex.Features(info)
	if len(v) != spec.Width() {
		t.Fatalf("feature len %d != width %d", len(v), spec.Width())
	}
	// One-hot sanity: rack block is [0,1], server block [0,0,1,0].
	if v[0] != 0 || v[1] != 1 {
		t.Errorf("rack one-hot = %v", v[:2])
	}
	if v[2] != 0 || v[3] != 0 || v[4] != 1 || v[5] != 0 {
		t.Errorf("server one-hot = %v", v[2:6])
	}
	// Size scalar at offset racks+servers+aggs+cores.
	off := 2 + 4 + 2 + 4
	if v[off] != 1.0 {
		t.Errorf("size feature = %v, want 1.0 for MTU", v[off])
	}
	// ECT flag set.
	if v[off+4] != 1 {
		t.Errorf("ECT feature = %v", v[off+4])
	}
	// Congestion one-hot sums to 1.
	var sum float64
	for _, x := range v[len(v)-NumCongestionStates:] {
		sum += x
	}
	if sum != 1 {
		t.Errorf("congestion one-hot sum = %v", sum)
	}
}

func TestExtractorTimeFeaturesAdvance(t *testing.T) {
	spec := NewFeatureSpec(topo.DefaultConfig())
	ex := NewExtractor(spec, 0.001, 0.01)
	base := PacketInfo{ArrivalTime: 0, SizeBytes: 100}
	v1 := ex.Features(base)
	base.ArrivalTime = 10 * sim.Millisecond
	v2 := ex.Features(base)
	off := 2 + 4 + 2 + 4 + 1 // gap feature offset
	if v1[off] != v2[off] && v2[off] <= v1[off] {
		t.Errorf("larger gap should give larger time feature: %v vs %v", v1[off], v2[off])
	}
	ex.Reset()
	v3 := ex.Features(base)
	if v3[off] != v1[off] {
		t.Error("Reset did not clear last-packet state")
	}
}

func TestCongestionEstimatorStates(t *testing.T) {
	c := NewCongestionEstimator(0.001, 0.01)
	if c.State() != CongNone {
		t.Error("fresh estimator should report none")
	}
	// Low latency: none.
	for i := 0; i < 50; i++ {
		c.Observe(0.001, false)
	}
	if c.State() != CongNone {
		t.Errorf("low latency state = %v", c.State())
	}
	// Sudden rise: rising.
	for i := 0; i < 3; i++ {
		c.Observe(0.008, false)
	}
	if s := c.State(); s != CongRising && s != CongHigh {
		t.Errorf("rising latency state = %v", s)
	}
	// Sustained high + drops: high.
	for i := 0; i < 50; i++ {
		c.Observe(0.01, i%3 == 0)
	}
	if c.State() != CongHigh {
		t.Errorf("sustained congestion state = %v", c.State())
	}
	// Recovery: falling.
	for i := 0; i < 10; i++ {
		c.Observe(0.001, false)
	}
	if s := c.State(); s != CongFalling && s != CongNone {
		t.Errorf("recovery state = %v", s)
	}
}

func runTraced(t *testing.T) (*Tracer, *cluster.Simulation) {
	t.Helper()
	inst, err := cluster.New(fastBase())
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTracer(inst.Topo, 1)
	tr.Attach(inst)
	inst.Run(300 * sim.Millisecond)
	return tr, inst
}

func TestTracerCapturesBothDirections(t *testing.T) {
	tr, inst := runTraced(t)
	ing, eg := tr.ByDirection()
	if len(ing) == 0 || len(eg) == 0 {
		t.Fatalf("ingress=%d egress=%d records", len(ing), len(eg))
	}
	// Entry order must be non-decreasing.
	for recsIdx, recs := range [][]*TraceRecord{ing, eg} {
		for i := 1; i < len(recs); i++ {
			if recs[i].Entry < recs[i-1].Entry {
				t.Fatalf("direction %d records out of entry order", recsIdx)
			}
		}
	}
	// Latencies of delivered packets must be at least the wire time of
	// two links (agg->tor->host or host->tor->core side).
	minWire := (2 * inst.Cfg.Link.Delay).Seconds()
	for _, r := range tr.Records() {
		if r.Dropped {
			continue
		}
		if r.Latency() < minWire-1e-9 {
			t.Fatalf("%v latency %v below wire floor %v", r.Dir, r.Latency(), minWire)
		}
	}
}

func TestTracerExternalOnly(t *testing.T) {
	tr, inst := runTraced(t)
	for _, r := range tr.Records() {
		_ = r
	}
	// Reconstruct: every traced packet must have exactly one endpoint in
	// cluster 1. We can't see the packets anymore, but Info.LocalRack and
	// Dir were derived from them; instead verify drop/pending accounting.
	if tr.PendingCount() > 50 {
		t.Errorf("suspiciously many unmatched packets: %d", tr.PendingCount())
	}
	_ = inst
}

func TestTracerSeesDropsUnderPressure(t *testing.T) {
	cfg := fastBase()
	cfg.QueueCapacity = 4 // tiny queues force in-cluster drops
	cfg.Workload.Load = 0.95
	inst, err := cluster.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTracer(inst.Topo, 1)
	tr.Attach(inst)
	inst.Run(300 * sim.Millisecond)
	drops := 0
	for _, r := range tr.Records() {
		if r.Dropped {
			drops++
		}
	}
	if drops == 0 {
		t.Error("no drops captured with 4-packet queues at 95% load")
	}
}

func TestBuildDataset(t *testing.T) {
	tr, inst := runTraced(t)
	ing, _ := tr.ByDirection()
	spec := NewFeatureSpec(inst.Cfg.Topo)
	ds, err := BuildDataset(Ingress, ing, spec, DatasetConfig{Window: 5, LatencyBins: 50})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != len(ing) {
		t.Errorf("samples %d != records %d", ds.Len(), len(ing))
	}
	for i := 0; i < ds.Len(); i++ {
		s := ds.Samples.At(i)
		if len(s.Window) != 5 {
			t.Fatalf("sample %d window len %d", i, len(s.Window))
		}
		for _, row := range s.Window {
			if len(row) != spec.Width() {
				t.Fatalf("sample %d feature width %d", i, len(row))
			}
		}
		if s.Latency < 0 || s.Latency > 1 {
			t.Fatalf("sample %d latency %v outside [0,1]", i, s.Latency)
		}
		if s.Dropped && s.Latency != 1.0 {
			t.Fatalf("dropped sample %d latency %v, want 1.0", i, s.Latency)
		}
	}
	if ds.Bounds.Hi <= ds.Bounds.Lo {
		t.Error("degenerate latency bounds")
	}
	if len(ds.Interarrivals) != len(ing)-1 {
		t.Errorf("interarrivals %d, want %d", len(ds.Interarrivals), len(ing)-1)
	}
	train, test := ds.Split(0.8)
	if train.Len()+test.Len() != ds.Len() || test.Len() == 0 {
		t.Error("bad split")
	}
}

func TestBuildDatasetValidation(t *testing.T) {
	if _, err := BuildDataset(Ingress, nil, FeatureSpec{}, DatasetConfig{Window: 0}); err == nil {
		t.Error("zero window accepted")
	}
	// Empty records: safe defaults.
	ds, err := BuildDataset(Ingress, nil, NewFeatureSpec(topo.DefaultConfig()), DatasetConfig{Window: 3})
	if err != nil || ds.Len() != 0 {
		t.Error("empty dataset mishandled")
	}
}

func TestBoundsFromRecords(t *testing.T) {
	b := boundsFromRecords(nil)
	if b.Hi <= b.Lo {
		t.Error("empty bounds degenerate")
	}
	recs := []*TraceRecord{
		{Entry: 0, Exit: sim.Millisecond, Matched: true},
		{Entry: 0, Exit: 3 * sim.Millisecond, Matched: true},
		{Entry: 0, Dropped: true, Matched: true},
	}
	b = boundsFromRecords(recs)
	if math.Abs(b.Lo-0.001) > 1e-9 || math.Abs(b.Hi-0.003) > 1e-9 {
		t.Errorf("bounds = %+v", b)
	}
}

func TestTrainAndComposePipeline(t *testing.T) {
	base := fastBase()
	pcfg := DefaultPipelineConfig(base)
	pcfg.SmallScaleDuration = 250 * sim.Millisecond
	pcfg.Train = fastTrain()
	art, err := RunPipeline(pcfg)
	if err != nil {
		t.Fatal(err)
	}
	if art.IngressSamples == 0 || art.EgressSamples == 0 {
		t.Fatal("no training samples")
	}
	if art.SmallScaleTime <= 0 || art.TrainTime <= 0 {
		t.Error("phase timings not recorded")
	}
	if art.IngressEval.LatencyMAE > 0.5 {
		t.Errorf("ingress latency MAE %v implausibly bad", art.IngressEval.LatencyMAE)
	}

	// Compose at 4 clusters and compare against ground truth.
	res, elapsed, err := art.Estimate(base, 4, 300*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed <= 0 {
		t.Error("no elapsed time")
	}
	if len(res.FCTs) == 0 || len(res.RTTs) == 0 || len(res.Throughputs) == 0 {
		t.Fatalf("composed run missing metrics: %d FCTs, %d RTTs, %d tputs",
			len(res.FCTs), len(res.RTTs), len(res.Throughputs))
	}

	truthCfg := base
	truthCfg.Topo = base.Topo.WithClusters(4)
	truth, err := cluster.New(truthCfg)
	if err != nil {
		t.Fatal(err)
	}
	truth.Run(300 * sim.Millisecond)
	tres := truth.Results()

	// The approximation is not exact, but the distributions must be in
	// the same regime: median RTT within 4x, p99 FCT within 5x.
	if len(tres.RTTs) > 0 && len(res.RTTs) > 0 {
		mTruth := stats.Quantile(tres.RTTs, 0.5)
		mMimic := stats.Quantile(res.RTTs, 0.5)
		if mMimic > 4*mTruth || mMimic < mTruth/4 {
			t.Errorf("median RTT: mimic %v vs truth %v", mMimic, mTruth)
		}
	}
	w1 := metrics.W1(res.FCTs, tres.FCTs)
	if math.IsNaN(w1) {
		t.Error("FCT W1 not computable")
	}
	t.Logf("4-cluster composition: W1(FCT)=%.4f, flows mimic=%d truth=%d",
		w1, len(res.FCTs), len(tres.FCTs))
}

func TestComposeValidation(t *testing.T) {
	base := fastBase()
	models := &MimicModels{Spec: NewFeatureSpec(base.Topo), Window: 4}
	if _, err := Compose(base, models); err == nil {
		t.Error("incomplete models accepted")
	}
	if _, err := Compose(base, nil); err == nil {
		t.Error("nil models accepted")
	}
	cfg := base
	cfg.Protocol = nil
	if _, err := Compose(cfg, models); err == nil {
		t.Error("nil protocol accepted")
	}
	cfg = base
	cfg.Topo.Clusters = 1
	if _, err := Compose(cfg, models); err == nil {
		t.Error("1-cluster composition accepted")
	}
}

func TestComposeRejectsStructureChange(t *testing.T) {
	base := fastBase()
	pcfg := DefaultPipelineConfig(base)
	pcfg.SmallScaleDuration = 60 * sim.Millisecond
	pcfg.Train = fastTrain()
	art, err := RunPipeline(pcfg)
	if err != nil {
		t.Fatal(err)
	}
	bad := base
	bad.Topo.RacksPerCluster++ // per-cluster structure change
	bad.Topo.Clusters = 4
	if _, err := Compose(bad, art.Models); err == nil {
		t.Error("structure change accepted — scalable features violated")
	}
}

func TestMimicModelSerialization(t *testing.T) {
	base := fastBase()
	pcfg := DefaultPipelineConfig(base)
	pcfg.SmallScaleDuration = 100 * sim.Millisecond
	pcfg.Train = fastTrain()
	art, err := RunPipeline(pcfg)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := art.Models.Save()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := LoadModels(blob)
	if err != nil {
		t.Fatal(err)
	}
	// Same prediction from both.
	a := NewMimic(art.Models, 1, 7)
	b := NewMimic(restored, 1, 7)
	info := PacketInfo{LocalRack: 0, LocalServer: 1, SizeBytes: 1500, ArrivalTime: sim.Millisecond}
	oa := a.ProcessIngress(info)
	ob := b.ProcessIngress(info)
	if oa != ob {
		t.Errorf("restored model diverges: %+v vs %+v", oa, ob)
	}
	if _, err := LoadModels([]byte(`{}`)); err == nil {
		t.Error("incomplete blob accepted")
	}
	if _, err := LoadModels([]byte(`garbage`)); err == nil {
		t.Error("garbage blob accepted")
	}
}

func TestMimicOutcomesBounded(t *testing.T) {
	base := fastBase()
	pcfg := DefaultPipelineConfig(base)
	pcfg.SmallScaleDuration = 150 * sim.Millisecond
	pcfg.Train = fastTrain()
	art, err := RunPipeline(pcfg)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMimic(art.Models, 1, 3)
	rng := stats.NewStream(5)
	lo := art.Models.Ingress.Bounds.Lo
	hi := art.Models.Ingress.Bounds.Hi
	for i := 0; i < 200; i++ {
		info := PacketInfo{
			LocalRack:   rng.Intn(2),
			LocalServer: rng.Intn(4),
			LocalAgg:    rng.Intn(2),
			Core:        rng.Intn(4),
			SizeBytes:   40 + rng.Intn(1460),
			ArrivalTime: sim.Time(i) * 100 * sim.Microsecond,
		}
		out := m.ProcessIngress(info)
		if out.Dropped {
			continue
		}
		sec := out.Latency.Seconds()
		if sec < lo-1e-12 || sec > hi+1e-12 {
			t.Fatalf("latency %v outside bounds [%v, %v]", sec, lo, hi)
		}
	}
}

func TestMimicDeterminism(t *testing.T) {
	base := fastBase()
	pcfg := DefaultPipelineConfig(base)
	pcfg.SmallScaleDuration = 100 * sim.Millisecond
	pcfg.Train = fastTrain()
	art, err := RunPipeline(pcfg)
	if err != nil {
		t.Fatal(err)
	}
	run := func() []Outcome {
		m := NewMimic(art.Models, 2, 42)
		var outs []Outcome
		for i := 0; i < 50; i++ {
			outs = append(outs, m.ProcessEgress(PacketInfo{
				LocalServer: i % 4, SizeBytes: 1500,
				ArrivalTime: sim.Time(i) * sim.Millisecond,
			}))
		}
		return outs
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("mimic diverged at %d", i)
		}
	}
}

func TestFeederGapScaling(t *testing.T) {
	dm := &DirectionModel{
		Interarrival:   stats.LogNormal{Mu: math.Log(0.001), Sigma: 0.1},
		RatePktsPerSec: 1000,
	}
	rng := stats.NewStream(1)
	if FeederGap(dm, rng, 2) != 0 {
		t.Error("2-cluster composition needs no feeders")
	}
	mean := func(n int) float64 {
		r := stats.NewStream(1)
		var sum float64
		for i := 0; i < 2000; i++ {
			sum += FeederGap(dm, r, n).Seconds()
		}
		return sum / 2000
	}
	m4, m64 := mean(4), mean(64)
	// At larger N the Mimic-Mimic fraction approaches 1, so gaps shrink
	// toward the full measured interarrival.
	if m64 >= m4 {
		t.Errorf("feeder gaps should shrink with N: mean(4)=%v mean(64)=%v", m4, m64)
	}
	// n=4: fraction 2/3 ⇒ mean gap = 1ms / (2/3) = 1.5ms.
	if math.Abs(m4-0.0015) > 0.0003 {
		t.Errorf("mean gap at n=4 = %v, want ~0.0015", m4)
	}
	zero := &DirectionModel{}
	if FeederGap(zero, rng, 8) != 0 {
		t.Error("zero-rate model should disable feeders")
	}
}

func TestComposedFeedersRun(t *testing.T) {
	base := fastBase()
	pcfg := DefaultPipelineConfig(base)
	pcfg.SmallScaleDuration = 150 * sim.Millisecond
	pcfg.Train = fastTrain()
	art, err := RunPipeline(pcfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg := base
	cfg.Topo = base.Topo.WithClusters(4)
	comp, err := Compose(cfg, art.Models)
	if err != nil {
		t.Fatal(err)
	}
	comp.Run(200 * sim.Millisecond)
	if comp.FeederEvents() == 0 {
		t.Error("no feeder events in a 4-cluster composition")
	}
	if comp.InferenceSteps() == 0 {
		t.Error("no LSTM inference steps recorded")
	}
	if comp.FlowsCompleted() == 0 {
		t.Error("no flows completed in composition")
	}
}

func TestDirectionString(t *testing.T) {
	if Ingress.String() != "ingress" || Egress.String() != "egress" {
		t.Error("Direction names wrong")
	}
}

func TestTransportNamesCoveredByComposition(t *testing.T) {
	// Compose must work with every protocol (Figure 14 requires it). We
	// only check construction here; the protocol-comparison benches run
	// the full pipeline.
	base := fastBase()
	pcfg := DefaultPipelineConfig(base)
	pcfg.SmallScaleDuration = 80 * sim.Millisecond
	pcfg.Train = fastTrain()
	art, err := RunPipeline(pcfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range transport.Names() {
		p, _ := transport.ByName(name)
		cfg := base
		cfg.Protocol = p
		cfg.Topo = base.Topo.WithClusters(3)
		if _, err := Compose(cfg, art.Models); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestFeederGapEmpiricalReplay(t *testing.T) {
	dm := &DirectionModel{
		Interarrival:     stats.LogNormal{Mu: math.Log(0.010), Sigma: 0.01},
		GapSamples:       []float64{0.001, 0.001, 0.001},
		UseEmpiricalGaps: true,
		RatePktsPerSec:   100,
	}
	rng := stats.NewStream(1)
	// Empirical gaps are 1ms; the lognormal fit says 10ms. Replay must
	// draw from the samples.
	g := FeederGap(dm, rng, 4).Seconds()
	want := 0.001 / (2.0 / 3.0)
	if math.Abs(g-want) > 1e-9 {
		t.Errorf("empirical gap = %v, want %v", g, want)
	}
	dm.UseEmpiricalGaps = false
	g = FeederGap(dm, rng, 4).Seconds()
	if math.Abs(g-0.015) > 0.002 {
		t.Errorf("lognormal gap = %v, want ~0.015", g)
	}
	// Empty samples fall back to the parametric fit.
	dm.UseEmpiricalGaps = true
	dm.GapSamples = nil
	if FeederGap(dm, rng, 4) == 0 {
		t.Error("empty empirical bank should fall back, not disable")
	}
}
