package core

import (
	"mimicnet/internal/cluster"
	"mimicnet/internal/netsim"
	"mimicnet/internal/sim"
	"mimicnet/internal/topo"
)

// TraceRecord is one external packet observed crossing the modeled
// cluster's boundary during the small-scale simulation, matched between
// entry and exit (paper §5.1: "matches the packets entering and leaving
// the network using identifiers from the packets").
type TraceRecord struct {
	PktID uint64
	Dir   Direction
	Info  PacketInfo

	Entry   sim.Time
	Exit    sim.Time // zero until matched
	Dropped bool
	Matched bool // exit or drop observed
	CEOut   bool // CE bit when leaving the cluster
}

// Latency returns the in-cluster latency in seconds (only meaningful for
// matched, non-dropped records).
func (r *TraceRecord) Latency() float64 { return (r.Exit - r.Entry).Seconds() }

// Tracer instruments a full-fidelity simulation to dump the packets
// entering and leaving one modeled cluster. In a FatTree this amounts to
// tapping the Core-facing and Host-facing interfaces (paper §5.1).
type Tracer struct {
	Topo    *topo.Topology
	Cluster int // the to-be-modeled cluster

	pending map[uint64]*TraceRecord
	records []*TraceRecord
}

// NewTracer creates a tracer for the given cluster.
func NewTracer(t *topo.Topology, modeled int) *Tracer {
	return &Tracer{Topo: t, Cluster: modeled, pending: make(map[uint64]*TraceRecord)}
}

// Attach wires the tracer into a simulation's fabric taps. It must be
// called before the simulation runs; it chains any existing taps.
func (tr *Tracer) Attach(inst *cluster.Simulation) {
	prevArrive := inst.Fabric.Taps.OnArrive
	prevSend := inst.Fabric.Taps.OnSend
	prevDrop := inst.Fabric.Taps.OnDrop
	inst.Fabric.Taps.OnArrive = func(node int, pkt *netsim.Packet, at sim.Time) {
		tr.onArrive(node, pkt, at)
		if prevArrive != nil {
			prevArrive(node, pkt, at)
		}
	}
	inst.Fabric.Taps.OnSend = func(from, to int, pkt *netsim.Packet, at sim.Time) {
		tr.onSend(from, to, pkt, at)
		if prevSend != nil {
			prevSend(from, to, pkt, at)
		}
	}
	inst.Fabric.Taps.OnDrop = func(from, to int, pkt *netsim.Packet, at sim.Time) {
		tr.onDrop(from, to, pkt, at)
		if prevDrop != nil {
			prevDrop(from, to, pkt, at)
		}
	}
}

// BuildPacketInfo extracts the scalable packet description relative to a
// modeled cluster. local is the in-cluster endpoint (source for egress,
// destination for ingress). All resulting fields keep their value, range,
// and semantics regardless of cluster count (Table 1).
func BuildPacketInfo(t *topo.Topology, modeled int, pkt *netsim.Packet, local int, at sim.Time) PacketInfo {
	agg, core := 0, 0
	for _, node := range pkt.Path {
		switch t.KindOf(node) {
		case topo.KindAgg:
			if t.ClusterOf(node) == modeled {
				agg = t.AggIndexOf(node)
			}
		case topo.KindCore:
			core = t.AggIndexOf(node)*t.Config().CoresPerAgg + t.CoreSlotOf(node)
		}
	}
	return PacketInfo{
		LocalRack:   t.RackOf(local),
		LocalServer: t.SlotOf(local),
		LocalAgg:    agg,
		Core:        core,
		SizeBytes:   pkt.Size,
		IsAck:       pkt.IsAck,
		ECT:         pkt.ECT,
		CEIn:        pkt.CE,
		Priority:    pkt.Priority,
		ArrivalTime: at,
	}
}

func (tr *Tracer) info(pkt *netsim.Packet, local int, at sim.Time) PacketInfo {
	return BuildPacketInfo(tr.Topo, tr.Cluster, pkt, local, at)
}

func (tr *Tracer) isExternal(pkt *netsim.Packet) (Direction, bool) {
	srcIn := tr.Topo.ClusterOf(pkt.Src) == tr.Cluster
	dstIn := tr.Topo.ClusterOf(pkt.Dst) == tr.Cluster
	switch {
	case srcIn && !dstIn:
		return Egress, true
	case !srcIn && dstIn:
		return Ingress, true
	default:
		return 0, false // internal or unrelated traffic is not traced
	}
}

func (tr *Tracer) onSend(from, to int, pkt *netsim.Packet, at sim.Time) {
	// Egress entry: the in-cluster host offers the packet to its NIC.
	if tr.Topo.KindOf(from) != topo.KindHost || tr.Topo.ClusterOf(from) != tr.Cluster {
		return
	}
	if dir, ok := tr.isExternal(pkt); !ok || dir != Egress {
		return
	}
	rec := &TraceRecord{
		PktID: pkt.ID, Dir: Egress,
		Info:  tr.info(pkt, pkt.Src, at),
		Entry: at,
	}
	tr.pending[pkt.ID] = rec
	tr.records = append(tr.records, rec)
}

func (tr *Tracer) onArrive(node int, pkt *netsim.Packet, at sim.Time) {
	t := tr.Topo
	switch t.KindOf(node) {
	case topo.KindAgg:
		// Ingress entry: packet lands on the modeled cluster's agg coming
		// down from a core switch.
		if t.ClusterOf(node) != tr.Cluster {
			return
		}
		if dir, ok := tr.isExternal(pkt); !ok || dir != Ingress {
			return
		}
		if pkt.Hop < 1 || t.KindOf(pkt.Path[pkt.Hop-1]) != topo.KindCore {
			return
		}
		rec := &TraceRecord{
			PktID: pkt.ID, Dir: Ingress,
			Info:  tr.info(pkt, pkt.Dst, at),
			Entry: at,
		}
		tr.pending[pkt.ID] = rec
		tr.records = append(tr.records, rec)
	case topo.KindCore:
		// Egress exit: the packet reached a core switch from our cluster.
		rec, ok := tr.pending[pkt.ID]
		if !ok || rec.Dir != Egress {
			return
		}
		tr.finish(rec, pkt, at, false)
	case topo.KindHost:
		// Ingress exit: delivery to the in-cluster destination host.
		rec, ok := tr.pending[pkt.ID]
		if !ok || rec.Dir != Ingress || node != pkt.Dst {
			return
		}
		tr.finish(rec, pkt, at, false)
	}
}

func (tr *Tracer) onDrop(from, to int, pkt *netsim.Packet, at sim.Time) {
	rec, ok := tr.pending[pkt.ID]
	if !ok {
		return
	}
	// Only drops inside the modeled cluster's network count: for egress,
	// between the host and the core; for ingress, between the agg and the
	// host. Drops at core output ports happen outside the cluster.
	if tr.Topo.KindOf(from) == topo.KindCore {
		return
	}
	tr.finish(rec, pkt, at, true)
}

func (tr *Tracer) finish(rec *TraceRecord, pkt *netsim.Packet, at sim.Time, dropped bool) {
	rec.Exit = at
	rec.Dropped = dropped
	rec.Matched = true
	rec.CEOut = pkt.CE
	delete(tr.pending, rec.PktID)
}

// Records returns matched records in entry order — the order the Mimic
// model will see packets at inference time. Unmatched (still in flight)
// records are excluded.
func (tr *Tracer) Records() []*TraceRecord {
	out := make([]*TraceRecord, 0, len(tr.records))
	for _, r := range tr.records {
		if r.Matched {
			out = append(out, r)
		}
	}
	return out
}

// ByDirection splits matched records by direction, preserving entry order.
func (tr *Tracer) ByDirection() (ingress, egress []*TraceRecord) {
	for _, r := range tr.Records() {
		if r.Dir == Ingress {
			ingress = append(ingress, r)
		} else {
			egress = append(egress, r)
		}
	}
	return ingress, egress
}

// PendingCount returns packets that entered but neither exited nor
// dropped by the end of the run (still in flight).
func (tr *Tracer) PendingCount() int { return len(tr.pending) }
