package core

import (
	"context"
	"fmt"
	"strconv"

	"mimicnet/internal/cluster"
	"mimicnet/internal/metrics"
	"mimicnet/internal/netsim"
	"mimicnet/internal/obs"
	"mimicnet/internal/sim"
	"mimicnet/internal/stats"
	"mimicnet/internal/topo"
	"mimicnet/internal/transport"
	"mimicnet/internal/workload"
)

// Composed is an N-cluster MimicNet simulation: one real (observable)
// cluster plus N−1 Mimic clusters and a proportional number of Core
// switches (paper §7.1). The observable cluster, the core fabric, and the
// remote transport endpoints of observable flows run at full fidelity;
// everything inside Mimic clusters is predicted by the trained models,
// with feeders standing in for Mimic-Mimic traffic.
//
// A composition runs either sequentially (one event queue) or sharded
// into one logical process per cluster (cfg.Sharded()), with core
// switches riding on the observable cluster's LP. Mimic clusters interact
// with the rest of the network only through inter-cluster links and the
// egress model's latency floor, which bounds the PDES lookahead; remote
// events are delivered in deterministic (time, source LP, sequence)
// order, so both modes produce bitwise-identical Results.
type Composed struct {
	Cfg    cluster.Config
	Sim    *sim.Simulator // the observable shard's simulator
	Topo   *topo.Topology
	Fabric *netsim.Fabric
	Mimics []*Mimic // indexed by cluster; nil for the observable

	shards []*shardCtx   // one per LP; a single entry when sequential
	par    *sim.Parallel // nil when sequential
	hosts  []*transport.Host
	flows  []workload.Flow
	models *MimicModels

	// Progress, if set, is invoked periodically from RunContext's run
	// loop (per window barrier when sharded, every
	// cluster.CancelCheckEvery events when sequential) with the
	// simulated clock and total events processed.
	Progress func(now sim.Time, events uint64)

	cancelled bool
}

// shardCtx is the per-logical-process slice of a composition: its
// simulator, transport environment, metrics collector, inference
// scheduler, and counters. Every field is written only by the owning
// LP's goroutine, so sharded runs count and collect without locks; the
// padding keeps neighboring shards' hot counters off each other's cache
// lines.
type shardCtx struct {
	sim   *sim.Simulator
	env   *transport.Env
	coll  *metrics.Collector
	sched *InferenceScheduler // nil under SequentialInference

	flowsStarted   int
	flowsCompleted int
	dropsIngress   uint64
	dropsEgress    uint64
	feederEvents   uint64
	modelPackets   uint64 // Hybrid only
	modelDrops     uint64 // Hybrid only
	_              [8]uint64
}

const observable = 0

// shardIdx maps a cluster index to its logical process: cluster i runs on
// LP i; core switches (ClusterOf == -1) ride with the observable on LP 0.
// Sequential compositions collapse everything onto the single shard.
func (c *Composed) shardIdx(clusterIdx int) int {
	if c.par == nil || clusterIdx < 0 {
		return 0
	}
	return clusterIdx
}

func (c *Composed) shardFor(clusterIdx int) *shardCtx {
	return c.shards[c.shardIdx(clusterIdx)]
}

// composedLookahead returns the PDES lookahead for a composed topology:
// the minimum latency of any cross-LP channel. Core->Agg links bound one
// direction (propagation delay); the egress model's latency floor bounds
// the other (a Mimic host's packet re-materializes at a core switch no
// earlier than Lo after injection). Non-positive means the models give no
// usable margin and the composition must run sequentially.
func composedLookahead(link netsim.LinkConfig, models *MimicModels) sim.Time {
	la := link.Delay
	if egLo := sim.FromSeconds(models.Egress.Bounds.Lo); egLo < la {
		la = egLo
	}
	return la
}

// shardedWindow caps the inference collection window so the egress
// continuation margin (Lo - window) never drops below the lookahead.
func shardedWindow(window, lookahead sim.Time, models *MimicModels) sim.Time {
	cap := sim.FromSeconds(models.Egress.Bounds.Lo) - lookahead
	if window > cap {
		window = cap
	}
	if window < 0 {
		window = 0
	}
	return window
}

// Compose builds the large-scale approximate simulation. cfg.Topo.Clusters
// sets N; all other parameters should match the small-scale run that
// trained the models ("Aside from the number of clusters, all other
// parameters are kept constant", §7.1).
func Compose(cfg cluster.Config, models *MimicModels) (*Composed, error) {
	if cfg.Protocol == nil {
		return nil, fmt.Errorf("core: config needs a protocol")
	}
	if err := cfg.Topo.Validate(); err != nil {
		return nil, err
	}
	if cfg.Topo.Clusters < 2 {
		return nil, fmt.Errorf("core: composition needs >= 2 clusters")
	}
	if models == nil || models.Ingress == nil || models.Egress == nil {
		return nil, fmt.Errorf("core: missing trained models")
	}
	got := NewFeatureSpec(cfg.Topo)
	got.SkipCongestion = models.Spec.SkipCongestion
	if got.Width() != models.Spec.Width() {
		return nil, fmt.Errorf("core: feature spec mismatch: models trained for width %d, topology needs %d (per-cluster structure must not change)",
			models.Spec.Width(), got.Width())
	}
	cfg.Observable = observable

	t := topo.New(cfg.Topo)
	cfg.Workload.HostLinkBps = cfg.Link.RateBps
	allFlows, err := workload.Generate(t, cfg.Workload)
	if err != nil {
		return nil, err
	}
	// Only traffic touching the observable cluster is simulated as real
	// packets; the rest is approximated by the feeders.
	flows := make([]workload.Flow, 0, len(allFlows))
	for _, f := range allFlows {
		if t.ClusterOf(f.Src) == observable || t.ClusterOf(f.Dst) == observable {
			flows = append(flows, f)
		}
	}

	link := cfg.Link
	link.SwitchQueue = cfg.QueueFactory()

	lookahead := composedLookahead(link, models)
	sharded := cfg.Sharded() && lookahead > 0

	c := &Composed{
		Cfg: cfg, Topo: t,
		flows:  flows,
		models: models,
		Mimics: make([]*Mimic, cfg.Topo.Clusters),
	}

	if sharded {
		c.par = sim.NewParallel(cfg.Topo.Clusters, lookahead)
		c.par.NumWorkers = cfg.ShardWorkers()
		c.shards = make([]*shardCtx, cfg.Topo.Clusters)
		for i := range c.shards {
			c.shards[i] = &shardCtx{sim: c.par.LPs[i].Sim, coll: metrics.NewCollector()}
		}
		shardOf := make([]int, t.Nodes())
		for n := range shardOf {
			if cl := t.ClusterOf(n); cl > 0 {
				shardOf[n] = cl
			}
		}
		c.Fabric = netsim.NewShardedFabric(c.par.LPs, shardOf, t, link)
	} else {
		c.shards = []*shardCtx{{sim: sim.New(), coll: metrics.NewCollector()}}
		c.Fabric = netsim.NewFabric(c.shards[0].sim, t, link)
	}
	c.Sim = c.shards[0].sim

	for i := 1; i < cfg.Topo.Clusters; i++ {
		c.Mimics[i] = NewMimic(models, i, cfg.Workload.Seed)
	}
	if !cfg.SequentialInference {
		w := cfg.BatchWindow
		if w == 0 {
			w = DefaultBatchWindow(models)
		}
		if sharded {
			// Per-LP schedulers: each Mimic cluster batches its own
			// window, with the window capped for cross-LP causality.
			w = shardedWindow(w, lookahead, models)
			for i := 1; i < cfg.Topo.Clusters; i++ {
				sh := c.shards[i]
				sh.sched = NewInferenceScheduler(sh.sim, models, w)
				c.Mimics[i].AttachScheduler(sh.sched)
			}
		} else {
			sched := NewInferenceScheduler(c.Sim, models, w)
			c.shards[0].sched = sched
			for i := 1; i < cfg.Topo.Clusters; i++ {
				c.Mimics[i].AttachScheduler(sched)
			}
		}
	}

	for si, sh := range c.shards {
		sh := sh
		sh.env = &transport.Env{
			Sim:      sh.sim,
			MSS:      netsim.MSS,
			BDPBytes: cfg.BDPBytes(),
			Inject:   c.inject,
			OnRTT: func(f *transport.Flow, sec float64) {
				if t.ClusterOf(f.Src) == observable {
					sh.coll.RTTSample(sec)
				}
			},
			OnComplete: func(f *transport.Flow) {
				sh.coll.FlowCompleted(strconv.FormatUint(f.ID, 10), sh.sim.Now())
				sh.flowsCompleted++
			},
		}
		_ = si
	}

	c.hosts = make([]*transport.Host, t.Hosts())
	for h := 0; h < t.Hosts(); h++ {
		h := h
		sh := c.shardFor(t.ClusterOf(h))
		host := transport.NewHost(h, sh.env, func(f *transport.Flow) *transport.Receiver {
			r := transport.NewReceiver(sh.env, f)
			if transport.IsHoma(cfg.Protocol) {
				bdp := sh.env.BDPBytes
				r.EnableGranting(func(remaining int64) int {
					return transport.HomaPriority(remaining, bdp)
				})
			}
			if t.ClusterOf(h) == observable {
				r.OnDeliver = func(n int64) {
					sh.coll.BytesReceived(h, n, sh.sim.Now())
				}
			}
			return r
		})
		c.hosts[h] = host
		c.Fabric.RegisterHost(h, host.Receive)
	}

	c.Fabric.SetIntercept(c.interceptIngress)

	for _, f := range flows {
		f := f
		c.shardFor(t.ClusterOf(f.Src)).sim.At(f.Start, func() { c.startFlow(f) })
	}
	c.startFeeders()
	return c, nil
}

// inject routes transport packets: observable-cluster sources use the
// real fabric; Mimic-cluster sources pass through the egress model first.
// It always executes on the LP owning pkt.Src's host.
func (c *Composed) inject(pkt *netsim.Packet) {
	pkt.Path = c.Topo.Path(pkt.Src, pkt.Dst, pkt.Hash)
	srcCluster := c.Topo.ClusterOf(pkt.Src)
	if srcCluster == observable {
		c.Fabric.Inject(pkt)
		return
	}
	sh := c.shardFor(srcCluster)
	mimic := c.Mimics[srcCluster]
	info := BuildPacketInfo(c.Topo, srcCluster, pkt, pkt.Src, sh.sim.Now())
	mimic.ProcessEgressAsync(info, func(out Outcome) {
		if out.Dropped {
			sh.dropsEgress++
			return
		}
		if out.ECNMark {
			pkt.CE = true
		}
		// Find the core hop: the packet materializes there after the
		// predicted in-cluster latency; core and observable-cluster hops
		// are then simulated at full fidelity.
		coreHop := -1
		for i, node := range pkt.Path {
			if c.Topo.KindOf(node) == topo.KindCore {
				coreHop = i
				break
			}
		}
		if coreHop < 0 {
			// Both endpoints inside the same Mimic should never reach
			// here (such flows are filtered); treat as model-internal
			// and drop.
			sh.dropsEgress++
			return
		}
		// The latency is relative to arrival; under batched inference
		// the callback runs at flush time, so schedule at the absolute
		// instant (clamped in case a custom window outran causality).
		at := info.ArrivalTime + out.Latency
		if now := sh.sim.Now(); at < now {
			at = now
		}
		materialize := func() { c.Fabric.InjectAt(pkt, coreHop) }
		if c.par != nil {
			// The core switch lives on LP 0: cross the boundary as a
			// remote event. The sharded batch window is capped so this
			// send is always at least one lookahead ahead.
			c.par.LPs[srcCluster].SendTo(c.par.LPs[0], at, materialize)
			return
		}
		sh.sim.At(at, materialize)
	})
}

// interceptIngress swallows packets descending into a Mimic cluster and
// replaces the in-cluster journey with the ingress model's prediction.
// The fabric calls it on the LP owning the Agg switch, i.e. the Mimic's
// own shard; the predicted delivery is local to that shard too.
func (c *Composed) interceptIngress(node int, pkt *netsim.Packet) bool {
	t := c.Topo
	if t.KindOf(node) != topo.KindAgg {
		return false
	}
	clusterIdx := t.ClusterOf(node)
	if clusterIdx == observable {
		return false
	}
	if t.ClusterOf(pkt.Dst) != clusterIdx {
		return false
	}
	sh := c.shardFor(clusterIdx)
	mimic := c.Mimics[clusterIdx]
	info := BuildPacketInfo(t, clusterIdx, pkt, pkt.Dst, sh.sim.Now())
	mimic.ProcessIngressAsync(info, func(out Outcome) {
		if out.Dropped {
			sh.dropsIngress++
			return
		}
		if out.ECNMark {
			pkt.CE = true
		}
		dst := pkt.Dst
		at := info.ArrivalTime + out.Latency
		if now := sh.sim.Now(); at < now {
			at = now
		}
		sh.sim.At(at, func() {
			c.hosts[dst].Receive(pkt)
		})
	})
	return true
}

func (c *Composed) startFlow(f workload.Flow) {
	sh := c.shardFor(c.Topo.ClusterOf(f.Src))
	tf := &transport.Flow{
		ID: f.ID, Src: f.Src, Dst: f.Dst, Bytes: f.Bytes,
		Hash: topo.FlowHash(f.Src, f.Dst, f.ID),
	}
	sender := c.Cfg.Protocol.NewSender(sh.env, tf)
	c.hosts[f.Src].AddSender(f.ID, sender)
	sh.coll.FlowStarted(strconv.FormatUint(f.ID, 10), f.Src, f.Dst, f.Bytes, sh.sim.Now())
	sh.flowsStarted++
	sender.Start()
}

// startFeeders schedules the per-Mimic, per-direction synthetic traffic
// that keeps internal model state realistic without simulating packets.
// Feeder events are local to the Mimic's own shard.
func (c *Composed) startFeeders() {
	n := c.Cfg.Topo.Clusters
	if n <= 2 {
		return // all external traffic is real in a 2-cluster composition
	}
	for idx := 1; idx < n; idx++ {
		mimic := c.Mimics[idx]
		sh := c.shardFor(idx)
		for _, dir := range []Direction{Ingress, Egress} {
			dm := c.models.Ingress
			feed := mimic.FeedIngress
			if dir == Egress {
				dm = c.models.Egress
				feed = mimic.FeedEgress
			}
			rng := stats.NewStream(c.Cfg.Workload.Seed).Derive(
				fmt.Sprintf("feeder-%d-%s", idx, dir))
			var schedule func()
			schedule = func() {
				gap := FeederGap(dm, rng, n)
				if gap <= 0 {
					return
				}
				sh.sim.After(gap, func() {
					sh.feederEvents++
					feed(sh.sim.Now())
					schedule()
				})
			}
			schedule()
		}
	}
}

// Flows returns the real (observable-touching) flow schedule.
func (c *Composed) Flows() []workload.Flow { return c.flows }

// Scheduler exposes the batched inference scheduler: the single global
// one when sequential, the first Mimic shard's when sharded (each shard
// owns an identical-configured instance). Nil under SequentialInference.
func (c *Composed) Scheduler() *InferenceScheduler {
	for _, sh := range c.shards {
		if sh.sched != nil {
			return sh.sched
		}
	}
	return nil
}

// Sharded reports whether this composition runs as parallel LPs.
func (c *Composed) Sharded() bool { return c.par != nil }

// Parallel exposes the PDES coordinator (nil when sequential), for
// inspection of barrier and causality-clamp counts.
func (c *Composed) Parallel() *sim.Parallel { return c.par }

// FlowsStarted returns the number of real flows started.
func (c *Composed) FlowsStarted() int {
	total := 0
	for _, sh := range c.shards {
		total += sh.flowsStarted
	}
	return total
}

// FlowsCompleted returns the number of real flows completed.
func (c *Composed) FlowsCompleted() int {
	total := 0
	for _, sh := range c.shards {
		total += sh.flowsCompleted
	}
	return total
}

// MimicDropsIngress returns packets the ingress models predicted dropped.
func (c *Composed) MimicDropsIngress() uint64 {
	var total uint64
	for _, sh := range c.shards {
		total += sh.dropsIngress
	}
	return total
}

// MimicDropsEgress returns packets the egress models predicted dropped.
func (c *Composed) MimicDropsEgress() uint64 {
	var total uint64
	for _, sh := range c.shards {
		total += sh.dropsEgress
	}
	return total
}

// FeederEvents returns the number of synthetic feeder advances.
func (c *Composed) FeederEvents() uint64 {
	var total uint64
	for _, sh := range c.shards {
		total += sh.feederEvents
	}
	return total
}

// Run advances the composed simulation. Under batched inference, any
// requests still collecting when the horizon hits are flushed so that
// model state, RNG streams, and drop accounting match the inline path.
func (c *Composed) Run(until sim.Time) {
	sp := obs.StartSpan(obsPhaseCompose)
	if c.par != nil {
		c.par.Run(until) // the PDES coordinator publishes its own event deltas
	} else {
		pre := c.Sim.Processed()
		c.Sim.RunUntil(until)
		sim.CountKernelEvents(c.Sim.Processed() - pre)
	}
	c.flushSchedulers()
	sp.End()
}

func (c *Composed) flushSchedulers() {
	for _, sh := range c.shards {
		if sh.sched != nil {
			sh.sched.Flush()
		}
	}
}

// RunContext is Run with cooperative cancellation and progress. The
// cancellation check rides the window barrier when sharded (windows are a
// lookahead of simulated time, microseconds of wall-clock) and a
// per-event ticker when sequential, so a killed job stops promptly in
// either mode without perturbing an uncancelled run. On cancellation the
// schedulers are still flushed — model state, RNG streams, and drop
// accounting stay consistent — and the metrics collected so far remain
// valid; Results then reports Cancelled rather than the work being
// abandoned silently. Returns true when the run was cancelled.
func (c *Composed) RunContext(ctx context.Context, until sim.Time) (cancelled bool) {
	if ctx == nil || (ctx.Done() == nil && c.Progress == nil) {
		c.Run(until)
		return false
	}
	defer obs.StartSpan(obsPhaseCompose).End()
	tick := func(now sim.Time, events uint64) bool {
		if c.Progress != nil {
			c.Progress(now, events)
		}
		if ctx.Err() != nil {
			c.cancelled = true
			return true
		}
		return false
	}
	if c.par != nil {
		c.par.Ticker = tick
		defer func() { c.par.Ticker = nil }()
		c.par.Run(until)
	} else {
		pre := c.Sim.Processed()
		c.Sim.SetTicker(cluster.CancelCheckEvery, tick)
		defer c.Sim.SetTicker(0, nil)
		c.Sim.RunUntil(until)
		sim.CountKernelEvents(c.Sim.Processed() - pre)
	}
	c.flushSchedulers()
	return c.cancelled
}

// Results snapshots the collected metrics in the same shape as a
// full-fidelity run, so they can be compared directly. Sharded shards'
// collectors merge losslessly: every flow's records live entirely on its
// source host's LP and all distribution outputs are sorted.
func (c *Composed) Results() cluster.Results {
	coll := c.shards[0].coll
	if len(c.shards) > 1 {
		colls := make([]*metrics.Collector, len(c.shards))
		for i, sh := range c.shards {
			colls[i] = sh.coll
		}
		coll = metrics.Merged(colls...)
	}
	var events uint64
	for _, sh := range c.shards {
		events += sh.sim.Processed()
	}
	return cluster.Results{
		FCTs:        coll.FCTs(),
		Throughputs: coll.Throughputs(),
		RTTs:        coll.RTTs(),
		FCTByID:     coll.FCTByID(),
		Events:      events,
		Packets:     c.Fabric.Injected(),
		Drops:       c.Fabric.Drops() + c.MimicDropsIngress() + c.MimicDropsEgress(),
		Cancelled:   c.cancelled,
	}
}

// InferenceSteps totals LSTM steps across all Mimics (Figure 23).
func (c *Composed) InferenceSteps() uint64 {
	var total uint64
	for _, m := range c.Mimics {
		if m != nil {
			total += m.InferenceSteps()
		}
	}
	return total
}
