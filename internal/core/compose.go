package core

import (
	"mimicnet/internal/cluster"
)

// Composed is an N-cluster MimicNet simulation: one real (observable)
// cluster plus N−1 Mimic clusters and a proportional number of Core
// switches (paper §7.1). It is the Engine built from ComposedRoles —
// see engine.go for the runtime; this alias keeps the historical name
// used throughout the experiments, tuning, and serving code.
type Composed = Engine

// Compose builds the large-scale approximate simulation. cfg.Topo.Clusters
// sets N; all other parameters should match the small-scale run that
// trained the models ("Aside from the number of clusters, all other
// parameters are kept constant", §7.1).
func Compose(cfg cluster.Config, models *MimicModels) (*Composed, error) {
	n := cfg.Topo.Clusters
	if n < 0 {
		n = 0 // invalid; NewEngine reports the real error
	}
	return NewEngine(cfg, ComposedRoles(n), models)
}
