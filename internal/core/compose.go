package core

import (
	"fmt"
	"strconv"

	"mimicnet/internal/cluster"
	"mimicnet/internal/metrics"
	"mimicnet/internal/netsim"
	"mimicnet/internal/sim"
	"mimicnet/internal/stats"
	"mimicnet/internal/topo"
	"mimicnet/internal/transport"
	"mimicnet/internal/workload"
)

// Composed is an N-cluster MimicNet simulation: one real (observable)
// cluster plus N−1 Mimic clusters and a proportional number of Core
// switches (paper §7.1). The observable cluster, the core fabric, and the
// remote transport endpoints of observable flows run at full fidelity;
// everything inside Mimic clusters is predicted by the trained models,
// with feeders standing in for Mimic-Mimic traffic.
type Composed struct {
	Cfg       cluster.Config
	Sim       *sim.Simulator
	Topo      *topo.Topology
	Fabric    *netsim.Fabric
	Env       *transport.Env
	Collector *metrics.Collector
	Mimics    []*Mimic // indexed by cluster; nil for the observable

	hosts  []*transport.Host
	flows  []workload.Flow
	models *MimicModels
	sched  *InferenceScheduler // nil under Cfg.SequentialInference

	// Counters for the speed/compute experiments.
	FlowsStarted, FlowsCompleted int
	MimicDropsIngress            uint64
	MimicDropsEgress             uint64
	FeederEvents                 uint64
}

const observable = 0

// Compose builds the large-scale approximate simulation. cfg.Topo.Clusters
// sets N; all other parameters should match the small-scale run that
// trained the models ("Aside from the number of clusters, all other
// parameters are kept constant", §7.1).
func Compose(cfg cluster.Config, models *MimicModels) (*Composed, error) {
	if cfg.Protocol == nil {
		return nil, fmt.Errorf("core: config needs a protocol")
	}
	if err := cfg.Topo.Validate(); err != nil {
		return nil, err
	}
	if cfg.Topo.Clusters < 2 {
		return nil, fmt.Errorf("core: composition needs >= 2 clusters")
	}
	if models == nil || models.Ingress == nil || models.Egress == nil {
		return nil, fmt.Errorf("core: missing trained models")
	}
	got := NewFeatureSpec(cfg.Topo)
	got.SkipCongestion = models.Spec.SkipCongestion
	if got.Width() != models.Spec.Width() {
		return nil, fmt.Errorf("core: feature spec mismatch: models trained for width %d, topology needs %d (per-cluster structure must not change)",
			models.Spec.Width(), got.Width())
	}
	cfg.Observable = observable

	t := topo.New(cfg.Topo)
	cfg.Workload.HostLinkBps = cfg.Link.RateBps
	allFlows, err := workload.Generate(t, cfg.Workload)
	if err != nil {
		return nil, err
	}
	// Only traffic touching the observable cluster is simulated as real
	// packets; the rest is approximated by the feeders.
	flows := make([]workload.Flow, 0, len(allFlows))
	for _, f := range allFlows {
		if t.ClusterOf(f.Src) == observable || t.ClusterOf(f.Dst) == observable {
			flows = append(flows, f)
		}
	}

	s := sim.New()
	link := cfg.Link
	link.SwitchQueue = cfg.QueueFactory()
	fabric := netsim.NewFabric(s, t, link)

	c := &Composed{
		Cfg: cfg, Sim: s, Topo: t, Fabric: fabric,
		Collector: metrics.NewCollector(),
		flows:     flows,
		models:    models,
		Mimics:    make([]*Mimic, cfg.Topo.Clusters),
	}
	for i := 1; i < cfg.Topo.Clusters; i++ {
		c.Mimics[i] = NewMimic(models, i, cfg.Workload.Seed)
	}
	if !cfg.SequentialInference {
		w := cfg.BatchWindow
		if w == 0 {
			w = DefaultBatchWindow(models)
		}
		c.sched = NewInferenceScheduler(s, models, w)
		for i := 1; i < cfg.Topo.Clusters; i++ {
			c.Mimics[i].AttachScheduler(c.sched)
		}
	}

	c.Env = &transport.Env{
		Sim:      s,
		MSS:      netsim.MSS,
		BDPBytes: cfg.BDPBytes(),
		Inject:   c.inject,
		OnRTT: func(f *transport.Flow, sec float64) {
			if t.ClusterOf(f.Src) == observable {
				c.Collector.RTTSample(sec)
			}
		},
		OnComplete: func(f *transport.Flow) {
			c.Collector.FlowCompleted(strconv.FormatUint(f.ID, 10), s.Now())
			c.FlowsCompleted++
		},
	}

	c.hosts = make([]*transport.Host, t.Hosts())
	for h := 0; h < t.Hosts(); h++ {
		h := h
		host := transport.NewHost(h, c.Env, func(f *transport.Flow) *transport.Receiver {
			r := transport.NewReceiver(c.Env, f)
			if transport.IsHoma(cfg.Protocol) {
				bdp := c.Env.BDPBytes
				r.EnableGranting(func(remaining int64) int {
					return transport.HomaPriority(remaining, bdp)
				})
			}
			if t.ClusterOf(h) == observable {
				r.OnDeliver = func(n int64) {
					c.Collector.BytesReceived(h, n, s.Now())
				}
			}
			return r
		})
		c.hosts[h] = host
		fabric.RegisterHost(h, host.Receive)
	}

	fabric.SetIntercept(c.interceptIngress)

	for _, f := range flows {
		f := f
		s.At(f.Start, func() { c.startFlow(f) })
	}
	c.startFeeders()
	return c, nil
}

// inject routes transport packets: observable-cluster sources use the
// real fabric; Mimic-cluster sources pass through the egress model first.
func (c *Composed) inject(pkt *netsim.Packet) {
	pkt.Path = c.Topo.Path(pkt.Src, pkt.Dst, pkt.Hash)
	srcCluster := c.Topo.ClusterOf(pkt.Src)
	if srcCluster == observable {
		c.Fabric.Inject(pkt)
		return
	}
	mimic := c.Mimics[srcCluster]
	info := BuildPacketInfo(c.Topo, srcCluster, pkt, pkt.Src, c.Sim.Now())
	mimic.ProcessEgressAsync(info, func(out Outcome) {
		if out.Dropped {
			c.MimicDropsEgress++
			return
		}
		if out.ECNMark {
			pkt.CE = true
		}
		// Find the core hop: the packet materializes there after the
		// predicted in-cluster latency; core and observable-cluster hops
		// are then simulated at full fidelity.
		coreHop := -1
		for i, node := range pkt.Path {
			if c.Topo.KindOf(node) == topo.KindCore {
				coreHop = i
				break
			}
		}
		if coreHop < 0 {
			// Both endpoints inside the same Mimic should never reach
			// here (such flows are filtered); treat as model-internal
			// and drop.
			c.MimicDropsEgress++
			return
		}
		// The latency is relative to arrival; under batched inference
		// the callback runs at flush time, so schedule at the absolute
		// instant (clamped in case a custom window outran causality).
		at := info.ArrivalTime + out.Latency
		if now := c.Sim.Now(); at < now {
			at = now
		}
		c.Sim.At(at, func() {
			c.Fabric.InjectAt(pkt, coreHop)
		})
	})
}

// interceptIngress swallows packets descending into a Mimic cluster and
// replaces the in-cluster journey with the ingress model's prediction.
func (c *Composed) interceptIngress(node int, pkt *netsim.Packet) bool {
	t := c.Topo
	if t.KindOf(node) != topo.KindAgg {
		return false
	}
	clusterIdx := t.ClusterOf(node)
	if clusterIdx == observable {
		return false
	}
	if t.ClusterOf(pkt.Dst) != clusterIdx {
		return false
	}
	mimic := c.Mimics[clusterIdx]
	info := BuildPacketInfo(t, clusterIdx, pkt, pkt.Dst, c.Sim.Now())
	mimic.ProcessIngressAsync(info, func(out Outcome) {
		if out.Dropped {
			c.MimicDropsIngress++
			return
		}
		if out.ECNMark {
			pkt.CE = true
		}
		dst := pkt.Dst
		at := info.ArrivalTime + out.Latency
		if now := c.Sim.Now(); at < now {
			at = now
		}
		c.Sim.At(at, func() {
			c.hosts[dst].Receive(pkt)
		})
	})
	return true
}

func (c *Composed) startFlow(f workload.Flow) {
	tf := &transport.Flow{
		ID: f.ID, Src: f.Src, Dst: f.Dst, Bytes: f.Bytes,
		Hash: topo.FlowHash(f.Src, f.Dst, f.ID),
	}
	sender := c.Cfg.Protocol.NewSender(c.Env, tf)
	c.hosts[f.Src].AddSender(f.ID, sender)
	c.Collector.FlowStarted(strconv.FormatUint(f.ID, 10), f.Src, f.Dst, f.Bytes, c.Sim.Now())
	c.FlowsStarted++
	sender.Start()
}

// startFeeders schedules the per-Mimic, per-direction synthetic traffic
// that keeps internal model state realistic without simulating packets.
func (c *Composed) startFeeders() {
	n := c.Cfg.Topo.Clusters
	if n <= 2 {
		return // all external traffic is real in a 2-cluster composition
	}
	for idx := 1; idx < n; idx++ {
		mimic := c.Mimics[idx]
		for _, dir := range []Direction{Ingress, Egress} {
			dm := c.models.Ingress
			feed := mimic.FeedIngress
			if dir == Egress {
				dm = c.models.Egress
				feed = mimic.FeedEgress
			}
			rng := stats.NewStream(c.Cfg.Workload.Seed).Derive(
				fmt.Sprintf("feeder-%d-%s", idx, dir))
			var schedule func()
			schedule = func() {
				gap := FeederGap(dm, rng, n)
				if gap <= 0 {
					return
				}
				c.Sim.After(gap, func() {
					c.FeederEvents++
					feed(c.Sim.Now())
					schedule()
				})
			}
			schedule()
		}
	}
}

// Flows returns the real (observable-touching) flow schedule.
func (c *Composed) Flows() []workload.Flow { return c.flows }

// Scheduler exposes the batched inference scheduler (nil when running
// with SequentialInference).
func (c *Composed) Scheduler() *InferenceScheduler { return c.sched }

// Run advances the composed simulation. Under batched inference, any
// requests still collecting when the horizon hits are flushed so that
// model state, RNG streams, and drop accounting match the inline path.
func (c *Composed) Run(until sim.Time) {
	c.Sim.RunUntil(until)
	if c.sched != nil {
		c.sched.Flush()
	}
}

// Results snapshots the collected metrics in the same shape as a
// full-fidelity run, so they can be compared directly.
func (c *Composed) Results() cluster.Results {
	return cluster.Results{
		FCTs:        c.Collector.FCTs(),
		Throughputs: c.Collector.Throughputs(),
		RTTs:        c.Collector.RTTs(),
		FCTByID:     c.Collector.FCTByID(),
		Events:      c.Sim.Processed(),
		Packets:     c.Fabric.Injected,
		Drops:       c.Fabric.Drops + c.MimicDropsIngress + c.MimicDropsEgress,
	}
}

// InferenceSteps totals LSTM steps across all Mimics (Figure 23).
func (c *Composed) InferenceSteps() uint64 {
	var total uint64
	for _, m := range c.Mimics {
		if m != nil {
			total += m.InferenceSteps()
		}
	}
	return total
}
