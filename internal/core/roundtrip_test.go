package core

import (
	"context"
	"reflect"
	"testing"

	"mimicnet/internal/sim"
)

// TestModelsSaveLoadRecompose closes the serialization gap end to end:
// Save → LoadModels → re-compose must produce bitwise-identical Results
// for every trunk cell type, not just matching ml-layer weights. This is
// the invariant the serve registry's on-disk store leans on — a cache hit
// replays a run exactly as if the models had just been trained.
func TestModelsSaveLoadRecompose(t *testing.T) {
	base := fastBase()
	tcfg := fastTrain()
	ing, eg, _, err := GenerateTrainingData(base, 120*sim.Millisecond, tcfg)
	if err != nil {
		t.Fatal(err)
	}

	for _, cell := range []string{"lstm", "gru", "mlp"} {
		cell := cell
		t.Run(cell, func(t *testing.T) {
			cfg := tcfg
			cfg.Model.CellType = cell
			models, _, _, err := TrainModels(ing, eg, cfg)
			if err != nil {
				t.Fatal(err)
			}
			blob, err := models.Save()
			if err != nil {
				t.Fatal(err)
			}
			loaded, err := LoadModels(blob)
			if err != nil {
				t.Fatal(err)
			}

			run := func(m *MimicModels) interface{} {
				ccfg := base
				ccfg.Topo = base.Topo.WithClusters(4)
				comp, err := Compose(ccfg, m)
				if err != nil {
					t.Fatal(err)
				}
				comp.Run(80 * sim.Millisecond)
				return comp.Results()
			}
			orig := run(models)
			again := run(loaded)
			if !reflect.DeepEqual(orig, again) {
				t.Fatalf("%s: recompose with loaded models diverged from original", cell)
			}
		})
	}
}

// TestComposedRunContextCancel exercises the cancellation hook threaded
// through the run loop in both execution modes: the run stops promptly,
// the metrics collected so far survive, and Results flags the snapshot as
// partial instead of the work being abandoned silently.
func TestComposedRunContextCancel(t *testing.T) {
	base := fastBase()
	tcfg := fastTrain()
	ing, eg, _, err := GenerateTrainingData(base, 100*sim.Millisecond, tcfg)
	if err != nil {
		t.Fatal(err)
	}
	models, _, _, err := TrainModels(ing, eg, tcfg)
	if err != nil {
		t.Fatal(err)
	}

	const horizon = 120 * sim.Millisecond
	for _, mode := range []struct {
		name    string
		sharded int
	}{{"sequential", -1}, {"sharded", 1}} {
		mode := mode
		t.Run(mode.name, func(t *testing.T) {
			cfg := base
			cfg.Topo = base.Topo.WithClusters(4)
			cfg.ShardedRun = mode.sharded

			full, err := Compose(cfg, models)
			if err != nil {
				t.Fatal(err)
			}
			if cancelled := full.RunContext(context.Background(), horizon); cancelled {
				t.Fatal("uncancelled run reported cancellation")
			}
			fullRes := full.Results()
			if fullRes.Cancelled {
				t.Fatal("uncancelled run's Results flagged Cancelled")
			}

			comp, err := Compose(cfg, models)
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			var lastNow sim.Time
			comp.Progress = func(now sim.Time, events uint64) {
				lastNow = now
				if now >= horizon/4 {
					cancel()
				}
			}
			if cancelled := comp.RunContext(ctx, horizon); !cancelled {
				t.Fatal("RunContext did not report cancellation")
			}
			res := comp.Results()
			if !res.Cancelled {
				t.Fatal("partial Results not flagged Cancelled")
			}
			if lastNow <= 0 || lastNow >= horizon {
				t.Fatalf("progress clock %v outside (0, %v)", lastNow, horizon)
			}
			if res.Events == 0 {
				t.Fatal("partial Results lost all progress")
			}
			if res.Events >= fullRes.Events {
				t.Fatalf("cancelled run processed %d events, full run %d — cancellation did not stop early",
					res.Events, fullRes.Events)
			}
		})
	}
}

// TestModelKey pins the content-address semantics the registry depends
// on: determinism, and sensitivity to exactly the knobs that change what
// a training run produces.
func TestModelKey(t *testing.T) {
	base := fastBase()
	tcfg := fastTrain()

	k1, err := ModelKey(base, 100*sim.Millisecond, tcfg, "")
	if err != nil {
		t.Fatal(err)
	}
	k2, err := ModelKey(base, 100*sim.Millisecond, tcfg, "")
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatal("identical configs hashed to different keys")
	}
	if len(k1) != 64 {
		t.Fatalf("key %q is not a sha256 hex digest", k1)
	}

	seeded := base
	seeded.Workload.Seed = base.Workload.Seed + 1
	k3, err := ModelKey(seeded, 100*sim.Millisecond, tcfg, "")
	if err != nil {
		t.Fatal(err)
	}
	if k3 == k1 {
		t.Fatal("differing seeds produced the same key")
	}

	celled := tcfg
	celled.Model.CellType = "gru"
	k4, err := ModelKey(base, 100*sim.Millisecond, celled, "")
	if err != nil {
		t.Fatal(err)
	}
	if k4 == k1 {
		t.Fatal("differing cell types produced the same key")
	}

	// The target composition size must NOT change the key — that is the
	// amortization: one trained blob serves every N.
	big := base
	big.Topo = base.Topo.WithClusters(128)
	k5, err := ModelKey(big, 100*sim.Millisecond, tcfg, "")
	if err != nil {
		t.Fatal(err)
	}
	if k5 != k1 {
		t.Fatal("cluster count leaked into the model key")
	}
}
