package core

import (
	"fmt"
	"math"

	"mimicnet/internal/ml"
)

// LatencyBounds are the observed in-cluster latency range used for
// normalization and discretization. Dropped packets train toward
// Hi + epsilon, i.e. the normalized value 1.0 (paper §5.2).
type LatencyBounds struct {
	Lo, Hi float64 // seconds
}

// boundsFromRecords computes the observed latency range.
func boundsFromRecords(records []*TraceRecord) LatencyBounds {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, r := range records {
		if r.Dropped {
			continue
		}
		l := r.Latency()
		if l < lo {
			lo = l
		}
		if l > hi {
			hi = l
		}
	}
	if math.IsInf(lo, 1) {
		// No successful deliveries: pick a harmless default range.
		return LatencyBounds{Lo: 0, Hi: 1e-3}
	}
	if hi <= lo {
		hi = lo + 1e-6
	}
	return LatencyBounds{Lo: lo, Hi: hi}
}

// DatasetConfig controls window construction.
type DatasetConfig struct {
	Window      int // packets per training window (paper: ~BDP packets)
	LatencyBins int // discretization D for the latency target (0 = continuous)
}

// DefaultDatasetConfig uses a 12-packet window — roughly the BDP of the
// paper's network, the knee of its accuracy/speed trade-off (Appendix C).
func DefaultDatasetConfig() DatasetConfig {
	return DatasetConfig{Window: 12, LatencyBins: 100}
}

// Dataset is a per-direction training set plus the metadata needed to
// reproduce feature extraction and recover latencies at inference time.
type Dataset struct {
	Dir    Direction
	Spec   FeatureSpec
	Bounds LatencyBounds
	Disc   ml.Discretizer
	// Samples is the columnar view: one contiguous row-major feature
	// matrix (each packet's features stored exactly once) plus target
	// columns, with per-sample windows expressed as index ranges.
	Samples *ml.SampleView
	// DropRate/ECNRate summarize target distributions (for reporting).
	DropRate, ECNRate float64
	// InfoBank holds the scalable packet descriptions observed in the
	// trace; feeders replay randomly drawn entries (with fresh arrival
	// times) to advance Mimic hidden state (paper §6).
	InfoBank []PacketInfo
	// Interarrivals are entry-time gaps in seconds for feeder fitting.
	Interarrivals []float64
}

// Len returns the number of training samples.
func (ds *Dataset) Len() int {
	if ds.Samples == nil {
		return 0
	}
	return ds.Samples.Len()
}

// BuildDataset converts boundary trace records (entry order) into
// windowed training samples for one direction. Feature rows are
// extracted straight into the view's flat matrix — no per-sample window
// structure, no materialized padding rows, and (with the exact
// preallocation below) no growth reallocation in the hot loop.
func BuildDataset(dir Direction, records []*TraceRecord, spec FeatureSpec, cfg DatasetConfig) (*Dataset, error) {
	if cfg.Window < 1 {
		return nil, fmt.Errorf("core: window must be >= 1")
	}
	bounds := boundsFromRecords(records)
	n := len(records)
	ds := &Dataset{
		Dir: dir, Spec: spec, Bounds: bounds,
		Disc:     ml.Discretizer{Lo: bounds.Lo, Hi: bounds.Hi, D: cfg.LatencyBins},
		InfoBank: make([]PacketInfo, 0, n),
	}
	if n > 1 {
		ds.Interarrivals = make([]float64, 0, n-1)
	}
	ex := NewExtractor(spec, bounds.Lo, bounds.Hi)
	bank := ml.NewSampleBank(spec.Width(), cfg.Window, n)
	var lastEntry float64 = -1
	var drops, ecns int
	for _, r := range records {
		bank.Feats = ex.FeaturesAppend(bank.Feats, r.Info)
		ds.InfoBank = append(ds.InfoBank, r.Info)
		if lastEntry >= 0 {
			ds.Interarrivals = append(ds.Interarrivals, r.Entry.Seconds()-lastEntry)
		}
		lastEntry = r.Entry.Seconds()

		ecn := r.CEOut && !r.Info.CEIn
		lat := 1.0 // Lmax + epsilon, normalized
		if r.Dropped {
			drops++
		} else {
			lat = ds.Disc.Normalize(r.Latency())
		}
		if ecn {
			ecns++
		}
		bank.PushTarget(lat, r.Dropped, ecn)

		// The training-time congestion estimator sees ground truth.
		if r.Dropped {
			ex.ObserveOutcome(bounds.Hi, true)
		} else {
			ex.ObserveOutcome(r.Latency(), false)
		}
	}
	ds.Samples = bank
	if n > 0 {
		ds.DropRate = float64(drops) / float64(n)
		ds.ECNRate = float64(ecns) / float64(n)
	}
	observeDatasetBuilt(dir, ds)
	return ds, nil
}

// Split divides samples chronologically into train and test sets (time
// series must not leak future into past). The two views share the full
// feature matrix, so the test split's early windows still see their
// pre-cut history — exactly what the legacy layout materialized into
// each sample's padded window.
func (ds *Dataset) Split(trainFrac float64) (train, test *ml.SampleView) {
	if trainFrac <= 0 || trainFrac >= 1 {
		trainFrac = 0.8
	}
	n := ds.Len()
	cut := int(float64(n) * trainFrac)
	return ds.Samples.Slice(0, cut), ds.Samples.Slice(cut, n)
}
