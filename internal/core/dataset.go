package core

import (
	"fmt"
	"math"

	"mimicnet/internal/ml"
)

// LatencyBounds are the observed in-cluster latency range used for
// normalization and discretization. Dropped packets train toward
// Hi + epsilon, i.e. the normalized value 1.0 (paper §5.2).
type LatencyBounds struct {
	Lo, Hi float64 // seconds
}

// boundsFromRecords computes the observed latency range.
func boundsFromRecords(records []*TraceRecord) LatencyBounds {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, r := range records {
		if r.Dropped {
			continue
		}
		l := r.Latency()
		if l < lo {
			lo = l
		}
		if l > hi {
			hi = l
		}
	}
	if math.IsInf(lo, 1) {
		// No successful deliveries: pick a harmless default range.
		return LatencyBounds{Lo: 0, Hi: 1e-3}
	}
	if hi <= lo {
		hi = lo + 1e-6
	}
	return LatencyBounds{Lo: lo, Hi: hi}
}

// DatasetConfig controls window construction.
type DatasetConfig struct {
	Window      int // packets per training window (paper: ~BDP packets)
	LatencyBins int // discretization D for the latency target (0 = continuous)
}

// DefaultDatasetConfig uses a 12-packet window — roughly the BDP of the
// paper's network, the knee of its accuracy/speed trade-off (Appendix C).
func DefaultDatasetConfig() DatasetConfig {
	return DatasetConfig{Window: 12, LatencyBins: 100}
}

// Dataset is a per-direction training set plus the metadata needed to
// reproduce feature extraction and recover latencies at inference time.
type Dataset struct {
	Dir     Direction
	Spec    FeatureSpec
	Bounds  LatencyBounds
	Disc    ml.Discretizer
	Samples []ml.Sample
	// DropRate/ECNRate summarize target distributions (for reporting).
	DropRate, ECNRate float64
	// InfoBank holds the scalable packet descriptions observed in the
	// trace; feeders replay randomly drawn entries (with fresh arrival
	// times) to advance Mimic hidden state (paper §6).
	InfoBank []PacketInfo
	// Interarrivals are entry-time gaps in seconds for feeder fitting.
	Interarrivals []float64
}

// BuildDataset converts boundary trace records (entry order) into
// windowed training samples for one direction.
func BuildDataset(dir Direction, records []*TraceRecord, spec FeatureSpec, cfg DatasetConfig) (*Dataset, error) {
	if cfg.Window < 1 {
		return nil, fmt.Errorf("core: window must be >= 1")
	}
	bounds := boundsFromRecords(records)
	ds := &Dataset{
		Dir: dir, Spec: spec, Bounds: bounds,
		Disc: ml.Discretizer{Lo: bounds.Lo, Hi: bounds.Hi, D: cfg.LatencyBins},
	}
	ex := NewExtractor(spec, bounds.Lo, bounds.Hi)
	width := spec.Width()
	window := make([][]float64, 0, cfg.Window)
	var lastEntry float64 = -1
	var drops, ecns int
	for _, r := range records {
		feat := ex.Features(r.Info)
		ds.InfoBank = append(ds.InfoBank, r.Info)
		if lastEntry >= 0 {
			ds.Interarrivals = append(ds.Interarrivals, r.Entry.Seconds()-lastEntry)
		}
		lastEntry = r.Entry.Seconds()

		window = append(window, feat)
		if len(window) > cfg.Window {
			window = window[1:]
		}
		sample := ml.Sample{Dropped: r.Dropped, ECN: r.CEOut && !r.Info.CEIn}
		if r.Dropped {
			sample.Latency = 1.0 // Lmax + epsilon, normalized
			drops++
		} else {
			sample.Latency = ds.Disc.Normalize(r.Latency())
		}
		if sample.ECN {
			ecns++
		}
		// Pad early windows with zero vectors so no data is wasted.
		win := make([][]float64, cfg.Window)
		pad := cfg.Window - len(window)
		for i := 0; i < pad; i++ {
			win[i] = make([]float64, width)
		}
		copy(win[pad:], window)
		sample.Window = win
		ds.Samples = append(ds.Samples, sample)

		// The training-time congestion estimator sees ground truth.
		if r.Dropped {
			ex.ObserveOutcome(bounds.Hi, true)
		} else {
			ex.ObserveOutcome(r.Latency(), false)
		}
	}
	if n := len(ds.Samples); n > 0 {
		ds.DropRate = float64(drops) / float64(n)
		ds.ECNRate = float64(ecns) / float64(n)
	}
	return ds, nil
}

// Split divides samples chronologically into train and test sets (time
// series must not leak future into past).
func (ds *Dataset) Split(trainFrac float64) (train, test []ml.Sample) {
	if trainFrac <= 0 || trainFrac >= 1 {
		trainFrac = 0.8
	}
	cut := int(float64(len(ds.Samples)) * trainFrac)
	return ds.Samples[:cut], ds.Samples[cut:]
}
