package core

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"mimicnet/internal/sim"
)

// Trace persistence: the paper's workflow dumps boundary packet traces
// from the small-scale simulation and trains models from the dumps
// (§5.1). These helpers serialize matched TraceRecords as JSON Lines so
// data generation and training can run as separate steps (cmd/trace
// writes them; cmd/mimicnet -trace reads them).

// traceLine is the serialized form of one record.
type traceLine struct {
	PktID   uint64     `json:"pkt"`
	Dir     string     `json:"dir"`
	Info    PacketInfo `json:"info"`
	Entry   int64      `json:"entry_ns"`
	Exit    int64      `json:"exit_ns"`
	Dropped bool       `json:"dropped,omitempty"`
	CEOut   bool       `json:"ce_out,omitempty"`
}

// WriteTrace streams matched records (entry order) as JSON Lines.
func WriteTrace(w io.Writer, records []*TraceRecord) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, r := range records {
		line := traceLine{
			PktID: r.PktID, Dir: r.Dir.String(), Info: r.Info,
			Entry: int64(r.Entry), Exit: int64(r.Exit),
			Dropped: r.Dropped, CEOut: r.CEOut,
		}
		if err := enc.Encode(line); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTrace parses a JSON Lines trace back into records, preserving
// order.
func ReadTrace(r io.Reader) ([]*TraceRecord, error) {
	var out []*TraceRecord
	dec := json.NewDecoder(bufio.NewReader(r))
	for {
		var line traceLine
		if err := dec.Decode(&line); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("core: bad trace line %d: %w", len(out)+1, err)
		}
		var dir Direction
		switch line.Dir {
		case "ingress":
			dir = Ingress
		case "egress":
			dir = Egress
		default:
			return nil, fmt.Errorf("core: bad direction %q at line %d", line.Dir, len(out)+1)
		}
		out = append(out, &TraceRecord{
			PktID: line.PktID, Dir: dir, Info: line.Info,
			Entry: sim.Time(line.Entry), Exit: sim.Time(line.Exit),
			Dropped: line.Dropped, CEOut: line.CEOut, Matched: true,
		})
	}
	return out, nil
}

// SplitTrace partitions loaded records by direction, preserving order.
func SplitTrace(records []*TraceRecord) (ingress, egress []*TraceRecord) {
	for _, r := range records {
		if r.Dir == Ingress {
			ingress = append(ingress, r)
		} else {
			egress = append(egress, r)
		}
	}
	return ingress, egress
}
