package core

import (
	"testing"

	"mimicnet/internal/cluster"
	"mimicnet/internal/metrics"
	"mimicnet/internal/sim"
)

// Tests for the compositions only the role-based engine can express:
// multiple observed (ground-truth) clusters in one fabric, per-cluster
// model overrides, and the concurrent RoleError harness.

// cloneModels round-trips an artifact through Save/LoadModels: identical
// content behind a distinct pointer, which is exactly what forces the
// engine's scheduler grouping down the heterogeneous path.
func cloneModels(t *testing.T, m *MimicModels) *MimicModels {
	t.Helper()
	blob, err := m.Save()
	if err != nil {
		t.Fatal(err)
	}
	clone, err := LoadModels(blob)
	if err != nil {
		t.Fatal(err)
	}
	return clone
}

func runRoles(t *testing.T, cfg cluster.Config, roles []ClusterRole, models *MimicModels, until sim.Time) (*Engine, cluster.Results) {
	t.Helper()
	e, err := NewEngine(cfg, roles, models)
	if err != nil {
		t.Fatal(err)
	}
	e.Run(until)
	return e, e.Results()
}

// TestEngineMultiObserved runs a 4-cluster fabric with TWO ground-truth
// clusters ([observed, mimic, observed, mimic]) — the cross-validation
// composition the legacy Composed runtime could not express — end to
// end, sequential and sharded, and checks both observed clusters feed
// the collectors while the mimic clusters stay model-driven.
func TestEngineMultiObserved(t *testing.T) {
	art := trainedForScheduler(t)
	roles := []ClusterRole{
		{Kind: RoleObserved}, {Kind: RoleMimic},
		{Kind: RoleObserved}, {Kind: RoleMimic},
	}
	cfg := fastBase()
	cfg.Topo = cfg.Topo.WithClusters(4)
	until := 200 * sim.Millisecond

	seqCfg := cfg
	seqCfg.ShardedRun = -1
	eng, res := runRoles(t, seqCfg, roles, art.Models, until)

	if len(res.FCTByID) == 0 {
		t.Fatal("no flows completed")
	}
	if len(res.RTTs) == 0 {
		t.Error("observed clusters produced no RTT samples")
	}
	if eng.ModelPackets() == 0 {
		t.Error("mimic clusters served no packets through the models")
	}
	// Throughput samples must come from hosts in BOTH observed clusters:
	// the per-host byte collectors only run where the role is observed.
	th := res.Throughputs
	if len(th) == 0 {
		t.Fatal("no throughput samples")
	}
	// A flow schedule touching two full-fidelity clusters must include
	// real flows sourced in cluster 2 (the second observed cluster).
	var fromSecond int
	for _, f := range eng.Flows() {
		if eng.Topo.ClusterOf(f.Src) == 2 {
			fromSecond++
		}
	}
	if fromSecond == 0 {
		t.Error("no real flows sourced in the second observed cluster")
	}

	// Sharded runs must match sequential metrics exactly (Events differ:
	// sharding adds per-LP scheduler flushes) and be bitwise identical to
	// each other across worker counts.
	var shardedFP string
	for _, workers := range []int{1, 2, 4} {
		shCfg := cfg
		shCfg.ShardedRun = 1
		shCfg.NumWorkers = workers
		sh, shRes := runRoles(t, shCfg, roles, art.Models, until)
		if !sh.Sharded() {
			t.Fatal("forced sharding fell back to sequential")
		}
		sameResults(t, "multi-observed seq vs sharded", res, shRes)
		fp := resultsFingerprint(shRes)
		if shardedFP == "" {
			shardedFP = fp
		} else if fp != shardedFP {
			t.Errorf("workers=%d: sharded multi-observed fingerprint diverged", workers)
		}
	}
}

// TestEnginePerClusterModelOverride gives one mimic cluster its own
// *MimicModels (a Save/Load clone — identical weights, distinct
// pointer). The engine must route that cluster through its own
// scheduler, and because the clone is bit-identical the Results must
// match the homogeneous run exactly — batched lane partitioning cannot
// leak into simulation outcomes.
func TestEnginePerClusterModelOverride(t *testing.T) {
	art := trainedForScheduler(t)
	clone := cloneModels(t, art.Models)
	cfg := fastBase()
	cfg.Topo = cfg.Topo.WithClusters(4)
	until := 200 * sim.Millisecond

	homog := ComposedRoles(4)
	hetero := ComposedRoles(4)
	hetero[2].Models = clone // cluster 2 runs its own artifact

	for _, mode := range []struct {
		name       string
		shardedRun int
		workers    int
	}{
		{"seq", -1, 0},
		{"sharded-w2", 1, 2},
	} {
		mcfg := cfg
		mcfg.ShardedRun = mode.shardedRun
		mcfg.NumWorkers = mode.workers

		base, baseRes := runRoles(t, mcfg, homog, art.Models, until)
		over, overRes := runRoles(t, mcfg, hetero, art.Models, until)

		if mode.shardedRun < 0 {
			// Sequential homogeneous fuses all mimics into one scheduler;
			// the override must split cluster 2 off into a second one.
			if got := len(base.scheds); got != 1 {
				t.Fatalf("%s: homogeneous run built %d schedulers, want 1", mode.name, got)
			}
			if got := len(over.scheds); got != 2 {
				t.Fatalf("%s: override run built %d schedulers, want 2", mode.name, got)
			}
		}
		if overRes.Drops != baseRes.Drops || over.ModelPackets() != base.ModelPackets() {
			t.Errorf("%s: override run counters diverged", mode.name)
		}
		// Events legitimately differ (the extra scheduler adds its own
		// flush events); every simulation outcome must be identical.
		sameResults(t, mode.name+" homogeneous vs override", baseRes, overRes)
	}
}

// TestEngineRoleValidation covers the new failure modes of role vectors.
func TestEngineRoleValidation(t *testing.T) {
	art := trainedForScheduler(t)
	cfg := fastBase()
	cfg.Topo = cfg.Topo.WithClusters(2)

	if _, err := NewEngine(cfg, []ClusterRole{{Kind: RoleObserved}}, art.Models); err == nil {
		t.Error("role vector shorter than cluster count accepted")
	}
	if _, err := NewEngine(cfg, []ClusterRole{{Kind: RoleMimic}, {Kind: RoleMimic}}, art.Models); err == nil {
		t.Error("role vector without an observed cluster accepted")
	}
	if _, err := NewEngine(cfg, []ClusterRole{{Kind: RoleObserved}, {Kind: RoleKind(250)}}, art.Models); err == nil {
		t.Error("unknown role kind accepted")
	}
	if _, err := NewEngine(cfg, ComposedRoles(2), nil); err == nil {
		t.Error("mimic role without default or override models accepted")
	}
	// An all-observed vector needs no models at all: a plain full-fidelity
	// fabric expressed through the engine.
	e, err := NewEngine(cfg, []ClusterRole{{Kind: RoleObserved}, {Kind: RoleObserved}}, nil)
	if err != nil {
		t.Fatalf("all-observed vector rejected: %v", err)
	}
	e.Run(100 * sim.Millisecond)
	if e.ModelPackets() != 0 {
		t.Error("all-observed fabric touched a model")
	}
	if len(e.Results().FCTByID) == 0 {
		t.Error("all-observed fabric completed no flows")
	}
}

// TestRoleErrorMatchesSequential proves the concurrent RoleError harness
// returns exactly the values of the legacy back-to-back procedure
// (reference run, then each hybrid in turn).
func TestRoleErrorMatchesSequential(t *testing.T) {
	art := trainedForScheduler(t)
	cfg := fastBase()
	until := 250 * sim.Millisecond

	ref := cfg
	ref.Topo = cfg.Topo.WithClusters(2)
	ref.Observable = 0
	inst, err := cluster.New(ref)
	if err != nil {
		t.Fatal(err)
	}
	inst.Run(until)
	truth := inst.Results().FCTs
	var want [2]float64
	for _, dir := range []Direction{Ingress, Egress} {
		hyb, err := NewHybrid(cfg, art.Models, dir)
		if err != nil {
			t.Fatal(err)
		}
		hyb.Run(until)
		want[dir] = metrics.W1(hyb.Results().FCTs, truth)
	}

	ingW1, egW1, err := RoleError(cfg, art.Models, until)
	if err != nil {
		t.Fatal(err)
	}
	if ingW1 != want[Ingress] || egW1 != want[Egress] {
		t.Errorf("concurrent RoleError (%v, %v) != sequential (%v, %v)",
			ingW1, egW1, want[Ingress], want[Egress])
	}
}
