package core

import (
	"encoding/json"
	"fmt"

	"mimicnet/internal/ml"
	"mimicnet/internal/sim"
	"mimicnet/internal/stats"
)

// DirectionModel is the trained artifact for one traffic direction: the
// LSTM internal model plus everything needed to run it generatively—
// latency recovery bounds, fitted interarrival distribution, and a bank
// of observed packet descriptions for the feeder (paper §5–§6).
type DirectionModel struct {
	Model  *ml.Model      `json:"model"`
	Bounds LatencyBounds  `json:"bounds"`
	Disc   ml.Discretizer `json:"disc"`

	// Interarrival is the fitted external-packet gap distribution.
	Interarrival stats.LogNormal `json:"interarrival"`
	// GapSamples holds observed interarrival gaps (seconds, subsampled).
	// When UseEmpiricalGaps is set, feeders replay these instead of the
	// parametric fit — the "more sophisticated feeders" the paper allows
	// (§6).
	GapSamples       []float64 `json:"gap_samples,omitempty"`
	UseEmpiricalGaps bool      `json:"use_empirical_gaps,omitempty"`
	// RatePktsPerSec is the measured external packet rate at small scale.
	RatePktsPerSec float64 `json:"rate"`
	// InfoBank holds observed packet descriptions for feeder replay.
	InfoBank []PacketInfo `json:"info_bank"`
	// DropRate/ECNRate are training-set base rates (reporting only).
	DropRate float64 `json:"drop_rate"`
	ECNRate  float64 `json:"ecn_rate"`
}

// MimicModels is the full trained artifact set for one cluster type.
type MimicModels struct {
	Spec    FeatureSpec     `json:"spec"`
	Window  int             `json:"window"`
	Ingress *DirectionModel `json:"ingress"`
	Egress  *DirectionModel `json:"egress"`
}

// Save serializes the models to JSON.
func (m *MimicModels) Save() ([]byte, error) { return json.Marshal(m) }

// LoadModels restores serialized models.
func LoadModels(b []byte) (*MimicModels, error) {
	var m MimicModels
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, err
	}
	if m.Ingress == nil || m.Egress == nil {
		return nil, fmt.Errorf("core: serialized models incomplete")
	}
	return &m, nil
}

// Outcome is the Mimic's prediction for one real packet: the cluster's
// four effects from §4.1 — whether it drops, when it egresses, where it
// egresses (deterministic from routing), and packet modifications (ECN).
type Outcome struct {
	Dropped bool
	Latency sim.Time
	ECNMark bool
}

// Mimic is the runtime shim replacing one non-observable cluster: two
// stateful internal models (ingress/egress) fed by both real boundary
// packets and feeder-generated synthetic traffic.
//
// A Mimic has two inference modes. Standalone (sched == nil), every
// boundary packet runs one model step inline via the per-packet
// StatefulModel. Attached to an InferenceScheduler, steps are deferred
// and fused with the other Mimics' steps into batched matrix–matrix
// calls — bit-identical results, delivered through the Async methods'
// callbacks at flush time.
type Mimic struct {
	Cluster int

	ing, eg *dirRuntime

	sched *InferenceScheduler
	lane  int
}

type dirRuntime struct {
	dm  *DirectionModel
	sm  *ml.StatefulModel
	ex  *Extractor
	rng *stats.Stream
}

// NewMimic instantiates the runtime for one cluster. Each Mimic gets its
// own randomness stream so compositions stay deterministic.
func NewMimic(models *MimicModels, clusterIdx int, seed int64) *Mimic {
	mk := func(dm *DirectionModel, label string) *dirRuntime {
		return &dirRuntime{
			dm:  dm,
			sm:  ml.NewStatefulModel(dm.Model),
			ex:  NewExtractor(models.Spec, dm.Bounds.Lo, dm.Bounds.Hi),
			rng: stats.NewStream(seed).Derive(fmt.Sprintf("mimic-%d-%s", clusterIdx, label)),
		}
	}
	return &Mimic{
		Cluster: clusterIdx,
		ing:     mk(models.Ingress, "ingress"),
		eg:      mk(models.Egress, "egress"),
	}
}

func (d *dirRuntime) process(info PacketInfo) Outcome {
	return d.applyPrediction(info, d.sm.Predict(d.ex.Features(info)))
}

// applyPrediction turns one raw model prediction into an Outcome: the
// drop draw, latency recovery and clamping, the ECN draw, and the
// congestion-estimator feedback. It is the post-inference half of the
// inline path, shared verbatim by the batched scheduler so both modes
// consume the direction's RNG stream identically.
func (d *dirRuntime) applyPrediction(info PacketInfo, pred ml.Prediction) Outcome {
	out := Outcome{}
	if d.rng.Float64() < pred.PDrop {
		out.Dropped = true
		d.ex.ObserveOutcome(d.dm.Bounds.Hi, true)
		return out
	}
	lat := d.dm.Disc.Recover(pred.Latency)
	if lat < d.dm.Bounds.Lo {
		lat = d.dm.Bounds.Lo
	}
	if lat > d.dm.Bounds.Hi {
		lat = d.dm.Bounds.Hi
	}
	out.Latency = sim.FromSeconds(lat)
	if info.ECT && !info.CEIn {
		out.ECNMark = d.rng.Float64() < pred.PECN
	}
	d.ex.ObserveOutcome(lat, false)
	return out
}

// feed advances hidden state with a synthetic packet and discards output
// (paper §6: feeder packets are never created, sent, or routed).
func (d *dirRuntime) feed(now sim.Time) {
	if len(d.dm.InfoBank) == 0 {
		return
	}
	info := d.dm.InfoBank[d.rng.Intn(len(d.dm.InfoBank))]
	info.ArrivalTime = now
	d.sm.Advance(d.ex.Features(info))
}

// AttachScheduler routes this Mimic's model steps through a batched
// inference scheduler, registering one lane per direction model.
func (m *Mimic) AttachScheduler(s *InferenceScheduler) {
	m.sched = s
	m.lane = s.addMimic()
}

// ProcessIngress predicts the cluster's effect on a packet entering from
// a core switch toward an in-cluster host.
func (m *Mimic) ProcessIngress(info PacketInfo) Outcome { return m.ing.process(info) }

// ProcessEgress predicts the cluster's effect on a packet leaving an
// in-cluster host toward the core.
func (m *Mimic) ProcessEgress(info PacketInfo) Outcome { return m.eg.process(info) }

// ProcessIngressAsync delivers the ingress prediction through fn: inline
// immediately when standalone, or at the next scheduler flush when
// batched. Callers must not touch the packet until fn runs.
func (m *Mimic) ProcessIngressAsync(info PacketInfo, fn func(Outcome)) {
	if m.sched == nil {
		fn(m.ing.process(info))
		return
	}
	m.sched.enqueue(m.lane, Ingress, m.ing, info, false, fn)
}

// ProcessEgressAsync is ProcessIngressAsync for the egress direction.
func (m *Mimic) ProcessEgressAsync(info PacketInfo, fn func(Outcome)) {
	if m.sched == nil {
		fn(m.eg.process(info))
		return
	}
	m.sched.enqueue(m.lane, Egress, m.eg, info, false, fn)
}

// FeedIngress/FeedEgress advance the models for Mimic-Mimic traffic.
func (m *Mimic) FeedIngress(now sim.Time) { m.feedDir(Ingress, m.ing, now) }

// FeedEgress advances the egress model for Mimic-Mimic traffic.
func (m *Mimic) FeedEgress(now sim.Time) { m.feedDir(Egress, m.eg, now) }

func (m *Mimic) feedDir(dir Direction, d *dirRuntime, now sim.Time) {
	if m.sched == nil {
		d.feed(now)
		return
	}
	if len(d.dm.InfoBank) == 0 {
		return // inline feed would be a no-op; skip the queue entirely
	}
	m.sched.enqueue(m.lane, dir, d, PacketInfo{}, true, nil)
}

// InferenceSteps reports total model steps executed (for Figure 23's
// compute accounting), counting both inline and batched steps.
func (m *Mimic) InferenceSteps() uint64 {
	total := m.ing.sm.Steps + m.eg.sm.Steps
	if m.sched != nil {
		total += m.sched.laneSteps(m.lane)
	}
	return total
}

// FeederGap samples the next feeder interarrival for a homogeneous
// composition of n clusters (cluster 0 observed, the rest Mimics). The
// fitted distribution describes the full external stream at small scale;
// in an n-cluster composition only the Mimic-Mimic fraction (n-2)/(n-1)
// is synthetic, so gaps stretch by the inverse (paper §4.1's
// packet-count analysis). Returns 0 if feeders are unnecessary (n <= 2).
func FeederGap(dm *DirectionModel, rng *stats.Stream, n int) sim.Time {
	if n <= 2 {
		return 0
	}
	return FeederGapFrac(dm, rng, float64(n-2)/float64(n-1))
}

// FeederGapFrac is FeederGap for an arbitrary role vector: frac is the
// fraction of a Mimic's boundary peers that are themselves Mimics (the
// share of its external traffic that must be synthesized). Returns 0
// when nothing is synthetic or the model carries no rate.
func FeederGapFrac(dm *DirectionModel, rng *stats.Stream, frac float64) sim.Time {
	if frac <= 0 || dm.RatePktsPerSec <= 0 {
		return 0
	}
	var gap float64
	if dm.UseEmpiricalGaps && len(dm.GapSamples) > 0 {
		gap = dm.GapSamples[rng.Intn(len(dm.GapSamples))] / frac
	} else {
		gap = dm.Interarrival.Sample(rng) / frac
	}
	if gap <= 0 {
		gap = 1.0 / (dm.RatePktsPerSec * frac)
	}
	return sim.FromSeconds(gap)
}
