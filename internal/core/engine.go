package core

import (
	"context"
	"fmt"
	"strconv"

	"mimicnet/internal/cluster"
	"mimicnet/internal/metrics"
	"mimicnet/internal/netsim"
	"mimicnet/internal/obs"
	"mimicnet/internal/sim"
	"mimicnet/internal/stats"
	"mimicnet/internal/topo"
	"mimicnet/internal/transport"
	"mimicnet/internal/workload"
)

// This file is the role-based composition engine (DESIGN.md decision
// 14). MimicNet's central mechanism — one observable cluster simulated
// in full plus trained Mimics standing in for the rest (§4, §6), and
// the hybrid ingress/egress configurations that attribute per-direction
// error (Appendix B) — used to live in two near-duplicate runtimes
// (Composed and Hybrid). The Engine expresses both, and compositions
// neither could (multiple ground-truth clusters, per-cluster model
// variants), as one fabric built from a vector of per-cluster roles.

// RoleKind classifies how one cluster of a composition is simulated.
type RoleKind uint8

const (
	// RoleObserved runs the cluster at full netsim fidelity and collects
	// FCT/throughput/RTT metrics at its hosts (the paper's observable
	// cluster).
	RoleObserved RoleKind = iota
	// RoleMimic replaces the cluster's internals with the trained
	// ingress+egress models: external packets are intercepted at the
	// boundary, internal traffic is approximated by feeders (§4, §6).
	RoleMimic
	// RoleHybridIngress keeps the cluster at full fidelity but serves
	// its *ingress* direction (external packets descending from the
	// core) from the ingress model (Appendix B, Figure 15a).
	RoleHybridIngress
	// RoleHybridEgress keeps the cluster at full fidelity but serves
	// its *egress* direction (packets leaving its hosts for other
	// clusters) from the egress model (Appendix B, Figure 15b).
	RoleHybridEgress
)

func (k RoleKind) String() string {
	switch k {
	case RoleObserved:
		return "observed"
	case RoleMimic:
		return "mimic"
	case RoleHybridIngress:
		return "hybrid-ingress"
	case RoleHybridEgress:
		return "hybrid-egress"
	}
	return fmt.Sprintf("role(%d)", int(k))
}

// usesModels reports whether the role consumes trained models.
func (k RoleKind) usesModels() bool { return k != RoleObserved }

// roleClass buckets kinds for the unified drop counter family's
// cluster_role label: fully model-driven clusters vs hybrid ones.
func (k RoleKind) roleClass() int {
	if k == RoleMimic {
		return roleClassMimic
	}
	return roleClassHybrid
}

// ClusterRole assigns one cluster its simulation role, optionally with
// its own trained artifact (nil Models = the engine-wide default).
// Per-cluster overrides let a composition mix model variants — e.g. a
// stale or fine-tuned model for one region — which the paper's
// homogeneous composition cannot express.
type ClusterRole struct {
	Kind   RoleKind
	Models *MimicModels
}

// ComposedRoles is the §7.1 role vector: cluster 0 observed, the other
// n-1 replaced by Mimics.
func ComposedRoles(n int) []ClusterRole {
	roles := make([]ClusterRole, n)
	for i := 1; i < n; i++ {
		roles[i].Kind = RoleMimic
	}
	return roles
}

// HybridRoles is the Appendix-B role vector: a 2-cluster full-fidelity
// network with one direction of cluster 1's external traffic served by
// the model under test.
func HybridRoles(dir Direction) []ClusterRole {
	kind := RoleHybridIngress
	if dir == Egress {
		kind = RoleHybridEgress
	}
	return []ClusterRole{{Kind: RoleObserved}, {Kind: kind}}
}

// Runner is the single interface every composition consumer programs
// against — pipeline estimates, experiments, tuning validation, the
// estimation service, and the CLI all drive an Engine through it.
type Runner interface {
	Run(until sim.Time)
	RunContext(ctx context.Context, until sim.Time) (cancelled bool)
	Results() cluster.Results
	Scheduler() *InferenceScheduler
	FlowsStarted() int
	FlowsCompleted() int
	InferenceSteps() uint64
	MimicDrops(dir Direction) uint64
}

var _ Runner = (*Engine)(nil)

// Engine is an N-cluster MimicNet fabric built from a role vector: each
// cluster is observed (full netsim fidelity), a Mimic (model-driven), or
// a hybrid (full fidelity with one direction served by a model). Core
// switches always run at full fidelity.
//
// An engine runs either sequentially (one event queue) or sharded into
// one logical process per cluster (cfg.Sharded()), with core switches
// riding on LP 0. Model-driven clusters interact with the rest of the
// network only through inter-cluster links and the egress models'
// latency floor, which bounds the PDES lookahead; remote events are
// delivered in deterministic (time, source LP, sequence) order, so both
// modes produce bitwise-identical Results.
type Engine struct {
	Cfg    cluster.Config
	Roles  []ClusterRole
	Sim    *sim.Simulator // the first shard's simulator
	Topo   *topo.Topology
	Fabric *netsim.Fabric
	Mimics []*Mimic // indexed by cluster; nil for observed clusters

	shards   []*shardCtx   // one per LP; a single entry when sequential
	clusters []*clusterCtx // one per cluster
	scheds   []*InferenceScheduler
	par      *sim.Parallel // nil when sequential
	hosts    []*transport.Host
	flows    []workload.Flow

	// Progress, if set, is invoked periodically from RunContext's run
	// loop (per window barrier when sharded, every
	// cluster.CancelCheckEvery events when sequential) with the
	// simulated clock and total events processed.
	Progress func(now sim.Time, events uint64)

	cancelled bool
	published [2][2]uint64 // [direction][roleClass] drops already pushed to obs
}

// shardCtx is the per-logical-process slice of an engine: its simulator,
// transport environment, metrics collector, and flow counters. Every
// field is written only by the owning LP's goroutine, so sharded runs
// count and collect without locks; the padding keeps neighboring shards'
// hot counters off each other's cache lines.
type shardCtx struct {
	sim  *sim.Simulator
	env  *transport.Env
	coll *metrics.Collector

	flowsStarted   int
	flowsCompleted int
	_              [8]uint64
}

// clusterCtx is the per-cluster slice: the resolved role and models,
// the Mimic runtime (nil for observed clusters), and the model-path
// counters. A cluster's counters are only touched by its owning LP
// (everything, when sequential), so no synchronization is needed.
type clusterCtx struct {
	role   ClusterRole
	models *MimicModels // resolved override-or-default; nil for observed
	mimic  *Mimic

	modelPackets uint64
	dropsIngress uint64
	dropsEgress  uint64
	feederEvents uint64
	_            [8]uint64
}

// shardIdx maps a cluster index to its logical process: cluster i runs
// on LP i; core switches (ClusterOf == -1) ride with LP 0. Sequential
// engines collapse everything onto the single shard.
func (e *Engine) shardIdx(clusterIdx int) int {
	if e.par == nil || clusterIdx < 0 {
		return 0
	}
	return clusterIdx
}

func (e *Engine) shardFor(clusterIdx int) *shardCtx {
	return e.shards[e.shardIdx(clusterIdx)]
}

// collectsMetrics reports whether a cluster's hosts feed the RTT and
// throughput collectors: exactly the observed clusters. (FCTs are
// recorded for every real flow regardless, as in a full-fidelity run.)
func (e *Engine) collectsMetrics(clusterIdx int) bool {
	return clusterIdx >= 0 && e.clusters[clusterIdx].role.Kind == RoleObserved
}

// engineLookahead returns the PDES lookahead: the minimum latency of any
// cross-LP channel. Core->Agg links bound one direction (propagation
// delay); each egress model's latency floor bounds the other (a modeled
// host's packet re-materializes at a core switch no earlier than Lo
// after injection). Non-positive means the models give no usable margin
// and the engine must run sequentially.
func engineLookahead(link netsim.LinkConfig, clusters []*clusterCtx) sim.Time {
	la := link.Delay
	for _, cc := range clusters {
		if cc.models == nil {
			continue
		}
		if egLo := sim.FromSeconds(cc.models.Egress.Bounds.Lo); egLo < la {
			la = egLo
		}
	}
	return la
}

// shardedWindow caps the inference collection window so the egress
// continuation margin (Lo - window) never drops below the lookahead.
func shardedWindow(window, lookahead sim.Time, models *MimicModels) sim.Time {
	cap := sim.FromSeconds(models.Egress.Bounds.Lo) - lookahead
	if window > cap {
		window = cap
	}
	if window < 0 {
		window = 0
	}
	return window
}

// NewEngine builds a fabric from a role vector (one entry per cluster).
// models is the default artifact for model-using roles without a
// per-cluster override. All parameters other than the role vector and
// cluster count should match the small-scale run that trained the
// models ("Aside from the number of clusters, all other parameters are
// kept constant", §7.1).
func NewEngine(cfg cluster.Config, roles []ClusterRole, models *MimicModels) (*Engine, error) {
	if cfg.Protocol == nil {
		return nil, fmt.Errorf("core: config needs a protocol")
	}
	if err := cfg.Topo.Validate(); err != nil {
		return nil, err
	}
	if cfg.Topo.Clusters < 2 {
		return nil, fmt.Errorf("core: composition needs >= 2 clusters")
	}
	if len(roles) != cfg.Topo.Clusters {
		return nil, fmt.Errorf("core: role vector has %d entries for %d clusters", len(roles), cfg.Topo.Clusters)
	}

	// Resolve each cluster's role and models; validate every distinct
	// artifact against the topology's feature spec (per-cluster structure
	// must not change between training and composition).
	clusters := make([]*clusterCtx, len(roles))
	observed := -1
	checked := map[*MimicModels]bool{}
	for i, r := range roles {
		cc := &clusterCtx{role: r}
		switch r.Kind {
		case RoleObserved:
			if observed < 0 {
				observed = i
			}
		case RoleMimic, RoleHybridIngress, RoleHybridEgress:
			m := r.Models
			if m == nil {
				m = models
			}
			if m == nil || m.Ingress == nil || m.Egress == nil {
				return nil, fmt.Errorf("core: cluster %d (%s) missing trained models", i, r.Kind)
			}
			if !checked[m] {
				got := NewFeatureSpec(cfg.Topo)
				got.SkipCongestion = m.Spec.SkipCongestion
				if got.Width() != m.Spec.Width() {
					return nil, fmt.Errorf("core: feature spec mismatch: models trained for width %d, topology needs %d (per-cluster structure must not change)",
						m.Spec.Width(), got.Width())
				}
				checked[m] = true
			}
			cc.models = m
		default:
			return nil, fmt.Errorf("core: cluster %d has unknown role kind %d", i, r.Kind)
		}
		clusters[i] = cc
	}
	if observed < 0 {
		return nil, fmt.Errorf("core: role vector needs at least one observed cluster")
	}
	cfg.Observable = observed

	t := topo.New(cfg.Topo)
	cfg.Workload.HostLinkBps = cfg.Link.RateBps
	allFlows, err := workload.Generate(t, cfg.Workload)
	if err != nil {
		return nil, err
	}
	// Only traffic touching a full-fidelity (observed or hybrid) cluster
	// is simulated as real packets; Mimic-Mimic traffic is approximated
	// by the feeders.
	flows := make([]workload.Flow, 0, len(allFlows))
	for _, f := range allFlows {
		if roles[t.ClusterOf(f.Src)].Kind != RoleMimic || roles[t.ClusterOf(f.Dst)].Kind != RoleMimic {
			flows = append(flows, f)
		}
	}

	link := cfg.Link
	link.SwitchQueue = cfg.QueueFactory()

	lookahead := engineLookahead(link, clusters)
	sharded := cfg.Sharded() && lookahead > 0

	e := &Engine{
		Cfg: cfg, Topo: t,
		Roles:    roles,
		flows:    flows,
		clusters: clusters,
		Mimics:   make([]*Mimic, cfg.Topo.Clusters),
	}

	if sharded {
		e.par = sim.NewParallel(cfg.Topo.Clusters, lookahead)
		e.par.NumWorkers = cfg.ShardWorkers()
		e.shards = make([]*shardCtx, cfg.Topo.Clusters)
		for i := range e.shards {
			e.shards[i] = &shardCtx{sim: e.par.LPs[i].Sim, coll: metrics.NewCollector()}
		}
		shardOf := make([]int, t.Nodes())
		for n := range shardOf {
			if cl := t.ClusterOf(n); cl > 0 {
				shardOf[n] = cl
			}
		}
		e.Fabric = netsim.NewShardedFabric(e.par.LPs, shardOf, t, link)
	} else {
		e.shards = []*shardCtx{{sim: sim.New(), coll: metrics.NewCollector()}}
		e.Fabric = netsim.NewFabric(e.shards[0].sim, t, link)
	}
	e.Sim = e.shards[0].sim

	for i, cc := range clusters {
		if !cc.role.Kind.usesModels() {
			continue
		}
		cc.mimic = NewMimic(cc.models, i, cfg.Workload.Seed)
		e.Mimics[i] = cc.mimic
	}

	if !cfg.SequentialInference {
		if sharded {
			// Per-LP schedulers: each model-driven cluster batches its
			// own window, capped for cross-LP causality.
			for i, cc := range clusters {
				if cc.mimic == nil {
					continue
				}
				w := cfg.BatchWindow
				if w == 0 {
					w = DefaultBatchWindow(cc.models)
				}
				w = shardedWindow(w, lookahead, cc.models)
				sched := NewInferenceScheduler(e.shards[i].sim, cc.models, w)
				e.scheds = append(e.scheds, sched)
				cc.mimic.AttachScheduler(sched)
			}
		} else {
			// One scheduler per distinct artifact (a batched model bank
			// shares one weight set across its lanes); a homogeneous
			// composition fuses every cluster into a single scheduler.
			byModels := map[*MimicModels]*InferenceScheduler{}
			for _, cc := range clusters {
				if cc.mimic == nil {
					continue
				}
				sched := byModels[cc.models]
				if sched == nil {
					w := cfg.BatchWindow
					if w == 0 {
						w = DefaultBatchWindow(cc.models)
					}
					sched = NewInferenceScheduler(e.Sim, cc.models, w)
					byModels[cc.models] = sched
					e.scheds = append(e.scheds, sched)
				}
				cc.mimic.AttachScheduler(sched)
			}
		}
	}

	for _, sh := range e.shards {
		sh := sh
		sh.env = &transport.Env{
			Sim:      sh.sim,
			MSS:      netsim.MSS,
			BDPBytes: cfg.BDPBytes(),
			Inject:   e.inject,
			OnRTT: func(f *transport.Flow, sec float64) {
				if e.collectsMetrics(t.ClusterOf(f.Src)) {
					sh.coll.RTTSample(sec)
				}
			},
			OnComplete: func(f *transport.Flow) {
				sh.coll.FlowCompleted(strconv.FormatUint(f.ID, 10), sh.sim.Now())
				sh.flowsCompleted++
			},
		}
	}

	e.hosts = make([]*transport.Host, t.Hosts())
	for h := 0; h < t.Hosts(); h++ {
		h := h
		sh := e.shardFor(t.ClusterOf(h))
		host := transport.NewHost(h, sh.env, func(f *transport.Flow) *transport.Receiver {
			r := transport.NewReceiver(sh.env, f)
			if transport.IsHoma(cfg.Protocol) {
				bdp := sh.env.BDPBytes
				r.EnableGranting(func(remaining int64) int {
					return transport.HomaPriority(remaining, bdp)
				})
			}
			if e.collectsMetrics(t.ClusterOf(h)) {
				r.OnDeliver = func(n int64) {
					sh.coll.BytesReceived(h, n, sh.sim.Now())
				}
			}
			return r
		})
		e.hosts[h] = host
		e.Fabric.RegisterHost(h, host.Receive)
	}

	if e.needsIntercept() {
		e.Fabric.SetIntercept(e.interceptIngress)
	}

	for _, f := range flows {
		f := f
		e.shardFor(t.ClusterOf(f.Src)).sim.At(f.Start, func() { e.startFlow(f) })
	}
	e.startFeeders()
	return e, nil
}

// needsIntercept reports whether any role swallows packets at the Agg
// boundary (RoleHybridEgress models at injection instead, and observed
// clusters never intercept).
func (e *Engine) needsIntercept() bool {
	for _, cc := range e.clusters {
		if cc.role.Kind == RoleMimic || cc.role.Kind == RoleHybridIngress {
			return true
		}
	}
	return false
}

// inject routes transport packets: full-fidelity sources use the real
// fabric; model-driven sources pass through their cluster's egress model
// first. It always executes on the LP owning pkt.Src's host.
func (e *Engine) inject(pkt *netsim.Packet) {
	t := e.Topo
	pkt.Path = t.Path(pkt.Src, pkt.Dst, pkt.Hash)
	srcCluster := t.ClusterOf(pkt.Src)
	cc := e.clusters[srcCluster]
	switch cc.role.Kind {
	case RoleMimic:
		// Every real packet leaving a Mimic cluster is external (internal
		// flows were filtered) and rides the egress model.
	case RoleHybridEgress:
		// Only the external egress direction is under test; the modeled
		// cluster's internal traffic rides the real network (Figure 15b).
		if t.ClusterOf(pkt.Dst) == srcCluster {
			e.Fabric.Inject(pkt)
			return
		}
	default:
		e.Fabric.Inject(pkt)
		return
	}
	sh := e.shardFor(srcCluster)
	cc.modelPackets++
	info := BuildPacketInfo(t, srcCluster, pkt, pkt.Src, sh.sim.Now())
	cc.mimic.ProcessEgressAsync(info, func(out Outcome) {
		if out.Dropped {
			cc.dropsEgress++
			return
		}
		if out.ECNMark {
			pkt.CE = true
		}
		// Find the core hop: the packet materializes there after the
		// predicted in-cluster latency; core and full-fidelity hops are
		// then simulated exactly.
		coreHop := -1
		for i, node := range pkt.Path {
			if t.KindOf(node) == topo.KindCore {
				coreHop = i
				break
			}
		}
		if coreHop < 0 {
			// Both endpoints behind the model should never reach here
			// (such flows are filtered); treat as model-internal and drop.
			cc.dropsEgress++
			return
		}
		// The latency is relative to arrival; under batched inference
		// the callback runs at flush time, so schedule at the absolute
		// instant (clamped in case a custom window outran causality).
		at := info.ArrivalTime + out.Latency
		if now := sh.sim.Now(); at < now {
			at = now
		}
		materialize := func() { e.Fabric.InjectAt(pkt, coreHop) }
		if e.par != nil {
			// The core switch lives on LP 0: cross the boundary as a
			// remote event. The sharded batch window is capped so this
			// send is always at least one lookahead ahead.
			e.par.LPs[srcCluster].SendTo(e.par.LPs[0], at, materialize)
			return
		}
		sh.sim.At(at, materialize)
	})
}

// interceptIngress swallows packets descending into a model-driven
// cluster and replaces the in-cluster journey with the ingress model's
// prediction. The fabric calls it on the LP owning the Agg switch, i.e.
// the cluster's own shard; the predicted delivery is local too.
func (e *Engine) interceptIngress(node int, pkt *netsim.Packet) bool {
	t := e.Topo
	if t.KindOf(node) != topo.KindAgg {
		return false
	}
	clusterIdx := t.ClusterOf(node)
	cc := e.clusters[clusterIdx]
	switch cc.role.Kind {
	case RoleMimic:
		// A Mimic cluster has no real internal packets: anything at its
		// Agg bound for an in-cluster host came down from the core.
	case RoleHybridIngress:
		// Only external traffic descending from the core is under test;
		// the modeled cluster's internal traffic rides the real network
		// (Figure 15a).
		if pkt.Hop < 1 || t.KindOf(pkt.Path[pkt.Hop-1]) != topo.KindCore {
			return false
		}
	default:
		return false
	}
	if t.ClusterOf(pkt.Dst) != clusterIdx {
		return false
	}
	sh := e.shardFor(clusterIdx)
	cc.modelPackets++
	info := BuildPacketInfo(t, clusterIdx, pkt, pkt.Dst, sh.sim.Now())
	cc.mimic.ProcessIngressAsync(info, func(out Outcome) {
		if out.Dropped {
			cc.dropsIngress++
			return
		}
		if out.ECNMark {
			pkt.CE = true
		}
		dst := pkt.Dst
		at := info.ArrivalTime + out.Latency
		if now := sh.sim.Now(); at < now {
			at = now
		}
		sh.sim.At(at, func() {
			e.hosts[dst].Receive(pkt)
		})
	})
	return true
}

func (e *Engine) startFlow(f workload.Flow) {
	sh := e.shardFor(e.Topo.ClusterOf(f.Src))
	tf := &transport.Flow{
		ID: f.ID, Src: f.Src, Dst: f.Dst, Bytes: f.Bytes,
		Hash: topo.FlowHash(f.Src, f.Dst, f.ID),
	}
	sender := e.Cfg.Protocol.NewSender(sh.env, tf)
	e.hosts[f.Src].AddSender(f.ID, sender)
	sh.coll.FlowStarted(strconv.FormatUint(f.ID, 10), f.Src, f.Dst, f.Bytes, sh.sim.Now())
	sh.flowsStarted++
	sender.Start()
}

// startFeeders schedules the per-Mimic, per-direction synthetic traffic
// that keeps internal model state realistic without simulating packets.
// Only Mimic-Mimic traffic is synthetic, so the fitted external rate is
// scaled by the fraction of boundary peers that are themselves Mimics;
// with fewer than two Mimic clusters all external traffic is real and no
// feeders run. Feeder events are local to the Mimic's own shard.
func (e *Engine) startFeeders() {
	n := len(e.clusters)
	mimics := 0
	for _, cc := range e.clusters {
		if cc.role.Kind == RoleMimic {
			mimics++
		}
	}
	if mimics < 2 {
		return
	}
	frac := float64(mimics-1) / float64(n-1)
	for idx, cc := range e.clusters {
		if cc.role.Kind != RoleMimic {
			continue
		}
		cc := cc
		sh := e.shardFor(idx)
		for _, dir := range []Direction{Ingress, Egress} {
			dm := cc.models.Ingress
			feed := cc.mimic.FeedIngress
			if dir == Egress {
				dm = cc.models.Egress
				feed = cc.mimic.FeedEgress
			}
			rng := stats.NewStream(e.Cfg.Workload.Seed).Derive(
				fmt.Sprintf("feeder-%d-%s", idx, dir))
			var schedule func()
			schedule = func() {
				gap := FeederGapFrac(dm, rng, frac)
				if gap <= 0 {
					return
				}
				sh.sim.After(gap, func() {
					cc.feederEvents++
					feed(sh.sim.Now())
					schedule()
				})
			}
			schedule()
		}
	}
}

// Flows returns the real (full-fidelity-touching) flow schedule.
func (e *Engine) Flows() []workload.Flow { return e.flows }

// Scheduler exposes the batched inference scheduler: the single global
// one when sequential, the first model-driven shard's when sharded
// (each shard owns an identically-configured instance). Nil under
// SequentialInference.
func (e *Engine) Scheduler() *InferenceScheduler {
	if len(e.scheds) == 0 {
		return nil
	}
	return e.scheds[0]
}

// Sharded reports whether this engine runs as parallel LPs.
func (e *Engine) Sharded() bool { return e.par != nil }

// Parallel exposes the PDES coordinator (nil when sequential), for
// inspection of barrier and causality-clamp counts.
func (e *Engine) Parallel() *sim.Parallel { return e.par }

// FlowsStarted returns the number of real flows started.
func (e *Engine) FlowsStarted() int {
	total := 0
	for _, sh := range e.shards {
		total += sh.flowsStarted
	}
	return total
}

// FlowsCompleted returns the number of real flows completed.
func (e *Engine) FlowsCompleted() int {
	total := 0
	for _, sh := range e.shards {
		total += sh.flowsCompleted
	}
	return total
}

// MimicDrops returns packets the models predicted dropped in one
// direction, summed across every model-driven cluster.
func (e *Engine) MimicDrops(dir Direction) uint64 {
	var total uint64
	for _, cc := range e.clusters {
		if dir == Ingress {
			total += cc.dropsIngress
		} else {
			total += cc.dropsEgress
		}
	}
	return total
}

// MimicDropsIngress returns packets the ingress models predicted
// dropped. Legacy accessor; equivalent to MimicDrops(Ingress).
func (e *Engine) MimicDropsIngress() uint64 { return e.MimicDrops(Ingress) }

// MimicDropsEgress returns packets the egress models predicted dropped.
// Legacy accessor; equivalent to MimicDrops(Egress).
func (e *Engine) MimicDropsEgress() uint64 { return e.MimicDrops(Egress) }

// ModelPackets returns the number of packets served by a model (the
// hybrid harness's "packets through the model under test"; for Mimic
// roles it counts both directions' boundary packets).
func (e *Engine) ModelPackets() uint64 {
	var total uint64
	for _, cc := range e.clusters {
		total += cc.modelPackets
	}
	return total
}

// ModelDrops returns packets any model predicted dropped, both
// directions. Legacy hybrid accessor.
func (e *Engine) ModelDrops() uint64 { return e.MimicDrops(Ingress) + e.MimicDrops(Egress) }

// FeederEvents returns the number of synthetic feeder advances.
func (e *Engine) FeederEvents() uint64 {
	var total uint64
	for _, cc := range e.clusters {
		total += cc.feederEvents
	}
	return total
}

// InferenceSteps totals model steps across all Mimics (Figure 23).
func (e *Engine) InferenceSteps() uint64 {
	var total uint64
	for _, m := range e.Mimics {
		if m != nil {
			total += m.InferenceSteps()
		}
	}
	return total
}

// Run advances the simulation. Under batched inference, any requests
// still collecting when the horizon hits are flushed so that model
// state, RNG streams, and drop accounting match the inline path.
func (e *Engine) Run(until sim.Time) {
	sp := obs.StartSpan(obsPhaseCompose)
	if e.par != nil {
		e.par.Run(until) // the PDES coordinator publishes its own event deltas
	} else {
		pre := e.Sim.Processed()
		e.Sim.RunUntil(until)
		sim.CountKernelEvents(e.Sim.Processed() - pre)
	}
	e.flushSchedulers()
	e.publishDrops()
	sp.End()
}

func (e *Engine) flushSchedulers() {
	for _, sched := range e.scheds {
		sched.Flush()
	}
}

// publishDrops pushes the per-role drop counters into the unified obs
// family mimicnet_core_mimic_drops_total{dir,cluster_role} as deltas, so
// repeated Run calls never double-count and the hot path stays free of
// atomics.
func (e *Engine) publishDrops() {
	var totals [2][2]uint64
	for _, cc := range e.clusters {
		if !cc.role.Kind.usesModels() {
			continue
		}
		class := cc.role.Kind.roleClass()
		totals[Ingress][class] += cc.dropsIngress
		totals[Egress][class] += cc.dropsEgress
	}
	for dir := range totals {
		for class := range totals[dir] {
			if d := totals[dir][class] - e.published[dir][class]; d > 0 {
				obsMimicDrops[dir][class].Add(d)
				e.published[dir][class] = totals[dir][class]
			}
		}
	}
}

// RunContext is Run with cooperative cancellation and progress. The
// cancellation check rides the window barrier when sharded (windows are
// a lookahead of simulated time, microseconds of wall-clock) and a
// per-event ticker when sequential, so a killed job stops promptly in
// either mode without perturbing an uncancelled run. On cancellation the
// schedulers are still flushed — model state, RNG streams, and drop
// accounting stay consistent — and the metrics collected so far remain
// valid; Results then reports Cancelled rather than the work being
// abandoned silently. Returns true when the run was cancelled.
func (e *Engine) RunContext(ctx context.Context, until sim.Time) (cancelled bool) {
	if ctx == nil || (ctx.Done() == nil && e.Progress == nil) {
		e.Run(until)
		return false
	}
	defer obs.StartSpan(obsPhaseCompose).End()
	tick := func(now sim.Time, events uint64) bool {
		if e.Progress != nil {
			e.Progress(now, events)
		}
		if ctx.Err() != nil {
			e.cancelled = true
			return true
		}
		return false
	}
	if e.par != nil {
		e.par.Ticker = tick
		defer func() { e.par.Ticker = nil }()
		e.par.Run(until)
	} else {
		pre := e.Sim.Processed()
		e.Sim.SetTicker(cluster.CancelCheckEvery, tick)
		defer e.Sim.SetTicker(0, nil)
		e.Sim.RunUntil(until)
		sim.CountKernelEvents(e.Sim.Processed() - pre)
	}
	e.flushSchedulers()
	e.publishDrops()
	return e.cancelled
}

// Results snapshots the collected metrics in the same shape as a
// full-fidelity run, so they can be compared directly. Sharded shards'
// collectors merge losslessly: every flow's records live entirely on its
// source host's LP and all distribution outputs are sorted.
func (e *Engine) Results() cluster.Results {
	coll := e.shards[0].coll
	if len(e.shards) > 1 {
		colls := make([]*metrics.Collector, len(e.shards))
		for i, sh := range e.shards {
			colls[i] = sh.coll
		}
		coll = metrics.Merged(colls...)
	}
	var events uint64
	for _, sh := range e.shards {
		events += sh.sim.Processed()
	}
	return cluster.Results{
		FCTs:        coll.FCTs(),
		Throughputs: coll.Throughputs(),
		RTTs:        coll.RTTs(),
		FCTByID:     coll.FCTByID(),
		Events:      events,
		Packets:     e.Fabric.Injected(),
		Drops:       e.Fabric.Drops() + e.MimicDrops(Ingress) + e.MimicDrops(Egress),
		Cancelled:   e.cancelled,
	}
}
