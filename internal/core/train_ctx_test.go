package core

import (
	"context"
	"sync"
	"testing"
	"time"

	"mimicnet/internal/ml"
	"mimicnet/internal/sim"
)

func TestBankSubsampleCopies(t *testing.T) {
	bank := []PacketInfo{{SizeBytes: 1}, {SizeBytes: 2}, {SizeBytes: 3}}

	// Short banks must be copied, not aliased: DirectionModel's bank
	// outlives the dataset and may be mutated independently.
	out := bankSubsample(bank, 10)
	if len(out) != len(bank) {
		t.Fatalf("len = %d, want %d", len(out), len(bank))
	}
	out[0].SizeBytes = 99
	if bank[0].SizeBytes != 1 {
		t.Fatal("bankSubsample aliased the caller's slice")
	}

	// Long banks stride-subsample down to max.
	long := make([]PacketInfo, 100)
	for i := range long {
		long[i].SizeBytes = i
	}
	sub := bankSubsample(long, 10)
	if len(sub) != 10 {
		t.Fatalf("subsampled len = %d, want 10", len(sub))
	}
	if sub[0].SizeBytes != 0 || sub[9].SizeBytes != 90 {
		t.Fatalf("stride subsample endpoints = %d, %d", sub[0].SizeBytes, sub[9].SizeBytes)
	}
}

func TestGapSubsampleCopies(t *testing.T) {
	gaps := []float64{1, 2, 3}
	out := gapSubsample(gaps, 10)
	out[0] = 99
	if gaps[0] != 1 {
		t.Fatal("gapSubsample aliased the caller's slice")
	}
}

// TestTrainModelsContextMatchesSerial proves the concurrent direction
// training is a pure wall-clock optimization: models and evaluations are
// identical to training the directions one after the other, and the
// progress stream covers every epoch of both directions.
func TestTrainModelsContextMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("trains real models")
	}
	tcfg := fastTrain()
	ing, eg, _, err := GenerateTrainingData(fastBase(), 100*sim.Millisecond, tcfg)
	if err != nil {
		t.Fatalf("GenerateTrainingData: %v", err)
	}

	serialIng, serialIngEval, err := TrainDirection(ing, tcfg)
	if err != nil {
		t.Fatalf("serial ingress: %v", err)
	}
	serialEg, serialEgEval, err := TrainDirection(eg, tcfg)
	if err != nil {
		t.Fatalf("serial egress: %v", err)
	}

	var mu sync.Mutex
	seen := map[Direction]int{}
	models, ingEval, egEval, err := TrainModelsContext(context.Background(), ing, eg, tcfg,
		func(dir Direction, p ml.TrainProgress) {
			mu.Lock()
			defer mu.Unlock()
			seen[dir]++
			if p.Epoch != seen[dir] || p.Epochs != tcfg.Model.Epochs || p.SamplesPerSec <= 0 {
				t.Errorf("%v progress out of order or empty: %+v (have %d)", dir, p, seen[dir])
			}
		})
	if err != nil {
		t.Fatalf("TrainModelsContext: %v", err)
	}
	if seen[Ingress] != tcfg.Model.Epochs || seen[Egress] != tcfg.Model.Epochs {
		t.Fatalf("progress epochs = %v, want %d per direction", seen, tcfg.Model.Epochs)
	}
	if ingEval != serialIngEval || egEval != serialEgEval {
		t.Fatalf("concurrent evals diverged from serial: %+v vs %+v / %+v vs %+v",
			ingEval, serialIngEval, egEval, serialEgEval)
	}
	for _, pair := range [][2]*DirectionModel{{models.Ingress, serialIng}, {models.Egress, serialEg}} {
		got, want := pair[0].Model.Params(), pair[1].Model.Params()
		for pi := range got {
			for di := range got[pi].Data {
				if got[pi].Data[di] != want[pi].Data[di] {
					t.Fatal("concurrent training changed model weights vs serial")
				}
			}
		}
	}
}

// TestTrainModelsContextCancellation: a cancelled context stops both
// direction trainings promptly with ctx's error.
func TestTrainModelsContextCancellation(t *testing.T) {
	if testing.Short() {
		t.Skip("trains real models")
	}
	tcfg := fastTrain()
	tcfg.Model.Epochs = 50 // long enough that cancellation must cut it short
	ing, eg, _, err := GenerateTrainingData(fastBase(), 100*sim.Millisecond, tcfg)
	if err != nil {
		t.Fatalf("GenerateTrainingData: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, _, _, err = TrainModelsContext(ctx, ing, eg, tcfg, nil)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("cancellation took %v", d)
	}
}

// TestGenerateTrainingDataContextCancelled: a cancelled small-scale run
// must not hand back datasets built from a partial trace.
func TestGenerateTrainingDataContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, _, err := GenerateTrainingDataContext(ctx, fastBase(), 100*sim.Millisecond, fastTrain())
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
