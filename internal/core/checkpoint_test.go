package core

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"testing"

	"mimicnet/internal/ml"
	"mimicnet/internal/sim"
)

// TestTrainModelsCkptKillResume is the pipeline-level crash drill: kill
// both direction trainings mid-run (after their first checkpoints), then
// resume with the same checkpointer and verify the final artifact is
// byte-identical to an uninterrupted run.
func TestTrainModelsCkptKillResume(t *testing.T) {
	if testing.Short() {
		t.Skip("trains real models")
	}
	tcfg := fastTrain()
	tcfg.Model.Epochs = 3
	ing, eg, _, err := GenerateTrainingData(fastBase(), 100*sim.Millisecond, tcfg)
	if err != nil {
		t.Fatal(err)
	}

	base, _, _, err := TrainModelsContext(context.Background(), ing, eg, tcfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(base)
	if err != nil {
		t.Fatal(err)
	}

	ckpt := &TrainCheckpointer{Dir: t.TempDir(), Key: "testkey", Every: 1}

	// "Crash": cancel as soon as any direction reports its first epoch —
	// each direction has cut at least zero and at most all checkpoints.
	ctx, cancel := context.WithCancel(context.Background())
	_, _, _, err = TrainModelsCkpt(ctx, ing, eg, tcfg,
		func(dir Direction, p ml.TrainProgress) {
			if p.Epoch >= 1 {
				cancel()
			}
		}, ckpt)
	cancel()
	if err == nil {
		t.Fatal("cancelled training returned nil error")
	}

	// Recovery: same checkpointer directory, fresh run to completion.
	got1, _, _, err := TrainModelsCkpt(context.Background(), ing, eg, tcfg, nil, ckpt)
	if err != nil {
		t.Fatal(err)
	}
	blob1, err := json.Marshal(got1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob1, want) {
		t.Fatal("kill-and-resume artifact differs from uninterrupted run")
	}

	// Final checkpoints are Complete; a re-run restores instantly and
	// still matches. Then Clear removes the cursor files.
	got2, _, _, err := TrainModelsCkpt(context.Background(), ing, eg, tcfg, nil, ckpt)
	if err != nil {
		t.Fatal(err)
	}
	blob2, err := json.Marshal(got2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob2, want) {
		t.Fatal("complete-checkpoint restore differs from uninterrupted run")
	}
	ckpt.Clear()
	for _, d := range []Direction{Ingress, Egress} {
		if _, err := os.Stat(ckpt.Path(d)); !os.IsNotExist(err) {
			t.Fatalf("%v checkpoint survived Clear: %v", d, err)
		}
	}
}

// TestTrainCheckpointerStaleMismatch: a checkpoint cut under different
// hyper-parameters or a different dataset must be ignored, not resumed.
func TestTrainCheckpointerStaleMismatch(t *testing.T) {
	if testing.Short() {
		t.Skip("trains real models")
	}
	tcfg := fastTrain()
	ing, _, _, err := GenerateTrainingData(fastBase(), 60*sim.Millisecond, tcfg)
	if err != nil {
		t.Fatal(err)
	}
	ckpt := &TrainCheckpointer{Dir: t.TempDir(), Key: "stale", Every: 1}
	if _, _, err := TrainDirectionCkpt(context.Background(), ing, tcfg, nil, ckpt); err != nil {
		t.Fatal(err)
	}

	// Same checkpointer, changed hyper-parameters: the stale cursor must
	// be discarded and training restart from scratch — matching a plain
	// run under the new config.
	tcfg2 := tcfg
	tcfg2.Model.Epochs = tcfg.Model.Epochs + 1
	fromCkpt, _, err := TrainDirectionCkpt(context.Background(), ing, tcfg2, nil, ckpt)
	if err != nil {
		t.Fatal(err)
	}
	plain, _, err := TrainDirectionContext(context.Background(), ing, tcfg2, nil)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(fromCkpt)
	b, _ := json.Marshal(plain)
	if !bytes.Equal(a, b) {
		t.Fatal("stale checkpoint leaked into a changed-config run")
	}
}

// TestTrainCheckpointerCorruptFile: a torn checkpoint file degrades to
// training from scratch.
func TestTrainCheckpointerCorruptFile(t *testing.T) {
	ckpt := &TrainCheckpointer{Dir: t.TempDir(), Key: "torn"}
	if err := os.WriteFile(ckpt.Path(Ingress), []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	ck, err := ckpt.Load(Ingress)
	if err != nil {
		t.Fatal(err)
	}
	if ck != nil {
		t.Fatal("corrupt checkpoint file produced a cursor")
	}
}
