package core

import (
	"fmt"
	"testing"

	"mimicnet/internal/cluster"
	"mimicnet/internal/sim"
)

// runComposedMode runs a composition with explicit sharding knobs.
// shardedRun follows cluster.Config.ShardedRun (-1 sequential, 1 forced).
func runComposedMode(t *testing.T, art *Artifacts, clusters, shardedRun, workers int, until sim.Time) (cluster.Results, *Composed) {
	t.Helper()
	cfg := fastBase()
	cfg.Topo = cfg.Topo.WithClusters(clusters)
	cfg.ShardedRun = shardedRun
	cfg.NumWorkers = workers
	comp, err := Compose(cfg, art.Models)
	if err != nil {
		t.Fatal(err)
	}
	comp.Run(until)
	return comp.Results(), comp
}

// TestShardedComposedMatchesSequential is the tentpole's golden witness:
// a composition sharded into one LP per cluster must produce bitwise-
// identical metrics to the sequential event loop, across composition
// sizes. At N=4 it additionally checks worker-count invariance (1 worker
// exercises the windowed-but-serial path, 8 oversubscribes the LPs).
//
// Results.Events is deliberately not compared: sharded compositions run
// one inference-flush event chain per Mimic LP where the sequential path
// runs a single global one, so the operational event count differs even
// though every metric is identical (it is asserted equal across worker
// counts below, which shares the per-LP scheduler structure).
func TestShardedComposedMatchesSequential(t *testing.T) {
	art := trainedForScheduler(t)
	for _, tc := range []struct {
		n     int
		until sim.Time
	}{
		{2, 250 * sim.Millisecond},
		{4, 200 * sim.Millisecond},
		{8, 120 * sim.Millisecond},
	} {
		seq, seqComp := runComposedMode(t, art, tc.n, -1, 0, tc.until)
		if len(seq.FCTByID) == 0 {
			t.Fatalf("n=%d: no flows completed; test exercises nothing", tc.n)
		}
		if seqComp.Sharded() {
			t.Fatalf("n=%d: ShardedRun=-1 still sharded", tc.n)
		}
		workerCounts := []int{4}
		if tc.n == 4 {
			workerCounts = []int{1, 4, 8}
		}
		var prev cluster.Results
		for i, nw := range workerCounts {
			shr, comp := runComposedMode(t, art, tc.n, 1, nw, tc.until)
			if !comp.Sharded() {
				t.Fatalf("n=%d: forced sharding fell back to sequential (no lookahead margin?)", tc.n)
			}
			par := comp.Parallel()
			if par.Barriers == 0 {
				t.Errorf("n=%d nw=%d: no synchronization windows ran", tc.n, nw)
			}
			if par.CausalityClamps != 0 {
				t.Errorf("n=%d nw=%d: %d causality clamps; cross-LP margins are wrong",
					tc.n, nw, par.CausalityClamps)
			}
			sameResults(t, fmt.Sprintf("sharded-n%d-w%d", tc.n, nw), seq, shr)
			if got, want := comp.InferenceSteps(), seqComp.InferenceSteps(); got != want {
				t.Errorf("n=%d nw=%d: inference steps %d vs %d", tc.n, nw, got, want)
			}
			if i > 0 && shr.Events != prev.Events {
				t.Errorf("n=%d: events %d at nw=%d vs %d at nw=%d — workers changed the schedule",
					tc.n, shr.Events, nw, prev.Events, workerCounts[i-1])
			}
			prev = shr
		}
		t.Logf("n=%d: %d flows identical across modes", tc.n, len(seq.FCTByID))
	}
}

// TestShardedComposedSequentialInference repeats the witness with the
// batched engine disabled: per-packet inline inference must also be
// shard-invariant (egress continuations then carry the full latency
// floor as cross-LP margin).
func TestShardedComposedSequentialInference(t *testing.T) {
	art := trainedForScheduler(t)
	const until = 200 * sim.Millisecond
	run := func(shardedRun int) cluster.Results {
		cfg := fastBase()
		cfg.Topo = cfg.Topo.WithClusters(3)
		cfg.SequentialInference = true
		cfg.ShardedRun = shardedRun
		cfg.NumWorkers = 4
		comp, err := Compose(cfg, art.Models)
		if err != nil {
			t.Fatal(err)
		}
		comp.Run(until)
		return comp.Results()
	}
	seq, shr := run(-1), run(1)
	if len(seq.FCTByID) == 0 {
		t.Fatal("no flows completed")
	}
	sameResults(t, "sharded-seqinfer", seq, shr)
}

// TestShardedHybridMatchesSequential extends the golden witness to the
// Appendix-B hybrid harness: two LPs (observable+cores, modeled cluster).
//
// The ingress hybrid matches the unsharded event loop bitwise, like the
// composed path. The egress hybrid is the one configuration where the
// documented same-nanosecond tie class (scheduler.go) has measurable
// incidence: egress predictions clamped to the latency floor re-enter
// the full-fidelity cluster-0 fabric on the same nanosecond lattice as
// real traffic, and at a full queue the arrival order of such a tie
// decides which packet drops. Remote events are inserted at window
// barriers while the unsharded heap inserts them mid-window, so those
// ties can order differently across the two *modes*. Within the sharded
// mode the (time, srcLP, srcSeq) rule makes the schedule exact, which is
// what the egress case asserts: bitwise equality between serial (1
// worker) and parallel execution of the sharded schedule.
func TestShardedHybridMatchesSequential(t *testing.T) {
	art := trainedForScheduler(t)
	const until = 250 * sim.Millisecond
	run := func(dir Direction, shardedRun, nw int) (cluster.Results, *Hybrid) {
		cfg := fastBase()
		cfg.ShardedRun = shardedRun
		cfg.NumWorkers = nw
		h, err := NewHybrid(cfg, art.Models, dir)
		if err != nil {
			t.Fatal(err)
		}
		h.Run(until)
		return h.Results(), h
	}

	// Ingress: unsharded vs sharded, bitwise.
	seq, seqH := run(Ingress, -1, 0)
	shr, shrH := run(Ingress, 1, 4)
	if seqH.ModelPackets() == 0 {
		t.Fatal("ingress hybrid served no packets")
	}
	if !shrH.Sharded() {
		t.Fatal("ingress: forced sharding fell back to sequential")
	}
	if shrH.par.CausalityClamps != 0 {
		t.Errorf("ingress: %d causality clamps", shrH.par.CausalityClamps)
	}
	sameResults(t, "sharded-hybrid-ingress", seq, shr)
	if seqH.ModelPackets() != shrH.ModelPackets() {
		t.Errorf("ingress: model packets %d vs %d", seqH.ModelPackets(), shrH.ModelPackets())
	}

	// Egress: serial vs parallel execution of the sharded schedule. The
	// (time, srcLP, srcSeq) tie rule (asserted directly by the sim
	// package's TestRemoteTieOrdering) must make the schedule exact at
	// EVERY worker count — fingerprint-identical, Events included — plus
	// run-to-run deterministic.
	one, oneH := run(Egress, 1, 1)
	if oneH.ModelPackets() == 0 {
		t.Fatal("egress hybrid served no packets")
	}
	oneFP := resultsFingerprint(one)
	for _, nw := range []int{2, 4, 8} {
		res, h := run(Egress, 1, nw)
		if fp := resultsFingerprint(res); fp != oneFP {
			t.Errorf("egress: workers=%d fingerprint diverged from workers=1 — same-ns ties reordered", nw)
		}
		if h.ModelPackets() != oneH.ModelPackets() {
			t.Errorf("egress: model packets %d at nw=%d vs %d at nw=1", h.ModelPackets(), nw, oneH.ModelPackets())
		}
		if h.par.CausalityClamps != 0 {
			t.Errorf("egress: %d causality clamps at nw=%d", h.par.CausalityClamps, nw)
		}
	}
	four2, _ := run(Egress, 1, 4)
	if resultsFingerprint(four2) != oneFP {
		t.Error("egress: repeat run diverged — schedule not run-to-run deterministic")
	}
}
