package core

import (
	"sync"
	"testing"

	"mimicnet/internal/cluster"
	"mimicnet/internal/sim"
)

var (
	schedArtOnce sync.Once
	schedArt     *Artifacts
	schedArtErr  error
)

// trainedForScheduler trains one small artifact set shared by the
// determinism tests (training dominates their runtime).
func trainedForScheduler(t *testing.T) *Artifacts {
	t.Helper()
	schedArtOnce.Do(func() {
		pcfg := DefaultPipelineConfig(fastBase())
		pcfg.SmallScaleDuration = 200 * sim.Millisecond
		pcfg.Train = fastTrain()
		schedArt, schedArtErr = RunPipeline(pcfg)
	})
	if schedArtErr != nil {
		t.Fatal(schedArtErr)
	}
	return schedArt
}

func runComposed(t *testing.T, art *Artifacts, clusters int, sequential bool, until sim.Time) (cluster.Results, *Composed) {
	t.Helper()
	cfg := fastBase()
	cfg.Topo = cfg.Topo.WithClusters(clusters)
	cfg.SequentialInference = sequential
	comp, err := Compose(cfg, art.Models)
	if err != nil {
		t.Fatal(err)
	}
	comp.Run(until)
	return comp.Results(), comp
}

func sameResults(t *testing.T, label string, a, b cluster.Results) {
	t.Helper()
	if len(a.FCTByID) != len(b.FCTByID) {
		t.Errorf("%s: FCT count %d vs %d", label, len(a.FCTByID), len(b.FCTByID))
	}
	for id, fct := range a.FCTByID {
		if got, ok := b.FCTByID[id]; !ok {
			t.Errorf("%s: flow %s missing", label, id)
		} else if got != fct {
			t.Errorf("%s: flow %s FCT %v vs %v", label, id, fct, got)
		}
	}
	cmpSlice := func(name string, x, y []float64) {
		if len(x) != len(y) {
			t.Errorf("%s: %s count %d vs %d", label, name, len(x), len(y))
			return
		}
		for i := range x {
			if x[i] != y[i] {
				t.Errorf("%s: %s[%d] = %v vs %v", label, name, i, x[i], y[i])
				return
			}
		}
	}
	cmpSlice("FCTs", a.FCTs, b.FCTs)
	cmpSlice("Throughputs", a.Throughputs, b.Throughputs)
	cmpSlice("RTTs", a.RTTs, b.RTTs)
	if a.Drops != b.Drops {
		t.Errorf("%s: drops %d vs %d", label, a.Drops, b.Drops)
	}
	if a.Packets != b.Packets {
		t.Errorf("%s: packets %d vs %d", label, a.Packets, b.Packets)
	}
}

// TestGoldenDeterminism is the engine's end-to-end correctness witness:
// a seeded 3-cluster composition (3 clusters so feeders are active) must
// produce identical metrics (a) across two batched runs, and (b) between
// the batched engine and the sequential per-packet path.
func TestGoldenDeterminism(t *testing.T) {
	art := trainedForScheduler(t)
	const until = 300 * sim.Millisecond

	seqRes, seqComp := runComposed(t, art, 3, true, until)
	batRes, batComp := runComposed(t, art, 3, false, until)
	batRes2, batComp2 := runComposed(t, art, 3, false, until)

	if len(seqRes.FCTByID) == 0 {
		t.Fatal("no flows completed; test exercises nothing")
	}
	sameResults(t, "batched-vs-batched", batRes, batRes2)
	sameResults(t, "sequential-vs-batched", seqRes, batRes)

	if seq, bat := seqComp.InferenceSteps(), batComp.InferenceSteps(); seq != bat {
		t.Errorf("inference steps: sequential %d vs batched %d", seq, bat)
	}
	if batComp.InferenceSteps() == 0 {
		t.Error("batched run recorded no inference steps")
	}
	if batComp.Scheduler().BatchedSteps != batComp2.Scheduler().BatchedSteps {
		t.Error("batched runs disagree on scheduler step count")
	}
	s := batComp.Scheduler()
	t.Logf("scheduler: window=%v flushes=%d batchedSteps=%d maxBatch=%d",
		s.Window(), s.Flushes, s.BatchedSteps, s.MaxBatch)
	if seqComp.Scheduler() != nil {
		t.Error("sequential run unexpectedly created a scheduler")
	}
}

// TestGoldenDeterminismHybrid repeats the witness for the hybrid
// (Appendix B) harness in both directions.
func TestGoldenDeterminismHybrid(t *testing.T) {
	art := trainedForScheduler(t)
	const until = 250 * sim.Millisecond
	for _, dir := range []Direction{Ingress, Egress} {
		run := func(sequential bool) cluster.Results {
			cfg := fastBase()
			cfg.SequentialInference = sequential
			h, err := NewHybrid(cfg, art.Models, dir)
			if err != nil {
				t.Fatal(err)
			}
			h.Run(until)
			if h.ModelPackets() == 0 {
				t.Fatalf("%s hybrid served no packets", dir)
			}
			return h.Results()
		}
		sameResults(t, "hybrid-"+dir.String(), run(true), run(false))
	}
}

// TestSchedulerWindowOverride checks custom collection windows: a
// negative window (flush at the same timestamp) must still match the
// sequential path, and an over-causal window must still complete and
// stay internally deterministic.
func TestSchedulerWindowOverride(t *testing.T) {
	art := trainedForScheduler(t)
	const until = 200 * sim.Millisecond

	run := func(sequential bool, window sim.Time) cluster.Results {
		cfg := fastBase()
		cfg.Topo = cfg.Topo.WithClusters(3)
		cfg.SequentialInference = sequential
		cfg.BatchWindow = window
		comp, err := Compose(cfg, art.Models)
		if err != nil {
			t.Fatal(err)
		}
		comp.Run(until)
		return comp.Results()
	}

	sameResults(t, "zero-window", run(true, 0), run(false, -1))

	wide := DefaultBatchWindow(art.Models) * 64
	sameResults(t, "wide-window-determinism", run(false, wide), run(false, wide))
}

// TestDefaultBatchWindow pins the causality rule: the window is the
// smaller latency lower bound across the two direction models.
func TestDefaultBatchWindow(t *testing.T) {
	art := trainedForScheduler(t)
	m := art.Models
	lo := m.Ingress.Bounds.Lo
	if m.Egress.Bounds.Lo < lo {
		lo = m.Egress.Bounds.Lo
	}
	want := sim.FromSeconds(lo)
	if lo <= 0 {
		want = 0
	}
	if got := DefaultBatchWindow(m); got != want {
		t.Errorf("DefaultBatchWindow = %v, want %v", got, want)
	}
	if w := DefaultBatchWindow(m); w > 0 {
		maxLat := sim.FromSeconds(lo)
		if w > maxLat {
			t.Errorf("window %v exceeds causality bound %v", w, maxLat)
		}
	}
}
