package core

import (
	"context"
	"time"

	"mimicnet/internal/cluster"
	"mimicnet/internal/ml"
	"mimicnet/internal/sim"
)

// PipelineConfig drives the end-to-end MimicNet workflow of Figure 3:
// small-scale data generation, model training/testing, and large-scale
// composition.
type PipelineConfig struct {
	// Base holds the user's protocol, link, and workload configuration;
	// the cluster count inside is ignored for the small-scale phase
	// (always 2) and set from TargetClusters for the final phase.
	Base cluster.Config
	// SmallScaleDuration is the simulated time of the data-generation run.
	SmallScaleDuration sim.Time
	// Train configures datasets and models.
	Train TrainConfig
	// TrainProgress, when non-nil, streams per-epoch training progress
	// for both directions (they train concurrently; the callback must be
	// concurrency-safe).
	TrainProgress TrainProgressFunc
}

// DefaultPipelineConfig returns a scaled-down pipeline around the given
// base configuration.
func DefaultPipelineConfig(base cluster.Config) PipelineConfig {
	return PipelineConfig{
		Base:               base,
		SmallScaleDuration: 200 * sim.Millisecond,
		Train:              DefaultTrainConfig(),
	}
}

// Artifacts are the pipeline's trained outputs plus the timing breakdown
// MimicNet reports in Table 2.
type Artifacts struct {
	Models *MimicModels

	IngressEval, EgressEval ml.EvalResult
	IngressSamples          int
	EgressSamples           int

	// Wall-clock phase timings (Table 2 rows).
	SmallScaleTime time.Duration
	TrainTime      time.Duration

	// SmallScale keeps the data-generation run for baseline comparisons.
	SmallScale *cluster.Simulation
}

// RunPipeline executes data generation and training (steps ❶–❸). The
// returned artifacts feed Compose (step ❺); hyper-parameter tuning
// (step ❹) lives in internal/tuning and calls back into this package.
func RunPipeline(cfg PipelineConfig) (*Artifacts, error) {
	return RunPipelineContext(context.Background(), cfg)
}

// RunPipelineContext is RunPipeline with cooperative cancellation of
// both the small-scale run and model training (the RunContext pattern;
// a cancelled pipeline returns ctx's error, never partial artifacts).
func RunPipelineContext(ctx context.Context, cfg PipelineConfig) (*Artifacts, error) {
	t0 := time.Now()
	ing, eg, inst, err := GenerateTrainingDataContext(ctx, cfg.Base, cfg.SmallScaleDuration, cfg.Train)
	if err != nil {
		return nil, err
	}
	smallTime := time.Since(t0)

	t1 := time.Now()
	models, ingEval, egEval, err := TrainModelsContext(ctx, ing, eg, cfg.Train, cfg.TrainProgress)
	if err != nil {
		return nil, err
	}
	return &Artifacts{
		Models:         models,
		IngressEval:    ingEval,
		EgressEval:     egEval,
		IngressSamples: ing.Len(),
		EgressSamples:  eg.Len(),
		SmallScaleTime: smallTime,
		TrainTime:      time.Since(t1),
		SmallScale:     inst,
	}, nil
}

// Estimate runs the composed large-scale simulation for the given cluster
// count and duration, returning results and the wall-clock time spent —
// the "large-scale simulation" row of Table 2.
func (a *Artifacts) Estimate(base cluster.Config, clusters int, duration sim.Time) (cluster.Results, time.Duration, error) {
	cfg := base
	cfg.Topo = base.Topo.WithClusters(clusters)
	t0 := time.Now()
	comp, err := Compose(cfg, a.Models)
	if err != nil {
		return cluster.Results{}, 0, err
	}
	comp.Run(duration)
	return comp.Results(), time.Since(t0), nil
}
