package core

import (
	"fmt"

	"mimicnet/internal/cluster"
	"mimicnet/internal/ml"
	"mimicnet/internal/sim"
	"mimicnet/internal/stats"
)

// TrainConfig controls dataset construction and model training for both
// directions.
type TrainConfig struct {
	Dataset   DatasetConfig
	Model     ml.ModelConfig // Features and Window are overwritten per spec
	TrainFrac float64        // chronological train split (default 0.8)

	// SkipCongestionFeature ablates the §5.5 congestion-state feature.
	SkipCongestionFeature bool
}

// DefaultTrainConfig returns a fast configuration suitable for the
// scaled-down experiments.
func DefaultTrainConfig() TrainConfig {
	ds := DefaultDatasetConfig()
	return TrainConfig{
		Dataset:   ds,
		Model:     ml.DefaultModelConfig(0, ds.Window),
		TrainFrac: 0.8,
	}
}

// TrainDirection fits one direction's internal model from its dataset and
// returns the runtime artifact plus held-out evaluation.
func TrainDirection(ds *Dataset, cfg TrainConfig) (*DirectionModel, ml.EvalResult, error) {
	if len(ds.Samples) == 0 {
		return nil, ml.EvalResult{}, fmt.Errorf("core: %v dataset is empty", ds.Dir)
	}
	mcfg := cfg.Model
	mcfg.Features = ds.Spec.Width()
	mcfg.Window = cfg.Dataset.Window
	model, err := ml.NewModel(mcfg)
	if err != nil {
		return nil, ml.EvalResult{}, err
	}
	train, test := ds.Split(cfg.TrainFrac)
	model.Train(train)
	eval := model.Evaluate(test)

	meanGap := stats.Mean(ds.Interarrivals)
	rate := 0.0
	if meanGap > 0 {
		rate = 1 / meanGap
	}
	dm := &DirectionModel{
		Model:          model,
		Bounds:         ds.Bounds,
		Disc:           ds.Disc,
		Interarrival:   stats.FitLogNormal(ds.Interarrivals, meanGap),
		GapSamples:     gapSubsample(ds.Interarrivals, 2048),
		RatePktsPerSec: rate,
		InfoBank:       bankSubsample(ds.InfoBank, 4096),
		DropRate:       ds.DropRate,
		ECNRate:        ds.ECNRate,
	}
	return dm, eval, nil
}

// gapSubsample bounds the empirical interarrival bank, mirroring
// bankSubsample for float series.
func gapSubsample(gaps []float64, max int) []float64 {
	if len(gaps) <= max {
		return append([]float64(nil), gaps...)
	}
	out := make([]float64, 0, max)
	stride := float64(len(gaps)) / float64(max)
	for i := 0; i < max; i++ {
		out = append(out, gaps[int(float64(i)*stride)])
	}
	return out
}

// bankSubsample bounds the feeder replay bank (deterministic stride
// subsampling keeps temporal coverage).
func bankSubsample(bank []PacketInfo, max int) []PacketInfo {
	if len(bank) <= max {
		return bank
	}
	out := make([]PacketInfo, 0, max)
	stride := float64(len(bank)) / float64(max)
	for i := 0; i < max; i++ {
		out = append(out, bank[int(float64(i)*stride)])
	}
	return out
}

// GenerateTrainingData runs the full-fidelity small-scale (2-cluster)
// simulation with boundary taps on the modeled cluster and returns the
// per-direction datasets (workflow step ❶, paper Figure 3).
func GenerateTrainingData(base cluster.Config, duration sim.Time, cfg TrainConfig) (ing, eg *Dataset, inst *cluster.Simulation, err error) {
	small := base
	small.Topo = base.Topo.WithClusters(2)
	small.Observable = 0
	inst, err = cluster.New(small)
	if err != nil {
		return nil, nil, nil, err
	}
	const modeled = 1 // the non-observable cluster is the one we learn
	tracer := NewTracer(inst.Topo, modeled)
	tracer.Attach(inst)
	inst.Run(duration)

	spec := NewFeatureSpec(small.Topo)
	spec.SkipCongestion = cfg.SkipCongestionFeature
	ingRecs, egRecs := tracer.ByDirection()
	if ing, err = BuildDataset(Ingress, ingRecs, spec, cfg.Dataset); err != nil {
		return nil, nil, nil, err
	}
	if eg, err = BuildDataset(Egress, egRecs, spec, cfg.Dataset); err != nil {
		return nil, nil, nil, err
	}
	return ing, eg, inst, nil
}

// TrainModels fits both directions and assembles the MimicModels
// artifact (workflow steps ❷–❸).
func TrainModels(ing, eg *Dataset, cfg TrainConfig) (*MimicModels, ml.EvalResult, ml.EvalResult, error) {
	ingModel, ingEval, err := TrainDirection(ing, cfg)
	if err != nil {
		return nil, ml.EvalResult{}, ml.EvalResult{}, err
	}
	egModel, egEval, err := TrainDirection(eg, cfg)
	if err != nil {
		return nil, ml.EvalResult{}, ml.EvalResult{}, err
	}
	return &MimicModels{
		Spec:    ing.Spec,
		Window:  cfg.Dataset.Window,
		Ingress: ingModel,
		Egress:  egModel,
	}, ingEval, egEval, nil
}
