package core

import (
	"context"
	"fmt"

	"mimicnet/internal/cluster"
	"mimicnet/internal/ml"
	"mimicnet/internal/obs"
	"mimicnet/internal/sim"
	"mimicnet/internal/stats"
)

// TrainConfig controls dataset construction and model training for both
// directions.
type TrainConfig struct {
	Dataset   DatasetConfig
	Model     ml.ModelConfig // Features and Window are overwritten per spec
	TrainFrac float64        // chronological train split (default 0.8)

	// SkipCongestionFeature ablates the §5.5 congestion-state feature.
	SkipCongestionFeature bool
}

// DefaultTrainConfig returns a fast configuration suitable for the
// scaled-down experiments.
func DefaultTrainConfig() TrainConfig {
	ds := DefaultDatasetConfig()
	return TrainConfig{
		Dataset:   ds,
		Model:     ml.DefaultModelConfig(0, ds.Window),
		TrainFrac: 0.8,
	}
}

// TrainProgressFunc receives live per-epoch training progress, tagged
// with the direction being trained. Implementations must be safe for
// concurrent calls: TrainModelsContext trains both directions at once.
type TrainProgressFunc func(dir Direction, p ml.TrainProgress)

// TrainDirection fits one direction's internal model from its dataset and
// returns the runtime artifact plus held-out evaluation.
func TrainDirection(ds *Dataset, cfg TrainConfig) (*DirectionModel, ml.EvalResult, error) {
	return TrainDirectionContext(context.Background(), ds, cfg, nil)
}

// TrainDirectionContext is TrainDirection with cancellation and per-epoch
// progress streaming. On cancellation the partially trained model is
// discarded and ctx's error returned.
func TrainDirectionContext(ctx context.Context, ds *Dataset, cfg TrainConfig, progress TrainProgressFunc) (*DirectionModel, ml.EvalResult, error) {
	return trainDirection(ctx, ds, cfg, progress, nil)
}

// trainDirection is the shared implementation behind
// TrainDirectionContext (ckpt == nil) and TrainDirectionCkpt.
func trainDirection(ctx context.Context, ds *Dataset, cfg TrainConfig, progress TrainProgressFunc, ckpt *TrainCheckpointer) (*DirectionModel, ml.EvalResult, error) {
	if ds.Len() == 0 {
		return nil, ml.EvalResult{}, fmt.Errorf("core: %v dataset is empty", ds.Dir)
	}
	mcfg := cfg.Model
	mcfg.Features = ds.Spec.Width()
	mcfg.Window = cfg.Dataset.Window
	model, err := ml.NewModel(mcfg)
	if err != nil {
		return nil, ml.EvalResult{}, err
	}
	train, test := ds.Split(cfg.TrainFrac)
	opts := ml.TrainOpts{}
	if progress != nil {
		dir := ds.Dir
		opts.Progress = func(p ml.TrainProgress) { progress(dir, p) }
	}
	waitCkpt := func() error { return nil }
	if ckpt != nil {
		ck, err := ckpt.Load(ds.Dir)
		if err != nil {
			return nil, ml.EvalResult{}, err
		}
		if resumable(ck, mcfg, train.Len()) {
			opts.ResumeFrom = ck
			obsCkptResumes.Inc()
		}
		opts.CheckpointEvery = ckpt.every()
		opts.SaveCheckpoint, waitCkpt = ckpt.AsyncSaver(ds.Dir)
	}
	_, trainErr := model.TrainSourceContext(ctx, train, opts)
	if werr := waitCkpt(); trainErr == nil {
		trainErr = werr
	}
	if trainErr != nil {
		return nil, ml.EvalResult{}, trainErr
	}
	eval := model.EvaluateSource(test)

	meanGap := stats.Mean(ds.Interarrivals)
	rate := 0.0
	if meanGap > 0 {
		rate = 1 / meanGap
	}
	dm := &DirectionModel{
		Model:          model,
		Bounds:         ds.Bounds,
		Disc:           ds.Disc,
		Interarrival:   stats.FitLogNormal(ds.Interarrivals, meanGap),
		GapSamples:     gapSubsample(ds.Interarrivals, 2048),
		RatePktsPerSec: rate,
		InfoBank:       bankSubsample(ds.InfoBank, 4096),
		DropRate:       ds.DropRate,
		ECNRate:        ds.ECNRate,
	}
	return dm, eval, nil
}

// gapSubsample bounds the empirical interarrival bank, mirroring
// bankSubsample for float series.
func gapSubsample(gaps []float64, max int) []float64 {
	if len(gaps) <= max {
		return append([]float64(nil), gaps...)
	}
	out := make([]float64, 0, max)
	stride := float64(len(gaps)) / float64(max)
	for i := 0; i < max; i++ {
		out = append(out, gaps[int(float64(i)*stride)])
	}
	return out
}

// bankSubsample bounds the feeder replay bank (deterministic stride
// subsampling keeps temporal coverage). Like gapSubsample, it always
// copies: the result must not alias the caller's dataset bank, which
// outlives and is shared across concurrently trained models.
func bankSubsample(bank []PacketInfo, max int) []PacketInfo {
	if len(bank) <= max {
		return append([]PacketInfo(nil), bank...)
	}
	out := make([]PacketInfo, 0, max)
	stride := float64(len(bank)) / float64(max)
	for i := 0; i < max; i++ {
		out = append(out, bank[int(float64(i)*stride)])
	}
	return out
}

// GenerateTrainingData runs the full-fidelity small-scale (2-cluster)
// simulation with boundary taps on the modeled cluster and returns the
// per-direction datasets (workflow step ❶, paper Figure 3).
func GenerateTrainingData(base cluster.Config, duration sim.Time, cfg TrainConfig) (ing, eg *Dataset, inst *cluster.Simulation, err error) {
	return GenerateTrainingDataContext(context.Background(), base, duration, cfg)
}

// GenerateTrainingDataContext is GenerateTrainingData with cooperative
// cancellation of the small-scale run; a cancelled run returns ctx's
// error rather than datasets built from a partial trace.
func GenerateTrainingDataContext(ctx context.Context, base cluster.Config, duration sim.Time, cfg TrainConfig) (ing, eg *Dataset, inst *cluster.Simulation, err error) {
	defer obs.StartSpan(obsPhaseDatagen).End()
	small := base
	small.Topo = base.Topo.WithClusters(2)
	small.Observable = 0
	inst, err = cluster.New(small)
	if err != nil {
		return nil, nil, nil, err
	}
	const modeled = 1 // the non-observable cluster is the one we learn
	tracer := NewTracer(inst.Topo, modeled)
	tracer.Attach(inst)
	if cancelled := inst.RunContext(ctx, duration); cancelled {
		return nil, nil, nil, ctx.Err()
	}

	spec := NewFeatureSpec(small.Topo)
	spec.SkipCongestion = cfg.SkipCongestionFeature
	ingRecs, egRecs := tracer.ByDirection()
	if ing, err = BuildDataset(Ingress, ingRecs, spec, cfg.Dataset); err != nil {
		return nil, nil, nil, err
	}
	if eg, err = BuildDataset(Egress, egRecs, spec, cfg.Dataset); err != nil {
		return nil, nil, nil, err
	}
	return ing, eg, inst, nil
}

// TrainModels fits both directions and assembles the MimicModels
// artifact (workflow steps ❷–❸).
func TrainModels(ing, eg *Dataset, cfg TrainConfig) (*MimicModels, ml.EvalResult, ml.EvalResult, error) {
	return TrainModelsContext(context.Background(), ing, eg, cfg, nil)
}

// TrainModelsContext fits the ingress and egress models concurrently —
// the two directions share no mutable state (each model has its own
// parameters; datasets are read-only), so this halves train wall time on
// multi-core hosts at identical per-direction results. Cancellation via
// ctx stops both trainings at their next optimizer-step boundary;
// progress, when non-nil, receives interleaved per-epoch reports tagged
// by direction.
func TrainModelsContext(ctx context.Context, ing, eg *Dataset, cfg TrainConfig, progress TrainProgressFunc) (*MimicModels, ml.EvalResult, ml.EvalResult, error) {
	return TrainModelsCkpt(ctx, ing, eg, cfg, progress, nil)
}
