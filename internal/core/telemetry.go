package core

import (
	"mimicnet/internal/obs"
)

// Runtime telemetry for the pipeline (obs package; DESIGN.md decision
// 10). Phase durations are one Span per phase — two clock reads per
// multi-second phase — and the inference counters are bumped once per
// flush, not per packet, so the batched engine's hot path is untouched.
var (
	obsPhaseDatagen = obs.Default().Histogram(
		`mimicnet_core_phase_seconds{phase="datagen"}`,
		"Wall time per pipeline phase (small-scale data generation, training, composed run, tuning validation).",
		obs.TimeBuckets())
	obsPhaseTrain = obs.Default().Histogram(
		`mimicnet_core_phase_seconds{phase="train"}`, "", obs.TimeBuckets())
	obsPhaseCompose = obs.Default().Histogram(
		`mimicnet_core_phase_seconds{phase="compose"}`, "", obs.TimeBuckets())

	obsInferFlushes = obs.Default().Counter("mimicnet_core_inference_flushes_total",
		"Batched inference scheduler flush events.")
	obsInferSteps = obs.Default().Counter("mimicnet_core_inference_steps_total",
		"Model steps issued through fused batched-inference calls.")

	obsCkptResumes = obs.Default().Counter("mimicnet_core_train_resumes_total",
		"Direction trainings resumed from a durable checkpoint instead of scratch.")
)
