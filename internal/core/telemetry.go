package core

import (
	"unsafe"

	"mimicnet/internal/obs"
)

// Runtime telemetry for the pipeline (obs package; DESIGN.md decision
// 10). Phase durations are one Span per phase — two clock reads per
// multi-second phase — and the inference counters are bumped once per
// flush, not per packet, so the batched engine's hot path is untouched.
var (
	obsPhaseDatagen = obs.Default().Histogram(
		`mimicnet_core_phase_seconds{phase="datagen"}`,
		"Wall time per pipeline phase (small-scale data generation, training, composed run, tuning validation).",
		obs.TimeBuckets())
	obsPhaseTrain = obs.Default().Histogram(
		`mimicnet_core_phase_seconds{phase="train"}`, "", obs.TimeBuckets())
	obsPhaseCompose = obs.Default().Histogram(
		`mimicnet_core_phase_seconds{phase="compose"}`, "", obs.TimeBuckets())

	obsInferFlushes = obs.Default().Counter("mimicnet_core_inference_flushes_total",
		"Batched inference scheduler flush events.")
	obsInferSteps = obs.Default().Counter("mimicnet_core_inference_steps_total",
		"Model steps issued through fused batched-inference calls.")

	obsCkptResumes = obs.Default().Counter("mimicnet_core_train_resumes_total",
		"Direction trainings resumed from a durable checkpoint instead of scratch.")

	obsDatasetBytes = map[Direction]*obs.Gauge{
		Ingress: obs.Default().Gauge(`mimicnet_core_dataset_bytes{dir="ingress"}`,
			"Resident bytes of the most recently built columnar dataset (feature matrix, targets, info bank, interarrivals)."),
		Egress: obs.Default().Gauge(`mimicnet_core_dataset_bytes{dir="egress"}`, ""),
	}
	obsDatasetSamples = map[Direction]*obs.Gauge{
		Ingress: obs.Default().Gauge(`mimicnet_core_dataset_samples{dir="ingress"}`,
			"Sample count of the most recently built dataset."),
		Egress: obs.Default().Gauge(`mimicnet_core_dataset_samples{dir="egress"}`, ""),
	}

	// obsMimicDrops is the unified model-predicted drop family, replacing
	// the split Composed.MimicDrops* / Hybrid.ModelDrops naming: indexed by
	// [Direction][roleClass]. The engine publishes deltas after each Run,
	// keeping atomics off the inference callbacks.
	obsMimicDrops = [2][2]*obs.Counter{
		Ingress: {
			roleClassMimic: obs.Default().Counter(
				`mimicnet_core_mimic_drops_total{dir="ingress",cluster_role="mimic"}`,
				"Packets the trained models predicted dropped, by direction and the serving cluster's role (mimic = fully model-driven, hybrid = one direction under test)."),
			roleClassHybrid: obs.Default().Counter(
				`mimicnet_core_mimic_drops_total{dir="ingress",cluster_role="hybrid"}`, ""),
		},
		Egress: {
			roleClassMimic: obs.Default().Counter(
				`mimicnet_core_mimic_drops_total{dir="egress",cluster_role="mimic"}`, ""),
			roleClassHybrid: obs.Default().Counter(
				`mimicnet_core_mimic_drops_total{dir="egress",cluster_role="hybrid"}`, ""),
		},
	}
)

// roleClass values for obsMimicDrops' second index.
const (
	roleClassMimic = iota
	roleClassHybrid
)

// observeDatasetBuilt records the footprint of a freshly built dataset.
func observeDatasetBuilt(dir Direction, ds *Dataset) {
	bytes := int64(ds.Samples.Bytes()) +
		int64(len(ds.InfoBank))*int64(unsafe.Sizeof(PacketInfo{})) +
		8*int64(len(ds.Interarrivals))
	if g, ok := obsDatasetBytes[dir]; ok {
		g.Set(bytes)
	}
	if g, ok := obsDatasetSamples[dir]; ok {
		g.Set(int64(ds.Len()))
	}
}
