package core

import (
	"fmt"

	"mimicnet/internal/ml"
	"mimicnet/internal/stats"
)

// UpdateModels incrementally retrains existing Mimic models on freshly
// generated boundary data — the "incremental model updates when models
// need retraining" direction from the paper's future work (§11,
// Appendix H). The workload, protocol, or queue configuration may have
// changed; the per-cluster topology structure must not (scalable-feature
// invariant). Feeder statistics are refitted from the new trace; LSTM
// weights warm-start from the previous models.
func UpdateModels(models *MimicModels, ing, eg *Dataset, epochs int, lr float64) (*MimicModels, error) {
	if models == nil || models.Ingress == nil || models.Egress == nil {
		return nil, fmt.Errorf("core: no models to update")
	}
	if ing.Spec.Width() != models.Spec.Width() {
		return nil, fmt.Errorf("core: feature width changed (%d -> %d); retrain from scratch",
			models.Spec.Width(), ing.Spec.Width())
	}
	out := &MimicModels{Spec: models.Spec, Window: models.Window}
	var err error
	if out.Ingress, err = updateDirection(models.Ingress, ing, epochs, lr); err != nil {
		return nil, err
	}
	if out.Egress, err = updateDirection(models.Egress, eg, epochs, lr); err != nil {
		return nil, err
	}
	return out, nil
}

func updateDirection(old *DirectionModel, ds *Dataset, epochs int, lr float64) (*DirectionModel, error) {
	if ds.Len() == 0 {
		return nil, fmt.Errorf("core: %v update dataset is empty", ds.Dir)
	}
	// Clone weights via serialization so the original stays usable.
	blob, err := old.Model.MarshalJSON()
	if err != nil {
		return nil, err
	}
	model := &ml.Model{}
	if err := model.UnmarshalJSON(blob); err != nil {
		return nil, err
	}
	// Latency normalization must keep the old bounds: the cloned weights
	// were trained against them. Out-of-range new latencies clamp. Only
	// the latency column is rewritten — the feature matrix is shared.
	retargeted := make([]float64, ds.Len())
	for i := range retargeted {
		lat, dropped, _ := ds.Samples.Target(i)
		if !dropped {
			// ds normalized with its own bounds; re-normalize raw value
			// into the old model's scale.
			lat = old.Disc.Normalize(ds.Disc.Recover(lat))
		}
		retargeted[i] = lat
	}
	model.FineTuneSource(ds.Samples.WithLatency(retargeted), epochs, lr)

	meanGap := stats.Mean(ds.Interarrivals)
	rate := old.RatePktsPerSec
	if meanGap > 0 {
		rate = 1 / meanGap
	}
	return &DirectionModel{
		Model:          model,
		Bounds:         old.Bounds,
		Disc:           old.Disc,
		Interarrival:   stats.FitLogNormal(ds.Interarrivals, meanGap),
		RatePktsPerSec: rate,
		InfoBank:       bankSubsample(ds.InfoBank, 4096),
		DropRate:       ds.DropRate,
		ECNRate:        ds.ECNRate,
	}, nil
}
