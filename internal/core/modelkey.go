package core

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"mimicnet/internal/cluster"
	"mimicnet/internal/ml"
	"mimicnet/internal/sim"
)

// modelKeyPayload is the canonical, training-relevant projection of a job
// configuration. Two jobs whose payloads marshal identically are
// guaranteed to train bitwise-identical models (everything is seeded), so
// its SHA-256 is a sound content address for a trained MimicModels blob.
//
// Deliberately excluded: the target composition size (training always
// runs at 2 clusters and MimicModels are size-independent), worker/shard
// counts, batch-window overrides, and anything else that only shapes how
// a simulation executes rather than what the models learn.
type modelKeyPayload struct {
	// Per-cluster topology structure (feature widths derive from it).
	Racks, Hosts, Aggs, Cores int

	// Network and protocol.
	Protocol string
	RateBps  float64
	DelayNs  int64
	ECNK     int
	QueueCap int

	// Workload.
	Load          float64
	MeanFlowBytes float64
	WorkloadNs    int64
	Seed          int64
	PIntraRack    float64
	PIntraCluster float64
	MinFlowBytes  int64
	MaxFlowBytes  int64

	// Data generation and dataset construction.
	SmallRunNs     int64
	Window         int
	LatencyBins    int
	TrainFrac      float64
	SkipCongestion bool

	// Model hyper-parameters (full struct: every field is trained state).
	Model ml.ModelConfig

	// Extra distinguishes otherwise-identical configs whose artifacts
	// still differ (e.g. a hyper-parameter tuning budget applied on top).
	Extra string
}

// ModelKey returns the content address of the MimicModels a training run
// over this configuration would produce: a SHA-256 over the canonical
// JSON of every training-relevant knob (topology shape, protocol, link,
// workload, seed, dataset window, model hyper-parameters, cell type).
// The serve registry stores trained blobs under this key; equal keys mean
// retraining is provably redundant.
func ModelKey(base cluster.Config, smallRun sim.Time, tcfg TrainConfig, extra string) (string, error) {
	if base.Protocol == nil {
		return "", fmt.Errorf("core: model key needs a protocol")
	}
	payload := modelKeyPayload{
		Racks: base.Topo.RacksPerCluster,
		Hosts: base.Topo.HostsPerRack,
		Aggs:  base.Topo.AggPerCluster,
		Cores: base.Topo.CoresPerAgg,

		Protocol: base.Protocol.Name(),
		RateBps:  base.Link.RateBps,
		DelayNs:  int64(base.Link.Delay),
		ECNK:     base.ECNThresholdK,
		QueueCap: base.QueueCapacity,

		Load:          base.Workload.Load,
		MeanFlowBytes: base.Workload.MeanFlowBytes,
		WorkloadNs:    int64(base.Workload.Duration),
		Seed:          base.Workload.Seed,
		PIntraRack:    base.Workload.PIntraRack,
		PIntraCluster: base.Workload.PIntraCluster,
		MinFlowBytes:  base.Workload.MinFlowBytes,
		MaxFlowBytes:  base.Workload.MaxFlowBytes,

		SmallRunNs:     int64(smallRun),
		Window:         tcfg.Dataset.Window,
		LatencyBins:    tcfg.Dataset.LatencyBins,
		TrainFrac:      tcfg.TrainFrac,
		SkipCongestion: tcfg.SkipCongestionFeature,

		Model: tcfg.Model,
		Extra: extra,
	}
	blob, err := json.Marshal(payload)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:]), nil
}

// datasetKeyPayload is the datagen-only projection of a job
// configuration: the knobs that determine the boundary trace and its
// conversion to columnar datasets, and nothing downstream of them.
// Model hyper-parameters, TrainFrac, and tuning extras deliberately do
// NOT appear — jobs that differ only in how they train share one
// persisted dataset.
type datasetKeyPayload struct {
	Format string // dataset container magic; layout changes miss the cache

	Racks, Hosts, Aggs, Cores int

	Protocol string
	RateBps  float64
	DelayNs  int64
	ECNK     int
	QueueCap int

	Load          float64
	MeanFlowBytes float64
	WorkloadNs    int64
	Seed          int64
	PIntraRack    float64
	PIntraCluster float64
	MinFlowBytes  int64
	MaxFlowBytes  int64

	SmallRunNs     int64
	Window         int
	LatencyBins    int
	SkipCongestion bool
}

// DatasetKey returns the content address of the columnar datasets a
// small-scale datagen run over this configuration would produce (the
// run is fully seeded, so equal keys mean regenerating is provably
// redundant). It is intentionally coarser than ModelKey: many model
// keys map onto one dataset key.
func DatasetKey(base cluster.Config, smallRun sim.Time, tcfg TrainConfig) (string, error) {
	if base.Protocol == nil {
		return "", fmt.Errorf("core: dataset key needs a protocol")
	}
	payload := datasetKeyPayload{
		Format: DatasetFileMagic,

		Racks: base.Topo.RacksPerCluster,
		Hosts: base.Topo.HostsPerRack,
		Aggs:  base.Topo.AggPerCluster,
		Cores: base.Topo.CoresPerAgg,

		Protocol: base.Protocol.Name(),
		RateBps:  base.Link.RateBps,
		DelayNs:  int64(base.Link.Delay),
		ECNK:     base.ECNThresholdK,
		QueueCap: base.QueueCapacity,

		Load:          base.Workload.Load,
		MeanFlowBytes: base.Workload.MeanFlowBytes,
		WorkloadNs:    int64(base.Workload.Duration),
		Seed:          base.Workload.Seed,
		PIntraRack:    base.Workload.PIntraRack,
		PIntraCluster: base.Workload.PIntraCluster,
		MinFlowBytes:  base.Workload.MinFlowBytes,
		MaxFlowBytes:  base.Workload.MaxFlowBytes,

		SmallRunNs:     int64(smallRun),
		Window:         tcfg.Dataset.Window,
		LatencyBins:    tcfg.Dataset.LatencyBins,
		SkipCongestion: tcfg.SkipCongestionFeature,
	}
	blob, err := json.Marshal(payload)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:]), nil
}
