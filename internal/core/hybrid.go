package core

import (
	"fmt"
	"strconv"

	"mimicnet/internal/cluster"
	"mimicnet/internal/metrics"
	"mimicnet/internal/netsim"
	"mimicnet/internal/sim"
	"mimicnet/internal/topo"
	"mimicnet/internal/transport"
	"mimicnet/internal/workload"
)

// This file implements the paper's Appendix B: separate ingress/egress
// model tuning and debugging via *hybrid* Mimic clusters. A hybrid
// composition keeps a full-fidelity 2-cluster network but routes exactly
// one traffic direction of the modeled cluster through the trained model,
// while the opposite direction (and all internal traffic) continues
// through the real simulated network. Comparing a hybrid run against the
// all-real run isolates one direction's model error.
//
// The paper's duplicator trick — feeding the real network a copy of the
// modeled direction's traffic so that cross-direction congestion coupling
// is preserved — corresponds here to *not* removing the modeled cluster's
// network: the packet is duplicated conceptually, with the model's output
// used for delivery and the real network's copy retained for congestion.

// HybridDirection selects which direction the model under test handles.
type HybridDirection = Direction

// Hybrid is a 2-cluster simulation in which one direction of the modeled
// cluster's external traffic is served by the trained internal model.
//
// Like Composed, a hybrid runs either sequentially or sharded into two
// logical processes (cluster 0 plus the cores, and the modeled cluster),
// with identical Results either way.
type Hybrid struct {
	Dir    Direction
	Sim    *sim.Simulator // shard 0's simulator
	Topo   *topo.Topology
	Fabric *netsim.Fabric

	cfg    cluster.Config
	mimic  *Mimic
	shards []*shardCtx
	par    *sim.Parallel // nil when sequential
	hosts  []*transport.Host
	flows  []workload.Flow
}

const hybridModeled = 1 // cluster 1 is modeled, as in training

// NewHybrid builds the test framework for one direction. cfg must be the
// 2-cluster base configuration the models were trained from.
func NewHybrid(cfg cluster.Config, models *MimicModels, dir Direction) (*Hybrid, error) {
	if cfg.Protocol == nil {
		return nil, fmt.Errorf("core: hybrid needs a protocol")
	}
	cfg.Topo = cfg.Topo.WithClusters(2)
	cfg.Observable = 0
	if err := cfg.Topo.Validate(); err != nil {
		return nil, err
	}
	if models == nil || models.Ingress == nil || models.Egress == nil {
		return nil, fmt.Errorf("core: hybrid needs trained models")
	}
	t := topo.New(cfg.Topo)
	cfg.Workload.HostLinkBps = cfg.Link.RateBps
	flows, err := workload.Generate(t, cfg.Workload)
	if err != nil {
		return nil, err
	}
	link := cfg.Link
	link.SwitchQueue = cfg.QueueFactory()

	lookahead := composedLookahead(link, models)
	sharded := cfg.Sharded() && lookahead > 0

	h := &Hybrid{
		Dir: dir, Topo: t,
		cfg:   cfg,
		mimic: NewMimic(models, hybridModeled, cfg.Workload.Seed),
		flows: flows,
	}
	if sharded {
		h.par = sim.NewParallel(2, lookahead)
		h.par.NumWorkers = cfg.ShardWorkers()
		h.shards = []*shardCtx{
			{sim: h.par.LPs[0].Sim, coll: metrics.NewCollector()},
			{sim: h.par.LPs[1].Sim, coll: metrics.NewCollector()},
		}
		shardOf := make([]int, t.Nodes())
		for n := range shardOf {
			if t.ClusterOf(n) == hybridModeled {
				shardOf[n] = 1
			}
		}
		h.Fabric = netsim.NewShardedFabric(h.par.LPs, shardOf, t, link)
	} else {
		h.shards = []*shardCtx{{sim: sim.New(), coll: metrics.NewCollector()}}
		h.Fabric = netsim.NewFabric(h.shards[0].sim, t, link)
	}
	h.Sim = h.shards[0].sim

	if !cfg.SequentialInference {
		w := cfg.BatchWindow
		if w == 0 {
			w = DefaultBatchWindow(models)
		}
		if sharded {
			w = shardedWindow(w, lookahead, models)
		}
		// The mimic's inference runs where its cluster lives: shard 1
		// when sharded, the single shard otherwise.
		msh := h.shardFor(hybridModeled)
		msh.sched = NewInferenceScheduler(msh.sim, models, w)
		h.mimic.AttachScheduler(msh.sched)
	}

	for _, sh := range h.shards {
		sh := sh
		sh.env = &transport.Env{
			Sim:      sh.sim,
			MSS:      netsim.MSS,
			BDPBytes: cfg.BDPBytes(),
			Inject:   h.inject,
			OnRTT: func(f *transport.Flow, sec float64) {
				if t.ClusterOf(f.Src) == cfg.Observable {
					sh.coll.RTTSample(sec)
				}
			},
			OnComplete: func(f *transport.Flow) {
				sh.coll.FlowCompleted(strconv.FormatUint(f.ID, 10), sh.sim.Now())
				sh.flowsCompleted++
			},
		}
	}
	h.hosts = make([]*transport.Host, t.Hosts())
	for i := 0; i < t.Hosts(); i++ {
		i := i
		sh := h.shardFor(t.ClusterOf(i))
		host := transport.NewHost(i, sh.env, func(f *transport.Flow) *transport.Receiver {
			r := transport.NewReceiver(sh.env, f)
			if transport.IsHoma(cfg.Protocol) {
				bdp := sh.env.BDPBytes
				r.EnableGranting(func(remaining int64) int {
					return transport.HomaPriority(remaining, bdp)
				})
			}
			if t.ClusterOf(i) == cfg.Observable {
				r.OnDeliver = func(n int64) { sh.coll.BytesReceived(i, n, sh.sim.Now()) }
			}
			return r
		})
		h.hosts[i] = host
		h.Fabric.RegisterHost(i, host.Receive)
	}

	if dir == Ingress {
		// The ingress model handles packets descending into cluster 1;
		// everything else rides the real network (Figure 15a).
		h.Fabric.SetIntercept(h.interceptIngress)
	}

	for _, f := range flows {
		f := f
		h.shardFor(t.ClusterOf(f.Src)).sim.At(f.Start, func() { h.startFlow(f) })
	}
	return h, nil
}

// shardFor maps a cluster index to its logical process's context: the
// modeled cluster on shard 1 when sharded, everything else (including
// cores, ClusterOf == -1) on shard 0.
func (h *Hybrid) shardFor(clusterIdx int) *shardCtx {
	if h.par != nil && clusterIdx == hybridModeled {
		return h.shards[1]
	}
	return h.shards[0]
}

// interceptIngress routes cluster-1-bound external packets through the
// ingress model at the agg juncture. The real in-cluster copy is elided
// (its congestion contribution is exactly what the model learned). The
// fabric calls it on the LP owning the agg switch — the modeled shard —
// and the predicted delivery is local to that shard.
func (h *Hybrid) interceptIngress(node int, pkt *netsim.Packet) bool {
	t := h.Topo
	if t.KindOf(node) != topo.KindAgg || t.ClusterOf(node) != hybridModeled {
		return false
	}
	if t.ClusterOf(pkt.Dst) != hybridModeled {
		return false
	}
	if pkt.Hop < 1 || t.KindOf(pkt.Path[pkt.Hop-1]) != topo.KindCore {
		return false
	}
	sh := h.shardFor(hybridModeled)
	sh.modelPackets++
	info := BuildPacketInfo(t, hybridModeled, pkt, pkt.Dst, sh.sim.Now())
	h.mimic.ProcessIngressAsync(info, func(out Outcome) {
		if out.Dropped {
			sh.modelDrops++
			return
		}
		if out.ECNMark {
			pkt.CE = true
		}
		dst := pkt.Dst
		at := info.ArrivalTime + out.Latency
		if now := sh.sim.Now(); at < now {
			at = now
		}
		sh.sim.At(at, func() { h.hosts[dst].Receive(pkt) })
	})
	return true
}

// inject routes transport packets. In Egress mode, packets leaving the
// modeled cluster's hosts are served by the egress model at the same
// juncture the model was trained on (host injection) and re-materialize
// at the core; all other packets ride the real network (Figure 15b). It
// executes on the LP owning pkt.Src's host.
func (h *Hybrid) inject(pkt *netsim.Packet) {
	t := h.Topo
	pkt.Path = t.Path(pkt.Src, pkt.Dst, pkt.Hash)
	if h.Dir != Egress ||
		t.ClusterOf(pkt.Src) != hybridModeled ||
		t.ClusterOf(pkt.Dst) == hybridModeled {
		h.Fabric.Inject(pkt)
		return
	}
	sh := h.shardFor(hybridModeled)
	sh.modelPackets++
	info := BuildPacketInfo(t, hybridModeled, pkt, pkt.Src, sh.sim.Now())
	h.mimic.ProcessEgressAsync(info, func(out Outcome) {
		if out.Dropped {
			sh.modelDrops++
			return
		}
		if out.ECNMark {
			pkt.CE = true
		}
		coreHop := -1
		for i, n := range pkt.Path {
			if t.KindOf(n) == topo.KindCore {
				coreHop = i
				break
			}
		}
		if coreHop < 0 {
			return
		}
		at := info.ArrivalTime + out.Latency
		if now := sh.sim.Now(); at < now {
			at = now
		}
		materialize := func() { h.Fabric.InjectAt(pkt, coreHop) }
		if h.par != nil {
			// The core switch lives on LP 0; the sharded batch window is
			// capped so this send is at least one lookahead ahead.
			h.par.LPs[1].SendTo(h.par.LPs[0], at, materialize)
			return
		}
		sh.sim.At(at, materialize)
	})
}

func (h *Hybrid) startFlow(f workload.Flow) {
	sh := h.shardFor(h.Topo.ClusterOf(f.Src))
	tf := &transport.Flow{
		ID: f.ID, Src: f.Src, Dst: f.Dst, Bytes: f.Bytes,
		Hash: topo.FlowHash(f.Src, f.Dst, f.ID),
	}
	sender := h.cfg.Protocol.NewSender(sh.env, tf)
	h.hosts[f.Src].AddSender(f.ID, sender)
	sh.coll.FlowStarted(strconv.FormatUint(f.ID, 10), f.Src, f.Dst, f.Bytes, sh.sim.Now())
	sh.flowsStarted++
	sender.Start()
}

// Sharded reports whether this hybrid runs as parallel LPs.
func (h *Hybrid) Sharded() bool { return h.par != nil }

// Scheduler exposes the batched inference scheduler (nil under
// SequentialInference).
func (h *Hybrid) Scheduler() *InferenceScheduler {
	return h.shardFor(hybridModeled).sched
}

// ModelPackets returns the number of packets served by the model under
// test; ModelDrops the subset it predicted dropped.
func (h *Hybrid) ModelPackets() uint64 { return h.shardFor(hybridModeled).modelPackets }

// ModelDrops returns packets the model under test predicted dropped.
func (h *Hybrid) ModelDrops() uint64 { return h.shardFor(hybridModeled).modelDrops }

// FlowsStarted returns the number of flows started.
func (h *Hybrid) FlowsStarted() int {
	total := 0
	for _, sh := range h.shards {
		total += sh.flowsStarted
	}
	return total
}

// FlowsCompleted returns the number of flows completed.
func (h *Hybrid) FlowsCompleted() int {
	total := 0
	for _, sh := range h.shards {
		total += sh.flowsCompleted
	}
	return total
}

// Run advances the hybrid simulation, flushing any batched inference
// requests still pending at the horizon.
func (h *Hybrid) Run(until sim.Time) {
	if h.par != nil {
		h.par.Run(until)
	} else {
		h.Sim.RunUntil(until)
	}
	if sched := h.Scheduler(); sched != nil {
		sched.Flush()
	}
}

// Results snapshots metrics in the standard shape.
func (h *Hybrid) Results() cluster.Results {
	coll := h.shards[0].coll
	if len(h.shards) > 1 {
		coll = metrics.Merged(h.shards[0].coll, h.shards[1].coll)
	}
	var events uint64
	for _, sh := range h.shards {
		events += sh.sim.Processed()
	}
	return cluster.Results{
		FCTs:        coll.FCTs(),
		Throughputs: coll.Throughputs(),
		RTTs:        coll.RTTs(),
		FCTByID:     coll.FCTByID(),
		Events:      events,
		Packets:     h.Fabric.Injected(),
		Drops:       h.Fabric.Drops() + h.ModelDrops(),
	}
}

// DirectionError runs a hybrid for each direction against the all-real
// reference and returns the per-direction W1(FCT) — the paper's
// mechanism for attributing approximation error to one model.
func DirectionError(cfg cluster.Config, models *MimicModels, until sim.Time) (ingW1, egW1 float64, err error) {
	ref := cfg
	ref.Topo = cfg.Topo.WithClusters(2)
	ref.Observable = 0
	inst, err := cluster.New(ref)
	if err != nil {
		return 0, 0, err
	}
	inst.Run(until)
	truth := inst.Results().FCTs

	for _, dir := range []Direction{Ingress, Egress} {
		hyb, err := NewHybrid(cfg, models, dir)
		if err != nil {
			return 0, 0, err
		}
		hyb.Run(until)
		w := metrics.W1(hyb.Results().FCTs, truth)
		if dir == Ingress {
			ingW1 = w
		} else {
			egW1 = w
		}
	}
	return ingW1, egW1, nil
}
