package core

import (
	"fmt"
	"strconv"

	"mimicnet/internal/cluster"
	"mimicnet/internal/metrics"
	"mimicnet/internal/netsim"
	"mimicnet/internal/sim"
	"mimicnet/internal/topo"
	"mimicnet/internal/transport"
	"mimicnet/internal/workload"
)

// This file implements the paper's Appendix B: separate ingress/egress
// model tuning and debugging via *hybrid* Mimic clusters. A hybrid
// composition keeps a full-fidelity 2-cluster network but routes exactly
// one traffic direction of the modeled cluster through the trained model,
// while the opposite direction (and all internal traffic) continues
// through the real simulated network. Comparing a hybrid run against the
// all-real run isolates one direction's model error.
//
// The paper's duplicator trick — feeding the real network a copy of the
// modeled direction's traffic so that cross-direction congestion coupling
// is preserved — corresponds here to *not* removing the modeled cluster's
// network: the packet is duplicated conceptually, with the model's output
// used for delivery and the real network's copy retained for congestion.

// HybridDirection selects which direction the model under test handles.
type HybridDirection = Direction

// Hybrid is a 2-cluster simulation in which one direction of the modeled
// cluster's external traffic is served by the trained internal model.
type Hybrid struct {
	Dir       Direction
	Sim       *sim.Simulator
	Topo      *topo.Topology
	Fabric    *netsim.Fabric
	Collector *metrics.Collector

	cfg   cluster.Config
	mimic *Mimic
	sched *InferenceScheduler // nil under cfg.SequentialInference
	hosts []*transport.Host
	env   *transport.Env
	flows []workload.Flow

	// ModelPackets counts packets served by the model under test.
	ModelPackets uint64
	ModelDrops   uint64

	FlowsStarted, FlowsCompleted int
}

const hybridModeled = 1 // cluster 1 is modeled, as in training

// NewHybrid builds the test framework for one direction. cfg must be the
// 2-cluster base configuration the models were trained from.
func NewHybrid(cfg cluster.Config, models *MimicModels, dir Direction) (*Hybrid, error) {
	if cfg.Protocol == nil {
		return nil, fmt.Errorf("core: hybrid needs a protocol")
	}
	cfg.Topo = cfg.Topo.WithClusters(2)
	cfg.Observable = 0
	if err := cfg.Topo.Validate(); err != nil {
		return nil, err
	}
	if models == nil || models.Ingress == nil || models.Egress == nil {
		return nil, fmt.Errorf("core: hybrid needs trained models")
	}
	t := topo.New(cfg.Topo)
	cfg.Workload.HostLinkBps = cfg.Link.RateBps
	flows, err := workload.Generate(t, cfg.Workload)
	if err != nil {
		return nil, err
	}
	s := sim.New()
	link := cfg.Link
	link.SwitchQueue = cfg.QueueFactory()
	fabric := netsim.NewFabric(s, t, link)

	h := &Hybrid{
		Dir: dir, Sim: s, Topo: t, Fabric: fabric,
		Collector: metrics.NewCollector(),
		cfg:       cfg,
		mimic:     NewMimic(models, hybridModeled, cfg.Workload.Seed),
		flows:     flows,
	}
	if !cfg.SequentialInference {
		w := cfg.BatchWindow
		if w == 0 {
			w = DefaultBatchWindow(models)
		}
		h.sched = NewInferenceScheduler(s, models, w)
		h.mimic.AttachScheduler(h.sched)
	}
	h.env = &transport.Env{
		Sim:      s,
		MSS:      netsim.MSS,
		BDPBytes: cfg.BDPBytes(),
		Inject:   h.inject,
		OnRTT: func(f *transport.Flow, sec float64) {
			if t.ClusterOf(f.Src) == cfg.Observable {
				h.Collector.RTTSample(sec)
			}
		},
		OnComplete: func(f *transport.Flow) {
			h.Collector.FlowCompleted(strconv.FormatUint(f.ID, 10), s.Now())
			h.FlowsCompleted++
		},
	}
	h.hosts = make([]*transport.Host, t.Hosts())
	for i := 0; i < t.Hosts(); i++ {
		i := i
		host := transport.NewHost(i, h.env, func(f *transport.Flow) *transport.Receiver {
			r := transport.NewReceiver(h.env, f)
			if transport.IsHoma(cfg.Protocol) {
				bdp := h.env.BDPBytes
				r.EnableGranting(func(remaining int64) int {
					return transport.HomaPriority(remaining, bdp)
				})
			}
			if t.ClusterOf(i) == cfg.Observable {
				r.OnDeliver = func(n int64) { h.Collector.BytesReceived(i, n, s.Now()) }
			}
			return r
		})
		h.hosts[i] = host
		fabric.RegisterHost(i, host.Receive)
	}

	if dir == Ingress {
		// The ingress model handles packets descending into cluster 1;
		// everything else rides the real network (Figure 15a).
		fabric.SetIntercept(h.interceptIngress)
	}

	for _, f := range flows {
		f := f
		s.At(f.Start, func() { h.startFlow(f) })
	}
	return h, nil
}

// interceptIngress routes cluster-1-bound external packets through the
// ingress model at the agg juncture. The real in-cluster copy is elided
// (its congestion contribution is exactly what the model learned).
func (h *Hybrid) interceptIngress(node int, pkt *netsim.Packet) bool {
	t := h.Topo
	if t.KindOf(node) != topo.KindAgg || t.ClusterOf(node) != hybridModeled {
		return false
	}
	if t.ClusterOf(pkt.Dst) != hybridModeled {
		return false
	}
	if pkt.Hop < 1 || t.KindOf(pkt.Path[pkt.Hop-1]) != topo.KindCore {
		return false
	}
	h.ModelPackets++
	info := BuildPacketInfo(t, hybridModeled, pkt, pkt.Dst, h.Sim.Now())
	h.mimic.ProcessIngressAsync(info, func(out Outcome) {
		if out.Dropped {
			h.ModelDrops++
			return
		}
		if out.ECNMark {
			pkt.CE = true
		}
		dst := pkt.Dst
		at := info.ArrivalTime + out.Latency
		if now := h.Sim.Now(); at < now {
			at = now
		}
		h.Sim.At(at, func() { h.hosts[dst].Receive(pkt) })
	})
	return true
}

// inject routes transport packets. In Egress mode, packets leaving the
// modeled cluster's hosts are served by the egress model at the same
// juncture the model was trained on (host injection) and re-materialize
// at the core; all other packets ride the real network (Figure 15b).
func (h *Hybrid) inject(pkt *netsim.Packet) {
	t := h.Topo
	pkt.Path = t.Path(pkt.Src, pkt.Dst, pkt.Hash)
	if h.Dir != Egress ||
		t.ClusterOf(pkt.Src) != hybridModeled ||
		t.ClusterOf(pkt.Dst) == hybridModeled {
		h.Fabric.Inject(pkt)
		return
	}
	h.ModelPackets++
	info := BuildPacketInfo(t, hybridModeled, pkt, pkt.Src, h.Sim.Now())
	h.mimic.ProcessEgressAsync(info, func(out Outcome) {
		if out.Dropped {
			h.ModelDrops++
			return
		}
		if out.ECNMark {
			pkt.CE = true
		}
		coreHop := -1
		for i, n := range pkt.Path {
			if t.KindOf(n) == topo.KindCore {
				coreHop = i
				break
			}
		}
		if coreHop < 0 {
			return
		}
		at := info.ArrivalTime + out.Latency
		if now := h.Sim.Now(); at < now {
			at = now
		}
		h.Sim.At(at, func() { h.Fabric.InjectAt(pkt, coreHop) })
	})
}

func (h *Hybrid) startFlow(f workload.Flow) {
	tf := &transport.Flow{
		ID: f.ID, Src: f.Src, Dst: f.Dst, Bytes: f.Bytes,
		Hash: topo.FlowHash(f.Src, f.Dst, f.ID),
	}
	sender := h.cfg.Protocol.NewSender(h.env, tf)
	h.hosts[f.Src].AddSender(f.ID, sender)
	h.Collector.FlowStarted(strconv.FormatUint(f.ID, 10), f.Src, f.Dst, f.Bytes, h.Sim.Now())
	h.FlowsStarted++
	sender.Start()
}

// Run advances the hybrid simulation, flushing any batched inference
// requests still pending at the horizon.
func (h *Hybrid) Run(until sim.Time) {
	h.Sim.RunUntil(until)
	if h.sched != nil {
		h.sched.Flush()
	}
}

// Results snapshots metrics in the standard shape.
func (h *Hybrid) Results() cluster.Results {
	return cluster.Results{
		FCTs:        h.Collector.FCTs(),
		Throughputs: h.Collector.Throughputs(),
		RTTs:        h.Collector.RTTs(),
		FCTByID:     h.Collector.FCTByID(),
		Events:      h.Sim.Processed(),
		Packets:     h.Fabric.Injected,
		Drops:       h.Fabric.Drops + h.ModelDrops,
	}
}

// DirectionError runs a hybrid for each direction against the all-real
// reference and returns the per-direction W1(FCT) — the paper's
// mechanism for attributing approximation error to one model.
func DirectionError(cfg cluster.Config, models *MimicModels, until sim.Time) (ingW1, egW1 float64, err error) {
	ref := cfg
	ref.Topo = cfg.Topo.WithClusters(2)
	ref.Observable = 0
	inst, err := cluster.New(ref)
	if err != nil {
		return 0, 0, err
	}
	inst.Run(until)
	truth := inst.Results().FCTs

	for _, dir := range []Direction{Ingress, Egress} {
		hyb, err := NewHybrid(cfg, models, dir)
		if err != nil {
			return 0, 0, err
		}
		hyb.Run(until)
		w := metrics.W1(hyb.Results().FCTs, truth)
		if dir == Ingress {
			ingW1 = w
		} else {
			egW1 = w
		}
	}
	return ingW1, egW1, nil
}
