package core

import (
	"sync"

	"mimicnet/internal/cluster"
	"mimicnet/internal/metrics"
	"mimicnet/internal/sim"
)

// This file implements the paper's Appendix B: separate ingress/egress
// model tuning and debugging via *hybrid* Mimic clusters. A hybrid
// composition keeps a full-fidelity 2-cluster network but routes exactly
// one traffic direction of the modeled cluster through the trained model,
// while the opposite direction (and all internal traffic) continues
// through the real simulated network. Comparing a hybrid run against the
// all-real run isolates one direction's model error.
//
// The paper's duplicator trick — feeding the real network a copy of the
// modeled direction's traffic so that cross-direction congestion coupling
// is preserved — corresponds here to *not* removing the modeled cluster's
// network: the packet is duplicated conceptually, with the model's output
// used for delivery and the real network's copy retained for congestion.
//
// The runtime is the role-based Engine (engine.go) built from
// HybridRoles: cluster 0 observed, cluster 1 RoleHybridIngress or
// RoleHybridEgress.

// HybridDirection selects which direction the model under test handles.
type HybridDirection = Direction

// Hybrid is a 2-cluster simulation in which one direction of the modeled
// cluster's external traffic is served by the trained internal model. It
// is the Engine built from HybridRoles; this alias keeps the historical
// name.
type Hybrid = Engine

// NewHybrid builds the test framework for one direction. cfg must be the
// 2-cluster base configuration the models were trained from.
func NewHybrid(cfg cluster.Config, models *MimicModels, dir Direction) (*Hybrid, error) {
	cfg.Topo = cfg.Topo.WithClusters(2)
	return NewEngine(cfg, HybridRoles(dir), models)
}

// RoleError runs the all-real reference and both hybrid directions
// concurrently (each engine owns its simulators, RNG streams, and
// collectors, so the three runs never share mutable state) and returns
// the per-direction W1(FCT) against the reference — the paper's
// mechanism for attributing approximation error to one model. The
// results are identical to running the three simulations back to back.
func RoleError(cfg cluster.Config, models *MimicModels, until sim.Time) (ingW1, egW1 float64, err error) {
	// Construct everything up front so validation errors surface before
	// any simulation work starts.
	ref := cfg
	ref.Topo = cfg.Topo.WithClusters(2)
	ref.Observable = 0
	inst, err := cluster.New(ref)
	if err != nil {
		return 0, 0, err
	}
	var hybs [2]*Engine
	for _, dir := range []Direction{Ingress, Egress} {
		h, herr := NewHybrid(cfg, models, dir)
		if herr != nil {
			return 0, 0, herr
		}
		hybs[dir] = h
	}

	var wg sync.WaitGroup
	wg.Add(3)
	var truth []float64
	go func() {
		defer wg.Done()
		inst.Run(until)
		truth = inst.Results().FCTs
	}()
	var fcts [2][]float64
	for _, dir := range []Direction{Ingress, Egress} {
		dir := dir
		go func() {
			defer wg.Done()
			hybs[dir].Run(until)
			fcts[dir] = hybs[dir].Results().FCTs
		}()
	}
	wg.Wait()
	return metrics.W1(fcts[Ingress], truth), metrics.W1(fcts[Egress], truth), nil
}

// DirectionError is the historical name for RoleError. The runs are now
// concurrent rather than back to back; the values are unchanged.
func DirectionError(cfg cluster.Config, models *MimicModels, until sim.Time) (ingW1, egW1 float64, err error) {
	return RoleError(cfg, models, until)
}
