package core

import (
	"mimicnet/internal/ml"
	"mimicnet/internal/sim"
)

// InferenceScheduler batches Mimic model steps across clusters. Instead
// of running one LSTM step per boundary packet as it arrives, each
// Mimic×direction stream becomes a *lane* of a BatchedStatefulModel
// (all Mimics share the same trained weights, so their steps are one
// fused matrix–matrix product). Requests collected within a short
// simulation window are serviced together by a single flush event.
//
// Correctness rests on two invariants:
//
//  1. Per-lane order. A lane's requests are queued FIFO and flushed in
//     rounds (round k takes the k-th pending request of every lane), so
//     each lane sees the exact sequence of feature extractions, RNG
//     draws, and hidden-state updates it would have seen inline. The
//     batched cell kernels are bit-exact with the per-vector path
//     (internal/ml/batch.go), so predictions are identical too.
//  2. Causality. The collection window never exceeds the latency lower
//     bound Lo of either direction model (DefaultBatchWindow), and
//     every predicted latency is clamped to at least Lo — so when a
//     flush at t+window resolves a packet that arrived at t, its
//     delivery time t+latency has not yet passed. Continuations are
//     scheduled at the absolute arrival-time-plus-latency instant,
//     matching the inline path exactly.
//
// The residual divergence risk versus sequential inference is event
// tie-breaking: continuations are inserted into the event queue at
// flush time rather than arrival time, so an unrelated event scheduled
// for the *exact same timestamp* could order differently. Latencies
// are continuous model outputs, making such ties vanishingly rare; the
// golden determinism test (scheduler_test.go) checks end-to-end metric
// equality empirically.
type InferenceScheduler struct {
	sim    *sim.Simulator
	window sim.Time
	models [2]*ml.BatchedStatefulModel // indexed by Direction
	queues [2][][]schedReq             // [direction][lane] FIFO
	pend   int
	armed  bool

	// Flushes counts flush events, BatchedSteps the model steps issued
	// through fused calls, and MaxBatch the largest single fused step.
	Flushes      uint64
	BatchedSteps uint64
	MaxBatch     int

	// flush scratch, reused across rounds
	lanes []int
	xs    [][]float64
	want  []bool
	preds []ml.Prediction
	reqs  []*schedReq
}

// schedReq is one deferred model step: a boundary packet awaiting its
// prediction (fn != nil) or a feeder advance (feed == true).
type schedReq struct {
	d    *dirRuntime
	info PacketInfo
	at   sim.Time
	feed bool
	fn   func(Outcome)
}

// NewInferenceScheduler builds a scheduler over the shared direction
// models. Lanes are added per Mimic via Mimic.AttachScheduler. The
// worker pool is the process-wide shared pool.
func NewInferenceScheduler(s *sim.Simulator, models *MimicModels, window sim.Time) *InferenceScheduler {
	if window < 0 {
		window = 0
	}
	return &InferenceScheduler{
		sim:    s,
		window: window,
		models: [2]*ml.BatchedStatefulModel{
			Ingress: ml.NewBatchedStatefulModel(models.Ingress.Model, 0, ml.SharedPool()),
			Egress:  ml.NewBatchedStatefulModel(models.Egress.Model, 0, ml.SharedPool()),
		},
	}
}

// DefaultBatchWindow returns the largest collection window that cannot
// violate causality: the smaller of the two directions' latency lower
// bounds (every prediction is clamped to at least that latency, so a
// flush after the window always precedes the earliest delivery).
func DefaultBatchWindow(models *MimicModels) sim.Time {
	lo := models.Ingress.Bounds.Lo
	if models.Egress.Bounds.Lo < lo {
		lo = models.Egress.Bounds.Lo
	}
	if lo <= 0 {
		return 0
	}
	return sim.FromSeconds(lo)
}

// Window reports the collection window.
func (is *InferenceScheduler) Window() sim.Time { return is.window }

// addMimic registers one Mimic: a lane in each direction model plus its
// request queues. Both directions share the lane index.
func (is *InferenceScheduler) addMimic() int {
	lane := is.models[Ingress].AddLane()
	if l2 := is.models[Egress].AddLane(); l2 != lane {
		panic("core: scheduler lane books diverged")
	}
	is.queues[Ingress] = append(is.queues[Ingress], nil)
	is.queues[Egress] = append(is.queues[Egress], nil)
	return lane
}

// laneSteps reports the total model steps executed for one lane across
// both directions (Figure 23 compute accounting).
func (is *InferenceScheduler) laneSteps(lane int) uint64 {
	return is.models[Ingress].LaneSteps[lane] + is.models[Egress].LaneSteps[lane]
}

// enqueue defers one model step and arms the flush timer if idle.
func (is *InferenceScheduler) enqueue(lane int, dir Direction, d *dirRuntime, info PacketInfo, feed bool, fn func(Outcome)) {
	is.queues[dir][lane] = append(is.queues[dir][lane], schedReq{
		d: d, info: info, at: is.sim.Now(), feed: feed, fn: fn,
	})
	is.pend++
	if !is.armed {
		is.armed = true
		is.sim.At(is.sim.Now()+is.window, is.flush)
	}
}

// Flush services every pending request immediately. Compositions call
// it after RunUntil so tail-end packets receive the same predictions,
// RNG draws, and drop accounting they would have inline.
func (is *InferenceScheduler) Flush() { is.flush() }

func (is *InferenceScheduler) flush() {
	is.armed = false
	if is.pend == 0 {
		return
	}
	is.Flushes++
	obsInferFlushes.Inc()
	for dir := range is.queues {
		q := is.queues[dir]
		for round := 0; ; round++ {
			// Round k gathers the k-th pending request of every lane, so
			// per-lane processing order matches arrival order exactly.
			is.lanes, is.xs, is.want = is.lanes[:0], is.xs[:0], is.want[:0]
			is.reqs = is.reqs[:0]
			for lane := range q {
				if round >= len(q[lane]) {
					continue
				}
				req := &q[lane][round]
				if req.feed {
					// Feeder: the bank draw happens now, in lane round
					// order, preserving the lane's RNG sequence.
					info := req.d.dm.InfoBank[req.d.rng.Intn(len(req.d.dm.InfoBank))]
					info.ArrivalTime = req.at
					req.info = info
				}
				is.lanes = append(is.lanes, lane)
				is.xs = append(is.xs, req.d.ex.Features(req.info))
				is.want = append(is.want, !req.feed)
				is.reqs = append(is.reqs, req)
			}
			if len(is.lanes) == 0 {
				break
			}
			if cap(is.preds) < len(is.lanes) {
				is.preds = make([]ml.Prediction, len(is.lanes))
			}
			is.preds = is.preds[:len(is.lanes)]
			is.models[dir].StepLanes(is.lanes, is.xs, is.want, is.preds)
			is.BatchedSteps += uint64(len(is.lanes))
			obsInferSteps.Add(uint64(len(is.lanes)))
			if len(is.lanes) > is.MaxBatch {
				is.MaxBatch = len(is.lanes)
			}
			for i, req := range is.reqs {
				if req.feed {
					continue
				}
				out := req.d.applyPrediction(req.info, is.preds[i])
				if req.fn != nil {
					req.fn(out)
				}
			}
		}
		for lane := range q {
			q[lane] = q[lane][:0] // keep backing arrays across flushes
		}
	}
	is.pend = 0
}
