// Package netsim is the packet-level network substrate: links with
// bandwidth and propagation delay, switches with pluggable output queues
// (DropTail, ECN threshold marking, strict priority), and a FatTree
// forwarding fabric with per-flow ECMP. It plays the role of OMNeT++/INET
// in the original MimicNet.
package netsim

import (
	"fmt"

	"mimicnet/internal/sim"
)

// Header sizes in bytes, loosely TCP/IPv4-shaped. Only the totals matter
// to the simulation.
const (
	HeaderBytes = 40   // IP + transport header
	MTU         = 1500 // maximum packet size on the wire
	MSS         = MTU - HeaderBytes
)

// Packet is the unit of simulation. Packets are created by transports and
// routed hop-by-hop along a precomputed up-down path.
type Packet struct {
	ID     uint64 // globally unique, for trace matching
	FlowID uint64 // connection identity
	Src    int    // source host (dense topo ID)
	Dst    int    // destination host

	Seq     int64 // first payload byte index (data) or next expected (ACK)
	Payload int   // payload bytes
	Size    int   // total wire size = Payload + HeaderBytes

	IsAck    bool
	AckSeq   int64 // cumulative ACK (valid when IsAck)
	SackHint int64 // highest sequence seen out-of-order, 0 if none

	ECT       bool  // ECN-capable transport
	CE        bool  // congestion experienced (marked in network)
	ECNEcho   bool  // receiver echoes CE back to sender (valid when IsAck)
	Priority  int   // priority band (Homa); 0 = highest
	GrantseqG int64 // Homa grant offset (valid for grant packets)
	GrantPrio int   // priority band the sender should use for granted data
	IsGrant   bool

	Hash uint64 // ECMP hash, fixed per flow

	SentAt sim.Time // transport-level send time (for RTT samples)
	EchoTS sim.Time // timestamp echoed by the receiver (valid when IsAck)

	FlowBytes int64 // total flow size, so receivers can track completion

	// Path is the node sequence from source to destination host; Hop
	// indexes the node the packet currently sits at.
	Path []int
	Hop  int
}

// String summarizes the packet for debugging.
func (p *Packet) String() string {
	kind := "data"
	if p.IsAck {
		kind = "ack"
	}
	if p.IsGrant {
		kind = "grant"
	}
	return fmt.Sprintf("pkt(%d %s flow=%d %d->%d seq=%d len=%d)", p.ID, kind, p.FlowID, p.Src, p.Dst, p.Seq, p.Payload)
}

// NextNode returns the node after the current hop, or -1 at the path end.
func (p *Packet) NextNode() int {
	if p.Hop+1 >= len(p.Path) {
		return -1
	}
	return p.Path[p.Hop+1]
}
