package netsim

import (
	"mimicnet/internal/sim"
)

// Port models one direction of a physical link: a queue feeding a
// transmitter of fixed rate, followed by a propagation delay. Ports are
// the only place simulated time is spent in the network, matching the
// store-and-forward behavior of the switches MimicNet learns.
type Port struct {
	From, To int // node IDs, for instrumentation

	// Down marks the link failed: offered packets are dropped.
	Down bool

	sim   *sim.Simulator
	rate  float64  // bits per second
	prop  sim.Time // propagation delay
	queue Queue
	busy  bool

	// deliver is invoked at the remote end once serialization and
	// propagation complete.
	deliver func(*Packet)

	// remote, when set, schedules the propagation leg on another logical
	// process instead of this port's own simulator. Sharded fabrics set
	// it on cluster-boundary ports: the link's propagation delay is
	// exactly the PDES lookahead, so the cross-LP send never violates
	// causality.
	remote func(at sim.Time, fn func())

	// hooks (may be nil)
	onDrop func(*Packet)
	onSent func(*Packet) // after serialization completes at this port

	// counters
	Delivered uint64
	Dropped   uint64
}

// NewPort creates a port. rateBps is the line rate in bits/second.
func NewPort(s *sim.Simulator, from, to int, rateBps float64, prop sim.Time, q Queue, deliver func(*Packet)) *Port {
	return &Port{From: from, To: to, sim: s, rate: rateBps, prop: prop, queue: q, deliver: deliver}
}

// QueueLen returns the instantaneous queue length in packets.
func (p *Port) QueueLen() int { return p.queue.Len() }

// QueueBytes returns the instantaneous queue depth in bytes.
func (p *Port) QueueBytes() int { return p.queue.Bytes() }

// SetDropHook registers a callback invoked when the queue rejects a
// packet.
func (p *Port) SetDropHook(fn func(*Packet)) { p.onDrop = fn }

// SetSentHook registers a callback invoked when a packet finishes
// serializing out of this port.
func (p *Port) SetSentHook(fn func(*Packet)) { p.onSent = fn }

// SetRemote routes the propagation leg through a cross-LP scheduler:
// arrivals execute on the destination's logical process at the given
// absolute time.
func (p *Port) SetRemote(fn func(at sim.Time, run func())) { p.remote = fn }

// SerializationDelay returns the time to clock a packet of the given wire
// size onto the link.
func (p *Port) SerializationDelay(bytes int) sim.Time {
	return sim.Time(float64(bytes*8) / p.rate * float64(sim.Second))
}

// Send offers a packet to the port. If the transmitter is idle it begins
// serializing immediately; otherwise the packet is queued (and possibly
// dropped or ECN-marked by the queue discipline). Packets offered to a
// failed link are dropped.
func (p *Port) Send(pkt *Packet) {
	if p.Down {
		p.Dropped++
		if p.onDrop != nil {
			p.onDrop(pkt)
		}
		return
	}
	if !p.busy {
		p.transmit(pkt)
		return
	}
	if !p.queue.Enqueue(pkt) {
		p.Dropped++
		if p.onDrop != nil {
			p.onDrop(pkt)
		}
	}
}

func (p *Port) transmit(pkt *Packet) {
	p.busy = true
	p.sim.After(p.SerializationDelay(pkt.Size), func() {
		if p.onSent != nil {
			p.onSent(pkt)
		}
		// Propagation: the packet arrives remotely prop later; the
		// transmitter is free immediately.
		arrive := func() {
			p.Delivered++
			p.deliver(pkt)
		}
		if p.remote != nil {
			p.remote(p.sim.Now()+p.prop, arrive)
		} else {
			p.sim.After(p.prop, arrive)
		}
		if next := p.queue.Dequeue(); next != nil {
			p.transmit(next)
		} else {
			p.busy = false
		}
	})
}
