package netsim

import (
	"testing"

	"mimicnet/internal/sim"
	"mimicnet/internal/topo"
)

// TestShardedFabricMatchesSequential checks the netsim half of the
// sharding tentpole in isolation: a fabric partitioned across two LPs at
// the cluster boundary must deliver every packet at exactly the same
// simulated time as the single-process fabric, with matching counters.
func TestShardedFabricMatchesSequential(t *testing.T) {
	tc := topo.Config{
		Clusters: 2, RacksPerCluster: 2, HostsPerRack: 2,
		AggPerCluster: 2, CoresPerAgg: 1,
	}
	tp := topo.New(tc)
	link := DefaultLinkConfig()
	const horizon = 200 * sim.Millisecond

	type delivery struct {
		id uint64
		at sim.Time
	}
	run := func(sharded bool) (map[int][]delivery, *Fabric, *sim.Parallel) {
		var f *Fabric
		var par *sim.Parallel
		simFor := func(node int) *sim.Simulator { return f.Sim }
		if sharded {
			par = sim.NewParallel(2, link.Delay)
			par.NumWorkers = 4
			shardOf := make([]int, tp.Nodes())
			for n := range shardOf {
				if tp.ClusterOf(n) == 1 {
					shardOf[n] = 1
				}
			}
			f = NewShardedFabric(par.LPs, shardOf, tp, link)
			simFor = func(node int) *sim.Simulator {
				return par.LPs[shardOf[node]].Sim
			}
		} else {
			f = NewFabric(sim.New(), tp, link)
		}
		got := make(map[int][]delivery)
		for h := 0; h < tp.Hosts(); h++ {
			h := h
			s := simFor(h)
			f.RegisterHost(h, func(pkt *Packet) {
				got[h] = append(got[h], delivery{pkt.ID, s.Now()})
			})
		}
		// Bidirectional cross-cluster fan-out, several packets per pair so
		// queues build and serialize: every packet crosses an LP boundary
		// twice (agg->core, core->agg).
		id := uint64(0)
		for i := 0; i < tp.Hosts()/2; i++ {
			src := i
			dst := tp.Hosts()/2 + i
			for k := 0; k < 5; k++ {
				for _, pair := range [][2]int{{src, dst}, {dst, src}} {
					id++
					pkt := &Packet{
						ID: id, Src: pair[0], Dst: pair[1], Size: MTU,
						Hash: id, Path: tp.Path(pair[0], pair[1], id),
					}
					f.Inject(pkt)
				}
			}
		}
		if sharded {
			par.Run(horizon)
		} else {
			f.Sim.RunUntil(horizon)
		}
		return got, f, par
	}

	seq, seqF, _ := run(false)
	shr, shrF, par := run(true)

	if seqF.Delivered() == 0 {
		t.Fatal("sequential run delivered nothing")
	}
	if got, want := shrF.Delivered(), seqF.Delivered(); got != want {
		t.Fatalf("delivered %d vs %d", got, want)
	}
	if got, want := shrF.Injected(), seqF.Injected(); got != want {
		t.Errorf("injected %d vs %d", got, want)
	}
	if got, want := shrF.Drops(), seqF.Drops(); got != want {
		t.Errorf("drops %d vs %d", got, want)
	}
	for h, want := range seq {
		got := shr[h]
		if len(got) != len(want) {
			t.Fatalf("host %d: %d deliveries vs %d", h, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("host %d delivery %d: %+v vs %+v", h, i, got[i], want[i])
			}
		}
	}
	if par.Barriers == 0 {
		t.Error("sharded run used no synchronization windows")
	}
	if par.CausalityClamps != 0 {
		t.Errorf("%d causality clamps on link-delay lookahead", par.CausalityClamps)
	}
}

// TestShardedFabricLinkFailure checks FailLinkAt on a sharded fabric:
// a failed boundary link drops packets on the transmitting LP.
func TestShardedFabricLinkFailure(t *testing.T) {
	tc := topo.Config{
		Clusters: 2, RacksPerCluster: 1, HostsPerRack: 1,
		AggPerCluster: 1, CoresPerAgg: 1,
	}
	tp := topo.New(tc)
	link := DefaultLinkConfig()
	par := sim.NewParallel(2, link.Delay)
	shardOf := make([]int, tp.Nodes())
	for n := range shardOf {
		if tp.ClusterOf(n) == 1 {
			shardOf[n] = 1
		}
	}
	f := NewShardedFabric(par.LPs, shardOf, tp, link)
	src, dst := tp.HostID(0, 0, 0), tp.HostID(1, 0, 0)
	delivered := 0
	f.RegisterHost(dst, func(pkt *Packet) { delivered++ })
	f.RegisterHost(src, func(pkt *Packet) {})
	path := tp.Path(src, dst, 0)
	// The agg->core hop leaves cluster 0; fail it from the start.
	var agg, core int
	for i, n := range path {
		if tp.KindOf(n) == topo.KindCore {
			agg, core = path[i-1], n
			break
		}
	}
	f.FailLinkAt(agg, core, 0, 50*sim.Millisecond)
	inject := func(at sim.Time, id uint64) {
		par.LPs[0].Sim.At(at, func() {
			f.Inject(&Packet{ID: id, Src: src, Dst: dst, Size: 100, Path: path})
		})
	}
	inject(sim.Millisecond, 1)          // while down: dropped
	inject(60*sim.Millisecond, 2)       // after recovery: delivered
	par.Run(100 * sim.Millisecond)
	if delivered != 1 {
		t.Errorf("delivered %d packets, want 1 (one dropped during failure)", delivered)
	}
	if f.Drops() != 1 {
		t.Errorf("Drops = %d, want 1", f.Drops())
	}
}
