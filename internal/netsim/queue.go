package netsim

// Queue is an output-port packet queue discipline. Implementations decide
// admission (drop), marking (ECN), and dequeue order.
type Queue interface {
	// Enqueue offers a packet. It returns false if the packet is dropped.
	// The queue may set pkt.CE as a side effect (ECN marking).
	Enqueue(pkt *Packet) bool
	// Dequeue removes and returns the next packet to transmit, or nil.
	Dequeue() *Packet
	// Len returns the number of queued packets.
	Len() int
	// Bytes returns the number of queued bytes.
	Bytes() int
}

// DropTail is a FIFO queue with a packet-count capacity, the paper's base
// configuration.
type DropTail struct {
	Capacity int // max queued packets
	pkts     []*Packet
	bytes    int
}

// NewDropTail returns a FIFO with the given packet capacity.
func NewDropTail(capacity int) *DropTail {
	return &DropTail{Capacity: capacity}
}

// Enqueue appends unless full.
func (q *DropTail) Enqueue(pkt *Packet) bool {
	if len(q.pkts) >= q.Capacity {
		return false
	}
	q.pkts = append(q.pkts, pkt)
	q.bytes += pkt.Size
	return true
}

// Dequeue pops the head.
func (q *DropTail) Dequeue() *Packet {
	if len(q.pkts) == 0 {
		return nil
	}
	pkt := q.pkts[0]
	q.pkts[0] = nil
	q.pkts = q.pkts[1:]
	q.bytes -= pkt.Size
	return pkt
}

// Len returns queued packet count.
func (q *DropTail) Len() int { return len(q.pkts) }

// Bytes returns queued byte count.
func (q *DropTail) Bytes() int { return q.bytes }

// ECNQueue is DropTail plus DCTCP-style threshold marking: packets
// enqueued while the instantaneous queue length is at least K packets get
// CE set (if ECN-capable). K is the knob swept in the paper's Figure 13.
type ECNQueue struct {
	DropTail
	K int // marking threshold in packets
}

// NewECNQueue returns an ECN threshold queue.
func NewECNQueue(capacity, k int) *ECNQueue {
	return &ECNQueue{DropTail: DropTail{Capacity: capacity}, K: k}
}

// Enqueue marks then delegates to DropTail admission.
func (q *ECNQueue) Enqueue(pkt *Packet) bool {
	if pkt.ECT && len(q.pkts) >= q.K {
		pkt.CE = true
	}
	return q.DropTail.Enqueue(pkt)
}

// PriorityQueue implements strict-priority scheduling over N bands with a
// shared capacity; band 0 is served first. Homa's receiver-driven
// transport relies on this (paper §9.4.2: "a challenging extra feature for
// MimicNet as packets can be reordered").
type PriorityQueue struct {
	Capacity int
	bands    [][]*Packet
	len      int
	bytes    int
}

// NewPriorityQueue returns a strict-priority queue with the given number
// of bands and total packet capacity.
func NewPriorityQueue(bands, capacity int) *PriorityQueue {
	if bands < 1 {
		panic("netsim: need at least one priority band")
	}
	return &PriorityQueue{Capacity: capacity, bands: make([][]*Packet, bands)}
}

// Enqueue places the packet in its priority band unless the shared
// capacity is exhausted. Out-of-range priorities are clamped.
func (q *PriorityQueue) Enqueue(pkt *Packet) bool {
	if q.len >= q.Capacity {
		return false
	}
	b := pkt.Priority
	if b < 0 {
		b = 0
	}
	if b >= len(q.bands) {
		b = len(q.bands) - 1
	}
	q.bands[b] = append(q.bands[b], pkt)
	q.len++
	q.bytes += pkt.Size
	return true
}

// Dequeue serves the lowest-numbered non-empty band.
func (q *PriorityQueue) Dequeue() *Packet {
	for b := range q.bands {
		if len(q.bands[b]) == 0 {
			continue
		}
		pkt := q.bands[b][0]
		q.bands[b][0] = nil
		q.bands[b] = q.bands[b][1:]
		q.len--
		q.bytes -= pkt.Size
		return pkt
	}
	return nil
}

// Len returns queued packet count.
func (q *PriorityQueue) Len() int { return q.len }

// Bytes returns queued byte count.
func (q *PriorityQueue) Bytes() int { return q.bytes }

// QueueFactory builds a fresh queue for each output port.
type QueueFactory func() Queue

// DropTailFactory returns a factory for DropTail queues.
func DropTailFactory(capacity int) QueueFactory {
	return func() Queue { return NewDropTail(capacity) }
}

// ECNFactory returns a factory for ECN threshold queues.
func ECNFactory(capacity, k int) QueueFactory {
	return func() Queue { return NewECNQueue(capacity, k) }
}

// PriorityFactory returns a factory for strict-priority queues.
func PriorityFactory(bands, capacity int) QueueFactory {
	return func() Queue { return NewPriorityQueue(bands, capacity) }
}
