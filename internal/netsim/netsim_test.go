package netsim

import (
	"testing"
	"testing/quick"

	"mimicnet/internal/sim"
	"mimicnet/internal/stats"
	"mimicnet/internal/topo"
)

func TestDropTail(t *testing.T) {
	q := NewDropTail(2)
	a := &Packet{ID: 1, Size: 100}
	b := &Packet{ID: 2, Size: 200}
	c := &Packet{ID: 3, Size: 300}
	if !q.Enqueue(a) || !q.Enqueue(b) {
		t.Fatal("enqueue under capacity failed")
	}
	if q.Enqueue(c) {
		t.Fatal("enqueue over capacity succeeded")
	}
	if q.Len() != 2 || q.Bytes() != 300 {
		t.Errorf("Len=%d Bytes=%d", q.Len(), q.Bytes())
	}
	if got := q.Dequeue(); got != a {
		t.Errorf("FIFO violated: got %v", got)
	}
	if got := q.Dequeue(); got != b {
		t.Errorf("FIFO violated: got %v", got)
	}
	if q.Dequeue() != nil {
		t.Error("empty dequeue should be nil")
	}
	if q.Bytes() != 0 {
		t.Errorf("Bytes=%d after drain", q.Bytes())
	}
}

func TestECNQueueMarksAboveThreshold(t *testing.T) {
	q := NewECNQueue(10, 2)
	for i := 0; i < 2; i++ {
		pkt := &Packet{ECT: true, Size: 100}
		q.Enqueue(pkt)
		if pkt.CE {
			t.Errorf("packet %d marked below threshold", i)
		}
	}
	marked := &Packet{ECT: true, Size: 100}
	q.Enqueue(marked)
	if !marked.CE {
		t.Error("packet at threshold not marked")
	}
	nonECT := &Packet{ECT: false, Size: 100}
	q.Enqueue(nonECT)
	if nonECT.CE {
		t.Error("non-ECT packet marked")
	}
}

func TestPriorityQueueOrdering(t *testing.T) {
	q := NewPriorityQueue(3, 10)
	lo := &Packet{ID: 1, Priority: 2, Size: 1}
	hi := &Packet{ID: 2, Priority: 0, Size: 1}
	mid := &Packet{ID: 3, Priority: 1, Size: 1}
	clamped := &Packet{ID: 4, Priority: 99, Size: 1}
	neg := &Packet{ID: 5, Priority: -1, Size: 1}
	for _, p := range []*Packet{lo, hi, mid, clamped, neg} {
		if !q.Enqueue(p) {
			t.Fatal("enqueue failed")
		}
	}
	wantOrder := []uint64{2, 5, 3, 1, 4} // prio 0: hi, neg; 1: mid; 2: lo, clamped
	for i, want := range wantOrder {
		got := q.Dequeue()
		if got == nil || got.ID != want {
			t.Fatalf("dequeue %d = %v, want ID %d", i, got, want)
		}
	}
	if q.Len() != 0 || q.Bytes() != 0 {
		t.Error("queue not empty after drain")
	}
}

func TestPriorityQueueCapacityShared(t *testing.T) {
	q := NewPriorityQueue(2, 2)
	q.Enqueue(&Packet{Priority: 0, Size: 1})
	q.Enqueue(&Packet{Priority: 1, Size: 1})
	if q.Enqueue(&Packet{Priority: 0, Size: 1}) {
		t.Error("shared capacity not enforced")
	}
}

func TestPriorityQueueZeroBandsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewPriorityQueue(0, 1)
}

func TestPortSerializationAndPropagation(t *testing.T) {
	s := sim.New()
	var deliveredAt sim.Time
	// 1000 bytes at 8 Mbps = 1 ms serialization; + 0.5 ms propagation.
	p := NewPort(s, 0, 1, 8e6, 500*sim.Microsecond, NewDropTail(10), func(pkt *Packet) {
		deliveredAt = s.Now()
	})
	p.Send(&Packet{Size: 1000})
	s.Run()
	want := 1500 * sim.Microsecond
	if deliveredAt != want {
		t.Errorf("delivered at %v, want %v", deliveredAt, want)
	}
	if p.Delivered != 1 {
		t.Errorf("Delivered = %d", p.Delivered)
	}
}

func TestPortBackToBackSerialization(t *testing.T) {
	s := sim.New()
	var times []sim.Time
	p := NewPort(s, 0, 1, 8e6, 0, NewDropTail(10), func(pkt *Packet) {
		times = append(times, s.Now())
	})
	// Two packets: second must wait for first's serialization.
	p.Send(&Packet{Size: 1000})
	p.Send(&Packet{Size: 1000})
	s.Run()
	if len(times) != 2 {
		t.Fatalf("delivered %d packets", len(times))
	}
	if times[1]-times[0] != 1*sim.Millisecond {
		t.Errorf("spacing = %v, want 1ms", times[1]-times[0])
	}
}

func TestPortDropsWhenQueueFull(t *testing.T) {
	s := sim.New()
	var drops int
	p := NewPort(s, 0, 1, 8e6, 0, NewDropTail(1), func(pkt *Packet) {})
	p.SetDropHook(func(pkt *Packet) { drops++ })
	// First transmits, second queues, third drops.
	p.Send(&Packet{Size: 1000})
	p.Send(&Packet{Size: 1000})
	p.Send(&Packet{Size: 1000})
	if p.QueueLen() != 1 {
		t.Errorf("QueueLen = %d, want 1", p.QueueLen())
	}
	if p.QueueBytes() != 1000 {
		t.Errorf("QueueBytes = %d", p.QueueBytes())
	}
	s.Run()
	if drops != 1 || p.Dropped != 1 {
		t.Errorf("drops = %d / %d, want 1", drops, p.Dropped)
	}
}

func TestPortSentHook(t *testing.T) {
	s := sim.New()
	sent := 0
	p := NewPort(s, 0, 1, 8e6, sim.Millisecond, NewDropTail(1), func(pkt *Packet) {})
	p.SetSentHook(func(pkt *Packet) { sent++ })
	p.Send(&Packet{Size: 100})
	s.Run()
	if sent != 1 {
		t.Errorf("sent hook fired %d times", sent)
	}
}

func newTestFabric() (*sim.Simulator, *topo.Topology, *Fabric) {
	s := sim.New()
	tp := topo.New(topo.Config{
		Clusters: 2, RacksPerCluster: 2, HostsPerRack: 2,
		AggPerCluster: 2, CoresPerAgg: 1,
	})
	f := NewFabric(s, tp, DefaultLinkConfig())
	return s, tp, f
}

func TestFabricDeliversInterCluster(t *testing.T) {
	s, tp, f := newTestFabric()
	src := tp.HostID(0, 0, 0)
	dst := tp.HostID(1, 1, 1)
	var got *Packet
	var at sim.Time
	f.RegisterHost(dst, func(pkt *Packet) { got = pkt; at = s.Now() })
	path := tp.Path(src, dst, 5)
	f.Inject(&Packet{ID: 1, Src: src, Dst: dst, Size: 1000, Path: path})
	s.Run()
	if got == nil {
		t.Fatal("packet not delivered")
	}
	// 6 links * (80 µs serialization @100Mbps + 500 µs prop).
	wantSer := sim.Time(float64(1000*8) / 100e6 * float64(sim.Second))
	want := 6 * (wantSer + 500*sim.Microsecond)
	if at != want {
		t.Errorf("delivered at %v, want %v", at, want)
	}
	if f.Delivered() != 1 || f.Injected() != 1 {
		t.Errorf("counters: injected=%d delivered=%d", f.Injected(), f.Delivered())
	}
}

func TestFabricLoopback(t *testing.T) {
	s, tp, f := newTestFabric()
	h := tp.HostID(0, 0, 0)
	delivered := false
	f.RegisterHost(h, func(pkt *Packet) { delivered = true })
	f.Inject(&Packet{Src: h, Dst: h, Size: 100, Path: []int{h}})
	s.Run()
	if !delivered {
		t.Error("loopback packet not delivered")
	}
}

func TestFabricTaps(t *testing.T) {
	s, tp, f := newTestFabric()
	src := tp.HostID(0, 0, 0)
	dst := tp.HostID(1, 0, 0)
	var sends, arrives int
	f.Taps.OnSend = func(from, to int, pkt *Packet, at sim.Time) { sends++ }
	f.Taps.OnArrive = func(node int, pkt *Packet, at sim.Time) { arrives++ }
	f.RegisterHost(dst, func(pkt *Packet) {})
	path := tp.Path(src, dst, 0)
	f.Inject(&Packet{Src: src, Dst: dst, Size: 100, Path: path})
	s.Run()
	wantHops := len(path) - 1
	if sends != wantHops {
		t.Errorf("OnSend fired %d times, want %d", sends, wantHops)
	}
	if arrives != wantHops {
		t.Errorf("OnArrive fired %d times, want %d", arrives, wantHops)
	}
}

func TestFabricDropTap(t *testing.T) {
	s := sim.New()
	tp := topo.New(topo.Config{
		Clusters: 1, RacksPerCluster: 1, HostsPerRack: 3,
		AggPerCluster: 1, CoresPerAgg: 1,
	})
	link := DefaultLinkConfig()
	link.SwitchQueue = DropTailFactory(1)
	f := NewFabric(s, tp, link)
	dst := tp.HostID(0, 0, 2)
	var drops int
	f.Taps.OnDrop = func(from, to int, pkt *Packet, at sim.Time) { drops++ }
	f.RegisterHost(dst, func(pkt *Packet) {})
	// Fan-in: two senders to one host through the shared ToR port.
	for _, src := range []int{tp.HostID(0, 0, 0), tp.HostID(0, 0, 1)} {
		for i := 0; i < 20; i++ {
			f.Inject(&Packet{Src: src, Dst: dst, Size: MTU, Path: tp.Path(src, dst, 0)})
		}
	}
	s.Run()
	if drops == 0 || f.Drops() == 0 {
		t.Error("expected fan-in drops with tiny queue")
	}
	if f.Delivered()+f.Drops() != f.Injected() {
		t.Errorf("conservation violated: %d delivered + %d dropped != %d injected",
			f.Delivered(), f.Drops(), f.Injected())
	}
}

func TestFabricPanicsOnBadPath(t *testing.T) {
	_, tp, f := newTestFabric()
	defer func() {
		if recover() == nil {
			t.Error("expected panic for path not starting at src")
		}
	}()
	f.Inject(&Packet{Src: tp.HostID(0, 0, 0), Dst: 1, Path: []int{99}})
}

func TestFabricQueueLens(t *testing.T) {
	_, _, f := newTestFabric()
	lens := f.QueueLens()
	if len(lens) == 0 {
		t.Fatal("no ports")
	}
	for k, v := range lens {
		if v != 0 {
			t.Errorf("port %v has nonzero initial queue %d", k, v)
		}
	}
}

func TestFabricRequiresQueueFactory(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic without queue factory")
		}
	}()
	NewFabric(sim.New(), topo.New(topo.DefaultConfig()), LinkConfig{RateBps: 1e6})
}

// Property: every injected packet is either delivered or dropped —
// conservation under arbitrary fan-in load.
func TestPacketConservationProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%50 + 1
		s := sim.New()
		tp := topo.New(topo.Config{
			Clusters: 2, RacksPerCluster: 1, HostsPerRack: 2,
			AggPerCluster: 1, CoresPerAgg: 1,
		})
		link := DefaultLinkConfig()
		link.SwitchQueue = DropTailFactory(3)
		fab := NewFabric(s, tp, link)
		for h := 0; h < tp.Hosts(); h++ {
			fab.RegisterHost(h, func(pkt *Packet) {})
		}
		rng := seed
		next := func() int {
			rng = rng*6364136223846793005 + 1442695040888963407
			v := int((rng >> 33) % int64(tp.Hosts()))
			if v < 0 {
				v = -v
			}
			return v
		}
		for i := 0; i < n; i++ {
			src, dst := next(), next()
			if src == dst {
				continue
			}
			fab.Inject(&Packet{
				Src: src, Dst: dst, Size: MTU,
				Path: tp.Path(src, dst, uint64(i)),
			})
		}
		s.Run()
		return fab.Delivered()+fab.Drops() == fab.Injected()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPacketString(t *testing.T) {
	p := &Packet{ID: 7, FlowID: 3, Src: 1, Dst: 2, Seq: 100, Payload: 50}
	if s := p.String(); s == "" {
		t.Error("empty String()")
	}
	ack := &Packet{IsAck: true}
	if s := ack.String(); s == "" || s[4:7] != "0 a" {
		t.Errorf("ack String() = %q", s)
	}
	grant := &Packet{IsGrant: true}
	_ = grant.String()
}

func TestNextNode(t *testing.T) {
	p := &Packet{Path: []int{1, 2, 3}, Hop: 0}
	if p.NextNode() != 2 {
		t.Error("NextNode wrong")
	}
	p.Hop = 2
	if p.NextNode() != -1 {
		t.Error("NextNode at end should be -1")
	}
}

// Property: packets of the same flow (same path, same priority) are
// delivered in injection order — FIFO queues must never reorder a flow.
func TestPerFlowFIFOOrderingProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%40 + 2
		s := sim.New()
		tp := topo.New(topo.Config{
			Clusters: 2, RacksPerCluster: 2, HostsPerRack: 2,
			AggPerCluster: 2, CoresPerAgg: 1,
		})
		fab := NewFabric(s, tp, DefaultLinkConfig())
		src, dst := tp.HostID(0, 0, 0), tp.HostID(1, 1, 1)
		var got []uint64
		fab.RegisterHost(dst, func(pkt *Packet) { got = append(got, pkt.ID) })
		path := tp.Path(src, dst, uint64(seed))
		rng := stats.NewStream(seed)
		at := sim.Time(0)
		for i := 0; i < n; i++ {
			i := i
			at += sim.Time(rng.Intn(200)) * sim.Microsecond
			s.At(at, func() {
				fab.Inject(&Packet{
					ID: uint64(i), Src: src, Dst: dst,
					Size: 100 + rng.Intn(1400), Path: path,
				})
			})
		}
		s.Run()
		if len(got) != n {
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i] < got[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestInjectAtMidPath(t *testing.T) {
	s := sim.New()
	tp := topo.New(topo.DefaultConfig())
	fab := NewFabric(s, tp, DefaultLinkConfig())
	src, dst := tp.HostID(0, 0, 0), tp.HostID(1, 0, 0)
	delivered := false
	fab.RegisterHost(dst, func(pkt *Packet) { delivered = true })
	path := tp.Path(src, dst, 3)
	coreHop := -1
	for i, n := range path {
		if tp.KindOf(n) == topo.KindCore {
			coreHop = i
		}
	}
	pkt := &Packet{Src: src, Dst: dst, Size: 100, Path: path}
	fab.InjectAt(pkt, coreHop)
	s.Run()
	if !delivered {
		t.Fatal("mid-path injection not delivered")
	}
	// Injection at the final hop delivers immediately.
	pkt2 := &Packet{Src: src, Dst: dst, Size: 100, Path: path}
	fab.InjectAt(pkt2, len(path)-1)
	s.Run()
	// Out-of-range hops panic.
	defer func() {
		if recover() == nil {
			t.Error("expected panic for bad hop")
		}
	}()
	fab.InjectAt(&Packet{Path: path}, len(path))
}

func TestInterceptSwallowsAndCounts(t *testing.T) {
	s := sim.New()
	tp := topo.New(topo.DefaultConfig())
	fab := NewFabric(s, tp, DefaultLinkConfig())
	src, dst := tp.HostID(0, 0, 0), tp.HostID(1, 0, 0)
	delivered := 0
	fab.RegisterHost(dst, func(pkt *Packet) { delivered++ })
	fab.SetIntercept(func(node int, pkt *Packet) bool {
		return tp.KindOf(node) == topo.KindAgg && tp.ClusterOf(node) == 1
	})
	fab.Inject(&Packet{Src: src, Dst: dst, Size: 100, Path: tp.Path(src, dst, 0)})
	s.Run()
	if delivered != 0 {
		t.Error("intercepted packet was delivered")
	}
	if fab.Intercepted() != 1 {
		t.Errorf("Intercepted = %d", fab.Intercepted())
	}
	// Clearing the interceptor restores delivery.
	fab.SetIntercept(nil)
	fab.Inject(&Packet{Src: src, Dst: dst, Size: 100, Path: tp.Path(src, dst, 0)})
	s.Run()
	if delivered != 1 {
		t.Error("packet not delivered after clearing interceptor")
	}
}

func TestLinkFailureDropsAndRecovers(t *testing.T) {
	s, tp, f := newTestFabric()
	src, dst := tp.HostID(0, 0, 0), tp.HostID(0, 0, 1) // same rack
	delivered := 0
	var drops int
	f.RegisterHost(dst, func(pkt *Packet) { delivered++ })
	f.Taps.OnDrop = func(from, to int, pkt *Packet, at sim.Time) { drops++ }
	tor := tp.ToRID(0, 0)

	// Fail the host->ToR link from 1ms, recover at 5ms.
	f.FailLinkAt(src, tor, sim.Millisecond, 5*sim.Millisecond)
	send := func(at sim.Time) {
		s.At(at, func() {
			f.Inject(&Packet{Src: src, Dst: dst, Size: 100, Path: tp.Path(src, dst, 0)})
		})
	}
	send(0)                   // before failure: delivered
	send(2 * sim.Millisecond) // during failure: dropped
	send(6 * sim.Millisecond) // after recovery: delivered
	s.Run()
	if delivered != 2 {
		t.Errorf("delivered = %d, want 2", delivered)
	}
	if drops != 1 || f.Drops() != 1 {
		t.Errorf("drops = %d/%d, want 1", drops, f.Drops())
	}
	// Unknown link: no-op.
	f.SetLinkState(9999, 9998, false)
}
