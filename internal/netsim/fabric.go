package netsim

import (
	"fmt"

	"mimicnet/internal/sim"
	"mimicnet/internal/topo"
)

// LinkConfig sets the physical parameters of every link, mirroring the
// paper's evaluation setup (100 Mbps, 500 µs).
type LinkConfig struct {
	RateBps float64  // line rate in bits/second
	Delay   sim.Time // one-way propagation delay

	// SwitchQueue builds the queue for switch-to-anything ports;
	// HostQueue for host NIC egress ports. HostQueue defaults to
	// SwitchQueue when nil.
	SwitchQueue QueueFactory
	HostQueue   QueueFactory
}

// DefaultLinkConfig returns the paper's base parameters with DropTail
// queues of 100 packets.
func DefaultLinkConfig() LinkConfig {
	return LinkConfig{
		RateBps:     100e6,
		Delay:       500 * sim.Microsecond,
		SwitchQueue: DropTailFactory(100),
	}
}

// Taps are instrumentation hooks. MimicNet's training data comes entirely
// from taps placed at the modeled cluster's Core-facing and Host-facing
// junctures (paper §5.1); arbitrary additional instrumentation of the
// observable cluster uses the same mechanism. Taps fire on the logical
// process that owns the tapped node; in sharded fabrics a single tap
// function would be called from multiple goroutines, so taps are only
// supported on single-process fabrics (training runs are single-process).
type Taps struct {
	// OnSend fires when a packet is offered to the port from->to (before
	// any queue/drop decision).
	OnSend func(from, to int, pkt *Packet, at sim.Time)
	// OnArrive fires when a packet arrives at a node (host or switch).
	OnArrive func(node int, pkt *Packet, at sim.Time)
	// OnDrop fires when the port from->to rejects a packet.
	OnDrop func(from, to int, pkt *Packet, at sim.Time)
}

// fabricCounters is one shard's event accounting. Each logical process
// writes only its own cell, so sharded runs count without atomics; the
// struct is padded to a cache line to keep neighboring shards' writes
// from false-sharing.
type fabricCounters struct {
	injected    uint64
	delivered   uint64
	drops       uint64
	intercepted uint64
	_           [4]uint64
}

// Fabric wires a FatTree topology into ports and forwards packets along
// their precomputed up-down paths. A fabric is either single-process
// (NewFabric) or sharded across logical processes (NewShardedFabric), in
// which case each node's ports and arrivals execute on the LP that owns
// the node and cluster-boundary links carry packets between LPs.
type Fabric struct {
	Topo *topo.Topology
	Sim  *sim.Simulator // shard 0's simulator (the only one when single-process)
	Link LinkConfig
	Taps Taps

	lps     []*sim.LP // nil when single-process
	shardOf []int     // node -> owning shard; nil when single-process

	ports map[[2]int]*Port
	hosts []func(*Packet)

	// intercept, when set, is consulted on every node arrival; returning
	// true swallows the packet (MimicNet's shim layer "intercepts packets
	// arriving at the borders of the cluster", paper §7.1).
	intercept func(node int, pkt *Packet) bool

	counters []fabricCounters // one cell per shard
}

// NewFabric builds every directed port of the topology on one simulator.
func NewFabric(s *sim.Simulator, t *topo.Topology, link LinkConfig) *Fabric {
	return build(s, nil, nil, t, link)
}

// NewShardedFabric builds the fabric across logical processes: node n's
// ports, queues, and arrivals execute on lps[shardOf[n]], and ports whose
// endpoints live on different LPs deliver their propagation leg as a
// remote event. The link propagation delay is the natural PDES lookahead
// for such a partitioning. shardOf must assign every node (len =
// t.Nodes()) a shard in [0, len(lps)).
func NewShardedFabric(lps []*sim.LP, shardOf []int, t *topo.Topology, link LinkConfig) *Fabric {
	if len(shardOf) != t.Nodes() {
		panic(fmt.Sprintf("netsim: shardOf covers %d nodes, topology has %d", len(shardOf), t.Nodes()))
	}
	return build(lps[0].Sim, lps, shardOf, t, link)
}

func build(s *sim.Simulator, lps []*sim.LP, shardOf []int, t *topo.Topology, link LinkConfig) *Fabric {
	if link.SwitchQueue == nil {
		panic("netsim: LinkConfig.SwitchQueue is required")
	}
	if link.HostQueue == nil {
		link.HostQueue = link.SwitchQueue
	}
	nShards := 1
	if lps != nil {
		nShards = len(lps)
	}
	f := &Fabric{
		Topo:     t,
		Sim:      s,
		Link:     link,
		lps:      lps,
		shardOf:  shardOf,
		ports:    make(map[[2]int]*Port),
		hosts:    make([]func(*Packet), t.Hosts()),
		counters: make([]fabricCounters, nShards),
	}
	for _, l := range t.Links() {
		f.addPort(l.A, l.B)
		f.addPort(l.B, l.A)
	}
	return f
}

// shard returns the shard index owning a node (always 0 single-process).
func (f *Fabric) shard(node int) int {
	if f.shardOf == nil {
		return 0
	}
	return f.shardOf[node]
}

// simFor returns the simulator executing a node's events.
func (f *Fabric) simFor(node int) *sim.Simulator {
	if f.lps == nil {
		return f.Sim
	}
	return f.lps[f.shardOf[node]].Sim
}

func (f *Fabric) addPort(from, to int) {
	var q Queue
	if f.Topo.KindOf(from) == topo.KindHost {
		q = f.Link.HostQueue()
	} else {
		q = f.Link.SwitchQueue()
	}
	key := [2]int{from, to}
	srcSim := f.simFor(from)
	p := NewPort(srcSim, from, to, f.Link.RateBps, f.Link.Delay, q, func(pkt *Packet) {
		f.arrive(to, pkt)
	})
	srcShard := f.shard(from)
	p.SetDropHook(func(pkt *Packet) {
		f.counters[srcShard].drops++
		if f.Taps.OnDrop != nil {
			f.Taps.OnDrop(from, to, pkt, srcSim.Now())
		}
	})
	if f.lps != nil && srcShard != f.shard(to) {
		src, dst := f.lps[srcShard], f.lps[f.shard(to)]
		p.SetRemote(func(at sim.Time, run func()) { src.SendTo(dst, at, run) })
	}
	f.ports[key] = p
}

// Port returns the directed port from->to, or nil if no such link exists.
func (f *Fabric) Port(from, to int) *Port { return f.ports[[2]int{from, to}] }

// RegisterHost sets the receive callback for a host.
func (f *Fabric) RegisterHost(host int, recv func(*Packet)) {
	f.hosts[host] = recv
}

// Inject sends a packet from its source host. The packet's Path must
// start at the source host; the fabric takes over from there. In sharded
// fabrics the caller must be executing on the source host's LP (transport
// stacks are built per-shard, so this holds by construction).
func (f *Fabric) Inject(pkt *Packet) {
	if len(pkt.Path) == 0 || pkt.Path[0] != pkt.Src {
		panic(fmt.Sprintf("netsim: packet path must start at source: %v", pkt))
	}
	f.counters[f.shard(pkt.Src)].injected++
	pkt.Hop = 0
	if len(pkt.Path) == 1 {
		// Loopback: deliver immediately.
		f.deliverLocal(pkt)
		return
	}
	f.forward(pkt)
}

func (f *Fabric) deliverLocal(pkt *Packet) {
	f.counters[f.shard(pkt.Dst)].delivered++
	if recv := f.hosts[pkt.Dst]; recv != nil {
		recv(pkt)
	}
}

func (f *Fabric) forward(pkt *Packet) {
	from := pkt.Path[pkt.Hop]
	to := pkt.NextNode()
	port := f.ports[[2]int{from, to}]
	if port == nil {
		panic(fmt.Sprintf("netsim: no port %d->%d for %v", from, to, pkt))
	}
	if f.Taps.OnSend != nil {
		f.Taps.OnSend(from, to, pkt, f.simFor(from).Now())
	}
	port.Send(pkt)
}

// SetIntercept installs the arrival interceptor (nil to clear).
func (f *Fabric) SetIntercept(fn func(node int, pkt *Packet) bool) {
	f.intercept = fn
}

// InjectAt resumes a packet's journey from the given hop index of its
// path, as if it had just arrived at pkt.Path[hop]. Mimic shims use this
// to hand predicted egress packets to the real core switches. In sharded
// fabrics the caller must be executing on the LP owning pkt.Path[hop].
func (f *Fabric) InjectAt(pkt *Packet, hop int) {
	if hop < 0 || hop >= len(pkt.Path) {
		panic(fmt.Sprintf("netsim: InjectAt hop %d out of range for %v", hop, pkt))
	}
	f.counters[f.shard(pkt.Path[hop])].injected++
	pkt.Hop = hop
	if hop == len(pkt.Path)-1 {
		f.deliverLocal(pkt)
		return
	}
	f.forward(pkt)
}

func (f *Fabric) arrive(node int, pkt *Packet) {
	pkt.Hop++
	if f.Taps.OnArrive != nil {
		f.Taps.OnArrive(node, pkt, f.simFor(node).Now())
	}
	if f.intercept != nil && f.intercept(node, pkt) {
		f.counters[f.shard(node)].intercepted++
		return
	}
	if pkt.Hop == len(pkt.Path)-1 {
		if node != pkt.Dst {
			panic(fmt.Sprintf("netsim: packet terminated at %d, not dst %d", node, pkt.Dst))
		}
		f.deliverLocal(pkt)
		return
	}
	f.forward(pkt)
}

// Injected returns the number of packets entered into the fabric.
func (f *Fabric) Injected() uint64 { return f.sum(func(c *fabricCounters) uint64 { return c.injected }) }

// Delivered returns the number of packets handed to destination hosts.
func (f *Fabric) Delivered() uint64 {
	return f.sum(func(c *fabricCounters) uint64 { return c.delivered })
}

// Drops returns the number of packets rejected by queues or failed links.
func (f *Fabric) Drops() uint64 { return f.sum(func(c *fabricCounters) uint64 { return c.drops }) }

// Intercepted returns the number of packets swallowed by the intercept
// hook.
func (f *Fabric) Intercepted() uint64 {
	return f.sum(func(c *fabricCounters) uint64 { return c.intercepted })
}

// sum totals one counter across shards. Callers must not race with a
// running sharded simulation; between windows and after Run is safe.
func (f *Fabric) sum(get func(*fabricCounters) uint64) uint64 {
	var total uint64
	for i := range f.counters {
		total += get(&f.counters[i])
	}
	return total
}

// SetLinkState marks the undirected link a<->b up or down. Packets
// forwarded into a down link are dropped (and counted/tapped as drops).
// MimicNet itself assumes failure-free FatTrees (paper §4.2); this
// capability exists so the full-fidelity substrate can explore the
// Appendix-A relaxation of that assumption.
func (f *Fabric) SetLinkState(a, b int, up bool) {
	for _, key := range [][2]int{{a, b}, {b, a}} {
		if p, ok := f.ports[key]; ok {
			p.Down = !up
		}
	}
}

// FailLinkAt schedules a link failure (and optional recovery) in
// simulated time. On a sharded fabric each direction's flip is scheduled
// on the LP owning the transmitting end, since that LP's events are the
// only readers of the port's Down flag.
func (f *Fabric) FailLinkAt(a, b int, at, recoverAt sim.Time) {
	if f.lps == nil {
		f.Sim.At(at, func() { f.SetLinkState(a, b, false) })
		if recoverAt > at {
			f.Sim.At(recoverAt, func() { f.SetLinkState(a, b, true) })
		}
		return
	}
	for _, key := range [][2]int{{a, b}, {b, a}} {
		p, ok := f.ports[key]
		if !ok {
			continue
		}
		s := f.simFor(key[0])
		s.At(at, func() { p.Down = true })
		if recoverAt > at {
			s.At(recoverAt, func() { p.Down = false })
		}
	}
}

// QueueLens snapshots the queue length of every port, keyed by [from, to].
// Useful for debugging and the DCTCP threshold experiments.
func (f *Fabric) QueueLens() map[[2]int]int {
	out := make(map[[2]int]int, len(f.ports))
	for k, p := range f.ports {
		out[k] = p.QueueLen()
	}
	return out
}
