package netsim

import (
	"fmt"

	"mimicnet/internal/sim"
	"mimicnet/internal/topo"
)

// LinkConfig sets the physical parameters of every link, mirroring the
// paper's evaluation setup (100 Mbps, 500 µs).
type LinkConfig struct {
	RateBps float64  // line rate in bits/second
	Delay   sim.Time // one-way propagation delay

	// SwitchQueue builds the queue for switch-to-anything ports;
	// HostQueue for host NIC egress ports. HostQueue defaults to
	// SwitchQueue when nil.
	SwitchQueue QueueFactory
	HostQueue   QueueFactory
}

// DefaultLinkConfig returns the paper's base parameters with DropTail
// queues of 100 packets.
func DefaultLinkConfig() LinkConfig {
	return LinkConfig{
		RateBps:     100e6,
		Delay:       500 * sim.Microsecond,
		SwitchQueue: DropTailFactory(100),
	}
}

// Taps are instrumentation hooks. MimicNet's training data comes entirely
// from taps placed at the modeled cluster's Core-facing and Host-facing
// junctures (paper §5.1); arbitrary additional instrumentation of the
// observable cluster uses the same mechanism.
type Taps struct {
	// OnSend fires when a packet is offered to the port from->to (before
	// any queue/drop decision).
	OnSend func(from, to int, pkt *Packet, at sim.Time)
	// OnArrive fires when a packet arrives at a node (host or switch).
	OnArrive func(node int, pkt *Packet, at sim.Time)
	// OnDrop fires when the port from->to rejects a packet.
	OnDrop func(from, to int, pkt *Packet, at sim.Time)
}

// Fabric wires a FatTree topology into ports and forwards packets along
// their precomputed up-down paths.
type Fabric struct {
	Topo *topo.Topology
	Sim  *sim.Simulator
	Link LinkConfig
	Taps Taps

	ports map[[2]int]*Port
	hosts []func(*Packet)

	// intercept, when set, is consulted on every node arrival; returning
	// true swallows the packet (MimicNet's shim layer "intercepts packets
	// arriving at the borders of the cluster", paper §7.1).
	intercept func(node int, pkt *Packet) bool

	// counters
	Injected    uint64
	Delivered   uint64
	Drops       uint64
	Intercepted uint64
}

// NewFabric builds every directed port of the topology.
func NewFabric(s *sim.Simulator, t *topo.Topology, link LinkConfig) *Fabric {
	if link.SwitchQueue == nil {
		panic("netsim: LinkConfig.SwitchQueue is required")
	}
	if link.HostQueue == nil {
		link.HostQueue = link.SwitchQueue
	}
	f := &Fabric{
		Topo:  t,
		Sim:   s,
		Link:  link,
		ports: make(map[[2]int]*Port),
		hosts: make([]func(*Packet), t.Hosts()),
	}
	for _, l := range t.Links() {
		f.addPort(l.A, l.B)
		f.addPort(l.B, l.A)
	}
	return f
}

func (f *Fabric) addPort(from, to int) {
	var q Queue
	if f.Topo.KindOf(from) == topo.KindHost {
		q = f.Link.HostQueue()
	} else {
		q = f.Link.SwitchQueue()
	}
	key := [2]int{from, to}
	p := NewPort(f.Sim, from, to, f.Link.RateBps, f.Link.Delay, q, func(pkt *Packet) {
		f.arrive(to, pkt)
	})
	p.SetDropHook(func(pkt *Packet) {
		f.Drops++
		if f.Taps.OnDrop != nil {
			f.Taps.OnDrop(from, to, pkt, f.Sim.Now())
		}
	})
	f.ports[key] = p
}

// Port returns the directed port from->to, or nil if no such link exists.
func (f *Fabric) Port(from, to int) *Port { return f.ports[[2]int{from, to}] }

// RegisterHost sets the receive callback for a host.
func (f *Fabric) RegisterHost(host int, recv func(*Packet)) {
	f.hosts[host] = recv
}

// Inject sends a packet from its source host. The packet's Path must
// start at the source host; the fabric takes over from there.
func (f *Fabric) Inject(pkt *Packet) {
	if len(pkt.Path) == 0 || pkt.Path[0] != pkt.Src {
		panic(fmt.Sprintf("netsim: packet path must start at source: %v", pkt))
	}
	f.Injected++
	pkt.Hop = 0
	if len(pkt.Path) == 1 {
		// Loopback: deliver immediately.
		f.deliverLocal(pkt)
		return
	}
	f.forward(pkt)
}

func (f *Fabric) deliverLocal(pkt *Packet) {
	f.Delivered++
	if recv := f.hosts[pkt.Dst]; recv != nil {
		recv(pkt)
	}
}

func (f *Fabric) forward(pkt *Packet) {
	from := pkt.Path[pkt.Hop]
	to := pkt.NextNode()
	port := f.ports[[2]int{from, to}]
	if port == nil {
		panic(fmt.Sprintf("netsim: no port %d->%d for %v", from, to, pkt))
	}
	if f.Taps.OnSend != nil {
		f.Taps.OnSend(from, to, pkt, f.Sim.Now())
	}
	port.Send(pkt)
}

// SetIntercept installs the arrival interceptor (nil to clear).
func (f *Fabric) SetIntercept(fn func(node int, pkt *Packet) bool) {
	f.intercept = fn
}

// InjectAt resumes a packet's journey from the given hop index of its
// path, as if it had just arrived at pkt.Path[hop]. Mimic shims use this
// to hand predicted egress packets to the real core switches.
func (f *Fabric) InjectAt(pkt *Packet, hop int) {
	if hop < 0 || hop >= len(pkt.Path) {
		panic(fmt.Sprintf("netsim: InjectAt hop %d out of range for %v", hop, pkt))
	}
	f.Injected++
	pkt.Hop = hop
	if hop == len(pkt.Path)-1 {
		f.deliverLocal(pkt)
		return
	}
	f.forward(pkt)
}

func (f *Fabric) arrive(node int, pkt *Packet) {
	pkt.Hop++
	if f.Taps.OnArrive != nil {
		f.Taps.OnArrive(node, pkt, f.Sim.Now())
	}
	if f.intercept != nil && f.intercept(node, pkt) {
		f.Intercepted++
		return
	}
	if pkt.Hop == len(pkt.Path)-1 {
		if node != pkt.Dst {
			panic(fmt.Sprintf("netsim: packet terminated at %d, not dst %d", node, pkt.Dst))
		}
		f.deliverLocal(pkt)
		return
	}
	f.forward(pkt)
}

// SetLinkState marks the undirected link a<->b up or down. Packets
// forwarded into a down link are dropped (and counted/tapped as drops).
// MimicNet itself assumes failure-free FatTrees (paper §4.2); this
// capability exists so the full-fidelity substrate can explore the
// Appendix-A relaxation of that assumption.
func (f *Fabric) SetLinkState(a, b int, up bool) {
	for _, key := range [][2]int{{a, b}, {b, a}} {
		if p, ok := f.ports[key]; ok {
			p.Down = !up
		}
	}
}

// FailLinkAt schedules a link failure (and optional recovery) in
// simulated time.
func (f *Fabric) FailLinkAt(a, b int, at, recoverAt sim.Time) {
	f.Sim.At(at, func() { f.SetLinkState(a, b, false) })
	if recoverAt > at {
		f.Sim.At(recoverAt, func() { f.SetLinkState(a, b, true) })
	}
}

// QueueLens snapshots the queue length of every port, keyed by [from, to].
// Useful for debugging and the DCTCP threshold experiments.
func (f *Fabric) QueueLens() map[[2]int]int {
	out := make(map[[2]int]int, len(f.ports))
	for k, p := range f.ports {
		out[k] = p.QueueLen()
	}
	return out
}
