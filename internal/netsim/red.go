package netsim

import "mimicnet/internal/stats"

// REDQueue implements Random Early Detection (Floyd & Jacobson), the AQM
// the fluid-model literature MimicNet cites analyzes [38]. The average
// queue length is tracked with an EWMA; packets are probabilistically
// dropped (or ECN-marked for ECT traffic when MarkInstead is set) between
// MinTh and MaxTh, and always dropped above MaxTh. It serves as an
// additional queue discipline for ablations beyond the paper's DropTail
// and ECN-threshold base configurations.
type REDQueue struct {
	DropTail
	MinTh, MaxTh float64 // thresholds in packets
	MaxP         float64 // drop probability at MaxTh
	Weight       float64 // EWMA weight for the average queue size
	MarkInstead  bool    // mark ECT packets instead of dropping

	avg   float64
	count int // packets since last drop/mark (for uniformization)
	rng   *stats.Stream
}

// NewREDQueue builds a RED queue with the classic gentle parameters.
func NewREDQueue(capacity int, minTh, maxTh, maxP float64, mark bool, seed int64) *REDQueue {
	return &REDQueue{
		DropTail:    DropTail{Capacity: capacity},
		MinTh:       minTh,
		MaxTh:       maxTh,
		MaxP:        maxP,
		Weight:      0.002,
		MarkInstead: mark,
		rng:         stats.NewStream(seed),
	}
}

// Avg exposes the EWMA queue estimate (for tests and instrumentation).
func (q *REDQueue) Avg() float64 { return q.avg }

// Enqueue applies RED admission, then DropTail capacity as a backstop.
func (q *REDQueue) Enqueue(pkt *Packet) bool {
	q.avg = (1-q.Weight)*q.avg + q.Weight*float64(len(q.pkts))
	switch {
	case q.avg < q.MinTh:
		q.count = 0
	case q.avg >= q.MaxTh:
		if !q.congest(pkt) {
			return false
		}
	default:
		p := q.MaxP * (q.avg - q.MinTh) / (q.MaxTh - q.MinTh)
		// Uniformize: probability grows with the count since the last
		// congestion signal, spreading signals out in time.
		den := 1 - float64(q.count)*p
		if den < 1e-9 {
			den = 1e-9
		}
		q.count++
		if q.rng.Float64() < p/den {
			q.count = 0
			if !q.congest(pkt) {
				return false
			}
		}
	}
	return q.DropTail.Enqueue(pkt)
}

// congest signals congestion on pkt: marks it when configured and the
// packet is ECN-capable, otherwise reports that it must be dropped.
// It returns false when the packet should be dropped.
func (q *REDQueue) congest(pkt *Packet) bool {
	if q.MarkInstead && pkt.ECT {
		pkt.CE = true
		return true
	}
	return false
}

// REDFactory returns a factory for RED queues. Each port gets its own
// deterministic random stream derived from its creation order.
func REDFactory(capacity int, minTh, maxTh, maxP float64, mark bool, seed int64) QueueFactory {
	n := int64(0)
	return func() Queue {
		n++
		return NewREDQueue(capacity, minTh, maxTh, maxP, mark, seed+n)
	}
}
