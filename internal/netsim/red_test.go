package netsim

import (
	"testing"
)

func TestREDBelowMinThAdmitsAll(t *testing.T) {
	q := NewREDQueue(100, 10, 30, 0.1, false, 1)
	for i := 0; i < 5; i++ {
		pkt := &Packet{Size: 100}
		if !q.Enqueue(pkt) {
			t.Fatal("packet dropped below MinTh")
		}
		if pkt.CE {
			t.Fatal("packet marked below MinTh")
		}
		q.Dequeue() // keep instantaneous queue near zero
	}
}

func TestREDDropsUnderSustainedLoad(t *testing.T) {
	q := NewREDQueue(1000, 5, 15, 0.5, false, 1)
	drops := 0
	// Fill without draining: the EWMA average climbs past MaxTh.
	for i := 0; i < 4000; i++ {
		if !q.Enqueue(&Packet{Size: 100}) {
			drops++
		}
	}
	if drops == 0 {
		t.Fatal("RED never dropped under sustained overload")
	}
	if q.Avg() < q.MinTh {
		t.Errorf("average %v did not climb above MinTh", q.Avg())
	}
}

func TestREDMarksInsteadOfDroppingECT(t *testing.T) {
	q := NewREDQueue(4000, 5, 15, 0.5, true, 1)
	marked, dropped := 0, 0
	for i := 0; i < 3000; i++ {
		pkt := &Packet{Size: 100, ECT: true}
		if !q.Enqueue(pkt) {
			dropped++
		} else if pkt.CE {
			marked++
		}
	}
	if marked == 0 {
		t.Fatal("mark-mode RED never marked ECT packets")
	}
	if dropped != 0 {
		t.Errorf("mark-mode RED dropped %d ECT packets within capacity", dropped)
	}
	// Non-ECT packets still get dropped in mark mode.
	q2 := NewREDQueue(4000, 5, 15, 0.5, true, 1)
	dropped = 0
	for i := 0; i < 3000; i++ {
		if !q2.Enqueue(&Packet{Size: 100}) {
			dropped++
		}
	}
	if dropped == 0 {
		t.Error("mark-mode RED must drop non-ECT packets under congestion")
	}
}

func TestREDProbabilisticRegion(t *testing.T) {
	// Hold the average between thresholds and observe an intermediate
	// drop rate (neither 0 nor 1).
	q := NewREDQueue(100000, 2, 50, 0.3, false, 42)
	// Prime the average to ~10 by enqueueing without draining until avg
	// crosses MinTh, then alternate enqueue/dequeue to hold it.
	for q.Avg() < 10 {
		q.Enqueue(&Packet{Size: 100})
	}
	admitted, dropped := 0, 0
	for i := 0; i < 5000; i++ {
		if q.Enqueue(&Packet{Size: 100}) {
			admitted++
			q.Dequeue()
			q.Dequeue() // drain a bit faster to hold avg roughly steady
		} else {
			dropped++
		}
	}
	if dropped == 0 {
		t.Error("no probabilistic drops in the RED region")
	}
	if admitted == 0 {
		t.Error("RED dropped everything in the probabilistic region")
	}
}

func TestREDFactoryDistinctStreams(t *testing.T) {
	f := REDFactory(100, 5, 15, 0.5, false, 9)
	a, b := f().(*REDQueue), f().(*REDQueue)
	if a == b {
		t.Fatal("factory returned the same queue")
	}
	if a.rng == b.rng {
		t.Error("factory shared RNG between ports")
	}
}

func TestREDDeterministic(t *testing.T) {
	run := func() (drops int) {
		q := NewREDQueue(1000, 5, 15, 0.5, false, 7)
		for i := 0; i < 2000; i++ {
			if !q.Enqueue(&Packet{Size: 100}) {
				drops++
			}
		}
		return drops
	}
	if run() != run() {
		t.Error("RED not deterministic under fixed seed")
	}
}
