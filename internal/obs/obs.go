// Package obs is the runtime telemetry layer: a dependency-free registry
// of atomic counters, gauges, and fixed-bucket histograms, exposed in
// Prometheus text format over HTTP (mimicnetd's GET /metrics).
//
// It is distinct from internal/metrics, which implements the *paper's
// evaluation* math (W1/CDF over simulation outputs); obs answers the
// operational questions — events/sec, GEMM pool queue depth, causality
// clamps, phase latency — while a daemon is live.
//
// Design rules (DESIGN.md decision 10):
//
//   - Instrumentation on hot paths must be allocation-free: series are
//     preallocated at registration, Counter/Gauge updates are single
//     atomic ops, Histogram.Observe is a bounded scan plus atomic adds,
//     and Span is a value type. No update takes a lock.
//   - Telemetry only observes. Nothing read from obs may feed back into
//     simulation or training decisions, so instrumented runs stay
//     bitwise identical to uninstrumented ones.
//   - Series are registered once (package-level vars, or per-instance
//     cells attached via the Register* methods) and live for the
//     process; scrapes never create state.
package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing series. The zero value is ready
// to use, so instances can embed counters without registration.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a series that can go up and down. The zero value is ready.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds d (negative to decrement).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram counts observations into fixed buckets (cumulative at
// exposition, per-bucket internally). Buckets are upper bounds in
// ascending order; an implicit +Inf bucket catches the rest. The zero
// value is NOT usable — buckets must be set — so histograms are built
// with NewHistogram (directly or via Registry.Histogram).
type Histogram struct {
	bounds  []float64
	buckets []atomic.Uint64 // len(bounds)+1; last is +Inf
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits, CAS-accumulated
}

// NewHistogram builds a standalone histogram over the given ascending
// upper bounds. Panics on empty or unsorted bounds: a histogram with
// broken buckets would silently misreport forever.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if !(bounds[i] > bounds[i-1]) {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	b := append([]float64(nil), bounds...)
	return &Histogram{bounds: b, buckets: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value. Allocation-free: a bounded linear scan over
// the bucket bounds (small and cache-resident by construction) plus three
// atomic updates. NaN observations are dropped — they would poison the
// sum and land in no meaningful bucket.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Bounds returns the bucket upper bounds (not a copy; do not modify).
func (h *Histogram) Bounds() []float64 { return h.bounds }

// Cumulative returns the cumulative bucket counts aligned with Bounds(),
// plus the +Inf total as the final element. The snapshot is taken bucket
// by bucket, so concurrent observers can make it momentarily understate
// later buckets — never decrease across scrapes.
func (h *Histogram) Cumulative() []uint64 {
	out := make([]uint64, len(h.buckets))
	var cum uint64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		out[i] = cum
	}
	return out
}

// ExpBuckets returns n exponentially spaced upper bounds starting at
// start and growing by factor: {start, start·f, start·f², …}.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// TimeBuckets is the default latency bucket layout: 1 µs to ~67 s in
// ×4 steps, wide enough for both per-window barrier waits and multi-
// second training phases.
func TimeBuckets() []float64 { return ExpBuckets(1e-6, 4, 13) }

// Span measures one phase: StartSpan stamps the clock, End observes the
// elapsed wall time in seconds into the histogram. A Span is a value —
// starting and ending one allocates nothing.
type Span struct {
	h     *Histogram
	start time.Time
}

// StartSpan begins timing against h (nil h yields an inert span).
func StartSpan(h *Histogram) Span {
	if h == nil {
		return Span{}
	}
	return Span{h: h, start: time.Now()}
}

// End records the elapsed time and returns it.
func (s Span) End() time.Duration {
	if s.h == nil {
		return 0
	}
	d := time.Since(s.start)
	s.h.Observe(d.Seconds())
	return d
}

// Default returns the process-global registry. Package-level series in
// sim/ml/core register here at init; mimicnetd serves it at /metrics.
func Default() *Registry { return defaultRegistry }

var defaultRegistry = NewRegistry()
