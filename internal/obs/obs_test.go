package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	var g Gauge
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

func TestHistogramBucketMath(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 4, 5, 100} {
		h.Observe(v)
	}
	// Upper bounds are inclusive (Prometheus `le` semantics):
	// <=1: {0.5, 1}  <=2: +{1.5, 2}  <=4: +{3, 4}  +Inf: +{5, 100}.
	want := []uint64{2, 4, 6, 8}
	got := h.Cumulative()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cumulative = %v, want %v", got, want)
		}
	}
	if h.Count() != 8 {
		t.Fatalf("count = %d, want 8", h.Count())
	}
	if s := h.Sum(); s != 117 {
		t.Fatalf("sum = %v, want 117", s)
	}
}

func TestHistogramDropsNaN(t *testing.T) {
	h := NewHistogram([]float64{1})
	h.Observe(math.NaN())
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("NaN observation must be dropped, got count=%d sum=%v", h.Count(), h.Sum())
	}
}

func TestNewHistogramPanics(t *testing.T) {
	for _, bounds := range [][]float64{nil, {}, {2, 1}, {1, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewHistogram(%v) did not panic", bounds)
				}
			}()
			NewHistogram(bounds)
		}()
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", got, want)
		}
	}
	tb := TimeBuckets()
	for i := 1; i < len(tb); i++ {
		if tb[i] <= tb[i-1] {
			t.Fatalf("TimeBuckets not ascending at %d: %v", i, tb)
		}
	}
}

// FuzzHistogramObserve checks the bucket-math invariants for arbitrary
// observations: count equals the +Inf cumulative bucket, cumulative
// counts are monotone, and each value lands in the first bucket whose
// bound is >= v.
func FuzzHistogramObserve(f *testing.F) {
	f.Add(0.5, 3.0, math.Inf(1))
	f.Add(-1.0, 0.0, 1e300)
	f.Add(math.NaN(), 2.0, 2.0)
	f.Fuzz(func(t *testing.T, a, b, c float64) {
		bounds := []float64{1e-3, 1, 1e3}
		h := NewHistogram(bounds)
		vals := []float64{a, b, c}
		var wantCount uint64
		wantPerBucket := make([]uint64, len(bounds)+1)
		for _, v := range vals {
			h.Observe(v)
			if math.IsNaN(v) {
				continue
			}
			wantCount++
			i := 0
			for i < len(bounds) && v > bounds[i] {
				i++
			}
			wantPerBucket[i]++
		}
		if h.Count() != wantCount {
			t.Fatalf("count = %d, want %d", h.Count(), wantCount)
		}
		cum := h.Cumulative()
		if cum[len(cum)-1] != wantCount {
			t.Fatalf("+Inf bucket = %d, want %d", cum[len(cum)-1], wantCount)
		}
		var run uint64
		for i, c := range cum {
			if c < run {
				t.Fatalf("cumulative decreased at %d: %v", i, cum)
			}
			run = c
			var wantCum uint64
			for j := 0; j <= i; j++ {
				wantCum += wantPerBucket[j]
			}
			if c != wantCum {
				t.Fatalf("bucket %d = %d, want %d (vals %v)", i, c, wantCum, vals)
			}
		}
	})
}

func TestRegistryIdempotentGetters(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("x_total", "h")
	c2 := r.Counter("x_total", "ignored")
	if c1 != c2 {
		t.Fatal("Counter getter must be idempotent")
	}
	h1 := r.Histogram(`lat{phase="a"}`, "h", []float64{1, 2})
	h2 := r.Histogram(`lat{phase="b"}`, "h", []float64{9, 99})
	// Sibling series inherit the family's bucket layout.
	if got := h2.Bounds(); got[0] != 1 || got[1] != 2 {
		t.Fatalf("sibling bounds = %v, want [1 2]", got)
	}
	if h1 == h2 {
		t.Fatal("distinct labels must get distinct histograms")
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("gauge lookup of a counter family must panic")
		}
	}()
	r.Gauge("x_total", "")
}

func TestRegisterReplaces(t *testing.T) {
	r := NewRegistry()
	var a, b Counter
	a.Add(1)
	b.Add(2)
	r.RegisterCounter("inst_total", "", &a)
	r.RegisterCounter("inst_total", "", &b)
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "inst_total 2") {
		t.Fatalf("replace semantics broken:\n%s", sb.String())
	}
}

func TestWriteTextFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "a counter").Add(3)
	r.Gauge("g", "a gauge").Set(-5)
	r.GaugeFunc("gf", "computed", func() float64 { return 1.5 })
	r.Histogram(`h{phase="x"}`, "a histogram", []float64{1, 2}).Observe(1.5)
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"# HELP c_total a counter",
		"# TYPE c_total counter",
		"c_total 3",
		"g -5",
		"gf 1.5",
		"# TYPE h histogram",
		`h_bucket{phase="x",le="1"} 0`,
		`h_bucket{phase="x",le="2"} 1`,
		`h_bucket{phase="x",le="+Inf"} 1`,
		`h_sum{phase="x"} 1.5`,
		`h_count{phase="x"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
}

func TestSeriesNames(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "")
	r.Counter(`a_total{k="v"}`, "")
	got := r.SeriesNames()
	if len(got) != 2 || got[0] != `a_total{k="v"}` || got[1] != "b_total" {
		t.Fatalf("SeriesNames = %v", got)
	}
}

func TestMalformedNamePanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("malformed name must panic")
		}
	}()
	r.Counter("bad{unclosed", "")
}

// TestConcurrentObserveAndScrape hammers one histogram and one counter
// from many goroutines while scraping, relying on -race to catch any
// unsynchronized access and on the invariant count == +Inf bucket in
// every rendered snapshot.
func TestConcurrentObserveAndScrape(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("spin_total", "")
	h := r.Histogram("spin_seconds", "", []float64{0.25, 0.5, 1})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed float64) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				h.Observe(seed * float64(i%7))
			}
		}(0.1 * float64(w+1))
	}
	for i := 0; i < 50; i++ {
		var sb strings.Builder
		if err := r.WriteText(&sb); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if h.Count() != h.Cumulative()[3] {
		t.Fatalf("count %d != +Inf bucket %d after quiesce", h.Count(), h.Cumulative()[3])
	}
}

func TestSpan(t *testing.T) {
	h := NewHistogram(TimeBuckets())
	sp := StartSpan(h)
	if d := sp.End(); d < 0 {
		t.Fatalf("negative span duration %v", d)
	}
	if h.Count() != 1 {
		t.Fatalf("span did not observe, count = %d", h.Count())
	}
	var inert Span
	if d := inert.End(); d != 0 {
		t.Fatalf("inert span returned %v", d)
	}
	if d := StartSpan(nil).End(); d != 0 {
		t.Fatalf("nil-histogram span returned %v", d)
	}
}
