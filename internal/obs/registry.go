package obs

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Registry holds named series grouped into metric families and renders
// them in Prometheus text format. Registration takes a lock; updates to
// the registered series never do (they are plain atomics), and scrapes
// snapshot under the lock without blocking updaters.
//
// A series name is `family` or `family{label="value",...}`: several
// labeled series may share one family (one HELP/TYPE line, contiguous
// samples), but a family holds exactly one kind. Getter methods are
// idempotent — asking for an existing name returns the existing series —
// so package-level instrumentation can never double-register. The
// Register* methods instead *replace* the cell behind a name, which is
// how per-instance components (one scheduler per daemon, many per test
// binary) expose the live instance without collisions.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byFamily map[string]*family
}

type seriesKind int

const (
	kindCounter seriesKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

func (k seriesKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindHistogram:
		return "histogram"
	default:
		return "gauge"
	}
}

type family struct {
	name   string
	help   string
	kind   seriesKind
	series []*seriesEntry
	byKey  map[string]*seriesEntry
}

type seriesEntry struct {
	labels string // `phase="train"` — no braces, possibly empty
	ctr    *Counter
	gauge  *Gauge
	fn     func() float64
	hist   *Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byFamily: make(map[string]*family)}
}

// splitName separates `family{labels}` into its parts. Malformed names
// panic: metric names are compile-time constants and a typo should fail
// loudly at init, not scrape as garbage.
func splitName(name string) (fam, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	if !strings.HasSuffix(name, "}") || i == 0 {
		panic(fmt.Sprintf("obs: malformed series name %q", name))
	}
	return name[:i], name[i+1 : len(name)-1]
}

func (r *Registry) lookup(name, help string, kind seriesKind) (*family, *seriesEntry, bool) {
	fam, labels := splitName(name)
	f, ok := r.byFamily[fam]
	if !ok {
		f = &family{name: fam, help: help, kind: kind, byKey: make(map[string]*seriesEntry)}
		r.families = append(r.families, f)
		r.byFamily[fam] = f
	} else if f.kind != kind {
		panic(fmt.Sprintf("obs: family %q registered as %s, requested as %s", fam, f.kind, kind))
	}
	if e, ok := f.byKey[labels]; ok {
		return f, e, true
	}
	e := &seriesEntry{labels: labels}
	f.series = append(f.series, e)
	f.byKey[labels] = e
	return f, e, false
}

// Counter returns the counter registered under name, creating it if new.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, e, existed := r.lookup(name, help, kindCounter)
	if !existed {
		e.ctr = &Counter{}
	}
	return e.ctr
}

// Gauge returns the gauge registered under name, creating it if new.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, e, existed := r.lookup(name, help, kindGauge)
	if !existed {
		e.gauge = &Gauge{}
	}
	return e.gauge
}

// GaugeFunc registers (or replaces) a gauge whose value is computed at
// scrape time — the natural shape for queue depths and pool occupancy,
// which would otherwise need hot-path updates nobody reads.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, e, _ := r.lookup(name, help, kindGaugeFunc)
	e.fn = fn
}

// Histogram returns the histogram registered under name, creating it
// with the given bounds if new. An existing histogram's bounds win: all
// series of a family must share one bucket layout.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, e, existed := r.lookup(name, help, kindHistogram)
	if !existed {
		if len(f.series) > 1 {
			// Sibling series exists: inherit its layout for consistency.
			for _, sib := range f.series {
				if sib.hist != nil {
					bounds = sib.hist.Bounds()
					break
				}
			}
		}
		e.hist = NewHistogram(bounds)
	}
	return e.hist
}

// RegisterCounter binds an existing counter cell to name, replacing any
// previous binding. Used by per-instance components (serve.Scheduler,
// serve.Registry) so /metrics and /stats read the same atomics.
func (r *Registry) RegisterCounter(name, help string, c *Counter) {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, e, _ := r.lookup(name, help, kindCounter)
	e.ctr = c
}

// RegisterGauge binds an existing gauge cell to name, replacing any
// previous binding.
func (r *Registry) RegisterGauge(name, help string, g *Gauge) {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, e, _ := r.lookup(name, help, kindGauge)
	e.gauge = g
}

// RegisterHistogram binds an existing histogram to name, replacing any
// previous binding.
func (r *Registry) RegisterHistogram(name, help string, h *Histogram) {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, e, _ := r.lookup(name, help, kindHistogram)
	e.hist = h
}

// SeriesNames returns every registered series name (family plus labels),
// sorted — the acceptance check behind "/metrics exposes >= N series".
func (r *Registry) SeriesNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []string
	for _, f := range r.families {
		for _, e := range f.series {
			if e.labels == "" {
				out = append(out, f.name)
			} else {
				out = append(out, f.name+"{"+e.labels+"}")
			}
		}
	}
	sort.Strings(out)
	return out
}

// WriteText renders the registry in Prometheus text exposition format
// (version 0.0.4): families contiguous, HELP/TYPE once per family.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	bw := bufio.NewWriter(w)
	for _, f := range r.families {
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		for _, e := range f.series {
			switch f.kind {
			case kindCounter:
				fmt.Fprintf(bw, "%s %d\n", sampleName(f.name, e.labels), e.ctr.Value())
			case kindGauge:
				fmt.Fprintf(bw, "%s %d\n", sampleName(f.name, e.labels), e.gauge.Value())
			case kindGaugeFunc:
				fmt.Fprintf(bw, "%s %s\n", sampleName(f.name, e.labels), formatFloat(e.fn()))
			case kindHistogram:
				writeHistogram(bw, f.name, e.labels, e.hist)
			}
		}
	}
	return bw.Flush()
}

func sampleName(fam, labels string) string {
	if labels == "" {
		return fam
	}
	return fam + "{" + labels + "}"
}

func joinLabels(labels, extra string) string {
	if labels == "" {
		return extra
	}
	return labels + "," + extra
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func writeHistogram(w io.Writer, fam, labels string, h *Histogram) {
	cum := h.Cumulative()
	bounds := h.Bounds()
	for i, b := range bounds {
		le := joinLabels(labels, `le="`+formatFloat(b)+`"`)
		fmt.Fprintf(w, "%s_bucket{%s} %d\n", fam, le, cum[i])
	}
	inf := joinLabels(labels, `le="+Inf"`)
	fmt.Fprintf(w, "%s_bucket{%s} %d\n", fam, inf, cum[len(cum)-1])
	fmt.Fprintf(w, "%s_sum%s %s\n", fam, braced(labels), formatFloat(h.Sum()))
	// _count mirrors the +Inf bucket from the same snapshot, so the
	// invariant parsers check (count == cumulative +Inf) always holds.
	fmt.Fprintf(w, "%s_count%s %d\n", fam, braced(labels), cum[len(cum)-1])
}

func braced(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

// Handler serves the registry as a Prometheus scrape target.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteText(w)
	})
}
