package durable

import "mimicnet/internal/obs"

// Durability telemetry (obs package; DESIGN.md decision 10): the cost of
// persistence must be visible on /metrics before anyone trusts it in a
// hot path. Cells are process-global — journals and checkpoint stores
// are few (one per daemon) and their counters are meaningful in
// aggregate.
var (
	obsJournalAppends = obs.Default().Counter("mimicnet_durable_journal_appends_total",
		"Records appended to write-ahead journals.")
	obsJournalBytes = obs.Default().Counter("mimicnet_durable_journal_bytes_total",
		"Framed bytes appended to write-ahead journals.")
	obsJournalReplayed = obs.Default().Counter("mimicnet_durable_journal_replayed_total",
		"Records recovered by journal replay at open.")
	obsJournalTorn = obs.Default().Counter("mimicnet_durable_journal_torn_total",
		"Journal tails clipped at an invalid frame during recovery.")
	obsJournalFsync = obs.Default().Histogram("mimicnet_durable_journal_fsync_seconds",
		"Wall time of journal fsync batches.", obs.ExpBuckets(1e-6, 4, 12))
	obsSnapshots = obs.Default().Counter("mimicnet_durable_snapshots_total",
		"Journal snapshot+compact cycles completed.")
	obsSnapshotBytes = obs.Default().Counter("mimicnet_durable_snapshot_bytes_total",
		"State bytes written by journal snapshots.")
	obsCkptWrites = obs.Default().Counter("mimicnet_durable_ckpt_writes_total",
		"Training checkpoints written.")
	obsCkptBytes = obs.Default().Counter("mimicnet_durable_ckpt_bytes_total",
		"Payload bytes written to training checkpoints.")
	obsCkptRestores = obs.Default().Counter("mimicnet_durable_ckpt_restores_total",
		"Training checkpoints successfully read back.")
	obsCkptCorrupt = obs.Default().Counter("mimicnet_durable_ckpt_corrupt_total",
		"Checkpoint reads rejected by framing or CRC validation.")
	obsCkptWrite = obs.Default().Histogram("mimicnet_durable_ckpt_write_seconds",
		"Wall time of one checkpoint write (serialize + fsync + rename).",
		obs.ExpBuckets(1e-6, 4, 12))
)

func obsStartSpan(h *obs.Histogram) obs.Span { return obs.StartSpan(h) }
