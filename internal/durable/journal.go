package durable

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Journal is an append-only write-ahead log of opaque records. It is the
// durability substrate of the serve Scheduler: every job transition is
// appended before (or with) the in-memory state change, so a restarted
// process can replay the log and land in an equivalent state.
//
// On-disk layout inside the journal directory:
//
//	wal-00000001.log   segment files, monotonically numbered
//	wal-00000002.log
//	snapshot.snap      optional compaction point (atomic rename)
//
// Each record is framed as
//
//	uint32 payload length | uint32 CRC32(seq ‖ payload) | uint64 seq | payload
//
// (little-endian). Sequence numbers increase by one per record across
// segment boundaries; the CRC covers the sequence so a frame spliced
// from another position cannot masquerade as valid. Recovery reads the
// longest valid record prefix: the first short, oversized, or
// CRC-mismatched frame ends replay — a torn tail from a crash is
// clipped, never propagated, and never a panic.
//
// Appends are buffered; Sync flushes and fsyncs. SyncEvery batches
// fsyncs (1 = sync every append). Records appended since the last sync
// can be lost on power cut — callers choose per record via Append vs
// AppendSync.
type Journal struct {
	dir string
	opt JournalOptions

	mu        sync.Mutex
	f         *os.File
	w         *bufio.Writer
	segIdx    uint64 // current segment number
	segBytes  int64  // bytes written to the current segment
	nextSeq   uint64
	unsynced  int  // records appended since the last fsync
	needFlush bool // buffered bytes not yet flushed to the file
	closed    bool
}

// JournalOptions tune durability/throughput trade-offs. Zero values
// select the defaults.
type JournalOptions struct {
	// SyncEvery fsyncs after every Nth Append (default 1: every record).
	// AppendSync ignores it and always syncs.
	SyncEvery int
	// SegmentBytes rotates to a fresh segment once the current one
	// exceeds this size (default 4 MiB).
	SegmentBytes int64
	// MaxRecordBytes bounds a single record (default 16 MiB); larger
	// appends fail and larger lengths in a frame are treated as
	// corruption during replay.
	MaxRecordBytes int
}

func (o JournalOptions) withDefaults() JournalOptions {
	if o.SyncEvery <= 0 {
		o.SyncEvery = 1
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.MaxRecordBytes <= 0 {
		o.MaxRecordBytes = 16 << 20
	}
	return o
}

const (
	frameHeaderLen = 4 + 4 + 8 // length, crc, seq
	segPrefix      = "wal-"
	segSuffix      = ".log"
	snapshotName   = "snapshot.snap"
	snapshotMagic  = "MNSNAP01"
)

// Replayed is what recovery hands back for one surviving record.
type Replayed struct {
	Seq     uint64
	Payload []byte
}

// RecoveryInfo summarizes what OpenJournal found on disk.
type RecoveryInfo struct {
	// Snapshot is the newest valid snapshot state, nil if none.
	Snapshot []byte
	// SnapshotSeq is the last sequence number the snapshot covers.
	SnapshotSeq uint64
	// Records are the valid records after the snapshot, in order.
	Records []Replayed
	// Torn counts segments whose tail was clipped at an invalid frame.
	Torn int
}

// OpenJournal opens (creating if needed) the journal in dir and recovers
// its contents: the newest valid snapshot plus every valid record after
// it. A torn or bit-flipped tail ends replay at the last valid record.
// New appends go to a fresh segment, so recovered garbage is never
// appended after.
func OpenJournal(dir string, opt JournalOptions) (*Journal, *RecoveryInfo, error) {
	opt = opt.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("durable: journal dir: %w", err)
	}
	j := &Journal{dir: dir, opt: opt}

	info := &RecoveryInfo{}
	snapPath := filepath.Join(dir, snapshotName)
	_, statErr := os.Stat(snapPath)
	snapFileExists := statErr == nil
	if state, seq, ok := readSnapshot(snapPath); ok {
		info.Snapshot, info.SnapshotSeq = state, seq
	}

	segs, maxIdx, err := listSegments(dir)
	if err != nil {
		return nil, nil, err
	}
	lastSeq := info.SnapshotSeq
	first := true
	for _, seg := range segs {
		recs, torn := readSegment(filepath.Join(dir, seg), opt.MaxRecordBytes)
		if torn {
			info.Torn++
		}
		for _, r := range recs {
			if r.Seq <= info.SnapshotSeq {
				continue // already folded into the snapshot
			}
			if first && info.Snapshot == nil && snapFileExists && r.Seq > lastSeq+1 {
				// A snapshot file exists but is unreadable: the missing
				// baseline explains the leading gap. Recover the suffix —
				// partial state beats none, and the caller sees Torn.
				info.Torn++
				lastSeq = r.Seq - 1
			}
			first = false
			if r.Seq != lastSeq+1 {
				// A mid-log gap means an earlier segment lost records;
				// nothing after the gap is trustworthy.
				obsJournalTorn.Inc()
				return finishOpen(j, info, lastSeq, maxIdx)
			}
			info.Records = append(info.Records, r)
			lastSeq = r.Seq
		}
		// A torn segment does not end replay by itself: recovery reuses
		// the clipped sequence numbers in a fresh segment, so a later
		// segment that continues at lastSeq+1 is legitimate. Anything
		// else trips the gap check above.
	}
	return finishOpen(j, info, lastSeq, maxIdx)
}

func finishOpen(j *Journal, info *RecoveryInfo, lastSeq, maxIdx uint64) (*Journal, *RecoveryInfo, error) {
	obsJournalReplayed.Add(uint64(len(info.Records)))
	j.nextSeq = lastSeq + 1
	j.segIdx = maxIdx + 1
	if err := j.openSegmentLocked(); err != nil {
		return nil, nil, err
	}
	return j, info, nil
}

func segName(idx uint64) string {
	return fmt.Sprintf("%s%08d%s", segPrefix, idx, segSuffix)
}

func listSegments(dir string) (names []string, maxIdx uint64, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, 0, fmt.Errorf("durable: journal scan: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		idxStr := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
		idx, err := strconv.ParseUint(idxStr, 10, 64)
		if err != nil {
			continue
		}
		names = append(names, name)
		if idx > maxIdx {
			maxIdx = idx
		}
	}
	sort.Strings(names) // zero-padded fixed width: lexical == numeric
	return names, maxIdx, nil
}

// readSegment returns the longest valid record prefix of one segment
// file and whether a tail was clipped. It never fails: unreadable means
// empty.
func readSegment(path string, maxRecord int) (recs []Replayed, torn bool) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	off := 0
	for {
		if off == len(blob) {
			return recs, false // clean end
		}
		if len(blob)-off < frameHeaderLen {
			return recs, true
		}
		n := int(binary.LittleEndian.Uint32(blob[off:]))
		crc := binary.LittleEndian.Uint32(blob[off+4:])
		if n > maxRecord || len(blob)-off-frameHeaderLen < n {
			return recs, true
		}
		body := blob[off+8 : off+frameHeaderLen+n] // seq ‖ payload
		if crc32.ChecksumIEEE(body) != crc {
			return recs, true
		}
		seq := binary.LittleEndian.Uint64(body)
		payload := append([]byte(nil), body[8:]...)
		recs = append(recs, Replayed{Seq: seq, Payload: payload})
		off += frameHeaderLen + n
	}
}

func (j *Journal) openSegmentLocked() error {
	f, err := os.OpenFile(filepath.Join(j.dir, segName(j.segIdx)),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("durable: journal segment: %w", err)
	}
	j.f = f
	if j.w == nil {
		j.w = bufio.NewWriterSize(f, 64<<10)
	} else {
		j.w.Reset(f)
	}
	j.segBytes = 0
	return nil
}

// Append writes one record, honoring the configured fsync batching, and
// returns its sequence number.
func (j *Journal) Append(payload []byte) (uint64, error) {
	return j.append(payload, false)
}

// AppendSync writes one record and forces it (and any batched
// predecessors) to stable storage before returning.
func (j *Journal) AppendSync(payload []byte) (uint64, error) {
	return j.append(payload, true)
}

func (j *Journal) append(payload []byte, forceSync bool) (uint64, error) {
	if len(payload) > j.opt.MaxRecordBytes {
		return 0, fmt.Errorf("durable: record of %d bytes exceeds limit %d",
			len(payload), j.opt.MaxRecordBytes)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return 0, fmt.Errorf("durable: journal is closed")
	}
	seq := j.nextSeq
	var hdr [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint64(hdr[8:], seq)
	h := crc32.NewIEEE()
	h.Write(hdr[8:16])
	h.Write(payload)
	binary.LittleEndian.PutUint32(hdr[4:], h.Sum32())
	if _, err := j.w.Write(hdr[:]); err != nil {
		return 0, err
	}
	if _, err := j.w.Write(payload); err != nil {
		return 0, err
	}
	j.nextSeq++
	j.segBytes += int64(frameHeaderLen + len(payload))
	j.unsynced++
	j.needFlush = true
	obsJournalAppends.Inc()
	obsJournalBytes.Add(uint64(frameHeaderLen + len(payload)))

	if forceSync || j.unsynced >= j.opt.SyncEvery {
		if err := j.syncLocked(); err != nil {
			return 0, err
		}
	}
	if j.segBytes >= j.opt.SegmentBytes {
		if err := j.rotateLocked(); err != nil {
			return 0, err
		}
	}
	return seq, nil
}

// Sync flushes buffered records and fsyncs the current segment.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	return j.syncLocked()
}

func (j *Journal) syncLocked() error {
	if j.needFlush {
		if err := j.w.Flush(); err != nil {
			return err
		}
		j.needFlush = false
	}
	if j.unsynced == 0 {
		return nil
	}
	sp := obsStartSpan(obsJournalFsync)
	err := j.f.Sync()
	sp.End()
	if err != nil {
		return err
	}
	j.unsynced = 0
	return nil
}

func (j *Journal) rotateLocked() error {
	if err := j.syncLocked(); err != nil {
		return err
	}
	if err := j.f.Close(); err != nil {
		return err
	}
	j.segIdx++
	return j.openSegmentLocked()
}

// SnapshotAndCompact atomically persists state as the journal's new
// baseline and deletes every segment it covers. state must capture
// everything the already-appended records imply: after a successful
// compaction, recovery sees the snapshot plus only records appended
// afterwards.
func (j *Journal) SnapshotAndCompact(state []byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return fmt.Errorf("durable: journal is closed")
	}
	if err := j.syncLocked(); err != nil {
		return err
	}
	covered := j.nextSeq - 1

	var buf []byte
	buf = append(buf, snapshotMagic...)
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:], covered)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(state)))
	h := crc32.NewIEEE()
	h.Write(hdr[0:12])
	h.Write(state)
	binary.LittleEndian.PutUint32(hdr[12:], h.Sum32())
	buf = append(buf, hdr[:]...)
	buf = append(buf, state...)
	if err := WriteFileAtomic(filepath.Join(j.dir, snapshotName), buf, 0o644); err != nil {
		return err
	}
	obsSnapshots.Inc()
	obsSnapshotBytes.Add(uint64(len(state)))

	// The snapshot covers every appended record; retire all closed
	// segments and start fresh so the directory stays bounded.
	if err := j.f.Close(); err != nil {
		return err
	}
	segs, _, err := listSegments(j.dir)
	if err != nil {
		return err
	}
	for _, s := range segs {
		_ = os.Remove(filepath.Join(j.dir, s))
	}
	_ = SyncDir(j.dir)
	j.segIdx++
	return j.openSegmentLocked()
}

// readSnapshot loads and validates a snapshot file. Any damage — short
// file, bad magic, CRC mismatch — reads as "no snapshot".
func readSnapshot(path string) (state []byte, seq uint64, ok bool) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, false
	}
	if len(blob) < len(snapshotMagic)+16 || string(blob[:len(snapshotMagic)]) != snapshotMagic {
		return nil, 0, false
	}
	hdr := blob[len(snapshotMagic):]
	seq = binary.LittleEndian.Uint64(hdr[0:])
	n := int(binary.LittleEndian.Uint32(hdr[8:]))
	crc := binary.LittleEndian.Uint32(hdr[12:])
	body := hdr[16:]
	if len(body) != n {
		return nil, 0, false
	}
	h := crc32.NewIEEE()
	h.Write(hdr[0:12])
	h.Write(body)
	if h.Sum32() != crc {
		return nil, 0, false
	}
	return append([]byte(nil), body...), seq, true
}

// NextSeq returns the sequence number the next append will get.
func (j *Journal) NextSeq() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.nextSeq
}

// Dir returns the journal directory.
func (j *Journal) Dir() string { return j.dir }

// Close flushes, fsyncs, and closes the journal. Further appends fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	err := j.syncLocked()
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.closed = true
	return err
}
