package durable

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
)

// FuzzJournalReplay corrupts the tail of a valid journal segment —
// truncation, garbage appends, and bit flips at arbitrary offsets — and
// asserts the recovery invariants: never a panic, every recovered record
// is a strict prefix of what was written, and the journal stays
// appendable afterwards.
func FuzzJournalReplay(f *testing.F) {
	f.Add(5, 200, uint8(0), uint16(3))    // truncate 3 bytes
	f.Add(8, 64, uint8(1), uint16(40))    // flip a bit 40 bytes from the end
	f.Add(1, 0, uint8(2), uint16(7))      // append 7 garbage bytes
	f.Add(12, 9000, uint8(1), uint16(1))  // flip in a large record
	f.Add(3, 30, uint8(0), uint16(60000)) // truncate more than the file

	f.Fuzz(func(t *testing.T, nRecords, recLen int, mode uint8, amount uint16) {
		if nRecords < 1 || nRecords > 64 || recLen < 0 || recLen > 16384 {
			t.Skip()
		}
		dir := t.TempDir()
		j, _, err := OpenJournal(dir, JournalOptions{})
		if err != nil {
			t.Fatal(err)
		}
		want := make([][]byte, nRecords)
		for i := range want {
			rec := bytes.Repeat([]byte{byte(i + 1)}, recLen)
			rec = append(rec, byte(i))
			want[i] = rec
			if _, err := j.AppendSync(rec); err != nil {
				t.Fatal(err)
			}
		}
		j.Close()

		segs, _, _ := listSegments(dir)
		if len(segs) == 0 {
			t.Fatal("no segments written")
		}
		path := filepath.Join(dir, segs[len(segs)-1])
		blob, _ := os.ReadFile(path)
		switch mode % 3 {
		case 0: // truncate
			cut := int(amount)
			if cut > len(blob) {
				cut = len(blob)
			}
			blob = blob[:len(blob)-cut]
		case 1: // bit flip
			if len(blob) > 0 {
				off := len(blob) - 1 - int(amount)%len(blob)
				blob[off] ^= 1 << (amount % 8)
			}
		case 2: // garbage tail
			g := make([]byte, int(amount)%512)
			for i := range g {
				g[i] = byte(amount) + byte(i)*7
			}
			blob = append(blob, g...)
		}
		if err := os.WriteFile(path, blob, 0o644); err != nil {
			t.Fatal(err)
		}

		j2, info, err := OpenJournal(dir, JournalOptions{})
		if err != nil {
			t.Fatalf("recovery errored (must clip, not fail): %v", err)
		}
		defer j2.Close()
		if len(info.Records) > nRecords {
			t.Fatalf("recovered %d records, wrote only %d", len(info.Records), nRecords)
		}
		for i, r := range info.Records {
			if r.Seq != uint64(i+1) {
				t.Fatalf("record %d has seq %d", i, r.Seq)
			}
			if !bytes.Equal(r.Payload, want[i]) {
				t.Fatalf("record %d payload mutated: got %d bytes, want %d",
					i, len(r.Payload), len(want[i]))
			}
		}
		// The reopened journal must accept appends that a further reopen
		// observes, continuing the recovered sequence.
		seq, err := j2.AppendSync([]byte("post-recovery"))
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(len(info.Records))+1 {
			t.Fatalf("post-recovery seq %d after %d recovered", seq, len(info.Records))
		}
		j2.Close()
		_, info3, err := OpenJournal(dir, JournalOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if got := len(info3.Records); got != len(info.Records)+1 {
			t.Fatalf("second recovery saw %d records, want %d", got, len(info.Records)+1)
		}
	})
}

// FuzzCheckpointRead throws arbitrary bytes at the checkpoint reader:
// it must either return the exact payload of a valid container or fail
// cleanly — no panics, no partial payloads.
func FuzzCheckpointRead(f *testing.F) {
	f.Add([]byte("MNCKPT01 not really"))
	f.Add([]byte{})
	var frame [16]byte
	binary.LittleEndian.PutUint32(frame[8:], 4)
	f.Add(append([]byte(ckptMagic), frame[:]...))

	f.Fuzz(func(t *testing.T, blob []byte) {
		path := filepath.Join(t.TempDir(), "c.ckpt")
		if err := os.WriteFile(path, blob, 0o644); err != nil {
			t.Fatal(err)
		}
		payload, err := ReadCheckpoint(path)
		if err == nil {
			// Valid container: re-writing its payload must round-trip.
			if err := WriteCheckpoint(path, payload); err != nil {
				t.Fatal(err)
			}
			back, err := ReadCheckpoint(path)
			if err != nil || !bytes.Equal(back, payload) {
				t.Fatalf("round-trip broke: %v", err)
			}
		}
	})
}
