package durable_test

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"mimicnet/internal/core"
	"mimicnet/internal/durable"
	"mimicnet/internal/ml"
	"mimicnet/internal/stats"
)

// BenchmarkDurability measures the cost side of the durability layer —
// the numbers `make bench-ckpt` records in BENCH_ckpt.json:
//
//   - journal append throughput with per-record fsync vs batched fsync;
//   - checkpoint container write + restore latency across payload sizes
//     (stand-ins for small/medium/large model states);
//   - cold recovery replay over a 10k-record journal;
//   - training wall-clock overhead of the production checkpoint path
//     (core.TrainCheckpointer.AsyncSaver at the default interval; the
//     acceptance bar is <= 2%).
//
// This lives in an external test package so it can drive the real
// core-side saver: core imports durable, so the in-package test would
// be an import cycle.
func BenchmarkDurability(b *testing.B) {
	report := map[string]any{}

	b.Run("journal-append", func(b *testing.B) {
		payload := make([]byte, 256)
		for _, cfg := range []struct {
			name string
			sync int
		}{{"fsync_each", 1}, {"fsync_batch64", 64}} {
			b.Run(cfg.name, func(b *testing.B) {
				const records = 2000
				j, _, err := durable.OpenJournal(b.TempDir(), durable.JournalOptions{SyncEvery: cfg.sync})
				if err != nil {
					b.Fatal(err)
				}
				defer j.Close()
				t0 := time.Now()
				for i := 0; i < records; i++ {
					if _, err := j.Append(payload); err != nil {
						b.Fatal(err)
					}
				}
				if err := j.Sync(); err != nil {
					b.Fatal(err)
				}
				perSec := float64(records) / time.Since(t0).Seconds()
				report["journal_appends_per_sec_"+cfg.name] = perSec
				b.ReportMetric(perSec, "appends/sec")
			})
		}
	})

	b.Run("ckpt-io", func(b *testing.B) {
		rng := stats.NewStream(5)
		for _, sz := range []struct {
			name  string
			bytes int
		}{{"64KiB", 64 << 10}, {"1MiB", 1 << 20}, {"8MiB", 8 << 20}} {
			b.Run(sz.name, func(b *testing.B) {
				payload := make([]byte, sz.bytes)
				for i := range payload {
					payload[i] = byte(rng.Intn(256))
				}
				path := filepath.Join(b.TempDir(), "m.ckpt")
				const iters = 8
				t0 := time.Now()
				for i := 0; i < iters; i++ {
					if err := durable.WriteCheckpoint(path, payload); err != nil {
						b.Fatal(err)
					}
				}
				writeMs := time.Since(t0).Seconds() * 1000 / iters
				t1 := time.Now()
				for i := 0; i < iters; i++ {
					if _, err := durable.ReadCheckpoint(path); err != nil {
						b.Fatal(err)
					}
				}
				restoreMs := time.Since(t1).Seconds() * 1000 / iters
				report["ckpt_write_ms_"+sz.name] = writeMs
				report["ckpt_restore_ms_"+sz.name] = restoreMs
				b.ReportMetric(writeMs, "write-ms")
				b.ReportMetric(restoreMs, "restore-ms")
			})
		}
	})

	b.Run("replay-10k", func(b *testing.B) {
		const records = 10_000
		dir := b.TempDir()
		j, _, err := durable.OpenJournal(dir, durable.JournalOptions{SyncEvery: 256})
		if err != nil {
			b.Fatal(err)
		}
		payload := make([]byte, 200)
		for i := 0; i < records; i++ {
			if _, err := j.Append(payload); err != nil {
				b.Fatal(err)
			}
		}
		if err := j.Close(); err != nil {
			b.Fatal(err)
		}
		t0 := time.Now()
		j2, info, err := durable.OpenJournal(dir, durable.JournalOptions{})
		if err != nil {
			b.Fatal(err)
		}
		replayMs := time.Since(t0).Seconds() * 1000
		j2.Close()
		if len(info.Records) != records {
			b.Fatalf("replayed %d records, want %d", len(info.Records), records)
		}
		report["replay_10k_records_ms"] = replayMs
		report["replay_records_per_sec"] = float64(records) / (replayMs / 1000)
		b.ReportMetric(replayMs, "replay-ms")
	})

	b.Run("train-overhead", func(b *testing.B) {
		const (
			features = 23 // BenchmarkTrain's dataset shape
			window   = 8
			nSamples = 384
		)
		cfg := ml.DefaultModelConfig(features, window)
		// Long enough that steady-state amortized cost dominates. The
		// checkpoint path has one irreducible per-run constant — the
		// final Complete cursor's durable write (~15ms: JSON marshal +
		// fsync) — plus a throttled per-epoch cost bounded by
		// 1/saveOverheadFactor. A run measured in seconds (like any
		// real training job) sees the sum of both; a millisecond-scale
		// run would measure only the constant.
		cfg.Epochs = 120
		samples := benchSamples(nSamples, features, window, 17)

		train := func(opts ml.TrainOpts, after func() error) time.Duration {
			m, err := ml.NewModel(cfg)
			if err != nil {
				b.Fatal(err)
			}
			t0 := time.Now()
			if _, err := m.TrainContext(context.Background(), samples, opts); err != nil {
				b.Fatal(err)
			}
			if after != nil {
				if err := after(); err != nil {
					b.Fatal(err)
				}
			}
			return time.Since(t0)
		}
		train(ml.TrainOpts{}, nil) // warm the GEMM pool and page in the data

		// Interleave plain/checkpointed runs — back-to-back pairs see
		// the same machine weather — and take the median of the paired
		// differences: on a shared box the run-to-run variance is a few
		// percent, larger than the effect being measured, and a median
		// of paired deltas cancels it where best-of cannot. Alternating
		// the order within each pair cancels slow drift too.
		ckpt := &core.TrainCheckpointer{Dir: b.TempDir(), Key: "bench"}
		const pairs = 8
		var plains, diffs []float64
		for i := 0; i < pairs; i++ {
			runPlain := func() time.Duration { return train(ml.TrainOpts{}, nil) }
			runCkpt := func() time.Duration {
				save, wait := ckpt.AsyncSaver(core.Ingress)
				d := train(ml.TrainOpts{
					CheckpointEvery: core.DefaultCheckpointEvery,
					SaveCheckpoint:  save,
				}, wait)
				ckpt.Clear()
				return d
			}
			var p, c time.Duration
			if i%2 == 0 {
				p = runPlain()
				c = runCkpt()
			} else {
				c = runCkpt()
				p = runPlain()
			}
			plains = append(plains, p.Seconds()*1000)
			diffs = append(diffs, (c-p).Seconds()*1000)
		}
		plainMs := median(plains)
		diffMs := median(diffs)
		overheadPct := diffMs / plainMs * 100
		report["train_ms_plain"] = plainMs
		report["train_ms_ckpt_default_interval"] = plainMs + diffMs
		report["ckpt_train_overhead_pct"] = overheadPct
		b.ReportMetric(overheadPct, "overhead-%")
	})

	if path := os.Getenv("BENCH_CKPT_JSON"); path != "" && len(report) > 0 {
		blob, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
			b.Fatal(err)
		}
		fmt.Printf("wrote %s\n", path)
	}
}

// median returns the middle value of xs (mean of the middle two for
// even lengths). xs is sorted in place.
func median(xs []float64) float64 {
	sort.Float64s(xs)
	n := len(xs)
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}

// benchSamples builds the synthetic training task the ml benchmarks use.
func benchSamples(n, features, window int, seed int64) []ml.Sample {
	rng := stats.NewStream(seed)
	out := make([]ml.Sample, 0, n)
	for i := 0; i < n; i++ {
		var s ml.Sample
		var sum float64
		for j := 0; j < window; j++ {
			row := make([]float64, features)
			row[0] = rng.Float64()
			row[1] = rng.NormFloat64()
			s.Window = append(s.Window, row)
			sum += row[0]
		}
		s.Latency = sum / float64(window)
		s.Dropped = s.Window[window-1][1] > 0
		s.ECN = s.Window[window-1][0] > 0.7
		out = append(out, s)
	}
	return out
}
