package durable

import (
	"encoding/binary"
	"hash/crc32"
	"os"
)

// Generic self-validating container framing, shared by the checkpoint
// file (MNCKPT01) and the columnar dataset file (MNDSET01):
//
//	magic (8 bytes) | uint32 payload length | uint32 CRC32(payload) | payload
//
// Writes go through WriteFileAtomic, so a container on disk is always
// either the previous complete file or the new complete one. Reads
// validate magic, length, and CRC; any damage is ErrCorrupt — callers
// treat that exactly like "no file" and rebuild, trading lost work for
// correctness.

// WriteContainer atomically persists payload under the given 8-byte
// magic tag.
func WriteContainer(path, magic string, payload []byte) error {
	buf := make([]byte, 0, len(magic)+8+len(payload))
	buf = append(buf, magic...)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	buf = append(buf, hdr[:]...)
	buf = append(buf, payload...)
	return WriteFileAtomic(path, buf, 0o644)
}

// ReadContainer loads and validates a container file written with the
// same magic. A missing file returns os.ErrNotExist (via the underlying
// read); wrong magic, truncation, or CRC mismatch returns ErrCorrupt.
func ReadContainer(path, magic string) ([]byte, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return unframe(blob, magic)
}

func unframe(blob []byte, magic string) ([]byte, error) {
	if len(blob) < len(magic)+8 || string(blob[:len(magic)]) != magic {
		return nil, ErrCorrupt
	}
	hdr := blob[len(magic):]
	n := int(binary.LittleEndian.Uint32(hdr[0:]))
	crc := binary.LittleEndian.Uint32(hdr[4:])
	payload := hdr[8:]
	if len(payload) != n || crc32.ChecksumIEEE(payload) != crc {
		return nil, ErrCorrupt
	}
	return payload, nil
}
