package durable

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func openT(t *testing.T, dir string, opt JournalOptions) (*Journal, *RecoveryInfo) {
	t.Helper()
	j, info, err := OpenJournal(dir, opt)
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	return j, info
}

func payloads(info *RecoveryInfo) []string {
	out := make([]string, 0, len(info.Records))
	for _, r := range info.Records {
		out = append(out, string(r.Payload))
	}
	return out
}

func TestJournalAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, info := openT(t, dir, JournalOptions{})
	if info.Snapshot != nil || len(info.Records) != 0 {
		t.Fatalf("fresh journal recovered state: %+v", info)
	}
	want := []string{"accepted j1", "started j1", "done j1", "accepted j2"}
	for _, p := range want {
		if _, err := j.AppendSync([]byte(p)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, info2 := openT(t, dir, JournalOptions{})
	defer j2.Close()
	got := payloads(info2)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d: %q != %q", i, got[i], want[i])
		}
		if info2.Records[i].Seq != uint64(i+1) {
			t.Fatalf("record %d: seq %d, want %d", i, info2.Records[i].Seq, i+1)
		}
	}
}

// An unclosed journal (simulated crash) must still replay everything
// that was synced.
func TestJournalCrashWithoutClose(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, dir, JournalOptions{})
	for i := 0; i < 10; i++ {
		if _, err := j.AppendSync([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// No Close: the *os.File is simply abandoned, as in a crash. The
	// bytes are on disk because every append synced.
	_, info := openT(t, dir, JournalOptions{})
	if len(info.Records) != 10 {
		t.Fatalf("replayed %d records after crash, want 10", len(info.Records))
	}
}

func TestJournalTornTailClipped(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, dir, JournalOptions{})
	for i := 0; i < 5; i++ {
		if _, err := j.AppendSync([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	// Append garbage to the tail of the newest segment: a torn frame.
	segs, _, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	var seg string
	for _, s := range segs {
		if fi, err := os.Stat(filepath.Join(dir, s)); err == nil && fi.Size() > 0 {
			seg = s
		}
	}
	f, err := os.OpenFile(filepath.Join(dir, seg), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0xde, 0xad, 0xbe}) // shorter than a frame header
	f.Close()

	j2, info := openT(t, dir, JournalOptions{})
	defer j2.Close()
	if len(info.Records) != 5 {
		t.Fatalf("torn tail: replayed %d, want 5", len(info.Records))
	}
	if info.Torn != 1 {
		t.Fatalf("torn tail not reported: %+v", info)
	}
	// The journal must keep accepting appends with continuing sequence.
	seq, err := j2.AppendSync([]byte("after-torn"))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 6 {
		t.Fatalf("append after torn recovery got seq %d, want 6", seq)
	}
}

func TestJournalBitFlipClipsFromFlip(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, dir, JournalOptions{})
	for i := 0; i < 8; i++ {
		if _, err := j.AppendSync(bytes.Repeat([]byte{byte(i)}, 32)); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	segs, _, _ := listSegments(dir)
	path := filepath.Join(dir, segs[0])
	blob, _ := os.ReadFile(path)
	blob[len(blob)-10] ^= 0x40 // flip a bit inside the last record
	os.WriteFile(path, blob, 0o644)

	j2, info := openT(t, dir, JournalOptions{})
	defer j2.Close()
	if len(info.Records) != 7 {
		t.Fatalf("bit flip in record 8: replayed %d, want 7", len(info.Records))
	}
}

func TestJournalSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, dir, JournalOptions{SegmentBytes: 256})
	for i := 0; i < 50; i++ {
		if _, err := j.Append(bytes.Repeat([]byte{byte(i)}, 40)); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	segs, _, _ := listSegments(dir)
	if len(segs) < 5 {
		t.Fatalf("expected rotation to produce several segments, got %d", len(segs))
	}
	j2, info := openT(t, dir, JournalOptions{})
	defer j2.Close()
	if len(info.Records) != 50 {
		t.Fatalf("replayed %d across segments, want 50", len(info.Records))
	}
	for i, r := range info.Records {
		if r.Seq != uint64(i+1) {
			t.Fatalf("seq discontinuity at %d: %d", i, r.Seq)
		}
	}
}

func TestJournalSnapshotAndCompact(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, dir, JournalOptions{})
	for i := 0; i < 20; i++ {
		if _, err := j.AppendSync([]byte(fmt.Sprintf("pre-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.SnapshotAndCompact([]byte("state-at-20")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := j.AppendSync([]byte(fmt.Sprintf("post-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	j2, info := openT(t, dir, JournalOptions{})
	defer j2.Close()
	if string(info.Snapshot) != "state-at-20" {
		t.Fatalf("snapshot payload %q", info.Snapshot)
	}
	if info.SnapshotSeq != 20 {
		t.Fatalf("snapshot seq %d, want 20", info.SnapshotSeq)
	}
	if got := payloads(info); len(got) != 3 || got[0] != "post-0" {
		t.Fatalf("post-snapshot records: %v", got)
	}
	// Compaction must actually bound the directory: pre-snapshot
	// segments are gone.
	segs, _, _ := listSegments(dir)
	for _, s := range segs {
		recs, _ := readSegment(filepath.Join(dir, s), 16<<20)
		for _, r := range recs {
			if r.Seq <= 20 {
				t.Fatalf("segment %s still holds covered seq %d", s, r.Seq)
			}
		}
	}
}

func TestJournalCorruptSnapshotIgnored(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, dir, JournalOptions{})
	j.AppendSync([]byte("a"))
	j.SnapshotAndCompact([]byte("good"))
	j.AppendSync([]byte("b"))
	j.Close()

	path := filepath.Join(dir, snapshotName)
	blob, _ := os.ReadFile(path)
	blob[len(blob)-1] ^= 0xff
	os.WriteFile(path, blob, 0o644)

	j2, info := openT(t, dir, JournalOptions{})
	defer j2.Close()
	if info.Snapshot != nil {
		t.Fatalf("corrupt snapshot was accepted: %q", info.Snapshot)
	}
	// Post-snapshot records are still recovered (seq gap tolerated
	// because the baseline is gone, not torn).
	if len(info.Records) == 0 {
		t.Fatal("no records recovered after snapshot corruption")
	}
}

func TestJournalFsyncBatching(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, dir, JournalOptions{SyncEvery: 8})
	for i := 0; i < 20; i++ {
		if _, err := j.Append([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Sync(); err != nil {
		t.Fatal(err)
	}
	j.Close()
	_, info := openT(t, dir, JournalOptions{})
	if len(info.Records) != 20 {
		t.Fatalf("batched appends lost: %d/20", len(info.Records))
	}
}

func TestCheckpointRoundTripAndCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "model.ckpt")
	payload := bytes.Repeat([]byte("weights"), 100)
	if err := WriteCheckpoint(path, payload); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("checkpoint payload mismatch")
	}

	blob, _ := os.ReadFile(path)
	blob[20] ^= 0x01
	os.WriteFile(path, blob, 0o644)
	if _, err := ReadCheckpoint(path); err != ErrCorrupt {
		t.Fatalf("corrupt checkpoint read: err=%v, want ErrCorrupt", err)
	}

	if _, err := ReadCheckpoint(filepath.Join(t.TempDir(), "missing.ckpt")); !os.IsNotExist(err) {
		t.Fatalf("missing checkpoint: err=%v, want not-exist", err)
	}
}

func TestWriteFileAtomicReplacesWhole(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f")
	if err := WriteFileAtomic(path, []byte("first version, long"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, []byte("v2"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "v2" {
		t.Fatalf("content %q", got)
	}
	// No temp litter.
	entries, _ := os.ReadDir(filepath.Dir(path))
	if len(entries) != 1 {
		t.Fatalf("directory litter: %v", entries)
	}
}
