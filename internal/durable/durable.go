// Package durable is the dependency-free persistence layer under the
// estimation service: a write-ahead job journal, a checkpoint file
// format, and the atomic-write primitive both share.
//
// The point (DESIGN.md decision 12) is that MimicNet's expensive
// artifact — hours of simulation plus model training — must survive
// infrastructure churn. The journal makes the serve Scheduler's job
// state replayable across process restarts; the checkpoint format makes
// an interrupted training run resumable to a bitwise-identical final
// artifact; WriteFileAtomic makes "committed" mean committed (rename
// alone does not survive a power cut — the directory entry needs an
// fsync too).
//
// Everything here is plain files under one data directory, framed with
// lengths and CRC32s so torn tails are detected and clipped rather than
// propagated. No SQLite, no external deps: the write path must stay
// allocation-light and auditable, and the only queries ever needed are
// "replay everything" and "load the newest snapshot".
package durable

import (
	"fmt"
	"os"
	"path/filepath"
)

// WriteFileAtomic writes data to path with full crash consistency: the
// bytes land in a temp file in the same directory, are fsynced, renamed
// over path, and the directory entry itself is fsynced. After it
// returns nil, the file survives power loss with either the old or the
// new complete contents — never a torn mix, and never a rename that a
// crash can un-happen.
func WriteFileAtomic(path string, data []byte, mode os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("durable: atomic write: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("durable: atomic write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("durable: atomic write: %w", err)
	}
	if err := tmp.Chmod(mode); err != nil {
		tmp.Close()
		return fmt.Errorf("durable: atomic write: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("durable: atomic write: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("durable: atomic write: %w", err)
	}
	return SyncDir(dir)
}

// SyncDir fsyncs a directory so renames and removals within it are on
// stable storage. Filesystems that reject directory fsync (some network
// mounts) degrade gracefully: the error is swallowed, matching what the
// stdlib and most databases do there.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("durable: sync dir: %w", err)
	}
	defer d.Close()
	// EINVAL/ENOTSUP from exotic filesystems is not a caller bug.
	_ = d.Sync()
	return nil
}
