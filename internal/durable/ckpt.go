package durable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
)

// Checkpoint file format: a small self-validating container for one
// opaque payload (the ml layer's serialized training cursor — weights,
// Adam moments, epoch cursor, RNG position).
//
//	"MNCKPT01" | uint32 payload length | uint32 CRC32(payload) | payload
//
// Writes go through WriteFileAtomic, so a checkpoint on disk is always
// either the previous complete one or the new complete one. Reads
// validate magic, length, and CRC; any damage is ErrCorrupt — callers
// treat that exactly like "no checkpoint" and start from scratch,
// trading lost progress for correctness.

const ckptMagic = "MNCKPT01"

// ErrCorrupt marks a checkpoint that failed framing or CRC validation.
var ErrCorrupt = fmt.Errorf("durable: corrupt checkpoint")

// WriteCheckpoint atomically persists payload as a checkpoint file.
func WriteCheckpoint(path string, payload []byte) error {
	sp := obsStartSpan(obsCkptWrite)
	defer sp.End()
	buf := make([]byte, 0, len(ckptMagic)+8+len(payload))
	buf = append(buf, ckptMagic...)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	buf = append(buf, hdr[:]...)
	buf = append(buf, payload...)
	if err := WriteFileAtomic(path, buf, 0o644); err != nil {
		return err
	}
	obsCkptWrites.Inc()
	obsCkptBytes.Add(uint64(len(payload)))
	return nil
}

// ReadCheckpoint loads and validates a checkpoint file. A missing file
// returns os.ErrNotExist (via the underlying read); damage of any kind
// returns ErrCorrupt.
func ReadCheckpoint(path string) ([]byte, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(blob) < len(ckptMagic)+8 || string(blob[:len(ckptMagic)]) != ckptMagic {
		obsCkptCorrupt.Inc()
		return nil, ErrCorrupt
	}
	hdr := blob[len(ckptMagic):]
	n := int(binary.LittleEndian.Uint32(hdr[0:]))
	crc := binary.LittleEndian.Uint32(hdr[4:])
	payload := hdr[8:]
	if len(payload) != n || crc32.ChecksumIEEE(payload) != crc {
		obsCkptCorrupt.Inc()
		return nil, ErrCorrupt
	}
	obsCkptRestores.Inc()
	return payload, nil
}
