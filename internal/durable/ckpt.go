package durable

import (
	"errors"
	"fmt"
)

// Checkpoint file format: the generic container framing (container.go)
// under the "MNCKPT01" magic, holding one opaque payload (the ml
// layer's serialized training cursor — weights, Adam moments, epoch
// cursor, RNG position).

const ckptMagic = "MNCKPT01"

// ErrCorrupt marks a container that failed framing or CRC validation.
var ErrCorrupt = fmt.Errorf("durable: corrupt checkpoint")

// WriteCheckpoint atomically persists payload as a checkpoint file.
func WriteCheckpoint(path string, payload []byte) error {
	sp := obsStartSpan(obsCkptWrite)
	defer sp.End()
	if err := WriteContainer(path, ckptMagic, payload); err != nil {
		return err
	}
	obsCkptWrites.Inc()
	obsCkptBytes.Add(uint64(len(payload)))
	return nil
}

// ReadCheckpoint loads and validates a checkpoint file. A missing file
// returns os.ErrNotExist (via the underlying read); damage of any kind
// returns ErrCorrupt.
func ReadCheckpoint(path string) ([]byte, error) {
	payload, err := ReadContainer(path, ckptMagic)
	if errors.Is(err, ErrCorrupt) {
		obsCkptCorrupt.Inc()
		return nil, err
	}
	if err != nil {
		return nil, err
	}
	obsCkptRestores.Inc()
	return payload, nil
}
