// 4-wide AVX2+FMA gate kernels: sigmoid4 and tanh4.
//
// Unlike the GEMM kernels (which must avoid FMA to keep the two-
// rounding multiply-then-add chain of the scalar Dot), these kernels
// USE FMA — because the scalar code they must match does. The repo's
// Sigmoid and math.Tanh both bottom out in math.Exp, and Go's amd64
// archExp (math/exp_amd64.s) branches on useFMA = AVX && FMA: on FMA
// hardware every per-element operation is the avxfma sequence. The
// EXPCORE macro below replays that exact sequence — same SLEEF
// constants, same VFNMADD231/VFMADD213 contractions, same
// round-to-nearest int conversion — across 4 lanes at once, so each
// lane is bitwise identical to the scalar call. Dispatch only enables
// these kernels (wideGates) after verifying that parity empirically at
// init (wideGatesMatchScalar), which also guards against GODEBUG
// cpu.fma=off or a future Go release changing the algorithm.
//
// sigmoid4 returns an ok-lane mask: lanes whose exponent leaves exp's
// normal-scale fast path (|x| > Overflow, denormal/underflow results,
// non-finite inputs) must be recomputed by the scalar fallback. tanh4
// is total: its exp call sits in the z >= 0.625 branch where the
// argument 2z is in [1.25, 88.06] — always on the fast path — and the
// other branches (±1, the Cephes rational polynomial, x == 0) are
// evaluated unconditionally and blended by mask.
//
// Register contract for EXPCORE: input in Y0, result exp(Y0) in Y0,
// ok mask (all-ones per good lane) in Y9; clobbers Y1-Y6. Y7, Y8,
// Y10-Y14 are preserved for the callers. Y15 is never touched.

//go:build !purego

#include "textflag.h"

// Constants from math/exp_amd64.s (SLEEF-derived), plus bit masks.
DATA expconst<>+0(SB)/8, $0x7FFFFFFFFFFFFFFF  // abs mask
DATA expconst<>+8(SB)/8, $7.09782712893384e+02 // Overflow
DATA expconst<>+16(SB)/8, $1.4426950408889634073599246810018920 // LOG2E
DATA expconst<>+24(SB)/8, $0.69314718055966295651160180568695068359375 // LN2U
DATA expconst<>+32(SB)/8, $0.28235290563031577122588448175013436025525412068e-12 // LN2L
DATA expconst<>+40(SB)/8, $0.0625
DATA expconst<>+48(SB)/8, $2.4801587301587301587e-5
DATA expconst<>+56(SB)/8, $1.9841269841269841270e-4
DATA expconst<>+64(SB)/8, $1.3888888888888888889e-3
DATA expconst<>+72(SB)/8, $8.3333333333333333333e-3
DATA expconst<>+80(SB)/8, $4.1666666666666666667e-2
DATA expconst<>+88(SB)/8, $1.6666666666666666667e-1
DATA expconst<>+96(SB)/8, $0.5
DATA expconst<>+104(SB)/8, $1.0
DATA expconst<>+112(SB)/8, $2.0
DATA expconst<>+120(SB)/8, $0x8000000000000000 // sign mask
GLOBL expconst<>+0(SB), RODATA, $128

// 4×int32 exponent-bias constants for the ldexp step.
DATA expbias<>+0(SB)/4, $1023
DATA expbias<>+4(SB)/4, $1023
DATA expbias<>+8(SB)/4, $1023
DATA expbias<>+12(SB)/4, $1023
DATA expbias<>+16(SB)/4, $0x7FF
DATA expbias<>+20(SB)/4, $0x7FF
DATA expbias<>+24(SB)/4, $0x7FF
DATA expbias<>+28(SB)/4, $0x7FF
GLOBL expbias<>+0(SB), RODATA, $32

// Constants from math/tanh.go (Cephes).
DATA tanhconst<>+0(SB)/8, $0.625
DATA tanhconst<>+8(SB)/8, $4.4014845965556527147994e+01 // 0.5*MAXLOG
DATA tanhconst<>+16(SB)/8, $-9.64399179425052238628e-1  // tanhP[0]
DATA tanhconst<>+24(SB)/8, $-9.92877231001918586564e1   // tanhP[1]
DATA tanhconst<>+32(SB)/8, $-1.61468768441708447952e3   // tanhP[2]
DATA tanhconst<>+40(SB)/8, $1.12811678491632931402e2    // tanhQ[0]
DATA tanhconst<>+48(SB)/8, $2.23548839060100448583e3    // tanhQ[1]
DATA tanhconst<>+56(SB)/8, $4.84406305325125486048e3    // tanhQ[2]
GLOBL tanhconst<>+0(SB), RODATA, $64

// EXPCORE: Y0 = exp(Y0) lane-wise, Y9 = fast-path mask. The avxfma
// block of archExp, widened: n = rint(x*LOG2E); x -= n*LN2U (fused);
// x -= n*LN2L (fused); x *= 0.0625; 7-term fused Taylor; four add/mul
// squaring steps with the last mul fused into +1; scale by 2^n via
// exponent-field bit assembly. Lanes whose biased exponent leaves
// (0, 0x7FF), or with |x| > Overflow (covers ±Inf/NaN), are cleared
// from Y9 — their computed value is garbage and must not be used.
#define EXPCORE \
	VBROADCASTSD	expconst<>+0(SB), Y1   \
	VANDPD	Y0, Y1, Y1                     \ // |x|
	VBROADCASTSD	expconst<>+8(SB), Y2   \
	VCMPPD	$0x12, Y2, Y1, Y9              \ // ok = |x| <= Overflow (LE_OQ)
	VBROADCASTSD	expconst<>+16(SB), Y2  \
	VMULPD	Y0, Y2, Y2                     \ // LOG2E * x
	VCVTPD2DQY	Y2, X4                     \ // n (round to nearest, per MXCSR)
	VCVTDQ2PD	X4, Y3                     \ // float64(n)
	VBROADCASTSD	expconst<>+24(SB), Y2  \
	VFNMADD231PD	Y2, Y3, Y0             \ // x -= n*LN2U (single rounding)
	VBROADCASTSD	expconst<>+32(SB), Y2  \
	VFNMADD231PD	Y2, Y3, Y0             \ // x -= n*LN2L
	VBROADCASTSD	expconst<>+40(SB), Y2  \
	VMULPD	Y2, Y0, Y0                     \ // x *= 0.0625
	VBROADCASTSD	expconst<>+48(SB), Y1  \ // Taylor: p = c8
	VBROADCASTSD	expconst<>+56(SB), Y2  \
	VFMADD213PD	Y2, Y0, Y1                 \ // p = p*x + c7
	VBROADCASTSD	expconst<>+64(SB), Y2  \
	VFMADD213PD	Y2, Y0, Y1                 \
	VBROADCASTSD	expconst<>+72(SB), Y2  \
	VFMADD213PD	Y2, Y0, Y1                 \
	VBROADCASTSD	expconst<>+80(SB), Y2  \
	VFMADD213PD	Y2, Y0, Y1                 \
	VBROADCASTSD	expconst<>+88(SB), Y2  \
	VFMADD213PD	Y2, Y0, Y1                 \
	VBROADCASTSD	expconst<>+96(SB), Y2  \
	VFMADD213PD	Y2, Y0, Y1                 \ // p = p*x + 0.5
	VBROADCASTSD	expconst<>+104(SB), Y2 \
	VFMADD213PD	Y2, Y0, Y1                 \ // p = p*x + 1.0
	VMULPD	Y1, Y0, Y0                     \ // x *= p
	VBROADCASTSD	expconst<>+112(SB), Y2 \
	VADDPD	Y2, Y0, Y1                     \ // t = x + 2
	VMULPD	Y1, Y0, Y0                     \ // x *= t
	VADDPD	Y2, Y0, Y1                     \
	VMULPD	Y1, Y0, Y0                     \
	VADDPD	Y2, Y0, Y1                     \
	VMULPD	Y1, Y0, Y0                     \
	VADDPD	Y2, Y0, Y1                     \
	VBROADCASTSD	expconst<>+104(SB), Y2 \
	VFMADD213PD	Y2, Y1, Y0                 \ // x = x*t + 1
	VMOVDQU	expbias<>+0(SB), X5            \
	VPADDD	X5, X4, X4                     \ // biased = n + 1023
	VPXOR	X5, X5, X5                     \
	VPCMPGTD	X5, X4, X5                 \ // biased > 0
	VMOVDQU	expbias<>+16(SB), X6           \
	VPCMPGTD	X4, X6, X6                 \ // biased < 0x7FF
	VPAND	X6, X5, X5                     \
	VPMOVSXDQ	X5, Y5                     \
	VANDPD	Y5, Y9, Y9                     \ // fold into ok mask
	VPMOVSXDQ	X4, Y3                     \
	VPSLLQ	$52, Y3, Y3                    \ // 2^n as float64 bits
	VMULPD	Y3, Y0, Y0                     // result = fr * 2^n

// func sigmoid4(dst, src *float64) (ok uint8)
//
// The scalar Sigmoid branches on x >= 0 to keep exp's argument
// negative; both branches are e = Exp(-|x|) with numerator 1 (x >= 0)
// or e (x < 0) over denominator 1+e, which is how it is computed here
// (branch by blend). -0 and NaN take the same path as scalar: -0 >= 0
// is true in both, and NaN lanes are masked out for the fallback.
TEXT ·sigmoid4(SB), NOSPLIT, $0-17
	MOVQ	dst+0(FP), DI
	MOVQ	src+8(FP), SI
	VMOVUPD	(SI), Y8
	VBROADCASTSD	expconst<>+0(SB), Y0
	VANDPD	Y8, Y0, Y0  // |x|
	VBROADCASTSD	expconst<>+120(SB), Y1
	VORPD	Y1, Y0, Y0  // -|x|
	EXPCORE
	VXORPD	Y2, Y2, Y2
	VCMPPD	$0x1D, Y2, Y8, Y3 // x >= 0 (GE_OQ)
	VBROADCASTSD	expconst<>+104(SB), Y1
	VBLENDVPD	Y3, Y1, Y0, Y4 // num = x >= 0 ? 1 : e
	VADDPD	Y0, Y1, Y5         // 1 + e
	VDIVPD	Y5, Y4, Y0         // num / (1 + e)
	// Failed lanes keep the ORIGINAL input so the caller's scalar
	// fallback can recompute from dst even when dst aliases src.
	VBLENDVPD	Y9, Y0, Y8, Y0
	VMOVUPD	Y0, (DI)
	VMOVMSKPD	Y9, AX
	VZEROUPPER
	MOVB	AX, ok+16(FP)
	RET

// func tanh4(dst, src *float64)
//
// math.Tanh's three branches (math/tanh.go), all evaluated, blended by
// mask with the scalar switch's precedence (big beats mid beats poly):
//
//	z > 0.5*MAXLOG: ±1
//	z >= 0.625:     s = Exp(2z); 1 - 2/(s+1), negated for x < 0
//	default:        x == 0 ? x : Cephes x + x·s·P(s)/Q(s), s = x²
TEXT ·tanh4(SB), NOSPLIT, $0-16
	MOVQ	dst+0(FP), DI
	MOVQ	src+8(FP), SI
	VMOVUPD	(SI), Y8
	VBROADCASTSD	expconst<>+0(SB), Y0
	VANDPD	Y8, Y0, Y10   // z = |x|
	VADDPD	Y10, Y10, Y0  // 2z (doubling is exact; == 2*z bitwise)
	EXPCORE               // Y0 = s = Exp(2z); Y9 ignored (mid lanes
	                      // always hit the fast path: 2z in [1.25, 88.06])
	VBROADCASTSD	expconst<>+104(SB), Y1
	VADDPD	Y0, Y1, Y2    // s + 1
	VBROADCASTSD	expconst<>+112(SB), Y3
	VDIVPD	Y2, Y3, Y2    // 2 / (s+1)
	VSUBPD	Y2, Y1, Y7    // 1 - 2/(s+1)
	VBROADCASTSD	expconst<>+120(SB), Y3
	VANDPD	Y8, Y3, Y11   // sign(x)
	VXORPD	Y11, Y7, Y7   // negate mid result for x < 0

	VMULPD	Y8, Y8, Y0    // s2 = x*x
	VBROADCASTSD	tanhconst<>+16(SB), Y1
	VMULPD	Y0, Y1, Y1    // P0*s2
	VBROADCASTSD	tanhconst<>+24(SB), Y2
	VADDPD	Y2, Y1, Y1    // + P1
	VMULPD	Y0, Y1, Y1    // * s2
	VBROADCASTSD	tanhconst<>+32(SB), Y2
	VADDPD	Y2, Y1, Y1    // num
	VBROADCASTSD	tanhconst<>+40(SB), Y2
	VADDPD	Y2, Y0, Y3    // s2 + Q0
	VMULPD	Y0, Y3, Y3    // * s2
	VBROADCASTSD	tanhconst<>+48(SB), Y2
	VADDPD	Y2, Y3, Y3    // + Q1
	VMULPD	Y0, Y3, Y3    // * s2
	VBROADCASTSD	tanhconst<>+56(SB), Y2
	VADDPD	Y2, Y3, Y3    // den
	VMULPD	Y0, Y8, Y2    // x*s2
	VMULPD	Y1, Y2, Y2    // (x*s2)*num
	VDIVPD	Y3, Y2, Y2    // /den
	VADDPD	Y2, Y8, Y12   // x + x*s2*num/den
	VXORPD	Y3, Y3, Y3
	VCMPPD	$0x00, Y3, Y8, Y13 // x == 0 (EQ_OQ): return x, preserving -0
	VBLENDVPD	Y13, Y8, Y12, Y12

	VBROADCASTSD	tanhconst<>+0(SB), Y3
	VCMPPD	$0x1D, Y3, Y10, Y13 // z >= 0.625 (GE_OQ)
	VBLENDVPD	Y13, Y7, Y12, Y12
	VBROADCASTSD	tanhconst<>+8(SB), Y3
	VCMPPD	$0x1E, Y3, Y10, Y13 // z > 0.5*MAXLOG (GT_OQ)
	VBROADCASTSD	expconst<>+104(SB), Y3
	VORPD	Y11, Y3, Y3         // ±1 with x's sign
	VBLENDVPD	Y13, Y3, Y12, Y12
	VMOVUPD	Y12, (DI)
	VZEROUPPER
	RET
