package ml

import (
	"context"
	"encoding/json"
	"fmt"

	"mimicnet/internal/stats"
)

// ModelConfig holds the hyper-parameters of a Mimic internal model; the
// tunable ones (WBCE weight, Huber delta, layers, hidden size, epochs,
// learning rate) are exactly the knobs the paper's hyper-parameter tuning
// phase explores (§7.2).
type ModelConfig struct {
	Features int `json:"features"` // per-packet feature width
	Hidden   int `json:"hidden"`   // LSTM hidden size
	Layers   int `json:"layers"`   // stacked LSTM count
	Window   int `json:"window"`   // packets per training window

	HuberDelta float64        `json:"huber_delta"` // Huber threshold
	LatLoss    RegressionLoss `json:"lat_loss"`    // latency loss selection
	DropWeight float64        `json:"drop_weight"` // WBCE w; 0 => plain BCE

	// Loss mixing weights. The paper favors latency over classification
	// because regression is the harder task (§5.4).
	LatWeight float64 `json:"lat_weight"`
	DropLossW float64 `json:"drop_loss_w"`
	ECNLossW  float64 `json:"ecn_loss_w"`

	LR       float64 `json:"lr"`
	Epochs   int     `json:"epochs"`
	ClipNorm float64 `json:"clip_norm"`
	Seed     int64   `json:"seed"`

	// BatchSize selects the trainer: 1 runs the original per-sample
	// scalar BPTT loop (one optimizer step per sample — the parity
	// reference), values > 1 run the minibatch trainer (one optimizer
	// step per batch over fused GEMM passes), and 0 means
	// DefaultBatchSize. Affects training results, so it participates in
	// the model cache key.
	BatchSize int `json:"batch_size,omitempty"`

	// CellType selects the trunk class: "lstm" (default), "gru", or
	// "mlp" (non-recurrent windowed baseline).
	CellType string `json:"cell_type,omitempty"`
}

// DefaultModelConfig returns a small, fast configuration with the paper's
// recommended loss setup (Huber δ=1, WBCE w=0.7).
func DefaultModelConfig(features, window int) ModelConfig {
	return ModelConfig{
		Features: features, Hidden: 24, Layers: 1, Window: window,
		HuberDelta: 1.0, LatLoss: LossHuber, DropWeight: 0.7,
		LatWeight: 2.0, DropLossW: 1.0, ECNLossW: 0.5,
		LR: 3e-3, Epochs: 4, ClipNorm: 5.0, Seed: 1,
		// Explicit (not 0) so the trainer choice is visible in the
		// serialized config and in model cache keys: models trained by
		// the minibatch path must not collide with sequentially trained
		// ones.
		BatchSize: DefaultBatchSize,
	}
}

// Validate reports configuration errors.
func (c ModelConfig) Validate() error {
	switch {
	case c.Features < 1:
		return fmt.Errorf("ml: features must be >= 1")
	case c.Hidden < 1:
		return fmt.Errorf("ml: hidden must be >= 1")
	case c.Layers < 1:
		return fmt.Errorf("ml: layers must be >= 1")
	case c.Window < 1:
		return fmt.Errorf("ml: window must be >= 1")
	case c.LR <= 0:
		return fmt.Errorf("ml: learning rate must be positive")
	case c.Epochs < 1:
		return fmt.Errorf("ml: epochs must be >= 1")
	case c.BatchSize < 0:
		return fmt.Errorf("ml: batch size must be >= 0 (0 selects the default)")
	}
	switch c.CellType {
	case "", "lstm", "gru":
	case "mlp":
		// The windowed MLP has no recurrent path to route gradients to
		// earlier steps of a layer below it, so stacking would silently
		// truncate gradients. Keep the baseline honest: one layer only.
		if c.Layers > 1 {
			return fmt.Errorf("ml: mlp trunk supports a single layer")
		}
	default:
		return fmt.Errorf("ml: unknown cell type %q", c.CellType)
	}
	return nil
}

// Sample is one training example: a window of packet feature vectors and
// the targets for the window's final packet.
type Sample struct {
	Window  [][]float64
	Latency float64 // normalized to [0,1] by the caller's Discretizer
	Dropped bool
	ECN     bool
}

// Prediction is the model output for one packet.
type Prediction struct {
	Latency float64 // normalized [0,1]
	PDrop   float64
	PECN    float64
}

// Model is the Mimic internal model: a stacked-LSTM trunk over packet
// feature windows with three heads predicting latency, drop probability,
// and ECN-mark probability (paper §5.2, §5.5).
type Model struct {
	Cfg      ModelConfig
	Trunk    []Cell
	LatHead  *Linear
	DropHead *Linear
	ECNHead  *Linear
}

// NewModel builds and initializes a model.
func NewModel(cfg ModelConfig) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := stats.NewStream(cfg.Seed)
	m := &Model{Cfg: cfg}
	in := cfg.Features
	for i := 0; i < cfg.Layers; i++ {
		switch cfg.CellType {
		case "gru":
			m.Trunk = append(m.Trunk, NewGRU(in, cfg.Hidden, s))
		case "mlp":
			m.Trunk = append(m.Trunk, NewWindowMLP(in, cfg.Hidden, cfg.Window, s))
		default:
			m.Trunk = append(m.Trunk, NewLSTM(in, cfg.Hidden, s))
		}
		in = cfg.Hidden
	}
	m.LatHead = NewLinear(cfg.Hidden, 1, s)
	m.DropHead = NewLinear(cfg.Hidden, 1, s)
	m.ECNHead = NewLinear(cfg.Hidden, 1, s)
	return m, nil
}

// Params returns all trainable parameters.
func (m *Model) Params() []*Matrix {
	var ps []*Matrix
	for _, l := range m.Trunk {
		ps = append(ps, l.Params()...)
	}
	ps = append(ps, m.LatHead.Params()...)
	ps = append(ps, m.DropHead.Params()...)
	ps = append(ps, m.ECNHead.Params()...)
	return ps
}

func (m *Model) heads(h []float64) Prediction {
	return Prediction{
		Latency: Sigmoid(m.LatHead.Forward(h)[0]),
		PDrop:   Sigmoid(m.DropHead.Forward(h)[0]),
		PECN:    Sigmoid(m.ECNHead.Forward(h)[0]),
	}
}

// Forward predicts for one window (inference).
func (m *Model) Forward(window [][]float64) Prediction {
	tr := ForwardWindow(m.Trunk, window, false)
	return m.heads(tr.Outputs)
}

// trainStep runs forward+backward for one sample and returns the loss.
func (m *Model) trainStep(s Sample) float64 {
	return m.trainStepWindow(s.Window, s.Latency, s.Dropped, s.ECN)
}

// trainStepWindow is trainStep over an explicit window and targets, so
// columnar sources can feed the scalar path without materializing a
// Sample.
func (m *Model) trainStepWindow(window [][]float64, latency float64, dropped, ecn bool) float64 {
	tr := ForwardWindow(m.Trunk, window, true)
	h := tr.Outputs
	pred := m.heads(h)

	latTarget := latency
	dropTarget, ecnTarget := 0.0, 0.0
	if dropped {
		dropTarget = 1
	}
	if ecn {
		ecnTarget = 1
	}

	latLoss, dLat := m.Cfg.LatLoss.Eval(pred.Latency, latTarget, m.Cfg.HuberDelta)
	var dropLoss, dDrop float64
	if m.Cfg.DropWeight > 0 {
		dropLoss, dDrop = WBCE(pred.PDrop, dropTarget, m.Cfg.DropWeight)
	} else {
		dropLoss, dDrop = BCE(pred.PDrop, dropTarget)
	}
	ecnLoss, dECN := BCE(pred.PECN, ecnTarget)

	total := m.Cfg.LatWeight*latLoss + m.Cfg.DropLossW*dropLoss + m.Cfg.ECNLossW*ecnLoss

	// Backprop through sigmoid heads into the shared hidden state.
	dLatLogit := m.Cfg.LatWeight * dLat * DSigmoid(pred.Latency)
	dDropLogit := m.Cfg.DropLossW * dDrop * DSigmoid(pred.PDrop)
	dECNLogit := m.Cfg.ECNLossW * dECN * DSigmoid(pred.PECN)

	dh := Zeros(len(h))
	AddTo(dh, m.LatHead.Backward(h, []float64{dLatLogit}))
	AddTo(dh, m.DropHead.Backward(h, []float64{dDropLogit}))
	AddTo(dh, m.ECNHead.Backward(h, []float64{dECNLogit}))
	tr.Backward(dh)
	return total
}

// TrainResult reports per-epoch average losses and total wall-clock-free
// work estimates.
type TrainResult struct {
	EpochLoss []float64
	Samples   int
}

// Train fits the model to samples with Adam, shuffling each epoch. It is
// TrainContext without cancellation or progress reporting; the trainer
// (scalar vs minibatch) is selected by Cfg.BatchSize.
func (m *Model) Train(samples []Sample) TrainResult {
	res, _ := m.TrainContext(context.Background(), samples, TrainOpts{})
	return res
}

// TrainContext fits the model to samples with Adam, shuffling each
// epoch. Cancellation is honored between optimizer steps (parameters are
// never left mid-update; pending gradients are dropped), in which case
// the partial result and ctx's error are returned. opts.Progress, when
// non-nil, receives one report per finished epoch.
//
// When opts.ResumeFrom carries a checkpoint, weights, optimizer moments,
// shuffle permutation, and RNG position are restored first and training
// continues at the checkpoint's epoch cursor; the final model is bitwise
// identical to an uninterrupted run with the same config and samples.
func (m *Model) TrainContext(ctx context.Context, samples []Sample, opts TrainOpts) (TrainResult, error) {
	return m.TrainSourceContext(ctx, samplesOf(samples), opts)
}

// TrainSource is Train over a SampleSource (columnar views train
// without materializing []Sample).
func (m *Model) TrainSource(src SampleSource) TrainResult {
	res, _ := m.TrainSourceContext(context.Background(), src, TrainOpts{})
	return res
}

// TrainSourceContext is TrainContext over a SampleSource. Training over
// a SampleView is bitwise identical to training over the equivalent
// []Sample: both feed the same float values through the same loops.
func (m *Model) TrainSourceContext(ctx context.Context, src SampleSource, opts TrainOpts) (TrainResult, error) {
	rng := stats.NewStream(m.Cfg.Seed + 1)
	if ck := opts.ResumeFrom; ck != nil {
		if err := m.restoreCheckpoint(ck, src.Len()); err != nil {
			return TrainResult{Samples: src.Len()}, err
		}
		rng = stats.RestoreStream(ck.RNG)
	}
	return m.fit(ctx, m.Cfg.LR, rng, src, m.Cfg.Epochs, opts)
}

// EvalResult aggregates test-set quality per task.
type EvalResult struct {
	LatencyMAE   float64 // on the normalized scale
	DropRateTrue float64
	DropRatePred float64 // expected drop rate from predicted probabilities
	ECNRateTrue  float64
	ECNRatePred  float64
	Loss         float64
}

// Evaluate scores samples without updating parameters.
func (m *Model) Evaluate(samples []Sample) EvalResult {
	return m.EvaluateSource(samplesOf(samples))
}

// EvaluateSource is Evaluate over a SampleSource; windows are gathered
// into a reused buffer of row aliases, so scoring a columnar view
// allocates nothing per sample.
func (m *Model) EvaluateSource(src SampleSource) EvalResult {
	var res EvalResult
	count := src.Len()
	if count == 0 {
		return res
	}
	var win [][]float64
	for i := 0; i < count; i++ {
		win = src.WindowAppend(win[:0], i)
		p := m.Forward(win)
		latTarget, dropped, ecn := src.Target(i)
		l, _ := MAE(p.Latency, latTarget)
		res.LatencyMAE += l
		res.DropRatePred += p.PDrop
		res.ECNRatePred += p.PECN
		if dropped {
			res.DropRateTrue++
		}
		if ecn {
			res.ECNRateTrue++
		}
		latLoss, _ := m.Cfg.LatLoss.Eval(p.Latency, latTarget, m.Cfg.HuberDelta)
		res.Loss += latLoss
	}
	n := float64(count)
	res.LatencyMAE /= n
	res.DropRateTrue /= n
	res.DropRatePred /= n
	res.ECNRateTrue /= n
	res.ECNRatePred /= n
	res.Loss /= n
	return res
}

// FLOPsPerStep estimates floating-point operations for one inference
// step (one packet through trunk + heads), for the Figure 23 compute
// accounting.
func (m *Model) FLOPsPerStep() float64 {
	var f float64
	in := m.Cfg.Features
	for range m.Trunk {
		f += 2 * float64(4*m.Cfg.Hidden*(in+m.Cfg.Hidden))
		in = m.Cfg.Hidden
	}
	f += 3 * 2 * float64(m.Cfg.Hidden) // three scalar heads
	return f
}

// modelJSON is the serialized form.
type modelJSON struct {
	Cfg      ModelConfig `json:"cfg"`
	Trunk    []*cellJSON `json:"trunk"`
	LatHead  *linJSON    `json:"lat_head"`
	DropHead *linJSON    `json:"drop_head"`
	ECNHead  *linJSON    `json:"ecn_head"`
}

// cellJSON serializes any supported trunk cell. LSTM/GRU use Wx/Wh/B;
// the MLP uses W/B with its window size.
type cellJSON struct {
	Type       string `json:"type"`
	In, Hidden int
	Window     int     `json:"window,omitempty"`
	Wx, Wh     *Matrix `json:",omitempty"`
	W          *Matrix `json:",omitempty"`
	B          *Matrix
}

type linJSON struct {
	W, B *Matrix
}

func cellToJSON(c Cell) (*cellJSON, error) {
	switch l := c.(type) {
	case *LSTM:
		return &cellJSON{Type: "lstm", In: l.In, Hidden: l.Hidden, Wx: l.Wx, Wh: l.Wh, B: l.B}, nil
	case *GRU:
		return &cellJSON{Type: "gru", In: l.In, Hidden: l.Hidden, Wx: l.Wx, Wh: l.Wh, B: l.B}, nil
	case *WindowMLP:
		return &cellJSON{Type: "mlp", In: l.In, Hidden: l.Hidden, Window: l.Window, W: l.W, B: l.B}, nil
	}
	return nil, fmt.Errorf("ml: cannot serialize cell type %q", c.CellType())
}

func cellFromJSON(cj *cellJSON) (Cell, error) {
	switch cj.Type {
	case "lstm":
		return &LSTM{In: cj.In, Hidden: cj.Hidden, Wx: cj.Wx, Wh: cj.Wh, B: cj.B}, nil
	case "gru":
		return &GRU{In: cj.In, Hidden: cj.Hidden, Wx: cj.Wx, Wh: cj.Wh, B: cj.B}, nil
	case "mlp":
		return &WindowMLP{In: cj.In, Hidden: cj.Hidden, Window: cj.Window, W: cj.W, B: cj.B}, nil
	}
	return nil, fmt.Errorf("ml: unknown serialized cell type %q", cj.Type)
}

// MarshalJSON serializes the model weights and config.
func (m *Model) MarshalJSON() ([]byte, error) {
	mj := modelJSON{Cfg: m.Cfg}
	for _, l := range m.Trunk {
		cj, err := cellToJSON(l)
		if err != nil {
			return nil, err
		}
		mj.Trunk = append(mj.Trunk, cj)
	}
	mj.LatHead = &linJSON{m.LatHead.W, m.LatHead.B}
	mj.DropHead = &linJSON{m.DropHead.W, m.DropHead.B}
	mj.ECNHead = &linJSON{m.ECNHead.W, m.ECNHead.B}
	return json.Marshal(mj)
}

// UnmarshalJSON restores a serialized model.
func (m *Model) UnmarshalJSON(b []byte) error {
	var mj modelJSON
	if err := json.Unmarshal(b, &mj); err != nil {
		return err
	}
	m.Cfg = mj.Cfg
	m.Trunk = nil
	for _, cj := range mj.Trunk {
		c, err := cellFromJSON(cj)
		if err != nil {
			return err
		}
		m.Trunk = append(m.Trunk, c)
	}
	m.LatHead = &Linear{W: mj.LatHead.W, B: mj.LatHead.B}
	m.DropHead = &Linear{W: mj.DropHead.W, B: mj.DropHead.B}
	m.ECNHead = &Linear{W: mj.ECNHead.W, B: mj.ECNHead.B}
	return nil
}

// StatefulModel wraps a trained model for streaming per-packet inference
// with persistent hidden state, as embedded in Mimic clusters.
type StatefulModel struct {
	model  *Model
	runner *StatefulRunner
	// Steps counts inference steps for FLOPs accounting.
	Steps uint64
}

// NewStatefulModel builds a streaming wrapper around a trained model.
func NewStatefulModel(m *Model) *StatefulModel {
	return &StatefulModel{model: m, runner: NewStatefulRunner(m.Trunk)}
}

// Predict feeds one packet's features and returns the prediction.
func (s *StatefulModel) Predict(x []float64) Prediction {
	s.Steps++
	h := s.runner.Step(x)
	return s.model.heads(h)
}

// Advance updates hidden state for a feeder packet and discards the
// output (paper §6: feeders update internal models' state as if the
// packets were routed, without creating or sending them).
func (s *StatefulModel) Advance(x []float64) {
	s.Steps++
	s.runner.Step(x)
}

// Reset clears the recurrent state.
func (s *StatefulModel) Reset() { s.runner.Reset() }

// Model returns the wrapped model.
func (s *StatefulModel) Model() *Model { return s.model }
