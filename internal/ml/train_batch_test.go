package ml

import (
	"context"
	"math"
	"testing"

	"mimicnet/internal/stats"
)

func cellConfigs() map[string]ModelConfig {
	lstm := DefaultModelConfig(3, 5)
	lstm.Hidden = 7
	lstm.Layers = 2
	gru := lstm
	gru.CellType = "gru"
	mlp := lstm
	mlp.CellType = "mlp"
	mlp.Layers = 1
	return map[string]ModelConfig{"lstm": lstm, "gru": gru, "mlp": mlp}
}

// TestBatchedGradMatchesSequential is the core correctness check of the
// minibatch trainer: for every trunk class, the fused batched
// forward+backward must produce (up to float reassociation) the same
// parameter gradients as averaging the scalar per-sample passes.
func TestBatchedGradMatchesSequential(t *testing.T) {
	pool := NewPool(1)
	defer pool.Close()
	for name, cfg := range cellConfigs() {
		t.Run(name, func(t *testing.T) {
			samples := synthSamples(9, cfg.Features, cfg.Window, 31)
			idx := make([]int, len(samples))
			for i := range idx {
				idx[i] = i
			}

			seq, _ := NewModel(cfg)
			for _, s := range samples {
				seq.trainStep(s)
			}
			// trainStep accumulates without stepping, so seq grads now
			// hold the sum over samples; the batched pass computes the
			// mean-loss gradient.
			scale := 1 / float64(len(samples))

			bat, _ := NewModel(cfg)
			bt := newMiniBatchTrainer(bat, pool)
			bt.trainBatch(samplesOf(samples), idx)

			sp, bp := seq.Params(), bat.Params()
			for pi := range sp {
				for gi := range sp[pi].Grad {
					want := sp[pi].Grad[gi] * scale
					got := bp[pi].Grad[gi]
					if diff := math.Abs(want - got); diff > 1e-9*(1+math.Abs(want)) {
						t.Fatalf("param %d grad %d: batched %v vs sequential mean %v", pi, gi, got, want)
					}
				}
			}
		})
	}
}

// TestGenericTrainLayerMatchesFused pins the scalar fallback layer to
// the fused LSTM trainer: a hypothetical future cell class without a
// fused path must still train with correct gradients.
func TestGenericTrainLayerMatchesFused(t *testing.T) {
	pool := NewPool(1)
	defer pool.Close()
	cfg := cellConfigs()["lstm"]
	samples := synthSamples(6, cfg.Features, cfg.Window, 17)
	idx := []int{0, 1, 2, 3, 4, 5}

	fused, _ := NewModel(cfg)
	bt := newMiniBatchTrainer(fused, pool)
	bt.trainBatch(samplesOf(samples), idx)

	gen, _ := NewModel(cfg)
	gt := newMiniBatchTrainer(gen, pool)
	for i := range gt.layers {
		gt.layers[i] = &genericTrainLayer{c: gen.Trunk[i]}
	}
	gt.trainBatch(samplesOf(samples), idx)

	fp, gp := fused.Params(), gen.Params()
	for pi := range fp {
		for gi := range fp[pi].Grad {
			a, b := fp[pi].Grad[gi], gp[pi].Grad[gi]
			if diff := math.Abs(a - b); diff > 1e-9*(1+math.Abs(a)) {
				t.Fatalf("param %d grad %d: fused %v vs generic %v", pi, gi, a, b)
			}
		}
	}
}

// TestBatchedTrainerDeterministic asserts the minibatch trainer's
// determinism contract: for a fixed seed and batch size, training is
// bitwise reproducible run to run and across pool worker counts.
func TestBatchedTrainerDeterministic(t *testing.T) {
	for name, cfg := range cellConfigs() {
		t.Run(name, func(t *testing.T) {
			cfg.BatchSize = 8
			cfg.Epochs = 2
			samples := synthSamples(50, cfg.Features, cfg.Window, 41)
			train := func(workers int) (*Model, TrainResult) {
				pool := NewPool(workers)
				defer pool.Close()
				m, _ := NewModel(cfg)
				res, err := m.TrainContext(context.Background(), samples, TrainOpts{Pool: pool})
				if err != nil {
					t.Fatalf("TrainContext: %v", err)
				}
				return m, res
			}
			m1, r1 := train(1)
			m2, r2 := train(1)
			m4, r4 := train(4)
			for e := range r1.EpochLoss {
				if r1.EpochLoss[e] != r2.EpochLoss[e] || r1.EpochLoss[e] != r4.EpochLoss[e] {
					t.Fatalf("epoch %d loss not reproducible: %v %v %v", e, r1.EpochLoss[e], r2.EpochLoss[e], r4.EpochLoss[e])
				}
			}
			p1, p2, p4 := m1.Params(), m2.Params(), m4.Params()
			for pi := range p1 {
				for di := range p1[pi].Data {
					if p1[pi].Data[di] != p2[pi].Data[di] {
						t.Fatalf("param %d elem %d differs across identical runs", pi, di)
					}
					if p1[pi].Data[di] != p4[pi].Data[di] {
						t.Fatalf("param %d elem %d differs across worker counts", pi, di)
					}
				}
			}
		})
	}
}

// TestBatchedSequentialParity trains the same architecture with the
// retained sequential trainer (BatchSize 1) and the minibatch trainer
// and requires both to land at comparable held-out quality. The
// trajectories differ by construction (B× fewer optimizer steps on
// averaged gradients), so this is a tolerance check, not bitwise.
func TestBatchedSequentialParity(t *testing.T) {
	cfg := DefaultModelConfig(2, 4)
	cfg.Hidden = 12
	cfg.Epochs = 8
	train := synthSamples(400, 2, 4, 11)
	held := synthSamples(120, 2, 4, 13)

	cfg.BatchSize = 1
	seq, _ := NewModel(cfg)
	seqRes := seq.Train(train)
	seqEval := seq.Evaluate(held)

	cfg.BatchSize = 16
	bat, _ := NewModel(cfg)
	batRes := bat.Train(train)
	batEval := bat.Evaluate(held)

	if last, first := seqRes.EpochLoss[cfg.Epochs-1], seqRes.EpochLoss[0]; last >= first {
		t.Errorf("sequential loss did not decrease: %v -> %v", first, last)
	}
	if last, first := batRes.EpochLoss[cfg.Epochs-1], batRes.EpochLoss[0]; last >= first {
		t.Errorf("batched loss did not decrease: %v -> %v", first, last)
	}
	if diff := math.Abs(seqEval.LatencyMAE - batEval.LatencyMAE); diff > 0.05 {
		t.Errorf("held-out LatencyMAE diverged: sequential %v vs batched %v", seqEval.LatencyMAE, batEval.LatencyMAE)
	}
	if diff := math.Abs(seqEval.DropRatePred - batEval.DropRatePred); diff > 0.1 {
		t.Errorf("held-out drop rate diverged: sequential %v vs batched %v", seqEval.DropRatePred, batEval.DropRatePred)
	}
}

// TestTrainContextCancellation covers the mid-train cancellation
// contract: prompt return at an optimizer-step boundary, no pending
// gradients left behind, and a model that keeps training cleanly
// afterwards.
func TestTrainContextCancellation(t *testing.T) {
	cfg := DefaultModelConfig(2, 4)
	cfg.Hidden = 8
	cfg.Epochs = 6
	samples := synthSamples(200, 2, 4, 23)

	t.Run("pre-cancelled", func(t *testing.T) {
		m, _ := NewModel(cfg)
		before := snapshotParams(m)
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		res, err := m.TrainContext(ctx, samples, TrainOpts{})
		if err != context.Canceled {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if len(res.EpochLoss) != 0 {
			t.Fatalf("pre-cancelled training reported %d epochs", len(res.EpochLoss))
		}
		for pi, p := range m.Params() {
			for di := range p.Data {
				if p.Data[di] != before[pi][di] {
					t.Fatalf("param %d changed despite pre-cancelled ctx", pi)
				}
			}
		}
	})

	t.Run("mid-train", func(t *testing.T) {
		m, _ := NewModel(cfg)
		ctx, cancel := context.WithCancel(context.Background())
		var epochs int
		res, err := m.TrainContext(ctx, samples, TrainOpts{Progress: func(p TrainProgress) {
			epochs++
			if p.Epoch == 2 {
				cancel()
			}
		}})
		if err != context.Canceled {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if len(res.EpochLoss) != 2 || epochs != 2 {
			t.Fatalf("cancelled after epoch 2, got %d epoch losses / %d callbacks", len(res.EpochLoss), epochs)
		}
		// Optimizer state must be consistent: all gradients dropped, all
		// parameters finite, and continued training works from here.
		for pi, p := range m.Params() {
			for gi, g := range p.Grad {
				if g != 0 {
					t.Fatalf("param %d grad %d = %v after cancel, want 0", pi, gi, g)
				}
			}
			for _, v := range p.Data {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("param %d not finite after cancel", pi)
				}
			}
		}
		res2, err := m.TrainContext(context.Background(), samples, TrainOpts{})
		if err != nil || len(res2.EpochLoss) != cfg.Epochs {
			t.Fatalf("training after cancel: err=%v epochs=%d", err, len(res2.EpochLoss))
		}
	})
}

// TestFineTuneContextUsesBatchedPath sanity-checks that FineTune flows
// through the shared fit loop (progress reported with the configured
// batch size) and still improves the model it starts from.
func TestFineTuneContextUsesBatchedPath(t *testing.T) {
	cfg := DefaultModelConfig(2, 4)
	cfg.Hidden = 8
	cfg.Epochs = 3
	m, _ := NewModel(cfg)
	samples := synthSamples(150, 2, 4, 29)
	m.Train(samples)
	var got []TrainProgress
	res, err := m.FineTuneContext(context.Background(), samples, 2, 0, TrainOpts{
		Progress: func(p TrainProgress) { got = append(got, p) },
	})
	if err != nil {
		t.Fatalf("FineTuneContext: %v", err)
	}
	if len(res.EpochLoss) != 2 || len(got) != 2 {
		t.Fatalf("epochs = %d, progress reports = %d", len(res.EpochLoss), len(got))
	}
	for i, p := range got {
		if p.Epoch != i+1 || p.Epochs != 2 || p.BatchSize != DefaultBatchSize || p.Samples != len(samples) {
			t.Fatalf("progress %d = %+v", i, p)
		}
		if p.SamplesPerSec <= 0 {
			t.Fatalf("progress %d samples/sec = %v", i, p.SamplesPerSec)
		}
	}
}

// TestRaggedWindowsFallBackToScalar: samples with unequal window lengths
// cannot be fused; fit must silently use the scalar path (batch size 1
// in progress reports) and still train.
func TestRaggedWindowsFallBackToScalar(t *testing.T) {
	cfg := DefaultModelConfig(2, 4)
	cfg.Hidden = 6
	cfg.Epochs = 1
	m, _ := NewModel(cfg)
	samples := synthSamples(20, 2, 4, 37)
	samples = append(samples, synthSamples(5, 2, 3, 39)...)
	var prog []TrainProgress
	_, err := m.TrainContext(context.Background(), samples, TrainOpts{
		Progress: func(p TrainProgress) { prog = append(prog, p) },
	})
	if err != nil {
		t.Fatalf("TrainContext: %v", err)
	}
	if len(prog) != 1 || prog[0].BatchSize != 1 {
		t.Fatalf("expected scalar fallback (batch size 1), got %+v", prog)
	}
}

// TestMulLanesTMatchesMulVecT pins the batched backward GEMM to its
// per-vector reference.
func TestMulLanesTMatchesMulVecT(t *testing.T) {
	pool := NewPool(4)
	defer pool.Close()
	s := stats.NewStream(5)
	m := NewMatrix(12, 7)
	m.InitXavier(s)
	n, stride := 9, 14
	dys := make([]float64, n*stride)
	for i := range dys {
		dys[i] = s.NormFloat64()
	}
	out := make([]float64, n*m.Cols)
	r0, r1 := 2, 12
	m.MulLanesT(r0, r1, dys, stride, n, out, pool)
	for a := 0; a < n; a++ {
		want := Zeros(m.Cols)
		for r := r0; r < r1; r++ {
			d := dys[a*stride+r]
			for c := 0; c < m.Cols; c++ {
				want[c] += m.Data[r*m.Cols+c] * d
			}
		}
		for c := range want {
			if got := out[a*m.Cols+c]; got != want[c] {
				t.Fatalf("lane %d col %d: %v != %v", a, c, got, want[c])
			}
		}
	}
}

// TestAddGradLanesMatchesAddOuterGrad pins the batched weight-gradient
// kernel to per-lane AddOuterGrad calls in ascending-lane order (the
// documented reduction order), including worker-count invariance.
func TestAddGradLanesMatchesAddOuterGrad(t *testing.T) {
	s := stats.NewStream(6)
	ref := NewMatrix(10, 6)
	ref.InitXavier(s)
	n, stride := 11, 10
	dys := make([]float64, n*stride)
	xs := make([]float64, n*ref.Cols)
	for i := range dys {
		dys[i] = s.NormFloat64()
	}
	for i := range xs {
		xs[i] = s.NormFloat64()
	}
	for a := 0; a < n; a++ {
		ref.AddOuterGrad(dys[a*stride:a*stride+stride], xs[a*ref.Cols:(a+1)*ref.Cols])
	}
	for _, workers := range []int{1, 4} {
		pool := NewPool(workers)
		got := NewMatrix(10, 6)
		copy(got.Data, ref.Data)
		got.AddGradLanes(0, 10, dys, stride, n, xs, pool)
		for i := range ref.Grad {
			if got.Grad[i] != ref.Grad[i] {
				t.Fatalf("workers=%d grad %d: %v != %v", workers, i, got.Grad[i], ref.Grad[i])
			}
		}
		pool.Close()
	}
}

func snapshotParams(m *Model) [][]float64 {
	var out [][]float64
	for _, p := range m.Params() {
		out = append(out, append([]float64(nil), p.Data...))
	}
	return out
}
