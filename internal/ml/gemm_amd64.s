// SSE2 lane-batched GEMM microkernel. Vectorization is across lanes
// (one accumulator component per lane), so each output element is the
// same ascending-k multiply-then-add chain as the scalar Dot kernel —
// bitwise identical results. SSE2 only (baseline amd64): no FMA (would
// change rounding), no MOVDDUP (SSE3). The AVX2 members of the family
// live in gemm_avx2_amd64.s and gates_amd64.s.

//go:build !purego

#include "textflag.h"

// func gemm8(w *float64, rows, k int, xt *float64, strideB int, out *float64, outStrideB int)
TEXT ·gemm8(SB), NOSPLIT, $0-56
	MOVQ	w+0(FP), SI
	MOVQ	rows+8(FP), R8
	MOVQ	k+16(FP), R9
	MOVQ	xt+24(FP), DI
	MOVQ	strideB+32(FP), R10
	MOVQ	out+40(FP), R11
	MOVQ	outStrideB+48(FP), R12

rowloop:
	// 8 lane accumulators in 4 xmm registers
	XORPS	X0, X0
	XORPS	X1, X1
	XORPS	X2, X2
	XORPS	X3, X3
	MOVQ	DI, DX // xt cursor (k = 0)
	MOVQ	R9, CX // k countdown

kloop:
	// broadcast w[k] to both halves of X4 (SSE2 MOVSD+UNPCKLPD)
	MOVSD	(SI), X4
	UNPCKLPD X4, X4
	// one k-slice of the tile: lanes 0..7
	MOVUPS	(DX), X5
	MOVUPS	16(DX), X6
	MOVUPS	32(DX), X7
	MOVUPS	48(DX), X8
	// multiply THEN add — two rounding steps, matching scalar s += w*x
	MULPD	X4, X5
	MULPD	X4, X6
	MULPD	X4, X7
	MULPD	X4, X8
	ADDPD	X5, X0
	ADDPD	X6, X1
	ADDPD	X7, X2
	ADDPD	X8, X3
	ADDQ	$8, SI  // next weight element
	ADDQ	R10, DX // next k-slice of the tile
	DECQ	CX
	JNZ	kloop

	// scatter lane sums to out[lane*outStrideB + r*8]
	// (BX as cursor: R14/R15 are reserved by the Go register ABI)
	MOVQ	R11, BX
	MOVSD	X0, (BX)
	UNPCKHPD X0, X0
	ADDQ	R12, BX
	MOVSD	X0, (BX)
	ADDQ	R12, BX
	MOVSD	X1, (BX)
	UNPCKHPD X1, X1
	ADDQ	R12, BX
	MOVSD	X1, (BX)
	ADDQ	R12, BX
	MOVSD	X2, (BX)
	UNPCKHPD X2, X2
	ADDQ	R12, BX
	MOVSD	X2, (BX)
	ADDQ	R12, BX
	MOVSD	X3, (BX)
	UNPCKHPD X3, X3
	ADDQ	R12, BX
	MOVSD	X3, (BX)

	ADDQ	$8, R11 // next output row
	DECQ	R8
	JNZ	rowloop
	RET
