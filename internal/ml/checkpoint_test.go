package ml

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
)

// trainToCompletion runs a full TrainContext on a fresh model and
// returns its serialized bytes plus every checkpoint cut along the way.
func trainToCompletion(t *testing.T, cfg ModelConfig, samples []Sample) ([]byte, []*TrainCheckpoint) {
	t.Helper()
	m, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var cks []*TrainCheckpoint
	_, err = m.TrainContext(context.Background(), samples, TrainOpts{
		CheckpointEvery: 1,
		SaveCheckpoint:  func(ck *TrainCheckpoint) error { cks = append(cks, ck); return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return blob, cks
}

// TestTrainResumeBitwiseIdentical is the determinism contract of
// DESIGN.md decision 12: resuming a fresh model from any epoch-boundary
// checkpoint and training to completion yields bytes identical to the
// uninterrupted run — for every trunk class.
func TestTrainResumeBitwiseIdentical(t *testing.T) {
	for name, cfg := range cellConfigs() {
		t.Run(name, func(t *testing.T) {
			samples := synthSamples(40, cfg.Features, cfg.Window, 91)
			want, cks := trainToCompletion(t, cfg, samples)
			if len(cks) != cfg.Epochs {
				t.Fatalf("got %d checkpoints, want %d", len(cks), cfg.Epochs)
			}
			for _, ck := range cks {
				m2, err := NewModel(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := m2.TrainContext(context.Background(), samples, TrainOpts{ResumeFrom: ck}); err != nil {
					t.Fatalf("resume from epoch %d: %v", ck.Epoch, err)
				}
				got, err := json.Marshal(m2)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("resume from epoch %d diverged from uninterrupted run", ck.Epoch)
				}
			}
			if last := cks[len(cks)-1]; !last.Complete() {
				t.Fatalf("final checkpoint (epoch %d/%d) not Complete", last.Epoch, cfg.Epochs)
			}
		})
	}
}

// TestTrainResumeAfterCancel models the real crash path: training is
// cancelled mid-run after a checkpoint was cut, then a fresh model
// resumes from the newest checkpoint and must converge to the same
// bytes as a run that was never interrupted.
func TestTrainResumeAfterCancel(t *testing.T) {
	cfg := cellConfigs()["lstm"]
	samples := synthSamples(40, cfg.Features, cfg.Window, 92)
	want, _ := trainToCompletion(t, cfg, samples)

	m, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var latest *TrainCheckpoint
	_, err = m.TrainContext(ctx, samples, TrainOpts{
		CheckpointEvery: 1,
		SaveCheckpoint:  func(ck *TrainCheckpoint) error { latest = ck; return nil },
		Progress: func(p TrainProgress) {
			if p.Epoch == 2 {
				cancel() // "kill" after two epochs; next batch observes it
			}
		},
	})
	if err == nil {
		t.Fatal("cancelled training returned nil error")
	}
	if latest == nil || latest.Epoch != 2 {
		t.Fatalf("latest checkpoint = %+v, want epoch 2", latest)
	}

	// Round-trip the checkpoint through JSON, as the durable layer does:
	// float64s must survive bit-exactly.
	blob, err := json.Marshal(latest)
	if err != nil {
		t.Fatal(err)
	}
	var decoded TrainCheckpoint
	if err := json.Unmarshal(blob, &decoded); err != nil {
		t.Fatal(err)
	}

	m2, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m2.TrainContext(context.Background(), samples, TrainOpts{ResumeFrom: &decoded}); err != nil {
		t.Fatal(err)
	}
	got, err := json.Marshal(m2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("resume after cancel diverged from uninterrupted run")
	}
}

// TestTrainResumeFromCompleteCheckpoint: a finished direction restores
// instantly (zero epochs run) and reproduces the final bytes.
func TestTrainResumeFromCompleteCheckpoint(t *testing.T) {
	cfg := cellConfigs()["gru"]
	samples := synthSamples(24, cfg.Features, cfg.Window, 93)
	want, cks := trainToCompletion(t, cfg, samples)
	final := cks[len(cks)-1]

	m2, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	epochsRun := 0
	res, err := m2.TrainContext(context.Background(), samples, TrainOpts{
		ResumeFrom: final,
		Progress:   func(TrainProgress) { epochsRun++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if epochsRun != 0 {
		t.Fatalf("complete checkpoint still ran %d epochs", epochsRun)
	}
	if len(res.EpochLoss) != cfg.Epochs {
		t.Fatalf("restored result has %d epoch losses, want %d", len(res.EpochLoss), cfg.Epochs)
	}
	got, err := json.Marshal(m2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("complete-checkpoint restore diverged")
	}
}

// TestTrainResumeValidation: mismatched configs or sample counts must be
// rejected loudly rather than silently diverging.
func TestTrainResumeValidation(t *testing.T) {
	cfg := cellConfigs()["mlp"]
	samples := synthSamples(16, cfg.Features, cfg.Window, 94)
	_, cks := trainToCompletion(t, cfg, samples)
	ck := cks[0]

	other := cfg
	other.Hidden++
	m, err := NewModel(other)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.TrainContext(context.Background(), samples, TrainOpts{ResumeFrom: ck}); err == nil {
		t.Fatal("config mismatch accepted")
	}

	m2, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m2.TrainContext(context.Background(), samples[:8], TrainOpts{ResumeFrom: ck}); err == nil {
		t.Fatal("sample-count mismatch accepted")
	}

	if _, err := m2.FineTuneContext(context.Background(), samples, 1, 0, TrainOpts{ResumeFrom: ck}); err == nil {
		t.Fatal("fine-tune accepted a checkpoint")
	}
}
