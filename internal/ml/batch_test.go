package ml

import (
	"testing"

	"mimicnet/internal/stats"
)

// naiveMulLanes is the triple-loop reference for MulLanes, written with
// the same k-order accumulation so agreement must be exact.
func naiveMulLanes(m *Matrix, r0, r1 int, xs []float64, n int, outStride int) []float64 {
	out := make([]float64, n*outStride)
	for a := 0; a < n; a++ {
		for r := r0; r < r1; r++ {
			var sum float64
			for k := 0; k < m.Cols; k++ {
				sum += m.Data[r*m.Cols+k] * xs[a*m.Cols+k]
			}
			out[a*outStride+r] = sum
		}
	}
	return out
}

func randMatrix(rows, cols int, s *stats.Stream) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = 2*s.Float64() - 1
	}
	return m
}

func randVec(n int, s *stats.Stream) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = 2*s.Float64() - 1
	}
	return v
}

// sparseVec is randVec with most entries exactly zero (one-hot-like),
// exercising MulLanes' sparse path.
func sparseVec(n int, s *stats.Stream) []float64 {
	v := make([]float64, n)
	for i := range v {
		if s.Float64() < 0.3 {
			v[i] = 2*s.Float64() - 1
		}
	}
	return v
}

// checkMulLanes compares blocked-parallel MulLanes against the naive
// reference on one shape, for both a serial and a 4-worker pool. When
// sparse is set the inputs are mostly exact zeros, steering MulLanes
// onto its packed sparse path — which must still match the dense naive
// sum bitwise (skipped terms are exact zeros).
func checkMulLanes(t *testing.T, rows, cols, n, r0, r1 int, pool *Pool, sparse bool, s *stats.Stream) {
	t.Helper()
	m := randMatrix(rows, cols, s)
	var xs []float64
	if sparse {
		xs = sparseVec(n*cols, s)
	} else {
		xs = randVec(n*cols, s)
	}
	want := naiveMulLanes(m, r0, r1, xs, n, rows)
	got := make([]float64, n*rows)
	m.MulLanes(r0, r1, xs, n, got, rows, pool)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MulLanes(%dx%d, n=%d, rows [%d,%d)) differs from naive at %d: %v vs %v",
				rows, cols, n, r0, r1, i, got[i], want[i])
		}
	}
}

func TestMulLanesMatchesNaive(t *testing.T) {
	s := stats.NewStream(11)
	pools := []*Pool{NewPool(1), NewPool(4)}
	defer pools[1].Close()
	// Degenerate and boundary shapes: B=0, B=1, single row/col, and
	// sizes that are not multiples of the tile blocks.
	fixed := [][3]int{
		{1, 1, 0}, {1, 1, 1}, {5, 3, 1}, {1, 7, 3},
		{gemmRowBlock, gemmLaneBlock, gemmLaneBlock},
		{gemmRowBlock + 1, 5, gemmLaneBlock + 1},
		{2*gemmRowBlock - 1, 9, 2*gemmLaneBlock - 1},
		{96, 24, 33}, // LSTM-shaped: 4H × H at H=24
	}
	for _, p := range pools {
		for _, sparse := range []bool{false, true} {
			for _, f := range fixed {
				rows, cols, n := f[0], f[1], f[2]
				checkMulLanes(t, rows, cols, n, 0, rows, p, sparse, s)
			}
			// Random shapes including partial row ranges (as used by the
			// GRU's z/r pre-activation GEMM).
			for i := 0; i < 60; i++ {
				rows := 1 + s.Intn(80)
				cols := 1 + s.Intn(50)
				n := s.Intn(70)
				r1 := 1 + s.Intn(rows)
				r0 := s.Intn(r1)
				checkMulLanes(t, rows, cols, n, r0, r1, p, sparse, s)
			}
		}
	}
}

func FuzzMulLanes(f *testing.F) {
	f.Add(uint8(4), uint8(3), uint8(2), int64(1))
	f.Add(uint8(33), uint8(17), uint8(19), int64(7))
	f.Add(uint8(1), uint8(1), uint8(0), int64(0))
	f.Fuzz(func(t *testing.T, rows, cols, n uint8, seed int64) {
		if rows == 0 || cols == 0 {
			t.Skip()
		}
		s := stats.NewStream(seed)
		pool := NewPool(3)
		defer pool.Close()
		checkMulLanes(t, int(rows), int(cols), int(n), 0, int(rows), pool, seed%2 == 0, s)
	})
}

// parityModel builds a small trained-ish model (random init is enough:
// parity is about arithmetic, not accuracy).
func parityModel(t *testing.T, cellType string, layers int) *Model {
	t.Helper()
	cfg := DefaultModelConfig(9, 4)
	cfg.Hidden = 13 // deliberately not a multiple of any block size
	cfg.Layers = layers
	cfg.CellType = cellType
	cfg.Seed = 42
	m, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestBatchedParity drives B per-packet StatefulModels and one
// B-lane BatchedStatefulModel through the same interleaved streams and
// requires exact float equality of every Prediction, for LSTM and GRU
// trunks at B ∈ {1, 7, 64}. Feeder-style Advance steps (discarded
// outputs) are interleaved to cover the want-mask path.
func TestBatchedParity(t *testing.T) {
	cases := []struct {
		name   string
		cell   string
		layers int
	}{
		{"lstm", "lstm", 1},
		{"lstm-stacked", "lstm", 2},
		{"gru", "gru", 1},
		{"mlp-fallback", "mlp", 1},
	}
	pool := NewPool(4)
	defer pool.Close()
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			model := parityModel(t, tc.cell, tc.layers)
			for _, B := range []int{1, 7, 64} {
				seq := make([]*StatefulModel, B)
				for i := range seq {
					seq[i] = NewStatefulModel(model)
				}
				bat := NewBatchedStatefulModel(model, B, pool)
				rng := stats.NewStream(int64(B))
				for step := 0; step < 50; step++ {
					var lanes []int
					var xs [][]float64
					var want []bool
					for lane := 0; lane < B; lane++ {
						if rng.Float64() < 0.4 { // lane idle this round
							continue
						}
						lanes = append(lanes, lane)
						xs = append(xs, randVec(model.Cfg.Features, rng))
						want = append(want, rng.Float64() < 0.8)
					}
					preds := make([]Prediction, len(lanes))
					bat.StepLanes(lanes, xs, want, preds)
					for i, lane := range lanes {
						if want[i] {
							ref := seq[lane].Predict(xs[i])
							if preds[i] != ref {
								t.Fatalf("B=%d step=%d lane=%d: batched %+v != per-packet %+v",
									B, step, lane, preds[i], ref)
							}
						} else {
							seq[lane].Advance(xs[i])
						}
					}
				}
				var seqSteps uint64
				for _, s := range seq {
					seqSteps += s.Steps
				}
				if bat.Steps() != seqSteps {
					t.Fatalf("B=%d: batched steps %d != per-packet %d", B, bat.Steps(), seqSteps)
				}
			}
		})
	}
}

// TestBatchedResetLane checks a reset lane re-converges with a fresh
// per-packet stream while other lanes are unaffected.
func TestBatchedResetLane(t *testing.T) {
	model := parityModel(t, "lstm", 1)
	bat := NewBatchedStatefulModel(model, 3, nil)
	rng := stats.NewStream(5)
	xs := [][]float64{randVec(model.Cfg.Features, rng), randVec(model.Cfg.Features, rng)}
	for _, x := range xs {
		bat.StepLanes([]int{0, 1, 2}, [][]float64{x, x, x}, nil, make([]Prediction, 3))
	}
	bat.ResetLane(1)
	fresh := NewStatefulModel(model)
	warm := NewStatefulModel(model)
	for _, x := range xs {
		warm.Predict(x)
	}
	x := randVec(model.Cfg.Features, rng)
	preds := make([]Prediction, 3)
	bat.StepLanes([]int{0, 1, 2}, [][]float64{x, x, x}, nil, preds)
	if preds[1] != fresh.Predict(x) {
		t.Error("reset lane does not match a fresh stream")
	}
	if ref := warm.Predict(x); preds[0] != ref || preds[2] != ref {
		t.Error("reset disturbed other lanes")
	}
}

// TestBatchedAddLane grows the bank mid-stream and checks the new lane
// behaves like a fresh stream.
func TestBatchedAddLane(t *testing.T) {
	model := parityModel(t, "gru", 1)
	bat := NewBatchedStatefulModel(model, 1, nil)
	rng := stats.NewStream(9)
	x0 := randVec(model.Cfg.Features, rng)
	bat.StepLanes([]int{0}, [][]float64{x0}, nil, make([]Prediction, 1))
	lane := bat.AddLane()
	if lane != 1 || bat.Lanes() != 2 {
		t.Fatalf("AddLane = %d, Lanes = %d", lane, bat.Lanes())
	}
	x1 := randVec(model.Cfg.Features, rng)
	preds := make([]Prediction, 2)
	bat.StepLanes([]int{0, 1}, [][]float64{x1, x1}, nil, preds)
	fresh := NewStatefulModel(model)
	if preds[1] != fresh.Predict(x1) {
		t.Error("grown lane does not match a fresh stream")
	}
}

// TestPoolCloseAfterDispatch closes pools immediately after dispatching
// work — under -race this is a regression test for the shutdown
// handshake (Close must not write state that draining workers still
// read). Close must also be idempotent.
func TestPoolCloseAfterDispatch(t *testing.T) {
	for i := 0; i < 20; i++ {
		p := NewPool(4)
		var out [64]int64
		p.For(64, func(j int) { out[j] = int64(j) })
		p.Close()
		p.Close()
		for j := range out {
			if out[j] != int64(j) {
				t.Fatalf("task %d did not run before Close returned", j)
			}
		}
	}
}

// TestPoolWorkerCountInvariance: the same GEMM through pools of
// different sizes must produce bitwise-identical output (under -race
// this also exercises the worker pool for data races).
func TestPoolWorkerCountInvariance(t *testing.T) {
	s := stats.NewStream(3)
	m := randMatrix(128, 40, s)
	xs := randVec(64*40, s)
	ref := make([]float64, 64*128)
	m.MulLanes(0, 128, xs, 64, ref, 128, NewPool(1))
	for _, workers := range []int{2, 3, 8} {
		p := NewPool(workers)
		out := make([]float64, 64*128)
		for iter := 0; iter < 10; iter++ {
			m.MulLanes(0, 128, xs, 64, out, 128, p)
			for i := range ref {
				if out[i] != ref[i] {
					t.Fatalf("workers=%d iter=%d: output differs at %d", workers, iter, i)
				}
			}
		}
		p.Close()
	}
}
