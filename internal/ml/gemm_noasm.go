//go:build !amd64

package ml

// haveGemm8 is false without the SSE2 microkernel; MulLanes uses the
// portable 4-lane Go kernel, which produces identical results.
const haveGemm8 = false

// gemm8 is unreachable when haveGemm8 is false.
func gemm8(w *float64, rows, k int, xt *float64, strideB int, out *float64, outStrideB int) {
	panic("ml: gemm8 called without assembly support")
}
