//go:build !amd64 || purego

package ml

// haveGemm8 is false without the assembly microkernels; the dispatch
// table offers only the "scalar" family and MulLanes uses the portable
// 4-lane Go kernel, which produces identical results.
const haveGemm8 = false

// The CPUID probe compiles out with the kernels.
const (
	cpuHasAVX2 = false
	cpuHasFMA  = false
)

// The stubs below are unreachable when haveGemm8 is false: dispatch
// never constructs a family that calls them.

func gemm8(w *float64, rows, k int, xt *float64, strideB int, out *float64, outStrideB int) {
	panic("ml: gemm8 called without assembly support")
}

func gemm16(w *float64, rows, k int, xt *float64, strideB int, out *float64, outStrideB int) {
	panic("ml: gemm16 called without assembly support")
}

func axpy4(y, x *float64, n int, a float64) {
	panic("ml: axpy4 called without assembly support")
}

func sigmoid4(dst, src *float64) (ok uint8) {
	panic("ml: sigmoid4 called without assembly support")
}

func tanh4(dst, src *float64) {
	panic("ml: tanh4 called without assembly support")
}
