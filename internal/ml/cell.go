package ml

// The paper: "MimicNet can support any ML model. Given our desire for
// generality, however, it currently leverages one particularly promising
// class of models: LSTMs" (§5.5). Cell abstracts the trunk layer so the
// framework genuinely supports alternative model classes; this repo ships
// LSTM (the default), GRU, and a windowed MLP baseline.

// CellState is a cell's opaque recurrent state.
type CellState interface{}

// CellCache is a cell's opaque per-step activation record for BPTT.
type CellCache interface{}

// Cell is one trainable trunk layer processed step-by-step over a packet
// stream.
type Cell interface {
	// InSize and HiddenSize give the layer's dimensions.
	InSize() int
	HiddenSize() int
	// Params returns the trainable parameters.
	Params() []*Matrix
	// FreshState returns a zeroed recurrent state.
	FreshState() CellState
	// StepState advances the state by one input and returns the hidden
	// output; when train is true it also returns a cache for backward.
	StepState(st CellState, x []float64, train bool) ([]float64, CellCache)
	// StepBackward consumes one step's cache with the gradients flowing
	// into its hidden output (dh) and carried state (dcarry; nil when the
	// cell has no carry), accumulating parameter gradients and returning
	// gradients for the previous step and input.
	StepBackward(cache CellCache, dh, dcarry []float64) (dhPrev, dcarryPrev, dx []float64)
	// CellType names the cell class for serialization.
	CellType() string
}

// BatchState is a cell's opaque recurrent state for a bank of
// independent lanes (one lane per concurrent packet stream).
type BatchState interface{}

// BatchedCell is implemented by cells that can advance many independent
// recurrent states through one fused matrix–matrix step. The fused step
// must be bit-exact with calling StepState once per lane: batched
// kernels keep the per-element accumulation order of the per-vector
// path (see Dot/DotAcc), which the parity tests in batch_test.go
// enforce.
type BatchedCell interface {
	Cell
	// NewBatchState returns zeroed recurrent state for `lanes` lanes.
	NewBatchState(lanes int) BatchState
	// GrowBatchState appends one zeroed lane and returns its index.
	GrowBatchState(st BatchState) int
	// ResetBatchLane zeroes one lane's recurrent state.
	ResetBatchLane(st BatchState, lane int)
	// StepBatch advances the listed lanes by one input each. xs is
	// len(lanes)×InSize row-major; the hidden outputs are written to hs
	// (len(lanes)×HiddenSize row-major). Lanes must be distinct.
	StepBatch(st BatchState, lanes []int, xs []float64, hs []float64, pool *Pool)
}

// LSTM adapters to the Cell interface (the concrete methods live in
// layers.go; the fused batched step lives in batch.go).

// InSize returns the input width.
func (l *LSTM) InSize() int { return l.In }

// HiddenSize returns the hidden width.
func (l *LSTM) HiddenSize() int { return l.Hidden }

// FreshState returns a zeroed LSTM state.
func (l *LSTM) FreshState() CellState { return l.NewState() }

// CellType names the class.
func (l *LSTM) CellType() string { return "lstm" }

// StepState adapts Step to the Cell interface.
func (l *LSTM) StepState(st CellState, x []float64, train bool) ([]float64, CellCache) {
	state := st.(*LSTMState)
	var cache *lstmCache
	if train {
		cache = &lstmCache{}
	}
	h := l.Step(state, x, cache)
	if cache == nil {
		return h, nil
	}
	return h, cache
}

// StepBackward adapts stepBackward to the Cell interface. The LSTM's
// carry is its cell state.
func (l *LSTM) StepBackward(cache CellCache, dh, dcarry []float64) (dhPrev, dcarryPrev, dx []float64) {
	if dcarry == nil {
		dcarry = Zeros(l.Hidden)
	}
	return l.stepBackward(cache.(*lstmCache), dh, dcarry)
}

var (
	_ Cell        = (*LSTM)(nil)
	_ BatchedCell = (*LSTM)(nil)
	_ BatchedCell = (*GRU)(nil)
)
