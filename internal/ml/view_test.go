package ml

import (
	"bytes"
	"testing"
)

// TestViewWindowMatchesLegacy pins the columnar view's index math: for
// every sample, Row/WindowAppend must reproduce the legacy padded
// window bit-for-bit, including the shared zero rows before the stream
// starts and across a Slice boundary (a sliced view keeps its pre-cut
// history visible, exactly like the legacy per-sample copies).
func TestViewWindowMatchesLegacy(t *testing.T) {
	const n, features, window = 37, 3, 5
	legacy, view := synthStream(n, features, window, 71)
	if view.Len() != n || view.Steps() != window {
		t.Fatalf("view shape: len %d steps %d", view.Len(), view.Steps())
	}
	checkParity := func(v *SampleView, base int) {
		t.Helper()
		var win [][]float64
		for i := 0; i < v.Len(); i++ {
			win = v.WindowAppend(win[:0], i)
			want := legacy[base+i]
			if len(win) != len(want.Window) {
				t.Fatalf("sample %d window len %d != %d", base+i, len(win), len(want.Window))
			}
			for st := range win {
				for f := range win[st] {
					if win[st][f] != want.Window[st][f] {
						t.Fatalf("sample %d step %d feat %d: %v != %v",
							base+i, st, f, win[st][f], want.Window[st][f])
					}
				}
			}
			lat, dropped, ecn := v.Target(i)
			if lat != want.Latency || dropped != want.Dropped || ecn != want.ECN {
				t.Fatalf("sample %d targets differ", base+i)
			}
		}
	}
	checkParity(view, 0)
	cut := n * 4 / 5
	checkParity(view.Slice(0, cut), 0)
	checkParity(view.Slice(cut, n), cut)

	// At materializes the identical legacy sample.
	for i := 0; i < n; i++ {
		s := view.At(i)
		for st := range s.Window {
			for f := range s.Window[st] {
				if s.Window[st][f] != legacy[i].Window[st][f] {
					t.Fatalf("At(%d) step %d feat %d differs", i, st, f)
				}
			}
		}
	}
}

// TestColumnarTrainingBitwiseParity is the layout-refactor contract:
// training on the columnar view must produce byte-identical model
// artifacts and identical predictions to training on the legacy
// []Sample layout, for every trunk class, on both the sequential
// (BatchSize 1) and batched BPTT paths. make test-kernels reruns this
// under every GEMM kernel family (scalar/sse2/avx2 and purego).
func TestColumnarTrainingBitwiseParity(t *testing.T) {
	for name, cfg := range cellConfigs() {
		for _, bs := range []int{1, 16} {
			cfg := cfg
			cfg.BatchSize = bs
			cfg.Epochs = 2
			legacy, view := synthStream(120, cfg.Features, cfg.Window, 101)

			a, err := NewModel(cfg)
			if err != nil {
				t.Fatal(err)
			}
			b, err := NewModel(cfg)
			if err != nil {
				t.Fatal(err)
			}
			resA := a.Train(legacy)
			resB := b.TrainSource(view)
			if len(resA.EpochLoss) != len(resB.EpochLoss) {
				t.Fatalf("%s bs=%d: epoch counts differ", name, bs)
			}
			for e := range resA.EpochLoss {
				if resA.EpochLoss[e] != resB.EpochLoss[e] {
					t.Fatalf("%s bs=%d epoch %d: loss %v != %v",
						name, bs, e, resA.EpochLoss[e], resB.EpochLoss[e])
				}
			}

			ja, err := a.MarshalJSON()
			if err != nil {
				t.Fatal(err)
			}
			jb, err := b.MarshalJSON()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(ja, jb) {
				t.Fatalf("%s bs=%d: trained artifacts are not byte-identical", name, bs)
			}

			if ea, eb := a.Evaluate(legacy), b.EvaluateSource(view); ea != eb {
				t.Fatalf("%s bs=%d: evaluations differ: %+v vs %+v", name, bs, ea, eb)
			}
			var win [][]float64
			for i := 0; i < view.Len(); i++ {
				win = view.WindowAppend(win[:0], i)
				if pa, pb := a.Forward(legacy[i].Window), b.Forward(win); pa != pb {
					t.Fatalf("%s bs=%d sample %d: predictions differ", name, bs, i)
				}
			}
		}
	}
}

// TestViewSliceAndWithLatency covers the remaining view surface: slice
// bounds, target substitution, and the byte-accounting helper.
func TestViewSliceAndWithLatency(t *testing.T) {
	_, view := synthStream(10, 2, 3, 7)
	empty := view.Slice(4, 4)
	if empty.Len() != 0 {
		t.Errorf("empty slice len %d", empty.Len())
	}
	lat := make([]float64, view.Len())
	for i := range lat {
		lat[i] = float64(i)
	}
	re := view.WithLatency(lat)
	if l, _, _ := re.Target(3); l != 3 {
		t.Errorf("WithLatency target = %v", l)
	}
	if l, _, _ := view.Target(3); l == 3 {
		t.Error("WithLatency mutated the original view")
	}
	var win1, win2 [][]float64
	win1 = view.WindowAppend(win1, 5)
	win2 = re.WindowAppend(win2, 5)
	for st := range win1 {
		for f := range win1[st] {
			if win1[st][f] != win2[st][f] {
				t.Fatal("WithLatency changed feature rows")
			}
		}
	}
	if view.Bytes() <= 0 {
		t.Error("Bytes() not positive")
	}
	defer func() {
		if recover() == nil {
			t.Error("WithLatency accepted mismatched length")
		}
	}()
	view.WithLatency(lat[:2])
}
