package ml

import (
	"math"

	"mimicnet/internal/stats"
)

// GRU is a gated recurrent unit layer — an alternative trunk class to the
// paper's default LSTM. Gate layout within the stacked 3H dimension is
// [update z, reset r, candidate].
type GRU struct {
	In, Hidden int
	Wx         *Matrix // (3H, In)
	Wh         *Matrix // (3H, H)
	B          *Matrix // (3H, 1)
}

// NewGRU allocates and initializes a GRU layer.
func NewGRU(in, hidden int, s *stats.Stream) *GRU {
	g := &GRU{
		In: in, Hidden: hidden,
		Wx: NewMatrix(3*hidden, in),
		Wh: NewMatrix(3*hidden, hidden),
		B:  NewMatrix(3*hidden, 1),
	}
	g.Wx.InitXavier(s)
	g.Wh.InitXavier(s)
	return g
}

// InSize returns the input width.
func (g *GRU) InSize() int { return g.In }

// HiddenSize returns the hidden width.
func (g *GRU) HiddenSize() int { return g.Hidden }

// Params returns the trainable parameters.
func (g *GRU) Params() []*Matrix { return []*Matrix{g.Wx, g.Wh, g.B} }

// CellType names the class.
func (g *GRU) CellType() string { return "gru" }

// gruState is the recurrent hidden vector.
type gruState struct{ h []float64 }

// FreshState returns a zeroed state.
func (g *GRU) FreshState() CellState { return &gruState{h: Zeros(g.Hidden)} }

type gruCache struct {
	x, hPrev   []float64
	z, r, hHat []float64
}

// StepState computes
//
//	z = σ(Wz x + Uz h + bz)
//	r = σ(Wr x + Ur h + br)
//	ĥ = tanh(Wc x + Uc (r⊙h) + bc)
//	h' = (1−z)⊙h + z⊙ĥ
func (g *GRU) StepState(st CellState, x []float64, train bool) ([]float64, CellCache) {
	state := st.(*gruState)
	H := g.Hidden
	ax := g.Wx.MulVec(x, nil)

	// Gate pre-activations from the previous hidden state: z and r use h
	// directly; the candidate uses r⊙h, so it is computed after r.
	ah := Zeros(3 * H)
	for row := 0; row < 2*H; row++ {
		ah[row] = Dot(g.Wh.Data[row*H:(row+1)*H], state.h)
	}
	z, r := Zeros(H), Zeros(H)
	for j := 0; j < H; j++ {
		z[j] = Sigmoid(ax[j] + ah[j] + g.B.Data[j])
		r[j] = Sigmoid(ax[H+j] + ah[H+j] + g.B.Data[H+j])
	}
	rh := Zeros(H)
	for j := 0; j < H; j++ {
		rh[j] = r[j] * state.h[j]
	}
	hHat := Zeros(H)
	for j := 0; j < H; j++ {
		row := g.Wh.Data[(2*H+j)*H : (2*H+j+1)*H]
		hHat[j] = math.Tanh(DotAcc(ax[2*H+j]+g.B.Data[2*H+j], row, rh))
	}
	hNew := Zeros(H)
	for j := 0; j < H; j++ {
		hNew[j] = (1-z[j])*state.h[j] + z[j]*hHat[j]
	}
	var cache CellCache
	if train {
		cache = &gruCache{
			x:     append([]float64(nil), x...),
			hPrev: append([]float64(nil), state.h...),
			z:     z, r: r, hHat: hHat,
		}
	}
	state.h = hNew
	return hNew, cache
}

// StepBackward backpropagates one GRU step. The GRU has no carry channel
// (dcarry is ignored and returned nil).
func (g *GRU) StepBackward(cache CellCache, dh, _ []float64) (dhPrev, dcarryPrev, dx []float64) {
	c := cache.(*gruCache)
	H := g.Hidden
	dhPrev = Zeros(H)
	da := Zeros(3 * H) // gradients at the three pre-activations

	dHHat := Zeros(H)
	for j := 0; j < H; j++ {
		// h' = (1-z) h + z ĥ
		dz := dh[j] * (c.hHat[j] - c.hPrev[j])
		dHHat[j] = dh[j] * c.z[j]
		dhPrev[j] += dh[j] * (1 - c.z[j])
		da[j] = dz * DSigmoid(c.z[j])
		da[2*H+j] = dHHat[j] * DTanh(c.hHat[j])
	}
	// Candidate path: a_c = Wc x + Uc (r⊙h) + bc.
	drh := Zeros(H)
	for j := 0; j < H; j++ {
		row := g.Wh.Data[(2*H+j)*H : (2*H+j+1)*H]
		d := da[2*H+j]
		if d == 0 {
			continue
		}
		for cIdx, v := range row {
			drh[cIdx] += v * d
		}
	}
	for j := 0; j < H; j++ {
		dr := drh[j] * c.hPrev[j]
		dhPrev[j] += drh[j] * c.r[j]
		da[H+j] = dr * DSigmoid(c.r[j])
	}
	// Parameter gradients. Wh rows for z and r consume hPrev; the
	// candidate rows consume r⊙hPrev.
	g.Wx.AddOuterGrad(da, c.x)
	rh := Zeros(H)
	for j := 0; j < H; j++ {
		rh[j] = c.r[j] * c.hPrev[j]
	}
	for row := 0; row < 3*H; row++ {
		d := da[row]
		if d == 0 {
			continue
		}
		grad := g.Wh.Grad[row*H : (row+1)*H]
		src := c.hPrev
		if row >= 2*H {
			src = rh
		}
		for cIdx := range grad {
			grad[cIdx] += d * src[cIdx]
		}
		g.B.Grad[row] += d
	}
	// dhPrev contributions through the z/r gate pre-activations.
	for row := 0; row < 2*H; row++ {
		d := da[row]
		if d == 0 {
			continue
		}
		w := g.Wh.Data[row*H : (row+1)*H]
		for cIdx, v := range w {
			dhPrev[cIdx] += v * d
		}
	}
	dx = Zeros(g.In)
	g.Wx.MulVecT(da, dx)
	return dhPrev, nil, dx
}

// gruBatchState is the recurrent state of `lanes` independent GRU
// streams (lanes × H dense), plus fused-step scratch.
type gruBatchState struct {
	h []float64
	// scratch for one fused step
	hg, ax, ah, rh, z []float64
}

// NewBatchState returns zeroed state for `lanes` GRU lanes.
func (g *GRU) NewBatchState(lanes int) BatchState {
	return &gruBatchState{h: make([]float64, lanes*g.Hidden)}
}

// GrowBatchState appends one zeroed lane.
func (g *GRU) GrowBatchState(st BatchState) int {
	s := st.(*gruBatchState)
	lane := len(s.h) / g.Hidden
	s.h = append(s.h, make([]float64, g.Hidden)...)
	return lane
}

// ResetBatchLane zeroes one lane's hidden state.
func (g *GRU) ResetBatchLane(st BatchState, lane int) {
	s := st.(*gruBatchState)
	zeroRange(s.h[lane*g.Hidden : (lane+1)*g.Hidden])
}

// StepBatch advances the listed lanes through one fused GRU step: two
// GEMMs (input and z/r recurrent pre-activations) plus a per-lane pass
// for the candidate path, which must follow the reset gate. All
// per-element accumulation orders mirror StepState (Dot/DotAcc on the
// same operand order), so outputs are bit-identical to the per-packet
// path.
func (g *GRU) StepBatch(st BatchState, lanes []int, xs []float64, hs []float64, pool *Pool) {
	s := st.(*gruBatchState)
	n := len(lanes)
	if n == 0 {
		return
	}
	H := g.Hidden
	s.hg = growFloats(s.hg, n*H)
	s.ax = growFloats(s.ax, n*3*H)
	s.ah = growFloats(s.ah, n*2*H)
	s.rh = growFloats(s.rh, n*H)
	s.z = growFloats(s.z, n*H)
	for a, lane := range lanes {
		copy(s.hg[a*H:(a+1)*H], s.h[lane*H:(lane+1)*H])
	}
	g.Wx.MulLanes(0, 3*H, xs, n, s.ax, 3*H, pool)
	g.Wh.MulLanes(0, 2*H, s.hg, n, s.ah, 2*H, pool)
	bias := g.B.Data
	wide := gemmKernel().wideGates
	pool.For(n, func(a int) {
		ax := s.ax[a*3*H : (a+1)*3*H]
		ah := s.ah[a*2*H : (a+1)*2*H]
		hPrev := s.hg[a*H : (a+1)*H]
		rh := s.rh[a*H : (a+1)*H]
		z := s.z[a*H : (a+1)*H]
		// Pre-activations hoisted so the sigmoid passes run over
		// contiguous ranges (4 lanes per instruction when the wide gate
		// kernels are live); same ax + ah + bias association as StepState.
		for j := 0; j < 2*H; j++ {
			ax[j] = ax[j] + ah[j] + bias[j]
		}
		sigmoidLanes(z, ax[:H], wide)
		sigmoidLanes(rh, ax[H:2*H], wide)
		for j := 0; j < H; j++ {
			rh[j] = rh[j] * hPrev[j] // r ⊙ hPrev
		}
		hRow := hs[a*H : (a+1)*H]
		for j := 0; j < H; j++ {
			row := g.Wh.Data[(2*H+j)*H : (2*H+j+1)*H]
			hRow[j] = DotAcc(ax[2*H+j]+bias[2*H+j], row, rh)
		}
		tanhLanes(hRow, hRow, wide)
		for j := 0; j < H; j++ {
			hRow[j] = (1-z[j])*hPrev[j] + z[j]*hRow[j]
		}
	})
	for a, lane := range lanes {
		copy(s.h[lane*H:(lane+1)*H], hs[a*H:(a+1)*H])
	}
}

var _ Cell = (*GRU)(nil)
