package ml

import (
	"encoding/json"
	"math"
	"testing"
	"testing/quick"

	"mimicnet/internal/stats"
)

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 0, 1)
	m.Set(0, 2, 2)
	m.Set(1, 1, 3)
	if m.At(0, 2) != 2 || m.At(1, 1) != 3 {
		t.Error("Set/At broken")
	}
	y := m.MulVec([]float64{1, 1, 1}, nil)
	if y[0] != 3 || y[1] != 3 {
		t.Errorf("MulVec = %v", y)
	}
	m.Grad[0] = 5
	m.ZeroGrad()
	if m.Grad[0] != 0 {
		t.Error("ZeroGrad failed")
	}
}

func TestMatrixMulVecDimPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected dim mismatch panic")
		}
	}()
	NewMatrix(2, 3).MulVec([]float64{1}, nil)
}

func TestMatrixJSONRoundTrip(t *testing.T) {
	m := NewMatrix(2, 2)
	m.InitXavier(stats.NewStream(1))
	b, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var m2 Matrix
	if err := json.Unmarshal(b, &m2); err != nil {
		t.Fatal(err)
	}
	for i := range m.Data {
		if m.Data[i] != m2.Data[i] {
			t.Fatal("weights changed in round trip")
		}
	}
	if len(m2.Grad) != len(m.Data) {
		t.Error("grad buffer not restored")
	}
	if err := m2.UnmarshalJSON([]byte(`{"rows":2,"cols":2,"data":[1]}`)); err == nil {
		t.Error("inconsistent JSON accepted")
	}
}

func TestSigmoidProperties(t *testing.T) {
	if Sigmoid(0) != 0.5 {
		t.Error("sigmoid(0) != 0.5")
	}
	if s := Sigmoid(1000); s <= 0.999 || math.IsNaN(s) {
		t.Errorf("sigmoid overflow: %v", s)
	}
	if s := Sigmoid(-1000); s >= 0.001 || math.IsNaN(s) {
		t.Errorf("sigmoid underflow: %v", s)
	}
}

// Numerical gradient check: the heart of trusting the BPTT code. We
// perturb every parameter of a small model and compare the analytic
// gradient against central differences.
func TestGradientCheck(t *testing.T) {
	cfg := ModelConfig{
		Features: 3, Hidden: 4, Layers: 2, Window: 3,
		HuberDelta: 1, LatLoss: LossHuber, DropWeight: 0.7,
		LatWeight: 1, DropLossW: 1, ECNLossW: 1,
		LR: 0.01, Epochs: 1, Seed: 3,
	}
	m, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewStream(9)
	sample := Sample{Latency: 0.3, Dropped: true, ECN: false}
	sample.Window = synthGaussianWindow(rng, cfg.Window, cfg.Features)

	lossAt := func() float64 {
		tr := ForwardWindow(m.Trunk, sample.Window, false)
		p := m.heads(tr.Outputs)
		lat, _ := m.Cfg.LatLoss.Eval(p.Latency, sample.Latency, cfg.HuberDelta)
		drop, _ := WBCE(p.PDrop, 1, cfg.DropWeight)
		ecn, _ := BCE(p.PECN, 0)
		return cfg.LatWeight*lat + cfg.DropLossW*drop + cfg.ECNLossW*ecn
	}

	// Analytic gradients.
	for _, p := range m.Params() {
		p.ZeroGrad()
	}
	m.trainStep(sample)

	const eps = 1e-6
	checked := 0
	for pi, p := range m.Params() {
		for i := 0; i < len(p.Data); i += 7 { // sample every 7th weight
			orig := p.Data[i]
			p.Data[i] = orig + eps
			up := lossAt()
			p.Data[i] = orig - eps
			down := lossAt()
			p.Data[i] = orig
			numeric := (up - down) / (2 * eps)
			analytic := p.Grad[i]
			scale := math.Max(1, math.Max(math.Abs(numeric), math.Abs(analytic)))
			if math.Abs(numeric-analytic)/scale > 1e-4 {
				t.Fatalf("param %d index %d: analytic %v vs numeric %v", pi, i, analytic, numeric)
			}
			checked++
		}
	}
	if checked < 30 {
		t.Fatalf("only %d weights checked", checked)
	}
}

func TestLossFunctions(t *testing.T) {
	if l, d := MAE(2, 1); l != 1 || d != 1 {
		t.Errorf("MAE = %v, %v", l, d)
	}
	if l, d := MAE(0, 1); l != 1 || d != -1 {
		t.Errorf("MAE neg = %v, %v", l, d)
	}
	if l, d := MSE(3, 1); l != 4 || d != 4 {
		t.Errorf("MSE = %v, %v", l, d)
	}
	// Huber: quadratic inside delta, linear outside.
	if l, d := Huber(1.5, 1, 1); l != 0.125 || d != 0.5 {
		t.Errorf("Huber inner = %v, %v", l, d)
	}
	if l, d := Huber(3, 1, 1); l != 1.5 || d != 1 {
		t.Errorf("Huber outer = %v, %v", l, d)
	}
	if _, d := Huber(-3, 1, 1); d != -1 {
		t.Errorf("Huber outer neg deriv = %v", d)
	}
	// BCE at perfect prediction is ~0; at opposite is large.
	if l, _ := BCE(0.999999, 1); l > 1e-3 {
		t.Errorf("BCE perfect = %v", l)
	}
	if l, _ := BCE(0.000001, 1); l < 5 {
		t.Errorf("BCE wrong = %v", l)
	}
	// WBCE with w=0.5 equals BCE/2.
	lb, _ := BCE(0.3, 1)
	lw, _ := WBCE(0.3, 1, 0.5)
	if math.Abs(lw-lb/2) > 1e-9 {
		t.Errorf("WBCE(0.5) = %v, want %v", lw, lb/2)
	}
	// Clamping keeps everything finite.
	for _, p := range []float64{0, 1, -5, 7} {
		for _, y := range []float64{0, 1} {
			if l, d := BCE(p, y); math.IsInf(l, 0) || math.IsNaN(d) {
				t.Errorf("BCE(%v,%v) not finite", p, y)
			}
		}
	}
}

func TestRegressionLossSelector(t *testing.T) {
	for _, l := range []RegressionLoss{LossHuber, LossMAE, LossMSE} {
		if l.String() == "unknown" {
			t.Errorf("loss %d has no name", l)
		}
		loss, _ := l.Eval(2, 1, 1)
		if loss <= 0 {
			t.Errorf("%v loss not positive", l)
		}
	}
	if RegressionLoss(99).String() != "unknown" {
		t.Error("unknown loss name")
	}
}

func TestDiscretizer(t *testing.T) {
	d := Discretizer{Lo: 0, Hi: 10, D: 10}
	if d.Quantize(-5) != 0 || d.Quantize(50) != 9 {
		t.Error("clamping failed")
	}
	if d.Quantize(5.5) != 5 {
		t.Errorf("Quantize(5.5) = %d", d.Quantize(5.5))
	}
	// Normalize snaps to midpoints; Recover returns them.
	n := d.Normalize(5.5)
	if math.Abs(n-0.55) > 1e-12 {
		t.Errorf("Normalize(5.5) = %v", n)
	}
	if got := d.Recover(n); math.Abs(got-5.5) > 1e-12 {
		t.Errorf("Recover = %v, want 5.5", got)
	}
	// Continuous mode (D<=1).
	c := Discretizer{Lo: 0, Hi: 10, D: 1}
	if c.Normalize(5) != 0.5 || c.Recover(0.5) != 5 {
		t.Error("continuous mode broken")
	}
	if c.Normalize(-1) != 0 || c.Normalize(11) != 1 {
		t.Error("continuous clamp broken")
	}
	// Degenerate range.
	deg := Discretizer{Lo: 5, Hi: 5, D: 10}
	if deg.Normalize(7) != 0 || deg.Quantize(7) != 0 {
		t.Error("degenerate range should be safe")
	}
}

// Property: Recover(Normalize(v)) is within one bin width of clamp(v).
func TestDiscretizerRoundTripProperty(t *testing.T) {
	f := func(vRaw int16, dRaw uint8) bool {
		d := Discretizer{Lo: -100, Hi: 100, D: int(dRaw%64) + 2}
		v := float64(vRaw) / 100
		got := d.Recover(d.Normalize(v))
		binW := (d.Hi - d.Lo) / float64(d.D)
		clamped := math.Max(d.Lo, math.Min(d.Hi, v))
		return math.Abs(got-clamped) <= binW
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestStatefulRunnerMatchesForwardWindow(t *testing.T) {
	cfg := DefaultModelConfig(4, 5)
	cfg.Layers = 2
	m, _ := NewModel(cfg)
	rng := stats.NewStream(5)
	window := synthGaussianWindow(rng, 5, 4)
	tr := ForwardWindow(m.Trunk, window, false)
	sr := NewStatefulModel(m)
	var last Prediction
	for _, x := range window {
		last = sr.Predict(x)
	}
	fromWindow := m.heads(tr.Outputs)
	if math.Abs(last.Latency-fromWindow.Latency) > 1e-12 ||
		math.Abs(last.PDrop-fromWindow.PDrop) > 1e-12 {
		t.Error("stateful inference diverges from windowed forward")
	}
	if sr.Steps != 5 {
		t.Errorf("Steps = %d", sr.Steps)
	}
	sr.Reset()
	again := sr.Predict(window[0])
	sr2 := NewStatefulModel(m)
	first := sr2.Predict(window[0])
	if again.Latency != first.Latency {
		t.Error("Reset did not clear state")
	}
}

func TestAdvanceUpdatesState(t *testing.T) {
	cfg := DefaultModelConfig(2, 3)
	m, _ := NewModel(cfg)
	a := NewStatefulModel(m)
	b := NewStatefulModel(m)
	x := []float64{1, -1}
	a.Advance(x) // advance state silently
	pa := a.Predict(x)
	pb := b.Predict(x) // fresh state
	if pa.Latency == pb.Latency {
		t.Error("Advance did not change hidden state")
	}
}

func TestTrainingReducesLoss(t *testing.T) {
	// Synthetic task: latency = mean of feature 0 over the window; drop
	// iff feature 1 of last packet > 0.
	cfg := DefaultModelConfig(2, 4)
	cfg.Epochs = 12
	cfg.Hidden = 12
	m, _ := NewModel(cfg)
	rng := stats.NewStream(11)
	var samples []Sample
	for i := 0; i < 400; i++ {
		var s Sample
		var sum float64
		for j := 0; j < cfg.Window; j++ {
			f0 := rng.Float64()
			f1 := rng.NormFloat64()
			s.Window = append(s.Window, []float64{f0, f1})
			sum += f0
		}
		s.Latency = sum / float64(cfg.Window)
		s.Dropped = s.Window[cfg.Window-1][1] > 0
		samples = append(samples, s)
	}
	res := m.Train(samples)
	if len(res.EpochLoss) != cfg.Epochs {
		t.Fatalf("epoch losses = %d", len(res.EpochLoss))
	}
	first, last := res.EpochLoss[0], res.EpochLoss[cfg.Epochs-1]
	if last >= first*0.8 {
		t.Errorf("training did not reduce loss: %v -> %v", first, last)
	}
	ev := m.Evaluate(samples)
	if ev.LatencyMAE > 0.15 {
		t.Errorf("latency MAE = %v after training", ev.LatencyMAE)
	}
}

// Figure 5's core claim: with plain BCE on imbalanced drops, the model
// underpredicts the drop rate by ~an order of magnitude; WBCE recovers a
// realistic rate.
func TestWBCEBeatsBCEOnImbalance(t *testing.T) {
	makeSamples := func() []Sample {
		rng := stats.NewStream(21)
		var out []Sample
		for i := 0; i < 600; i++ {
			var s Sample
			risk := rng.Float64()
			for j := 0; j < 4; j++ {
				s.Window = append(s.Window, []float64{risk + 0.1*rng.NormFloat64()})
			}
			// ~3% drop rate concentrated at high risk.
			s.Dropped = risk > 0.9 && rng.Float64() < 0.3
			s.Latency = risk
			out = append(out, s)
		}
		return out
	}
	train := func(w float64) EvalResult {
		cfg := DefaultModelConfig(1, 4)
		cfg.DropWeight = w
		cfg.Epochs = 6
		cfg.DropLossW = 2
		m, _ := NewModel(cfg)
		samples := makeSamples()
		m.Train(samples)
		return m.Evaluate(samples)
	}
	bce := train(0)    // plain BCE
	wbce := train(0.8) // weighted
	if wbce.DropRatePred <= bce.DropRatePred {
		t.Errorf("WBCE pred rate %v should exceed BCE %v on imbalanced data",
			wbce.DropRatePred, bce.DropRatePred)
	}
}

func TestModelSerializationRoundTrip(t *testing.T) {
	cfg := DefaultModelConfig(3, 4)
	m, _ := NewModel(cfg)
	window := [][]float64{{1, 0, -1}, {0.5, 0.2, 0}, {0, 1, 1}, {-1, 0, 0.3}}
	before := m.Forward(window)
	b, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var m2 Model
	if err := json.Unmarshal(b, &m2); err != nil {
		t.Fatal(err)
	}
	after := m2.Forward(window)
	if before.Latency != after.Latency || before.PDrop != after.PDrop || before.PECN != after.PECN {
		t.Error("serialized model predicts differently")
	}
}

func TestModelConfigValidation(t *testing.T) {
	bad := []func(*ModelConfig){
		func(c *ModelConfig) { c.Features = 0 },
		func(c *ModelConfig) { c.Hidden = 0 },
		func(c *ModelConfig) { c.Layers = 0 },
		func(c *ModelConfig) { c.Window = 0 },
		func(c *ModelConfig) { c.LR = 0 },
		func(c *ModelConfig) { c.Epochs = 0 },
	}
	for i, mut := range bad {
		cfg := DefaultModelConfig(3, 4)
		mut(&cfg)
		if _, err := NewModel(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestOptimizersReduceQuadratic(t *testing.T) {
	// Minimize (x-3)^2 with each optimizer.
	for _, name := range []string{"sgd", "adam"} {
		p := NewMatrix(1, 1)
		var opt Optimizer
		if name == "sgd" {
			opt = NewSGD(0.1, 0.5)
		} else {
			opt = NewAdam(0.1)
		}
		for i := 0; i < 200; i++ {
			p.Grad[0] = 2 * (p.Data[0] - 3)
			opt.Step([]*Matrix{p})
		}
		if math.Abs(p.Data[0]-3) > 0.05 {
			t.Errorf("%s converged to %v, want 3", name, p.Data[0])
		}
		if p.Grad[0] != 0 {
			t.Errorf("%s did not zero grads", name)
		}
	}
}

func TestClipGrads(t *testing.T) {
	p := NewMatrix(1, 2)
	p.Grad[0], p.Grad[1] = 3, 4 // norm 5
	norm := ClipGrads([]*Matrix{p}, 1)
	if norm != 5 {
		t.Errorf("returned norm %v", norm)
	}
	if math.Abs(p.Grad[0]-0.6) > 1e-12 || math.Abs(p.Grad[1]-0.8) > 1e-12 {
		t.Errorf("clipped grads = %v", p.Grad)
	}
	// Below the cap: untouched.
	p.Grad[0], p.Grad[1] = 0.1, 0.1
	ClipGrads([]*Matrix{p}, 1)
	if p.Grad[0] != 0.1 {
		t.Error("grads below cap were modified")
	}
}

func TestFLOPsPerStepScalesWithSize(t *testing.T) {
	small, _ := NewModel(DefaultModelConfig(4, 4))
	bigCfg := DefaultModelConfig(4, 4)
	bigCfg.Hidden = 64
	big, _ := NewModel(bigCfg)
	if big.FLOPsPerStep() <= small.FLOPsPerStep() {
		t.Error("FLOPs should grow with hidden size")
	}
	if small.FLOPsPerStep() <= 0 {
		t.Error("non-positive FLOPs")
	}
}

func TestEvaluateEmpty(t *testing.T) {
	m, _ := NewModel(DefaultModelConfig(2, 2))
	if ev := m.Evaluate(nil); ev.Loss != 0 {
		t.Error("empty evaluate should be zero")
	}
}

func TestLSTMStateClone(t *testing.T) {
	l := NewLSTM(2, 3, stats.NewStream(1))
	st := l.NewState()
	st.H[0] = 7
	cl := st.Clone()
	cl.H[0] = 9
	if st.H[0] != 7 {
		t.Error("Clone aliases memory")
	}
}

func TestFineTuneImprovesOnShiftedData(t *testing.T) {
	// Train on task A (latency = mean of feature 0), then fine-tune on a
	// shifted task (latency = 1 - mean): fine-tuning should adapt much
	// faster than the model's from-scratch loss level.
	cfg := DefaultModelConfig(1, 3)
	cfg.Epochs = 8
	m, _ := NewModel(cfg)
	rng := stats.NewStream(31)
	mk := func(invert bool, n int) []Sample {
		var out []Sample
		for i := 0; i < n; i++ {
			var s Sample
			var sum float64
			for j := 0; j < cfg.Window; j++ {
				v := rng.Float64()
				s.Window = append(s.Window, []float64{v})
				sum += v
			}
			s.Latency = sum / float64(cfg.Window)
			if invert {
				s.Latency = 1 - s.Latency
			}
			out = append(out, s)
		}
		return out
	}
	m.Train(mk(false, 300))
	shifted := mk(true, 300)
	before := m.Evaluate(shifted).LatencyMAE
	res := m.FineTune(shifted, 4, 0)
	after := m.Evaluate(shifted).LatencyMAE
	if after >= before {
		t.Errorf("fine-tuning did not adapt: MAE %v -> %v", before, after)
	}
	if len(res.EpochLoss) != 4 {
		t.Errorf("epoch losses = %d", len(res.EpochLoss))
	}
	// Degenerate arguments are clamped, not fatal.
	m.FineTune(shifted[:10], 0, -1)
}

// Gradient checks for the alternative trunk classes — the same central-
// difference validation the LSTM gets.
func TestGradientCheckGRUAndMLP(t *testing.T) {
	for _, cellType := range []string{"gru", "mlp"} {
		layers := 2
		if cellType == "mlp" {
			layers = 1
		}
		cfg := ModelConfig{
			Features: 3, Hidden: 4, Layers: layers, Window: 3,
			HuberDelta: 1, LatLoss: LossHuber, DropWeight: 0.7,
			LatWeight: 1, DropLossW: 1, ECNLossW: 1,
			LR: 0.01, Epochs: 1, Seed: 3, CellType: cellType,
		}
		m, err := NewModel(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rng := stats.NewStream(13)
		sample := Sample{Latency: 0.4, Dropped: false, ECN: true}
		sample.Window = synthGaussianWindow(rng, cfg.Window, cfg.Features)
		lossAt := func() float64 {
			tr := ForwardWindow(m.Trunk, sample.Window, false)
			p := m.heads(tr.Outputs)
			lat, _ := m.Cfg.LatLoss.Eval(p.Latency, sample.Latency, cfg.HuberDelta)
			drop, _ := WBCE(p.PDrop, 0, cfg.DropWeight)
			ecn, _ := BCE(p.PECN, 1)
			return cfg.LatWeight*lat + cfg.DropLossW*drop + cfg.ECNLossW*ecn
		}
		for _, p := range m.Params() {
			p.ZeroGrad()
		}
		m.trainStep(sample)
		const eps = 1e-6
		checked := 0
		for pi, p := range m.Params() {
			for i := 0; i < len(p.Data); i += 5 {
				orig := p.Data[i]
				p.Data[i] = orig + eps
				up := lossAt()
				p.Data[i] = orig - eps
				down := lossAt()
				p.Data[i] = orig
				numeric := (up - down) / (2 * eps)
				analytic := p.Grad[i]
				scale := math.Max(1, math.Max(math.Abs(numeric), math.Abs(analytic)))
				if math.Abs(numeric-analytic)/scale > 1e-4 {
					t.Fatalf("%s param %d idx %d: analytic %v vs numeric %v",
						cellType, pi, i, analytic, numeric)
				}
				checked++
			}
		}
		if checked < 12 {
			t.Fatalf("%s: only %d weights checked", cellType, checked)
		}
	}
}

func TestAllCellTypesTrainAndSerialize(t *testing.T) {
	rng := stats.NewStream(17)
	var samples []Sample
	for i := 0; i < 200; i++ {
		var s Sample
		var sum float64
		for j := 0; j < 4; j++ {
			v := rng.Float64()
			s.Window = append(s.Window, []float64{v, rng.NormFloat64()})
			sum += v
		}
		s.Latency = sum / 4
		samples = append(samples, s)
	}
	for _, cellType := range []string{"lstm", "gru", "mlp"} {
		cfg := DefaultModelConfig(2, 4)
		cfg.CellType = cellType
		cfg.Epochs = 6
		cfg.Hidden = 10
		m, err := NewModel(cfg)
		if err != nil {
			t.Fatalf("%s: %v", cellType, err)
		}
		res := m.Train(samples)
		if res.EpochLoss[len(res.EpochLoss)-1] >= res.EpochLoss[0] {
			t.Errorf("%s: training did not reduce loss: %v", cellType, res.EpochLoss)
		}
		if m.Trunk[0].CellType() != cellType {
			t.Errorf("%s: trunk type = %q", cellType, m.Trunk[0].CellType())
		}
		// Serialization round trip preserves predictions.
		before := m.Forward(samples[0].Window)
		blob, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		var m2 Model
		if err := json.Unmarshal(blob, &m2); err != nil {
			t.Fatal(err)
		}
		after := m2.Forward(samples[0].Window)
		if before != after {
			t.Errorf("%s: serialization changed predictions", cellType)
		}
		// Streaming inference matches windowed inference for recurrent and
		// windowed cells alike (the MLP's ring buffer makes this hold too).
		sr := NewStatefulModel(m)
		var last Prediction
		for _, x := range samples[0].Window {
			last = sr.Predict(x)
		}
		if math.Abs(last.Latency-before.Latency) > 1e-12 {
			t.Errorf("%s: streaming diverges from windowed", cellType)
		}
	}
}

func TestUnknownCellTypeRejected(t *testing.T) {
	cfg := DefaultModelConfig(2, 4)
	cfg.CellType = "transformer"
	if _, err := NewModel(cfg); err == nil {
		t.Error("unknown cell type accepted")
	}
	cfg.CellType = "mlp"
	cfg.Layers = 2
	if _, err := NewModel(cfg); err == nil {
		t.Error("stacked mlp accepted")
	}
	var m Model
	if err := m.UnmarshalJSON([]byte(`{"cfg":{"features":1,"hidden":1,"layers":1,"window":1,"lr":1,"epochs":1},"trunk":[{"type":"bogus"}],"lat_head":{"W":{"rows":1,"cols":1,"data":[1]},"B":{"rows":1,"cols":1,"data":[0]}},"drop_head":{"W":{"rows":1,"cols":1,"data":[1]},"B":{"rows":1,"cols":1,"data":[0]}},"ecn_head":{"W":{"rows":1,"cols":1,"data":[1]},"B":{"rows":1,"cols":1,"data":[0]}}}`)); err == nil {
		t.Error("bogus serialized cell accepted")
	}
}
