package ml

import (
	"context"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"mimicnet/internal/obs"
	"mimicnet/internal/stats"
)

// setKernel forces one GEMM kernel family for the duration of the test
// and restores the previous selection afterwards.
func setKernel(t testing.TB, name string) {
	t.Helper()
	prev := GemmKernelName()
	if err := SetGemmKernel(name); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := SetGemmKernel(prev); err != nil {
			t.Fatal(err)
		}
	})
}

// wideGatesAvailable reports whether any family on this CPU/build runs
// the 4-wide gate kernels.
func wideGatesAvailable() bool {
	impl, ok := gemmImplByName["avx2"]
	return ok && impl.wideGates
}

func TestGemmKernelsAvailable(t *testing.T) {
	ks := GemmKernels()
	t.Logf("kernels=%v active=%s wideGates=%v (cpu: avx2=%v fma=%v)",
		ks, GemmKernelName(), GemmWideGates(), cpuHasAVX2, cpuHasFMA)
	if len(ks) == 0 || ks[0] != "scalar" {
		t.Fatalf("scalar family must always be available, got %v", ks)
	}
	if haveGemm8 {
		found := false
		for _, k := range ks {
			if k == "sse2" {
				found = true
			}
		}
		if !found {
			t.Fatalf("sse2 family missing despite haveGemm8: %v", ks)
		}
	}
}

func TestSetGemmKernelErrors(t *testing.T) {
	active := GemmKernelName()
	err := SetGemmKernel("neon")
	if err == nil {
		t.Fatal("expected error for unknown kernel name")
	}
	for _, want := range []string{"unknown GEMM kernel", "scalar", "sse2", "avx2"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("unknown-kernel error %q should mention %q", err, want)
		}
	}
	// Known names that this CPU/build cannot run get a distinct message.
	for _, name := range gemmKernelNames {
		if _, ok := gemmImplByName[name]; ok {
			continue
		}
		err := SetGemmKernel(name)
		if err == nil || !strings.Contains(err.Error(), "not available") {
			t.Errorf("SetGemmKernel(%q) = %v, want not-available error", name, err)
		}
	}
	if GemmKernelName() != active {
		t.Fatalf("failed SetGemmKernel changed the active kernel to %s", GemmKernelName())
	}
}

func TestGemmKernelGauge(t *testing.T) {
	var sb strings.Builder
	if err := obs.Default().WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	live := `mimicnet_ml_gemm_kernel{kernel="` + GemmKernelName() + `"} 1`
	if !strings.Contains(text, live) {
		t.Fatalf("metrics output missing %q", live)
	}
	for _, k := range gemmKernelNames {
		if k == GemmKernelName() {
			continue
		}
		idle := `mimicnet_ml_gemm_kernel{kernel="` + k + `"} 0`
		if !strings.Contains(text, idle) {
			t.Errorf("metrics output missing %q", idle)
		}
	}
}

// FuzzGemmKernels drives MulLanes through every available kernel family
// on one fuzzed shape — rows/k/lanes, partial row ranges, padded output
// strides, ragged lane tails, dense and mostly-zero inputs — and
// requires bitwise equality with the naive ascending-k reference.
func FuzzGemmKernels(f *testing.F) {
	f.Add(uint8(1), uint8(1), uint8(1), uint8(0), int64(1))
	f.Add(uint8(1), uint8(7), uint8(16), uint8(3), int64(2))
	f.Add(uint8(8), uint8(1), uint8(33), uint8(1), int64(3))
	f.Add(uint8(13), uint8(24), uint8(17), uint8(5), int64(4))
	f.Add(uint8(32), uint8(9), uint8(15), uint8(2), int64(5))
	f.Add(uint8(96), uint8(24), uint8(64), uint8(0), int64(6))
	f.Add(uint8(52), uint8(13), uint8(16), uint8(7), int64(-9))
	f.Fuzz(func(t *testing.T, rows8, k8, lanes8, pad8 uint8, seed int64) {
		rows := 1 + int(rows8)%96
		k := 1 + int(k8)%64
		n := int(lanes8) % 70
		outStride := rows + int(pad8)%8
		s := stats.NewStream(seed)
		m := randMatrix(rows, k, s)
		var xs []float64
		if seed%3 == 0 {
			xs = sparseVec(n*k, s)
		} else {
			xs = randVec(n*k, s)
		}
		r1 := 1 + s.Intn(rows)
		r0 := s.Intn(r1)
		want := naiveMulLanes(m, r0, r1, xs, n, outStride)
		pools := []*Pool{NewPool(1), NewPool(3)}
		defer pools[0].Close()
		defer pools[1].Close()
		for _, kn := range GemmKernels() {
			setKernel(t, kn)
			for pi, pool := range pools {
				got := make([]float64, n*outStride)
				m.MulLanes(r0, r1, xs, n, got, outStride, pool)
				for a := 0; a < n; a++ {
					for r := r0; r < r1; r++ {
						i := a*outStride + r
						if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
							t.Fatalf("kernel %s pool %d: (%dx%d n=%d rows [%d,%d)) lane %d row %d: %v != %v",
								kn, pi, rows, k, n, r0, r1, a, r, got[i], want[i])
						}
					}
				}
			}
		}
	})
}

// FuzzGemmBackwardKernels covers the backward-shaped kernels — MulLanesT
// and AddGradLanes, which the avx2 family routes through axpy4 — against
// the scalar loops, bitwise, including zero gradients (the d == 0 skip).
func FuzzGemmBackwardKernels(f *testing.F) {
	f.Add(uint8(4), uint8(3), uint8(2), int64(1))
	f.Add(uint8(28), uint8(13), uint8(16), int64(2))
	f.Add(uint8(52), uint8(8), uint8(7), int64(3))
	f.Add(uint8(1), uint8(1), uint8(1), int64(4))
	f.Fuzz(func(t *testing.T, rows8, k8, lanes8 uint8, seed int64) {
		rows := 1 + int(rows8)%64
		k := 1 + int(k8)%48
		n := int(lanes8) % 40
		s := stats.NewStream(seed)
		m := randMatrix(rows, k, s)
		dys := make([]float64, n*rows)
		for i := range dys {
			if s.Float64() < 0.25 {
				continue // exact zeros exercise the skip path
			}
			dys[i] = 2*s.Float64() - 1
		}
		xs := randVec(n*k, s)
		r1 := 1 + s.Intn(rows)
		r0 := s.Intn(r1)

		wantT := make([]float64, n*k)
		for a := 0; a < n; a++ {
			for r := r0; r < r1; r++ {
				d := dys[a*rows+r]
				if d == 0 {
					continue
				}
				for c := 0; c < k; c++ {
					wantT[a*k+c] += m.Data[r*k+c] * d
				}
			}
		}
		wantG := make([]float64, rows*k)
		for r := r0; r < r1; r++ {
			for a := 0; a < n; a++ {
				d := dys[a*rows+r]
				if d == 0 {
					continue
				}
				for c := 0; c < k; c++ {
					wantG[r*k+c] += d * xs[a*k+c]
				}
			}
		}

		pool := NewPool(3)
		defer pool.Close()
		for _, kn := range GemmKernels() {
			setKernel(t, kn)
			gotT := make([]float64, n*k)
			m.MulLanesT(r0, r1, dys, rows, n, gotT, pool)
			for i := range wantT {
				if math.Float64bits(gotT[i]) != math.Float64bits(wantT[i]) {
					t.Fatalf("kernel %s: MulLanesT elem %d: %v != %v", kn, i, gotT[i], wantT[i])
				}
			}
			zeroRange(m.Grad)
			m.AddGradLanes(r0, r1, dys, rows, n, xs, pool)
			for i := range wantG {
				if math.Float64bits(m.Grad[i]) != math.Float64bits(wantG[i]) {
					t.Fatalf("kernel %s: AddGradLanes elem %d: %v != %v", kn, i, m.Grad[i], wantG[i])
				}
			}
		}
	})
}

// FuzzGateKernels bit-compares the 4-wide sigmoid/tanh kernels against
// the scalar Sigmoid/math.Tanh on arbitrary float64 inputs, including
// the specials the fuzzer will find (±0, denormals, ±Inf, NaN, branch
// boundaries). Skipped (not failed) on builds/CPUs without wide gates.
func FuzzGateKernels(f *testing.F) {
	f.Add(0.0, math.Copysign(0, -1), 0.625, -0.625)
	f.Add(44.014, -44.015, 709.8, -709.8)
	f.Add(math.Inf(1), math.Inf(-1), 1e-320, -1e-320)
	f.Add(0.3, -19.0625, 100.0, 5e-324)
	f.Fuzz(func(t *testing.T, a, b, c, d float64) {
		if !wideGatesAvailable() {
			t.Skip("wide gate kernels unavailable")
		}
		src := []float64{a, b, c, d, a} // ragged tail covers the scalar epilogue
		got := make([]float64, len(src))
		sigmoidLanes(got, src, true)
		for i, x := range src {
			want := Sigmoid(x)
			if math.Float64bits(got[i]) != math.Float64bits(want) {
				t.Fatalf("sigmoid(%v) = %x, want %x", x, math.Float64bits(got[i]), math.Float64bits(want))
			}
		}
		tanhLanes(got, src, true)
		for i, x := range src {
			want := math.Tanh(x)
			if math.Float64bits(got[i]) != math.Float64bits(want) {
				t.Fatalf("tanh(%v) = %x, want %x", x, math.Float64bits(got[i]), math.Float64bits(want))
			}
		}
		// In-place operation must give the same bits.
		inPlace := append([]float64(nil), src...)
		sigmoidLanes(inPlace, inPlace, true)
		for i, x := range src {
			if math.Float64bits(inPlace[i]) != math.Float64bits(Sigmoid(x)) {
				t.Fatalf("in-place sigmoid(%v) diverged", x)
			}
		}
	})
}

// TestGoldenKernelParity is the end-to-end cross-kernel check: training
// the same model under every kernel family must produce byte-identical
// serialized artifacts, and batched inference on the trained model must
// produce bit-identical predictions, regardless of which family ran.
func TestGoldenKernelParity(t *testing.T) {
	kernels := GemmKernels()
	if len(kernels) < 2 {
		t.Skip("only one kernel family available; nothing to cross-check")
	}
	type result struct {
		blob  []byte
		preds []Prediction
	}
	run := func(kn string) result {
		setKernel(t, kn)
		pool := NewPool(2)
		defer pool.Close()
		cfg := DefaultModelConfig(3, 5)
		cfg.Hidden = 13 // not a multiple of any lane block: ragged tails
		cfg.Layers = 2
		cfg.BatchSize = 8
		cfg.Epochs = 2
		cfg.Seed = 7
		samples := synthSamples(60, cfg.Features, cfg.Window, 19)
		m, err := NewModel(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.TrainContext(context.Background(), samples, TrainOpts{Pool: pool}); err != nil {
			t.Fatal(err)
		}
		blob, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		bm := NewBatchedStatefulModel(m, 4, pool)
		rng := stats.NewStream(99)
		var preds []Prediction
		for step := 0; step < 6; step++ {
			for lane := 0; lane < 4; lane++ {
				x := make([]float64, cfg.Features)
				for i := range x {
					x[i] = 2*rng.Float64() - 1
				}
				preds = append(preds, bm.PredictLane(lane, x))
			}
		}
		return result{blob: blob, preds: preds}
	}
	base := run(kernels[0])
	for _, kn := range kernels[1:] {
		r := run(kn)
		if string(r.blob) != string(base.blob) {
			t.Errorf("trained artifact under %s differs from %s (%d vs %d bytes)",
				kn, kernels[0], len(r.blob), len(base.blob))
		}
		for i := range base.preds {
			if r.preds[i] != base.preds[i] {
				t.Errorf("prediction %d under %s differs from %s: %+v vs %+v",
					i, kn, kernels[0], r.preds[i], base.preds[i])
				break
			}
		}
	}
}
