// AVX2 lane-batched GEMM microkernel and elementwise axpy. Like the
// SSE2 gemm8, vectorization is across LANES: each of the 16 lanes keeps
// its own accumulator component that sums w[k]*x[k] in ascending-k
// order with a separate VMULPD and VADDPD per term — deliberately NOT
// VFMADD, whose single rounding would diverge from the scalar Dot chain
// (two roundings per term). Two weight rows are blocked per pass so 8
// YMM accumulators stay live across the k loop, amortizing each tile
// load over two rows.
//
// Register budget (gemm16): Y0-Y7 accumulators, Y8-Y11 tile slices,
// Y12/Y13 broadcast weights, Y14 mul temp. Y15 is left untouched (the
// Go internal ABI reserves X15 as a zero register; hand-written ABI0
// code may clobber it, but avoiding it entirely is cheap). R14/R15 are
// reserved by the Go register ABI, so cursors use BX/DX/R13.
//
// VEX encodings throughout; VZEROUPPER before every RET to avoid
// SSE/AVX transition stalls in the scalar code that follows.

//go:build !purego

#include "textflag.h"

// func gemm16(w *float64, rows, k int, xt *float64, strideB int, out *float64, outStrideB int)
TEXT ·gemm16(SB), NOSPLIT, $0-56
	MOVQ	w+0(FP), SI
	MOVQ	rows+8(FP), R8
	MOVQ	k+16(FP), R9
	MOVQ	xt+24(FP), DI
	MOVQ	strideB+32(FP), R10
	MOVQ	out+40(FP), R11
	MOVQ	outStrideB+48(FP), R12

	MOVQ	R9, AX  // AX = k*8 = byte length of one weight row
	SHLQ	$3, AX

pairloop:
	CMPQ	R8, $2
	JL	rowtail

	// Two rows r and r+1: accumulators row r in Y0-Y3 (lanes 0-15),
	// row r+1 in Y4-Y7.
	VXORPD	Y0, Y0, Y0
	VXORPD	Y1, Y1, Y1
	VXORPD	Y2, Y2, Y2
	VXORPD	Y3, Y3, Y3
	VXORPD	Y4, Y4, Y4
	VXORPD	Y5, Y5, Y5
	VXORPD	Y6, Y6, Y6
	VXORPD	Y7, Y7, Y7
	MOVQ	DI, DX          // xt cursor (k = 0)
	MOVQ	R9, CX          // k countdown
	LEAQ	(SI)(AX*1), R13 // weight cursor for row r+1

kloop2:
	VBROADCASTSD	(SI), Y12
	VBROADCASTSD	(R13), Y13
	// one k-slice of the tile: lanes 0..15
	VMOVUPD	(DX), Y8
	VMOVUPD	32(DX), Y9
	VMOVUPD	64(DX), Y10
	VMOVUPD	96(DX), Y11
	// multiply THEN add — two rounding steps, matching scalar s += w*x
	VMULPD	Y8, Y12, Y14
	VADDPD	Y14, Y0, Y0
	VMULPD	Y9, Y12, Y14
	VADDPD	Y14, Y1, Y1
	VMULPD	Y10, Y12, Y14
	VADDPD	Y14, Y2, Y2
	VMULPD	Y11, Y12, Y14
	VADDPD	Y14, Y3, Y3
	VMULPD	Y8, Y13, Y14
	VADDPD	Y14, Y4, Y4
	VMULPD	Y9, Y13, Y14
	VADDPD	Y14, Y5, Y5
	VMULPD	Y10, Y13, Y14
	VADDPD	Y14, Y6, Y6
	VMULPD	Y11, Y13, Y14
	VADDPD	Y14, Y7, Y7
	ADDQ	$8, SI
	ADDQ	$8, R13
	ADDQ	R10, DX
	DECQ	CX
	JNZ	kloop2

	// Scatter: lane L of row r goes to out + L*outStrideB + 0, row r+1
	// to out + L*outStrideB + 8. Walk lanes with BX, four per acc pair.
	MOVQ	R11, BX
	VMOVSD	X0, (BX)
	VMOVSD	X4, 8(BX)
	ADDQ	R12, BX
	VMOVHPD	X0, (BX)
	VMOVHPD	X4, 8(BX)
	ADDQ	R12, BX
	VEXTRACTF128	$1, Y0, X0
	VEXTRACTF128	$1, Y4, X4
	VMOVSD	X0, (BX)
	VMOVSD	X4, 8(BX)
	ADDQ	R12, BX
	VMOVHPD	X0, (BX)
	VMOVHPD	X4, 8(BX)
	ADDQ	R12, BX

	VMOVSD	X1, (BX)
	VMOVSD	X5, 8(BX)
	ADDQ	R12, BX
	VMOVHPD	X1, (BX)
	VMOVHPD	X5, 8(BX)
	ADDQ	R12, BX
	VEXTRACTF128	$1, Y1, X1
	VEXTRACTF128	$1, Y5, X5
	VMOVSD	X1, (BX)
	VMOVSD	X5, 8(BX)
	ADDQ	R12, BX
	VMOVHPD	X1, (BX)
	VMOVHPD	X5, 8(BX)
	ADDQ	R12, BX

	VMOVSD	X2, (BX)
	VMOVSD	X6, 8(BX)
	ADDQ	R12, BX
	VMOVHPD	X2, (BX)
	VMOVHPD	X6, 8(BX)
	ADDQ	R12, BX
	VEXTRACTF128	$1, Y2, X2
	VEXTRACTF128	$1, Y6, X6
	VMOVSD	X2, (BX)
	VMOVSD	X6, 8(BX)
	ADDQ	R12, BX
	VMOVHPD	X2, (BX)
	VMOVHPD	X6, 8(BX)
	ADDQ	R12, BX

	VMOVSD	X3, (BX)
	VMOVSD	X7, 8(BX)
	ADDQ	R12, BX
	VMOVHPD	X3, (BX)
	VMOVHPD	X7, 8(BX)
	ADDQ	R12, BX
	VEXTRACTF128	$1, Y3, X3
	VEXTRACTF128	$1, Y7, X7
	VMOVSD	X3, (BX)
	VMOVSD	X7, 8(BX)
	ADDQ	R12, BX
	VMOVHPD	X3, (BX)
	VMOVHPD	X7, 8(BX)

	MOVQ	R13, SI  // now points at row r+2
	ADDQ	$16, R11 // out advances two rows (8 bytes each)
	SUBQ	$2, R8
	JMP	pairloop

rowtail:
	TESTQ	R8, R8
	JE	done

	// Odd final row: accumulators Y0-Y3 only.
	VXORPD	Y0, Y0, Y0
	VXORPD	Y1, Y1, Y1
	VXORPD	Y2, Y2, Y2
	VXORPD	Y3, Y3, Y3
	MOVQ	DI, DX
	MOVQ	R9, CX

kloop1:
	VBROADCASTSD	(SI), Y12
	VMOVUPD	(DX), Y8
	VMOVUPD	32(DX), Y9
	VMOVUPD	64(DX), Y10
	VMOVUPD	96(DX), Y11
	VMULPD	Y8, Y12, Y14
	VADDPD	Y14, Y0, Y0
	VMULPD	Y9, Y12, Y14
	VADDPD	Y14, Y1, Y1
	VMULPD	Y10, Y12, Y14
	VADDPD	Y14, Y2, Y2
	VMULPD	Y11, Y12, Y14
	VADDPD	Y14, Y3, Y3
	ADDQ	$8, SI
	ADDQ	R10, DX
	DECQ	CX
	JNZ	kloop1

	MOVQ	R11, BX
	VMOVSD	X0, (BX)
	ADDQ	R12, BX
	VMOVHPD	X0, (BX)
	ADDQ	R12, BX
	VEXTRACTF128	$1, Y0, X0
	VMOVSD	X0, (BX)
	ADDQ	R12, BX
	VMOVHPD	X0, (BX)
	ADDQ	R12, BX

	VMOVSD	X1, (BX)
	ADDQ	R12, BX
	VMOVHPD	X1, (BX)
	ADDQ	R12, BX
	VEXTRACTF128	$1, Y1, X1
	VMOVSD	X1, (BX)
	ADDQ	R12, BX
	VMOVHPD	X1, (BX)
	ADDQ	R12, BX

	VMOVSD	X2, (BX)
	ADDQ	R12, BX
	VMOVHPD	X2, (BX)
	ADDQ	R12, BX
	VEXTRACTF128	$1, Y2, X2
	VMOVSD	X2, (BX)
	ADDQ	R12, BX
	VMOVHPD	X2, (BX)
	ADDQ	R12, BX

	VMOVSD	X3, (BX)
	ADDQ	R12, BX
	VMOVHPD	X3, (BX)
	ADDQ	R12, BX
	VEXTRACTF128	$1, Y3, X3
	VMOVSD	X3, (BX)
	ADDQ	R12, BX
	VMOVHPD	X3, (BX)

done:
	VZEROUPPER
	RET

// func axpy4(y, x *float64, n int, a float64)
//
// y[i] += a * x[i] elementwise: exactly the scalar expression per
// element (a*x[i] rounds, then the add rounds — no FMA), so any split
// into vector lanes is bitwise identical to the Go loop.
TEXT ·axpy4(SB), NOSPLIT, $0-32
	MOVQ	y+0(FP), DI
	MOVQ	x+8(FP), SI
	MOVQ	n+16(FP), CX
	VBROADCASTSD	a+24(FP), Y0

loop8:
	CMPQ	CX, $8
	JL	tail4
	VMOVUPD	(SI), Y1
	VMOVUPD	32(SI), Y2
	VMULPD	Y1, Y0, Y3
	VMULPD	Y2, Y0, Y4
	VMOVUPD	(DI), Y1
	VMOVUPD	32(DI), Y2
	VADDPD	Y3, Y1, Y1
	VADDPD	Y4, Y2, Y2
	VMOVUPD	Y1, (DI)
	VMOVUPD	Y2, 32(DI)
	ADDQ	$64, SI
	ADDQ	$64, DI
	SUBQ	$8, CX
	JMP	loop8

tail4:
	CMPQ	CX, $4
	JL	tail1
	VMOVUPD	(SI), Y1
	VMULPD	Y1, Y0, Y3
	VMOVUPD	(DI), Y1
	VADDPD	Y3, Y1, Y1
	VMOVUPD	Y1, (DI)
	ADDQ	$32, SI
	ADDQ	$32, DI
	SUBQ	$4, CX

tail1:
	TESTQ	CX, CX
	JE	done
	VMOVSD	(SI), X1
	VMULSD	X1, X0, X3
	VMOVSD	(DI), X1
	VADDSD	X3, X1, X1
	VMOVSD	X1, (DI)
	ADDQ	$8, SI
	ADDQ	$8, DI
	DECQ	CX
	JMP	tail1

done:
	VZEROUPPER
	RET
