package ml

import (
	"fmt"
	"os"
	"strings"
	"sync/atomic"

	"mimicnet/internal/obs"
)

// Runtime GEMM kernel dispatch (DESIGN.md decision 11). Three kernel
// families share the hot paths:
//
//	scalar — the portable Go loops (also the only family under the
//	         purego build tag or off amd64)
//	sse2   — 8-lane k-major tiles through gemm8 (baseline amd64)
//	avx2   — 16-lane tiles through gemm16, the axpy4 backward kernel,
//	         and (on FMA hardware) the 4-wide sigmoid/tanh gate kernels
//
// Every family produces bitwise-identical results: each output element
// is the same ascending-k multiply-then-add chain as the scalar Dot, and
// the wide gate kernels clone math.Exp/math.Tanh instruction for
// instruction (gates_amd64.s), verified at init by wideGatesMatchScalar.
// Selection happens once at process start — CPUID probe plus the
// MIMICNET_GEMM override — and is published through one atomic pointer;
// kernels load it once per call, never per element.

// gemmImpl describes one selectable kernel family.
type gemmImpl struct {
	name string
	// tileLanes is the widest k-major tile the family consumes per
	// microkernel call: 16 (gemm16 + gemm8 remainder), 8 (gemm8), or 0
	// (pure-Go lane loops only).
	tileLanes int
	// axpy routes the MulLanesT/AddGradLanes inner loops through the
	// AVX2 elementwise y[i] += a*x[i] kernel.
	axpy bool
	// wideGates routes Sigmoid/Tanh gate passes through the 4-wide
	// AVX2+FMA clones of math.Exp's FMA variant and math.Tanh.
	wideGates bool
}

var gemmActive atomic.Pointer[gemmImpl]

// gemmKernel returns the live kernel descriptor (one atomic load; the
// only per-call dispatch cost on the hot path).
func gemmKernel() *gemmImpl { return gemmActive.Load() }

// gemmKernelNames is every name SetGemmKernel understands on any build,
// widest last.
var gemmKernelNames = []string{"scalar", "sse2", "avx2"}

// gemmImplByName holds the families usable on this CPU and build,
// assembled once at package init from the cached CPUID probe.
var gemmImplByName = buildGemmImpls()

func buildGemmImpls() map[string]*gemmImpl {
	m := map[string]*gemmImpl{"scalar": {name: "scalar"}}
	if haveGemm8 {
		m["sse2"] = &gemmImpl{name: "sse2", tileLanes: 8}
		if cpuHasAVX2 {
			m["avx2"] = &gemmImpl{
				name:      "avx2",
				tileLanes: 16,
				axpy:      true,
				// The gate kernels replicate math.Exp's AVX+FMA variant,
				// so they are only bitwise-correct when the runtime's
				// math package takes that same path. Verify empirically
				// rather than re-deriving internal/cpu's decision (which
				// GODEBUG can override): if any probe value disagrees
				// with the scalar transcendentals, fall back to scalar
				// gates and keep determinism.
				wideGates: cpuHasFMA && wideGatesMatchScalar(),
			}
		}
	}
	return m
}

func init() {
	def := "scalar"
	if _, ok := gemmImplByName["sse2"]; ok {
		def = "sse2"
	}
	if _, ok := gemmImplByName["avx2"]; ok {
		def = "avx2"
	}
	if env := os.Getenv("MIMICNET_GEMM"); env != "" {
		if err := SetGemmKernel(env); err != nil {
			// A misspelled or unavailable override must fail loudly at
			// start, not silently run a different kernel.
			panic("ml: " + err.Error())
		}
	} else if err := SetGemmKernel(def); err != nil {
		panic("ml: " + err.Error())
	}
	registerGemmKernelGauges()
}

// SetGemmKernel selects the GEMM kernel family by name ("scalar",
// "sse2", or "avx2"). It validates availability on this CPU and build
// and returns a descriptive error otherwise. All families are bitwise
// identical, so switching never changes results — only throughput.
// Intended for process start (MIMICNET_GEMM) and for tests/benchmarks;
// safe to call concurrently with running kernels (in-flight calls finish
// on the kernel they loaded).
func SetGemmKernel(name string) error {
	if impl, ok := gemmImplByName[name]; ok {
		gemmActive.Store(impl)
		return nil
	}
	avail := strings.Join(GemmKernels(), ", ")
	for _, k := range gemmKernelNames {
		if k == name {
			return fmt.Errorf("MIMICNET_GEMM=%q: kernel not available on this CPU/build (available: %s)", name, avail)
		}
	}
	return fmt.Errorf("MIMICNET_GEMM=%q: unknown GEMM kernel (supported values: %s; available here: %s)",
		name, strings.Join(gemmKernelNames, ", "), avail)
}

// GemmKernelName returns the live kernel family name.
func GemmKernelName() string { return gemmKernel().name }

// GemmWideGates reports whether the live kernel runs the 4-wide
// sigmoid/tanh gate kernels (avx2 on FMA hardware).
func GemmWideGates() bool { return gemmKernel().wideGates }

// GemmKernels returns the kernel names available on this CPU and build,
// narrowest first.
func GemmKernels() []string {
	out := make([]string, 0, len(gemmImplByName))
	for _, k := range gemmKernelNames {
		if _, ok := gemmImplByName[k]; ok {
			out = append(out, k)
		}
	}
	return out
}

// registerGemmKernelGauges exposes the selection as an info gauge: one
// series per known family, 1 on the live one. Scrape-time only.
func registerGemmKernelGauges() {
	for _, k := range gemmKernelNames {
		name := k
		obs.Default().GaugeFunc(
			fmt.Sprintf("mimicnet_ml_gemm_kernel{kernel=%q}", name),
			"Selected GEMM kernel family (1 = live; override with MIMICNET_GEMM).",
			func() float64 {
				if GemmKernelName() == name {
					return 1
				}
				return 0
			})
	}
}
