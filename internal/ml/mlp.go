package ml

import (
	"math"

	"mimicnet/internal/stats"
)

// WindowMLP is a non-recurrent baseline trunk: it keeps a sliding buffer
// of the last Window inputs and maps the (zero-padded) flattened window
// through one tanh layer. It exists to quantify what the recurrent cells
// buy — the paper chose LSTMs precisely because per-packet behavior has
// long-range structure a feed-forward net over a short window misses.
type WindowMLP struct {
	In, Hidden, Window int
	W                  *Matrix // (Hidden, In*Window)
	B                  *Matrix // (Hidden, 1)
}

// NewWindowMLP allocates and initializes the baseline.
func NewWindowMLP(in, hidden, window int, s *stats.Stream) *WindowMLP {
	m := &WindowMLP{
		In: in, Hidden: hidden, Window: window,
		W: NewMatrix(hidden, in*window),
		B: NewMatrix(hidden, 1),
	}
	m.W.InitXavier(s)
	return m
}

// InSize returns the input width.
func (m *WindowMLP) InSize() int { return m.In }

// HiddenSize returns the hidden width.
func (m *WindowMLP) HiddenSize() int { return m.Hidden }

// Params returns the trainable parameters.
func (m *WindowMLP) Params() []*Matrix { return []*Matrix{m.W, m.B} }

// CellType names the class.
func (m *WindowMLP) CellType() string { return "mlp" }

// mlpState is the ring buffer of recent inputs (oldest first).
type mlpState struct{ history [][]float64 }

// FreshState returns an empty input buffer.
func (m *WindowMLP) FreshState() CellState { return &mlpState{} }

type mlpCache struct {
	flat []float64
	h    []float64
}

func (m *WindowMLP) flatten(history [][]float64) []float64 {
	flat := Zeros(m.In * m.Window)
	pad := m.Window - len(history)
	for i, row := range history {
		copy(flat[(pad+i)*m.In:], row)
	}
	return flat
}

// StepState appends x to the window buffer and evaluates the layer.
func (m *WindowMLP) StepState(st CellState, x []float64, train bool) ([]float64, CellCache) {
	state := st.(*mlpState)
	state.history = append(state.history, append([]float64(nil), x...))
	if len(state.history) > m.Window {
		state.history = state.history[1:]
	}
	flat := m.flatten(state.history)
	h := m.W.MulVec(flat, nil)
	for i := range h {
		h[i] = math.Tanh(h[i] + m.B.Data[i])
	}
	if !train {
		return h, nil
	}
	return h, &mlpCache{flat: flat, h: h}
}

// StepBackward backpropagates one evaluation. The MLP has no recurrent
// path, so dhPrev is zero: gradient reaches earlier steps only through
// the model heads (which read the final step), which is exactly the
// baseline's limitation.
func (m *WindowMLP) StepBackward(cache CellCache, dh, _ []float64) (dhPrev, dcarryPrev, dx []float64) {
	c := cache.(*mlpCache)
	da := Zeros(m.Hidden)
	for j := range da {
		da[j] = dh[j] * DTanh(c.h[j])
	}
	m.W.AddOuterGrad(da, c.flat)
	for j, d := range da {
		m.B.Grad[j] += d
	}
	dflat := Zeros(len(c.flat))
	m.W.MulVecT(da, dflat)
	// dx is the gradient w.r.t. the newest window slot.
	dx = dflat[len(dflat)-m.In:]
	return Zeros(m.Hidden), nil, dx
}

var _ Cell = (*WindowMLP)(nil)
