package ml

import (
	"fmt"

	"mimicnet/internal/stats"
)

// Training checkpoints extend the repo's determinism guarantees into the
// failure domain: a TrainContext run killed at any point and resumed
// from its newest checkpoint produces a final model bitwise identical to
// an uninterrupted run (DESIGN.md decision 12). That requires capturing
// every piece of state the epoch loop reads:
//
//   - parameter values (the weights being trained),
//   - Adam first/second moments and step counter (the optimizer's
//     trajectory is state, not just the weights),
//   - the epoch cursor and accumulated per-epoch losses,
//   - the shuffle permutation (it evolves cumulatively across epochs),
//   - the RNG stream position (stats.StreamState, exact to the source
//     draw).
//
// Checkpoints are cut at epoch boundaries: gradients are all applied,
// no minibatch is in flight, and the fused trainers hold no state that
// survives into the next epoch. The serialized form is JSON — float64s
// round-trip bit-exactly through Go's shortest-representation encoding,
// which the registry's model blobs already rely on.

// TrainCheckpoint is a resumable training cursor. Produced by the epoch
// loop via TrainOpts.SaveCheckpoint, consumed via TrainOpts.ResumeFrom.
type TrainCheckpoint struct {
	// Cfg fingerprints the run; a resume against a different config or
	// sample count is rejected rather than silently diverging.
	Cfg     ModelConfig `json:"cfg"`
	Samples int         `json:"samples"`

	// Epoch counts fully completed epochs (the loop resumes at this
	// index). Batch is reserved for finer-grained cursors and is always
	// zero at an epoch boundary.
	Epoch int `json:"epoch"`
	Batch int `json:"batch"`

	RNG       stats.StreamState `json:"rng"`
	Idx       []int             `json:"idx"`
	Params    [][]float64       `json:"params"` // Model.Params() order
	Opt       AdamState         `json:"opt"`
	EpochLoss []float64         `json:"epoch_loss"`
}

// Complete reports whether the checkpoint marks a finished run: every
// epoch applied, nothing left to train.
func (ck *TrainCheckpoint) Complete() bool {
	return ck != nil && ck.Epoch >= ck.Cfg.Epochs
}

// captureCheckpoint snapshots the training loop's state after
// `epochsDone` completed epochs. Everything is deep-copied: the caller
// may persist the checkpoint asynchronously while training continues.
func (m *Model) captureCheckpoint(epochsDone, samples int, rng *stats.Stream,
	idx []int, opt *Adam, epochLoss []float64) *TrainCheckpoint {
	params := m.Params()
	ck := &TrainCheckpoint{
		Cfg:       m.Cfg,
		Samples:   samples,
		Epoch:     epochsDone,
		RNG:       rng.State(),
		Idx:       append([]int(nil), idx...),
		Params:    make([][]float64, len(params)),
		Opt:       opt.State(params),
		EpochLoss: append([]float64(nil), epochLoss...),
	}
	for i, p := range params {
		ck.Params[i] = append([]float64(nil), p.Data...)
	}
	return ck
}

// restoreCheckpoint loads weights and validates shape compatibility.
// The optimizer/RNG/cursor halves are restored by the fit loop.
func (m *Model) restoreCheckpoint(ck *TrainCheckpoint, samples int) error {
	if ck.Cfg != m.Cfg {
		return fmt.Errorf("ml: checkpoint config mismatch (ckpt %+v vs model %+v)", ck.Cfg, m.Cfg)
	}
	if ck.Samples != samples {
		return fmt.Errorf("ml: checkpoint built over %d samples, training over %d", ck.Samples, samples)
	}
	if ck.Epoch > m.Cfg.Epochs {
		return fmt.Errorf("ml: checkpoint epoch %d beyond configured %d", ck.Epoch, m.Cfg.Epochs)
	}
	if len(ck.Idx) != samples {
		return fmt.Errorf("ml: checkpoint permutation covers %d samples, want %d", len(ck.Idx), samples)
	}
	params := m.Params()
	if len(ck.Params) != len(params) {
		return fmt.Errorf("ml: checkpoint has %d parameter tensors, model has %d", len(ck.Params), len(params))
	}
	for i, p := range params {
		if len(ck.Params[i]) != len(p.Data) {
			return fmt.Errorf("ml: checkpoint tensor %d has %d values, model wants %d",
				i, len(ck.Params[i]), len(p.Data))
		}
	}
	if err := ck.Opt.validate(params); err != nil {
		return err
	}
	for i, p := range params {
		copy(p.Data, ck.Params[i])
		p.ZeroGrad()
	}
	return nil
}
