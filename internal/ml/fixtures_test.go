package ml

import (
	"mimicnet/internal/stats"
)

// Shared synthetic-data builders for the trainer and layout tests. The
// draw order inside each helper is part of the fixtures' golden
// contract: every seeded test's data derives from it, so changing a
// draw changes what those tests train on.

// synthRow fills one synthetic feature row: feature 0 uniform in [0,1),
// feature 1 standard normal, the rest uniform in [-0.5,0.5).
func synthRow(rng *stats.Stream, features int) []float64 {
	row := make([]float64, features)
	row[0] = rng.Float64()
	if features > 1 {
		row[1] = rng.NormFloat64()
	}
	for k := 2; k < features; k++ {
		row[k] = rng.Float64() - 0.5
	}
	return row
}

// synthGaussianWindow draws one window of standard-normal rows — the
// hand-rolled builder previously copied across the gradient-check and
// stateful-inference tests.
func synthGaussianWindow(rng *stats.Stream, window, features int) [][]float64 {
	out := make([][]float64, window)
	for i := range out {
		row := make([]float64, features)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		out[i] = row
	}
	return out
}

// synthSamples builds the synthetic task used across the trainer tests
// (independent windows): latency = mean of feature 0 over the window,
// drop iff feature 1 of the last packet > 0, ECN iff feature 0 of the
// last packet > 0.7.
func synthSamples(n, features, window int, seed int64) []Sample {
	rng := stats.NewStream(seed)
	out := make([]Sample, 0, n)
	for i := 0; i < n; i++ {
		var s Sample
		var sum float64
		for j := 0; j < window; j++ {
			row := synthRow(rng, features)
			s.Window = append(s.Window, row)
			sum += row[0]
		}
		s.Latency = sum / float64(window)
		if features > 1 {
			s.Dropped = s.Window[window-1][1] > 0
		}
		s.ECN = s.Window[window-1][0] > 0.7
		out = append(out, s)
	}
	return out
}

// synthStream builds the same task over stream-shaped data — one row
// per packet, each sample's window the preceding rows of the stream,
// zero-padded before the start like a real boundary trace — and emits
// BOTH layouts from one draw sequence: the legacy padded []Sample and
// the columnar *SampleView. Identical float content across the two is
// what the layout-parity tests rely on. (Independent-window fixtures
// like synthSamples cannot be expressed as a single sliding-window
// matrix; stream-shaped data is the representable common case.)
func synthStream(n, features, window int, seed int64) ([]Sample, *SampleView) {
	rng := stats.NewStream(seed)
	view := NewSampleBank(features, window, n)
	rows := make([][]float64, 0, n)
	legacy := make([]Sample, 0, n)
	for i := 0; i < n; i++ {
		row := synthRow(rng, features)
		rows = append(rows, row)

		var s Sample
		sum := 0.0
		win := make([][]float64, 0, window)
		for j := i - window + 1; j <= i; j++ {
			if j < 0 {
				win = append(win, make([]float64, features))
				continue
			}
			win = append(win, rows[j])
			sum += rows[j][0]
		}
		s.Window = win
		s.Latency = sum / float64(window)
		if features > 1 {
			s.Dropped = row[1] > 0
		}
		s.ECN = row[0] > 0.7
		legacy = append(legacy, s)
		view.Append(row, s.Latency, s.Dropped, s.ECN)
	}
	return legacy, view
}
