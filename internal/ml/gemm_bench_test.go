package ml

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"mimicnet/internal/stats"
)

// gemmKernelStats is one row of BENCH_gemm.json: the same model stepped
// through every available kernel family, plus the raw GEMM rate. All
// families produce bitwise-identical outputs, so the rows differ only
// in throughput.
type gemmKernelStats struct {
	Kernel        string  `json:"kernel"`
	WideGates     bool    `json:"wide_gates"`
	GemmGFLOPs    float64 `json:"gemm_gflops"`
	InferNsPerStp float64 `json:"inference_ns_per_step"`
	TrainSamplesS float64 `json:"train_samples_per_second"`
	// Speedups vs the sse2 family (1.0 for sse2 itself); 0 when sse2 is
	// unavailable on this build.
	GemmSpeedup  float64 `json:"gemm_speedup_vs_sse2"`
	InferSpeedup float64 `json:"inference_speedup_vs_sse2"`
	TrainSpeedup float64 `json:"train_speedup_vs_sse2"`
}

// BenchmarkGemmKernels measures every available kernel family on three
// loads: the raw MulLanes GEMM at the LSTM trunk shape (GFLOP/s via
// b.SetBytes on the touched floats), one fused inference step at B=16
// (ns/step), and one minibatch training epoch at B=16 (samples/sec).
// When $BENCH_GEMM_JSON names a file (see `make bench-json`), the rows
// land there with speedups relative to the sse2 baseline.
func BenchmarkGemmKernels(b *testing.B) {
	const (
		features = 23 // feature width of the default topology
		window   = 8
		B        = 16
		nSamples = 256
	)
	report := map[string]*gemmKernelStats{}
	var order []string
	row := func(kn string) *gemmKernelStats {
		st, ok := report[kn]
		if !ok {
			st = &gemmKernelStats{Kernel: kn}
			report[kn] = st
			order = append(order, kn)
		}
		return st
	}

	for _, kn := range GemmKernels() {
		kn := kn
		b.Run("gemm/"+kn, func(b *testing.B) {
			if err := SetGemmKernel(kn); err != nil {
				b.Fatal(err)
			}
			st := row(kn)
			st.WideGates = GemmWideGates()
			// The LSTM hidden GEMM shape of the default model: 4H rows
			// of H columns over B dense lanes.
			H := DefaultModelConfig(features, window).Hidden
			rows, cols := 4*H, H
			s := stats.NewStream(3)
			m := randMatrix(rows, cols, s)
			xs := randVec(B*cols, s)
			out := make([]float64, B*rows)
			pool := NewPool(1)
			defer pool.Close()
			flops := 2 * float64(rows) * float64(cols) * float64(B)
			// bytes actually streamed per call: weights + inputs + outputs
			b.SetBytes(int64(8 * (rows*cols + B*cols + B*rows)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.MulLanes(0, rows, xs, B, out, rows, pool)
			}
			gflops := flops * float64(b.N) / b.Elapsed().Seconds() / 1e9
			b.ReportMetric(gflops, "GFLOP/s")
			st.GemmGFLOPs = gflops
		})

		b.Run("inference/"+kn, func(b *testing.B) {
			if err := SetGemmKernel(kn); err != nil {
				b.Fatal(err)
			}
			st := row(kn)
			cfg := DefaultModelConfig(features, window)
			model, err := NewModel(cfg)
			if err != nil {
				b.Fatal(err)
			}
			bat := NewBatchedStatefulModel(model, B, nil)
			rng := stats.NewStream(5)
			lanes := make([]int, B)
			xs := make([][]float64, B)
			for i := range lanes {
				lanes[i] = i
				xs[i] = randVec(features, rng)
			}
			preds := make([]Prediction, B)
			b.SetBytes(int64(8 * model.FLOPsPerStep() / 2 * B)) // weight floats touched per fused step
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bat.StepLanes(lanes, xs, nil, preds)
			}
			ns := float64(b.Elapsed().Nanoseconds()) / float64(b.N*B)
			b.ReportMetric(ns, "ns/step")
			b.ReportMetric(model.FLOPsPerStep()*float64(b.N*B)/b.Elapsed().Seconds()/1e9, "GFLOP/s")
			st.InferNsPerStp = ns
		})

		b.Run("train/"+kn, func(b *testing.B) {
			if err := SetGemmKernel(kn); err != nil {
				b.Fatal(err)
			}
			st := row(kn)
			rng := stats.NewStream(7)
			samples := make([]Sample, nSamples)
			for i := range samples {
				w := make([][]float64, window)
				for t := range w {
					w[t] = randVec(features, rng)
				}
				samples[i] = Sample{Window: w, Latency: rng.Float64(), Dropped: rng.Float64() < 0.1, ECN: rng.Float64() < 0.2}
			}
			cfg := DefaultModelConfig(features, window)
			cfg.Epochs = 1
			cfg.BatchSize = B
			model, err := NewModel(cfg)
			if err != nil {
				b.Fatal(err)
			}
			// forward + ~2x backward over the whole window per sample
			b.SetBytes(int64(3 * model.FLOPsPerStep() * window))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				model.Train(samples)
			}
			sps := float64(nSamples*b.N) / b.Elapsed().Seconds()
			b.ReportMetric(sps, "samples/sec")
			st.TrainSamplesS = sps
		})
	}

	if path := os.Getenv("BENCH_GEMM_JSON"); path != "" && len(order) > 0 {
		base := report["sse2"]
		rows := make([]gemmKernelStats, 0, len(order))
		for _, kn := range order {
			st := *report[kn]
			if base != nil {
				if base.GemmGFLOPs > 0 {
					st.GemmSpeedup = st.GemmGFLOPs / base.GemmGFLOPs
				}
				if st.InferNsPerStp > 0 {
					st.InferSpeedup = base.InferNsPerStp / st.InferNsPerStp
				}
				if base.TrainSamplesS > 0 {
					st.TrainSpeedup = st.TrainSamplesS / base.TrainSamplesS
				}
			}
			rows = append(rows, st)
		}
		data, err := json.MarshalIndent(rows, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			b.Fatal(err)
		}
		b.Logf("wrote %s", path)
		for _, st := range rows {
			fmt.Fprintf(os.Stderr, "# gemm kernel %-7s  %6.2f GFLOP/s (%.2fx)  inference %7.0f ns/step (%.2fx)  train %8.0f samples/sec (%.2fx)\n",
				st.Kernel, st.GemmGFLOPs, st.GemmSpeedup, st.InferNsPerStp, st.InferSpeedup, st.TrainSamplesS, st.TrainSpeedup)
		}
	}
}
