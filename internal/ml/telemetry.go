package ml

import (
	"mimicnet/internal/obs"
)

// Runtime telemetry for the batched engine (obs package; DESIGN.md
// decision 10). Everything on the GEMM hot path is a single atomic add
// per *kernel dispatch* (not per element, row, or task), the batch-size
// histogram observes once per fused step, and the pool queue depth is a
// scrape-time callback with zero steady-state cost.
var (
	obsPoolSubmits = obs.Default().Counter("mimicnet_ml_pool_submits_total",
		"Tasks submitted to GEMM worker pools (excludes the caller-executed task 0).")
	obsPoolDispatches = obs.Default().Counter("mimicnet_ml_pool_dispatches_total",
		"Parallel kernel dispatches through GEMM worker pools (Pool.For calls that fanned out).")
	obsBatchSize = obs.Default().Histogram("mimicnet_ml_batch_size",
		"Lanes per fused StepLanes inference step.",
		[]float64{1, 2, 4, 8, 16, 32, 64, 128, 256})
	obsTrainEpochs = obs.Default().Counter("mimicnet_ml_train_epochs_total",
		"Training epochs completed across all fits.")
	obsTrainBatches = obs.Default().Counter("mimicnet_ml_train_batches_total",
		"Optimizer steps (minibatches) applied across all fits.")
	obsTrainSamples = obs.Default().Counter("mimicnet_ml_train_samples_total",
		"Training samples consumed across all fits (per epoch).")
)

// registerPoolGauges exposes the shared pool's live occupancy. Called
// once from SharedPool; scrape-time only.
func registerPoolGauges(p *Pool) {
	obs.Default().GaugeFunc("mimicnet_ml_pool_queue_depth",
		"Tasks queued in the shared GEMM pool awaiting a worker.",
		func() float64 { return float64(len(p.tasks)) })
	obs.Default().GaugeFunc("mimicnet_ml_pool_workers",
		"Worker goroutines in the shared GEMM pool.",
		func() float64 { return float64(p.Workers()) })
}
