//go:build amd64 && !purego

package ml

// Runtime CPU feature probe for GEMM kernel dispatch. The probe runs
// exactly once, during package variable initialization — the hot path
// never branches on CPUID results; it loads the kernel descriptor that
// SetGemmKernel already selected (see gemm_dispatch.go).

// cpuid executes CPUID with the given leaf/subleaf (see cpu_amd64.s).
func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads XCR0, the OS-enabled extended-state mask.
func xgetbv() (eax, edx uint32)

// cpuHasAVX2 reports AVX2 usable on this CPU *and* enabled by the OS
// (XMM+YMM state saved on context switch). cpuHasFMA additionally
// requires FMA3 — the wide gate kernels clone math.Exp's FMA variant,
// which the runtime only takes on AVX+FMA hardware.
var cpuHasAVX2, cpuHasFMA = probeCPU()

func probeCPU() (avx2, fma bool) {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false, false
	}
	_, _, ecx1, _ := cpuid(1, 0)
	const (
		fmaBit     = 1 << 12
		osxsaveBit = 1 << 27
		avxBit     = 1 << 28
	)
	if ecx1&osxsaveBit == 0 || ecx1&avxBit == 0 {
		return false, false
	}
	// XCR0 bits 1|2: the OS saves XMM and YMM state across context
	// switches. Without them AVX registers are not usable.
	xcr0, _ := xgetbv()
	if xcr0&0x6 != 0x6 {
		return false, false
	}
	_, ebx7, _, _ := cpuid(7, 0)
	avx2 = ebx7&(1<<5) != 0
	fma = avx2 && ecx1&fmaBit != 0
	return avx2, fma
}
