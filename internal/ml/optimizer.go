package ml

import (
	"fmt"
	"math"
)

// Optimizer applies accumulated gradients to parameters.
type Optimizer interface {
	Step(params []*Matrix)
}

// SGD is plain stochastic gradient descent with optional momentum.
type SGD struct {
	LR       float64
	Momentum float64
	vel      map[*Matrix][]float64
}

// NewSGD returns an SGD optimizer.
func NewSGD(lr, momentum float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, vel: make(map[*Matrix][]float64)}
}

// Step applies one update and zeroes gradients.
func (o *SGD) Step(params []*Matrix) {
	for _, p := range params {
		v := o.vel[p]
		if v == nil {
			v = make([]float64, len(p.Data))
			o.vel[p] = v
		}
		for i := range p.Data {
			v[i] = o.Momentum*v[i] - o.LR*p.Grad[i]
			p.Data[i] += v[i]
			p.Grad[i] = 0
		}
	}
}

// Adam implements the Adam optimizer (Kingma & Ba), the de facto default
// for LSTM training.
type Adam struct {
	LR           float64
	Beta1, Beta2 float64
	Eps          float64
	t            int
	m, v         map[*Matrix][]float64
}

// NewAdam returns Adam with standard hyper-parameters.
func NewAdam(lr float64) *Adam {
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: make(map[*Matrix][]float64),
		v: make(map[*Matrix][]float64),
	}
}

// AdamState is the serializable optimizer trajectory: the step counter
// plus first/second moment estimates in parameter order. Adam's update
// depends on all three, so resuming training without them would diverge
// from the uninterrupted run at the first post-resume step.
type AdamState struct {
	T int         `json:"t"`
	M [][]float64 `json:"m"` // indexed like the params slice
	V [][]float64 `json:"v"`
}

// State deep-copies the optimizer's moments for the given parameters
// (in order). Parameters the optimizer has not touched yet snapshot as
// zero moments — exactly what lazy allocation would produce.
func (o *Adam) State(params []*Matrix) AdamState {
	st := AdamState{T: o.t, M: make([][]float64, len(params)), V: make([][]float64, len(params))}
	for i, p := range params {
		st.M[i] = append([]float64(nil), o.m[p]...)
		st.V[i] = append([]float64(nil), o.v[p]...)
		if st.M[i] == nil {
			st.M[i] = make([]float64, len(p.Data))
			st.V[i] = make([]float64, len(p.Data))
		}
	}
	return st
}

// SetState restores a snapshot taken by State over the same parameter
// list. The slices are copied in, so the checkpoint stays immutable.
func (o *Adam) SetState(params []*Matrix, st AdamState) error {
	if err := st.validate(params); err != nil {
		return err
	}
	o.t = st.T
	for i, p := range params {
		o.m[p] = append([]float64(nil), st.M[i]...)
		o.v[p] = append([]float64(nil), st.V[i]...)
	}
	return nil
}

func (st AdamState) validate(params []*Matrix) error {
	if len(st.M) != len(params) || len(st.V) != len(params) {
		return fmt.Errorf("ml: adam state covers %d/%d tensors, model has %d",
			len(st.M), len(st.V), len(params))
	}
	for i, p := range params {
		if len(st.M[i]) != len(p.Data) || len(st.V[i]) != len(p.Data) {
			return fmt.Errorf("ml: adam state tensor %d sized %d/%d, model wants %d",
				i, len(st.M[i]), len(st.V[i]), len(p.Data))
		}
	}
	if st.T < 0 {
		return fmt.Errorf("ml: adam state has negative step counter %d", st.T)
	}
	return nil
}

// Step applies one update and zeroes gradients.
func (o *Adam) Step(params []*Matrix) {
	o.t++
	bc1 := 1 - math.Pow(o.Beta1, float64(o.t))
	bc2 := 1 - math.Pow(o.Beta2, float64(o.t))
	for _, p := range params {
		m := o.m[p]
		v := o.v[p]
		if m == nil {
			m = make([]float64, len(p.Data))
			v = make([]float64, len(p.Data))
			o.m[p] = m
			o.v[p] = v
		}
		for i := range p.Data {
			g := p.Grad[i]
			m[i] = o.Beta1*m[i] + (1-o.Beta1)*g
			v[i] = o.Beta2*v[i] + (1-o.Beta2)*g*g
			mh := m[i] / bc1
			vh := v[i] / bc2
			p.Data[i] -= o.LR * mh / (math.Sqrt(vh) + o.Eps)
			p.Grad[i] = 0
		}
	}
}
