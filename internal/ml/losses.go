package ml

import "math"

// This file implements MimicNet's DCN-friendly loss functions (paper
// §5.4): weighted binary cross-entropy for rare events like drops, and
// the Huber loss for heavy-tailed latency distributions, plus the plain
// MAE/MSE/BCE used as ablation baselines (Figures 5 and 6).

// clampProb keeps probabilities away from 0/1 so logs stay finite.
func clampProb(p float64) float64 {
	const eps = 1e-7
	if p < eps {
		return eps
	}
	if p > 1-eps {
		return 1 - eps
	}
	return p
}

// BCE returns the binary cross-entropy loss and its derivative with
// respect to the predicted probability. y is the 0/1 target.
func BCE(pred, y float64) (loss, dPred float64) {
	p := clampProb(pred)
	loss = -y*math.Log(p) - (1-y)*math.Log(1-p)
	dPred = (p - y) / (p * (1 - p))
	return loss, dPred
}

// WBCE is MimicNet's weighted BCE: w scales the positive (drop) class,
// (1-w) the negative. w in 0.6–0.8 is the paper's recommended range.
func WBCE(pred, y, w float64) (loss, dPred float64) {
	p := clampProb(pred)
	loss = -w*y*math.Log(p) - (1-w)*(1-y)*math.Log(1-p)
	dPred = -w*y/p + (1-w)*(1-y)/(1-p)
	return loss, dPred
}

// MAE returns the absolute error and its derivative.
func MAE(pred, y float64) (loss, dPred float64) {
	d := pred - y
	if d >= 0 {
		return d, 1
	}
	return -d, -1
}

// MSE returns the squared error and its derivative.
func MSE(pred, y float64) (loss, dPred float64) {
	d := pred - y
	return d * d, 2 * d
}

// Huber returns the Huber loss with threshold delta and its derivative:
// quadratic within delta, linear outside (paper Eq. in §5.4).
func Huber(pred, y, delta float64) (loss, dPred float64) {
	d := pred - y
	ad := math.Abs(d)
	if ad <= delta {
		return 0.5 * d * d, d
	}
	if d > 0 {
		return delta*ad - 0.5*delta*delta, delta
	}
	return delta*ad - 0.5*delta*delta, -delta
}

// RegressionLoss selects among the latency loss functions.
type RegressionLoss int

// Supported regression losses.
const (
	LossHuber RegressionLoss = iota
	LossMAE
	LossMSE
)

// String names the loss.
func (l RegressionLoss) String() string {
	switch l {
	case LossHuber:
		return "huber"
	case LossMAE:
		return "mae"
	case LossMSE:
		return "mse"
	}
	return "unknown"
}

// Eval applies the selected loss.
func (l RegressionLoss) Eval(pred, y, delta float64) (loss, dPred float64) {
	switch l {
	case LossMAE:
		return MAE(pred, y)
	case LossMSE:
		return MSE(pred, y)
	default:
		return Huber(pred, y, delta)
	}
}

// Discretizer implements the paper's linear quantization of continuous
// values (latency and time features): f(y) = floor((y-lo)/(hi-lo) * D).
// Training targets use the bin midpoint normalized to [0,1]; Recover maps
// predictions back to the value domain.
type Discretizer struct {
	Lo, Hi float64
	D      int // number of bins; <=1 disables quantization
}

// Quantize returns the bin index of v, clamped to [0, D-1].
func (d Discretizer) Quantize(v float64) int {
	if d.D <= 1 || d.Hi <= d.Lo {
		return 0
	}
	idx := int((v - d.Lo) / (d.Hi - d.Lo) * float64(d.D))
	if idx < 0 {
		idx = 0
	}
	if idx >= d.D {
		idx = d.D - 1
	}
	return idx
}

// Normalize maps v to [0,1], optionally snapping to bin midpoints.
func (d Discretizer) Normalize(v float64) float64 {
	if d.Hi <= d.Lo {
		return 0
	}
	if d.D > 1 {
		bin := d.Quantize(v)
		return (float64(bin) + 0.5) / float64(d.D)
	}
	x := (v - d.Lo) / (d.Hi - d.Lo)
	if x < 0 {
		x = 0
	}
	if x > 1 {
		x = 1
	}
	return x
}

// Recover maps a normalized prediction back to the value domain.
func (d Discretizer) Recover(norm float64) float64 {
	if norm < 0 {
		norm = 0
	}
	if norm > 1 {
		norm = 1
	}
	if d.D > 1 {
		bin := int(norm * float64(d.D))
		if bin >= d.D {
			bin = d.D - 1
		}
		return d.Lo + (float64(bin)+0.5)/float64(d.D)*(d.Hi-d.Lo)
	}
	return d.Lo + norm*(d.Hi-d.Lo)
}
