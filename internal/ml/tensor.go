// Package ml is a from-scratch neural network library sufficient for
// MimicNet's internal models: dense matrices, LSTM layers trained with
// backpropagation through time, linear heads, the paper's loss functions
// (MAE, MSE, Huber, BCE, weighted BCE), linear discretization, and Adam /
// SGD optimizers. It replaces PyTorch/ATen in the original system; model
// inference is a plain Go function call embedded in the simulator's event
// loop (paper §8).
package ml

import (
	"encoding/json"
	"fmt"
	"math"

	"mimicnet/internal/stats"
)

// Matrix is a dense row-major matrix with a gradient buffer. It doubles
// as a trainable parameter: optimizers walk (Data, Grad) pairs.
type Matrix struct {
	Rows, Cols int
	Data       []float64
	Grad       []float64
}

// NewMatrix allocates a zero matrix with gradient storage.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{
		Rows: rows, Cols: cols,
		Data: make([]float64, rows*cols),
		Grad: make([]float64, rows*cols),
	}
}

// At returns element (r, c).
func (m *Matrix) At(r, c int) float64 { return m.Data[r*m.Cols+c] }

// Set assigns element (r, c).
func (m *Matrix) Set(r, c int, v float64) { m.Data[r*m.Cols+c] = v }

// ZeroGrad clears the gradient buffer.
func (m *Matrix) ZeroGrad() {
	for i := range m.Grad {
		m.Grad[i] = 0
	}
}

// InitXavier fills the matrix with Xavier/Glorot-uniform values, the
// standard initialization for tanh/sigmoid recurrent nets.
func (m *Matrix) InitXavier(s *stats.Stream) {
	limit := math.Sqrt(6.0 / float64(m.Rows+m.Cols))
	for i := range m.Data {
		m.Data[i] = (2*s.Float64() - 1) * limit
	}
}

// MulVec computes out = M * x (out len Rows, x len Cols). out may be nil.
func (m *Matrix) MulVec(x, out []float64) []float64 {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("ml: MulVec dim mismatch: %d cols vs %d vec", m.Cols, len(x)))
	}
	if out == nil {
		out = make([]float64, m.Rows)
	}
	for r := 0; r < m.Rows; r++ {
		out[r] = Dot(m.Data[r*m.Cols:(r+1)*m.Cols], x)
	}
	return out
}

// Dot returns Σ a[i]*b[i], accumulated strictly in index order. Every
// matrix product in this package — per-vector (MulVec) and batched
// (MulLanes) — reduces to this kernel, which is what makes batched and
// per-packet inference agree bit-for-bit.
func Dot(a, b []float64) float64 {
	return DotAcc(0, a, b)
}

// DotAcc returns acc + Σ a[i]*b[i], accumulated in index order starting
// from acc. It mirrors the hand-written `sum := init; sum += v*b[i]`
// loops in the recurrent cells, so refactoring them onto this kernel
// changes no results.
func DotAcc(acc float64, a, b []float64) float64 {
	for i, v := range a {
		acc += v * b[i]
	}
	return acc
}

// AddOuterGrad accumulates the outer product dy ⊗ x into the gradient:
// Grad[r][c] += dy[r] * x[c]. This is the weight gradient of y = Mx.
func (m *Matrix) AddOuterGrad(dy, x []float64) {
	for r := 0; r < m.Rows; r++ {
		g := m.Grad[r*m.Cols : (r+1)*m.Cols]
		d := dy[r]
		if d == 0 {
			continue
		}
		for c := range g {
			g[c] += d * x[c]
		}
	}
}

// MulVecT computes out += Mᵀ * dy (backprop of y = Mx into x).
func (m *Matrix) MulVecT(dy, out []float64) {
	for r := 0; r < m.Rows; r++ {
		row := m.Data[r*m.Cols : (r+1)*m.Cols]
		d := dy[r]
		if d == 0 {
			continue
		}
		for c, v := range row {
			out[c] += v * d
		}
	}
}

// matrixJSON is the serialization form of a Matrix.
type matrixJSON struct {
	Rows int       `json:"rows"`
	Cols int       `json:"cols"`
	Data []float64 `json:"data"`
}

// MarshalJSON serializes the matrix (weights only, not gradients).
func (m *Matrix) MarshalJSON() ([]byte, error) {
	return json.Marshal(matrixJSON{m.Rows, m.Cols, m.Data})
}

// UnmarshalJSON restores a serialized matrix.
func (m *Matrix) UnmarshalJSON(b []byte) error {
	var mj matrixJSON
	if err := json.Unmarshal(b, &mj); err != nil {
		return err
	}
	if len(mj.Data) != mj.Rows*mj.Cols {
		return fmt.Errorf("ml: matrix data length %d != %dx%d", len(mj.Data), mj.Rows, mj.Cols)
	}
	m.Rows, m.Cols, m.Data = mj.Rows, mj.Cols, mj.Data
	m.Grad = make([]float64, len(mj.Data))
	return nil
}

// Vector helpers.

// Zeros returns a zero vector of length n.
func Zeros(n int) []float64 { return make([]float64, n) }

// AddTo accumulates src into dst.
func AddTo(dst, src []float64) {
	for i, v := range src {
		dst[i] += v
	}
}

// Sigmoid is the logistic function.
func Sigmoid(x float64) float64 {
	if x >= 0 {
		z := math.Exp(-x)
		return 1 / (1 + z)
	}
	z := math.Exp(x)
	return z / (1 + z)
}

// DSigmoid returns σ'(x) given y = σ(x).
func DSigmoid(y float64) float64 { return y * (1 - y) }

// DTanh returns tanh'(x) given y = tanh(x).
func DTanh(y float64) float64 { return 1 - y*y }

// ClipGrads scales the combined gradient of params down to maxNorm if it
// exceeds it, the standard stabilizer for recurrent nets.
func ClipGrads(params []*Matrix, maxNorm float64) float64 {
	var sq float64
	for _, p := range params {
		for _, g := range p.Grad {
			sq += g * g
		}
	}
	norm := math.Sqrt(sq)
	if norm > maxNorm && norm > 0 {
		scale := maxNorm / norm
		for _, p := range params {
			for i := range p.Grad {
				p.Grad[i] *= scale
			}
		}
	}
	return norm
}
