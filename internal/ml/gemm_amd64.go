//go:build amd64

package ml

// haveGemm8 gates the SSE2 lane-batched GEMM microkernel. It vectorizes
// over LANES, not over k: each of the 8 lanes keeps its own accumulator
// that sums w[k]*x[k] in ascending-k order with separate multiply and
// add instructions (MULPD then ADDPD, never FMA), so every output
// element is bitwise identical to the scalar Dot kernel.
const haveGemm8 = true

// gemm8 computes, for 8 lanes and `rows` consecutive weight rows,
//
//	out[lane*outStrideB/8 + r] = Σ_k w[r*k8 + k] * xt[k*strideB/8 + lane]
//
// w points at the first weight row (rows × k, row-major, contiguous).
// xt points at a k-major tile: element (k, lane) at byte offset
// k*strideB + lane*8; the tile must hold 8 lanes (strideB >= 64).
// out points at (lane 0, row 0); lanes advance by outStrideB bytes and
// rows by 8 bytes. k must be >= 1 and rows >= 1.
//
//go:noescape
func gemm8(w *float64, rows, k int, xt *float64, strideB int, out *float64, outStrideB int)
