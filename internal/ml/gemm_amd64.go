//go:build amd64 && !purego

package ml

// haveGemm8 gates the assembly GEMM microkernels (this file's
// declarations). They vectorize over LANES, not over k: each lane keeps
// its own accumulator that sums w[k]*x[k] in ascending-k order with
// separate multiply and add instructions (MULPD/VMULPD then
// ADDPD/VADDPD, never FMA), so every output element is bitwise identical
// to the scalar Dot kernel. gemm8 needs only SSE2 (baseline amd64);
// gemm16 and axpy4 need AVX2 and must only be called when the probe in
// cpu_amd64.go reports cpuHasAVX2 (dispatch enforces this).
const haveGemm8 = true

// gemm8 computes, for 8 lanes and `rows` consecutive weight rows,
//
//	out[lane*outStrideB/8 + r] = Σ_k w[r*k8 + k] * xt[k*strideB/8 + lane]
//
// w points at the first weight row (rows × k, row-major, contiguous).
// xt points at a k-major tile: element (k, lane) at byte offset
// k*strideB + lane*8; the tile must hold 8 lanes (strideB >= 64).
// out points at (lane 0, row 0); lanes advance by outStrideB bytes and
// rows by 8 bytes. k must be >= 1 and rows >= 1.
//
//go:noescape
func gemm8(w *float64, rows, k int, xt *float64, strideB int, out *float64, outStrideB int)

// gemm16 is the AVX2 member of the family: the same contract as gemm8
// but over a 16-lane k-major tile (element (k, lane) at byte offset
// k*strideB + lane*8, strideB >= 128) with two-row blocking — 8 YMM
// accumulators stay live across the k loop. Still VMULPD then VADDPD
// per term, one accumulator component per lane: bitwise equal to Dot.
//
//go:noescape
func gemm16(w *float64, rows, k int, xt *float64, strideB int, out *float64, outStrideB int)

// axpy4 computes y[i] += a * x[i] for i in [0, n) with AVX2 (4 float64
// per YMM). Purely elementwise — no reduction — so each element is the
// exact scalar expression y[i] + a*x[i]: bitwise identical to the Go
// loop. y and x must not partially overlap.
//
//go:noescape
func axpy4(y, x *float64, n int, a float64)

// sigmoid4 writes σ(src[i]) into dst[i] for 4 lanes, cloning the
// repo's scalar Sigmoid over math.Exp's AVX+FMA variant instruction for
// instruction (gates_amd64.s). The returned mask has bit i set when
// lane i stayed on exp's fast path (|x| within the normal-scale range);
// lanes with unset bits hold the ORIGINAL input value in dst, and the
// caller must recompute them in place with the scalar Sigmoid. Requires
// AVX2+FMA (dispatch gates on wideGates). dst and src may be the same
// slice but must not partially overlap.
//
//go:noescape
func sigmoid4(dst, src *float64) (ok uint8)

// tanh4 writes math.Tanh(src[i]) into dst[i] for 4 lanes, cloning the
// Cephes tanh (math/tanh.go) with all three branches blended by mask —
// total over all inputs, no fallback needed. Requires AVX2+FMA.
//
//go:noescape
func tanh4(dst, src *float64)
