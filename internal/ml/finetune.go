package ml

import "mimicnet/internal/stats"

// FineTune continues training an already-fitted model on new samples —
// the incremental model update MimicNet's future work calls for (paper
// §11, Appendix H: "techniques that can minimize the overhead of model
// retraining"). A fresh Adam state is used with a (typically lower)
// learning rate; existing weights are the starting point, so far fewer
// epochs are needed than training from scratch.
func (m *Model) FineTune(samples []Sample, epochs int, lr float64) TrainResult {
	if epochs < 1 {
		epochs = 1
	}
	if lr <= 0 {
		lr = m.Cfg.LR / 3
	}
	opt := NewAdam(lr)
	rng := stats.NewStream(m.Cfg.Seed + 7)
	params := m.Params()
	res := TrainResult{Samples: len(samples)}
	idx := make([]int, len(samples))
	for i := range idx {
		idx[i] = i
	}
	for epoch := 0; epoch < epochs; epoch++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		var sum float64
		for _, i := range idx {
			sum += m.trainStep(samples[i])
			if m.Cfg.ClipNorm > 0 {
				ClipGrads(params, m.Cfg.ClipNorm)
			}
			opt.Step(params)
		}
		if len(samples) > 0 {
			res.EpochLoss = append(res.EpochLoss, sum/float64(len(samples)))
		}
	}
	return res
}
