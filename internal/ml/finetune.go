package ml

import (
	"context"
	"errors"

	"mimicnet/internal/stats"
)

// errFineTuneCheckpoint rejects checkpoint options on the fine-tune path.
var errFineTuneCheckpoint = errors.New("ml: checkpointing is only supported for TrainContext, not fine-tuning")

// FineTune continues training an already-fitted model on new samples —
// the incremental model update MimicNet's future work calls for (paper
// §11, Appendix H: "techniques that can minimize the overhead of model
// retraining"). A fresh Adam state is used with a (typically lower)
// learning rate; existing weights are the starting point, so far fewer
// epochs are needed than training from scratch.
func (m *Model) FineTune(samples []Sample, epochs int, lr float64) TrainResult {
	res, _ := m.FineTuneContext(context.Background(), samples, epochs, lr, TrainOpts{})
	return res
}

// FineTuneContext is FineTune with cancellation and progress reporting,
// sharing the batch-size-selected trainer with TrainContext.
func (m *Model) FineTuneContext(ctx context.Context, samples []Sample, epochs int, lr float64, opts TrainOpts) (TrainResult, error) {
	return m.FineTuneSourceContext(ctx, samplesOf(samples), epochs, lr, opts)
}

// FineTuneSource is FineTune over a SampleSource (columnar views
// fine-tune without materializing []Sample).
func (m *Model) FineTuneSource(src SampleSource, epochs int, lr float64) TrainResult {
	res, _ := m.FineTuneSourceContext(context.Background(), src, epochs, lr, TrainOpts{})
	return res
}

// FineTuneSourceContext is FineTuneContext over a SampleSource.
func (m *Model) FineTuneSourceContext(ctx context.Context, src SampleSource, epochs int, lr float64, opts TrainOpts) (TrainResult, error) {
	if opts.ResumeFrom != nil || opts.SaveCheckpoint != nil {
		// Checkpoint cursors are scoped to TrainContext: they embed the
		// model's own config (epochs, LR, seed), which fine-tuning
		// overrides, so a resume here would silently diverge.
		return TrainResult{Samples: src.Len()}, errFineTuneCheckpoint
	}
	if epochs < 1 {
		epochs = 1
	}
	if lr <= 0 {
		lr = m.Cfg.LR / 3
	}
	rng := stats.NewStream(m.Cfg.Seed + 7)
	return m.fit(ctx, lr, rng, src, epochs, opts)
}
