package ml

import (
	"fmt"
	"sync"
)

// This file implements the batched Mimic inference engine's ML half:
// a cache-blocked, pool-parallel GEMM (MulLanes), fused batched LSTM
// steps (the GRU's live in gru.go), and BatchedStatefulModel — a bank of
// B independent hidden states advanced through one fused step per
// "round". The simulator half (request collection and flushing) lives in
// internal/core's InferenceScheduler.
//
// The per-packet path computes one matrix–vector product per packet per
// direction per Mimic — the least hardware-friendly shape possible. The
// batched path turns the same work into matrix–matrix products over all
// concurrently pending streams, amortizing weight-matrix traffic across
// lanes and eliminating the per-step allocations of the per-vector path,
// while keeping per-element arithmetic order identical so predictions
// match the per-packet path bit-for-bit.

// GEMM tile sizes: a weight-row block stays resident while it is reused
// across a block of lanes. Tiles are the unit of pool parallelism.
const (
	gemmRowBlock  = 32
	gemmLaneBlock = 16
	// gemmSerialFLOPs is the work floor (multiply-adds) below which
	// tiling/dispatch overhead exceeds the win and MulLanes runs serial.
	gemmSerialFLOPs = 1 << 13
)

// MulLanes is the batched counterpart of MulVec: for every lane a in
// [0, n) and every row r in [r0, r1) it computes
//
//	out[a*outStride + r] = Dot(M.row(r), xs[a*M.Cols : (a+1)*M.Cols])
//
// xs is n×Cols row-major; out rows are outStride wide and indexed by the
// absolute row number r (so outStride must be >= r1). The computation is
// cache-blocked over (rows × lanes) tiles and distributed across pool;
// each output element is produced by exactly one tile with a fixed
// k-order accumulation (Dot), so results are bitwise identical to n
// MulVec calls regardless of worker count.
func (m *Matrix) MulLanes(r0, r1 int, xs []float64, n int, out []float64, outStride int, pool *Pool) {
	if r0 < 0 || r1 > m.Rows || r0 > r1 {
		panic(fmt.Sprintf("ml: MulLanes rows [%d,%d) outside matrix with %d rows", r0, r1, m.Rows))
	}
	if outStride < r1 {
		panic(fmt.Sprintf("ml: MulLanes outStride %d < r1 %d", outStride, r1))
	}
	if n < 0 || len(xs) < n*m.Cols {
		panic(fmt.Sprintf("ml: MulLanes xs len %d < %d lanes × %d cols", len(xs), n, m.Cols))
	}
	if len(out) < n*outStride {
		panic(fmt.Sprintf("ml: MulLanes out len %d < %d lanes × stride %d", len(out), n, outStride))
	}
	rows, K := r1-r0, m.Cols
	if rows == 0 || n == 0 {
		return
	}
	// First-layer inputs are mostly one-hot (rack/server/agg/core blocks),
	// so over half the multiply-adds are against exact zeros. Skipping a
	// w·0 term never changes an IEEE sum whose accumulator starts at +0
	// (s + ±0 == s, and +0 + -0 == +0), so the sparse path is bitwise
	// identical to the dense one. Hidden-state inputs are dense and fail
	// the density test, falling through to the dense kernel.
	if rows >= 4 && n*K >= 64 {
		nnz := 0
		for _, v := range xs[:n*K] {
			if v != 0 {
				nnz++
			}
		}
		if 2*nnz <= n*K {
			m.mulLanesSparse(r0, r1, xs, n, out, outStride, pool)
			return
		}
	}
	// The kernel routes full lane blocks through the selected microkernel
	// family (gemm_dispatch.go): 16-lane k-major tiles through AVX2
	// gemm16, then 8-lane remainders through SSE2 gemm8. Packed lanes
	// advance through k with (V)MULPD-then-(V)ADDPD — one independent
	// accumulator chain per lane, still in strict k order, so every
	// output element is bitwise equal to a lone Dot. Remainder lanes (or
	// the scalar family) fall through to a pure-Go loop with 4
	// independent accumulators: a single Dot is one serial dependency
	// chain and is latency-bound; multiple chains fill the FPU pipeline
	// and reuse the weight row from registers/L1. This is where the
	// batched engine's per-step speedup comes from on a single core.
	tileLanes := gemmKernel().tileLanes
	kernel := func(rlo, rhi, alo, ahi int) {
		a0 := alo
		if tileLanes > 0 && K > 0 && a0+8 <= ahi {
			tp := tileScratch.Get().(*[]float64)
			tile := growFloats(*tp, tileLanes*K)
			if tileLanes >= 16 {
				for ; a0+16 <= ahi; a0 += 16 {
					for j := 0; j < 16; j++ {
						lx := xs[(a0+j)*K : (a0+j+1)*K]
						for k, v := range lx {
							tile[k*16+j] = v
						}
					}
					gemm16(&m.Data[rlo*K], rhi-rlo, K, &tile[0], 128, &out[a0*outStride+rlo], outStride*8)
				}
			}
			for ; a0+8 <= ahi; a0 += 8 {
				for j := 0; j < 8; j++ {
					lx := xs[(a0+j)*K : (a0+j+1)*K]
					for k, v := range lx {
						tile[k*8+j] = v
					}
				}
				gemm8(&m.Data[rlo*K], rhi-rlo, K, &tile[0], 64, &out[a0*outStride+rlo], outStride*8)
			}
			*tp = tile
			tileScratch.Put(tp)
		}
		for r := rlo; r < rhi; r++ {
			wrow := m.Data[r*K : (r+1)*K]
			a := a0
			for ; a+4 <= ahi; a += 4 {
				// Re-slicing to len(wrow) lets the compiler drop the
				// per-element bounds checks inside the hot loop.
				x0 := xs[a*K : (a+1)*K][:len(wrow)]
				x1 := xs[(a+1)*K : (a+2)*K][:len(wrow)]
				x2 := xs[(a+2)*K : (a+3)*K][:len(wrow)]
				x3 := xs[(a+3)*K : (a+4)*K][:len(wrow)]
				var s0, s1, s2, s3 float64
				for k, w := range wrow {
					s0 += w * x0[k]
					s1 += w * x1[k]
					s2 += w * x2[k]
					s3 += w * x3[k]
				}
				out[a*outStride+r] = s0
				out[(a+1)*outStride+r] = s1
				out[(a+2)*outStride+r] = s2
				out[(a+3)*outStride+r] = s3
			}
			for ; a < ahi; a++ {
				out[a*outStride+r] = Dot(wrow, xs[a*K:(a+1)*K])
			}
		}
	}
	if pool.Workers() <= 1 || rows*n*K < gemmSerialFLOPs {
		kernel(r0, r1, 0, n)
		return
	}
	rTiles := (rows + gemmRowBlock - 1) / gemmRowBlock
	aTiles := (n + gemmLaneBlock - 1) / gemmLaneBlock
	pool.For(rTiles*aTiles, func(t int) {
		rlo := r0 + (t/aTiles)*gemmRowBlock
		rhi := rlo + gemmRowBlock
		if rhi > r1 {
			rhi = r1
		}
		alo := (t % aTiles) * gemmLaneBlock
		ahi := alo + gemmLaneBlock
		if ahi > n {
			ahi = n
		}
		kernel(rlo, rhi, alo, ahi)
	})
}

// tileScratch recycles the k-major lane tiles the gemm8/gemm16 paths
// pack; tiles are small (at most 16 × Cols) but the GEMM runs on every
// model step.
var tileScratch = sync.Pool{New: func() any { return new([]float64) }}

// MulLanesT is the batched counterpart of MulVecT (the backprop of
// y = Mx into x): for every lane a in [0, n) it overwrites
//
//	out[a*Cols + c] = Σ_{r in [r0,r1)} dys[a*dyStride + r] * M[r][c]
//
// dys rows are dyStride wide and indexed by absolute row number (the
// same layout MulLanes writes), so a trainer can feed gate gradients
// straight back through the weight matrices. Accumulation per output
// element is in strictly ascending r order and each lane is produced by
// exactly one tile, so results are bitwise independent of worker count.
func (m *Matrix) MulLanesT(r0, r1 int, dys []float64, dyStride, n int, out []float64, pool *Pool) {
	if r0 < 0 || r1 > m.Rows || r0 > r1 {
		panic(fmt.Sprintf("ml: MulLanesT rows [%d,%d) outside matrix with %d rows", r0, r1, m.Rows))
	}
	if dyStride < r1 {
		panic(fmt.Sprintf("ml: MulLanesT dyStride %d < r1 %d", dyStride, r1))
	}
	if n < 0 || len(dys) < n*dyStride {
		panic(fmt.Sprintf("ml: MulLanesT dys len %d < %d lanes × stride %d", len(dys), n, dyStride))
	}
	K := m.Cols
	if len(out) < n*K {
		panic(fmt.Sprintf("ml: MulLanesT out len %d < %d lanes × %d cols", len(out), n, K))
	}
	if n == 0 {
		return
	}
	// The d == 0 skip must stay ahead of the axpy kernel: skipping a row
	// is NOT the same as adding d*row when the row holds ±Inf or NaN
	// (0*Inf = NaN), and zero gate gradients are common (saturated
	// sigmoids), so the skip is both a correctness guard and a win.
	useAxpy := K >= 8 && gemmKernel().axpy
	kernel := func(alo, ahi int) {
		for a := alo; a < ahi; a++ {
			o := out[a*K : (a+1)*K]
			for c := range o {
				o[c] = 0
			}
			for r := r0; r < r1; r++ {
				d := dys[a*dyStride+r]
				if d == 0 {
					continue
				}
				row := m.Data[r*K : (r+1)*K][:len(o)]
				if useAxpy {
					// o[c] += d*row[c] elementwise — the exact scalar
					// expression per element, just 4 lanes per instruction.
					axpy4(&o[0], &row[0], K, d)
					continue
				}
				for c, v := range row {
					o[c] += v * d
				}
			}
		}
	}
	if pool.Workers() <= 1 || (r1-r0)*n*K < gemmSerialFLOPs {
		kernel(0, n)
		return
	}
	aTiles := (n + gemmLaneBlock - 1) / gemmLaneBlock
	pool.For(aTiles, func(t int) {
		alo := t * gemmLaneBlock
		ahi := alo + gemmLaneBlock
		if ahi > n {
			ahi = n
		}
		kernel(alo, ahi)
	})
}

// AddGradLanes is the batched counterpart of AddOuterGrad (the weight
// gradient of y = Mx over a minibatch): for r in [r0,r1) it accumulates
//
//	Grad[r][c] += Σ_{a in [0,n)} dys[a*dyStride + r] * xs[a*Cols + c]
//
// The lane sum runs in strictly ascending a order for every element —
// the fixed reduction order that makes minibatch gradients bitwise
// reproducible run to run — and each gradient row is owned by exactly
// one tile, so results are also independent of worker count.
func (m *Matrix) AddGradLanes(r0, r1 int, dys []float64, dyStride, n int, xs []float64, pool *Pool) {
	if r0 < 0 || r1 > m.Rows || r0 > r1 {
		panic(fmt.Sprintf("ml: AddGradLanes rows [%d,%d) outside matrix with %d rows", r0, r1, m.Rows))
	}
	if dyStride < r1 {
		panic(fmt.Sprintf("ml: AddGradLanes dyStride %d < r1 %d", dyStride, r1))
	}
	if n < 0 || len(dys) < n*dyStride {
		panic(fmt.Sprintf("ml: AddGradLanes dys len %d < %d lanes × stride %d", len(dys), n, dyStride))
	}
	K := m.Cols
	if len(xs) < n*K {
		panic(fmt.Sprintf("ml: AddGradLanes xs len %d < %d lanes × %d cols", len(xs), n, K))
	}
	if n == 0 {
		return
	}
	// Same d == 0 guard as MulLanesT: it must precede the axpy call
	// (0*Inf = NaN) and skipped lanes keep the ascending-a reduction
	// order intact because a skipped term is an exact no-op.
	useAxpy := K >= 8 && gemmKernel().axpy
	kernel := func(rlo, rhi int) {
		for r := rlo; r < rhi; r++ {
			g := m.Grad[r*K : (r+1)*K]
			for a := 0; a < n; a++ {
				d := dys[a*dyStride+r]
				if d == 0 {
					continue
				}
				if useAxpy {
					axpy4(&g[0], &xs[a*K], K, d)
					continue
				}
				x := xs[a*K : (a+1)*K][:len(g)]
				for c, v := range x {
					g[c] += d * v
				}
			}
		}
	}
	rows := r1 - r0
	if pool.Workers() <= 1 || rows*n*K < gemmSerialFLOPs {
		kernel(r0, r1)
		return
	}
	rTiles := (rows + gemmRowBlock - 1) / gemmRowBlock
	pool.For(rTiles, func(t int) {
		rlo := r0 + t*gemmRowBlock
		rhi := rlo + gemmRowBlock
		if rhi > r1 {
			rhi = r1
		}
		kernel(rlo, rhi)
	})
}

// addBiasGradLanes accumulates Grad[r] += Σ_a dys[a*dyStride + r] for
// r in [r0,r1), in ascending-lane order per element (lanes outer for
// locality; the per-element order is still ascending a).
func addBiasGradLanes(b *Matrix, r0, r1 int, dys []float64, dyStride, n int) {
	for a := 0; a < n; a++ {
		row := dys[a*dyStride:]
		for r := r0; r < r1; r++ {
			b.Grad[r] += row[r]
		}
	}
}

// mulLanesSparse is MulLanes for lanes whose inputs are mostly zero: it
// packs each lane's nonzero (index, value) pairs once, then reuses the
// packed stream across four weight rows at a time — four independent
// accumulator chains sharing each loaded value. Accumulation per output
// element remains in ascending-k order over the nonzero terms, which is
// bitwise equal to the dense sum (skipped terms are exact zeros).
func (m *Matrix) mulLanesSparse(r0, r1 int, xs []float64, n int, out []float64, outStride int, pool *Pool) {
	K := m.Cols
	idx := make([]int32, 0, n*K/2)
	val := make([]float64, 0, n*K/2)
	off := make([]int, n+1)
	for a := 0; a < n; a++ {
		row := xs[a*K : (a+1)*K]
		for k, v := range row {
			if v != 0 {
				idx = append(idx, int32(k))
				val = append(val, v)
			}
		}
		off[a+1] = len(idx)
	}
	kernel := func(alo, ahi int) {
		for a := alo; a < ahi; a++ {
			ii := idx[off[a]:off[a+1]]
			vv := val[off[a]:off[a+1]][:len(ii)]
			r := r0
			for ; r+4 <= r1; r += 4 {
				w0 := m.Data[r*K : (r+1)*K]
				w1 := m.Data[(r+1)*K : (r+2)*K]
				w2 := m.Data[(r+2)*K : (r+3)*K]
				w3 := m.Data[(r+3)*K : (r+4)*K]
				var s0, s1, s2, s3 float64
				for j, id := range ii {
					v := vv[j]
					s0 += w0[id] * v
					s1 += w1[id] * v
					s2 += w2[id] * v
					s3 += w3[id] * v
				}
				base := a * outStride
				out[base+r] = s0
				out[base+r+1] = s1
				out[base+r+2] = s2
				out[base+r+3] = s3
			}
			for ; r < r1; r++ {
				wrow := m.Data[r*K : (r+1)*K]
				var s float64
				for j, id := range ii {
					s += wrow[id] * vv[j]
				}
				out[a*outStride+r] = s
			}
		}
	}
	if pool.Workers() <= 1 || n < 2*gemmLaneBlock {
		kernel(0, n)
		return
	}
	aTiles := (n + gemmLaneBlock - 1) / gemmLaneBlock
	pool.For(aTiles, func(t int) {
		alo := t * gemmLaneBlock
		ahi := alo + gemmLaneBlock
		if ahi > n {
			ahi = n
		}
		kernel(alo, ahi)
	})
}

// lstmBatchState is the recurrent state of `lanes` independent LSTM
// streams, stored densely (lanes × H), plus step scratch grown on demand.
type lstmBatchState struct {
	h, c   []float64
	hidden int
	// scratch for one fused step over up to cap(zx)/(4·hidden) lanes
	hg, cg, zx, zh []float64
}

// NewBatchState returns zeroed state for `lanes` LSTM lanes.
func (l *LSTM) NewBatchState(lanes int) BatchState {
	return &lstmBatchState{
		h: make([]float64, lanes*l.Hidden),
		c: make([]float64, lanes*l.Hidden),

		hidden: l.Hidden,
	}
}

// GrowBatchState appends one zeroed lane.
func (l *LSTM) GrowBatchState(st BatchState) int {
	s := st.(*lstmBatchState)
	lane := len(s.h) / l.Hidden
	s.h = append(s.h, make([]float64, l.Hidden)...)
	s.c = append(s.c, make([]float64, l.Hidden)...)
	return lane
}

// ResetBatchLane zeroes one lane's hidden and cell state.
func (l *LSTM) ResetBatchLane(st BatchState, lane int) {
	s := st.(*lstmBatchState)
	H := l.Hidden
	zeroRange(s.h[lane*H : (lane+1)*H])
	zeroRange(s.c[lane*H : (lane+1)*H])
}

func zeroRange(v []float64) {
	for i := range v {
		v[i] = 0
	}
}

// StepBatch advances the listed lanes through one fused LSTM step:
// two GEMMs over the gathered states followed by an elementwise gate
// pass parallelized over lanes. Per-element math mirrors LSTM.Step
// exactly (zx + (zh + b), same gate expressions), so outputs equal the
// per-packet path bit-for-bit.
func (l *LSTM) StepBatch(st BatchState, lanes []int, xs []float64, hs []float64, pool *Pool) {
	s := st.(*lstmBatchState)
	n := len(lanes)
	if n == 0 {
		return
	}
	H := l.Hidden
	s.hg = growFloats(s.hg, n*H)
	s.cg = growFloats(s.cg, n*H)
	s.zx = growFloats(s.zx, n*4*H)
	s.zh = growFloats(s.zh, n*4*H)
	for a, lane := range lanes {
		copy(s.hg[a*H:(a+1)*H], s.h[lane*H:(lane+1)*H])
		copy(s.cg[a*H:(a+1)*H], s.c[lane*H:(lane+1)*H])
	}
	l.Wx.MulLanes(0, 4*H, xs, n, s.zx, 4*H, pool)
	l.Wh.MulLanes(0, 4*H, s.hg, n, s.zh, 4*H, pool)
	bias := l.B.Data
	wide := gemmKernel().wideGates
	pool.For(n, func(a int) {
		zx := s.zx[a*4*H : (a+1)*4*H]
		zh := s.zh[a*4*H : (a+1)*4*H]
		cPrev := s.cg[a*H : (a+1)*H]
		hRow := hs[a*H : (a+1)*H]
		// Same association as Step: z[i] += zh[i] + B[i]. The pre-adds
		// are hoisted out of the gate loop so the sigmoid/tanh passes
		// run over contiguous quarters — 4 lanes per instruction when
		// the wide gate kernels are live, the same scalar calls per
		// element either way.
		for j, v := range zh {
			zx[j] += v + bias[j]
		}
		sigmoidLanes(zx[:2*H], zx[:2*H], wide)       // i and f (adjacent quarters)
		tanhLanes(zx[2*H:3*H], zx[2*H:3*H], wide)    // g
		sigmoidLanes(zx[3*H:4*H], zx[3*H:4*H], wide) // o
		for j := 0; j < H; j++ {
			// cNew = f*cPrev + i*g, exactly as Step associates it.
			cPrev[j] = zx[H+j]*cPrev[j] + zx[j]*zx[2*H+j]
		}
		tanhLanes(hRow, cPrev, wide)
		for j := 0; j < H; j++ {
			hRow[j] = zx[3*H+j] * hRow[j]
		}
	})
	for a, lane := range lanes {
		copy(s.h[lane*H:(lane+1)*H], hs[a*H:(a+1)*H])
		copy(s.c[lane*H:(lane+1)*H], s.cg[a*H:(a+1)*H])
	}
}

// growFloats returns buf with length at least n (contents unspecified).
func growFloats(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// batchLayer is one trunk layer of a BatchedStatefulModel: a fused
// batched state when the cell supports it, else per-lane fallback states.
type batchLayer struct {
	cell   Cell
	bc     BatchedCell // nil when the cell has no fused step (e.g. mlp)
	bs     BatchState
	states []CellState
}

// BatchedStatefulModel carries B independent recurrent streams ("lanes")
// of one trained model through fused steps: the batched counterpart of B
// StatefulModels sharing weights. One lane corresponds to one Mimic
// direction's packet stream; a step over k lanes does the work of k
// StatefulModel.Predict calls in one pass.
type BatchedStatefulModel struct {
	model  *Model
	pool   *Pool
	lanes  int
	layers []*batchLayer

	// LaneSteps counts inference steps per lane, keeping the Figure 23
	// compute accounting exact per Mimic.
	LaneSteps []uint64

	// double-buffered dense activations for one fused step
	bufA, bufB []float64
}

// NewBatchedStatefulModel builds a lane bank over a trained model. A nil
// pool uses the process-wide SharedPool.
func NewBatchedStatefulModel(m *Model, lanes int, pool *Pool) *BatchedStatefulModel {
	if pool == nil {
		pool = SharedPool()
	}
	b := &BatchedStatefulModel{model: m, pool: pool, lanes: lanes, LaneSteps: make([]uint64, lanes)}
	for _, c := range m.Trunk {
		bl := &batchLayer{cell: c}
		if bc, ok := c.(BatchedCell); ok {
			bl.bc = bc
			bl.bs = bc.NewBatchState(lanes)
		} else {
			bl.states = make([]CellState, lanes)
			for i := range bl.states {
				bl.states[i] = c.FreshState()
			}
		}
		b.layers = append(b.layers, bl)
	}
	return b
}

// Model returns the wrapped model.
func (b *BatchedStatefulModel) Model() *Model { return b.model }

// Lanes returns the current lane count.
func (b *BatchedStatefulModel) Lanes() int { return b.lanes }

// Steps returns total inference steps across all lanes.
func (b *BatchedStatefulModel) Steps() uint64 {
	var total uint64
	for _, s := range b.LaneSteps {
		total += s
	}
	return total
}

// AddLane appends a fresh zero-state lane and returns its index.
func (b *BatchedStatefulModel) AddLane() int {
	for _, bl := range b.layers {
		if bl.bc != nil {
			bl.bc.GrowBatchState(bl.bs)
		} else {
			bl.states = append(bl.states, bl.cell.FreshState())
		}
	}
	b.LaneSteps = append(b.LaneSteps, 0)
	b.lanes++
	return b.lanes - 1
}

// ResetLane zeroes one lane's recurrent state (its step count persists,
// mirroring StatefulModel.Reset).
func (b *BatchedStatefulModel) ResetLane(lane int) {
	for _, bl := range b.layers {
		if bl.bc != nil {
			bl.bc.ResetBatchLane(bl.bs, lane)
		} else {
			bl.states[lane] = bl.cell.FreshState()
		}
	}
}

// StepLanes advances each listed lane by one input. lanes must be
// distinct; xs[i] is lane lanes[i]'s feature vector. When want is nil or
// want[i] is true, out[i] receives the head predictions (out may be nil
// when want masks every lane — feeder advances discard outputs).
func (b *BatchedStatefulModel) StepLanes(lanes []int, xs [][]float64, want []bool, out []Prediction) {
	n := len(lanes)
	if n == 0 {
		return
	}
	obsBatchSize.Observe(float64(n))
	width := b.model.Cfg.Features
	H := b.model.Cfg.Hidden
	max := width
	if H > max {
		max = H
	}
	b.bufA = growFloats(b.bufA, n*max)
	b.bufB = growFloats(b.bufB, n*max)
	cur := b.bufA
	for i, x := range xs {
		if len(x) != width {
			panic(fmt.Sprintf("ml: StepLanes input %d has width %d, want %d", i, len(x), width))
		}
		copy(cur[i*width:(i+1)*width], x)
	}
	next := b.bufB
	for _, bl := range b.layers {
		h := bl.cell.HiddenSize()
		if bl.bc != nil {
			bl.bc.StepBatch(bl.bs, lanes, cur[:n*width], next[:n*h], b.pool)
		} else {
			for a, lane := range lanes {
				hv, _ := bl.cell.StepState(bl.states[lane], cur[a*width:(a+1)*width], false)
				copy(next[a*h:(a+1)*h], hv)
			}
		}
		cur, next = next, cur
		width = h
	}
	for i, lane := range lanes {
		b.LaneSteps[lane]++
		if want == nil || want[i] {
			out[i] = b.model.headsRow(cur[i*width : (i+1)*width])
		}
	}
}

// PredictLane advances one lane and returns its prediction (a batch of
// one; bit-identical to StatefulModel.Predict on the same stream).
func (b *BatchedStatefulModel) PredictLane(lane int, x []float64) Prediction {
	var (
		lanes = [1]int{lane}
		xs    = [1][]float64{x}
		out   [1]Prediction
	)
	b.StepLanes(lanes[:], xs[:], nil, out[:])
	return out[0]
}

// AdvanceLane advances one lane's hidden state, discarding the output
// (the batched counterpart of StatefulModel.Advance).
func (b *BatchedStatefulModel) AdvanceLane(lane int, x []float64) {
	var (
		lanes = [1]int{lane}
		xs    = [1][]float64{x}
		skip  = [1]bool{false}
	)
	b.StepLanes(lanes[:], xs[:], skip[:], nil)
}

// headsRow computes the three heads without allocating. Each head value
// is Dot(W.row, h) + b — the same accumulation MulVec-based heads()
// produces — so batched and per-packet predictions are identical.
func (m *Model) headsRow(h []float64) Prediction {
	return Prediction{
		Latency: Sigmoid(Dot(m.LatHead.W.Data, h) + m.LatHead.B.Data[0]),
		PDrop:   Sigmoid(Dot(m.DropHead.W.Data, h) + m.DropHead.B.Data[0]),
		PECN:    Sigmoid(Dot(m.ECNHead.W.Data, h) + m.ECNHead.B.Data[0]),
	}
}
