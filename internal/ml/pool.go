package ml

import (
	"runtime"
	"sync"
)

// Pool is a persistent goroutine worker pool used by the batched
// inference kernels. Workers are started once and reused across calls,
// so the per-call cost is a channel send per task rather than a
// goroutine spawn. All kernels dispatched through a Pool write disjoint
// output regions and fix the arithmetic order per output element, so
// results are bitwise deterministic regardless of scheduling.
//
// For must not be called from inside a task function (no nesting): with
// every worker blocked on an inner For the pool would deadlock.
type Pool struct {
	workers   int
	tasks     chan poolTask
	closeOnce sync.Once
}

type poolTask struct {
	fn  func(int)
	idx int
	wg  *sync.WaitGroup
}

// NewPool starts a pool with the given worker count (minimum 1). A pool
// with one worker runs everything inline and spawns no goroutines.
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{workers: workers}
	if workers > 1 {
		p.tasks = make(chan poolTask, 4*workers)
		for i := 0; i < workers; i++ {
			go p.worker()
		}
	}
	return p
}

func (p *Pool) worker() {
	for t := range p.tasks {
		t.fn(t.idx)
		t.wg.Done()
	}
}

// Workers returns the pool's worker count.
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.workers
}

// For runs fn(i) for every i in [0, n) and waits for all calls to
// finish. The caller's goroutine executes task 0 (and everything, when
// the pool has a single worker or n == 1), so a Pool never idles the
// calling thread. fn calls must write disjoint data.
func (p *Pool) For(n int, fn func(int)) {
	if n <= 0 {
		return
	}
	if p == nil || p.workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	obsPoolDispatches.Inc()
	obsPoolSubmits.Add(uint64(n - 1))
	var wg sync.WaitGroup
	wg.Add(n - 1)
	for i := 1; i < n; i++ {
		p.tasks <- poolTask{fn: fn, idx: i, wg: &wg}
	}
	fn(0)
	wg.Wait()
}

// Close stops the pool's workers. Close is idempotent; dispatching
// through the pool after Close panics. The tasks field is never
// reassigned after construction, so Close cannot race with workers
// still draining the channel.
func (p *Pool) Close() {
	if p.tasks != nil {
		p.closeOnce.Do(func() { close(p.tasks) })
	}
}

var (
	sharedPoolOnce sync.Once
	sharedPool     *Pool
)

// SharedPool returns the process-wide inference pool, sized to
// GOMAXPROCS at first use. It is never closed.
func SharedPool() *Pool {
	sharedPoolOnce.Do(func() {
		sharedPool = NewPool(runtime.GOMAXPROCS(0))
		registerPoolGauges(sharedPool)
	})
	return sharedPool
}
