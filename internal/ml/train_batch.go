package ml

import (
	"context"
	"fmt"
	"math"
	"time"

	"mimicnet/internal/stats"
)

// This file implements the training half of the batched engine: minibatch
// BPTT for the trunk cells and heads, expressed as the same cache-blocked
// pool-parallel GEMMs the inference path uses (MulLanes for forward,
// MulLanesT / AddGradLanes for backward). One optimizer step is applied
// per batch to the mean-loss gradient; Adam and gradient clipping keep
// their exact per-update semantics.
//
// Determinism contract: the minibatch trainer is NOT required to be
// bitwise equal to the scalar per-sample path (it takes B× fewer
// optimizer steps on averaged gradients — a different, healthier descent
// trajectory), but for a fixed seed and batch size it IS bitwise
// reproducible run to run and across worker counts: every gradient
// element is reduced over lanes in a fixed ascending order by exactly
// one pool task (see AddGradLanes), and sample order is the same
// seed-derived shuffle the scalar path uses.

// DefaultBatchSize is the minibatch width used when ModelConfig.BatchSize
// is zero.
const DefaultBatchSize = 16

// batchSize resolves the effective minibatch width.
func (c ModelConfig) batchSize() int {
	if c.BatchSize == 0 {
		return DefaultBatchSize
	}
	return c.BatchSize
}

// TrainProgress is a live report emitted after each finished epoch.
type TrainProgress struct {
	Epoch         int     `json:"epoch"` // 1-based, just finished
	Epochs        int     `json:"epochs"`
	Loss          float64 `json:"loss"` // mean per-sample loss of the epoch
	Samples       int     `json:"samples"`
	SamplesPerSec float64 `json:"samples_per_sec"`
	BatchSize     int     `json:"batch_size"`
}

// TrainOpts bundles optional training controls for TrainContext.
type TrainOpts struct {
	// Progress, when non-nil, receives one report per finished epoch.
	Progress func(TrainProgress)
	// Pool supplies the GEMM worker pool; nil means SharedPool().
	Pool *Pool

	// CheckpointEvery, when positive together with SaveCheckpoint, emits
	// a resumable cursor every N completed epochs and always after the
	// final one (so a finished direction restores instantly).
	CheckpointEvery int
	// SaveCheckpoint persists one cursor. A save error aborts training:
	// a caller asking for durability must not silently lose it.
	SaveCheckpoint func(*TrainCheckpoint) error
	// ResumeFrom, when non-nil, restores weights, optimizer moments,
	// shuffle permutation, and RNG position before the first epoch, then
	// continues at ResumeFrom.Epoch. The resumed run is bitwise
	// identical to one that was never interrupted.
	ResumeFrom *TrainCheckpoint
}

// fit is the shared training loop behind Train/TrainContext/FineTune:
// shuffle each epoch with rng, run forward+backward per batch, clip, and
// apply one optimizer step per batch. BatchSize 1 reproduces the original
// scalar loop bit for bit (same shuffle stream, one step per sample).
// The source may be a legacy []Sample adapter or a columnar SampleView;
// the two are bitwise interchangeable.
func (m *Model) fit(ctx context.Context, lr float64, rng *stats.Stream, src SampleSource, epochs int, opts TrainOpts) (TrainResult, error) {
	params := m.Params()
	count := src.Len()
	res := TrainResult{Samples: count}
	B := m.Cfg.batchSize()
	var bt *miniBatchTrainer
	if B > 1 && src.Steps() > 0 {
		pool := opts.Pool
		if pool == nil {
			pool = SharedPool()
		}
		bt = newMiniBatchTrainer(m, pool)
	} else {
		// Ragged or empty windows (never produced by the dataset
		// builder, but legal inputs): the scalar path handles them.
		B = 1
	}
	// A batch update sees the mean gradient over B samples — lower
	// variance and B× fewer steps per epoch than the scalar path. Scale
	// the Adam step size by √B (the usual Adam batch scaling) so
	// per-epoch convergence tracks the scalar trainer; Adam's update
	// rule itself is untouched.
	if B > 1 {
		lr *= math.Sqrt(float64(B))
	}
	opt := NewAdam(lr)
	idx := make([]int, count)
	for i := range idx {
		idx[i] = i
	}
	startEpoch := 0
	if ck := opts.ResumeFrom; ck != nil {
		// Weights were restored by TrainContext; rebuild the loop-local
		// state here so the continuation replays the exact trajectory.
		if ck.Epoch > epochs {
			return res, fmt.Errorf("ml: resume epoch %d beyond %d", ck.Epoch, epochs)
		}
		copy(idx, ck.Idx)
		if err := opt.SetState(params, ck.Opt); err != nil {
			return res, err
		}
		res.EpochLoss = append(res.EpochLoss, ck.EpochLoss...)
		startEpoch = ck.Epoch
	}
	var winBuf [][]float64 // scalar-path window gather, reused across samples
	for epoch := startEpoch; epoch < epochs; epoch++ {
		start := time.Now()
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		var sum float64
		for lo := 0; lo < len(idx); lo += B {
			if err := ctx.Err(); err != nil {
				// Stop only at optimizer-step boundaries: parameters
				// hold the last fully applied update. Drop the pending
				// gradients so a later fit on this model starts clean.
				for _, p := range params {
					p.ZeroGrad()
				}
				return res, err
			}
			if bt != nil {
				hi := min(lo+B, len(idx))
				sum += bt.trainBatch(src, idx[lo:hi])
			} else {
				i := idx[lo]
				winBuf = src.WindowAppend(winBuf[:0], i)
				lat, dropped, ecn := src.Target(i)
				sum += m.trainStepWindow(winBuf, lat, dropped, ecn)
			}
			if m.Cfg.ClipNorm > 0 {
				ClipGrads(params, m.Cfg.ClipNorm)
			}
			opt.Step(params)
		}
		if count > 0 {
			obsTrainEpochs.Inc()
			obsTrainSamples.Add(uint64(count))
			obsTrainBatches.Add(uint64((count + B - 1) / B))
			loss := sum / float64(count)
			res.EpochLoss = append(res.EpochLoss, loss)
			if opts.Progress != nil {
				sps := 0.0
				if d := time.Since(start).Seconds(); d > 0 {
					sps = float64(count) / d
				}
				opts.Progress(TrainProgress{
					Epoch: epoch + 1, Epochs: epochs, Loss: loss,
					Samples: count, SamplesPerSec: sps, BatchSize: B,
				})
			}
			if done := epoch + 1; opts.SaveCheckpoint != nil && opts.CheckpointEvery > 0 &&
				(done%opts.CheckpointEvery == 0 || done == epochs) {
				ck := m.captureCheckpoint(done, count, rng, idx, opt, res.EpochLoss)
				if err := opts.SaveCheckpoint(ck); err != nil {
					return res, fmt.Errorf("ml: checkpoint save at epoch %d: %w", done, err)
				}
			}
		}
	}
	return res, nil
}

// uniformSteps returns the window length shared by all samples, or 0
// when samples are empty, ragged, or have empty windows.
func uniformSteps(samples []Sample) int {
	if len(samples) == 0 {
		return 0
	}
	steps := len(samples[0].Window)
	for _, s := range samples {
		if len(s.Window) != steps {
			return 0
		}
	}
	return steps
}

// trainLayer is one trunk layer able to run fused minibatch training
// steps over n lanes (one lane = one sample of the batch).
type trainLayer interface {
	// begin resets recurrent state and sizes step caches for n lanes ×
	// steps. Buffers are reused across batches.
	begin(n, steps int)
	// forward advances step st: reads xs (n×In), writes hs (n×Hidden),
	// recording the activations backward needs.
	forward(st, n int, xs, hs []float64)
	// backward consumes dhIn — the gradient arriving at this step's
	// hidden output from the heads or the layer above (nil means zero) —
	// accumulates parameter gradients with the fixed ascending-lane
	// reduction, carries the recurrent gradient to step st-1 internally,
	// and writes the input gradient into dx (n×In) unless dx is nil.
	backward(st, n int, dhIn, dx []float64)
}

// newTrainLayer picks the fused trainer for a cell, falling back to the
// scalar per-lane path for cell types without one.
func newTrainLayer(c Cell, pool *Pool) trainLayer {
	switch l := c.(type) {
	case *LSTM:
		return &lstmTrainLayer{l: l, pool: pool}
	case *GRU:
		return &gruTrainLayer{g: l, pool: pool}
	case *WindowMLP:
		return &mlpTrainLayer{m: l, pool: pool}
	}
	return &genericTrainLayer{c: c}
}

// miniBatchTrainer runs fused forward+backward passes for whole
// minibatches, accumulating the mean-loss gradient into the model's
// parameter Grad buffers (the caller clips and applies the optimizer).
type miniBatchTrainer struct {
	m      *Model
	pool   *Pool
	layers []trainLayer

	bufA, bufB        []float64   // dense activations, n × max width
	dxBufs            [][]float64 // per layer ≥ 1, n × InSize
	dOut              []float64   // n×H gradient at the trunk output
	dLat, dDrop, dECN []float64   // per-lane head logit gradients
}

func newMiniBatchTrainer(m *Model, pool *Pool) *miniBatchTrainer {
	t := &miniBatchTrainer{m: m, pool: pool, dxBufs: make([][]float64, len(m.Trunk))}
	for _, c := range m.Trunk {
		t.layers = append(t.layers, newTrainLayer(c, pool))
	}
	return t
}

// trainBatch runs one fused forward+backward over the samples selected
// by idx, accumulates parameter gradients for the mean loss of the
// batch, and returns the summed (unscaled) per-sample loss. Lanes
// gather their window rows straight from the source — for a columnar
// view that is a copy out of the shared flat matrix, no per-sample
// window structure ever exists.
func (t *miniBatchTrainer) trainBatch(src SampleSource, idx []int) float64 {
	n := len(idx)
	steps := src.Steps()
	cfg := &t.m.Cfg
	width := cfg.Features
	H := cfg.Hidden
	maxW := max(width, H)
	t.bufA = growFloats(t.bufA, n*maxW)
	t.bufB = growFloats(t.bufB, n*maxW)
	for li, tl := range t.layers {
		tl.begin(n, steps)
		if li > 0 {
			t.dxBufs[li] = growFloats(t.dxBufs[li], n*t.m.Trunk[li].InSize())
		}
	}

	// Forward: lockstep over steps, bottom to top. Each layer caches its
	// own inputs, so the double buffers can be reused immediately.
	var out []float64
	for st := 0; st < steps; st++ {
		cur, next := t.bufA, t.bufB
		for a, i := range idx {
			copy(cur[a*width:(a+1)*width], src.Row(i, st))
		}
		for _, tl := range t.layers {
			tl.forward(st, n, cur, next)
			cur, next = next, cur
		}
		out = cur
	}

	// Heads and losses, per lane in ascending order (serial: the loss
	// sum and bias gradients are scalar reductions over lanes).
	t.dLat = growFloats(t.dLat, n)
	t.dDrop = growFloats(t.dDrop, n)
	t.dECN = growFloats(t.dECN, n)
	t.dOut = growFloats(t.dOut, n*H)
	invB := 1 / float64(n)
	var sum float64
	for a, i := range idx {
		latTarget, dropped, ecn := src.Target(i)
		pred := t.m.headsRow(out[a*H : (a+1)*H])
		dropTarget, ecnTarget := 0.0, 0.0
		if dropped {
			dropTarget = 1
		}
		if ecn {
			ecnTarget = 1
		}
		latLoss, dLat := cfg.LatLoss.Eval(pred.Latency, latTarget, cfg.HuberDelta)
		var dropLoss, dDrop float64
		if cfg.DropWeight > 0 {
			dropLoss, dDrop = WBCE(pred.PDrop, dropTarget, cfg.DropWeight)
		} else {
			dropLoss, dDrop = BCE(pred.PDrop, dropTarget)
		}
		ecnLoss, dECN := BCE(pred.PECN, ecnTarget)
		sum += cfg.LatWeight*latLoss + cfg.DropLossW*dropLoss + cfg.ECNLossW*ecnLoss
		// Mean-loss gradient: scaling the logit gradients by 1/n scales
		// every downstream parameter gradient linearly.
		t.dLat[a] = invB * cfg.LatWeight * dLat * DSigmoid(pred.Latency)
		t.dDrop[a] = invB * cfg.DropLossW * dDrop * DSigmoid(pred.PDrop)
		t.dECN[a] = invB * cfg.ECNLossW * dECN * DSigmoid(pred.PECN)
	}
	hFin := out[:n*H]
	t.m.LatHead.W.AddGradLanes(0, 1, t.dLat, 1, n, hFin, t.pool)
	t.m.DropHead.W.AddGradLanes(0, 1, t.dDrop, 1, n, hFin, t.pool)
	t.m.ECNHead.W.AddGradLanes(0, 1, t.dECN, 1, n, hFin, t.pool)
	addBiasGradLanes(t.m.LatHead.B, 0, 1, t.dLat, 1, n)
	addBiasGradLanes(t.m.DropHead.B, 0, 1, t.dDrop, 1, n)
	addBiasGradLanes(t.m.ECNHead.B, 0, 1, t.dECN, 1, n)

	// dOut = Σ_heads Wᵀ·dLogit, per lane.
	latW := t.m.LatHead.W.Data
	dropW := t.m.DropHead.W.Data
	ecnW := t.m.ECNHead.W.Data
	dOut := t.dOut[:n*H]
	t.pool.For(n, func(a int) {
		row := dOut[a*H : (a+1)*H]
		dl, dd, de := t.dLat[a], t.dDrop[a], t.dECN[a]
		for c := 0; c < H; c++ {
			row[c] = latW[c]*dl + dropW[c]*dd + ecnW[c]*de
		}
	})

	// Backward: steps descending, layers top to bottom — the batched
	// mirror of Trace.Backward. dOut enters the top layer at the final
	// step only; each layer's dx feeds the layer below's dhIn.
	for st := steps - 1; st >= 0; st-- {
		var dhIn []float64
		if st == steps-1 {
			dhIn = dOut
		}
		for li := len(t.layers) - 1; li >= 0; li-- {
			var dx []float64
			if li > 0 {
				dx = t.dxBufs[li]
			}
			t.layers[li].backward(st, n, dhIn, dx)
			dhIn = dx
		}
	}
	return sum
}

// lstmTrainLayer runs fused minibatch BPTT for one LSTM layer: the same
// two MulLanes GEMMs per step as the inference StepBatch, plus
// GEMM-shaped backward passes (MulLanesT for the input and recurrent
// gradients, AddGradLanes for the weights).
type lstmTrainLayer struct {
	l    *LSTM
	pool *Pool

	n, steps int
	h, c     []float64 // running state, n×H
	dh, dc   []float64 // recurrent gradient carry, n×H
	zx, zh   []float64 // forward step scratch, n×4H
	dz       []float64 // gate pre-activation gradients, n×4H

	// per-step caches, laid out steps × n × width
	cx                  []float64 // inputs, steps×n×In
	chPrev, ccPrev      []float64 // steps×n×H
	ci, cf, cg, co, ctc []float64 // gate activations and tanh(c), steps×n×H
}

func (t *lstmTrainLayer) begin(n, steps int) {
	H, In := t.l.Hidden, t.l.In
	t.n, t.steps = n, steps
	t.h = growFloats(t.h, n*H)
	t.c = growFloats(t.c, n*H)
	t.dh = growFloats(t.dh, n*H)
	t.dc = growFloats(t.dc, n*H)
	t.zx = growFloats(t.zx, n*4*H)
	t.zh = growFloats(t.zh, n*4*H)
	t.dz = growFloats(t.dz, n*4*H)
	t.cx = growFloats(t.cx, steps*n*In)
	t.chPrev = growFloats(t.chPrev, steps*n*H)
	t.ccPrev = growFloats(t.ccPrev, steps*n*H)
	t.ci = growFloats(t.ci, steps*n*H)
	t.cf = growFloats(t.cf, steps*n*H)
	t.cg = growFloats(t.cg, steps*n*H)
	t.co = growFloats(t.co, steps*n*H)
	t.ctc = growFloats(t.ctc, steps*n*H)
	zeroRange(t.h[:n*H])
	zeroRange(t.c[:n*H])
	zeroRange(t.dh[:n*H])
	zeroRange(t.dc[:n*H])
}

func (t *lstmTrainLayer) forward(st, n int, xs, hs []float64) {
	l := t.l
	H, In := l.Hidden, l.In
	copy(t.cx[st*n*In:(st+1)*n*In], xs[:n*In])
	base := st * n * H
	copy(t.chPrev[base:base+n*H], t.h[:n*H])
	copy(t.ccPrev[base:base+n*H], t.c[:n*H])
	l.Wx.MulLanes(0, 4*H, xs, n, t.zx, 4*H, t.pool)
	l.Wh.MulLanes(0, 4*H, t.h, n, t.zh, 4*H, t.pool)
	bias := l.B.Data
	wide := gemmKernel().wideGates
	t.pool.For(n, func(a int) {
		zx := t.zx[a*4*H : (a+1)*4*H]
		zh := t.zh[a*4*H : (a+1)*4*H]
		// Same association as Step: z[i] += zh[i] + B[i]; the gate
		// activations land directly in the per-step caches, 4 lanes per
		// instruction when the wide gate kernels are live.
		for j, v := range zh {
			zx[j] += v + bias[j]
		}
		ci := t.ci[base+a*H : base+(a+1)*H]
		cf := t.cf[base+a*H : base+(a+1)*H]
		cg := t.cg[base+a*H : base+(a+1)*H]
		co := t.co[base+a*H : base+(a+1)*H]
		ctc := t.ctc[base+a*H : base+(a+1)*H]
		sigmoidLanes(ci, zx[:H], wide)
		sigmoidLanes(cf, zx[H:2*H], wide)
		tanhLanes(cg, zx[2*H:3*H], wide)
		sigmoidLanes(co, zx[3*H:4*H], wide)
		cRow := t.c[a*H : (a+1)*H]
		hRow := hs[a*H : (a+1)*H]
		for j := 0; j < H; j++ {
			// cNew = f*cPrev + i*g, exactly as Step associates it.
			cRow[j] = cf[j]*cRow[j] + ci[j]*cg[j]
		}
		tanhLanes(ctc, cRow, wide)
		for j := 0; j < H; j++ {
			hRow[j] = co[j] * ctc[j]
		}
	})
	copy(t.h[:n*H], hs[:n*H])
}

func (t *lstmTrainLayer) backward(st, n int, dhIn, dx []float64) {
	l := t.l
	H, In := l.Hidden, l.In
	base := st * n * H
	t.pool.For(n, func(a int) {
		for j := 0; j < H; j++ {
			k := base + a*H + j
			dhv := t.dh[a*H+j]
			if dhIn != nil {
				dhv += dhIn[a*H+j]
			}
			// Mirrors stepBackward: h = o·tanh(c), c = f·cPrev + i·g.
			i_, f_, g_, o_, tc := t.ci[k], t.cf[k], t.cg[k], t.co[k], t.ctc[k]
			do := dhv * tc
			dcTotal := t.dc[a*H+j] + dhv*o_*DTanh(tc)
			di := dcTotal * g_
			df := dcTotal * t.ccPrev[k]
			dg := dcTotal * i_
			t.dz[a*4*H+j] = di * DSigmoid(i_)
			t.dz[a*4*H+H+j] = df * DSigmoid(f_)
			t.dz[a*4*H+2*H+j] = dg * DTanh(g_)
			t.dz[a*4*H+3*H+j] = do * DSigmoid(o_)
			t.dc[a*H+j] = dcTotal * f_
		}
	})
	l.Wx.AddGradLanes(0, 4*H, t.dz, 4*H, n, t.cx[st*n*In:(st+1)*n*In], t.pool)
	l.Wh.AddGradLanes(0, 4*H, t.dz, 4*H, n, t.chPrev[base:base+n*H], t.pool)
	addBiasGradLanes(l.B, 0, 4*H, t.dz, 4*H, n)
	if dx != nil {
		l.Wx.MulLanesT(0, 4*H, t.dz, 4*H, n, dx, t.pool)
	}
	// dh was consumed above; overwrite it with the carry for step st-1.
	l.Wh.MulLanesT(0, 4*H, t.dz, 4*H, n, t.dh, t.pool)
}

// gruTrainLayer runs fused minibatch BPTT for one GRU layer. The
// candidate pre-activation consumes r⊙h, so each step needs a third
// GEMM after the gate pass (exactly like the inference StepBatch).
type gruTrainLayer struct {
	g    *GRU
	pool *Pool

	n, steps int
	h        []float64 // running state, n×H
	dh       []float64 // recurrent gradient carry, n×H
	ax, ac   []float64 // pre-activation scratch, n×3H
	da       []float64 // pre-activation gradients, n×3H
	drh      []float64 // gradient at r⊙h, n×H
	dhAcc    []float64 // dhPrev accumulator, n×H
	scr      []float64 // MulLanesT scratch, n×H

	cx                       []float64 // steps×n×In
	chPrev, cz, cr, chh, crh []float64 // steps×n×H
}

func (t *gruTrainLayer) begin(n, steps int) {
	H, In := t.g.Hidden, t.g.In
	t.n, t.steps = n, steps
	t.h = growFloats(t.h, n*H)
	t.dh = growFloats(t.dh, n*H)
	t.ax = growFloats(t.ax, n*3*H)
	t.ac = growFloats(t.ac, n*3*H)
	t.da = growFloats(t.da, n*3*H)
	t.drh = growFloats(t.drh, n*H)
	t.dhAcc = growFloats(t.dhAcc, n*H)
	t.scr = growFloats(t.scr, n*H)
	t.cx = growFloats(t.cx, steps*n*In)
	t.chPrev = growFloats(t.chPrev, steps*n*H)
	t.cz = growFloats(t.cz, steps*n*H)
	t.cr = growFloats(t.cr, steps*n*H)
	t.chh = growFloats(t.chh, steps*n*H)
	t.crh = growFloats(t.crh, steps*n*H)
	zeroRange(t.h[:n*H])
	zeroRange(t.dh[:n*H])
}

func (t *gruTrainLayer) forward(st, n int, xs, hs []float64) {
	g := t.g
	H, In := g.Hidden, g.In
	copy(t.cx[st*n*In:(st+1)*n*In], xs[:n*In])
	base := st * n * H
	copy(t.chPrev[base:base+n*H], t.h[:n*H])
	g.Wx.MulLanes(0, 3*H, xs, n, t.ax, 3*H, t.pool)
	g.Wh.MulLanes(0, 2*H, t.h, n, t.ac, 3*H, t.pool)
	bias := g.B.Data
	wide := gemmKernel().wideGates
	t.pool.For(n, func(a int) {
		ax := t.ax[a*3*H : (a+1)*3*H]
		ac := t.ac[a*3*H : (a+1)*3*H]
		// Same ax + ac + bias association as StepState; z and r land
		// directly in the per-step caches.
		for j := 0; j < 2*H; j++ {
			ax[j] = ax[j] + ac[j] + bias[j]
		}
		cz := t.cz[base+a*H : base+(a+1)*H]
		cr := t.cr[base+a*H : base+(a+1)*H]
		crh := t.crh[base+a*H : base+(a+1)*H]
		sigmoidLanes(cz, ax[:H], wide)
		sigmoidLanes(cr, ax[H:2*H], wide)
		hRow := t.h[a*H : (a+1)*H]
		for j := 0; j < H; j++ {
			crh[j] = cr[j] * hRow[j]
		}
	})
	// Candidate recurrent pre-activation over r⊙h (must follow r).
	g.Wh.MulLanes(2*H, 3*H, t.crh[base:base+n*H], n, t.ac, 3*H, t.pool)
	t.pool.For(n, func(a int) {
		ax := t.ax[a*3*H : (a+1)*3*H]
		ac := t.ac[a*3*H : (a+1)*3*H]
		chh := t.chh[base+a*H : base+(a+1)*H]
		for j := 0; j < H; j++ {
			chh[j] = ax[2*H+j] + ac[2*H+j] + bias[2*H+j]
		}
		tanhLanes(chh, chh, wide)
		cz := t.cz[base+a*H : base+(a+1)*H]
		hRow := t.h[a*H : (a+1)*H]
		hsRow := hs[a*H : (a+1)*H]
		for j := 0; j < H; j++ {
			hsRow[j] = (1-cz[j])*hRow[j] + cz[j]*chh[j]
		}
	})
	copy(t.h[:n*H], hs[:n*H])
}

func (t *gruTrainLayer) backward(st, n int, dhIn, dx []float64) {
	g := t.g
	H, In := g.Hidden, g.In
	base := st * n * H
	t.pool.For(n, func(a int) {
		for j := 0; j < H; j++ {
			k := base + a*H + j
			dhv := t.dh[a*H+j]
			if dhIn != nil {
				dhv += dhIn[a*H+j]
			}
			// h' = (1-z)·h + z·ĥ (mirrors GRU.StepBackward).
			z, hHat, hPrev := t.cz[k], t.chh[k], t.chPrev[k]
			dz := dhv * (hHat - hPrev)
			t.da[a*3*H+j] = dz * DSigmoid(z)
			t.da[a*3*H+2*H+j] = dhv * z * DTanh(hHat)
			t.dhAcc[a*H+j] = dhv * (1 - z)
		}
	})
	// Gradient at r⊙h through the candidate rows of Wh.
	g.Wh.MulLanesT(2*H, 3*H, t.da, 3*H, n, t.drh, t.pool)
	t.pool.For(n, func(a int) {
		for j := 0; j < H; j++ {
			k := base + a*H + j
			dr := t.drh[a*H+j] * t.chPrev[k]
			t.da[a*3*H+H+j] = dr * DSigmoid(t.cr[k])
			t.dhAcc[a*H+j] += t.drh[a*H+j] * t.cr[k]
		}
	})
	g.Wx.AddGradLanes(0, 3*H, t.da, 3*H, n, t.cx[st*n*In:(st+1)*n*In], t.pool)
	// Wh rows for z and r consume hPrev; candidate rows consume r⊙h.
	g.Wh.AddGradLanes(0, 2*H, t.da, 3*H, n, t.chPrev[base:base+n*H], t.pool)
	g.Wh.AddGradLanes(2*H, 3*H, t.da, 3*H, n, t.crh[base:base+n*H], t.pool)
	addBiasGradLanes(g.B, 0, 3*H, t.da, 3*H, n)
	g.Wh.MulLanesT(0, 2*H, t.da, 3*H, n, t.scr, t.pool)
	t.pool.For(n, func(a int) {
		for j := 0; j < H; j++ {
			t.dh[a*H+j] = t.dhAcc[a*H+j] + t.scr[a*H+j]
		}
	})
	if dx != nil {
		g.Wx.MulLanesT(0, 3*H, t.da, 3*H, n, dx, t.pool)
	}
}

// mlpTrainLayer trains the windowed-MLP baseline in fused form. The MLP
// is restricted to a single (top) layer and the heads read only the
// final step's output, so per-step evaluation is wasted work at train
// time: the layer buffers the window and runs one GEMM at the final
// step. Non-final steps contribute no gradient (StepBackward returns a
// zero dhPrev), so skipping them is exact, not an approximation.
type mlpTrainLayer struct {
	m    *WindowMLP
	pool *Pool

	n, steps int
	flat     []float64 // n × In·Window, zero-padded like flatten()
	h        []float64 // n×H final-step activations
	da       []float64 // n×H
}

func (t *mlpTrainLayer) begin(n, steps int) {
	t.n, t.steps = n, steps
	FW := t.m.In * t.m.Window
	t.flat = growFloats(t.flat, n*FW)
	zeroRange(t.flat[:n*FW])
	t.h = growFloats(t.h, n*t.m.Hidden)
	t.da = growFloats(t.da, n*t.m.Hidden)
}

func (t *mlpTrainLayer) forward(st, n int, xs, hs []float64) {
	In, W, H := t.m.In, t.m.Window, t.m.Hidden
	// Step st of a steps-long stream lands in ring slot st+W-steps of
	// the final (front-padded) window; earlier steps fall off the ring.
	slot := st + W - t.steps
	if slot < 0 {
		return
	}
	for a := 0; a < n; a++ {
		copy(t.flat[a*In*W+slot*In:a*In*W+(slot+1)*In], xs[a*In:(a+1)*In])
	}
	if st != t.steps-1 {
		return
	}
	t.m.W.MulLanes(0, H, t.flat, n, t.h, H, t.pool)
	bias := t.m.B.Data
	wide := gemmKernel().wideGates
	t.pool.For(n, func(a int) {
		row := t.h[a*H : (a+1)*H]
		for j := 0; j < H; j++ {
			row[j] += bias[j]
		}
		tanhLanes(row, row, wide)
		copy(hs[a*H:(a+1)*H], row)
	})
}

func (t *mlpTrainLayer) backward(st, n int, dhIn, _ []float64) {
	if st != t.steps-1 || dhIn == nil {
		return
	}
	H := t.m.Hidden
	t.pool.For(n, func(a int) {
		for j := 0; j < H; j++ {
			t.da[a*H+j] = dhIn[a*H+j] * DTanh(t.h[a*H+j])
		}
	})
	t.m.W.AddGradLanes(0, H, t.da, H, n, t.flat, t.pool)
	addBiasGradLanes(t.m.B, 0, H, t.da, H, n)
}

// genericTrainLayer is the scalar fallback for cells without a fused
// trainer: StepState/StepBackward per lane in ascending-lane order.
// It runs serially — StepBackward accumulates into shared parameter
// gradients — and exists so a new Cell implementation trains correctly
// (if slowly) before it grows a fused path.
type genericTrainLayer struct {
	c      Cell
	states []CellState
	caches [][]CellCache // [step][lane]
	dh     [][]float64
	dc     [][]float64
}

func (t *genericTrainLayer) begin(n, steps int) {
	t.states = make([]CellState, n)
	t.dh = make([][]float64, n)
	t.dc = make([][]float64, n)
	for a := 0; a < n; a++ {
		t.states[a] = t.c.FreshState()
		t.dh[a] = Zeros(t.c.HiddenSize())
	}
	t.caches = make([][]CellCache, steps)
	for i := range t.caches {
		t.caches[i] = make([]CellCache, n)
	}
}

func (t *genericTrainLayer) forward(st, n int, xs, hs []float64) {
	in, H := t.c.InSize(), t.c.HiddenSize()
	for a := 0; a < n; a++ {
		h, cache := t.c.StepState(t.states[a], xs[a*in:(a+1)*in], true)
		t.caches[st][a] = cache
		copy(hs[a*H:(a+1)*H], h)
	}
}

func (t *genericTrainLayer) backward(st, n int, dhIn, dx []float64) {
	in, H := t.c.InSize(), t.c.HiddenSize()
	for a := 0; a < n; a++ {
		if dhIn != nil {
			AddTo(t.dh[a], dhIn[a*H:(a+1)*H])
		}
		dhPrev, dcPrev, dxv := t.c.StepBackward(t.caches[st][a], t.dh[a], t.dc[a])
		t.dh[a], t.dc[a] = dhPrev, dcPrev
		if dx != nil {
			copy(dx[a*in:(a+1)*in], dxv)
		}
	}
}
