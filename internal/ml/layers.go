package ml

import (
	"math"

	"mimicnet/internal/stats"
)

// Linear is a fully connected layer y = Wx + b.
type Linear struct {
	W *Matrix
	B *Matrix // (out, 1), stored as a matrix so optimizers see one type
}

// NewLinear allocates and initializes a linear layer.
func NewLinear(in, out int, s *stats.Stream) *Linear {
	l := &Linear{W: NewMatrix(out, in), B: NewMatrix(out, 1)}
	l.W.InitXavier(s)
	return l
}

// Forward computes the layer output.
func (l *Linear) Forward(x []float64) []float64 {
	y := l.W.MulVec(x, nil)
	for i := range y {
		y[i] += l.B.Data[i]
	}
	return y
}

// Backward accumulates parameter gradients for dy and returns dx.
func (l *Linear) Backward(x, dy []float64) []float64 {
	l.W.AddOuterGrad(dy, x)
	for i, d := range dy {
		l.B.Grad[i] += d
	}
	dx := Zeros(len(x))
	l.W.MulVecT(dy, dx)
	return dx
}

// Params returns the layer's trainable parameters.
func (l *Linear) Params() []*Matrix { return []*Matrix{l.W, l.B} }

// LSTM is a single long short-term memory layer. Gate layout within the
// stacked 4H dimension is [input, forget, candidate, output].
type LSTM struct {
	In, Hidden int
	Wx         *Matrix // (4H, In)
	Wh         *Matrix // (4H, H)
	B          *Matrix // (4H, 1)
}

// NewLSTM allocates and initializes an LSTM layer. The forget gate bias
// starts at 1 (the classic trick so memory persists early in training).
func NewLSTM(in, hidden int, s *stats.Stream) *LSTM {
	l := &LSTM{
		In: in, Hidden: hidden,
		Wx: NewMatrix(4*hidden, in),
		Wh: NewMatrix(4*hidden, hidden),
		B:  NewMatrix(4*hidden, 1),
	}
	l.Wx.InitXavier(s)
	l.Wh.InitXavier(s)
	for i := hidden; i < 2*hidden; i++ {
		l.B.Data[i] = 1
	}
	return l
}

// Params returns the layer's trainable parameters.
func (l *LSTM) Params() []*Matrix { return []*Matrix{l.Wx, l.Wh, l.B} }

// LSTMState is the recurrent state (hidden, cell).
type LSTMState struct {
	H, C []float64
}

// NewState returns a zero state.
func (l *LSTM) NewState() *LSTMState {
	return &LSTMState{H: Zeros(l.Hidden), C: Zeros(l.Hidden)}
}

// Clone deep-copies the state (feeders use this to advance hidden state
// speculatively).
func (s *LSTMState) Clone() *LSTMState {
	return &LSTMState{
		H: append([]float64(nil), s.H...),
		C: append([]float64(nil), s.C...),
	}
}

// lstmCache stores per-step activations for BPTT.
type lstmCache struct {
	x            []float64
	hPrev, cPrev []float64
	i, f, g, o   []float64
	c, h         []float64
	tanhC        []float64
}

// Step advances the state by one input and returns the new hidden vector.
// When cache is non-nil, activations needed for Backward are recorded.
func (l *LSTM) Step(st *LSTMState, x []float64, cache *lstmCache) []float64 {
	H := l.Hidden
	z := l.Wx.MulVec(x, nil)
	zh := l.Wh.MulVec(st.H, nil)
	for i := range z {
		z[i] += zh[i] + l.B.Data[i]
	}
	i_, f_, g_, o_ := Zeros(H), Zeros(H), Zeros(H), Zeros(H)
	cNew, hNew, tanhC := Zeros(H), Zeros(H), Zeros(H)
	for j := 0; j < H; j++ {
		i_[j] = Sigmoid(z[j])
		f_[j] = Sigmoid(z[H+j])
		g_[j] = math.Tanh(z[2*H+j])
		o_[j] = Sigmoid(z[3*H+j])
		cNew[j] = f_[j]*st.C[j] + i_[j]*g_[j]
		tanhC[j] = math.Tanh(cNew[j])
		hNew[j] = o_[j] * tanhC[j]
	}
	if cache != nil {
		cache.x = append([]float64(nil), x...)
		cache.hPrev = append([]float64(nil), st.H...)
		cache.cPrev = append([]float64(nil), st.C...)
		cache.i, cache.f, cache.g, cache.o = i_, f_, g_, o_
		cache.c, cache.h, cache.tanhC = cNew, hNew, tanhC
	}
	st.C = cNew
	st.H = hNew
	return hNew
}

// stepBackward backpropagates one step: given dh/dc flowing into this
// step's outputs, it accumulates parameter gradients and returns
// gradients for the previous hidden/cell state and the input.
func (l *LSTM) stepBackward(cache *lstmCache, dh, dc []float64) (dhPrev, dcPrev, dx []float64) {
	H := l.Hidden
	dz := Zeros(4 * H)
	dcTotal := Zeros(H)
	for j := 0; j < H; j++ {
		// h = o * tanh(c)
		do := dh[j] * cache.tanhC[j]
		dcTotal[j] = dc[j] + dh[j]*cache.o[j]*DTanh(cache.tanhC[j])
		// c = f*cPrev + i*g
		di := dcTotal[j] * cache.g[j]
		df := dcTotal[j] * cache.cPrev[j]
		dg := dcTotal[j] * cache.i[j]
		dz[j] = di * DSigmoid(cache.i[j])
		dz[H+j] = df * DSigmoid(cache.f[j])
		dz[2*H+j] = dg * DTanh(cache.g[j])
		dz[3*H+j] = do * DSigmoid(cache.o[j])
	}
	l.Wx.AddOuterGrad(dz, cache.x)
	l.Wh.AddOuterGrad(dz, cache.hPrev)
	for i, d := range dz {
		l.B.Grad[i] += d
	}
	dx = Zeros(l.In)
	l.Wx.MulVecT(dz, dx)
	dhPrev = Zeros(H)
	l.Wh.MulVecT(dz, dhPrev)
	dcPrev = Zeros(H)
	for j := 0; j < H; j++ {
		dcPrev[j] = dcTotal[j] * cache.f[j]
	}
	return dhPrev, dcPrev, dx
}

// Trace is the recorded forward pass of a window through a stack of
// trunk cells, ready for BPTT.
type Trace struct {
	layers  []Cell
	caches  [][]CellCache // [layer][step]
	Outputs []float64     // final hidden of the top layer
}

// ForwardWindow runs a window (steps × features) through stacked layers
// from a zero state, recording caches when train is true.
func ForwardWindow(layers []Cell, window [][]float64, train bool) *Trace {
	tr := &Trace{layers: layers}
	if train {
		tr.caches = make([][]CellCache, len(layers))
		for i := range tr.caches {
			tr.caches[i] = make([]CellCache, len(window))
		}
	}
	states := make([]CellState, len(layers))
	for i, l := range layers {
		states[i] = l.FreshState()
	}
	var h []float64
	for step, x := range window {
		h = x
		for li, l := range layers {
			var cache CellCache
			h, cache = l.StepState(states[li], h, train)
			if train {
				tr.caches[li][step] = cache
			}
		}
	}
	tr.Outputs = h
	return tr
}

// Backward runs BPTT given the gradient at the final top-layer hidden
// output and accumulates parameter gradients.
func (tr *Trace) Backward(dOut []float64) {
	steps := len(tr.caches[0])
	nl := len(tr.layers)
	// dh and the carry gradient (cell state for LSTMs, nil for others)
	// flowing backward per layer.
	dh := make([][]float64, nl)
	dc := make([][]float64, nl)
	for i, l := range tr.layers {
		dh[i] = Zeros(l.HiddenSize())
	}
	copy(dh[nl-1], dOut)
	for step := steps - 1; step >= 0; step-- {
		// Top to bottom: each layer's dx feeds the layer below's dh.
		var dxDown []float64
		for li := nl - 1; li >= 0; li-- {
			if dxDown != nil {
				AddTo(dh[li], dxDown)
			}
			dhPrev, dcPrev, dx := tr.layers[li].StepBackward(tr.caches[li][step], dh[li], dc[li])
			dh[li], dc[li] = dhPrev, dcPrev
			dxDown = dx
		}
	}
}

// StatefulRunner performs streaming inference: it keeps per-layer cell
// state across calls, which is how Mimic models see a continuous packet
// stream (and how feeder packets advance the hidden state without
// emitting outputs, paper §6).
type StatefulRunner struct {
	layers []Cell
	states []CellState
}

// NewStatefulRunner initializes zero states for the stack.
func NewStatefulRunner(layers []Cell) *StatefulRunner {
	r := &StatefulRunner{layers: layers}
	r.states = make([]CellState, len(layers))
	for i, l := range layers {
		r.states[i] = l.FreshState()
	}
	return r
}

// Step feeds one feature vector and returns the top-layer hidden state.
func (r *StatefulRunner) Step(x []float64) []float64 {
	h := x
	for i, l := range r.layers {
		h, _ = l.StepState(r.states[i], h, false)
	}
	return h
}

// Reset zeroes the recurrent state.
func (r *StatefulRunner) Reset() {
	for i, l := range r.layers {
		r.states[i] = l.FreshState()
	}
}
