package ml

import "math"

// Slice wrappers around the 4-wide gate kernels. When wide is false (or
// for ragged tails) they are exactly the scalar loops the call sites
// used before dispatch existed, so every kernel family computes the
// same bits.

// sigmoidLanes writes Sigmoid(src[i]) into dst[i]. dst and src may be
// the same slice but must not partially overlap. The wide path asks
// sigmoid4 for 4 lanes at a time; lanes the kernel flags as off exp's
// fast path still hold their original input in dst and are recomputed
// with the scalar Sigmoid in place.
func sigmoidLanes(dst, src []float64, wide bool) {
	n := len(src)
	i := 0
	if wide {
		for ; i+4 <= n; i += 4 {
			if ok := sigmoid4(&dst[i], &src[i]); ok != 0x0F {
				for j := 0; j < 4; j++ {
					if ok&(1<<j) == 0 {
						dst[i+j] = Sigmoid(dst[i+j])
					}
				}
			}
		}
	}
	for ; i < n; i++ {
		dst[i] = Sigmoid(src[i])
	}
}

// tanhLanes writes math.Tanh(src[i]) into dst[i]. Same aliasing rules
// as sigmoidLanes; tanh4 is total, so the wide path has no fallback.
func tanhLanes(dst, src []float64, wide bool) {
	n := len(src)
	i := 0
	if wide {
		for ; i+4 <= n; i += 4 {
			tanh4(&dst[i], &src[i])
		}
	}
	for ; i < n; i++ {
		dst[i] = math.Tanh(src[i])
	}
}

// wideGatesMatchScalar bit-compares the wide gate kernels against the
// scalar Sigmoid/math.Tanh on probe values spanning every branch of
// both functions: ±0 (sign preservation), denormals, the tanh
// polynomial/exp-branch boundary at |x| = 0.625, the tanh saturation
// boundary at 0.5*MAXLOG, exp's overflow cutoff near 709.78, and
// non-finite inputs. The wide kernels clone math.Exp's AVX+FMA variant,
// so this returns false — and dispatch keeps scalar gates — whenever
// the runtime's math package takes a different path (no FMA, GODEBUG
// cpu.fma=off, or a future Go changing the algorithm). Only called when
// the CPU probe reports AVX2 and FMA.
func wideGatesMatchScalar() bool {
	probes := []float64{
		0, math.Copysign(0, -1), 1e-320, -1e-320, 1e-8, -1e-8,
		0.5, -0.5, 0.624, -0.624, 0.625, -0.625, 1, -1, 2.5, -2.5,
		19.0625, -19.0625, 44.014, -44.014, 44.015, -44.015,
		88.02, -88.02, 700, -700, 709.7, -709.7, 710, -710,
		1e300, -1e300, math.Inf(1), math.Inf(-1), 0.75, -0.75,
	}
	got := make([]float64, len(probes))
	sigmoidLanes(got, probes, true)
	for i, x := range probes {
		if math.Float64bits(got[i]) != math.Float64bits(Sigmoid(x)) {
			return false
		}
	}
	tanhLanes(got, probes, true)
	for i, x := range probes {
		if math.Float64bits(got[i]) != math.Float64bits(math.Tanh(x)) {
			return false
		}
	}
	return true
}
